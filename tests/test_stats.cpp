// Property tests: the cheap structural estimators in formats/stats must
// agree exactly with the materialised formats for every block shape.
#include <gtest/gtest.h>

#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/decomposed.hpp"
#include "src/formats/stats.hpp"
#include "src/formats/vbl.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;

class StatsVsBcsr : public ::testing::TestWithParam<BlockShape> {};

TEST_P(StatsVsBcsr, EstimatorMatchesMaterialisedFormat) {
  const BlockShape shape = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_coo<double>(53 + static_cast<index_t>(seed), 47, 0.08, seed));
    const BlockStats st = bcsr_stats(a, shape);
    const Bcsr<double> m = Bcsr<double>::from_csr(a, shape);
    EXPECT_EQ(st.blocks, m.blocks()) << shape.to_string();
    EXPECT_EQ(st.stored_values, m.bval().size()) << shape.to_string();
    EXPECT_EQ(st.covered_nnz, a.nnz()) << shape.to_string();
    EXPECT_EQ(st.padding(), m.padding()) << shape.to_string();
  }
}

TEST_P(StatsVsBcsr, DecEstimatorMatchesMaterialisedDecomposition) {
  const BlockShape shape = GetParam();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(61, 59, 4, 0.25, 0.8, 99));
  const DecompStats st = bcsr_dec_stats(a, shape);
  const BcsrDec<double> m = BcsrDec<double>::from_csr(a, shape);
  EXPECT_EQ(st.full.blocks, m.blocked().blocks());
  EXPECT_EQ(st.remainder_nnz, m.remainder().nnz());
  EXPECT_EQ(st.full.covered_nnz + st.remainder_nnz, a.nnz());
  EXPECT_EQ(st.full.padding(), 0u);  // full blocks never pad
}

INSTANTIATE_TEST_SUITE_P(AllShapes, StatsVsBcsr,
                         ::testing::ValuesIn(bcsr_shapes()),
                         [](const auto& info) {
                           return info.param.to_string();
                         });

class StatsVsBcsd : public ::testing::TestWithParam<int> {};

TEST_P(StatsVsBcsd, EstimatorMatchesMaterialisedFormat) {
  const int b = GetParam();
  for (std::uint64_t seed : {4u, 5u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_coo<double>(50, 64 + static_cast<index_t>(seed), 0.06, seed));
    const BlockStats st = bcsd_stats(a, b);
    const Bcsd<double> m = Bcsd<double>::from_csr(a, b);
    EXPECT_EQ(st.blocks, m.blocks()) << "b=" << b;
    EXPECT_EQ(st.stored_values, m.bval().size()) << "b=" << b;
    EXPECT_EQ(st.padding(), m.padding()) << "b=" << b;
  }
}

TEST_P(StatsVsBcsd, DecEstimatorMatchesMaterialisedDecomposition) {
  const int b = GetParam();
  // Diagonal-heavy structure so full diagonals actually occur.
  Coo<double> coo(64, 64);
  Xoshiro256 rng(7);
  for (index_t i = 0; i < 64; ++i) {
    coo.add(i, i, 1.0);
    if (i + 1 < 64) coo.add(i, i + 1, 1.0);
    if (rng.uniform() < 0.3)
      coo.add(i, static_cast<index_t>(rng.below(64)), 1.0);
  }
  coo.sort_and_combine();
  const Csr<double> a = Csr<double>::from_coo(coo);
  const DecompStats st = bcsd_dec_stats(a, b);
  const BcsdDec<double> m = BcsdDec<double>::from_csr(a, b);
  EXPECT_EQ(st.full.blocks, m.blocked().blocks());
  EXPECT_EQ(st.remainder_nnz, m.remainder().nnz());
  EXPECT_EQ(st.full.covered_nnz + st.remainder_nnz, a.nnz());
}

INSTANTIATE_TEST_SUITE_P(AllSizes, StatsVsBcsd,
                         ::testing::ValuesIn(bcsd_sizes()));

TEST(StatsVbl, BlockCountMatchesMaterialisedFormat) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_coo<double>(40, 300, 0.15, seed));
    EXPECT_EQ(vbl_block_count(a), Vbl<double>::from_csr(a).blocks());
  }
}

TEST(StatsVbl, DenseRowSplitsAt255) {
  Coo<double> coo(1, 600);
  for (index_t j = 0; j < 600; ++j) coo.add(0, j, 1.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  // 600 consecutive = 255 + 255 + 90 -> 3 blocks.
  EXPECT_EQ(vbl_block_count(a), 3u);
}

TEST(Stats, DenseMatrixHasNoPadding) {
  // Every aligned block of a dense matrix whose dims are multiples of the
  // shape is completely full.
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(24, 24, 1.01, 1));
  for (BlockShape shape : bcsr_shapes()) {
    if (24 % shape.r != 0 || 24 % shape.c != 0) continue;
    const BlockStats st = bcsr_stats(a, shape);
    EXPECT_EQ(st.padding(), 0u) << shape.to_string();
    EXPECT_EQ(st.blocks,
              static_cast<std::size_t>((24 / shape.r) * (24 / shape.c)));
  }
}

TEST(Stats, FillRatioBounds) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(30, 30, 0.05, 77));
  for (BlockShape shape : bcsr_shapes()) {
    const BlockStats st = bcsr_stats(a, shape);
    EXPECT_GT(st.fill(), 0.0);
    EXPECT_LE(st.fill(), 1.0);
    // With sparse random structure, bigger blocks can only pad more:
    EXPECT_GE(st.stored_values, a.nnz());
  }
}

}  // namespace
}  // namespace bspmv
