// Acceptance test for the FormatOps registry contract: a brand-new
// storage format defined entirely in this test TU — a trivial row-sorted
// COO wrapper — plugs into the generic spmv()/spmv_add() front-end AND
// the generic ThreadedSpmv driver through nothing but a FormatOps
// specialisation. No file in src/core or src/parallel is modified (or
// even mentions this format); that is the "adding a format is one trait
// specialisation" guarantee of docs/architecture.md.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/kernels/spmv.hpp"
#include "src/parallel/parallel_spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

/// The toy format: COO triples sorted by row, with a row_ptr index so a
/// row range can be executed independently (which is all the parallel
/// protocol needs).
template <class V>
class ToyCoo {
 public:
  static ToyCoo from_csr(const Csr<V>& a) {
    ToyCoo t;
    t.rows_ = a.rows();
    t.cols_ = a.cols();
    t.row_ptr_.assign(static_cast<std::size_t>(a.rows()) + 1, 0);
    for (index_t i = 0; i < a.rows(); ++i) {
      t.row_ptr_[static_cast<std::size_t>(i) + 1] =
          t.row_ptr_[static_cast<std::size_t>(i)] + a.row_nnz(i);
      for (index_t k = a.row_ptr()[static_cast<std::size_t>(i)];
           k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        t.col_.push_back(a.col_ind()[static_cast<std::size_t>(k)]);
        t.val_.push_back(a.val()[static_cast<std::size_t>(k)]);
      }
    }
    return t;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t working_set_bytes() const {
    return row_ptr_.size() * sizeof(index_t) + col_.size() * sizeof(index_t) +
           val_.size() * sizeof(V);
  }
  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col() const { return col_; }
  const std::vector<V>& val() const { return val_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_;
  std::vector<V> val_;
};

}  // namespace

/// The one piece of glue a new format needs. Defined outside src/ to
/// prove the registry contract; kKind reuses kCsr because the toy format
/// never joins AnyFormat's registry (FormatKind is the *runtime* dispatch
/// key, only meaningful for formats in BuiltinFormats).
template <class V>
struct FormatOps<ToyCoo<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kCsr;
  static constexpr const char* kName = "toy_coo";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 1;

  static ToyCoo<V> convert(const Csr<V>& a, const Candidate&) {
    return ToyCoo<V>::from_csr(a);
  }
  static void validate(const ToyCoo<V>& m) {
    if (m.row_ptr().empty() ||
        m.row_ptr().back() != static_cast<index_t>(m.val().size()))
      throw validation_error("toy_coo: row_ptr/val mismatch");
  }
  static std::size_t working_set_bytes(const ToyCoo<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const ToyCoo<V>& a, const V* x, V* y, Impl impl) {
    pass_run(a, 0, 0, a.rows(), x, y, impl);
  }

  static std::vector<std::size_t> pass_weights(const ToyCoo<V>& a, int) {
    std::vector<std::size_t> w(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = static_cast<std::size_t>(a.row_ptr()[i + 1] - a.row_ptr()[i]);
    return w;
  }
  static index_t pass_first_row(const ToyCoo<V>&, int, index_t g) {
    return g;
  }
  static void pass_run(const ToyCoo<V>& a, int, index_t g0, index_t g1,
                       const V* x, V* y, Impl) {
    for (index_t i = g0; i < g1; ++i)
      for (index_t k = a.row_ptr()[static_cast<std::size_t>(i)];
           k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
        y[i] += a.val()[static_cast<std::size_t>(k)] *
                x[a.col()[static_cast<std::size_t>(k)]];
  }
};

namespace {

using bspmv::testing::expect_vectors_near;
using bspmv::testing::random_coo;
using bspmv::testing::random_x;

TEST(ToyFormat, GenericSpmvPicksUpTheSpecialisation) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(63, 58, 0.09, 21));
  const ToyCoo<double> toy = ToyCoo<double>::from_csr(a);
  FormatOps<ToyCoo<double>>::validate(toy);
  EXPECT_EQ(toy.working_set_bytes(),
            FormatOps<ToyCoo<double>>::working_set_bytes(toy));

  const auto x = random_x<double>(58, 22);
  aligned_vector<double> yref(63, 0.0), ytoy(63, -1.0);
  spmv(a, x.data(), yref.data());
  spmv(toy, x.data(), ytoy.data());  // the generic front-end, no overload
  for (std::size_t i = 0; i < 63; ++i)
    EXPECT_DOUBLE_EQ(ytoy[i], yref[i]) << "row " << i;
}

TEST(ToyFormat, GenericThreadedDriverPicksUpTheSpecialisation) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(71, 64, 0.08, 23));
  const ToyCoo<double> toy = ToyCoo<double>::from_csr(a);
  const auto x = random_x<double>(64, 24);

  aligned_vector<double> ys(71, 0.0);
  spmv(toy, x.data(), ys.data());
  for (int threads : {1, 2, 4, 7}) {
    aligned_vector<double> yp(71, -1.0);
    // Instantiating ThreadedSpmv<ToyCoo> from the header is the whole
    // point: the driver template needs only the FormatOps protocol.
    ThreadedSpmv<ToyCoo<double>>(toy, threads).run(x.data(), yp.data());
    for (std::size_t i = 0; i < 71; ++i)
      EXPECT_EQ(yp[i], ys[i]) << threads << " threads, row " << i;
  }
}

TEST(ToyFormat, ConvertFollowsTheCandidateProtocol) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(12, 12, 0.4, 25));
  const Candidate c{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar};
  const ToyCoo<double> toy = FormatOps<ToyCoo<double>>::convert(a, c);
  EXPECT_EQ(toy.rows(), 12);
  EXPECT_EQ(toy.cols(), 12);
}

}  // namespace
}  // namespace bspmv
