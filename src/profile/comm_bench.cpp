#include "src/profile/comm_bench.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "src/serve/protocol.hpp"
#include "src/util/errors.hpp"
#include "src/util/timing.hpp"

namespace bspmv {

namespace {

using serve::MsgType;

/// Echo loop run in the forked child: reflect every frame until EOF.
[[noreturn]] void echo_child(int fd, const serve::WireLimits& limits) {
  try {
    MsgType type{};
    std::string payload;
    while (serve::read_frame(fd, type, payload, limits))
      serve::write_frame(fd, type, payload, limits);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

double best_rtt(int fd, const serve::WireLimits& limits,
                const std::string& payload, int trials) {
  double best = -1.0;
  MsgType type{};
  std::string reply;
  for (int i = 0; i < trials; ++i) {
    Timer t;
    serve::write_frame(fd, MsgType::kPing, payload, limits);
    if (!serve::read_frame(fd, type, reply, limits))
      throw io_error("comm benchmark echo child exited early");
    const double rtt = t.elapsed();
    if (best < 0.0 || rtt < best) best = rtt;
  }
  return best;
}

}  // namespace

CommProfile profile_comm(bool quick) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw io_error(std::string("socketpair failed: ") + std::strerror(errno));

  serve::WireLimits limits;
  limits.read_timeout_seconds = 10.0;

  const pid_t pid = fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw io_error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    echo_child(fds[1], limits);
  }
  ::close(fds[1]);

  CommProfile p;
  try {
    const int small_trials = quick ? 50 : 400;
    const int big_trials = quick ? 3 : 8;
    const std::size_t big_bytes = quick ? (1u << 20) : (8u << 20);

    // Warm both directions (page-in, socket buffer growth) off the clock.
    best_rtt(fds[0], limits, "", 5);

    // α: half the best empty-frame round trip. The 20-byte header still
    // crosses the wire, but its bytes/β share is sub-nanosecond noise.
    p.alpha_seconds = best_rtt(fds[0], limits, "", small_trials) / 2.0;

    // β: a big frame's round trip moves 2·bytes through the socket and
    // is dominated by the copies; subtract the latency floor.
    const std::string big(big_bytes, '\x5a');
    const double rtt = best_rtt(fds[0], limits, big, big_trials);
    const double stream = std::max(rtt - 2.0 * p.alpha_seconds, 1e-9);
    p.beta_bps = 2.0 * static_cast<double>(big.size()) / stream;
  } catch (...) {
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    throw;
  }

  ::close(fds[0]);  // EOF stops the echo loop
  ::waitpid(pid, nullptr, 0);
  return p;
}

}  // namespace bspmv
