// Compile-time format registry.
//
// FormatList is an ordered type list of storage formats (each with a
// FormatOps specialisation); BuiltinFormats<V> enumerates every format
// the library ships. AnyFormat's storage variant and all of its
// dispatching (convert/run/validate/working_set_bytes) are generated from
// this list, as are the registry-driven tests — adding a format means
// writing its FormatOps specialisation and appending it here; no
// dispatch code changes anywhere.
#pragma once

#include <type_traits>
#include <variant>

#include "src/formats/format_ops.hpp"

namespace bspmv {

template <class... Fs>
struct FormatList {
  /// Call fn(std::type_identity<F>{}) for every format, in list order.
  template <class Fn>
  static constexpr void for_each(Fn&& fn) {
    (fn(std::type_identity<Fs>{}), ...);
  }

  /// Storage variant over the list; monostate is the empty state.
  using variant = std::variant<std::monostate, Fs...>;

  static constexpr std::size_t size = sizeof...(Fs);
};

/// Every format the library ships, in the order of the FormatKind enum's
/// introduction to AnyFormat (kept stable so variant indices don't churn).
template <class V>
using BuiltinFormats = FormatList<Csr<V>, Bcsr<V>, Bcsd<V>, Vbl<V>, Vbr<V>,
                                  BcsrDec<V>, BcsdDec<V>, Ubcsr<V>,
                                  CsrDelta<V>>;

/// Iterate the built-in registry: fn(std::type_identity<F>{}) per format.
template <class V, class Fn>
constexpr void for_each_format(Fn&& fn) {
  BuiltinFormats<V>::for_each(std::forward<Fn>(fn));
}

}  // namespace bspmv
