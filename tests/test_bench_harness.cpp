// Tests for the bench-harness substrate (shared flags, sweep cache,
// per-format aggregation) — the machinery every table/figure bench runs
// through.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "bench/harness.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv::bench {
namespace {

BenchConfig parse_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  CliParser cli;
  add_common_flags(cli);
  const bool ok = cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(ok);
  auto cfg = parse_common(cli);
  EXPECT_TRUE(cfg.has_value());
  return *cfg;
}

TEST(BenchFlags, DefaultsAndOverrides) {
  const BenchConfig def = parse_args({});
  EXPECT_EQ(def.scale, SuiteScale::kSmall);
  EXPECT_EQ(def.measure.iterations, 10);
  EXPECT_TRUE(def.matrix_ids.empty());
  EXPECT_FALSE(def.no_cache);

  const BenchConfig cfg = parse_args(
      {"--scale", "tiny", "--iters", "3", "--matrices", "1,5,30",
       "--no-cache", "--cache", "/tmp/x.json"});
  EXPECT_EQ(cfg.scale, SuiteScale::kTiny);
  EXPECT_EQ(cfg.measure.iterations, 3);
  ASSERT_EQ(cfg.matrix_ids.size(), 3u);
  EXPECT_EQ(cfg.matrix_ids[2], 30);
  EXPECT_TRUE(cfg.no_cache);
  EXPECT_EQ(cfg.cache_path, "/tmp/x.json");
}

TEST(BenchFlags, RejectsBadMatrixIds) {
  CliParser cli;
  add_common_flags(cli);
  const char* argv[] = {"prog", "--matrices", "0,5"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(parse_common(cli), invalid_argument_error);
}

TEST(SweepKeys, EncodeEveryDimension) {
  const BenchConfig cfg = parse_args({"--scale", "paper", "--iters", "7"});
  const std::string k =
      sweep_key(cfg, 12, Precision::kSingle, "bcsr_2x2_simd", 4);
  EXPECT_EQ(k, "paper/12/sp/bcsr_2x2_simd/t4/i7");
  // Distinct dimensions -> distinct keys.
  EXPECT_NE(k, sweep_key(cfg, 12, Precision::kDouble, "bcsr_2x2_simd", 4));
  EXPECT_NE(k, sweep_key(cfg, 13, Precision::kSingle, "bcsr_2x2_simd", 4));
  EXPECT_NE(k, sweep_key(cfg, 12, Precision::kSingle, "bcsr_2x2_simd", 2));
}

TEST(SweepCacheTest, PersistsAcrossInstances) {
  const std::string path = ::testing::TempDir() + "/bspmv_sweep_test.json";
  std::remove(path.c_str());
  {
    SweepCache c(path, /*disabled=*/false);
    EXPECT_FALSE(c.get("a/b").has_value());
    c.put("a/b", 1.5e-3);
    c.put("a/c", 2.5e-3);
    c.save();
  }
  {
    SweepCache c(path, false);
    ASSERT_TRUE(c.get("a/b").has_value());
    EXPECT_DOUBLE_EQ(*c.get("a/b"), 1.5e-3);
    EXPECT_DOUBLE_EQ(*c.get("a/c"), 2.5e-3);
  }
  std::remove(path.c_str());
}

TEST(SweepCacheTest, DisabledCacheStoresNothing) {
  const std::string path = ::testing::TempDir() + "/bspmv_sweep_off.json";
  std::remove(path.c_str());
  SweepCache c(path, /*disabled=*/true);
  c.put("k", 1.0);
  c.save();
  EXPECT_FALSE(c.get("k").has_value());
  std::ifstream f(path);
  EXPECT_FALSE(f.good());  // nothing written
}

TEST(SweepCacheTest, CorruptFileIsIgnoredNotFatal) {
  const std::string path = ::testing::TempDir() + "/bspmv_sweep_bad.json";
  {
    std::ofstream f(path);
    f << "{not json";
  }
  SweepCache c(path, false);
  EXPECT_FALSE(c.get("anything").has_value());
  c.put("k", 2.0);
  c.save();  // must be able to overwrite the corrupt file
  SweepCache c2(path, false);
  EXPECT_DOUBLE_EQ(*c2.get("k"), 2.0);
  std::remove(path.c_str());
}

TEST(SweepCacheTest, TornWriteIsDetectedByChecksumAndIgnored) {
  const std::string path = ::testing::TempDir() + "/bspmv_sweep_torn.json";
  std::remove(path.c_str());
  {
    SweepCache c(path, false);
    c.put("a/b", 3.5e-3);
    c.save();
  }
  // Simulate a kill mid-write with no atomic protocol: truncate the
  // saved (checksummed) file so the trailer no longer matches.
  {
    std::ifstream in(path, std::ios::binary);
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    ASSERT_NE(raw.find("#bspmv-crc32:"), std::string::npos);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << raw.substr(0, raw.size() / 2);
  }
  // The torn cache must be detected (checksum mismatch), warned about and
  // discarded — the bench re-measures instead of using half a cache.
  SweepCache c(path, false);
  EXPECT_FALSE(c.get("a/b").has_value());
  c.put("a/b", 4.5e-3);
  c.save();
  SweepCache c2(path, false);
  EXPECT_DOUBLE_EQ(*c2.get("a/b"), 4.5e-3);
  std::remove(path.c_str());
}

TEST(BestPerFormat, TakesMinimumAcrossShapes) {
  const std::vector<Candidate> cands = {
      Candidate{},  // csr_scalar
      Candidate{FormatKind::kBcsr, BlockShape{2, 2}, 0, Impl::kScalar},
      Candidate{FormatKind::kBcsr, BlockShape{4, 1}, 0, Impl::kScalar},
  };
  const std::map<std::string, double> secs = {
      {"csr_scalar", 3.0}, {"bcsr_2x2_scalar", 2.0}, {"bcsr_4x1_scalar", 1.0}};
  const auto best = best_per_format(cands, secs);
  EXPECT_DOUBLE_EQ(best.at(FormatKind::kCsr), 3.0);
  EXPECT_DOUBLE_EQ(best.at(FormatKind::kBcsr), 1.0);
}

TEST(BestPerFormat, SkipsUnmeasuredCandidates) {
  const std::vector<Candidate> cands = {
      Candidate{},
      Candidate{FormatKind::kVbl, BlockShape{1, 1}, 0, Impl::kScalar}};
  const std::map<std::string, double> secs = {{"csr_scalar", 1.0}};
  const auto best = best_per_format(cands, secs);
  EXPECT_EQ(best.count(FormatKind::kVbl), 0u);
}

TEST(SweepMatrix, UsesAndFillsCache) {
  const std::string path = ::testing::TempDir() + "/bspmv_sweep_m.json";
  std::remove(path.c_str());
  BenchConfig cfg = parse_args({"--iters", "2", "--reps", "1",
                                "--cache", path.c_str()});
  const Csr<double> a = Csr<double>::from_coo(
      bspmv::testing::random_blocky_coo<double>(120, 120, 2, 0.3, 0.9, 1));
  const std::vector<Candidate> cands = {
      Candidate{},
      Candidate{FormatKind::kBcsr, BlockShape{2, 2}, 0, Impl::kSimd}};

  SweepCache cache(path, false);
  const auto first = sweep_matrix(a, 99, cands, cfg, cache);
  ASSERT_EQ(first.size(), 2u);
  for (const auto& [id, t] : first) EXPECT_GT(t, 0.0) << id;
  // Second call must return identical (cached) numbers.
  const auto second = sweep_matrix(a, 99, cands, cfg, cache);
  for (const auto& [id, t] : first)
    EXPECT_DOUBLE_EQ(second.at(id), t) << id;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bspmv::bench
