#include "src/profile/cache_info.hpp"

#include <fstream>
#include <string>

namespace bspmv {

namespace {

// Parse "32K" / "4096K" / "8M" style sysfs size strings; 0 on failure.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  std::size_t mult = 1;
  if (*end == 'K' || *end == 'k') mult = 1024;
  else if (*end == 'M' || *end == 'm') mult = 1024 * 1024;
  else if (*end == 'G' || *end == 'g') mult = 1024ull * 1024 * 1024;
  return static_cast<std::size_t>(v) * mult;
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

}  // namespace

CacheInfo detect_cache_info() {
  CacheInfo info;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  std::size_t max_size = 0;
  bool found_any = false;

  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string type = read_line(dir + "type");
    if (type.empty()) break;
    const std::string level = read_line(dir + "level");
    const std::size_t size = parse_size(read_line(dir + "size"));
    if (size == 0) continue;
    found_any = true;
    if (level == "1" && (type == "Data" || type == "Unified"))
      info.l1d_bytes = size;
    if (level == "2" && (type == "Data" || type == "Unified"))
      info.l2_bytes = size;
    if (type == "Data" || type == "Unified")
      max_size = std::max(max_size, size);
  }
  if (max_size > 0) info.llc_bytes = max_size;
  info.detected = found_any;
  return info;
}

}  // namespace bspmv
