#include "src/formats/ubcsr.hpp"

#include <algorithm>
#include <vector>

#include "src/formats/conversion_guard.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

namespace {

// Greedy unaligned anchors for one block row: the leftmost uncovered
// nonzero column starts a block of width c; `cols` must be sorted and
// deduplicated. Returns the anchor columns.
void greedy_anchors(const std::vector<index_t>& cols, int c,
                    std::vector<index_t>& anchors) {
  anchors.clear();
  std::size_t i = 0;
  while (i < cols.size()) {
    const index_t j0 = cols[i];
    anchors.push_back(j0);
    while (i < cols.size() && cols[i] < j0 + c) ++i;
  }
}

template <class V>
void collect_band_cols(const Csr<V>& a, index_t base, index_t row_end,
                       std::vector<index_t>& cols) {
  cols.clear();
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  for (index_t i = base; i < row_end; ++i)
    for (index_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      cols.push_back(col_ind[static_cast<std::size_t>(k)]);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
}

}  // namespace

template <class V>
Ubcsr<V> Ubcsr<V>::from_csr(const Csr<V>& a, BlockShape shape) {
  BSPMV_CHECK_MSG(shape.r >= 1 && shape.c >= 1, "block shape must be >= 1x1");
  const index_t n = a.rows();
  const index_t r = shape.r;
  const index_t c = shape.c;
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();

  Ubcsr out;
  out.rows_ = n;
  out.cols_ = a.cols();
  out.shape_ = shape;
  out.block_rows_ = (n + r - 1) / r;
  out.nnz_ = a.nnz();
  out.brow_ptr_.assign(static_cast<std::size_t>(out.block_rows_) + 1, 0);

  std::vector<index_t> cols;
  std::vector<index_t> anchors;

  // Pass 1: count greedy anchors per block row.
  for (index_t br = 0; br < out.block_rows_; ++br) {
    const index_t row_end = std::min<index_t>(n, (br + 1) * r);
    collect_band_cols(a, br * r, row_end, cols);
    greedy_anchors(cols, c, anchors);
    out.brow_ptr_[static_cast<std::size_t>(br) + 1] =
        out.brow_ptr_[static_cast<std::size_t>(br)] +
        static_cast<index_t>(anchors.size());
  }

  const std::size_t nblocks = static_cast<std::size_t>(out.brow_ptr_.back());
  const std::size_t stored = ConversionGuard::mul(
      "ubcsr", nblocks,
      static_cast<std::size_t>(r) * static_cast<std::size_t>(c));
  ConversionGuard::check("ubcsr", stored, a.nnz(), sizeof(V),
                         (out.brow_ptr_.size() + nblocks) * sizeof(index_t));
  out.bcol_ind_.resize(nblocks);
  out.bval_.assign(stored, V{0});

  // Pass 2: record anchors and scatter values.
  for (index_t br = 0; br < out.block_rows_; ++br) {
    const index_t row_end = std::min<index_t>(n, (br + 1) * r);
    collect_band_cols(a, br * r, row_end, cols);
    greedy_anchors(cols, c, anchors);

    const std::size_t first = static_cast<std::size_t>(
        out.brow_ptr_[static_cast<std::size_t>(br)]);
    std::copy(anchors.begin(), anchors.end(), out.bcol_ind_.begin() + first);

    for (index_t i = br * r; i < row_end; ++i) {
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t j = col_ind[static_cast<std::size_t>(k)];
        // The block containing j is the one with the greatest anchor <= j
        // (anchors are disjoint intervals of width c covering all cols).
        const auto it =
            std::upper_bound(anchors.begin(), anchors.end(), j) - 1;
        BSPMV_DBG_ASSERT(it >= anchors.begin() && j >= *it && j < *it + c);
        const std::size_t blk =
            first + static_cast<std::size_t>(it - anchors.begin());
        const std::size_t off =
            static_cast<std::size_t>(i - br * r) * static_cast<std::size_t>(c) +
            static_cast<std::size_t>(j - *it);
        out.bval_[blk * static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(c) +
                  off] = val[static_cast<std::size_t>(k)];
      }
    }
  }
  return out;
}

template <class V>
std::size_t Ubcsr<V>::working_set_bytes() const {
  return bval_.size() * sizeof(V) + bcol_ind_.size() * sizeof(index_t) +
         brow_ptr_.size() * sizeof(index_t) +
         static_cast<std::size_t>(cols_) * sizeof(V) +
         static_cast<std::size_t>(rows_) * sizeof(V);
}

template <class V>
Coo<V> Ubcsr<V>::to_coo() const {
  Coo<V> coo(rows_, cols_);
  const index_t r = shape_.r;
  const index_t c = shape_.c;
  for (index_t br = 0; br < block_rows_; ++br) {
    for (index_t blk = brow_ptr_[static_cast<std::size_t>(br)];
         blk < brow_ptr_[static_cast<std::size_t>(br) + 1]; ++blk) {
      const index_t j0 = bcol_ind_[static_cast<std::size_t>(blk)];
      const V* bv = bval_.data() + static_cast<std::size_t>(blk) *
                                       static_cast<std::size_t>(r) *
                                       static_cast<std::size_t>(c);
      for (index_t rr = 0; rr < r; ++rr) {
        for (index_t cc = 0; cc < c; ++cc) {
          const V v = bv[rr * c + cc];
          const index_t i = br * r + rr;
          const index_t j = j0 + cc;
          if (v != V{0} && i < rows_ && j < cols_) coo.add(i, j, v);
        }
      }
    }
  }
  return coo;
}

template <class V>
BlockStats ubcsr_stats(const Csr<V>& a, BlockShape shape) {
  BSPMV_CHECK(shape.r >= 1 && shape.c >= 1);
  const index_t n = a.rows();
  BlockStats st;
  std::vector<index_t> cols;
  std::vector<index_t> anchors;
  for (index_t br = 0; br * shape.r < n; ++br) {
    const index_t row_end = std::min<index_t>(n, (br + 1) * shape.r);
    collect_band_cols(a, br * shape.r, row_end, cols);
    greedy_anchors(cols, shape.c, anchors);
    st.blocks += anchors.size();
  }
  st.stored_values = st.blocks * static_cast<std::size_t>(shape.elems());
  st.covered_nnz = a.nnz();
  return st;
}

template class Ubcsr<float>;
template class Ubcsr<double>;
template BlockStats ubcsr_stats(const Csr<float>&, BlockShape);
template BlockStats ubcsr_stats(const Csr<double>&, BlockShape);

}  // namespace bspmv
