// FormatOps<Format>: the compile-time trait every storage format
// specialises exactly once. It is the single place where a format's
// identity (kind, name), conversion from CSR, structural validation,
// working-set size, serial kernel dispatch and parallel-execution
// protocol live; everything above this layer — the generic spmv()
// front-end (src/kernels/spmv.hpp), the generic ThreadedSpmv driver
// (src/parallel/parallel_spmv.hpp), AnyFormat's registry dispatch
// (src/core/executor.*) — is format-agnostic and never needs to change
// when a format is added. See docs/architecture.md for the
// how-to-add-a-format checklist.
//
// Required members of a specialisation FormatOps<F> (value type V):
//   using value_type = V;
//   static constexpr FormatKind kKind;     // registry dispatch key
//   static constexpr const char* kName;    // == format_name(kKind)
//   static constexpr bool kParallel;       // has a threaded driver (§V-A)
//   static constexpr int kPasses;          // 1, or 2 for decomposed formats
//   static F convert(const Csr<V>&, const Candidate&);
//   static void validate(const F&);        // throws validation_error
//   static std::size_t working_set_bytes(const F&);
//   static void spmv_add(const F&, const V* x, V* y, Impl);  // y += A·x
// and, when kParallel (the §V-A protocol — each pass is split into
// contiguous granule ranges of near-equal stored-value weight, and a
// thread's pass-0 granules own a contiguous row range it zero-fills):
//   static std::vector<std::size_t> pass_weights(const F&, int pass);
//   static index_t pass_first_row(const F&, int pass, index_t g);
//   static void pass_run(const F&, int pass, index_t g0, index_t g1,
//                        const V* x, V* y, Impl);             // accumulates
//
// Optional multi-vector (SpMM) members — every builtin format provides
// them; out-of-tree formats that omit them still get the full
// spmm/run_multi API through a single-vector fallback (the generic
// front-ends detect the members with `requires`):
//   static void spmm_add(const F&, const V* X, V* Y, int k, Layout, Impl);
//   static void pass_run_multi(const F&, int pass, index_t g0, index_t g1,
//                              const V* X, V* Y, int k, Layout, Impl);
//   static void spmm_store(const F&, const V* X, V* Y, int k, Impl);
// Row-major X/Y stream the matrix once across all k vectors (the native
// kernels in src/kernels/spmm_kernels.hpp); column-major runs k
// single-vector passes. Per vector the accumulation order equals the
// scalar single-vector kernel (row-major) or the requested impl's kernel
// (column-major) — see docs/spmm.md.
//
// spmm_store is the row-major full-multiply fast path: Y = A·X with
// every Y element written exactly once, skipping the zero-fill pass and
// the read half of the accumulate — spmm() uses it when present.
// Identical values to zero-fill + spmm_add (up to the sign of an exact
// zero result), same per-vector accumulation order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/core/candidates.hpp"
#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/csr_delta.hpp"
#include "src/formats/decomposed.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/formats/vbl.hpp"
#include "src/formats/vbr.hpp"
#include "src/formats/validate.hpp"
#include "src/kernels/bcsd_kernels.hpp"
#include "src/kernels/bcsr_kernels.hpp"
#include "src/kernels/csr_kernels.hpp"
#include "src/kernels/layout.hpp"
#include "src/kernels/spmm_kernels.hpp"
#include "src/kernels/ubcsr_kernels.hpp"
#include "src/kernels/vbl_kernels.hpp"
#include "src/kernels/vbr_kernels.hpp"
#include "src/util/aligned.hpp"

namespace bspmv {

/// Primary template is intentionally undefined: using a format without a
/// FormatOps specialisation is a compile error at the point of use.
template <class F>
struct FormatOps;

namespace detail {

/// SpMM through k single-vector kernel runs — the column-major execution
/// strategy for every format, and the row-major fallback for formats
/// without a native interleaved kernel (UBCSR, VBR, CSR-delta, and any
/// out-of-tree format). Row-major pays a deinterleave/reinterleave copy
/// per vector; the formats with native kernels never take that path.
template <class F, class V = typename FormatOps<F>::value_type>
void spmm_add_via_spmv(const F& a, const V* X, V* Y, int k, Layout layout,
                       Impl impl) {
  const std::size_t rows = static_cast<std::size_t>(a.rows());
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  if (layout == Layout::kColMajor) {
    for (int j = 0; j < k; ++j)
      FormatOps<F>::spmv_add(a, X + static_cast<std::size_t>(j) * cols,
                             Y + static_cast<std::size_t>(j) * rows, impl);
    return;
  }
  aligned_vector<V> x(cols), y(rows);
  for (int j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < cols; ++i)
      x[i] = X[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(j)];
    std::fill(y.begin(), y.end(), V{0});
    FormatOps<F>::spmv_add(a, x.data(), y.data(), impl);
    for (std::size_t i = 0; i < rows; ++i)
      Y[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(j)] +=
          y[i];
  }
}

}  // namespace detail

// ------------------------------------------------------------------ CSR ----

template <class V>
struct FormatOps<Csr<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kCsr;
  static constexpr const char* kName = "csr";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 1;

  static Csr<V> convert(const Csr<V>& a, const Candidate&) { return a; }
  static void validate(const Csr<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Csr<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Csr<V>& a, const V* x, V* y, Impl impl) {
    pass_run(a, 0, 0, a.rows(), x, y, impl);
  }
  static void spmm_add(const Csr<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    pass_run_multi(a, 0, 0, a.rows(), X, Y, k, layout, impl);
  }
  static void spmm_store(const Csr<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    csr_spmm_rm(a, 0, a.rows(), X, Y, k, impl == Impl::kSimd, false);
  }

  static std::vector<std::size_t> pass_weights(const Csr<V>& a, int) {
    std::vector<std::size_t> w(static_cast<std::size_t>(a.rows()));
    for (index_t i = 0; i < a.rows(); ++i)
      w[static_cast<std::size_t>(i)] = static_cast<std::size_t>(a.row_nnz(i));
    return w;
  }
  static index_t pass_first_row(const Csr<V>&, int, index_t g) { return g; }
  static void pass_run(const Csr<V>& a, int, index_t g0, index_t g1,
                       const V* x, V* y, Impl impl) {
    if (impl == Impl::kSimd)
      csr_spmv_simd(a, g0, g1, x, y);
    else
      csr_spmv_scalar(a, g0, g1, x, y);
  }
  static void pass_run_multi(const Csr<V>& a, int pass, index_t g0,
                             index_t g1, const V* X, V* Y, int k,
                             Layout layout, Impl impl) {
    if (layout == Layout::kRowMajor) {
      csr_spmm_rm(a, g0, g1, X, Y, k, impl == Impl::kSimd);
    } else {
      for (int j = 0; j < k; ++j)
        pass_run(a, pass, g0, g1,
                 X + static_cast<std::size_t>(j) * a.cols(),
                 Y + static_cast<std::size_t>(j) * a.rows(), impl);
    }
  }
};

// ----------------------------------------------------------------- BCSR ----

template <class V>
struct FormatOps<Bcsr<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kBcsr;
  static constexpr const char* kName = "bcsr";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 1;

  static Bcsr<V> convert(const Csr<V>& a, const Candidate& c) {
    return Bcsr<V>::from_csr(a, c.shape);
  }
  static void validate(const Bcsr<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Bcsr<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Bcsr<V>& a, const V* x, V* y, Impl impl) {
    pass_run(a, 0, 0, a.block_rows(), x, y, impl);
  }
  static void spmm_add(const Bcsr<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    pass_run_multi(a, 0, 0, a.block_rows(), X, Y, k, layout, impl);
  }
  /// Empty block rows still flush their (zero) accumulators, so every
  /// row of Y is written even where the matrix stores nothing.
  static void spmm_store(const Bcsr<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    bcsr_spmm_rm(a, 0, a.block_rows(), X, Y, k, impl == Impl::kSimd, false);
  }

  /// Per-block-row stored values including padding (blocks · r · c).
  static std::vector<std::size_t> pass_weights(const Bcsr<V>& a, int) {
    const auto& brow_ptr = a.brow_ptr();
    const std::size_t elems = static_cast<std::size_t>(a.shape().elems());
    std::vector<std::size_t> w(static_cast<std::size_t>(a.block_rows()));
    for (std::size_t br = 0; br < w.size(); ++br)
      w[br] = static_cast<std::size_t>(brow_ptr[br + 1] - brow_ptr[br]) * elems;
    return w;
  }
  static index_t pass_first_row(const Bcsr<V>& a, int, index_t g) {
    return std::min(a.rows(), g * a.shape().r);
  }
  static void pass_run(const Bcsr<V>& a, int, index_t g0, index_t g1,
                       const V* x, V* y, Impl impl) {
    bcsr_kernel<V>(a.shape(), impl == Impl::kSimd)(a, g0, g1, x, y);
  }
  static void pass_run_multi(const Bcsr<V>& a, int pass, index_t g0,
                             index_t g1, const V* X, V* Y, int k,
                             Layout layout, Impl impl) {
    if (layout == Layout::kRowMajor) {
      bcsr_spmm_rm(a, g0, g1, X, Y, k, impl == Impl::kSimd);
    } else {
      for (int j = 0; j < k; ++j)
        pass_run(a, pass, g0, g1,
                 X + static_cast<std::size_t>(j) * a.cols(),
                 Y + static_cast<std::size_t>(j) * a.rows(), impl);
    }
  }
};

// ----------------------------------------------------------------- BCSD ----

template <class V>
struct FormatOps<Bcsd<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kBcsd;
  static constexpr const char* kName = "bcsd";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 1;

  static Bcsd<V> convert(const Csr<V>& a, const Candidate& c) {
    return Bcsd<V>::from_csr(a, c.b);
  }
  static void validate(const Bcsd<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Bcsd<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Bcsd<V>& a, const V* x, V* y, Impl impl) {
    pass_run(a, 0, 0, a.segments(), x, y, impl);
  }
  static void spmm_add(const Bcsd<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    pass_run_multi(a, 0, 0, a.segments(), X, Y, k, layout, impl);
  }
  static void spmm_store(const Bcsd<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    bcsd_spmm_rm(a, 0, a.segments(), X, Y, k, impl == Impl::kSimd, false);
  }

  /// Per-segment stored values including padding (diagonals · b).
  static std::vector<std::size_t> pass_weights(const Bcsd<V>& a, int) {
    const auto& brow_ptr = a.brow_ptr();
    const std::size_t b = static_cast<std::size_t>(a.b());
    std::vector<std::size_t> w(static_cast<std::size_t>(a.segments()));
    for (std::size_t s = 0; s < w.size(); ++s)
      w[s] = static_cast<std::size_t>(brow_ptr[s + 1] - brow_ptr[s]) * b;
    return w;
  }
  static index_t pass_first_row(const Bcsd<V>& a, int, index_t g) {
    return std::min(a.rows(), g * a.b());
  }
  static void pass_run(const Bcsd<V>& a, int, index_t g0, index_t g1,
                       const V* x, V* y, Impl impl) {
    bcsd_kernel<V>(a.b(), impl == Impl::kSimd)(a, g0, g1, x, y);
  }
  static void pass_run_multi(const Bcsd<V>& a, int pass, index_t g0,
                             index_t g1, const V* X, V* Y, int k,
                             Layout layout, Impl impl) {
    if (layout == Layout::kRowMajor) {
      bcsd_spmm_rm(a, g0, g1, X, Y, k, impl == Impl::kSimd);
    } else {
      for (int j = 0; j < k; ++j)
        pass_run(a, pass, g0, g1,
                 X + static_cast<std::size_t>(j) * a.cols(),
                 Y + static_cast<std::size_t>(j) * a.rows(), impl);
    }
  }
};

// --------------------------------------------------------------- 1D-VBL ----

template <class V>
struct FormatOps<Vbl<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kVbl;
  static constexpr const char* kName = "vbl";
  // The paper found 1D-VBL uncompetitive and did not parallelise it (§V-A).
  static constexpr bool kParallel = false;
  static constexpr int kPasses = 1;

  static Vbl<V> convert(const Csr<V>& a, const Candidate&) {
    return Vbl<V>::from_csr(a);
  }
  static void validate(const Vbl<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Vbl<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Vbl<V>& a, const V* x, V* y, Impl impl) {
    if (impl == Impl::kSimd)
      vbl_spmv_simd(a, x, y);
    else
      vbl_spmv_scalar(a, x, y);
  }
  static void spmm_add(const Vbl<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    if (layout == Layout::kRowMajor) {
      vbl_spmm_rm(a, X, Y, k, impl == Impl::kSimd);
    } else {
      for (int j = 0; j < k; ++j)
        spmv_add(a, X + static_cast<std::size_t>(j) * a.cols(),
                 Y + static_cast<std::size_t>(j) * a.rows(), impl);
    }
  }
  static void spmm_store(const Vbl<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    vbl_spmm_rm(a, X, Y, k, impl == Impl::kSimd, false);
  }
};

// ------------------------------------------------------------------ VBR ----

template <class V>
struct FormatOps<Vbr<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kVbr;
  static constexpr const char* kName = "vbr";
  static constexpr bool kParallel = false;
  static constexpr int kPasses = 1;

  static Vbr<V> convert(const Csr<V>& a, const Candidate&) {
    return Vbr<V>::from_csr(a);
  }
  static void validate(const Vbr<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Vbr<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Vbr<V>& a, const V* x, V* y, Impl impl) {
    if (impl == Impl::kSimd)
      vbr_spmv_simd(a, x, y);
    else
      vbr_spmv_scalar(a, x, y);
  }
  static void spmm_add(const Vbr<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    detail::spmm_add_via_spmv(a, X, Y, k, layout, impl);
  }
};

// ------------------------------------------------------------- BCSR-DEC ----

template <class V>
struct FormatOps<BcsrDec<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kBcsrDec;
  static constexpr const char* kName = "bcsr_dec";
  static constexpr bool kParallel = true;
  /// Pass 0 is the blocked submatrix (zeroes y), pass 1 the CSR remainder.
  static constexpr int kPasses = 2;

  static BcsrDec<V> convert(const Csr<V>& a, const Candidate& c) {
    return BcsrDec<V>::from_csr(a, c.shape);
  }
  static void validate(const BcsrDec<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const BcsrDec<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const BcsrDec<V>& a, const V* x, V* y, Impl impl) {
    FormatOps<Bcsr<V>>::spmv_add(a.blocked(), x, y, impl);
    FormatOps<Csr<V>>::spmv_add(a.remainder(), x, y, impl);
  }
  static void spmm_add(const BcsrDec<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    FormatOps<Bcsr<V>>::spmm_add(a.blocked(), X, Y, k, layout, impl);
    FormatOps<Csr<V>>::spmm_add(a.remainder(), X, Y, k, layout, impl);
  }
  /// The blocked store pass initialises every row of Y (empty block rows
  /// write zeros), so the CSR remainder can accumulate on top.
  static void spmm_store(const BcsrDec<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    FormatOps<Bcsr<V>>::spmm_store(a.blocked(), X, Y, k, impl);
    FormatOps<Csr<V>>::spmm_add(a.remainder(), X, Y, k, Layout::kRowMajor,
                                impl);
  }

  static std::vector<std::size_t> pass_weights(const BcsrDec<V>& a, int pass) {
    return pass == 0 ? FormatOps<Bcsr<V>>::pass_weights(a.blocked(), 0)
                     : FormatOps<Csr<V>>::pass_weights(a.remainder(), 0);
  }
  static index_t pass_first_row(const BcsrDec<V>& a, int pass, index_t g) {
    return pass == 0 ? FormatOps<Bcsr<V>>::pass_first_row(a.blocked(), 0, g)
                     : g;
  }
  static void pass_run(const BcsrDec<V>& a, int pass, index_t g0, index_t g1,
                       const V* x, V* y, Impl impl) {
    if (pass == 0)
      FormatOps<Bcsr<V>>::pass_run(a.blocked(), 0, g0, g1, x, y, impl);
    else
      FormatOps<Csr<V>>::pass_run(a.remainder(), 0, g0, g1, x, y, impl);
  }
  static void pass_run_multi(const BcsrDec<V>& a, int pass, index_t g0,
                             index_t g1, const V* X, V* Y, int k,
                             Layout layout, Impl impl) {
    if (pass == 0)
      FormatOps<Bcsr<V>>::pass_run_multi(a.blocked(), 0, g0, g1, X, Y, k,
                                         layout, impl);
    else
      FormatOps<Csr<V>>::pass_run_multi(a.remainder(), 0, g0, g1, X, Y, k,
                                        layout, impl);
  }
};

// ------------------------------------------------------------- BCSD-DEC ----

template <class V>
struct FormatOps<BcsdDec<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kBcsdDec;
  static constexpr const char* kName = "bcsd_dec";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 2;

  static BcsdDec<V> convert(const Csr<V>& a, const Candidate& c) {
    return BcsdDec<V>::from_csr(a, c.b);
  }
  static void validate(const BcsdDec<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const BcsdDec<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const BcsdDec<V>& a, const V* x, V* y, Impl impl) {
    FormatOps<Bcsd<V>>::spmv_add(a.blocked(), x, y, impl);
    FormatOps<Csr<V>>::spmv_add(a.remainder(), x, y, impl);
  }
  static void spmm_add(const BcsdDec<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    FormatOps<Bcsd<V>>::spmm_add(a.blocked(), X, Y, k, layout, impl);
    FormatOps<Csr<V>>::spmm_add(a.remainder(), X, Y, k, layout, impl);
  }
  static void spmm_store(const BcsdDec<V>& a, const V* X, V* Y, int k,
                         Impl impl) {
    FormatOps<Bcsd<V>>::spmm_store(a.blocked(), X, Y, k, impl);
    FormatOps<Csr<V>>::spmm_add(a.remainder(), X, Y, k, Layout::kRowMajor,
                                impl);
  }

  static std::vector<std::size_t> pass_weights(const BcsdDec<V>& a, int pass) {
    return pass == 0 ? FormatOps<Bcsd<V>>::pass_weights(a.blocked(), 0)
                     : FormatOps<Csr<V>>::pass_weights(a.remainder(), 0);
  }
  static index_t pass_first_row(const BcsdDec<V>& a, int pass, index_t g) {
    return pass == 0 ? FormatOps<Bcsd<V>>::pass_first_row(a.blocked(), 0, g)
                     : g;
  }
  static void pass_run(const BcsdDec<V>& a, int pass, index_t g0, index_t g1,
                       const V* x, V* y, Impl impl) {
    if (pass == 0)
      FormatOps<Bcsd<V>>::pass_run(a.blocked(), 0, g0, g1, x, y, impl);
    else
      FormatOps<Csr<V>>::pass_run(a.remainder(), 0, g0, g1, x, y, impl);
  }
  static void pass_run_multi(const BcsdDec<V>& a, int pass, index_t g0,
                             index_t g1, const V* X, V* Y, int k,
                             Layout layout, Impl impl) {
    if (pass == 0)
      FormatOps<Bcsd<V>>::pass_run_multi(a.blocked(), 0, g0, g1, X, Y, k,
                                         layout, impl);
    else
      FormatOps<Csr<V>>::pass_run_multi(a.remainder(), 0, g0, g1, X, Y, k,
                                        layout, impl);
  }
};

// ---------------------------------------------------------------- UBCSR ----

template <class V>
struct FormatOps<Ubcsr<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kUbcsr;
  static constexpr const char* kName = "ubcsr";
  static constexpr bool kParallel = false;
  static constexpr int kPasses = 1;

  static Ubcsr<V> convert(const Csr<V>& a, const Candidate& c) {
    return Ubcsr<V>::from_csr(a, c.shape);
  }
  static void validate(const Ubcsr<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const Ubcsr<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const Ubcsr<V>& a, const V* x, V* y, Impl impl) {
    ubcsr_kernel<V>(a.shape(), impl == Impl::kSimd)(a, 0, a.block_rows(), x,
                                                    y);
  }
  static void spmm_add(const Ubcsr<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    detail::spmm_add_via_spmv(a, X, Y, k, layout, impl);
  }
};

// ------------------------------------------------------------ CSR-DELTA ----

template <class V>
struct FormatOps<CsrDelta<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kCsrDelta;
  static constexpr const char* kName = "csr_delta";
  static constexpr bool kParallel = false;
  static constexpr int kPasses = 1;

  static CsrDelta<V> convert(const Csr<V>& a, const Candidate&) {
    return CsrDelta<V>::from_csr(a);
  }
  static void validate(const CsrDelta<V>& m) { bspmv::validate(m); }
  static std::size_t working_set_bytes(const CsrDelta<V>& m) {
    return m.working_set_bytes();
  }
  /// The delta-decode loop is inherently serial; the impl flag is accepted
  /// for API symmetry and ignored.
  static void spmv_add(const CsrDelta<V>& a, const V* x, V* y, Impl) {
    csr_delta_spmv(a, x, y);
  }
  static void spmm_add(const CsrDelta<V>& a, const V* X, V* Y, int k,
                       Layout layout, Impl impl) {
    detail::spmm_add_via_spmv(a, X, Y, k, layout, impl);
  }
};

}  // namespace bspmv
