#include "src/kernels/ubcsr_kernels_impl.hpp"

namespace bspmv {
template UbcsrKernelFn<double> ubcsr_kernel<double>(BlockShape, bool);
}  // namespace bspmv
