#include "src/util/timing.hpp"

#include <algorithm>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

double median_of(std::vector<double> xs) {
  BSPMV_DBG_ASSERT(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

MeasureResult summarize(const std::vector<double>& per_iter, double total,
                        std::uint64_t iterations) {
  MeasureResult r;
  r.seconds_per_iter = *std::min_element(per_iter.begin(), per_iter.end());
  r.median_seconds = median_of(per_iter);
  r.total_seconds = total;
  r.iterations = iterations;
  return r;
}

}  // namespace

MeasureResult time_repeated(const std::function<void()>& fn, int iters,
                            int reps, int warmup) {
  BSPMV_CHECK(iters > 0 && reps > 0 && warmup >= 0);
  for (int i = 0; i < warmup; ++i) fn();

  std::vector<double> per_iter;
  per_iter.reserve(static_cast<std::size_t>(reps));
  Timer total;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (int i = 0; i < iters; ++i) fn();
    per_iter.push_back(t.elapsed() / iters);
  }
  return summarize(per_iter, total.elapsed(),
                   static_cast<std::uint64_t>(iters) * reps);
}

MeasureResult time_adaptive(const std::function<void()>& fn,
                            double min_batch_seconds, int reps) {
  BSPMV_CHECK(min_batch_seconds > 0 && reps > 0);
  // Grow the batch until it runs long enough to dominate timer noise.
  std::uint64_t batch = 1;
  double batch_time = 0.0;
  for (;;) {
    Timer t;
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    batch_time = t.elapsed();
    if (batch_time >= min_batch_seconds) break;
    // At least double; overshoot toward the target to converge fast.
    const double scale =
        std::max(2.0, 1.4 * min_batch_seconds / std::max(batch_time, 1e-9));
    batch = static_cast<std::uint64_t>(static_cast<double>(batch) * scale) + 1;
  }

  std::vector<double> per_iter;
  per_iter.reserve(static_cast<std::size_t>(reps));
  per_iter.push_back(batch_time / static_cast<double>(batch));
  Timer total;
  for (int r = 1; r < reps; ++r) {
    Timer t;
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    per_iter.push_back(t.elapsed() / static_cast<double>(batch));
  }
  return summarize(per_iter, total.elapsed() + batch_time,
                   batch * static_cast<std::uint64_t>(reps));
}

}  // namespace bspmv
