#include "src/gen/generators.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/macros.hpp"
#include "src/util/prng.hpp"

namespace bspmv {

namespace {

template <class V>
V rand_value(Xoshiro256& rng) {
  // Values in [0.1, 1.1): never zero, bounded magnitude so accumulated
  // rounding stays small in the test comparisons.
  return static_cast<V>(0.1 + rng.uniform());
}

}  // namespace

template <class V>
Coo<V> gen_dense(index_t n, index_t m, std::uint64_t seed) {
  BSPMV_CHECK(n >= 1 && m >= 1);
  Coo<V> coo(n, m);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < m; ++j) coo.add(i, j, rand_value<V>(rng));
  return coo;
}

template <class V>
Coo<V> gen_uniform_random(index_t n, index_t m, std::size_t nnz,
                          std::uint64_t seed) {
  BSPMV_CHECK(n >= 1 && m >= 1);
  Coo<V> coo(n, m);
  coo.reserve(nnz);
  Xoshiro256 rng(seed);
  for (std::size_t k = 0; k < nnz; ++k) {
    const auto i = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const auto j = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(m)));
    coo.add(i, j, rand_value<V>(rng));
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> gen_stencil_2d(index_t nx, index_t ny, int points, std::uint64_t seed) {
  BSPMV_CHECK_MSG(points == 5 || points == 9, "2-D stencil must be 5 or 9 pt");
  const index_t n = nx * ny;
  Coo<V> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(points));
  Xoshiro256 rng(seed);
  const int reach = 1;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      for (int dy = -reach; dy <= reach; ++dy) {
        for (int dx = -reach; dx <= reach; ++dx) {
          if (points == 5 && dx != 0 && dy != 0) continue;  // no corners
          const index_t xx = x + dx;
          const index_t yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          coo.add(row, yy * nx + xx, rand_value<V>(rng));
        }
      }
    }
  }
  return coo;
}

template <class V>
Coo<V> gen_stencil_3d(index_t nx, index_t ny, index_t nz, int points,
                      std::uint64_t seed) {
  BSPMV_CHECK_MSG(points == 7 || points == 27, "3-D stencil must be 7 or 27 pt");
  const index_t n = nx * ny * nz;
  Coo<V> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(points));
  Xoshiro256 rng(seed);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = (z * ny + y) * nx + x;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int manhattan = std::abs(dx) + std::abs(dy) + std::abs(dz);
              if (points == 7 && manhattan > 1) continue;  // faces only
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz)
                continue;
              coo.add(row, (zz * ny + yy) * nx + xx, rand_value<V>(rng));
            }
          }
        }
      }
    }
  }
  return coo;
}

template <class V>
Coo<V> gen_blocked_band(index_t nodes, int block, index_t node_band, int nbrs,
                        double fill, std::uint64_t seed) {
  BSPMV_CHECK(nodes >= 1 && block >= 1 && nbrs >= 0);
  BSPMV_CHECK(fill >= 0.0 && fill <= 1.0);
  const index_t n = nodes * block;
  Coo<V> coo(n, n);
  Xoshiro256 rng(seed);

  auto emit_block = [&](index_t bi, index_t bj, bool full) {
    for (int r = 0; r < block; ++r) {
      for (int c = 0; c < block; ++c) {
        if (!full && rng.uniform() > 0.6) continue;
        coo.add(bi * block + r, bj * block + c, rand_value<V>(rng));
      }
    }
  };

  for (index_t i = 0; i < nodes; ++i) {
    emit_block(i, i, /*full=*/true);  // self-coupling is always dense
    for (int k = 0; k < nbrs; ++k) {
      const index_t lo = std::max<index_t>(0, i - node_band);
      const index_t hi = std::min<index_t>(nodes - 1, i + node_band);
      const index_t j =
          lo + static_cast<index_t>(rng.below(
                   static_cast<std::uint64_t>(hi - lo + 1)));
      emit_block(i, j, rng.uniform() < fill);
    }
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> gen_rmat(int scale, std::size_t nnz, double a, double b, double c,
                std::uint64_t seed) {
  BSPMV_CHECK(scale >= 1 && scale <= 30);
  BSPMV_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  const index_t n = index_t{1} << scale;
  Coo<V> coo(n, n);
  coo.reserve(nnz);
  Xoshiro256 rng(seed);
  for (std::size_t k = 0; k < nnz; ++k) {
    index_t i = 0, j = 0;
    for (int level = 0; level < scale; ++level) {
      const double u = rng.uniform();
      i <<= 1;
      j <<= 1;
      if (u < a) {
        // top-left quadrant
      } else if (u < a + b) {
        j |= 1;
      } else if (u < a + b + c) {
        i |= 1;
      } else {
        i |= 1;
        j |= 1;
      }
    }
    coo.add(i, j, rand_value<V>(rng));
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> gen_short_rows(index_t n, int min_nnz, int max_nnz,
                      std::uint64_t seed) {
  BSPMV_CHECK(n >= 1 && min_nnz >= 0 && max_nnz >= min_nnz);
  Coo<V> coo(n, n);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, rand_value<V>(rng));  // diagonal keeps the matrix usable
    const int extra =
        min_nnz + static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(max_nnz - min_nnz + 1)));
    for (int k = 0; k < extra; ++k) {
      const auto j =
          static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      coo.add(i, j, rand_value<V>(rng));
    }
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> gen_row_segments(index_t n, index_t m, int segs_min, int segs_max,
                        int len_min, int len_max, std::uint64_t seed) {
  BSPMV_CHECK(n >= 1 && m >= 1);
  BSPMV_CHECK(segs_min >= 1 && segs_max >= segs_min);
  BSPMV_CHECK(len_min >= 1 && len_max >= len_min && len_max <= m);
  Coo<V> coo(n, m);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < n; ++i) {
    const int segs =
        segs_min + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(segs_max - segs_min + 1)));
    for (int s = 0; s < segs; ++s) {
      const int len =
          len_min + static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(len_max - len_min + 1)));
      const auto start = static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(m - len + 1)));
      for (int t = 0; t < len; ++t)
        coo.add(i, start + t, rand_value<V>(rng));
    }
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> gen_multi_diagonal(index_t n, const std::vector<index_t>& offsets,
                          std::uint64_t seed) {
  BSPMV_CHECK(n >= 1);
  Coo<V> coo(n, n);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < n; ++i) {
    for (index_t off : offsets) {
      const index_t j = i + off;
      if (j >= 0 && j < n) coo.add(i, j, rand_value<V>(rng));
    }
  }
  coo.sort_and_combine();
  return coo;
}

template <class V>
Coo<V> combine(Coo<V> a, const Coo<V>& b) {
  BSPMV_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                  "combine: dimension mismatch");
  for (const auto& e : b.entries()) a.add(e.row, e.col, e.value);
  a.sort_and_combine();
  return a;
}

template <class V>
Coo<V> perturb_drop(const Coo<V>& a, double drop_prob, std::uint64_t seed) {
  BSPMV_CHECK(drop_prob >= 0.0 && drop_prob <= 1.0);
  Coo<V> out(a.rows(), a.cols());
  out.reserve(a.nnz());
  Xoshiro256 rng(seed);
  for (const auto& e : a.entries())
    if (rng.uniform() >= drop_prob) out.add(e.row, e.col, e.value);
  return out;
}

#define BSPMV_INST(V)                                                        \
  template Coo<V> gen_dense(index_t, index_t, std::uint64_t);                \
  template Coo<V> gen_uniform_random(index_t, index_t, std::size_t,          \
                                     std::uint64_t);                         \
  template Coo<V> gen_stencil_2d(index_t, index_t, int, std::uint64_t);      \
  template Coo<V> gen_stencil_3d(index_t, index_t, index_t, int,             \
                                 std::uint64_t);                             \
  template Coo<V> gen_blocked_band(index_t, int, index_t, int, double,       \
                                   std::uint64_t);                           \
  template Coo<V> gen_rmat(int, std::size_t, double, double, double,         \
                           std::uint64_t);                                   \
  template Coo<V> gen_short_rows(index_t, int, int, std::uint64_t);          \
  template Coo<V> gen_row_segments(index_t, index_t, int, int, int, int,     \
                                   std::uint64_t);                           \
  template Coo<V> gen_multi_diagonal(index_t, const std::vector<index_t>&,   \
                                     std::uint64_t);                         \
  template Coo<V> combine(Coo<V>, const Coo<V>&);                            \
  template Coo<V> perturb_drop(const Coo<V>&, double, std::uint64_t);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
