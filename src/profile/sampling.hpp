// Measurement resilience for the kernel profiler — the t_b / nof_b model
// inputs (eq. 2 and eq. 4) come from wall-clock timings that on shared
// or noisy machines get contaminated by migrations, frequency ramps and
// co-tenant interference. robust_samples() wraps a raw timing draw with
// MAD-based outlier rejection and retry-with-backoff so one straggler
// sample cannot poison a machine profile that is then cached for weeks.
#pragma once

#include <functional>

#include "src/util/run_control.hpp"

namespace bspmv {

/// Policy knobs for one robust measurement.
struct SamplePolicy {
  int min_samples = 3;      ///< accepted samples required for a verdict
  int max_retries = 2;      ///< extra draw rounds when contaminated
  /// Samples farther than this many MADs from the median are rejected
  /// (the classic robust z-score gate; MAD is floored at 0.5% of the
  /// median so a perfectly quiet machine never divides by ~zero).
  double mad_gate = 6.0;
  double backoff_seconds = 0.002;  ///< sleep before retry 1; doubles per round
};

/// Outcome of a robust measurement, for logging/telemetry.
struct SampleStats {
  double best = 0.0;    ///< minimum accepted sample (the paper's estimator)
  double median = 0.0;  ///< median of accepted samples
  int accepted = 0;
  int rejected = 0;  ///< outliers discarded across all rounds
  int retries = 0;   ///< extra rounds drawn
};

/// Draw timing samples from `draw` until `policy.min_samples` of them
/// pass the MAD gate or retries are exhausted (then the survivors win —
/// a profile late is better than no profile). `control` is checked
/// before every draw so a profiling deadline aborts between samples with
/// bspmv::timeout_error rather than mid-kernel.
SampleStats robust_samples(const std::function<double()>& draw,
                           const SamplePolicy& policy = {},
                           RunControl* control = nullptr);

}  // namespace bspmv
