// Shared fixtures/utilities for the blockspmv test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/util/macros.hpp"
#include "src/core/candidates.hpp"
#include "src/formats/coo.hpp"
#include "src/formats/csr.hpp"
#include "src/profile/machine_profile.hpp"
#include "src/util/aligned.hpp"
#include "src/util/prng.hpp"

namespace bspmv::testing {

/// Random sparse matrix with ~`density` fill, deterministic per seed.
template <class V>
Coo<V> random_coo(index_t n, index_t m, double density, std::uint64_t seed) {
  Coo<V> coo(n, m);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < m; ++j)
      if (rng.uniform() < density)
        coo.add(i, j, static_cast<V>(0.1 + rng.uniform()));
  return coo;
}

/// Random matrix with clustered (block-friendly) structure.
template <class V>
Coo<V> random_blocky_coo(index_t n, index_t m, int block, double block_density,
                         double fill, std::uint64_t seed) {
  Coo<V> coo(n, m);
  Xoshiro256 rng(seed);
  for (index_t bi = 0; bi * block < n; ++bi) {
    for (index_t bj = 0; bj * block < m; ++bj) {
      if (rng.uniform() >= block_density) continue;
      for (int r = 0; r < block && bi * block + r < n; ++r)
        for (int c = 0; c < block && bj * block + c < m; ++c)
          if (rng.uniform() < fill)
            coo.add(bi * block + r, bj * block + c,
                    static_cast<V>(0.1 + rng.uniform()));
    }
  }
  return coo;
}

template <class V>
aligned_vector<V> random_x(index_t m, std::uint64_t seed) {
  aligned_vector<V> x(static_cast<std::size_t>(m));
  Xoshiro256 rng(seed);
  for (auto& e : x) e = static_cast<V>(rng.uniform() - 0.5);
  return x;
}

template <class V>
double rel_tolerance() {
  return sizeof(V) == sizeof(float) ? 2e-3 : 1e-10;
}

/// EXPECT y ≈ ref elementwise with a relative tolerance suited to V.
template <class V>
void expect_vectors_near(const V* y, const V* ref, index_t n,
                         const std::string& context) {
  const double tol = rel_tolerance<V>();
  for (index_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(y[i]);
    const double b = static_cast<double>(ref[i]);
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    ASSERT_NEAR(a, b, tol * scale)
        << context << " mismatch at row " << i;
  }
}

/// Check an arbitrary spmv result against the COO reference.
template <class V, class RunFn>
void check_against_reference(const Coo<V>& coo, RunFn run,
                             const std::string& context,
                             std::uint64_t xseed = 7) {
  const auto x = random_x<V>(coo.cols(), xseed);
  aligned_vector<V> y(static_cast<std::size_t>(coo.rows()),
                      static_cast<V>(99));  // poison: must be overwritten
  aligned_vector<V> ref(static_cast<std::size_t>(coo.rows()), V{0});
  coo.spmv_reference(x.data(), ref.data());
  run(x.data(), y.data());
  expect_vectors_near(y.data(), ref.data(), coo.rows(), context);
}

/// A fully-populated synthetic machine profile (every kernel id from the
/// bench candidate set, both precisions) for model tests that must not
/// depend on wall-clock measurements.
inline MachineProfile synthetic_profile(double bw = 10e9, double tb = 2e-9,
                                        double nof = 0.3) {
  MachineProfile p;
  p.bandwidth_bps = bw;
  p.read_bandwidth_bps = bw;
  p.latency_seconds = 80e-9;
  p.description = "synthetic test profile";
  for (Precision prec : {Precision::kSingle, Precision::kDouble}) {
    for (const Candidate& c : bench_candidates(true, true)) {
      p.set_kernel(prec, c.kernel_id(), KernelProfile{tb, nof});
      p.set_kernel(prec, c.id(), KernelProfile{tb, nof});
    }
  }
  return p;
}

}  // namespace bspmv::testing
