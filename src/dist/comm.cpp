#include "src/dist/comm.hpp"

#include <algorithm>
#include <cstring>

#include "src/util/errors.hpp"
#include "src/util/macros.hpp"
#include "src/util/timing.hpp"

namespace bspmv::dist {

using serve::MsgType;

HaloExchange::HaloExchange(const RankShard& shard, int my_rank,
                           std::vector<int> peer_fds,
                           serve::WireLimits limits)
    : shard_(shard),
      my_rank_(my_rank),
      peer_fds_(std::move(peer_fds)),
      limits_(limits) {
  const int ranks = static_cast<int>(shard.halo_seg.size()) - 1;
  for (int p = 0; p < ranks; ++p) {
    if (p == my_rank_) continue;
    const bool sends = static_cast<std::size_t>(p) < shard.send_cols.size() &&
                       !shard.send_cols[static_cast<std::size_t>(p)].empty();
    const bool recvs = shard.halo_seg[static_cast<std::size_t>(p) + 1] >
                       shard.halo_seg[static_cast<std::size_t>(p)];
    if (!sends && !recvs) continue;
    BSPMV_CHECK_MSG(static_cast<std::size_t>(p) < peer_fds_.size() &&
                        peer_fds_[static_cast<std::size_t>(p)] >= 0,
                    "halo exchange has traffic with rank " +
                        std::to_string(p) + " but no channel to it");
    peers_.push_back(p);
  }
  send_buf_.resize(peers_.size());
  thread_stats_.resize(peers_.size());
  for (std::size_t s = 0; s < peers_.size(); ++s)
    send_buf_[s].resize(
        shard.send_cols[static_cast<std::size_t>(peers_[s])].size());
}

HaloExchange::~HaloExchange() {
  // A caller that errored between start() and finish() must not leak
  // running threads; swallow secondary errors (the first one already
  // propagated).
  if (in_flight_) {
    try {
      finish();
    } catch (...) {
    }
  }
}

void HaloExchange::start(const double* x_owned, double* halo_x,
                         std::uint32_t iter, std::uint32_t epoch) {
  BSPMV_CHECK_MSG(!in_flight_, "halo exchange already in flight");
  in_flight_ = true;
  first_error_ = nullptr;
  threads_.clear();
  threads_.reserve(peers_.size());
  for (std::size_t s = 0; s < peers_.size(); ++s)
    threads_.emplace_back([this, s, x_owned, halo_x, iter, epoch] {
      try {
        exchange_with(s, peers_[s], x_owned, halo_x, iter, epoch);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    });
}

void HaloExchange::finish() {
  BSPMV_CHECK_MSG(in_flight_, "halo exchange finish() without start()");
  for (auto& t : threads_) t.join();
  threads_.clear();
  in_flight_ = false;
  for (auto& st : thread_stats_) {
    totals_.send_seconds += st.send_seconds;
    totals_.recv_seconds += st.recv_seconds;
    totals_.bytes_sent += st.bytes_sent;
    totals_.bytes_recv += st.bytes_recv;
    totals_.msgs_sent += st.msgs_sent;
    totals_.msgs_recv += st.msgs_recv;
    st = RankStats{};
  }
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void HaloExchange::exchange_with(std::size_t slot, int peer,
                                 const double* x_owned, double* halo_x,
                                 std::uint32_t iter, std::uint32_t epoch) {
  const int fd = peer_fds_[static_cast<std::size_t>(peer)];
  RankStats& st = thread_stats_[slot];
  const auto& send_idx = shard_.send_cols[static_cast<std::size_t>(peer)];
  const index_t r0 = shard_.halo_seg[static_cast<std::size_t>(peer)];
  const index_t r1 = shard_.halo_seg[static_cast<std::size_t>(peer) + 1];

  auto do_send = [&] {
    if (send_idx.empty()) return;
    Timer t;
    auto& buf = send_buf_[slot];
    for (std::size_t i = 0; i < send_idx.size(); ++i)
      buf[i] = x_owned[send_idx[i]];
    HaloMsg msg;
    msg.from = static_cast<std::uint32_t>(my_rank_);
    msg.epoch = epoch;
    msg.iter = iter;
    msg.x = buf;
    std::string payload = msg.encode();
    if (corrupt_next_.exchange(false)) {
      // Injected fault: mangle the declared value count (bytes 12..19 of
      // the payload) so the peer's bounds check fails the decode typed.
      for (std::size_t i = 12; i < payload.size() && i < 20; ++i)
        payload[i] = static_cast<char>(0xff);
    }
    serve::write_frame(fd, MsgType::kHalo, payload, limits_);
    st.send_seconds += t.elapsed();
    st.bytes_sent += payload.size();
    ++st.msgs_sent;
  };
  auto do_recv = [&] {
    if (r1 == r0) return;
    Timer t;
    MsgType type{};
    std::string payload;
    if (!serve::read_frame(fd, type, payload, limits_))
      throw io_error("rank " + std::to_string(peer) +
                     " closed its halo channel mid-exchange");
    if (type != MsgType::kHalo)
      throw parse_error(std::string("expected halo frame, got ") +
                        serve::msg_type_name(type));
    HaloMsg msg = HaloMsg::decode(payload);
    if (msg.epoch != epoch)
      throw parse_error(
          "halo frame from " +
          std::string(msg.epoch < epoch ? "stale pre-recovery" : "future") +
          " epoch " + std::to_string(msg.epoch) + " (expected " +
          std::to_string(epoch) + ")");
    if (msg.from != static_cast<std::uint32_t>(peer) || msg.iter != iter)
      throw parse_error("halo frame from wrong peer or iteration (from " +
                        std::to_string(msg.from) + ", iter " +
                        std::to_string(msg.iter) + ")");
    if (msg.x.size() != static_cast<std::size_t>(r1 - r0))
      throw parse_error("halo frame holds " + std::to_string(msg.x.size()) +
                        " values, segment needs " + std::to_string(r1 - r0));
    std::memcpy(halo_x + r0, msg.x.data(), msg.x.size() * sizeof(double));
    st.recv_seconds += t.elapsed();
    st.bytes_recv += payload.size();
    ++st.msgs_recv;
  };

  // Matched pairwise ordering: the lower rank of every pair sends first.
  if (my_rank_ < peer) {
    do_send();
    do_recv();
  } else {
    do_recv();
    do_send();
  }
}

}  // namespace bspmv::dist
