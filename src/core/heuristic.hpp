// The SPARSITY/OSKI-style BCSR selection heuristic of Vuduc et al. [16]
// and Buttari et al. [3], which §IV positions the paper's models against:
// estimate each shape's fill ratio (stored values / nonzeros, >= 1) by
// sampling block rows, profile a dense matrix per block kernel, and pick
// the shape minimising  nnz · fill · t_b/(r·c). Unlike MEM/MEMCOMP/
// OVERLAP it is "constrained to the BCSR format only".
#pragma once

#include <cstdint>

#include "src/core/candidates.hpp"
#include "src/formats/csr.hpp"
#include "src/profile/machine_profile.hpp"

namespace bspmv {

struct HeuristicSelection {
  Candidate candidate;           ///< kBcsr with the winning shape, or kCsr
  double predicted_seconds = 0;  ///< heuristic's time estimate
  double est_fill = 1.0;         ///< estimated fill of the winning shape
};

/// Estimate the BCSR fill ratio of `shape` by scanning a `sample_fraction`
/// of block rows (>= 1 block row; 1.0 = exact). Deterministic per seed.
template <class V>
double estimate_bcsr_fill(const Csr<V>& a, BlockShape shape,
                          double sample_fraction, std::uint64_t seed = 1);

/// Run the heuristic over every BCSR shape (and CSR as the 1×1 fallback),
/// using the machine profile's dense-profiled block times.
template <class V>
HeuristicSelection select_bcsr_heuristic(const Csr<V>& a,
                                         const MachineProfile& profile,
                                         double sample_fraction = 0.05,
                                         bool include_simd = true,
                                         std::uint64_t seed = 1);

#define BSPMV_DECL(V)                                                     \
  extern template double estimate_bcsr_fill(const Csr<V>&, BlockShape,   \
                                            double, std::uint64_t);      \
  extern template HeuristicSelection select_bcsr_heuristic(              \
      const Csr<V>&, const MachineProfile&, double, bool, std::uint64_t);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
