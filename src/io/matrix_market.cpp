#include "src/io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Header parse_header(const std::string& line) {
  std::istringstream is(line);
  std::string banner, object, fmt, field, symmetry;
  is >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw parse_error("MatrixMarket: missing %%MatrixMarket banner");
  if (lower(object) != "matrix")
    throw parse_error("MatrixMarket: only 'matrix' objects supported");
  if (lower(fmt) != "coordinate")
    throw parse_error("MatrixMarket: only 'coordinate' format supported");

  Header h;
  const std::string f = lower(field);
  if (f == "pattern") h.pattern = true;
  else if (f != "real" && f != "integer" && f != "double")
    throw parse_error("MatrixMarket: unsupported field '" + field + '\'');

  const std::string s = lower(symmetry);
  if (s == "symmetric") h.symmetric = true;
  else if (s == "skew-symmetric") { h.symmetric = true; h.skew = true; }
  else if (s != "general")
    throw parse_error("MatrixMarket: unsupported symmetry '" + symmetry + '\'');
  return h;
}

}  // namespace

template <class V>
Coo<V> parse_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw parse_error("MatrixMarket: empty input");
  const Header h = parse_header(line);

  // Skip comment lines.
  do {
    if (!std::getline(in, line))
      throw parse_error("MatrixMarket: missing size line");
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream is(line);
    if (!(is >> rows >> cols >> entries))
      throw parse_error("MatrixMarket: malformed size line");
  }
  if (rows < 0 || cols < 0 || entries < 0)
    throw parse_error("MatrixMarket: negative dimensions");

  Coo<V> coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<std::size_t>(h.symmetric ? 2 * entries : entries));

  for (long long e = 0; e < entries; ++e) {
    long long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j))
      throw parse_error("MatrixMarket: truncated entry list");
    if (!h.pattern && !(in >> v))
      throw parse_error("MatrixMarket: entry missing value");
    if (i < 1 || i > rows || j < 1 || j > cols)
      throw parse_error("MatrixMarket: entry index out of bounds");
    const index_t r = static_cast<index_t>(i - 1);
    const index_t c = static_cast<index_t>(j - 1);
    coo.add(r, c, static_cast<V>(v));
    if (h.symmetric && r != c)
      coo.add(c, r, static_cast<V>(h.skew ? -v : v));
  }
  return coo;
}

template <class V>
Coo<V> read_matrix_market(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw parse_error("cannot open '" + path + '\'');
  return parse_matrix_market<V>(f);
}

template <class V>
void write_matrix_market(const Coo<V>& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by blockspmv\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (const auto& e : a.entries())
    out << (e.row + 1) << ' ' << (e.col + 1) << ' '
        << static_cast<double>(e.value) << '\n';
}

template <class V>
void write_matrix_market(const Coo<V>& a, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw parse_error("cannot open '" + path + "' for writing");
  write_matrix_market(a, f);
  f.flush();
  if (!f) throw parse_error("write to '" + path + "' failed");
}

#define BSPMV_INST(V)                                             \
  template Coo<V> parse_matrix_market(std::istream&);             \
  template Coo<V> read_matrix_market(const std::string&);         \
  template void write_matrix_market(const Coo<V>&, std::ostream&); \
  template void write_matrix_market(const Coo<V>&, const std::string&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
