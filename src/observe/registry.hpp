// Telemetry substrate: a process-wide counter/timer registry fed by the
// instrumentation hooks in src/observe/observe.hpp.
//
// Three kinds of facts accumulate here, all keyed by name:
//   - spans      : wall time of a scoped phase (RAII Span). Spans nest —
//                  a Span opened inside another records under the dotted
//                  path "outer/inner", so conversion time inside a
//                  prepare call stays attributable to both.
//   - counters   : monotonically increasing event counts (candidates
//                  ranked, conversions failed, CSR fallbacks taken).
//   - thread time: per-OpenMP-thread kernel time and assigned stored
//                  values, recorded by the §V-A parallel drivers; the
//                  spread across tids is the direct load-imbalance view
//                  the paper's nnz-balanced partitioning targets.
//
// The registry exists in every build; what the BSPMV_OBSERVE CMake
// option controls is whether the *hooks* in library hot paths compile to
// calls or to nothing (see observe.hpp). A runtime master switch
// (environment variable BSPMV_OBSERVE=off, or set_enabled(false)) turns
// an enabled build into a near-no-op: Span construction and every add_*
// becomes a single branch.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/util/timing.hpp"

namespace bspmv::observe {

/// True when the library was compiled with the hooks in (CMake option
/// BSPMV_OBSERVE, default ON). With OFF, instrumented functions contain
/// no observability code at all and the registry only sees explicit
/// calls from tests or tools.
#if defined(BSPMV_OBSERVE_HOOKS) && BSPMV_OBSERVE_HOOKS
inline constexpr bool kHooksEnabled = true;
#else
inline constexpr bool kHooksEnabled = false;
#endif

/// Runtime master switch. Defaults to the environment: BSPMV_OBSERVE set
/// to "off", "OFF", "0" or "false" disables collection; anything else
/// (including unset) enables it.
bool enabled();
void set_enabled(bool on);

/// Accumulated wall time of one span path.
struct SpanStat {
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

/// Accumulated kernel time of one OpenMP thread under one metric.
struct ThreadStat {
  double seconds = 0.0;      ///< total kernel wall time across calls
  std::uint64_t calls = 0;   ///< run() invocations recorded
  std::uint64_t items = 0;   ///< stored values processed (totals; includes padding)
};

/// A consistent copy of everything recorded so far.
struct Snapshot {
  std::map<std::string, SpanStat> spans;
  std::map<std::string, std::uint64_t> counters;
  /// metric name -> (thread id -> accumulated stat)
  std::map<std::string, std::map<int, ThreadStat>> thread_times;
};

/// Process-wide sink. All mutators early-return when the runtime switch
/// is off; a coarse mutex is fine because spans wrap phases (conversion,
/// selection, one parallel SpMV call), not inner loops.
class CounterRegistry {
 public:
  static CounterRegistry& instance();

  void add_span(const std::string& path, double seconds);
  void add_count(const std::string& name, std::uint64_t n);
  void add_thread_time(const std::string& name, int tid, double seconds,
                       std::uint64_t items);

  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

/// RAII scoped timer. Records the elapsed wall time under the path
/// formed by every live enclosing Span on this thread plus `name`
/// ("select/rank", "prepare/convert/bcsr", ...). Cheap when collection
/// is off: one branch, no clock read, no allocation.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full dotted path this span records under (empty when inactive).
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Timer timer_;
  std::size_t parent_len_ = 0;
  bool active_ = false;
};

}  // namespace bspmv::observe
