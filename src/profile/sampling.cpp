#include "src/profile/sampling.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

SampleStats robust_samples(const std::function<double()>& draw,
                           const SamplePolicy& policy, RunControl* control) {
  BSPMV_CHECK_MSG(policy.min_samples >= 1, "min_samples must be >= 1");
  BSPMV_CHECK_MSG(policy.max_retries >= 0, "max_retries must be >= 0");
  BSPMV_CHECK_MSG(policy.mad_gate > 0, "mad_gate must be positive");

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(policy.min_samples) + 2);
  SampleStats stats;

  auto draw_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      if (control) control->check();
      samples.push_back(draw());
    }
  };

  draw_n(policy.min_samples);
  for (;;) {
    const double med = median_of(samples);
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (double s : samples) dev.push_back(std::abs(s - med));
    // Floor the MAD so identical samples (quiet machine, coarse clock)
    // do not turn the gate into an equality test.
    const double mad = std::max(median_of(dev), 5e-3 * std::abs(med));

    std::vector<double> accepted;
    accepted.reserve(samples.size());
    int rejected = 0;
    for (double s : samples) {
      if (std::abs(s - med) <= policy.mad_gate * mad)
        accepted.push_back(s);
      else
        ++rejected;
    }

    if (static_cast<int>(accepted.size()) >= policy.min_samples ||
        stats.retries >= policy.max_retries) {
      // Survivors win even when short: a degraded estimate beats a
      // wedged profiler (graceful degradation, DESIGN.md §7).
      const std::vector<double>& pool = accepted.empty() ? samples : accepted;
      stats.best = *std::min_element(pool.begin(), pool.end());
      stats.median = median_of(pool);
      stats.accepted = static_cast<int>(pool.size());
      stats.rejected += rejected;
      return stats;
    }

    ++stats.retries;
    stats.rejected += rejected;
    if (policy.backoff_seconds > 0) {
      const double backoff =
          policy.backoff_seconds * static_cast<double>(1 << (stats.retries - 1));
      if (control) control->check();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    // Keep the survivors, replace the outliers with fresh draws.
    samples = std::move(accepted);
    draw_n(policy.min_samples - static_cast<int>(samples.size()));
  }
}

}  // namespace bspmv
