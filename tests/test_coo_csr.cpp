// Unit tests for the COO staging format and the CSR baseline.
#include <gtest/gtest.h>

#include "src/formats/csr.hpp"
#include "src/kernels/csr_kernels.hpp"
#include "src/kernels/spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_coo;

TEST(Coo, AddAndBoundsChecks) {
  Coo<double> coo(3, 4);
  coo.add(0, 0, 1.0);
  coo.add(2, 3, 2.0);
  EXPECT_EQ(coo.nnz(), 2u);
  EXPECT_THROW(coo.add(3, 0, 1.0), invalid_argument_error);
  EXPECT_THROW(coo.add(0, 4, 1.0), invalid_argument_error);
  EXPECT_THROW(coo.add(-1, 0, 1.0), invalid_argument_error);
}

TEST(Coo, SortAndCombineSumsDuplicates) {
  Coo<double> coo(2, 2);
  coo.add(1, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 3.0);
  coo.add(0, 1, 4.0);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 3u);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[0].col, 0);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, 4.0);
  EXPECT_DOUBLE_EQ(coo.entries()[2].value, 4.0);  // 1 + 3
}

TEST(Coo, ReferenceSpmvMatchesHandComputation) {
  // [1 2; 0 3] * [10, 100] = [210, 300]
  Coo<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 1, 3.0);
  const double x[] = {10.0, 100.0};
  double y[2];
  coo.spmv_reference(x, y);
  EXPECT_DOUBLE_EQ(y[0], 210.0);
  EXPECT_DOUBLE_EQ(y[1], 300.0);
}

TEST(Csr, FromCooBuildsCorrectArrays) {
  Coo<double> coo(3, 3);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 2.0);
  coo.add(1, 2, 3.0);
  const Csr<double> a = Csr<double>::from_coo(std::move(coo));
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 3u);
  const aligned_vector<index_t> want_rp = {0, 1, 3, 3};
  EXPECT_EQ(a.row_ptr(), want_rp);
  EXPECT_EQ(a.row_nnz(0), 1);
  EXPECT_EQ(a.row_nnz(1), 2);
  EXPECT_EQ(a.row_nnz(2), 0);
}

TEST(Csr, ConstructorValidatesArrays) {
  // row_ptr wrong length
  EXPECT_THROW(Csr<double>(2, 2, {0, 1}, {0}, {1.0}), invalid_argument_error);
  // row_ptr not ending at nnz
  EXPECT_THROW(Csr<double>(2, 2, {0, 1, 2}, {0}, {1.0}),
               invalid_argument_error);
  // decreasing row_ptr
  EXPECT_THROW(Csr<double>(2, 2, {0, 1, 0}, {0}, {1.0}),
               invalid_argument_error);
  // col out of range
  EXPECT_THROW(Csr<double>(2, 2, {0, 1, 1}, {5}, {1.0}),
               invalid_argument_error);
  // valid
  EXPECT_NO_THROW(Csr<double>(2, 2, {0, 1, 1}, {1}, {1.0}));
}

TEST(Csr, CooRoundTripPreservesEntries) {
  Coo<double> coo = random_coo<double>(37, 41, 0.08, 11);
  coo.sort_and_combine();
  const auto entries_before = coo.entries();
  const Csr<double> a = Csr<double>::from_coo(coo);
  Coo<double> back = a.to_coo();
  back.sort_and_combine();
  ASSERT_EQ(back.nnz(), entries_before.size());
  for (std::size_t k = 0; k < entries_before.size(); ++k) {
    EXPECT_EQ(back.entries()[k].row, entries_before[k].row);
    EXPECT_EQ(back.entries()[k].col, entries_before[k].col);
    EXPECT_DOUBLE_EQ(back.entries()[k].value, entries_before[k].value);
  }
}

TEST(Csr, WorkingSetAccountsAllArrays) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(10, 12, 0.3, 3));
  const std::size_t expect = a.nnz() * (8 + 4) + 11 * 4 + (10 + 12) * 8;
  EXPECT_EQ(a.working_set_bytes(), expect);
}

using Types = ::testing::Types<float, double>;
template <class V>
class CsrSpmvTyped : public ::testing::Test {};
TYPED_TEST_SUITE(CsrSpmvTyped, Types);

TYPED_TEST(CsrSpmvTyped, ScalarMatchesReference) {
  using V = TypeParam;
  const Coo<V> coo = random_coo<V>(83, 91, 0.07, 21);
  const Csr<V> a = Csr<V>::from_coo(coo);
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(a, x, y, Impl::kScalar); },
      "csr scalar");
}

TYPED_TEST(CsrSpmvTyped, SimdMatchesReference) {
  using V = TypeParam;
  const Coo<V> coo = random_coo<V>(83, 91, 0.07, 22);
  const Csr<V> a = Csr<V>::from_coo(coo);
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(a, x, y, Impl::kSimd); },
      "csr simd");
}

TYPED_TEST(CsrSpmvTyped, RangeKernelCoversSubsetOnly) {
  using V = TypeParam;
  const Coo<V> coo = random_coo<V>(40, 40, 0.2, 23);
  const Csr<V> a = Csr<V>::from_coo(coo);
  const auto x = bspmv::testing::random_x<V>(40, 5);
  aligned_vector<V> full(40, V{0}), part(40, V{0});
  csr_spmv_scalar(a, 0, 40, x.data(), full.data());
  csr_spmv_scalar(a, 10, 30, x.data(), part.data());
  for (index_t i = 0; i < 40; ++i) {
    if (i >= 10 && i < 30)
      EXPECT_EQ(part[static_cast<std::size_t>(i)],
                full[static_cast<std::size_t>(i)]);
    else
      EXPECT_EQ(part[static_cast<std::size_t>(i)], V{0});
  }
}

TYPED_TEST(CsrSpmvTyped, EmptyRowsAndEmptyMatrix) {
  using V = TypeParam;
  // Matrix with all-empty rows.
  Coo<V> coo(5, 5);
  const Csr<V> a = Csr<V>::from_coo(coo);
  const auto x = bspmv::testing::random_x<V>(5, 1);
  aligned_vector<V> y(5, V{7});
  spmv(a, x.data(), y.data());
  for (const V& v : y) EXPECT_EQ(v, V{0});
}

TEST(Csr, HandlesSingleElementMatrix) {
  Coo<double> coo(1, 1);
  coo.add(0, 0, 5.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const double x[] = {3.0};
  double y[1];
  spmv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 15.0);
}

}  // namespace
}  // namespace bspmv
