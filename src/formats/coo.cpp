#include "src/formats/coo.hpp"

#include <algorithm>

#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
Coo<V>::Coo(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  BSPMV_CHECK_MSG(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
}

template <class V>
void Coo<V>::add(index_t row, index_t col, V value) {
  BSPMV_CHECK_MSG(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                  "COO entry out of bounds");
  entries_.push_back(Triplet<V>{row, col, value});
}

template <class V>
void Coo<V>::sort_and_combine() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet<V>& a, const Triplet<V>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value += entries_[i].value;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

template <class V>
void Coo<V>::spmv_reference(const V* x, V* y) const {
  std::fill(y, y + rows_, V{0});
  for (const auto& e : entries_) y[e.row] += e.value * x[e.col];
}

template class Coo<float>;
template class Coo<double>;

}  // namespace bspmv
