#include "src/parallel/partition.hpp"

#include <algorithm>

#include "src/formats/format_ops.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

std::vector<index_t> balanced_partition(std::span<const std::size_t> weights,
                                        int parts) {
  BSPMV_CHECK_MSG(parts >= 1, "partition needs at least one part");
  const std::size_t n = weights.size();
  std::size_t total = 0;
  for (std::size_t w : weights) total += w;

  std::vector<index_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds.back() = static_cast<index_t>(n);

  // Greedy prefix cuts at the ideal cumulative targets p·total/parts.
  std::size_t cum = 0;
  std::size_t unit = 0;
  for (int p = 1; p < parts; ++p) {
    const std::size_t target =
        (total * static_cast<std::size_t>(p)) / static_cast<std::size_t>(parts);
    while (unit < n && cum < target) cum += weights[unit++];
    bounds[static_cast<std::size_t>(p)] = static_cast<index_t>(unit);
  }
  return bounds;
}

std::vector<std::size_t> part_weight_sums(std::span<const std::size_t> weights,
                                          std::span<const index_t> bounds) {
  BSPMV_CHECK_MSG(bounds.size() >= 2, "bounds must delimit at least one part");
  std::vector<std::size_t> sums(bounds.size() - 1, 0);
  for (std::size_t p = 0; p + 1 < bounds.size(); ++p)
    for (index_t u = bounds[p]; u < bounds[p + 1]; ++u)
      sums[p] += weights[static_cast<std::size_t>(u)];
  return sums;
}

// The per-format weight vectors are defined by FormatOps::pass_weights;
// these named helpers are kept as the documented §V-A entry points.
template <class V>
std::vector<std::size_t> row_weights(const Csr<V>& a) {
  return FormatOps<Csr<V>>::pass_weights(a, 0);
}

template <class V>
std::vector<std::size_t> block_row_weights(const Bcsr<V>& a) {
  return FormatOps<Bcsr<V>>::pass_weights(a, 0);
}

template <class V>
std::vector<std::size_t> segment_weights(const Bcsd<V>& a) {
  return FormatOps<Bcsd<V>>::pass_weights(a, 0);
}

template std::vector<std::size_t> row_weights(const Csr<float>&);
template std::vector<std::size_t> row_weights(const Csr<double>&);
template std::vector<std::size_t> block_row_weights(const Bcsr<float>&);
template std::vector<std::size_t> block_row_weights(const Bcsr<double>&);
template std::vector<std::size_t> segment_weights(const Bcsd<float>&);
template std::vector<std::size_t> segment_weights(const Bcsd<double>&);

}  // namespace bspmv
