// Model-driven selection of storage format, block and implementation —
// the "autotuner" built on §IV's models.
#pragma once

#include <vector>

#include "src/core/models.hpp"

namespace bspmv {

struct RankedCandidate {
  Candidate candidate;
  double predicted_seconds = 0.0;
};

/// Rank every model candidate for matrix `a` under `model`, fastest
/// predicted first (ties broken deterministically by candidate id).
///
/// Per §V-B, the MEM model cannot distinguish kernel implementations (it
/// ignores the computational part), so it ranks the non-simd candidates
/// only; MEMCOMP/OVERLAP/MEMLAT also pick between scalar and simd.
template <class V>
std::vector<RankedCandidate> rank_candidates(ModelKind model, const Csr<V>& a,
                                             const MachineProfile& profile);

/// The model's selection: the top-ranked candidate.
template <class V>
RankedCandidate select_best(ModelKind model, const Csr<V>& a,
                            const MachineProfile& profile);

#define BSPMV_DECL(V)                                                  \
  extern template std::vector<RankedCandidate> rank_candidates(        \
      ModelKind, const Csr<V>&, const MachineProfile&);                \
  extern template RankedCandidate select_best(ModelKind, const Csr<V>&, \
                                              const MachineProfile&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
