// Tests for the observability subsystem (src/observe/): span nesting,
// counter aggregation across OpenMP threads, the runtime master switch,
// RunReport JSON round-tripping and validation, trajectory files, and
// the guarantee that a BSPMV_OBSERVE=OFF build keeps the registry empty
// while running instrumented library code.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/selector.hpp"
#include "src/observe/observe.hpp"
#include "src/observe/report.hpp"
#include "src/util/errors.hpp"
#include "src/util/timing.hpp"
#include "tests/test_helpers.hpp"

using namespace bspmv;
using namespace bspmv::observe;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::synthetic_profile;

namespace {

/// Every test starts from an empty, enabled registry and leaves it that
/// way, so tests do not observe each other's telemetry.
class ObserveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    CounterRegistry::instance().reset();
  }
  void TearDown() override {
    CounterRegistry::instance().reset();
    set_enabled(true);
  }
};

TEST_F(ObserveTest, SpanRecordsUnderItsName) {
  { Span s("phase"); }
  const Snapshot snap = CounterRegistry::instance().snapshot();
  ASSERT_EQ(snap.spans.count("phase"), 1u);
  EXPECT_EQ(snap.spans.at("phase").calls, 1u);
  EXPECT_GE(snap.spans.at("phase").seconds, 0.0);
}

TEST_F(ObserveTest, SpansNestIntoSlashPaths) {
  {
    Span outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    {
      Span inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
    }
    { Span again("inner"); }  // same path accumulates, calls = 2
  }
  { Span outer("outer"); }

  const Snapshot snap = CounterRegistry::instance().snapshot();
  ASSERT_EQ(snap.spans.count("outer"), 1u);
  ASSERT_EQ(snap.spans.count("outer/inner"), 1u);
  EXPECT_EQ(snap.spans.at("outer").calls, 2u);
  EXPECT_EQ(snap.spans.at("outer/inner").calls, 2u);
  // The inner path must not leak once its enclosing span closed.
  EXPECT_EQ(snap.spans.count("inner"), 0u);
}

TEST_F(ObserveTest, CountersAggregateAcrossOmpThreads) {
  constexpr int kPerThread = 1000;
  int threads = 0;
#pragma omp parallel
  {
#pragma omp single
    threads = omp_get_num_threads();
    for (int i = 0; i < kPerThread; ++i)
      CounterRegistry::instance().add_count("test.events", 1);
    CounterRegistry::instance().add_thread_time(
        "test.metric", omp_get_thread_num(), 0.25, 10);
  }

  const Snapshot snap = CounterRegistry::instance().snapshot();
  ASSERT_GE(threads, 1);
  EXPECT_EQ(snap.counters.at("test.events"),
            static_cast<std::uint64_t>(threads) * kPerThread);
  ASSERT_EQ(snap.thread_times.count("test.metric"), 1u);
  const auto& per_tid = snap.thread_times.at("test.metric");
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(threads));
  for (const auto& [tid, stat] : per_tid) {
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, threads);
    EXPECT_DOUBLE_EQ(stat.seconds, 0.25);
    EXPECT_EQ(stat.calls, 1u);
    EXPECT_EQ(stat.items, 10u);
  }
}

TEST_F(ObserveTest, RuntimeSwitchStopsCollection) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  CounterRegistry::instance().add_count("dark", 1);
  { Span s("dark_span"); EXPECT_TRUE(s.path().empty()); }
  set_enabled(true);
  const Snapshot snap = CounterRegistry::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST_F(ObserveTest, DisabledSpansAreCheap) {
  // Not a benchmark — a regression tripwire with a very generous bound:
  // 100k disabled spans must not take anywhere near a second.
  set_enabled(false);
  Timer t;
  for (int i = 0; i < 100000; ++i) { Span s("hot"); }
  EXPECT_LT(t.elapsed(), 1.0);
}

TEST_F(ObserveTest, InstrumentedLibraryCallsMatchBuildConfig) {
  // rank_candidates carries a BSPMV_OBS_SPAN/BSPMV_OBS_COUNT pair. In an
  // OFF build those hooks compile to nothing, so the registry must stay
  // empty; in an ON build they must land.
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(64, 64, 3, 0.3, 0.9, 42));
  const MachineProfile profile = synthetic_profile();
  const auto ranked = rank_candidates(ModelKind::kOverlap, a, profile);
  ASSERT_FALSE(ranked.empty());

  const Snapshot snap = CounterRegistry::instance().snapshot();
  if (kHooksEnabled) {
    EXPECT_EQ(snap.spans.count("rank"), 1u);
    EXPECT_EQ(snap.counters.at("select.candidates_ranked"), ranked.size());
  } else {
    EXPECT_TRUE(snap.spans.empty());
    EXPECT_TRUE(snap.counters.empty());
  }
}

// ------------------------------------------------------------ report ----

RunReport synthetic_report() {
  RunReport r;
  r.matrix_name = "synthetic";
  r.rows = 100;
  r.cols = 100;
  r.nnz = 500;
  r.csr_ws_bytes = 7600;
  r.precision = "dp";
  r.machine_description = "test machine";
  r.bandwidth_bps = 10e9;
  r.hooks_enabled = true;
  r.runtime_enabled = true;
  r.chosen_id = "bcsr_3x3_scalar";
  r.fallback = false;
  r.prepare_failures.emplace_back("vbr_scalar", "resource limit");

  CandidateReport c;
  c.id = "bcsr_3x3_scalar";
  c.format = "bcsr";
  c.impl = "scalar";
  c.ws_bytes = 8000;
  c.predicted_seconds = {{"mem", 1e-4}, {"memcomp", 1.5e-4},
                         {"overlap", 1.2e-4}, {"memlat", 1.3e-4}};
  c.measured_seconds = 1.4e-4;
  c.measured = true;
  r.candidates.push_back(c);

  for (const char* m : {"mem", "memcomp", "overlap", "memlat"}) {
    SelectionReport s;
    s.model = m;
    s.selected_id = "bcsr_3x3_scalar";
    s.predicted_seconds = 1.2e-4;
    s.measured_seconds = 1.4e-4;
    s.best_id = "bcsr_3x3_scalar";
    s.best_seconds = 1.4e-4;
    s.optimal = true;
    s.off_best = 0.0;
    s.model_error = (1.2e-4 - 1.4e-4) / 1.4e-4;
    r.selections.push_back(s);
  }

  r.threads = 2;
  r.thread_samples.push_back(ThreadSample{0, 0.01, 5, 260});
  r.thread_samples.push_back(ThreadSample{1, 0.011, 5, 240});
  r.phases["report"] = SpanStat{0.5, 1};
  r.phases["report/measure"] = SpanStat{0.4, 2};
  r.counters["select.candidates_ranked"] = 107;
  return r;
}

TEST_F(ObserveTest, RunReportJsonRoundTrip) {
  const RunReport r = synthetic_report();
  const Json j = r.to_json();
  const RunReport back = RunReport::from_json(j);
  // Field-exact round trip: re-serialising must reproduce the document.
  EXPECT_EQ(back.to_json(), j);
  EXPECT_EQ(back.matrix_name, "synthetic");
  EXPECT_EQ(back.candidates.size(), 1u);
  EXPECT_EQ(back.selections.size(), 4u);
  EXPECT_EQ(back.thread_samples.size(), 2u);
  EXPECT_EQ(back.prepare_failures.size(), 1u);
  EXPECT_DOUBLE_EQ(
      back.candidates[0].predicted_seconds.at("overlap"), 1.2e-4);
}

TEST_F(ObserveTest, RunReportCsvHasHeaderAndRows) {
  const std::string csv = synthetic_report().to_csv();
  EXPECT_NE(csv.find("id,format,impl,ws_bytes,pred_mem"), std::string::npos);
  EXPECT_NE(csv.find("bcsr_3x3_scalar,bcsr,scalar,8000"), std::string::npos);
}

TEST_F(ObserveTest, ValidatorRejectsBrokenDocuments) {
  const Json good = synthetic_report().to_json();
  EXPECT_NO_THROW(validate_report_json(good));

  Json wrong_kind = good;
  wrong_kind["kind"] = "something_else";
  EXPECT_THROW(validate_report_json(wrong_kind), validation_error);

  Json wrong_schema = good;
  wrong_schema["schema_version"] = RunReport::kSchemaVersion + 1;
  EXPECT_THROW(validate_report_json(wrong_schema), validation_error);

  for (const char* section :
       {"matrix", "machine", "candidates", "selections", "threads"}) {
    Json missing = good;
    missing.as_object().erase(section);
    EXPECT_THROW(validate_report_json(missing), validation_error)
        << "missing section " << section << " must be rejected";
  }

  // A candidate without the three paper models' predictions is useless
  // for the Fig. 3 / Table IV views.
  Json bad_cand = good;
  bad_cand["candidates"].as_array()[0]["predicted"].as_object().erase("mem");
  EXPECT_THROW(validate_report_json(bad_cand), validation_error);

  EXPECT_THROW(RunReport::from_json(wrong_kind), validation_error);
}

TEST_F(ObserveTest, TrajectoryAppendsAndSurvivesCorruption) {
  const std::string path = ::testing::TempDir() + "bspmv_traj_test.json";
  std::remove(path.c_str());

  Json::Object e1;
  e1["run"] = 1;
  append_to_trajectory(path, Json(e1));
  Json::Object e2;
  e2["run"] = 2;
  append_to_trajectory(path, Json(e2));

  std::ifstream f(path);
  ASSERT_TRUE(f);
  std::ostringstream ss;
  ss << f.rdbuf();
  const Json doc = Json::parse(ss.str());
  EXPECT_EQ(doc.at("kind").as_string(), "bspmv_trajectory");
  ASSERT_EQ(doc.at("entries").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("entries").as_array()[1].at("run").as_number(), 2.0);

  // Corrupt the file: the next append warns and restarts rather than
  // throwing or silently keeping garbage (warn-and-regenerate policy).
  { std::ofstream out(path); out << "{not json"; }
  Json::Object e3;
  e3["run"] = 3;
  append_to_trajectory(path, Json(e3));
  std::ifstream f2(path);
  std::ostringstream ss2;
  ss2 << f2.rdbuf();
  const Json doc2 = Json::parse(ss2.str());
  ASSERT_EQ(doc2.at("entries").as_array().size(), 1u);
  EXPECT_DOUBLE_EQ(
      doc2.at("entries").as_array()[0].at("run").as_number(), 3.0);
  std::remove(path.c_str());
}

TEST_F(ObserveTest, BuildRunReportEndToEnd) {
  // The full pipeline on a tiny matrix with a synthetic profile and a
  // minimal measurement budget: structure checks only, no perf claims.
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(96, 96, 3, 0.4, 0.9, 7));
  ReportOptions opt;
  opt.measure.iterations = 1;
  opt.measure.reps = 1;
  opt.measure.warmup = 0;
  opt.threads = 1;
  const RunReport r =
      build_run_report(a, "unit", synthetic_profile(), opt);

  EXPECT_EQ(r.matrix_name, "unit");
  EXPECT_EQ(r.rows, 96);
  EXPECT_FALSE(r.candidates.empty());
  EXPECT_EQ(r.selections.size(), 4u);
  EXPECT_FALSE(r.chosen_id.empty());
  for (const CandidateReport& c : r.candidates) {
    ASSERT_EQ(c.predicted_seconds.count("mem"), 1u) << c.id;
    ASSERT_EQ(c.predicted_seconds.count("memcomp"), 1u) << c.id;
    ASSERT_EQ(c.predicted_seconds.count("overlap"), 1u) << c.id;
    EXPECT_TRUE(c.measured || !c.skip_reason.empty()) << c.id;
  }
  EXPECT_NO_THROW(validate_report_json(r.to_json()));
  // Hooks populate phases/thread samples only in an ON build.
  if (kHooksEnabled) {
    EXPECT_FALSE(r.phases.empty());
    EXPECT_FALSE(r.thread_samples.empty());
  } else {
    EXPECT_TRUE(r.phases.empty());
    EXPECT_TRUE(r.thread_samples.empty());
  }
}

}  // namespace
