// Serving-cache payoff: cold engine preparation vs a cache hit.
//
// This is the number that justifies the daemon's existence — preparation
// (conversion + measured selection) costs orders of magnitude more than
// an LRU lookup, so a long-lived server amortises it across every
// request for the same matrix. The report prints both latencies, their
// ratio, and the cache hit/miss/eviction counters, plus an eviction
// storm showing the byte budget holding under pressure.
//
// Output: one JSON document on stdout (schema kind=bench_serve_cache).
// The acceptance bar for the serving PR is ratio >= 10; the observed
// ratio is typically in the thousands.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/gen/generators.hpp"
#include "src/serve/engine_cache.hpp"
#include "src/util/cli.hpp"
#include "src/util/json.hpp"
#include "src/util/timing.hpp"

using namespace bspmv;
using namespace bspmv::serve;

namespace {

Csr<double> make_matrix(index_t n, std::uint64_t seed) {
  return Csr<double>::from_coo(
      gen_blocked_band<double>(n / 4, 4, 8, 3, 0.8, seed));
}

std::shared_ptr<const CachedEngine> build_entry(const Csr<double>& a,
                                                bool measure) {
  Timer t;
  std::vector<Candidate> ranked = model_candidates(true);
  if (measure) {
    // The daemon's measured selection: time each candidate briefly.
    MeasureOptions opt;
    opt.iterations = 3;
    opt.reps = 1;
    double best = 1e300;
    Candidate chosen = ranked.front();
    for (const Candidate& c : ranked) {
      auto f = try_convert(a, c);
      if (!f) continue;
      const double s = SpmvEngine<double>::borrow(*f).measure(opt);
      if (s < best) {
        best = s;
        chosen = c;
      }
    }
    ranked.assign(1, chosen);
  }
  SpmvEngine<double> engine = SpmvEngine<double>::prepare(a, ranked);
  CachedEngine e{matrix_key(a),
                 std::move(engine),
                 /*format_id=*/"",
                 /*fallback=*/false,
                 /*degraded=*/false,
                 /*bytes=*/0,
                 /*prepare_seconds=*/0.0};
  e.format_id = e.engine.format().candidate().id();
  e.bytes = e.engine.format().working_set_bytes();
  e.prepare_seconds = t.elapsed();
  return std::make_shared<const CachedEngine>(std::move(e));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("n", "8192", "matrix dimension");
  cli.add_option("lookups", "1000", "cache lookups to time per matrix");
  cli.add_flag("no-measure", "skip measured selection in the cold prepare");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const index_t n = static_cast<index_t>(cli.get_int("n"));
    const int lookups = static_cast<int>(cli.get_int("lookups"));
    const bool measure = !cli.get_flag("no-measure");

    const Csr<double> a = make_matrix(n, 42);
    EngineCache cache(std::size_t{256} << 20);

    // Cold: what a first-time submit costs the daemon.
    Timer t_cold;
    auto entry = build_entry(a, measure);
    const double cold_s = t_cold.elapsed();
    cache.insert(entry);

    // Hit: what every later request costs.
    const MatrixKey key = matrix_key(a);
    double hit_total = 0.0;
    for (int i = 0; i < lookups; ++i) {
      Timer t;
      auto hit = cache.find(key);
      hit_total += t.elapsed();
      if (!hit) {
        std::fprintf(stderr, "cache lost the entry\n");
        return 1;
      }
    }
    const double hit_s = hit_total / lookups;

    // Eviction storm: insert matrices until the byte budget forces the
    // original out, demonstrating bounded memory.
    EngineCache small(entry->bytes * 2 + entry->bytes / 2);
    small.insert(entry);
    int inserted = 0;
    while (small.find(key) != nullptr && inserted < 8) {
      small.insert(build_entry(make_matrix(n, 100 + inserted), false));
      ++inserted;
    }
    const auto small_stats = small.stats();

    const auto stats = cache.stats();
    Json::Object c;
    c["hits"] = stats.hits;
    c["misses"] = stats.misses;
    c["evictions"] = stats.evictions;
    c["collisions"] = stats.collisions;
    c["bytes"] = static_cast<std::uint64_t>(stats.bytes);

    Json::Object storm;
    storm["budget_bytes"] = static_cast<std::uint64_t>(small_stats.budget_bytes);
    storm["bytes"] = static_cast<std::uint64_t>(small_stats.bytes);
    storm["evictions"] = small_stats.evictions;
    storm["inserted_until_evicted"] = inserted;
    storm["stayed_within_budget"] =
        small_stats.bytes <= small_stats.budget_bytes;

    Json::Object o;
    o["kind"] = "bench_serve_cache";
    o["schema_version"] = 1;
    o["rows"] = static_cast<std::int64_t>(a.rows());
    o["nnz"] = static_cast<std::uint64_t>(a.nnz());
    o["format"] = entry->format_id;
    o["measured_selection"] = measure;
    o["cold_prepare_seconds"] = cold_s;
    o["cache_hit_seconds"] = hit_s;
    o["cold_over_hit_ratio"] = hit_s > 0 ? cold_s / hit_s : 0.0;
    o["cache"] = std::move(c);
    o["eviction_storm"] = std::move(storm);
    std::printf("%s\n", Json(std::move(o)).dump(2).c_str());

    if (cold_s < hit_s * 10.0) {
      std::fprintf(stderr,
                   "cache hit is not >=10x cheaper than cold prepare "
                   "(cold=%.6fs hit=%.9fs)\n",
                   cold_s, hit_s);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve_cache: %s\n", e.what());
    return 1;
  }
}
