// Block-specific BCSD (diagonal-block) multiplication kernels, scalar and
// SIMD, one per diagonal length b <= 8.
//
// Fully in-range diagonals (a per-segment prefix, see Bcsd::full_diags())
// run unchecked; boundary diagonals take a clamped scalar path. Kernels
// accumulate into y over a segment range for the parallel driver.
#pragma once

#include "src/formats/bcsd.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
using BcsdKernelFn = void (*)(const Bcsd<V>&, index_t seg0, index_t seg1,
                              const V* x, V* y);

/// Look up the specialised kernel for diagonal length b (1 <= b <= 8).
template <class V>
BcsdKernelFn<V> bcsd_kernel(int b, bool simd);

extern template BcsdKernelFn<float> bcsd_kernel<float>(int, bool);
extern template BcsdKernelFn<double> bcsd_kernel<double>(int, bool);

}  // namespace bspmv
