#include "src/formats/vbl.hpp"

#include "src/formats/conversion_guard.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
Vbl<V> Vbl<V>::from_csr(const Csr<V>& a) {
  // No padding is ever stored, but the (worst-case one-per-nonzero) block
  // arrays still count against the byte budget.
  ConversionGuard::check("vbl", a.nnz(), a.nnz(), sizeof(V),
                         a.nnz() * (sizeof(index_t) + sizeof(blk_size_t)));
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();

  Vbl out;
  out.rows_ = n;
  out.cols_ = a.cols();
  out.row_ptr_ = row_ptr;  // identical role and contents as in CSR
  out.val_ = val;          // nonzeros in the same row-major order

  for (index_t i = 0; i < n; ++i) {
    const index_t lo = row_ptr[static_cast<std::size_t>(i)];
    const index_t hi = row_ptr[static_cast<std::size_t>(i) + 1];
    index_t k = lo;
    while (k < hi) {
      index_t run = 1;
      while (k + run < hi &&
             col_ind[static_cast<std::size_t>(k + run)] ==
                 col_ind[static_cast<std::size_t>(k + run - 1)] + 1 &&
             run < kVblMaxBlock)
        ++run;
      out.bcol_ind_.push_back(col_ind[static_cast<std::size_t>(k)]);
      out.blk_size_.push_back(static_cast<blk_size_t>(run));
      k += run;
    }
  }
  return out;
}

template <class V>
std::size_t Vbl<V>::working_set_bytes() const {
  return val_.size() * sizeof(V) + row_ptr_.size() * sizeof(index_t) +
         bcol_ind_.size() * sizeof(index_t) +
         blk_size_.size() * sizeof(blk_size_t) +
         static_cast<std::size_t>(cols_) * sizeof(V) +
         static_cast<std::size_t>(rows_) * sizeof(V);
}

template <class V>
Coo<V> Vbl<V>::to_coo() const {
  Coo<V> coo(rows_, cols_);
  coo.reserve(nnz());
  std::size_t blk = 0;
  std::size_t k = 0;
  for (index_t i = 0; i < rows_; ++i) {
    const std::size_t hi =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]);
    while (k < hi) {
      const index_t col0 = bcol_ind_[blk];
      const int size = blk_size_[blk];
      for (int t = 0; t < size; ++t) coo.add(i, col0 + t, val_[k + static_cast<std::size_t>(t)]);
      k += static_cast<std::size_t>(size);
      ++blk;
    }
  }
  BSPMV_DBG_ASSERT(blk == blocks() && k == nnz());
  return coo;
}

template class Vbl<float>;
template class Vbl<double>;

}  // namespace bspmv
