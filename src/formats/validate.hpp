// Deep structural-invariant checkers for every storage format.
//
// validate(m) walks the whole indexing structure of `m` and throws
// validation_error on the first broken invariant: non-monotone row/block
// pointers, out-of-range column or block indices, inconsistent array
// sizes, or index-width overflow. A matrix that passes validate() is safe
// to hand to the corresponding SpMV kernel — every pointer dereference
// the kernel performs is covered by one of these checks.
//
// Cost is O(size of the indexing structures); conversions stay
// validation-free on the hot path and the executor's try_prepare runs
// validate() once per materialised candidate.
#pragma once

#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/coo.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/csr_delta.hpp"
#include "src/formats/decomposed.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/formats/vbl.hpp"
#include "src/formats/vbr.hpp"
#include "src/util/errors.hpp"

namespace bspmv {

template <class V>
void validate(const Coo<V>& a);
template <class V>
void validate(const Csr<V>& a);
template <class V>
void validate(const Bcsr<V>& a);
template <class V>
void validate(const Bcsd<V>& a);
template <class V>
void validate(const Vbl<V>& a);
template <class V>
void validate(const Vbr<V>& a);
template <class V>
void validate(const Ubcsr<V>& a);
template <class V>
void validate(const CsrDelta<V>& a);
template <class V>
void validate(const BcsrDec<V>& a);
template <class V>
void validate(const BcsdDec<V>& a);

#define BSPMV_DECL(V)                          \
  extern template void validate(const Coo<V>&);      \
  extern template void validate(const Csr<V>&);      \
  extern template void validate(const Bcsr<V>&);     \
  extern template void validate(const Bcsd<V>&);     \
  extern template void validate(const Vbl<V>&);      \
  extern template void validate(const Vbr<V>&);      \
  extern template void validate(const Ubcsr<V>&);    \
  extern template void validate(const CsrDelta<V>&); \
  extern template void validate(const BcsrDec<V>&);  \
  extern template void validate(const BcsdDec<V>&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
