// mtx_tool — command-line analysis of a Matrix Market file (or a suite
// matrix): structural statistics per blocking format, model predictions,
// and a recommendation from each performance model. Lets users run the
// paper's methodology on their own matrices.
//
//   $ ./mtx_tool matrix.mtx
//   $ ./mtx_tool --suite 21 --scale small --measure
#include <cstdio>

#include "src/core/executor.hpp"
#include "src/core/heuristic.hpp"
#include "src/core/reorder.hpp"
#include "src/core/selector.hpp"
#include "src/formats/permute.hpp"
#include "src/formats/stats.hpp"
#include "src/gen/suite.hpp"
#include "src/io/matrix_market.hpp"
#include "src/profile/block_profiler.hpp"
#include "src/util/cli.hpp"
#include "src/util/errors.hpp"

using namespace bspmv;

namespace {

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("suite", "0", "use suite matrix id 1..30 instead of a file");
  cli.add_option("scale", "small", "suite scale (with --suite)");
  cli.add_option("profile", "machine_profile.json", "machine profile path");
  cli.add_option("top", "8", "how many ranked candidates to print");
  cli.add_flag("measure", "also measure the top candidates' real time");
  cli.add_flag("reorder", "apply the similarity row reordering first");
  if (!cli.parse(argc, argv)) return 0;

  Csr<double> a;
  std::string name;
  const int suite_id = static_cast<int>(cli.get_int("suite"));
  if (suite_id > 0) {
    a = build_suite_csr<double>(suite_id, parse_suite_scale(cli.get("scale")));
    name = suite_catalog()[static_cast<size_t>(suite_id - 1)].name;
  } else if (!cli.positional().empty()) {
    name = cli.positional().front();
    std::printf("reading %s...\n", name.c_str());
    a = Csr<double>::from_coo(read_matrix_market<double>(name));
  } else {
    std::fprintf(stderr,
                 "usage: mtx_tool <file.mtx> | --suite <id> [--measure]\n");
    return 1;
  }

  std::printf("matrix %s: %d x %d, %zu nonzeros, %.1f nnz/row, CSR ws %.2f "
              "MiB\n",
              name.c_str(), a.rows(), a.cols(), a.nnz(),
              static_cast<double>(a.nnz()) / static_cast<double>(a.rows()),
              static_cast<double>(a.working_set_bytes()) / (1 << 20));

  if (cli.get_flag("reorder")) {
    const double fill_before = bcsr_stats(a, BlockShape{3, 3}).fill();
    a = permute_rows(a, similarity_reorder(a));
    std::printf("applied similarity row reordering: 3x3 fill %.3f -> %.3f\n",
                fill_before, bcsr_stats(a, BlockShape{3, 3}).fill());
  }

  // Structural scan: fill ratio per BCSR shape, BCSD size, and 1D-VBL.
  std::printf("\nblock fill ratios (stored nonzeros / stored values):\n");
  std::printf("  %-8s", "BCSR:");
  for (BlockShape s : bcsr_shapes())
    std::printf(" %s=%.2f", s.to_string().c_str(), bcsr_stats(a, s).fill());
  std::printf("\n  %-8s", "BCSD:");
  for (int b : bcsd_sizes())
    std::printf(" b%d=%.2f", b, bcsd_stats(a, b).fill());
  std::printf("\n  1D-VBL: %.1f elements/block average\n",
              static_cast<double>(a.nnz()) /
                  static_cast<double>(vbl_block_count(a)));

  ProfileOptions popt;
  popt.quick = true;
  const MachineProfile profile = load_or_profile(cli.get("profile"), popt);

  std::printf("\nmodel selections:\n");
  for (ModelKind m : {ModelKind::kMem, ModelKind::kMemComp,
                      ModelKind::kOverlap, ModelKind::kMemLat}) {
    const RankedCandidate best = select_best(m, a, profile);
    std::printf("  %-8s -> %-22s (predicted %.3f ms)\n", model_name(m),
                best.candidate.id().c_str(), best.predicted_seconds * 1e3);
  }
  const HeuristicSelection h = select_bcsr_heuristic(a, profile);
  std::printf("  %-8s -> %-22s (predicted %.3f ms, est. fill %.2f)\n",
              "oski", h.candidate.id().c_str(), h.predicted_seconds * 1e3,
              h.est_fill);

  const auto ranked = rank_candidates(ModelKind::kOverlap, a, profile);
  const auto top = static_cast<std::size_t>(cli.get_int("top"));
  std::printf("\ntop %zu candidates by the OVERLAP model:\n", top);
  MeasureOptions mopt;
  mopt.iterations = 10;
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    std::printf("  %2zu. %-22s predicted %.3f ms", i + 1,
                ranked[i].candidate.id().c_str(),
                ranked[i].predicted_seconds * 1e3);
    if (cli.get_flag("measure")) {
      const AnyFormat<double> f =
          AnyFormat<double>::convert(a, ranked[i].candidate);
      std::printf("  measured %.3f ms", measure_spmv_seconds(f, mopt) * 1e3);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Every deliberate library failure derives from bspmv::error, so one
  // handler turns any of them (parse, validation, resource limit) into a
  // clean diagnostic instead of std::terminate.
  try {
    return run(argc, argv);
  } catch (const bspmv::error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
