// Profiling substrate tests: machine-profile persistence, cache probing,
// bandwidth/latency measurement sanity, and a micro end-to-end profiling
// run with a deliberately tiny synthetic cache hierarchy.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/util/macros.hpp"
#include "src/core/candidates.hpp"
#include "src/profile/block_profiler.hpp"
#include "src/profile/cache_info.hpp"
#include "src/profile/machine_profile.hpp"
#include "src/profile/stream_bench.hpp"

namespace bspmv {
namespace {

TEST(MachineProfile, JsonRoundTrip) {
  MachineProfile p;
  p.bandwidth_bps = 3.36e9;
  p.read_bandwidth_bps = 5e9;
  p.latency_seconds = 95e-9;
  p.description = "unit test \"machine\"";
  p.set_kernel(Precision::kDouble, "bcsr_2x2_simd", {1.5e-9, 0.25});
  p.set_kernel(Precision::kSingle, "csr_scalar", {2.5e-9, 0.75});

  const MachineProfile q = MachineProfile::from_json(p.to_json());
  EXPECT_DOUBLE_EQ(q.bandwidth_bps, p.bandwidth_bps);
  EXPECT_DOUBLE_EQ(q.latency_seconds, p.latency_seconds);
  EXPECT_EQ(q.description, p.description);
  EXPECT_DOUBLE_EQ(q.kernel(Precision::kDouble, "bcsr_2x2_simd").tb, 1.5e-9);
  EXPECT_DOUBLE_EQ(q.kernel(Precision::kSingle, "csr_scalar").nof, 0.75);
  EXPECT_FALSE(q.has_kernel(Precision::kDouble, "csr_scalar"));
}

TEST(MachineProfile, SaveLoadThroughDisk) {
  const std::string path = ::testing::TempDir() + "/bspmv_profile_test.json";
  MachineProfile p;
  p.bandwidth_bps = 1e9;
  p.description = "disk";
  p.set_kernel(Precision::kDouble, "k", {1e-9, 0.5});
  p.save(path);
  const MachineProfile q = MachineProfile::load(path);
  EXPECT_DOUBLE_EQ(q.kernel(Precision::kDouble, "k").tb, 1e-9);
  std::remove(path.c_str());
}

TEST(MachineProfile, TryLoadMissingReturnsNullopt) {
  EXPECT_FALSE(MachineProfile::try_load("/nonexistent/p.json").has_value());
}

TEST(MachineProfile, MissingKernelThrowsWithName) {
  const MachineProfile p;
  try {
    p.kernel(Precision::kDouble, "bcsr_9x9_magic");
    FAIL();
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("bcsr_9x9_magic"),
              std::string::npos);
  }
}

TEST(CacheInfo, FallbacksAreSane) {
  const CacheInfo info = detect_cache_info();
  EXPECT_GE(info.l1d_bytes, 8u * 1024);
  EXPECT_LE(info.l1d_bytes, 1u << 21);
  EXPECT_GE(info.llc_bytes, info.l1d_bytes);
}

TEST(StreamBench, MeasuresPositiveBandwidth) {
  StreamOptions opt;
  opt.array_bytes = 4 << 20;  // keep the unit test fast
  opt.trials = 1;
  const double triad = stream_triad_bandwidth(opt);
  const double read = stream_read_bandwidth(opt);
  EXPECT_GT(triad, 1e8);  // > 100 MB/s on anything alive
  EXPECT_GT(read, 1e8);
  EXPECT_LT(triad, 1e13);
}

TEST(StreamBench, LatencyIsPlausible) {
  const double lat = memory_latency_seconds(4 << 20);
  EXPECT_GT(lat, 1e-10);  // > 0.1 ns
  EXPECT_LT(lat, 1e-5);   // < 10 us
}

TEST(StreamBench, RejectsBadOptions) {
  StreamOptions opt;
  opt.array_bytes = 16;
  EXPECT_THROW(stream_triad_bandwidth(opt), invalid_argument_error);
  EXPECT_THROW(memory_latency_seconds(128), invalid_argument_error);
}

TEST(BlockProfiler, MicroProfileCoversEveryModelKernel) {
  // Artificial small cache hierarchy keeps the dense matrices tiny, so
  // the full pipeline runs in seconds while still exercising every code
  // path (t_b, nof, both precisions, scalar+simd).
  ProfileOptions opt;
  opt.detect_cache = false;
  opt.cache.l1d_bytes = 8 * 1024;
  opt.cache.llc_bytes = 64 * 1024;
  opt.bandwidth_bps = 5e9;  // skip the slow STREAM run
  opt.quick = true;
  const MachineProfile p = profile_machine(opt);

  EXPECT_DOUBLE_EQ(p.bandwidth_bps, 5e9);
  EXPECT_GT(p.read_bandwidth_bps, 0.0);
  EXPECT_GT(p.latency_seconds, 0.0);
  for (Precision prec : {Precision::kSingle, Precision::kDouble}) {
    for (const Candidate& c : model_candidates(true)) {
      ASSERT_TRUE(p.has_kernel(prec, c.kernel_id()))
          << c.kernel_id() << " " << precision_name(prec);
      const KernelProfile& kp = p.kernel(prec, c.kernel_id());
      EXPECT_GT(kp.tb, 0.0) << c.kernel_id();
      EXPECT_LT(kp.tb, 1e-4) << c.kernel_id();
      EXPECT_GE(kp.nof, 0.0);
      EXPECT_LE(kp.nof, 1.0);
    }
    // 1D-VBL kernels are profiled too.
    EXPECT_TRUE(p.has_kernel(prec, "vbl_scalar"));
    EXPECT_TRUE(p.has_kernel(prec, "vbl_simd"));
  }
}

TEST(BlockProfiler, LoadOrProfileCaches) {
  const std::string path = ::testing::TempDir() + "/bspmv_lop_test.json";
  std::remove(path.c_str());
  ProfileOptions opt;
  opt.detect_cache = false;
  opt.cache.l1d_bytes = 8 * 1024;
  opt.cache.llc_bytes = 32 * 1024;
  opt.bandwidth_bps = 1e9;
  opt.quick = true;
  opt.include_simd = false;  // fewer kernels, faster test
  const MachineProfile p1 = load_or_profile(path, opt);
  // Second call must hit the cache (we verify by checking identity of a
  // measured value, which a re-run would almost surely change).
  const MachineProfile p2 = load_or_profile(path, opt);
  EXPECT_DOUBLE_EQ(
      p1.kernel(Precision::kDouble, "csr_scalar").tb,
      p2.kernel(Precision::kDouble, "csr_scalar").tb);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bspmv
