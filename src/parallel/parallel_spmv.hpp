// Multithreaded SpMV drivers (OpenMP) for the formats the paper
// parallelises: CSR, BCSR, BCSD and the two decomposed variants (1D-VBL
// is deliberately excluded, matching §V-A).
//
// A ThreadedSpmv<Format> precomputes the nnz-balanced (padding-aware)
// row-granule partition once; run() then executes y = A·x with each thread
// owning a disjoint row range, so no synchronisation is needed beyond the
// implicit barrier between the decomposed formats' two passes.
//
// Observability: when built with BSPMV_OBSERVE (src/observe/observe.hpp),
// every run() records each thread's kernel wall time and assigned stored
// values (the §V-A partition weights, padding included) under the
// "parallel/<format>" metric — the per-thread load-imbalance telemetry a
// RunReport exposes.
#pragma once

#include <vector>

#include "src/formats/decomposed.hpp"
#include "src/kernels/spmv.hpp"
#include "src/parallel/partition.hpp"

namespace bspmv {

template <class V>
class ThreadedCsrSpmv {
 public:
  ThreadedCsrSpmv(const Csr<V>& a, int threads);
  void run(const V* x, V* y, Impl impl = Impl::kScalar) const;
  int threads() const { return threads_; }

 private:
  const Csr<V>* a_;
  int threads_;
  std::vector<index_t> bounds_;  // row boundaries, threads_+1
  std::vector<std::size_t> part_weights_;  // stored values per thread
};

template <class V>
class ThreadedBcsrSpmv {
 public:
  ThreadedBcsrSpmv(const Bcsr<V>& a, int threads);
  void run(const V* x, V* y, Impl impl = Impl::kScalar) const;
  int threads() const { return threads_; }

 private:
  const Bcsr<V>* a_;
  int threads_;
  std::vector<index_t> bounds_;  // block-row boundaries
  std::vector<std::size_t> part_weights_;  // stored values per thread
};

template <class V>
class ThreadedBcsdSpmv {
 public:
  ThreadedBcsdSpmv(const Bcsd<V>& a, int threads);
  void run(const V* x, V* y, Impl impl = Impl::kScalar) const;
  int threads() const { return threads_; }

 private:
  const Bcsd<V>* a_;
  int threads_;
  std::vector<index_t> bounds_;  // segment boundaries
  std::vector<std::size_t> part_weights_;  // stored values per thread
};

template <class V>
class ThreadedBcsrDecSpmv {
 public:
  ThreadedBcsrDecSpmv(const BcsrDec<V>& a, int threads);
  void run(const V* x, V* y, Impl impl = Impl::kScalar) const;
  int threads() const { return threads_; }

 private:
  const BcsrDec<V>* a_;
  int threads_;
  std::vector<index_t> blocked_bounds_;  // block rows of the blocked part
  std::vector<index_t> rem_bounds_;      // rows of the CSR remainder
  std::vector<std::size_t> part_weights_;  // stored values per thread (both passes)
};

template <class V>
class ThreadedBcsdDecSpmv {
 public:
  ThreadedBcsdDecSpmv(const BcsdDec<V>& a, int threads);
  void run(const V* x, V* y, Impl impl = Impl::kScalar) const;
  int threads() const { return threads_; }

 private:
  const BcsdDec<V>* a_;
  int threads_;
  std::vector<index_t> blocked_bounds_;  // segments of the blocked part
  std::vector<index_t> rem_bounds_;      // rows of the CSR remainder
  std::vector<std::size_t> part_weights_;  // stored values per thread (both passes)
};

#define BSPMV_DECL(V)                          \
  extern template class ThreadedCsrSpmv<V>;    \
  extern template class ThreadedBcsrSpmv<V>;   \
  extern template class ThreadedBcsdSpmv<V>;   \
  extern template class ThreadedBcsrDecSpmv<V>; \
  extern template class ThreadedBcsdDecSpmv<V>;
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
