#include "src/formats/vbr.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "src/formats/conversion_guard.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

namespace {

template <class V>
std::span<const index_t> row_cols(const Csr<V>& a, index_t i) {
  const auto lo = static_cast<std::size_t>(a.row_ptr()[static_cast<std::size_t>(i)]);
  const auto hi = static_cast<std::size_t>(a.row_ptr()[static_cast<std::size_t>(i) + 1]);
  return {a.col_ind().data() + lo, hi - lo};
}

}  // namespace

template <class V>
Vbr<V> Vbr<V>::from_csr(const Csr<V>& a) {
  // Blocks are all-nonzero by construction; the worst case is one block
  // (and three index entries) per nonzero.
  ConversionGuard::check("vbr", a.nnz(), a.nnz(), sizeof(V),
                         3 * a.nnz() * sizeof(index_t));
  const index_t n = a.rows();
  const index_t m = a.cols();

  Vbr out;
  out.rows_ = n;
  out.cols_ = m;

  // 1. Row partition: consecutive rows with identical column support.
  out.rpntr_.push_back(0);
  for (index_t i = 1; i < n; ++i) {
    const auto prev = row_cols(a, i - 1);
    const auto cur = row_cols(a, i);
    if (prev.size() != cur.size() ||
        !std::equal(prev.begin(), prev.end(), cur.begin()))
      out.rpntr_.push_back(i);
  }
  if (n > 0) out.rpntr_.push_back(n);

  // 2. Column partition: union of every block row's run boundaries.
  std::vector<index_t> bounds;
  bounds.push_back(0);
  bounds.push_back(m);
  const index_t nbr = static_cast<index_t>(out.rpntr_.size()) - 1;
  for (index_t br = 0; br < nbr; ++br) {
    const auto cols = row_cols(a, out.rpntr_[static_cast<std::size_t>(br)]);
    std::size_t s = 0;
    while (s < cols.size()) {
      std::size_t e = s;
      while (e + 1 < cols.size() && cols[e + 1] == cols[e] + 1) ++e;
      bounds.push_back(cols[s]);
      bounds.push_back(cols[e] + 1);
      s = e + 1;
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  out.cpntr_.assign(bounds.begin(), bounds.end());
  if (out.cpntr_.empty()) out.cpntr_.push_back(0);

  // 3. Blocks: each block row's runs split at the global column partition.
  out.brow_ptr_.push_back(0);
  out.bval_ptr_.push_back(0);
  const auto& row_ptr = a.row_ptr();
  const auto& val = a.val();
  for (index_t br = 0; br < nbr; ++br) {
    const index_t r0 = out.rpntr_[static_cast<std::size_t>(br)];
    const index_t r1 = out.rpntr_[static_cast<std::size_t>(br) + 1];
    const index_t height = r1 - r0;
    const auto cols = row_cols(a, r0);

    std::size_t s = 0;
    while (s < cols.size()) {
      std::size_t e = s;
      while (e + 1 < cols.size() && cols[e + 1] == cols[e] + 1) ++e;
      const index_t run_lo = cols[s];
      const index_t run_hi = cols[e] + 1;
      // Split [run_lo, run_hi) at cpntr boundaries; each piece is one
      // column-partition cell (run_lo/run_hi are themselves boundaries).
      auto it = std::lower_bound(out.cpntr_.begin(), out.cpntr_.end(), run_lo);
      BSPMV_DBG_ASSERT(it != out.cpntr_.end() && *it == run_lo);
      auto bc = static_cast<index_t>(it - out.cpntr_.begin());
      index_t lo = run_lo;
      while (lo < run_hi) {
        const index_t hi = out.cpntr_[static_cast<std::size_t>(bc) + 1];
        BSPMV_DBG_ASSERT(hi <= run_hi);
        out.bindx_.push_back(bc);
        // Dense height×(hi-lo) block, row-major: all positions are
        // nonzero because every row in the group shares the run.
        for (index_t i = r0; i < r1; ++i) {
          const auto rc = row_cols(a, i);
          const auto pos = static_cast<std::size_t>(
              std::lower_bound(rc.begin(), rc.end(), lo) - rc.begin());
          const std::size_t base =
              static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]) + pos;
          for (index_t j = 0; j < hi - lo; ++j)
            out.val_.push_back(val[base + static_cast<std::size_t>(j)]);
        }
        out.bval_ptr_.push_back(static_cast<index_t>(out.val_.size()));
        lo = hi;
        ++bc;
      }
      s = e + 1;
    }
    out.brow_ptr_.push_back(static_cast<index_t>(out.bindx_.size()));
    (void)height;
  }
  BSPMV_DBG_ASSERT(out.val_.size() == a.nnz());
  return out;
}

template <class V>
std::size_t Vbr<V>::working_set_bytes() const {
  return val_.size() * sizeof(V) +
         (rpntr_.size() + cpntr_.size() + brow_ptr_.size() + bindx_.size() +
          bval_ptr_.size()) *
             sizeof(index_t) +
         static_cast<std::size_t>(cols_) * sizeof(V) +
         static_cast<std::size_t>(rows_) * sizeof(V);
}

template <class V>
Coo<V> Vbr<V>::to_coo() const {
  Coo<V> coo(rows_, cols_);
  coo.reserve(nnz());
  const index_t nbr = block_rows();
  for (index_t br = 0; br < nbr; ++br) {
    const index_t r0 = rpntr_[static_cast<std::size_t>(br)];
    const index_t r1 = rpntr_[static_cast<std::size_t>(br) + 1];
    for (index_t blk = brow_ptr_[static_cast<std::size_t>(br)];
         blk < brow_ptr_[static_cast<std::size_t>(br) + 1]; ++blk) {
      const index_t bc = bindx_[static_cast<std::size_t>(blk)];
      const index_t c0 = cpntr_[static_cast<std::size_t>(bc)];
      const index_t c1 = cpntr_[static_cast<std::size_t>(bc) + 1];
      const V* bv = val_.data() + bval_ptr_[static_cast<std::size_t>(blk)];
      for (index_t i = r0; i < r1; ++i)
        for (index_t j = c0; j < c1; ++j)
          coo.add(i, j, *bv++);
    }
  }
  return coo;
}

template class Vbr<float>;
template class Vbr<double>;

}  // namespace bspmv
