#include "src/core/executor.hpp"

#include <new>

#include "src/core/engine.hpp"
#include "src/kernels/spmv.hpp"
#include "src/observe/observe.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
AnyFormat<V> AnyFormat<V>::convert(const Csr<V>& a, const Candidate& c) {
  BSPMV_OBS_SPAN("convert");
  BSPMV_OBS_SPAN(format_name(c.kind));
  AnyFormat f;
  f.c_ = c;
  // Register-driven dispatch: the one format whose FormatOps kind matches
  // the candidate materialises into the variant.
  for_each_format<V>([&](auto tag) {
    using F = typename decltype(tag)::type;
    if (FormatOps<F>::kKind == c.kind) f.m_ = FormatOps<F>::convert(a, c);
  });
  BSPMV_CHECK_MSG(!std::holds_alternative<std::monostate>(f.m_),
                  "AnyFormat: format kind not in registry");
  return f;
}

template <class V>
index_t AnyFormat<V>::rows() const {
  return visit([](const auto& m) { return m.rows(); });
}

template <class V>
index_t AnyFormat<V>::cols() const {
  return visit([](const auto& m) { return m.cols(); });
}

template <class V>
std::size_t AnyFormat<V>::working_set_bytes() const {
  return visit([](const auto& m) {
    return FormatOps<std::decay_t<decltype(m)>>::working_set_bytes(m);
  });
}

template <class V>
void AnyFormat<V>::validate() const {
  // Not via visit(): an empty AnyFormat is a validation failure here, not
  // a usage error.
  std::visit(
      [](const auto& m) {
        if constexpr (std::is_same_v<std::decay_t<decltype(m)>,
                                     std::monostate>) {
          throw validation_error("AnyFormat: empty");
        } else {
          FormatOps<std::decay_t<decltype(m)>>::validate(m);
        }
      },
      m_);
}

template <class V>
void AnyFormat<V>::run(const V* x, V* y) const {
  const Impl impl = c_.impl;
  visit([&](const auto& m) { spmv(m, x, y, impl); });
}

template <class V>
void AnyFormat<V>::run_multi(const V* X, V* Y, int k, Layout layout) const {
  const Impl impl = c_.impl;
  visit([&](const auto& m) { spmm(m, X, Y, k, layout, impl); });
}

template <class V>
std::optional<AnyFormat<V>> try_convert(const Csr<V>& a, const Candidate& c,
                                        std::string* reason) {
  try {
    AnyFormat<V> f = AnyFormat<V>::convert(a, c);
    f.validate();
    return f;
  } catch (const error& e) {
    if (reason) *reason = e.what();
  } catch (const std::bad_alloc&) {
    if (reason) *reason = "allocation failed";
  }
  BSPMV_OBS_COUNT("prepare.convert_failures", 1);
  return std::nullopt;
}

template <class V>
PreparedExecutor<V> try_prepare(const Csr<V>& a,
                                const std::vector<Candidate>& ranked) {
  BSPMV_OBS_SPAN("prepare");
  // Garbage in, typed error out: no candidate can be correct if the
  // source matrix itself is corrupt.
  bspmv::validate(a);

  PreparedExecutor<V> out;
  for (const Candidate& c : ranked) {
    BSPMV_OBS_COUNT("prepare.candidates_tried", 1);
    std::string reason;
    if (auto f = try_convert(a, c, &reason)) {
      out.format = std::move(*f);
      return out;
    }
    out.failures.push_back(PrepareFailure{c, std::move(reason)});
  }
  BSPMV_OBS_COUNT("prepare.fallback", 1);

  // Degenerate 1×1 case: scalar CSR. The convert is a copy of the
  // already-validated input, so it cannot fail.
  Candidate csr;
  csr.kind = FormatKind::kCsr;
  csr.impl = Impl::kScalar;
  out.format = AnyFormat<V>::convert(a, csr);
  out.fallback = true;
  return out;
}

// The measurement loops live in SpmvEngine (prepare-once/run-many); these
// helpers are the stable thin entry points over it.

template <class V>
double measure_spmv_seconds(const AnyFormat<V>& f, const MeasureOptions& opt) {
  return SpmvEngine<V>::borrow(f).measure(opt);
}

template <class V>
std::vector<MeasuredCandidate> measure_candidates(
    const Csr<V>& a, const std::vector<Candidate>& candidates,
    const MeasureOptions& opt) {
  std::vector<MeasuredCandidate> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    const auto engine = SpmvEngine<V>::prepare(a, c);
    out.push_back(MeasuredCandidate{c, engine.measure(opt)});
  }
  return out;
}

template <class V>
double measure_threaded_seconds(const Csr<V>& a, const Candidate& c,
                                int threads, const MeasureOptions& opt,
                                ExecBackend backend) {
  // threads == 0 means "plain single-threaded path" to the engine; this
  // entry point is explicitly threaded, so keep rejecting it.
  BSPMV_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  return SpmvEngine<V>::prepare(a, c, threads, backend).measure(opt);
}

template <class V>
std::vector<double> measure_threaded_multi(const Csr<V>& a,
                                           const Candidate& c,
                                           const std::vector<int>& threads,
                                           const MeasureOptions& opt) {
  // Convert once and re-plan per thread count (conversion dominates a
  // sweep; Fig. 2 measures 1/2/4 cores). Building the first plan eagerly
  // keeps the "format not parallelised" error even for an empty sweep.
  for (int t : threads) BSPMV_CHECK_MSG(t >= 1, "thread count must be >= 1");
  SpmvEngine<V> engine =
      SpmvEngine<V>::prepare(a, c, threads.empty() ? 1 : threads.front());
  std::vector<double> out;
  out.reserve(threads.size());
  for (int t : threads) {
    engine.set_threads(t);
    out.push_back(engine.measure(opt));
  }
  return out;
}

#define BSPMV_INST(V)                                                       \
  template class AnyFormat<V>;                                              \
  template std::optional<AnyFormat<V>> try_convert(                         \
      const Csr<V>&, const Candidate&, std::string*);                       \
  template PreparedExecutor<V> try_prepare(const Csr<V>&,                   \
                                           const std::vector<Candidate>&);  \
  template double measure_spmv_seconds(const AnyFormat<V>&,                 \
                                       const MeasureOptions&);              \
  template std::vector<MeasuredCandidate> measure_candidates(               \
      const Csr<V>&, const std::vector<Candidate>&, const MeasureOptions&); \
  template double measure_threaded_seconds(const Csr<V>&, const Candidate&, \
                                           int, const MeasureOptions&,      \
                                           ExecBackend);                    \
  template std::vector<double> measure_threaded_multi(                      \
      const Csr<V>&, const Candidate&, const std::vector<int>&,             \
      const MeasureOptions&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
