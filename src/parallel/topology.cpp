#include "src/parallel/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace bspmv {

std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::stringstream ss(s);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    const auto dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
      // Malformed chunk (empty line, stray text): ignore it — topology
      // detection must never take down an SpMV.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::clustered(int cpus, int per_cluster) {
  Topology t;
  t.total_cpus = std::max(1, cpus);
  per_cluster = std::max(1, per_cluster);
  for (int base = 0; base < t.total_cpus; base += per_cluster) {
    Node n;
    n.id = base / per_cluster;
    for (int c = base; c < std::min(t.total_cpus, base + per_cluster); ++c)
      n.cpus.push_back(c);
    t.nodes.push_back(std::move(n));
  }
  return t;
}

Topology Topology::detect() {
  Topology t;
  // Nodes are almost always dense (node0, node1, ...) but holes exist on
  // some machines; scan a generous range and keep whatever answers.
  for (int id = 0; id < 256; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    std::ifstream f(path);
    if (!f) {
      if (id > 0) break;  // node0 missing entirely => no sysfs NUMA info
      continue;
    }
    std::string line;
    std::getline(f, line);
    Node n;
    n.id = id;
    n.cpus = parse_cpulist(line);
    if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
  }
  if (!t.nodes.empty()) {
    t.numa_detected = true;
    int cpus = 0;
    for (const Node& n : t.nodes) cpus += static_cast<int>(n.cpus.size());
    t.total_cpus = std::max(1, cpus);
    return t;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return clustered(hw > 0 ? hw : 1);
}

int Topology::node_of_worker(int worker, int workers) const {
  if (workers <= 0 || nodes.empty()) return 0;
  worker = std::clamp(worker, 0, workers - 1);
  const int n = static_cast<int>(nodes.size());
  // Contiguous blocks of ceil(workers/n) workers per node; trailing
  // nodes may be empty when workers < n, which node-local stealing
  // handles (an empty neighbourhood falls through to the global sweep).
  const int per = (workers + n - 1) / n;
  return std::min(worker / per, n - 1);
}

std::string Topology::to_string() const {
  std::string out = numa_detected ? "numa[" : "clusters[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += ' ';
    out += "n" + std::to_string(nodes[i].id) + ":" +
           std::to_string(nodes[i].cpus.size());
  }
  out += "]";
  return out;
}

}  // namespace bspmv
