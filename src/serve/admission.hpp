// Admission control for the serving daemon: a bounded, priority-aware
// request queue with load shedding and delayed (backoff) requeue.
//
// The queue never blocks a producer and never grows past its capacity.
// When a job arrives at a full queue, the *lowest-priority* work in
// sight is shed: if the incoming job outranks the lowest queued job,
// that queued job is shed to make room; otherwise the incoming job is
// shed itself. Shedding invokes the job's shed callback (the server
// answers the client with a typed `overloaded` error) — work is refused
// loudly at the door, never dropped silently or queued unboundedly.
//
// Jobs can be requeued with a not-before time (exponential backoff for
// "engine busy" retries); pop() delivers the highest-priority runnable
// job and sleeps no longer than the nearest not-before when only
// deferred work remains.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>

namespace bspmv::serve {

/// One unit of queued work.
struct Job {
  int priority = 0;  ///< higher survives admission longer
  /// Execute the request (runs on a worker thread).
  std::function<void()> run;
  /// Refuse the request with a typed overloaded error (runs on whichever
  /// thread decided to shed — producer or worker; must not block).
  std::function<void(const std::string& why)> shed;
  /// Steady-clock seconds before which the job must not run (backoff).
  double not_before = 0.0;
  /// Requeue attempt count (maintained by the server's retry logic).
  int attempts = 0;
};

/// Monotonic seconds used for Job::not_before.
double steady_seconds();

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admit `j`, shedding the lowest-priority job (possibly `j` itself)
  /// when full. Returns true if `j` was admitted. Never blocks.
  bool push(Job j);

  /// Next runnable job, highest priority first (FIFO within a priority).
  /// Blocks until a job is runnable or shutdown() is called; returns
  /// nullopt only on shutdown.
  std::optional<Job> pop();

  /// Wake all waiters and shed every queued job ("server shutting down").
  /// Subsequent push() calls shed immediately; pop() returns nullopt.
  void shutdown();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t shed_count() const;

 private:
  struct Item {
    Job job;
    std::uint64_t seq;  ///< admission order, for FIFO within a priority
  };
  /// Highest priority first; among equals, earliest admitted first.
  struct Order {
    bool operator()(const Item& a, const Item& b) const {
      if (a.job.priority != b.job.priority)
        return a.job.priority > b.job.priority;
      return a.seq < b.seq;
    }
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::multiset<Item, Order> items_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t shed_ = 0;
  bool shutdown_ = false;
};

}  // namespace bspmv::serve
