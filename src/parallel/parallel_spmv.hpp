// Multithreaded SpMV driver (OpenMP), generic over every format whose
// FormatOps specialisation opts in with kParallel — for the library that
// is CSR, BCSR, BCSD and the two decomposed variants, matching §V-A
// (1D-VBL is deliberately excluded).
//
// ThreadedSpmv<Format> precomputes one nnz-balanced (padding-aware)
// granule partition per pass (FormatOps<Format>::kPasses; decomposed
// formats run their blocked submatrix as pass 0 and the CSR remainder as
// pass 1). run() then executes y = A·x with each thread owning a disjoint
// granule range per pass; pass 0 also zero-fills the thread's contiguous
// row range, and consecutive passes are separated by a barrier because
// they partition rows differently.
//
// Observability: when built with BSPMV_OBSERVE (src/observe/observe.hpp),
// every run() records each thread's kernel wall time and assigned stored
// values (the §V-A partition weights, padding included, summed over all
// passes) under the "parallel/<format>" metric — the per-thread
// load-imbalance telemetry a RunReport exposes.
//
// The template is defined here (not in the .cpp) so formats registered
// outside the library instantiate it too; the five built-in parallel
// formats have extern template declarations below and are compiled once
// in parallel_spmv.cpp.
#pragma once

#include <omp.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/formats/format_ops.hpp"
#include "src/observe/observe.hpp"
#include "src/parallel/partition.hpp"
#include "src/util/macros.hpp"
#include "src/util/run_control.hpp"

namespace bspmv {

template <class Format>
class ThreadedSpmv {
  using Ops = FormatOps<Format>;
  using V = typename Ops::value_type;
  static_assert(Ops::kParallel,
                "ThreadedSpmv requires FormatOps<Format>::kParallel — the "
                "paper parallelises only CSR/BCSR/BCSD and the decomposed "
                "variants (§V-A)");

 public:
  /// Granules per cancellation-poll / heartbeat when a RunControl is
  /// attached: large enough that the relaxed-atomic poll is invisible
  /// next to the kernel work, small enough (sub-millisecond of rows)
  /// that deadlines and stalls are observed promptly.
  static constexpr index_t kControlChunk = 256;

  ThreadedSpmv(const Format& a, int threads);

  /// y = A·x. Without a control this is the paper's driver, one
  /// pass_run per pass per thread. With one, each thread executes its
  /// granule range in kControlChunk slices, polling the control's stop
  /// flag (one relaxed load) and heartbeating between slices; on a
  /// cancellation/deadline/stall the remaining slices are skipped — all
  /// threads still meet every pass barrier, then the caller's
  /// control->check() surfaces the typed error. y is indeterminate after
  /// an aborted run.
  void run(const V* x, V* y, Impl impl = Impl::kScalar,
           RunControl* control = nullptr) const;

  /// Y = A·X for k right-hand sides in the given layout (X cols×k,
  /// Y rows×k — see src/kernels/layout.hpp). Reuses the single-vector
  /// granule partition: a granule's multi-vector work scales uniformly
  /// by k, so the nnz-balanced bounds stay balanced. k == 1 is the
  /// single-vector path (bitwise identical to run()); formats without
  /// the pass_run_multi protocol fall back to one threaded run() per
  /// vector. Cancellation behaves as in run(); Y is indeterminate after
  /// an aborted run.
  void run_multi(const V* X, V* Y, int k, Layout layout,
                 Impl impl = Impl::kScalar,
                 RunControl* control = nullptr) const;
  int threads() const { return threads_; }

 private:
  const Format* a_;
  int threads_;
  /// Granule boundaries per pass, threads_+1 each.
  std::vector<index_t> bounds_[static_cast<std::size_t>(Ops::kPasses)];
  /// Stored values per thread, summed over all passes.
  std::vector<std::size_t> part_weights_;
};

template <class Format>
ThreadedSpmv<Format>::ThreadedSpmv(const Format& a, int threads)
    : a_(&a), threads_(threads) {
  BSPMV_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  for (int pass = 0; pass < Ops::kPasses; ++pass) {
    const auto w = Ops::pass_weights(a, pass);
    auto& bounds = bounds_[static_cast<std::size_t>(pass)];
    bounds = balanced_partition(w, threads_);
    const auto sums = part_weight_sums(w, bounds);
    if (pass == 0) {
      part_weights_ = sums;
    } else {
      for (std::size_t p = 0; p < part_weights_.size(); ++p)
        part_weights_[p] += sums[p];
    }
  }
}

template <class Format>
void ThreadedSpmv<Format>::run(const V* x, V* y, Impl impl,
                               RunControl* control) const {
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    // Publish the control to this thread so deep code (kernels, injected
    // test formats) can poll cancellation without a plumbed parameter.
    RunControl::ScopedCurrent ambient(control);
    for (int pass = 0; pass < Ops::kPasses; ++pass) {
      if (pass > 0) {
        // Later passes partition rows differently, so wait until every
        // earlier-pass contribution has landed before accumulating.
        // Cancellation must never skip this barrier — every thread
        // reaches it on every pass, aborted or not, or the region hangs.
#pragma omp barrier
      }
      const auto& bounds = bounds_[static_cast<std::size_t>(pass)];
      const index_t g0 = bounds[static_cast<std::size_t>(tid)];
      const index_t g1 = bounds[static_cast<std::size_t>(tid) + 1];
      if (control == nullptr) {
        if (pass == 0)
          std::fill(y + Ops::pass_first_row(*a_, 0, g0),
                    y + Ops::pass_first_row(*a_, 0, g1), V{0});
        Ops::pass_run(*a_, pass, g0, g1, x, y, impl);
      } else if (!control->stop_requested()) {
        if (pass == 0)
          std::fill(y + Ops::pass_first_row(*a_, 0, g0),
                    y + Ops::pass_first_row(*a_, 0, g1), V{0});
        for (index_t g = g0; g < g1; g += kControlChunk) {
          if (control->stop_requested()) break;  // one relaxed load
          Ops::pass_run(*a_, pass, g, std::min<index_t>(g1, g + kControlChunk),
                        x, y, impl);
          control->heartbeat(tid);
        }
      }
    }
#if defined(BSPMV_OBSERVE_HOOKS) && BSPMV_OBSERVE_HOOKS
    static const std::string metric = std::string("parallel/") + Ops::kName;
    BSPMV_OBS_THREAD_RECORD(metric.c_str(), tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
#endif
  }
}

template <class Format>
void ThreadedSpmv<Format>::run_multi(const V* X, V* Y, int k, Layout layout,
                                     Impl impl, RunControl* control) const {
  BSPMV_CHECK_MSG(k >= 1, "rhs count must be >= 1");
  if (k == 1) {
    // Both layouts coincide for a single vector; hit the existing path.
    run(X, Y, impl, control);
    return;
  }
  const std::size_t rows = static_cast<std::size_t>(a_->rows());
  const std::size_t cols = static_cast<std::size_t>(a_->cols());
  const std::size_t kk = static_cast<std::size_t>(k);
  if constexpr (!requires(const Format& f, const V* x, V* y) {
                  Ops::pass_run_multi(f, 0, index_t{0}, index_t{0}, x, y, 1,
                                      Layout::kRowMajor, Impl::kScalar);
                }) {
    // Out-of-tree format without the multi-vector protocol: one threaded
    // single-vector run() per right-hand side (row-major pays a
    // deinterleave/reinterleave copy through scratch).
    if (layout == Layout::kColMajor) {
      for (int j = 0; j < k; ++j) {
        if (control != nullptr && control->stop_requested()) return;
        run(X + static_cast<std::size_t>(j) * cols,
            Y + static_cast<std::size_t>(j) * rows, impl, control);
      }
    } else {
      aligned_vector<V> x(cols), y(rows);
      for (int j = 0; j < k; ++j) {
        if (control != nullptr && control->stop_requested()) return;
        for (std::size_t i = 0; i < cols; ++i)
          x[i] = X[i * kk + static_cast<std::size_t>(j)];
        run(x.data(), y.data(), impl, control);
        for (std::size_t i = 0; i < rows; ++i)
          Y[i * kk + static_cast<std::size_t>(j)] = y[i];
      }
    }
    return;
  } else {
#pragma omp parallel num_threads(threads_)
    {
      const int tid = omp_get_thread_num();
      BSPMV_OBS_THREAD_TIMER(obs_timer);
      RunControl::ScopedCurrent ambient(control);
      // Zero-fill a contiguous row range of Y in whichever layout.
      const auto zero_rows = [&](index_t r0, index_t r1) {
        if (layout == Layout::kRowMajor) {
          std::fill(Y + static_cast<std::size_t>(r0) * kk,
                    Y + static_cast<std::size_t>(r1) * kk, V{0});
        } else {
          for (std::size_t j = 0; j < kk; ++j)
            std::fill(Y + j * rows + static_cast<std::size_t>(r0),
                      Y + j * rows + static_cast<std::size_t>(r1), V{0});
        }
      };
      for (int pass = 0; pass < Ops::kPasses; ++pass) {
        if (pass > 0) {
          // Same barrier discipline as run(): every thread reaches every
          // pass barrier, aborted or not.
#pragma omp barrier
        }
        const auto& bounds = bounds_[static_cast<std::size_t>(pass)];
        const index_t g0 = bounds[static_cast<std::size_t>(tid)];
        const index_t g1 = bounds[static_cast<std::size_t>(tid) + 1];
        if (control == nullptr) {
          if (pass == 0)
            zero_rows(Ops::pass_first_row(*a_, 0, g0),
                      Ops::pass_first_row(*a_, 0, g1));
          Ops::pass_run_multi(*a_, pass, g0, g1, X, Y, k, layout, impl);
        } else if (!control->stop_requested()) {
          if (pass == 0)
            zero_rows(Ops::pass_first_row(*a_, 0, g0),
                      Ops::pass_first_row(*a_, 0, g1));
          for (index_t g = g0; g < g1; g += kControlChunk) {
            if (control->stop_requested()) break;  // one relaxed load
            Ops::pass_run_multi(*a_, pass, g,
                                std::min<index_t>(g1, g + kControlChunk), X,
                                Y, k, layout, impl);
            control->heartbeat(tid);
          }
        }
      }
#if defined(BSPMV_OBSERVE_HOOKS) && BSPMV_OBSERVE_HOOKS
      static const std::string metric = std::string("spmm/") + Ops::kName;
      BSPMV_OBS_THREAD_RECORD(metric.c_str(), tid, obs_timer,
                              part_weights_[static_cast<std::size_t>(tid)] *
                                  static_cast<std::size_t>(k));
#endif
    }
  }
}

#define BSPMV_DECL(V)            \
  extern template class          \
      ThreadedSpmv<Csr<V>>;      \
  extern template class          \
      ThreadedSpmv<Bcsr<V>>;     \
  extern template class          \
      ThreadedSpmv<Bcsd<V>>;     \
  extern template class          \
      ThreadedSpmv<BcsrDec<V>>;  \
  extern template class          \
      ThreadedSpmv<BcsdDec<V>>;
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
