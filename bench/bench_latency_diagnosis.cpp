// Reproduces the custom latency-diagnosis benchmark of §V-B: zero out the
// CSR col_ind structure so that every input-vector access hits x[0] — no
// cache misses from irregular accesses remain. Matrices whose performance
// jumps are latency-bound, not bandwidth-bound (the paper found #12, #14,
// #15, #28 in this class, with wikipedia's performance quadrupling).
#include <cstdio>

#include "bench/harness.hpp"
#include "src/core/models.hpp"
#include "src/kernels/spmv.hpp"
#include "src/util/prng.hpp"

using namespace bspmv;
using namespace bspmv::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;

  // Default: the paper's latency-bound suspects plus two regular
  // (bandwidth-bound) matrices for contrast.
  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty()) ids = {12, 14, 15, 28, 20, 23};

  std::printf("Latency diagnosis (zeroed col_ind), double precision CSR, "
              "scale=%s\n",
              suite_scale_name(cfg.scale));
  print_rule(88);
  std::printf("%-18s %12s %12s %10s %16s\n", "matrix", "t_normal(ms)",
              "t_zeroed(ms)", "speedup", "irregular-lines");
  print_rule(88);

  for (int id : ids) {
    Csr<double> a = build_suite_csr<double>(id, cfg.scale);
    const IrregularityStats irr = irregularity_stats(a);

    aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
    Xoshiro256 rng(1);
    for (auto& e : x) e = rng.uniform() - 0.5;
    aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

    const auto t_norm =
        time_repeated([&] { spmv(a, x.data(), y.data()); },
                      cfg.measure.iterations, cfg.measure.reps,
                      cfg.measure.warmup)
            .seconds_per_iter;

    // The §V-B trick: all column indices set to zero — identical traffic
    // for the matrix arrays, zero irregularity on the input vector.
    std::fill(a.mutable_col_ind().begin(), a.mutable_col_ind().end(), 0);
    const auto t_zero =
        time_repeated([&] { spmv(a, x.data(), y.data()); },
                      cfg.measure.iterations, cfg.measure.reps,
                      cfg.measure.warmup)
            .seconds_per_iter;
    do_not_optimize(y.data());

    std::printf("%02d.%-15s %12.3f %12.3f %9.2fx %16zu\n", id,
                suite_catalog()[static_cast<size_t>(id - 1)].name.c_str(),
                t_norm * 1e3, t_zero * 1e3, t_norm / t_zero,
                irr.irregular_lines);
  }
  print_rule(88);
  std::printf("speedup >> 1 indicates a latency-bound matrix (irregular "
              "input-vector access), cf. paper §V-B\n");
  return 0;
}
