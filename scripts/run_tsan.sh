#!/usr/bin/env bash
# Build under ThreadSanitizer and run the OpenMP-free concurrency tests:
#
#   - test_run_control: RunControl/Watchdog (deadline enforcement,
#     first-abort-wins, heartbeat stall detection);
#   - test_task_graph: the task-graph execution backend — Chase-Lev
#     deque pop/steal races, TaskPool scheduling, and the steal-stress
#     parity cases (7 workers over adversarially skewed generator
#     matrices, docs/tasking.md). The deque deliberately uses seq_cst
#     operations instead of standalone fences so TSan can actually
#     verify these paths;
#   - test_dist, DistComm cases only: the halo exchange's per-peer
#     send/recv threads over real socketpairs, in-process
#     (docs/distribution.md) — concurrent pairwise exchange,
#     first-error propagation, and peer-EOF typed errors. The
#     fork-based DistSpmv cases stay out (TSan's runtime does not
#     survive multi-threaded fork() children), and the HaloDecFormat
#     parity cases stay out because they drive the OpenMP ThreadedSpmv;
#   - test_dist_recovery, fork-free supervisor paths only: the
#     epoch-consistency rejection across two in-process exchange
#     endpoints (DistCommEpoch — a real two-thread wire race), plus the
#     single-threaded checkpoint codec/file cases and the recovery cost
#     models. The respawn/reshard/single-node ladder itself forks and is
#     covered by the functional suite and the ASan dist chaos soak
#     (scripts/run_dist_soak.sh) instead.
#
# Scope: only those binaries, and only their OpenMP-free cases;
# TSan has well-known false positives with libgomp's barrier/team
# implementation (it cannot see GOMP's internal synchronisation), so the
# bulk-synchronous OpenMP drivers are excluded here and covered by
# ASan/UBSan and the functional suite instead.
#
# Usage: scripts/run_tsan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBSPMV_TSAN=ON \
  -DBSPMV_BUILD_BENCH=OFF \
  -DBSPMV_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" \
  --target test_run_control test_task_graph test_dist test_dist_recovery

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "$build_dir" --output-on-failure --timeout 300 \
  -j "$(nproc)" \
  -R '^(RunControl|Watchdog|AtomicFile|RobustSamples|Numerics|Backend|WorkQueue|Topology|TaskPool|TaskStress|TaskGraph|Threads/TaskGraphParity|DistComm|DistCommEpoch|DistCheckpointFile|RecoveryModel)\.' \
  "$@"
