#include "src/core/selector.hpp"

#include <algorithm>

#include "src/observe/observe.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
std::vector<RankedCandidate> rank_candidates(ModelKind model, const Csr<V>& a,
                                             const MachineProfile& profile,
                                             const Workload& workload) {
  BSPMV_OBS_SPAN("rank");
  BSPMV_CHECK_MSG(workload.k >= 1, "workload rhs count must be >= 1");
  const bool include_simd = model != ModelKind::kMem;
  const std::vector<Candidate> candidates = model_candidates(include_simd);
  const std::vector<CandidateCost> costs = all_candidate_costs(a, candidates);
  constexpr Precision prec = precision_of<V>;

  IrregularityStats irr;
  if (model == ModelKind::kMemLat) irr = irregularity_stats(a);

  std::vector<RankedCandidate> out;
  out.reserve(costs.size());
  for (const CandidateCost& cost : costs) {
    const double seconds =
        workload.k > 1
            ? predict_spmm(model, cost, profile, prec, workload.k,
                           workload.layout, &irr)
            : predict(model, cost, profile, prec, &irr);
    out.push_back(RankedCandidate{cost.candidate, seconds});
  }
  BSPMV_OBS_COUNT("select.candidates_ranked", out.size());
  if (workload.k > 1) BSPMV_OBS_COUNT("select.k_aware_rankings", 1);

  std::stable_sort(out.begin(), out.end(),
                   [](const RankedCandidate& x, const RankedCandidate& y) {
                     if (x.predicted_seconds != y.predicted_seconds)
                       return x.predicted_seconds < y.predicted_seconds;
                     return x.candidate.id() < y.candidate.id();
                   });
  return out;
}

template <class V>
std::vector<RankedCandidate> rank_candidates(ModelKind model, const Csr<V>& a,
                                             const MachineProfile& profile) {
  return rank_candidates(model, a, profile, Workload{});
}

template <class V>
RankedCandidate select_best(ModelKind model, const Csr<V>& a,
                            const MachineProfile& profile,
                            const Workload& workload) {
  const auto ranked = rank_candidates(model, a, profile, workload);
  BSPMV_CHECK(!ranked.empty());
  return ranked.front();
}

template <class V>
RankedCandidate select_best(ModelKind model, const Csr<V>& a,
                            const MachineProfile& profile) {
  return select_best(model, a, profile, Workload{});
}

template <class V>
PreparedExecutor<V> select_and_prepare(ModelKind model, const Csr<V>& a,
                                       const MachineProfile& profile,
                                       const Workload& workload) {
  BSPMV_OBS_SPAN("select");
  const auto ranked = rank_candidates(model, a, profile, workload);
  std::vector<Candidate> candidates;
  candidates.reserve(ranked.size());
  for (const RankedCandidate& rc : ranked) candidates.push_back(rc.candidate);
  return try_prepare(a, candidates);
}

template <class V>
PreparedExecutor<V> select_and_prepare(ModelKind model, const Csr<V>& a,
                                       const MachineProfile& profile) {
  return select_and_prepare(model, a, profile, Workload{});
}

#define BSPMV_INST(V)                                                     \
  template std::vector<RankedCandidate> rank_candidates(                  \
      ModelKind, const Csr<V>&, const MachineProfile&);                   \
  template std::vector<RankedCandidate> rank_candidates(                  \
      ModelKind, const Csr<V>&, const MachineProfile&, const Workload&);  \
  template RankedCandidate select_best(ModelKind, const Csr<V>&,          \
                                       const MachineProfile&);            \
  template RankedCandidate select_best(ModelKind, const Csr<V>&,          \
                                       const MachineProfile&,             \
                                       const Workload&);                  \
  template PreparedExecutor<V> select_and_prepare(                        \
      ModelKind, const Csr<V>&, const MachineProfile&);                   \
  template PreparedExecutor<V> select_and_prepare(                        \
      ModelKind, const Csr<V>&, const MachineProfile&, const Workload&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
