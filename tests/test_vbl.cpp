// 1D-VBL format and kernel tests.
#include <gtest/gtest.h>

#include "src/formats/vbl.hpp"
#include "src/kernels/spmv.hpp"
#include "src/kernels/vbl_kernels.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_coo;

TEST(Vbl, BuildsMaximalRuns) {
  // Row 0: cols {1,2,3, 7}, row 1: cols {0}, row 2: empty.
  Coo<double> coo(3, 9);
  coo.add(0, 1, 1);
  coo.add(0, 2, 2);
  coo.add(0, 3, 3);
  coo.add(0, 7, 4);
  coo.add(1, 0, 5);
  const Vbl<double> m = Vbl<double>::from_csr(Csr<double>::from_coo(coo));
  ASSERT_EQ(m.blocks(), 3u);
  EXPECT_EQ(m.bcol_ind()[0], 1);
  EXPECT_EQ(m.blk_size()[0], 3);
  EXPECT_EQ(m.bcol_ind()[1], 7);
  EXPECT_EQ(m.blk_size()[1], 1);
  EXPECT_EQ(m.bcol_ind()[2], 0);
  EXPECT_EQ(m.blk_size()[2], 1);
  // val and row_ptr identical to CSR.
  EXPECT_EQ(m.nnz(), 5u);
  const aligned_vector<index_t> want_rp = {0, 4, 5, 5};
  EXPECT_EQ(m.row_ptr(), want_rp);
}

TEST(Vbl, LongRunsSplitAt255) {
  Coo<double> coo(2, 700);
  for (index_t j = 0; j < 700; ++j) coo.add(0, j, 1.0);
  for (index_t j = 100; j < 355; ++j) coo.add(1, j, 2.0);
  const Vbl<double> m = Vbl<double>::from_csr(Csr<double>::from_coo(coo));
  // Row 0: 255+255+190 -> 3 blocks; row 1: exactly 255 -> 1 block.
  ASSERT_EQ(m.blocks(), 4u);
  EXPECT_EQ(m.blk_size()[0], 255);
  EXPECT_EQ(m.blk_size()[1], 255);
  EXPECT_EQ(m.blk_size()[2], 190);
  EXPECT_EQ(m.bcol_ind()[1], 255);
  EXPECT_EQ(m.blk_size()[3], 255);
}

TEST(Vbl, RoundTripPreservesEntries) {
  Coo<double> coo = random_coo<double>(25, 400, 0.2, 9);
  coo.sort_and_combine();
  Coo<double> back = Vbl<double>::from_csr(Csr<double>::from_coo(coo)).to_coo();
  back.sort_and_combine();
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(back.entries()[k].col, coo.entries()[k].col);
    EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
  }
}

TEST(Vbl, WorkingSetCountsByteSizedBlockArray) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(20, 50, 0.2, 2));
  const Vbl<double> m = Vbl<double>::from_csr(a);
  const std::size_t expect = m.nnz() * 8 + 21 * 4 + m.blocks() * (4 + 1) +
                             (20 + 50) * 8;
  EXPECT_EQ(m.working_set_bytes(), expect);
}

using Types = ::testing::Types<float, double>;
template <class V>
class VblKernels : public ::testing::Test {};
TYPED_TEST_SUITE(VblKernels, Types);

TYPED_TEST(VblKernels, ScalarMatchesReference) {
  using V = TypeParam;
  // Mix of long runs and isolated entries.
  Coo<V> coo(60, 500);
  Xoshiro256 rng(77);
  for (index_t i = 0; i < 60; ++i) {
    const auto start = static_cast<index_t>(rng.below(400));
    const auto len = static_cast<index_t>(1 + rng.below(60));
    for (index_t t = 0; t < len; ++t)
      coo.add(i, start + t, static_cast<V>(0.1 + rng.uniform()));
    coo.add(i, static_cast<index_t>(rng.below(500)),
            static_cast<V>(0.1 + rng.uniform()));
  }
  coo.sort_and_combine();
  const Vbl<V> m = Vbl<V>::from_csr(Csr<V>::from_coo(coo));
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(m, x, y, Impl::kScalar); },
      "vbl scalar");
}

TYPED_TEST(VblKernels, SimdMatchesReference) {
  using V = TypeParam;
  Coo<V> coo(40, 600);
  Xoshiro256 rng(78);
  for (index_t i = 0; i < 40; ++i) {
    const auto start = static_cast<index_t>(rng.below(200));
    const auto len = static_cast<index_t>(1 + rng.below(300));
    for (index_t t = 0; t < len; ++t)
      coo.add(i, start + t, static_cast<V>(0.1 + rng.uniform()));
  }
  coo.sort_and_combine();
  const Vbl<V> m = Vbl<V>::from_csr(Csr<V>::from_coo(coo));
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(m, x, y, Impl::kSimd); }, "vbl simd");
}

TYPED_TEST(VblKernels, EmptyMatrix) {
  using V = TypeParam;
  const Vbl<V> m = Vbl<V>::from_csr(Csr<V>::from_coo(Coo<V>(4, 4)));
  EXPECT_EQ(m.blocks(), 0u);
  const V x[4] = {1, 2, 3, 4};
  V y[4];
  spmv(m, x, y);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(y[i], V{0});
}

}  // namespace
}  // namespace bspmv
