// Ablation (cf. the authors' block-shape study [9]): how the BCSR block
// shape and kernel implementation affect SpMV performance on a dense
// matrix (zero padding for every shape) — isolating the computational
// behaviour of each block kernel from fill effects.
#include <cstdio>

#include "bench/harness.hpp"
#include "src/gen/generators.hpp"
#include "src/kernels/spmv.hpp"
#include "src/util/prng.hpp"

using namespace bspmv;
using namespace bspmv::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_option("n", "840", "dense matrix dimension (840 = lcm(1..8))");
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;

  const index_t n = static_cast<index_t>(cli.get_int("n"));
  const Csr<double> a = Csr<double>::from_coo(gen_dense<double>(n, n, 7));
  aligned_vector<double> x(static_cast<std::size_t>(n));
  Xoshiro256 rng(2);
  for (auto& e : x) e = rng.uniform() - 0.5;
  aligned_vector<double> y(static_cast<std::size_t>(n), 0.0);

  auto time_it = [&](auto&& fn) {
    return time_repeated(fn, cfg.measure.iterations, cfg.measure.reps,
                         cfg.measure.warmup)
        .seconds_per_iter;
  };

  const double flops = 2.0 * static_cast<double>(a.nnz());
  const double csr_t = time_it([&] { spmv(a, x.data(), y.data()); });

  std::printf("Block-shape ablation on a %dx%d dense matrix "
              "(zero padding for all shapes)\n",
              n, n);
  std::printf("CSR scalar baseline: %.3f ms (%.2f GFLOP/s)\n", csr_t * 1e3,
              flops / csr_t / 1e9);
  print_rule(70);
  std::printf("%-7s %10s %12s %12s %12s %8s\n", "shape", "blocks",
              "scalar(ms)", "simd(ms)", "GFLOP/s", "vs CSR");
  print_rule(70);

  for (BlockShape shape : bcsr_shapes()) {
    const Bcsr<double> m = Bcsr<double>::from_csr(a, shape);
    const double ts =
        time_it([&] { spmv(m, x.data(), y.data(), Impl::kScalar); });
    const double tv =
        time_it([&] { spmv(m, x.data(), y.data(), Impl::kSimd); });
    const double best = std::min(ts, tv);
    std::printf("%-7s %10zu %12.3f %12.3f %12.2f %7.2fx\n",
                shape.to_string().c_str(), m.blocks(), ts * 1e3, tv * 1e3,
                flops / best / 1e9, csr_t / best);
  }
  print_rule(70);
  do_not_optimize(y.data());
  return 0;
}
