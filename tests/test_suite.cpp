// Matrix-suite tests: catalogue integrity and buildability of all 30
// entries at tiny scale, with class-specific structural assertions.
#include <gtest/gtest.h>

#include <set>

#include "src/util/macros.hpp"
#include "src/formats/stats.hpp"
#include "src/gen/suite.hpp"

namespace bspmv {
namespace {

TEST(SuiteCatalog, HasThirtyWellFormedEntries) {
  const auto& cat = suite_catalog();
  ASSERT_EQ(cat.size(), 30u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat[i].id, static_cast<int>(i) + 1);
    EXPECT_FALSE(cat[i].name.empty());
    EXPECT_FALSE(cat[i].domain.empty());
    names.insert(cat[i].name);
  }
  EXPECT_EQ(names.size(), 30u);
  // Paper's split: #1-#2 special, #17-#30 have 2D/3D geometry.
  EXPECT_TRUE(cat[0].special && cat[1].special);
  for (int id = 3; id <= 16; ++id) EXPECT_FALSE(cat[id - 1].geometry) << id;
  for (int id = 17; id <= 30; ++id) EXPECT_TRUE(cat[id - 1].geometry) << id;
}

TEST(SuiteScaleParsing, RoundTrips) {
  EXPECT_EQ(parse_suite_scale("tiny"), SuiteScale::kTiny);
  EXPECT_EQ(parse_suite_scale("small"), SuiteScale::kSmall);
  EXPECT_EQ(parse_suite_scale("paper"), SuiteScale::kPaper);
  EXPECT_THROW(parse_suite_scale("huge"), invalid_argument_error);
  EXPECT_STREQ(suite_scale_name(SuiteScale::kPaper), "paper");
}

class SuiteBuild : public ::testing::TestWithParam<int> {};

TEST_P(SuiteBuild, TinyScaleBuildsValidMatrix) {
  const int id = GetParam();
  const Csr<double> a = build_suite_csr<double>(id, SuiteScale::kTiny);
  EXPECT_GT(a.rows(), 0);
  EXPECT_GT(a.cols(), 0);
  EXPECT_GT(a.nnz(), 100u) << "suite matrix " << id << " suspiciously empty";
  // Structural validity is enforced by the Csr constructor; also verify
  // determinism of the builder.
  const Csr<double> b = build_suite_csr<double>(id, SuiteScale::kTiny);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_ind(), b.col_ind());
}

INSTANTIATE_TEST_SUITE_P(All30, SuiteBuild, ::testing::Range(1, 31));

TEST(SuiteStructure, DenseMatrixIsDense) {
  const Csr<double> a = build_suite_csr<double>(1, SuiteScale::kTiny);
  EXPECT_EQ(a.nnz(), static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols()));
}

TEST(SuiteStructure, StructuralMatricesAreBlockFriendly) {
  // TSOPF_RS substitute (#19) is built from fully dense 8x8 blocks:
  // 2x2 BCSR must pad almost nothing.
  const Csr<double> a = build_suite_csr<double>(19, SuiteScale::kTiny);
  EXPECT_GT(bcsr_stats(a, BlockShape{2, 2}).fill(), 0.95);
  // audikw substitute (#21, 3 dof) is 3x3-friendly.
  const Csr<double> b = build_suite_csr<double>(21, SuiteScale::kTiny);
  EXPECT_GT(bcsr_stats(b, BlockShape{3, 1}).fill(), 0.7);
}

TEST(SuiteStructure, RandomMatrixDefeatsBlocking) {
  const Csr<double> a = build_suite_csr<double>(2, SuiteScale::kTiny);
  // 2x2 blocks on uniform random positions pad heavily (fill ~0.25-0.35).
  EXPECT_LT(bcsr_stats(a, BlockShape{2, 2}).fill(), 0.5);
}

TEST(SuiteStructure, LpMatricesFavourHorizontalBlocks) {
  const Csr<double> a = build_suite_csr<double>(15, SuiteScale::kTiny);
  const double fill_1x4 = bcsr_stats(a, BlockShape{1, 4}).fill();
  const double fill_4x1 = bcsr_stats(a, BlockShape{4, 1}).fill();
  EXPECT_GT(fill_1x4, fill_4x1);
}

TEST(SuiteStructure, ScaleGrowsTheMatrix) {
  const Csr<double> tiny = build_suite_csr<double>(4, SuiteScale::kTiny);
  const Csr<double> small = build_suite_csr<double>(4, SuiteScale::kSmall);
  EXPECT_GT(small.nnz(), 2 * tiny.nnz());
}

TEST(SuiteStructure, BadIdThrows) {
  EXPECT_THROW(build_suite_csr<double>(0, SuiteScale::kTiny),
               invalid_argument_error);
  EXPECT_THROW(build_suite_csr<double>(31, SuiteScale::kTiny),
               invalid_argument_error);
}

}  // namespace
}  // namespace bspmv
