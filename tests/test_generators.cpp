// Generator tests: determinism, structural properties of each class.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/macros.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/stats.hpp"
#include "src/gen/generators.hpp"

namespace bspmv {
namespace {

template <class V>
bool same_structure(const Coo<V>& a, const Coo<V>& b) {
  if (a.nnz() != b.nnz()) return false;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    if (a.entries()[k].row != b.entries()[k].row ||
        a.entries()[k].col != b.entries()[k].col ||
        a.entries()[k].value != b.entries()[k].value)
      return false;
  }
  return true;
}

TEST(Generators, DeterministicPerSeed) {
  EXPECT_TRUE(same_structure(gen_uniform_random<double>(50, 50, 400, 1),
                             gen_uniform_random<double>(50, 50, 400, 1)));
  EXPECT_FALSE(same_structure(gen_uniform_random<double>(50, 50, 400, 1),
                              gen_uniform_random<double>(50, 50, 400, 2)));
  EXPECT_TRUE(same_structure(gen_rmat<double>(8, 900, 0.5, 0.2, 0.2, 3),
                             gen_rmat<double>(8, 900, 0.5, 0.2, 0.2, 3)));
}

TEST(Generators, DenseIsFullyPopulated) {
  const Coo<double> d = gen_dense<double>(13, 17, 1);
  EXPECT_EQ(d.nnz(), 13u * 17u);
  for (const auto& e : d.entries()) EXPECT_GT(e.value, 0.0);
}

TEST(Generators, Stencil2dInteriorRowCounts) {
  const Coo<double> s5 = gen_stencil_2d<double>(10, 10, 5, 1);
  const Coo<double> s9 = gen_stencil_2d<double>(10, 10, 9, 1);
  const Csr<double> a5 = Csr<double>::from_coo(s5);
  const Csr<double> a9 = Csr<double>::from_coo(s9);
  // Interior point (5,5) -> row 55 has exactly 5 / 9 entries.
  EXPECT_EQ(a5.row_nnz(55), 5);
  EXPECT_EQ(a9.row_nnz(55), 9);
  // Corner row 0: 3 entries (5-pt) / 4 entries (9-pt).
  EXPECT_EQ(a5.row_nnz(0), 3);
  EXPECT_EQ(a9.row_nnz(0), 4);
}

TEST(Generators, Stencil3dInteriorRowCounts) {
  const Csr<double> a7 =
      Csr<double>::from_coo(gen_stencil_3d<double>(6, 6, 6, 7, 1));
  const Csr<double> a27 =
      Csr<double>::from_coo(gen_stencil_3d<double>(6, 6, 6, 27, 1));
  const index_t interior = (3 * 6 + 3) * 6 + 3;  // (3,3,3)
  EXPECT_EQ(a7.row_nnz(interior), 7);
  EXPECT_EQ(a27.row_nnz(interior), 27);
}

TEST(Generators, BlockedBandHasHighBlockFill) {
  // With fill = 1 every coupling is a full dense block, so the matching
  // BCSR shape pads almost nothing.
  const Coo<double> coo = gen_blocked_band<double>(100, 3, 20, 3, 1.0, 7);
  const Csr<double> a = Csr<double>::from_coo(coo);
  // 3x1 tiles the generator's 3x3 dense couplings exactly.
  const BlockStats st = bcsr_stats(a, BlockShape{3, 1});
  EXPECT_GT(st.fill(), 0.9);
  EXPECT_EQ(a.rows(), 300);
}

TEST(Generators, BlockedBandRespectsBandwidth) {
  const Coo<double> coo = gen_blocked_band<double>(200, 2, 10, 4, 0.8, 9);
  for (const auto& e : coo.entries())
    EXPECT_LE(std::abs(e.row / 2 - e.col / 2), 10);
}

TEST(Generators, RmatIsSkewed) {
  // With strong a-corner weight, low-index vertices must dominate.
  const Coo<double> g = gen_rmat<double>(10, 5000, 0.6, 0.15, 0.15, 11);
  const index_t n = 1 << 10;
  std::size_t low = 0;
  for (const auto& e : g.entries())
    if (e.row < n / 4) ++low;
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(g.nnz()), 0.4);
}

TEST(Generators, ShortRowsBounded) {
  const Coo<double> coo = gen_short_rows<double>(300, 1, 4, 13);
  const Csr<double> a = Csr<double>::from_coo(coo);
  for (index_t i = 0; i < a.rows(); ++i) {
    EXPECT_GE(a.row_nnz(i), 1);         // diagonal survives dedup
    EXPECT_LE(a.row_nnz(i), 5);         // diag + <= 4 extras
  }
}

TEST(Generators, RowSegmentsProduceRuns) {
  const Coo<double> coo = gen_row_segments<double>(50, 400, 3, 3, 6, 6, 15);
  const Csr<double> a = Csr<double>::from_coo(coo);
  // Average 1D-VBL block must be much longer than 1 (runs of 6, some
  // merging/overlap allowed).
  const double avg_block = static_cast<double>(a.nnz()) /
                           static_cast<double>(vbl_block_count(a));
  EXPECT_GT(avg_block, 3.0);
}

TEST(Generators, MultiDiagonalExactCounts) {
  const Coo<double> coo = gen_multi_diagonal<double>(64, {0, 1, -2}, 17);
  // offsets 0: 64, 1: 63, -2: 62 entries.
  EXPECT_EQ(coo.nnz(), 64u + 63u + 62u);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const BlockStats st = bcsd_stats(a, 4);
  EXPECT_GT(st.fill(), 0.9);  // diagonals are BCSD-perfect
}

TEST(Generators, CombineUnionsPatterns) {
  Coo<double> a = gen_multi_diagonal<double>(32, {0}, 1);
  const Coo<double> b = gen_multi_diagonal<double>(32, {1}, 2);
  const Coo<double> u = combine(std::move(a), b);
  EXPECT_EQ(u.nnz(), 32u + 31u);
}

TEST(Generators, CombineRejectsDimensionMismatch) {
  Coo<double> a(4, 4);
  const Coo<double> b(4, 5);
  EXPECT_THROW(combine(std::move(a), b), invalid_argument_error);
}

TEST(Generators, PerturbDropRemovesAboutP) {
  const Coo<double> base = gen_dense<double>(60, 60, 3);
  const Coo<double> dropped = perturb_drop(base, 0.3, 4);
  const double kept =
      static_cast<double>(dropped.nnz()) / static_cast<double>(base.nnz());
  EXPECT_NEAR(kept, 0.7, 0.05);
  EXPECT_TRUE(same_structure(perturb_drop(base, 0.3, 4),
                             perturb_drop(base, 0.3, 4)));
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(gen_stencil_2d<double>(4, 4, 7, 1), invalid_argument_error);
  EXPECT_THROW(gen_stencil_3d<double>(4, 4, 4, 9, 1), invalid_argument_error);
  EXPECT_THROW(gen_rmat<double>(0, 10, 0.5, 0.2, 0.2, 1),
               invalid_argument_error);
  EXPECT_THROW(gen_rmat<double>(5, 10, 0.5, 0.3, 0.3, 1),
               invalid_argument_error);  // a+b+c >= 1
  EXPECT_THROW(perturb_drop(Coo<double>(2, 2), 1.5, 1),
               invalid_argument_error);
}

}  // namespace
}  // namespace bspmv
