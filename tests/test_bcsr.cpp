// BCSR format and kernel tests: alignment, padding, round-trips, and
// parameterised kernel-vs-reference sweeps over every shape × impl.
#include <gtest/gtest.h>

#include <tuple>

#include "src/formats/bcsr.hpp"
#include "src/kernels/bcsr_kernels.hpp"
#include "src/kernels/spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;

TEST(Bcsr, HandExampleLayout) {
  // 4x4 matrix, 2x2 blocks:
  //  [1 2 . .]
  //  [. 3 . .]
  //  [. . 4 .]
  //  [. . 5 6]
  Coo<double> coo(4, 4);
  coo.add(0, 0, 1);
  coo.add(0, 1, 2);
  coo.add(1, 1, 3);
  coo.add(2, 2, 4);
  coo.add(3, 2, 5);
  coo.add(3, 3, 6);
  const Bcsr<double> m =
      Bcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{2, 2});
  EXPECT_EQ(m.blocks(), 2u);
  EXPECT_EQ(m.block_rows(), 2);
  EXPECT_EQ(m.nnz(), 6u);
  EXPECT_EQ(m.padding(), 2u);  // one zero in each 2x2 block
  const aligned_vector<index_t> want_bp = {0, 1, 2};
  EXPECT_EQ(m.brow_ptr(), want_bp);
  EXPECT_EQ(m.bcol_ind()[0], 0);
  EXPECT_EQ(m.bcol_ind()[1], 1);
  // Row-major within block: [1 2 / 0 3] then [4 0 / 5 6].
  const aligned_vector<double> want_bval = {1, 2, 0, 3, 4, 0, 5, 6};
  EXPECT_EQ(m.bval(), want_bval);
}

TEST(Bcsr, AlignmentIsEnforced) {
  // A single nonzero at (3, 5) with 2x3 blocks must land in the block
  // anchored at (2, 3): aligned start rows/cols only.
  Coo<double> coo(6, 9);
  coo.add(3, 5, 7.0);
  const Bcsr<double> m =
      Bcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{2, 3});
  ASSERT_EQ(m.blocks(), 1u);
  EXPECT_EQ(m.bcol_ind()[0], 1);  // block column 1 -> columns 3..5
  // Element at local position (row 3-2=1, col 5-3=2) -> offset 1*3+2 = 5.
  EXPECT_DOUBLE_EQ(m.bval()[5], 7.0);
  EXPECT_EQ(m.padding(), 5u);
}

TEST(Bcsr, RoundTripDropsOnlyPadding) {
  for (std::uint64_t seed : {3u, 4u}) {
    Coo<double> coo = random_coo<double>(45, 37, 0.1, seed);
    coo.sort_and_combine();
    const Csr<double> a = Csr<double>::from_coo(coo);
    for (BlockShape shape : {BlockShape{2, 2}, BlockShape{3, 2},
                             BlockShape{1, 8}, BlockShape{8, 1}}) {
      const Bcsr<double> m = Bcsr<double>::from_csr(a, shape);
      Coo<double> back = m.to_coo();
      back.sort_and_combine();
      ASSERT_EQ(back.nnz(), coo.nnz()) << shape.to_string();
      for (std::size_t k = 0; k < coo.nnz(); ++k) {
        EXPECT_EQ(back.entries()[k].row, coo.entries()[k].row);
        EXPECT_EQ(back.entries()[k].col, coo.entries()[k].col);
        EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
      }
    }
  }
}

TEST(Bcsr, RejectsInvalidShapes) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(8, 8, 0.3, 1));
  EXPECT_THROW(Bcsr<double>::from_csr(a, BlockShape{0, 1}),
               invalid_argument_error);
  EXPECT_THROW(bcsr_kernel<double>(BlockShape{3, 3}, false),
               invalid_argument_error);  // 9 > 8 elements
  EXPECT_THROW(bcsr_kernel<double>(BlockShape{9, 1}, false),
               invalid_argument_error);
  EXPECT_NE(bcsr_kernel<double>(BlockShape{1, 1}, true), nullptr);
}

// ---- Parameterised kernel sweep: shape × impl × value type -------------

struct BcsrCase {
  BlockShape shape;
  bool simd;
};

class BcsrKernels : public ::testing::TestWithParam<BcsrCase> {};

TEST_P(BcsrKernels, DoubleMatchesReference) {
  const auto [shape, simd] = GetParam();
  // Dimensions deliberately NOT multiples of r/c: exercises tail block
  // rows and right-edge padding.
  const Coo<double> coo = random_coo<double>(51, 47, 0.09, 31);
  const Bcsr<double> m = Bcsr<double>::from_csr(Csr<double>::from_coo(coo), shape);
  check_against_reference<double>(
      coo,
      [&](const double* x, double* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "bcsr " + shape.to_string() + (simd ? " simd" : " scalar"));
}

TEST_P(BcsrKernels, FloatMatchesReference) {
  const auto [shape, simd] = GetParam();
  const Coo<float> coo = random_coo<float>(51, 47, 0.09, 32);
  const Bcsr<float> m = Bcsr<float>::from_csr(Csr<float>::from_coo(coo), shape);
  check_against_reference<float>(
      coo,
      [&](const float* x, float* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "bcsr " + shape.to_string() + (simd ? " simd" : " scalar"));
}

TEST_P(BcsrKernels, BlockyMatrixMatchesReference) {
  const auto [shape, simd] = GetParam();
  const Coo<double> coo = random_blocky_coo<double>(64, 72, 4, 0.2, 0.9, 33);
  const Bcsr<double> m = Bcsr<double>::from_csr(Csr<double>::from_coo(coo), shape);
  check_against_reference<double>(
      coo,
      [&](const double* x, double* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "bcsr blocky " + shape.to_string());
}

std::vector<BcsrCase> all_bcsr_cases() {
  std::vector<BcsrCase> cases;
  for (BlockShape s : bcsr_shapes()) {
    cases.push_back({s, false});
    cases.push_back({s, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllShapesAndImpls, BcsrKernels,
                         ::testing::ValuesIn(all_bcsr_cases()),
                         [](const auto& info) {
                           return info.param.shape.to_string() +
                                  (info.param.simd ? "_simd" : "_scalar");
                         });

TEST(BcsrKernels, RangeRespectsBlockRowBounds) {
  const Coo<double> coo = random_coo<double>(40, 40, 0.2, 8);
  const Bcsr<double> m =
      Bcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{4, 2});
  const auto x = bspmv::testing::random_x<double>(40, 2);
  aligned_vector<double> full(40, 0.0), part(40, 0.0);
  const auto fn = bcsr_kernel<double>(BlockShape{4, 2}, false);
  fn(m, 0, m.block_rows(), x.data(), full.data());
  fn(m, 2, 5, x.data(), part.data());
  for (index_t i = 0; i < 40; ++i) {
    if (i >= 8 && i < 20)
      EXPECT_DOUBLE_EQ(part[static_cast<std::size_t>(i)],
                       full[static_cast<std::size_t>(i)]);
    else
      EXPECT_DOUBLE_EQ(part[static_cast<std::size_t>(i)], 0.0);
  }
}

TEST(BcsrKernels, TailBlockRowDoesNotWritePastEnd) {
  // 5 rows with r=4: the second block row covers rows 4..7, only row 4
  // exists. Guard values after y[4] must stay intact.
  Coo<double> coo(5, 8);
  for (index_t j = 0; j < 8; ++j) coo.add(4, j, 1.0);
  const Bcsr<double> m =
      Bcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{4, 2});
  aligned_vector<double> buf(8, -123.0);  // y is [0..5); the rest is a guard
  const aligned_vector<double> x(8, 1.0);
  std::fill(buf.begin(), buf.begin() + 5, 0.0);
  const auto fn = bcsr_kernel<double>(BlockShape{4, 2}, false);
  fn(m, 0, m.block_rows(), x.data(), buf.data());
  EXPECT_DOUBLE_EQ(buf[4], 8.0);
  EXPECT_DOUBLE_EQ(buf[5], -123.0);
  EXPECT_DOUBLE_EQ(buf[6], -123.0);
}

}  // namespace
}  // namespace bspmv
