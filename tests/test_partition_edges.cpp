// Edge cases for the §V-A nnz-balanced partitioner: empty matrices, more
// threads than row granules, single pathologically heavy rows — plus the
// structural invariants every bounds vector must satisfy (monotone,
// starts at 0, ends at n) and the part_weight_sums companion the
// observability hooks report as per-thread load.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/dist/shard_plan.hpp"
#include "src/kernels/spmv.hpp"
#include "src/parallel/parallel_spmv.hpp"
#include "src/parallel/partition.hpp"
#include "src/parallel/task_graph.hpp"
#include "src/util/errors.hpp"
#include "tests/test_helpers.hpp"

using namespace bspmv;

namespace {

/// Assert the structural contract of balanced_partition's result:
/// parts+1 boundaries, first 0, last n, non-decreasing — so the ranges
/// are valid, disjoint, and cover [0, n) exactly.
void expect_valid_bounds(const std::vector<index_t>& bounds, int parts,
                         std::size_t n) {
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), static_cast<index_t>(n));
  for (std::size_t p = 0; p + 1 < bounds.size(); ++p)
    EXPECT_LE(bounds[p], bounds[p + 1]) << "bounds not monotone at " << p;
}

TEST(PartitionEdges, EmptyWeights) {
  const std::vector<std::size_t> w;
  for (int parts : {1, 2, 8}) {
    const auto bounds = balanced_partition(w, parts);
    expect_valid_bounds(bounds, parts, 0);
    const auto sums = part_weight_sums(w, bounds);
    for (std::size_t s : sums) EXPECT_EQ(s, 0u);
  }
}

TEST(PartitionEdges, MoreThreadsThanRows) {
  const std::vector<std::size_t> w = {5, 3, 7};  // 3 granules, 8 threads
  const auto bounds = balanced_partition(w, 8);
  expect_valid_bounds(bounds, 8, w.size());
  // Every granule is assigned exactly once; surplus parts are empty.
  const auto sums = part_weight_sums(w, bounds);
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), std::size_t{0}), 15u);
  int non_empty = 0;
  for (std::size_t s : sums) non_empty += s > 0 ? 1 : 0;
  EXPECT_LE(non_empty, 3);
}

TEST(PartitionEdges, SingleHeavyRow) {
  // One row dominates: it must land in exactly one part and the cuts
  // around it must stay valid.
  std::vector<std::size_t> w(100, 1);
  w[40] = 100000;
  const auto bounds = balanced_partition(w, 4);
  expect_valid_bounds(bounds, 4, w.size());
  const auto sums = part_weight_sums(w, bounds);
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), std::size_t{0}),
            100099u);
  int heavy_parts = 0;
  for (std::size_t s : sums) heavy_parts += s >= 100000 ? 1 : 0;
  EXPECT_EQ(heavy_parts, 1);
}

TEST(PartitionEdges, AllZeroWeights) {
  const std::vector<std::size_t> w(10, 0);
  const auto bounds = balanced_partition(w, 4);
  expect_valid_bounds(bounds, 4, w.size());
}

TEST(PartitionEdges, SingleGranule) {
  const std::vector<std::size_t> w = {42};
  for (int parts : {1, 2, 16}) {
    const auto bounds = balanced_partition(w, parts);
    expect_valid_bounds(bounds, parts, 1);
    const auto sums = part_weight_sums(w, bounds);
    EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), std::size_t{0}), 42u);
  }
}

TEST(PartitionEdges, InvalidArguments) {
  const std::vector<std::size_t> w = {1, 2, 3};
  EXPECT_THROW(balanced_partition(w, 0), invalid_argument_error);
  EXPECT_THROW(balanced_partition(w, -1), invalid_argument_error);
  const std::vector<index_t> too_short = {0};
  EXPECT_THROW(part_weight_sums(w, too_short), invalid_argument_error);
}

TEST(PartitionEdges, InvariantsAcrossSweep) {
  // Deterministic pseudo-random weights over many (n, parts) combinations:
  // the structural contract and weight conservation must always hold.
  Xoshiro256 rng(123);
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    std::vector<std::size_t> w(n);
    for (auto& x : w) x = static_cast<std::size_t>(rng.uniform() * 50.0);
    const std::size_t total = std::accumulate(w.begin(), w.end(),
                                              std::size_t{0});
    for (int parts : {1, 2, 3, 8, 64}) {
      const auto bounds = balanced_partition(w, parts);
      expect_valid_bounds(bounds, parts, n);
      const auto sums = part_weight_sums(w, bounds);
      EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), std::size_t{0}),
                total)
          << "weight not conserved for n=" << n << " parts=" << parts;
    }
  }
}

TEST(PartitionEdges, PartWeightSumsMatchesManualSum) {
  const std::vector<std::size_t> w = {4, 0, 9, 1, 1, 6};
  const std::vector<index_t> bounds = {0, 2, 2, 5, 6};  // one empty part
  const auto sums = part_weight_sums(w, bounds);
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_EQ(sums[0], 4u);
  EXPECT_EQ(sums[1], 0u);
  EXPECT_EQ(sums[2], 11u);
  EXPECT_EQ(sums[3], 6u);
}

// --------------------------- degenerate decompositions, both backends ----
//
// The same pathological shapes the partitioner tests cover above, pushed
// through a full SpMV on the bulk-synchronous (ThreadedSpmv) and
// task-graph (TaskGraphSpmv) backends: both must produce the serial
// result bitwise no matter how empty or skewed the task decomposition is.

/// Serial reference, then both backends at `threads`, bitwise compare.
void expect_both_backends_match_serial(const Csr<double>& a, int threads,
                                       const std::string& context) {
  const auto x =
      bspmv::testing::random_x<double>(a.cols(), 97);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  aligned_vector<double> ys(n, 0.0);
  spmv(a, x.data(), ys.data());

  aligned_vector<double> yb(n, -1.0);
  ThreadedSpmv<Csr<double>>(a, threads).run(x.data(), yb.data());
  aligned_vector<double> yt(n, -1.0);
  TaskGraphSpmv<Csr<double>>(a, threads).run(x.data(), yt.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(yb[i], ys[i]) << context << " bulk row " << i;
    ASSERT_EQ(yt[i], ys[i]) << context << " tasks row " << i;
  }
}

TEST(PartitionEdges, EmptyPartitionsThroughBothBackends) {
  // 5 rows, most of them empty, 8 threads: nearly every part/task slice
  // is empty and both runners must treat them as no-ops.
  Coo<double> coo(5, 6);
  coo.add(2, 1, 3.0);
  coo.add(2, 5, -1.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  expect_both_backends_match_serial(a, 8, "mostly-empty 8 threads");
}

TEST(PartitionEdges, SingleUltraHeavyRowThroughBothBackends) {
  // One row carries ~all the weight: it cannot be split (a row is the
  // granule), so one part/task dominates and the rest idle or steal.
  Coo<double> coo(40, 200);
  for (index_t j = 0; j < 200; ++j) coo.add(7, j, 1.0 + j);
  for (index_t i = 0; i < 40; i += 5) coo.add(i, i, 2.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  for (int threads : {2, 4, 7})
    expect_both_backends_match_serial(
        a, threads, "heavy row, " + std::to_string(threads) + " threads");
}

TEST(PartitionEdges, MoreThreadsThanRowsThroughBothBackends) {
  Coo<double> coo(3, 10);
  coo.add(0, 0, 1.0);
  coo.add(1, 9, 2.0);
  coo.add(2, 4, 3.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  expect_both_backends_match_serial(a, 16, "3 rows 16 threads");
}

TEST(PartitionEdges, TaskDecompositionSkipsEmptySlices) {
  // The task backend over-decomposes into threads*8 slices; on a 5-row
  // matrix almost all are empty and must be dropped at build time, not
  // submitted as zero-width tasks.
  Coo<double> coo(5, 5);
  coo.add(0, 0, 1.0);
  coo.add(4, 4, 1.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const TaskGraphSpmv<Csr<double>> d(a, 4);
  EXPECT_LE(d.task_count(0), 5u);  // never more tasks than granules
  EXPECT_GE(d.task_count(0), 1u);
}

// ------------------------------- rank-level (shard plan) degenerates ----
//
// plan_shards reuses balanced_partition for its row cuts, so the same
// pathological shapes must also produce structurally valid *distributed*
// plans: monotone covering bounds, sorted disjoint halos, and send lists
// that exactly mirror the peers' halo segments — even when most shards
// are empty.

/// The structural contract of a shard plan, whatever the input shape:
/// bounds cover, nnz is conserved, halos are sorted / disjoint from the
/// owned x range and segmented consistently with x_bounds, and every
/// send list mirrors the destination's halo segment entry for entry.
void expect_valid_plan(const dist::ShardPlan& plan, const Csr<double>& a) {
  const int ranks = plan.ranks;
  ASSERT_EQ(plan.shards.size(), static_cast<std::size_t>(ranks));
  expect_valid_bounds(plan.row_bounds, ranks,
                      static_cast<std::size_t>(a.rows()));
  expect_valid_bounds(plan.x_bounds, ranks,
                      static_cast<std::size_t>(a.cols()));
  std::size_t nnz_sum = 0;
  for (int r = 0; r < ranks; ++r) {
    const dist::RankShard& sh = plan.shards[static_cast<std::size_t>(r)];
    EXPECT_EQ(sh.row_begin, plan.row_bounds[static_cast<std::size_t>(r)]);
    EXPECT_EQ(sh.row_end, plan.row_bounds[static_cast<std::size_t>(r) + 1]);
    EXPECT_EQ(sh.nnz, sh.local_nnz + sh.halo_nnz);
    nnz_sum += sh.nnz;
    ASSERT_EQ(sh.halo_seg.size(), static_cast<std::size_t>(ranks) + 1);
    EXPECT_EQ(sh.halo_seg.back(),
              static_cast<index_t>(sh.halo_cols.size()));
    for (std::size_t k = 0; k < sh.halo_cols.size(); ++k) {
      const index_t c = sh.halo_cols[k];
      EXPECT_TRUE(c < sh.x_begin || c >= sh.x_end)
          << "halo col " << c << " inside owned x of rank " << r;
      if (k) {
        EXPECT_LT(sh.halo_cols[k - 1], c) << "halo not sorted, rank " << r;
      }
    }
    // Mirror symmetry: what r expects from p is exactly what p ships to r.
    ASSERT_EQ(sh.send_cols.size(), static_cast<std::size_t>(ranks));
    for (int p = 0; p < ranks; ++p) {
      const dist::RankShard& peer = plan.shards[static_cast<std::size_t>(p)];
      const auto s0 =
          static_cast<std::size_t>(peer.halo_seg[static_cast<std::size_t>(r)]);
      const auto s1 = static_cast<std::size_t>(
          peer.halo_seg[static_cast<std::size_t>(r) + 1]);
      const std::vector<index_t>& send =
          sh.send_cols[static_cast<std::size_t>(p)];
      ASSERT_EQ(send.size(), s1 - s0)
          << "send list " << r << "->" << p << " size mismatch";
      for (std::size_t k = 0; k < send.size(); ++k)
        EXPECT_EQ(send[k] + sh.x_begin, peer.halo_cols[s0 + k]);
    }
  }
  EXPECT_EQ(nnz_sum, a.nnz());
}

TEST(PartitionEdges, ShardPlanMoreRanksThanRows) {
  // 3 rows over 8 ranks on a 3x12 rectangle: at least 5 shards own no
  // rows, yet each still owns an x-column slice — so a row-empty shard
  // reads no halo but may still have to *send* owned x to the shards
  // whose rows reference its columns.
  Coo<double> coo(3, 12);
  coo.add(0, 11, 1.0);
  coo.add(1, 0, 2.0);
  coo.add(2, 6, 3.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto plan = dist::plan_shards(a, 8);
  expect_valid_plan(plan, a);
  int with_rows = 0;
  std::size_t sent_by_row_empty = 0;
  for (const auto& sh : plan.shards) {
    with_rows += sh.rows() > 0 ? 1 : 0;
    if (sh.rows() == 0) {
      EXPECT_EQ(sh.nnz, 0u);
      EXPECT_EQ(sh.halo_count(), 0u) << "no rows, nothing to read";
      sent_by_row_empty += sh.send_count();
    }
    if (sh.x_end == sh.x_begin) {
      EXPECT_EQ(sh.send_count(), 0u) << "no owned x, nothing to ship";
    }
  }
  EXPECT_LE(with_rows, 3);
  EXPECT_GT(sent_by_row_empty, 0u)
      << "row 1 reads col 0, owned by a shard with no rows";
}

TEST(PartitionEdges, ShardPlanZeroNnzShards) {
  // All the weight in the first and last row: the nnz balancer collapses
  // the weightless middle rows into a neighbour, leaving some shards
  // with empty row (and, square matrix, empty x) ranges. Those must
  // carry zero traffic, while the two dense boundary rows — landing in
  // different shards — must exchange each other's owned x.
  Coo<double> coo(64, 64);
  for (index_t j = 0; j < 64; ++j) {
    coo.add(0, j, 1.0);
    coo.add(63, j, 2.0);
  }
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto plan = dist::plan_shards(a, 4);
  expect_valid_plan(plan, a);
  int empty = 0;
  for (const auto& sh : plan.shards) {
    if (sh.nnz == 0) {
      ++empty;
      EXPECT_EQ(sh.halo_count(), 0u) << "nnz-free shard reads no halo";
      EXPECT_EQ(sh.send_count(), 0u) << "owns no x anyone reads";
    } else {
      EXPECT_GT(sh.halo_count(), 0u) << "dense row spans the full x";
      EXPECT_GT(sh.send_count(), 0u) << "the other dense row reads back";
    }
  }
  EXPECT_GE(empty, 1) << "192 nnz in 2 rows cannot fill 4 shards";
}

TEST(PartitionEdges, ShardPlanSingleRowMatrix) {
  // One row, every rank but its owner empty; the full x range belongs
  // to the owner of the cuts, so halos depend only on the x bounds.
  Coo<double> coo(1, 20);
  for (index_t j = 0; j < 20; j += 3) coo.add(0, j, 1.0 + j);
  const Csr<double> a = Csr<double>::from_coo(coo);
  for (int ranks : {1, 2, 5}) {
    const auto plan = dist::plan_shards(a, ranks);
    expect_valid_plan(plan, a);
    std::size_t nnz = 0;
    for (const auto& sh : plan.shards) nnz += sh.nnz;
    EXPECT_EQ(nnz, a.nnz());
  }
}

TEST(PartitionEdges, ShardPlanEmptyHaloOnBlockDiagonal) {
  // Block-diagonal with blocks aligned to the shard cuts: every column
  // a shard touches is owned, so all halo sets and send lists are empty
  // and the plan's model costs carry zero wire traffic.
  Coo<double> coo(40, 40);
  for (index_t b = 0; b < 4; ++b)
    for (index_t i = 0; i < 10; ++i)
      for (index_t j = 0; j < 10; ++j)
        coo.add(b * 10 + i, b * 10 + j, 1.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto plan = dist::plan_shards(a, 4);
  expect_valid_plan(plan, a);
  for (const auto& sh : plan.shards) {
    EXPECT_EQ(sh.halo_count(), 0u);
    EXPECT_EQ(sh.send_count(), 0u);
    EXPECT_EQ(sh.peer_count(), 0);
    EXPECT_EQ(sh.halo_nnz, 0u);
  }
  for (const auto& c : plan.rank_costs(sizeof(double))) {
    EXPECT_EQ(c.bytes_sent + c.bytes_recv, 0u);
    EXPECT_EQ(c.msgs_sent + c.msgs_recv, 0);
  }
}

TEST(PartitionEdges, ShardPlanEmptyMatrix) {
  const Csr<double> a = Csr<double>::from_coo(Coo<double>(0, 0));
  const auto plan = dist::plan_shards(a, 3);
  expect_valid_plan(plan, a);
  for (const auto& sh : plan.shards) {
    EXPECT_EQ(sh.rows(), 0);
    EXPECT_EQ(sh.nnz, 0u);
  }
}

TEST(PartitionEdges, BalanceQualityOnUniformWeights) {
  // With equal weights and n divisible by parts, the greedy prefix cuts
  // should produce a near-perfect split (each part within one granule of
  // the ideal share).
  const std::vector<std::size_t> w(64, 3);
  const auto bounds = balanced_partition(w, 8);
  expect_valid_bounds(bounds, 8, w.size());
  const auto sums = part_weight_sums(w, bounds);
  for (std::size_t s : sums) {
    EXPECT_GE(s, 3u * 7u);
    EXPECT_LE(s, 3u * 9u);
  }
}

}  // namespace
