// Minimal self-contained JSON value type, parser and writer.
//
// Used to persist machine profiles (measured bandwidth, per-kernel block
// times and non-overlap factors) so expensive profiling runs once per
// machine. Supports the full JSON grammar except \u escapes beyond ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bspmv {

/// A JSON document node. Object keys are kept sorted (std::map) so dumps
/// are deterministic and diff-friendly.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(std::int64_t i) : v_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : v_(static_cast<double>(i)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw bspmv::parse_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object element access; creates members on mutable access.
  Json& operator[](const std::string& key);
  /// Const lookup; throws if missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serialise. `indent < 0` gives compact single-line output.
  std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; throws bspmv::parse_error.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace bspmv
