// RunReport — the auditable model-vs-measured record of one autotuning
// run, the machine-readable counterpart of the paper's evaluation:
//
//   - per candidate: predicted seconds under every model (MEM eq. 1,
//     MEMCOMP eq. 2, OVERLAP eq. 3, plus the MEMLAT extension) next to
//     the measured seconds — the Fig. 3 view;
//   - per model: the selected candidate, its measured distance from the
//     best measured candidate, and whether the selection was optimal —
//     the Table IV selection-accuracy view;
//   - per thread: kernel time and assigned stored values from the §V-A
//     nnz-balanced parallel drivers — the load-imbalance view;
//   - the phase spans and counters accumulated by the observability
//     hooks (src/observe/observe.hpp) during the run.
//
// Serialised as schema-versioned JSON (see docs/observability.md for the
// schema) and a flat CSV of the candidate table. Consumed by
// `mtx_tool report`, the bench harness's BENCH_report.json trajectory,
// and scripts/make_report.sh.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/executor.hpp"
#include "src/core/models.hpp"
#include "src/observe/registry.hpp"
#include "src/util/json.hpp"

namespace bspmv::observe {

/// One candidate's predicted-vs-measured record.
struct CandidateReport {
  std::string id;       ///< e.g. "bcsr_3x3_simd"
  std::string format;   ///< format_name(kind)
  std::string impl;     ///< "scalar" / "simd"
  std::size_t ws_bytes = 0;  ///< model working set (eq. 1 numerator)
  /// model name -> predicted seconds per SpMV.
  std::map<std::string, double> predicted_seconds;
  double measured_seconds = 0.0;  ///< valid only when `measured`
  bool measured = false;
  std::string skip_reason;  ///< why conversion/measurement was skipped
};

/// One model's selection, scored against the best measured candidate the
/// way Table IV scores "optimal predictions".
struct SelectionReport {
  std::string model;
  std::string selected_id;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;  ///< measured time of the selection
  std::string best_id;            ///< fastest measured candidate
  double best_seconds = 0.0;
  bool optimal = false;     ///< selection within noise of the best
  double off_best = 0.0;    ///< measured/best - 1
  double model_error = 0.0; ///< (predicted - measured)/measured
};

/// One OpenMP thread's accumulated kernel work (totals over all timed
/// run() calls; divide by `calls` for per-SpMV numbers).
struct ThreadSample {
  int tid = 0;
  double seconds = 0.0;
  std::uint64_t calls = 0;
  std::uint64_t items = 0;  ///< stored values incl. padding, per §V-A weights
};

/// One rank's phase timeline from a distributed run (src/dist/): where
/// its wall time went, per mode. The overlap story is read straight off
/// these numbers — wait_seconds shrinks when comm hides under the
/// local-columns pass.
struct DistRankSample {
  int rank = 0;
  std::int64_t rows = 0;
  std::uint64_t nnz = 0;
  std::uint64_t halo_cols = 0;  ///< halo values received per iteration
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double wait_seconds = 0.0;   ///< exchange time not hidden by compute
  double local_seconds = 0.0;
  double halo_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
};

/// One exchange mode's predicted-vs-measured record.
struct DistModeReport {
  std::string mode;  ///< "naive" / "overlap"
  double predicted_seconds = 0.0;  ///< predict_distributed, per iteration
  double measured_seconds = 0.0;   ///< wall per iteration, worst-rank view
  std::vector<DistRankSample> rank_samples;
};

/// One supervisor intervention from a supervised distributed run — the
/// JSON mirror of dist::RecoveryEvent (docs/distribution.md "Failure
/// modes and recovery").
struct DistRecoveryEventReport {
  std::uint32_t epoch = 0;
  int completed_iterations = 0;
  std::string cause;   ///< "rank_dead" / "rank_stalled" / "rank_error"
  std::vector<int> failed_ranks;
  std::string action;  ///< "respawn" / "retry" / "reshard" / "single_node"
  double seconds = 0.0;
  double backoff_ms = 0.0;
  int ranks_after = 0;
  std::string detail;
};

/// The distributed section: both modes measured over the same shard
/// plan, the t_comm-based model's choice, and whether it matched the
/// measured winner (the distributed analogue of Table IV). When the run
/// was supervised the section also carries the recovery outcome and the
/// per-event timeline — degradation is never silent.
struct DistReport {
  bool enabled = false;
  int ranks = 0;
  int iterations = 0;
  int threads_per_rank = 0;
  double comm_alpha_seconds = 0.0;
  double comm_beta_bps = 0.0;
  std::string predicted_mode;  ///< choose_dist_mode over the shard plan
  std::string measured_mode;   ///< faster measured mode
  bool model_match = false;
  std::vector<DistModeReport> modes;
  bool supervised = false;
  /// Worst dist_outcome_name over the measured runs: "clean" /
  /// "recovered" / "resharded" / "single_node".
  std::string outcome = "clean";
  int ranks_final = 0;  ///< mesh width at the end (shrinks on reshard)
  std::vector<DistRecoveryEventReport> recovery;
};

struct RunReport {
  /// Bump on any change to the JSON layout; validate_report_json and
  /// from_json reject mismatches (same policy as MachineProfile).
  /// v2 added the distributed section ("dist"); v3 its supervision
  /// fields (supervised/outcome/ranks_final/recovery).
  static constexpr int kSchemaVersion = 3;
  static constexpr const char* kKind = "bspmv_run_report";

  // Matrix identity and structure.
  std::string matrix_name;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::size_t nnz = 0;
  std::size_t csr_ws_bytes = 0;
  std::string precision;  ///< "sp" / "dp"

  // Machine provenance (enough to interpret the predictions).
  std::string machine_description;
  double bandwidth_bps = 0.0;

  // Observability configuration this report was produced under.
  bool hooks_enabled = kHooksEnabled;
  bool runtime_enabled = true;

  // The fault-tolerant selection outcome (select_and_prepare).
  std::string chosen_id;
  bool fallback = false;
  std::vector<std::pair<std::string, std::string>> prepare_failures;

  std::vector<CandidateReport> candidates;
  std::vector<SelectionReport> selections;

  int threads = 0;  ///< thread count of the parallel timing step
  std::vector<ThreadSample> thread_samples;

  DistReport dist;  ///< enabled only when ReportOptions::dist_ranks > 1

  std::map<std::string, SpanStat> phases;
  std::map<std::string, std::uint64_t> counters;

  Json to_json() const;
  /// Parse; throws bspmv::validation_error on schema/kind mismatch or a
  /// structurally broken document.
  static RunReport from_json(const Json& j);
  /// Flat candidate table: one row per candidate, one column per model.
  std::string to_csv() const;
};

/// Structural validation of a serialised report: kind, schema version,
/// required sections, per-candidate prediction completeness, and (when
/// the report says hooks were live) non-empty per-thread timing. Throws
/// bspmv::validation_error naming the broken invariant.
void validate_report_json(const Json& j);

struct ReportOptions {
  MeasureOptions measure;      ///< per-candidate timing knobs
  int threads = 0;             ///< 0 = omp_get_max_threads()
  bool measure_candidates = true;  ///< measure every candidate (Fig. 3 view)
  bool verbose = false;        ///< progress on stderr
  /// Execution backend of the multithreaded timing step. With kTasks the
  /// report's counters carry the scheduler telemetry (task.executed,
  /// task.stolen, task.steal_attempts, task.steal_ns,
  /// task.queue_depth_max) and thread_samples come from the
  /// "tasks/<fmt>" metric instead of "parallel/<fmt>".
  ExecBackend backend = ExecBackend::kBulk;
  /// Distributed section (double precision only): fork `dist_ranks`
  /// processes, measure both exchange modes over the same shard plan and
  /// score choose_dist_mode against the measured winner. 0/1 skips the
  /// section. Profiles comm α/β on the fly (quick) when the machine
  /// profile carries none.
  int dist_ranks = 0;
  int dist_iterations = 10;       ///< per measured mode
  int dist_threads_per_rank = 1;  ///< local-pass TaskPool workers
  /// Run the distributed section under rank supervision (recovery +
  /// degradation ladder); outcome and recovery timeline land in the
  /// report's dist section.
  bool dist_supervise = false;
  /// Chaos drill (requires dist_supervise): inject this many faults —
  /// alternating rank kills and stalls — before the first timed run.
  /// The soak harness drives this; the report records the recoveries.
  int dist_chaos = 0;
  /// Wire read timeout for the distributed section's channels.
  double dist_timeout_seconds = 30.0;
};

/// Build the full report for one matrix: predict every model candidate
/// under all four models, measure each one that converts, score every
/// model's selection against the measured best, run the chosen candidate
/// multithreaded for per-thread timing, and snapshot the observability
/// registry. Resets the global CounterRegistry first so the embedded
/// spans/counters describe this run only.
template <class V>
RunReport build_run_report(const Csr<V>& a, const std::string& name,
                           const MachineProfile& profile,
                           const ReportOptions& opt = {});

/// Append one JSON entry to a schema-versioned trajectory file
/// ({schema_version, kind: "bspmv_trajectory", entries: [...]}). A
/// missing file is created; a corrupt or version-mismatched one is
/// warned about and restarted (warn-and-regenerate, DESIGN.md §7).
void append_to_trajectory(const std::string& path, const Json& entry);

#define BSPMV_DECL(V)                                          \
  extern template RunReport build_run_report(                  \
      const Csr<V>&, const std::string&, const MachineProfile&, \
      const ReportOptions&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv::observe
