// Unit tests for the portable SIMD primitives and the shared block
// multiply-accumulate bodies.
#include <gtest/gtest.h>

#include "src/kernels/block_madd.hpp"
#include "src/kernels/simd.hpp"

namespace bspmv {
namespace {

TEST(Simd, WidthsMatchSse2) {
  EXPECT_EQ(simd_width<double>, 2);
  EXPECT_EQ(simd_width<float>, 4);
  EXPECT_EQ(sizeof(simd_t<double>), 16u);
  EXPECT_EQ(sizeof(simd_t<float>), 16u);
}

TEST(Simd, LoadStoreRoundTripUnaligned) {
  alignas(64) double buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  // Deliberately misaligned base (+1 element = 8 bytes off 16).
  const simd_t<double> v = simd_loadu(buf + 1);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  double out[3] = {};
  simd_storeu(out + 1, v);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Simd, BroadcastZeroHsum) {
  const simd_t<float> b = simd_broadcast(2.5f);
  for (int i = 0; i < simd_width<float>; ++i) EXPECT_FLOAT_EQ(b[i], 2.5f);
  EXPECT_FLOAT_EQ(simd_hsum<float>(b), 10.0f);
  EXPECT_DOUBLE_EQ(simd_hsum<double>(simd_zero<double>()), 0.0);
}

template <class V, int R, int C>
void check_block_madd() {
  V bv[R * C];
  V xp[C];
  for (int i = 0; i < R * C; ++i) bv[i] = static_cast<V>(i + 1);
  for (int c = 0; c < C; ++c) xp[c] = static_cast<V>(2 * c + 1);

  V want[R];
  for (int r = 0; r < R; ++r) {
    want[r] = V{0};
    for (int c = 0; c < C; ++c) want[r] += bv[r * C + c] * xp[c];
  }

  V got_scalar[R] = {};
  detail::block_madd_scalar<V, R, C>(bv, xp, got_scalar);
  V got_simd[R] = {};
  detail::block_madd_simd<V, R, C>(bv, xp, got_simd);
  for (int r = 0; r < R; ++r) {
    EXPECT_NEAR(static_cast<double>(got_scalar[r]),
                static_cast<double>(want[r]), 1e-5);
    EXPECT_NEAR(static_cast<double>(got_simd[r]),
                static_cast<double>(want[r]), 1e-5);
  }
}

TEST(BlockMadd, AllPaperShapesBothTypes) {
  // Covers all three SIMD strategies: C%w==0, C==1&&R%w==0, fallback.
  check_block_madd<double, 1, 2>();
  check_block_madd<double, 1, 8>();
  check_block_madd<double, 2, 4>();
  check_block_madd<double, 2, 1>();
  check_block_madd<double, 8, 1>();
  check_block_madd<double, 3, 2>();
  check_block_madd<double, 1, 3>();  // odd width fallback
  check_block_madd<float, 1, 4>();
  check_block_madd<float, 2, 4>();
  check_block_madd<float, 4, 1>();
  check_block_madd<float, 8, 1>();
  check_block_madd<float, 1, 7>();
  check_block_madd<float, 3, 2>();
}

TEST(BlockMadd, AccumulatesIntoExistingSum) {
  double bv[2] = {3.0, 4.0};
  double xp[1] = {10.0};
  double sum[2] = {100.0, 200.0};
  detail::block_madd_simd<double, 2, 1>(bv, xp, sum);
  EXPECT_DOUBLE_EQ(sum[0], 130.0);
  EXPECT_DOUBLE_EQ(sum[1], 240.0);
}

}  // namespace
}  // namespace bspmv
