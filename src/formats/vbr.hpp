// Variable Block Row (Saad, SPARSKIT [13]) — §II-B, built as an extension.
//
// VBR partitions the matrix both horizontally and vertically so that every
// stored block contains only nonzero elements: consecutive rows with an
// identical column support form a block row, and the column partition is
// the common refinement of every block row's run boundaries. Compared to
// CSR it carries two extra indexing structures (the row/column partition
// vectors), which is exactly the cost the paper attributes to it.
//
// Arrays: `rpntr` (row-partition starts, nbr+1), `cpntr` (column-partition
// starts, nbc+1), `brow_ptr` (first block of each block row, nbr+1),
// `bindx` (block-column index per block), `bval_ptr` (offset of each
// block's values in `val`, nblocks+1), `val` (dense row-major block
// values — all nonzero by construction).
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/formats/csr.hpp"

namespace bspmv {

template <class V>
class Vbr {
 public:
  Vbr() = default;

  static Vbr from_csr(const Csr<V>& a);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }
  std::size_t blocks() const { return bindx_.size(); }
  index_t block_rows() const {
    return static_cast<index_t>(rpntr_.size()) - 1;
  }
  index_t block_cols() const {
    return static_cast<index_t>(cpntr_.size()) - 1;
  }

  const aligned_vector<index_t>& rpntr() const { return rpntr_; }
  const aligned_vector<index_t>& cpntr() const { return cpntr_; }
  const aligned_vector<index_t>& brow_ptr() const { return brow_ptr_; }
  const aligned_vector<index_t>& bindx() const { return bindx_; }
  const aligned_vector<index_t>& bval_ptr() const { return bval_ptr_; }
  const aligned_vector<V>& val() const { return val_; }

  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<index_t> rpntr_;
  aligned_vector<index_t> cpntr_;
  aligned_vector<index_t> brow_ptr_;
  aligned_vector<index_t> bindx_;
  aligned_vector<index_t> bval_ptr_;
  aligned_vector<V> val_;
};

extern template class Vbr<float>;
extern template class Vbr<double>;

}  // namespace bspmv
