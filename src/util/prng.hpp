// Deterministic pseudo-random number generation for matrix synthesis.
//
// xoshiro256** seeded through splitmix64: fast, high quality, and — unlike
// std::mt19937 — guaranteed to produce identical streams on every platform,
// which keeps the synthetic matrix suite bit-reproducible.
#pragma once

#include <cstdint>

namespace bspmv {

/// splitmix64 — used only to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed1234abcd9876ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Unbiased enough for matrix synthesis
  /// (bound << 2^64); uses the widening-multiply trick.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace bspmv
