// Compressed Sparse Row — the paper's baseline format (Barrett et al. [2]).
//
// Arrays exactly as described in §II: `val` (nnz values), `col_ind`
// (nnz 4-byte column indices), `row_ptr` (n+1 pointers into val).
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/formats/coo.hpp"

namespace bspmv {

template <class V>
class Csr {
 public:
  Csr() = default;

  /// Build from a COO matrix (sorted + combined internally; the input is
  /// taken by value so callers keep their copy only if they want it).
  static Csr from_coo(Coo<V> coo);

  /// Build directly from raw arrays (validated).
  Csr(index_t rows, index_t cols, aligned_vector<index_t> row_ptr,
      aligned_vector<index_t> col_ind, aligned_vector<V> val);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<index_t>& col_ind() const { return col_ind_; }
  const aligned_vector<V>& val() const { return val_; }

  /// Mutable access for in-place experiments (e.g. the zeroed-col_ind
  /// latency diagnosis benchmark of §V-B).
  aligned_vector<index_t>& mutable_col_ind() { return col_ind_; }

  index_t row_nnz(index_t row) const {
    return row_ptr_[static_cast<std::size_t>(row) + 1] -
           row_ptr_[static_cast<std::size_t>(row)];
  }

  /// Working set in bytes as accounted by the paper's models:
  /// matrix arrays + input + output vector.
  std::size_t working_set_bytes() const;

  /// Round-trip back to COO (used by format converters and tests).
  Coo<V> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<index_t> row_ptr_;
  aligned_vector<index_t> col_ind_;
  aligned_vector<V> val_;
};

extern template class Csr<float>;
extern template class Csr<double>;

}  // namespace bspmv
