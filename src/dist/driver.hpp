// DistSpmv — the multi-process distributed SpMV driver.
//
// Construction builds the nnz-balanced shard plan, wires a socketpair
// mesh (one control channel per rank, one data channel per rank pair),
// forks one rank process per shard and ships each its kShard message.
// run() then scatters x, triggers `iterations` halo-exchange + SpMV
// rounds inside the ranks (overlap or naive, switchable per run without
// re-sharding), and gathers the y slices plus per-rank phase timings.
//
// Without supervision, failure surfaces through the typed taxonomy: a
// rank that dies mid-run is an io_error, a stalled one a timeout_error
// (wire read timeout), and a rank-reported failure rethrows via
// throw_wire_error — the same contract the serving client keeps.
//
// With SuperviseOptions::enabled the driver instead *survives* rank
// failure (docs/distribution.md "Failure modes and recovery"):
//
//   - run() executes in rounds of the checkpoint interval; after each
//     round every rank has replied, so recovery always starts from a
//     quiesced mesh.
//   - A failed round is classified per rank via waitpid (dead) or a
//     missed reply deadline (stalled — the rank is SIGKILLed into the
//     dead set). Recovery respawns the dead ranks on fresh socketpairs,
//     re-ships their shards (the ShardPlan is deterministic — no
//     re-plan), rewires every survivor through kPeerUpdate + SCM_RIGHTS,
//     drains stale pre-recovery frames, bumps the epoch and retries
//     after an exponential backoff.
//   - The iteration is an idempotent recompute of y from the constant x,
//     so a retried round reproduces the fault-free result *bitwise*; an
//     optional on-disk checkpoint (x + completed count, CRC-trailed
//     atomic file) lets a brand-new driver resume the count.
//   - After max_respawns consecutive failed recoveries the driver walks
//     a degradation ladder mirroring the serve layer: re-shard over the
//     surviving ranks, then fall back to a single-node SpmvEngine. The
//     outcome is never silent: recovery_log()/outcome() feed the
//     RunReport "dist" section and mtx_tool's report.
//
// The destructor shuts the ranks down gracefully, escalating to
// SIGKILL, and always reaps.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/models.hpp"
#include "src/dist/messages.hpp"
#include "src/dist/shard_plan.hpp"
#include "src/formats/csr.hpp"
#include "src/kernels/impl.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/run_control.hpp"

namespace bspmv::dist {

/// Rank-supervision policy. Defaults keep supervision OFF: the library's
/// fail-fast typed-error contract is unchanged unless a caller opts in.
struct SuperviseOptions {
  bool enabled = false;
  /// Consecutive failed recoveries tolerated before the degradation
  /// ladder engages (each successful round resets the count).
  int max_respawns = 2;
  /// Iterations per round (= checkpoint cadence). 0 picks a default of
  /// ~4 rounds per run; mtx_tool feeds the Young/Daly model choice
  /// (dist_checkpoint_interval) here.
  int checkpoint_interval = 0;
  /// On-disk resume point, written through atomic_write_file with a CRC
  /// trailer after every completed round. Empty = in-memory only.
  std::string checkpoint_path;
  double backoff_initial_ms = 10.0;
  double backoff_max_ms = 1000.0;
  /// Degradation ladder rungs (in order). Disabling both turns rung
  /// exhaustion into a typed rethrow of the last failure.
  bool allow_reshard = true;
  bool allow_single_node = true;
  /// Heartbeat cadence inside rounds (kProgress every N iterations;
  /// 0 = off). Lets wire timeouts stay short when rounds run long.
  std::uint32_t progress_every = 0;
};

struct DistOptions {
  int ranks = 2;
  DistMode mode = DistMode::kOverlap;
  /// TaskPool workers for each rank's local-columns pass (the existing
  /// task-graph executor, constructed fresh inside the child). 0 runs
  /// the local pass serially.
  int threads_per_rank = 1;
  Impl impl = Impl::kScalar;
  /// Wire read timeout on every channel (driver and ranks).
  double timeout_seconds = 30.0;
  SuperviseOptions supervise;
};

/// How a supervised run() ended, worst rung reached.
enum class DistOutcome {
  kClean,       ///< no failures
  kRecovered,   ///< failures healed by respawn/retry; full rank count
  kResharded,   ///< re-sharded over the survivors
  kSingleNode,  ///< fell back to a single-node SpmvEngine
};

const char* dist_outcome_name(DistOutcome o);

/// One supervisor intervention, in run() order — the RunReport recovery
/// timeline entry.
struct RecoveryEvent {
  std::uint32_t epoch = 0;          ///< epoch of the failed round
  int completed_iterations = 0;     ///< progress when the failure hit
  std::string cause;                ///< "rank_dead" / "rank_stalled" / "rank_error"
  std::vector<int> failed_ranks;    ///< dead or killed-as-stalled ranks
  std::string action;  ///< "respawn" / "retry" / "reshard" / "single_node" / "abort"
  double seconds = 0.0;             ///< wall time of the intervention
  double backoff_ms = 0.0;          ///< backoff slept before it
  int ranks_after = 0;              ///< mesh width after the action
  std::string detail;               ///< first error message observed
};

class DistSpmv {
 public:
  DistSpmv(const Csr<double>& a, const DistOptions& opt);
  ~DistSpmv();
  DistSpmv(const DistSpmv&) = delete;
  DistSpmv& operator=(const DistSpmv&) = delete;

  const ShardPlan& plan() const { return plan_; }
  DistMode mode() const { return opt_.mode; }
  /// Exchange strategy of subsequent run() calls; the shards are mode-
  /// agnostic, so switching never re-forks or re-ships anything.
  void set_mode(DistMode m) { opt_.mode = m; }

  /// Current mesh width (shrinks only when recovery re-shards).
  int ranks() const { return opt_.ranks; }

  /// Optional run-level control: between rounds the supervisor polls its
  /// deadline/cancel state, and the per-frame wire timeout is clamped to
  /// the remaining budget — a run deadline bounds wire waits too. The
  /// control must outlive subsequent run() calls; nullptr detaches.
  void set_control(RunControl* control) { control_ = control; }

  /// y = A·x, executed `iterations` times back to back inside the ranks
  /// with a fresh halo exchange each round (the iterative-solver traffic
  /// pattern the models assume); y holds the final iteration's result.
  void run(const double* x, double* y, int iterations = 1);

  /// Per-rank phase timings of the last run() (send/recv/wait/local/halo
  /// seconds, bytes and frames), accumulated over its rounds — the
  /// RunReport timeline source.
  const std::vector<RankStats>& last_stats() const { return stats_; }

  /// Supervision outcome of the last run() (kClean when supervision is
  /// off or nothing failed) and its intervention timeline.
  DistOutcome outcome() const { return outcome_; }
  const std::vector<RecoveryEvent>& recovery_log() const { return log_; }
  /// Iterations skipped because an on-disk checkpoint vouched for them.
  int resumed_iterations() const { return resumed_; }

  /// Model inputs for predict_distributed / choose_dist_mode.
  std::vector<DistRankCost> rank_costs() const {
    return plan_.rank_costs(sizeof(double));
  }

  /// Fault-injection hook (tests): SIGKILL rank `r`. The next run()
  /// surfaces the death as a typed error (unsupervised) or recovers it.
  void kill_rank(int r);

  /// Fault-injection hook (tests / chaos soak): arm `f` inside rank `r`.
  /// With `persistent`, the fault is re-armed after every respawn of `r`
  /// — the way the degradation tests force K consecutive failures.
  void inject_fault(int r, const FaultMsg& f, bool persistent = false);

 private:
  struct RoundResult {
    bool ok = true;
    std::vector<int> failed;     ///< ranks now dead (incl. killed stalls)
    std::string cause;           ///< worst classification of the round
    std::string message;         ///< first error observed
    std::exception_ptr error;    ///< for the unsupervised rethrow path
    std::uint64_t bytes = 0;     ///< halo bytes this round (counters)
    std::uint64_t msgs = 0;      ///< halo frames this round (counters)
  };

  void spawn(const Csr<double>& a);
  void ship_shard(const Csr<double>& a, int r);
  void expect_ok(int r, serve::MsgType want, const serve::WireLimits& lim);
  bool child_exited(int r);
  void force_down(int r) noexcept;
  int live_ranks() const;
  RoundResult run_round(const double* x, double* y, int step, int first,
                        const serve::WireLimits& lim);
  void run_supervised(const double* x, double* y, int iterations);
  void run_unsupervised(const double* x, double* y, int iterations);
  void recover(const std::vector<int>& failed);
  void respawn_ranks(const std::vector<int>& dead);
  void reshard(int new_ranks);
  void run_single_node(const double* x, double* y);
  serve::WireLimits round_limits() const;
  void shutdown() noexcept;

  DistOptions opt_;
  ShardPlan plan_;
  serve::WireLimits limits_;
  std::vector<pid_t> pids_;
  std::vector<int> ctrl_fds_;  ///< driver-side control channel ends
  std::vector<RankStats> stats_;

  // Supervision state. The matrix is retained only when supervision is
  // on: respawn re-ships shards and the ladder re-shards / runs single-
  // node from it.
  Csr<double> matrix_;
  RunControl* control_ = nullptr;
  std::uint32_t epoch_ = 0;
  DistOutcome outcome_ = DistOutcome::kClean;
  std::vector<RecoveryEvent> log_;
  int resumed_ = 0;
  std::vector<FaultMsg> persistent_faults_;  ///< by rank; kNone = unset
};

}  // namespace bspmv::dist
