#include "src/profile/machine_profile.hpp"

#include <cstdio>

#include "src/util/atomic_file.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

void MachineProfile::set_kernel(Precision p, const std::string& kernel_id,
                                KernelProfile kp) {
  (p == Precision::kSingle ? kernels_sp_ : kernels_dp_)[kernel_id] = kp;
}

const KernelProfile& MachineProfile::kernel(Precision p,
                                            const std::string& kernel_id) const {
  const auto& m = p == Precision::kSingle ? kernels_sp_ : kernels_dp_;
  auto it = m.find(kernel_id);
  BSPMV_CHECK_MSG(it != m.end(), "kernel '" + kernel_id + "' (" +
                                     precision_name(p) +
                                     ") missing from machine profile");
  return it->second;
}

bool MachineProfile::has_kernel(Precision p,
                                const std::string& kernel_id) const {
  const auto& m = p == Precision::kSingle ? kernels_sp_ : kernels_dp_;
  return m.count(kernel_id) != 0;
}

namespace {

Json kernels_to_json(const std::map<std::string, KernelProfile>& m) {
  Json::Object o;
  for (const auto& [id, kp] : m) {
    Json::Object e;
    e["tb"] = kp.tb;
    e["nof"] = kp.nof;
    o[id] = Json(std::move(e));
  }
  return Json(std::move(o));
}

std::map<std::string, KernelProfile> kernels_from_json(const Json& j) {
  std::map<std::string, KernelProfile> m;
  for (const auto& [id, e] : j.as_object())
    m[id] = KernelProfile{e.at("tb").as_number(), e.at("nof").as_number()};
  return m;
}

}  // namespace

Json MachineProfile::to_json() const {
  Json j;
  j["schema_version"] = kSchemaVersion;
  j["bandwidth_bps"] = bandwidth_bps;
  j["read_bandwidth_bps"] = read_bandwidth_bps;
  j["latency_seconds"] = latency_seconds;
  j["effective_llc_bytes"] = effective_llc_bytes;
  j["private_cache_bytes"] = private_cache_bytes;
  j["comm_alpha_seconds"] = comm_alpha_seconds;
  j["comm_beta_bps"] = comm_beta_bps;
  j["description"] = description;
  j["kernels_sp"] = kernels_to_json(kernels_sp_);
  j["kernels_dp"] = kernels_to_json(kernels_dp_);
  return j;
}

MachineProfile MachineProfile::from_json(const Json& j) {
  const int version =
      j.contains("schema_version")
          ? static_cast<int>(j.at("schema_version").as_number())
          : 1;
  if (version != kSchemaVersion)
    throw validation_error(
        "machine profile schema version " + std::to_string(version) +
        " does not match expected " + std::to_string(kSchemaVersion) +
        "; re-profiling required");
  MachineProfile p;
  p.bandwidth_bps = j.at("bandwidth_bps").as_number();
  p.read_bandwidth_bps = j.at("read_bandwidth_bps").as_number();
  p.latency_seconds = j.at("latency_seconds").as_number();
  if (j.contains("effective_llc_bytes"))
    p.effective_llc_bytes = j.at("effective_llc_bytes").as_number();
  if (j.contains("private_cache_bytes"))
    p.private_cache_bytes = j.at("private_cache_bytes").as_number();
  if (j.contains("comm_alpha_seconds"))
    p.comm_alpha_seconds = j.at("comm_alpha_seconds").as_number();
  if (j.contains("comm_beta_bps"))
    p.comm_beta_bps = j.at("comm_beta_bps").as_number();
  p.description = j.at("description").as_string();
  p.kernels_sp_ = kernels_from_json(j.at("kernels_sp"));
  p.kernels_dp_ = kernels_from_json(j.at("kernels_dp"));
  return p;
}

void MachineProfile::save(const std::string& path) const {
  // Crash-safe: temp file + fsync + rename, with a trailing checksum so
  // a torn or bit-flipped profile is detected at load time instead of
  // silently mis-modelling the machine.
  atomic_write_file(path, to_json().dump(2) + '\n', /*with_checksum=*/true);
}

MachineProfile MachineProfile::load(const std::string& path) {
  return from_json(Json::parse(read_file_checked(path)));
}

std::optional<MachineProfile> MachineProfile::try_load(
    const std::string& path) {
  std::optional<std::string> text;
  try {
    text = read_file_if_exists(path);  // verifies the checksum trailer
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "warning: ignoring machine profile %s (%s); re-profiling\n",
                 path.c_str(), e.what());
    return std::nullopt;
  }
  if (!text) return std::nullopt;  // absence is normal, not corruption
  try {
    return from_json(Json::parse(*text));
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "warning: ignoring machine profile %s (%s); re-profiling\n",
                 path.c_str(), e.what());
    return std::nullopt;
  }
}

}  // namespace bspmv
