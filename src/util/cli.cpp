#include "src/util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/macros.hpp"

namespace bspmv {

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  BSPMV_CHECK_MSG(!opts_.count(name), "duplicate option --" + name);
  opts_[name] = Opt{default_value, help, /*is_flag=*/false, false};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  BSPMV_CHECK_MSG(!opts_.count(name), "duplicate flag --" + name);
  opts_[name] = Opt{"", help, /*is_flag=*/true, false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(name);
    if (it == opts_.end()) {
      std::ostringstream os;
      os << "unknown option --" << name << "; valid options:";
      for (const auto& o : order_) os << " --" << o;
      throw invalid_argument_error(os.str());
    }
    Opt& opt = it->second;
    if (opt.is_flag) {
      BSPMV_CHECK_MSG(!has_value, "flag --" + name + " takes no value");
      opt.flag_set = true;
    } else {
      if (!has_value) {
        BSPMV_CHECK_MSG(i + 1 < argc, "option --" + name + " needs a value");
        value = argv[++i];
      }
      opt.value = std::move(value);
    }
  }
  return true;
}

const std::string& CliParser::get(const std::string& name) const {
  auto it = opts_.find(name);
  BSPMV_CHECK_MSG(it != opts_.end() && !it->second.is_flag,
                  "undeclared option --" + name);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  BSPMV_CHECK_MSG(end && *end == '\0' && !v.empty(),
                  "--" + name + " expects an integer, got '" + v + '\'');
  return x;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  BSPMV_CHECK_MSG(end && *end == '\0' && !v.empty(),
                  "--" + name + " expects a number, got '" + v + '\'');
  return x;
}

bool CliParser::get_flag(const std::string& name) const {
  auto it = opts_.find(name);
  BSPMV_CHECK_MSG(it != opts_.end() && it->second.is_flag,
                  "undeclared flag --" + name);
  return it->second.flag_set;
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [options]\n";
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value> (default: " << o.value << ")";
    os << "\n      " << o.help << "\n";
  }
  return os.str();
}

}  // namespace bspmv
