// Conjugate Gradient solver on an autotuned blocked matrix — the workload
// the paper's introduction motivates: SpMV dominating an iterative
// solver's runtime. Builds an SPD 2-D Poisson system, lets the OVERLAP
// model pick the storage format, and compares CG wall time against plain
// CSR.
//
//   $ ./autotune_cg [--grid 400] [--tol 1e-8]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "src/core/executor.hpp"
#include "src/core/selector.hpp"
#include "src/kernels/spmv.hpp"
#include "src/profile/block_profiler.hpp"
#include "src/util/cli.hpp"
#include "src/util/timing.hpp"

using namespace bspmv;

namespace {

// SPD 2-D 5-point Poisson operator (diagonal 4, neighbours -1) with 2x2
// dof blocks injected so blocking has something to find.
Csr<double> poisson2d_blocked(index_t g) {
  const index_t n = g * g * 2;  // 2 dof per grid point
  Coo<double> coo(n, n);
  auto idx = [g](index_t x, index_t y, int d) {
    return (y * g + x) * 2 + d;
  };
  for (index_t y = 0; y < g; ++y) {
    for (index_t x = 0; x < g; ++x) {
      for (int d = 0; d < 2; ++d) {
        const index_t i = idx(x, y, d);
        coo.add(i, i, 8.0);
        coo.add(i, idx(x, y, 1 - d), 1.0);  // dof coupling -> dense 2x2
        if (x > 0) coo.add(i, idx(x - 1, y, d), -1.0);
        if (x + 1 < g) coo.add(i, idx(x + 1, y, d), -1.0);
        if (y > 0) coo.add(i, idx(x, y - 1, d), -1.0);
        if (y + 1 < g) coo.add(i, idx(x, y + 1, d), -1.0);
      }
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

struct CgResult {
  int iterations = 0;
  double residual = 0.0;
  double seconds = 0.0;
};

// Plain CG; the matrix is abstracted behind a y = A·x functor.
template <class SpmvFn>
CgResult conjugate_gradient(index_t n, SpmvFn&& apply, const double* b,
                            double* x, double tol, int max_iters) {
  aligned_vector<double> r(static_cast<std::size_t>(n));
  aligned_vector<double> p(static_cast<std::size_t>(n));
  aligned_vector<double> ap(static_cast<std::size_t>(n));
  std::fill(x, x + n, 0.0);
  std::copy(b, b + n, r.begin());  // r = b - A*0
  std::copy(r.begin(), r.end(), p.begin());

  auto dot = [n](const double* u, const double* v) {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) s += u[i] * v[i];
    return s;
  };

  double rr = dot(r.data(), r.data());
  const double stop = tol * tol * rr;
  CgResult res;
  Timer timer;
  for (res.iterations = 0; res.iterations < max_iters; ++res.iterations) {
    if (rr <= stop) break;
    apply(p.data(), ap.data());
    const double alpha = rr / dot(p.data(), ap.data());
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[static_cast<std::size_t>(i)] -= alpha * ap[static_cast<std::size_t>(i)];
    }
    const double rr_new = dot(r.data(), r.data());
    const double beta = rr_new / rr;
    rr = rr_new;
    for (index_t i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
  }
  res.seconds = timer.elapsed();
  res.residual = std::sqrt(rr);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("grid", "300", "grid dimension g (matrix is 2g^2 x 2g^2)");
  cli.add_option("tol", "1e-8", "relative residual tolerance");
  cli.add_option("max-iters", "2000", "CG iteration cap");
  cli.add_option("profile", "machine_profile.json", "machine profile path");
  if (!cli.parse(argc, argv)) return 0;

  const auto g = static_cast<index_t>(cli.get_int("grid"));
  const double tol = cli.get_double("tol");
  const int max_iters = static_cast<int>(cli.get_int("max-iters"));

  std::printf("building 2-D Poisson system, grid %dx%d (n = %d)...\n", g, g,
              2 * g * g);
  const Csr<double> a = poisson2d_blocked(g);
  std::printf("nnz = %zu, CSR ws = %.1f MiB\n", a.nnz(),
              static_cast<double>(a.working_set_bytes()) / (1 << 20));

  ProfileOptions popt;
  popt.quick = true;
  const MachineProfile profile =
      load_or_profile(cli.get("profile"), popt);

  const RankedCandidate best =
      select_best(ModelKind::kOverlap, a, profile);
  std::printf("OVERLAP model selection: %s\n", best.candidate.id().c_str());
  const AnyFormat<double> tuned = AnyFormat<double>::convert(a, best.candidate);

  aligned_vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
  aligned_vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);

  const CgResult plain = conjugate_gradient(
      a.rows(), [&](const double* in, double* out) { spmv(a, in, out); },
      b.data(), x.data(), tol, max_iters);
  std::printf("CSR       : %4d iters, residual %.2e, %7.2f ms\n",
              plain.iterations, plain.residual, plain.seconds * 1e3);

  const CgResult fast = conjugate_gradient(
      a.rows(),
      [&](const double* in, double* out) { tuned.run(in, out); }, b.data(),
      x.data(), tol, max_iters);
  std::printf("%-10s: %4d iters, residual %.2e, %7.2f ms (%.2fx)\n",
              best.candidate.id().c_str(), fast.iterations, fast.residual,
              fast.seconds * 1e3, plain.seconds / fast.seconds);

  // Same answer either way (CG is deterministic given the operator).
  std::printf("solution checksum: %.6f\n",
              std::accumulate(x.begin(), x.end(), 0.0) /
                  static_cast<double>(a.rows()));
  return 0;
}
