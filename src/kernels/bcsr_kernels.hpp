// Block-specific BCSR multiplication kernels — §V: "we have implemented a
// block-specific multiplication routine for each particular block", plus
// vectorised versions.
//
// One fully-unrolled kernel exists per (r×c shape, scalar/SIMD, value
// type); selection goes through a compile-time-built dispatch table, so
// the inner loops contain no branches on the shape.
#pragma once

#include "src/formats/bcsr.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

/// A BCSR kernel accumulates y[rows of br0..br1) += A·x over a block-row
/// range (partial tail block rows are handled internally).
template <class V>
using BcsrKernelFn = void (*)(const Bcsr<V>&, index_t br0, index_t br1,
                              const V* x, V* y);

/// Look up the specialised kernel for a shape (r·c <= 8).
/// Throws invalid_argument_error for unsupported shapes.
template <class V>
BcsrKernelFn<V> bcsr_kernel(BlockShape shape, bool simd);

extern template BcsrKernelFn<float> bcsr_kernel<float>(BlockShape, bool);
extern template BcsrKernelFn<double> bcsr_kernel<double>(BlockShape, bool);

}  // namespace bspmv
