// HaloDec — the column-split decomposed format of one distributed shard.
//
// A rank's shard is stored as two CSR submatrices over the same rows:
//
//   local : the columns the rank owns (rebased to [0, x_width)),
//   halo  : every other column, renumbered into the compact halo index
//           space (position in the shard plan's sorted halo_cols).
//
// An SpMV over the shard reads x laid out [owned slice | halo values] —
// exactly the buffer the halo exchange fills — and runs the local pass
// first (zero-filling y), then accumulates the halo pass. That is the
// same two-pass decomposed-format protocol BcsrDec/BcsdDec use, so
// HaloDec plugs into the generic spmv()/ThreadedSpmv/TaskGraphSpmv
// drivers through a FormatOps specialisation alone; the distributed
// rank runtime (src/dist/rank.*) drives the two passes itself so the
// local pass can run while halo bytes are still in flight.
//
// Like the out-of-tree toy format (tests/test_toy_format.cpp), HaloDec
// never joins AnyFormat's registry, so kKind reuses FormatKind::kCsr.
#pragma once

#include <vector>

#include "src/formats/csr.hpp"
#include "src/formats/format_ops.hpp"
#include "src/formats/validate.hpp"

namespace bspmv::dist {

template <class V>
class HaloDec {
 public:
  HaloDec() = default;

  /// Column-split rows [row_begin, row_end) of `a` against the owned
  /// x range [x_begin, x_end). halo_cols ends up sorted ascending (the
  /// compact halo index space the shard plan's segments address).
  static HaloDec split(const Csr<V>& a, index_t row_begin, index_t row_end,
                       index_t x_begin, index_t x_end);

  /// Assemble from pre-built parts (the wire-decode path). Validated:
  /// both parts must agree on rows and halo_cols must match halo.cols().
  HaloDec(Csr<V> local, Csr<V> halo, std::vector<index_t> halo_cols);

  index_t rows() const { return local_.rows(); }
  /// Logical input width: owned slice + halo values, concatenated.
  index_t cols() const { return local_.cols() + halo_.cols(); }
  std::size_t nnz() const { return local_.nnz() + halo_.nnz(); }

  index_t local_cols() const { return local_.cols(); }
  index_t halo_count() const { return halo_.cols(); }

  const Csr<V>& local() const { return local_; }
  const Csr<V>& halo() const { return halo_; }
  /// Global column ids of the halo entries (sorted; empty when built
  /// whole-local by FormatOps::convert).
  const std::vector<index_t>& halo_cols() const { return halo_cols_; }

  std::size_t working_set_bytes() const {
    return local_.working_set_bytes() + halo_.working_set_bytes();
  }

 private:
  Csr<V> local_;
  Csr<V> halo_;
  std::vector<index_t> halo_cols_;
};

extern template class HaloDec<float>;
extern template class HaloDec<double>;

}  // namespace bspmv::dist

namespace bspmv {

template <class V>
struct FormatOps<dist::HaloDec<V>> {
  using value_type = V;
  /// Reuses kCsr: HaloDec is not in BuiltinFormats, so the kind is never
  /// used for registry dispatch (same convention as the toy format).
  static constexpr FormatKind kKind = FormatKind::kCsr;
  static constexpr const char* kName = "halo_dec";
  static constexpr bool kParallel = true;
  /// Pass 0 is the local-columns submatrix (zeroes y), pass 1 the
  /// halo-columns accumulation — the BcsrDec blocked/remainder pattern.
  static constexpr int kPasses = 2;

  static dist::HaloDec<V> convert(const Csr<V>& a, const Candidate&) {
    // Single-process view: everything is local, the halo is empty.
    return dist::HaloDec<V>::split(a, 0, a.rows(), 0, a.cols());
  }
  static void validate(const dist::HaloDec<V>& m) {
    bspmv::validate(m.local());
    bspmv::validate(m.halo());
    BSPMV_CHECK_MSG(m.local().rows() == m.halo().rows(),
                    "halo_dec parts disagree on rows");
  }
  static std::size_t working_set_bytes(const dist::HaloDec<V>& m) {
    return m.working_set_bytes();
  }
  static void spmv_add(const dist::HaloDec<V>& a, const V* x, V* y,
                       Impl impl) {
    FormatOps<Csr<V>>::spmv_add(a.local(), x, y, impl);
    FormatOps<Csr<V>>::spmv_add(a.halo(), x + a.local_cols(), y, impl);
  }

  static std::vector<std::size_t> pass_weights(const dist::HaloDec<V>& a,
                                               int pass) {
    return FormatOps<Csr<V>>::pass_weights(
        pass == 0 ? a.local() : a.halo(), 0);
  }
  static index_t pass_first_row(const dist::HaloDec<V>&, int, index_t g) {
    return g;
  }
  static void pass_run(const dist::HaloDec<V>& a, int pass, index_t g0,
                       index_t g1, const V* x, V* y, Impl impl) {
    if (pass == 0)
      FormatOps<Csr<V>>::pass_run(a.local(), 0, g0, g1, x, y, impl);
    else
      FormatOps<Csr<V>>::pass_run(a.halo(), 0, g0, g1, x + a.local_cols(),
                                  y, impl);
  }
};

}  // namespace bspmv
