// Parallel substrate tests: partition invariants and threaded-vs-serial
// SpMV equivalence for every parallelised format and thread count.
#include <gtest/gtest.h>

#include <numeric>

#include "src/parallel/parallel_spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::expect_vectors_near;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;
using bspmv::testing::random_x;

// ----------------------------------------------------- partitioning ----

TEST(Partition, BoundariesAreMonotoneAndCover) {
  const std::vector<std::size_t> w = {5, 1, 1, 9, 0, 0, 3, 7, 2, 2};
  for (int parts : {1, 2, 3, 4, 7, 10, 15}) {
    const auto b = balanced_partition(w, parts);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(parts) + 1);
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), static_cast<index_t>(w.size()));
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
  }
}

TEST(Partition, BalancesWeightWithinOneUnit) {
  // Uniform weights must split almost perfectly.
  const std::vector<std::size_t> w(100, 4);
  const auto b = balanced_partition(w, 4);
  for (int p = 0; p < 4; ++p) {
    const index_t len = b[static_cast<std::size_t>(p) + 1] -
                        b[static_cast<std::size_t>(p)];
    EXPECT_GE(len, 24);
    EXPECT_LE(len, 26);
  }
}

TEST(Partition, HeavyUnitDominatesItsPart) {
  // One huge unit: every other part can be tiny/empty but coverage holds.
  std::vector<std::size_t> w(10, 1);
  w[5] = 1000;
  const auto b = balanced_partition(w, 3);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 10);
}

TEST(Partition, EmptyWeights) {
  const std::vector<std::size_t> w;
  const auto b = balanced_partition(w, 4);
  for (index_t x : b) EXPECT_EQ(x, 0);
}

TEST(Partition, RejectsZeroParts) {
  const std::vector<std::size_t> w = {1};
  EXPECT_THROW(balanced_partition(w, 0), invalid_argument_error);
}

TEST(Partition, PaddingAwareWeights) {
  // BCSR weights count padded zeros: a block row with 2 blocks of 2x2
  // weighs 8 regardless of actual nonzeros.
  Coo<double> coo(4, 8);
  coo.add(0, 0, 1.0);            // block (0,0): 1 nnz, weight still 4
  coo.add(2, 0, 1.0);
  coo.add(2, 2, 1.0);
  coo.add(3, 1, 1.0);
  const Bcsr<double> m =
      Bcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{2, 2});
  const auto w = block_row_weights(m);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], 4u);   // one block
  EXPECT_EQ(w[1], 8u);   // two blocks
}

// ------------------------------------------------ threaded equality ----

class ThreadedSpmv : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedSpmv, CsrMatchesSerial) {
  const int threads = GetParam();
  const Coo<double> coo = random_coo<double>(101, 97, 0.06, 1);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(97, 3);
  aligned_vector<double> ys(101, 0.0), yp(101, -1.0);
  spmv(a, x.data(), ys.data());
  for (Impl impl : {Impl::kScalar, Impl::kSimd}) {
    ThreadedCsrSpmv<double>(a, threads).run(x.data(), yp.data(), impl);
    expect_vectors_near(yp.data(), ys.data(), 101, "threaded csr");
  }
}

TEST_P(ThreadedSpmv, BcsrMatchesSerial) {
  const int threads = GetParam();
  const Coo<double> coo = random_blocky_coo<double>(90, 84, 3, 0.3, 0.8, 2);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(84, 4);
  for (BlockShape shape : {BlockShape{2, 2}, BlockShape{3, 1},
                           BlockShape{4, 2}, BlockShape{1, 8}}) {
    const Bcsr<double> m = Bcsr<double>::from_csr(a, shape);
    aligned_vector<double> ys(90, 0.0), yp(90, -1.0);
    spmv(m, x.data(), ys.data());
    ThreadedBcsrSpmv<double>(m, threads).run(x.data(), yp.data(), Impl::kSimd);
    expect_vectors_near(yp.data(), ys.data(), 90,
                        "threaded bcsr " + shape.to_string());
  }
}

TEST_P(ThreadedSpmv, BcsdMatchesSerial) {
  const int threads = GetParam();
  const Coo<double> coo =
      bspmv::testing::random_coo<double>(95, 88, 0.07, 5);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(88, 6);
  for (int b : {2, 4, 7}) {
    const Bcsd<double> m = Bcsd<double>::from_csr(a, b);
    aligned_vector<double> ys(95, 0.0), yp(95, -1.0);
    spmv(m, x.data(), ys.data());
    ThreadedBcsdSpmv<double>(m, threads).run(x.data(), yp.data());
    expect_vectors_near(yp.data(), ys.data(), 95,
                        "threaded bcsd b=" + std::to_string(b));
  }
}

TEST_P(ThreadedSpmv, DecomposedMatchesSerial) {
  const int threads = GetParam();
  const Coo<double> coo = random_blocky_coo<double>(87, 92, 2, 0.3, 0.85, 7);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(92, 8);

  const BcsrDec<double> m1 = BcsrDec<double>::from_csr(a, BlockShape{2, 2});
  aligned_vector<double> ys(87, 0.0), yp(87, -1.0);
  spmv(m1, x.data(), ys.data());
  ThreadedBcsrDecSpmv<double>(m1, threads).run(x.data(), yp.data());
  expect_vectors_near(yp.data(), ys.data(), 87, "threaded bcsr_dec");

  const BcsdDec<double> m2 = BcsdDec<double>::from_csr(a, 3);
  aligned_vector<double> ys2(87, 0.0), yp2(87, -1.0);
  spmv(m2, x.data(), ys2.data());
  ThreadedBcsdDecSpmv<double>(m2, threads).run(x.data(), yp2.data(),
                                               Impl::kSimd);
  expect_vectors_near(yp2.data(), ys2.data(), 87, "threaded bcsd_dec");
}

TEST_P(ThreadedSpmv, FloatMatchesSerial) {
  const int threads = GetParam();
  const Coo<float> coo = random_coo<float>(77, 83, 0.08, 9);
  const Csr<float> a = Csr<float>::from_coo(coo);
  const auto x = random_x<float>(83, 10);
  aligned_vector<float> ys(77, 0.0f), yp(77, -1.0f);
  spmv(a, x.data(), ys.data());
  ThreadedCsrSpmv<float>(a, threads).run(x.data(), yp.data());
  expect_vectors_near(yp.data(), ys.data(), 77, "threaded csr float");
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedSpmv, ::testing::Values(1, 2, 3, 4));

TEST(ThreadedSpmvEdge, MoreThreadsThanRows) {
  Coo<double> coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(2, 2, 2.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const aligned_vector<double> x = {1.0, 1.0, 1.0};
  aligned_vector<double> y(3, -1.0);
  ThreadedCsrSpmv<double>(a, 8).run(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(ThreadedSpmvEdge, RejectsZeroThreads) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(4, 4, 0.5, 1));
  EXPECT_THROW(ThreadedCsrSpmv<double>(a, 0), invalid_argument_error);
}

TEST(ThreadedSpmvEdge, MoreThreadsThanRowsAllFormats) {
  // 3 rows, 16 threads: most partitions are empty and every runner must
  // still cover all rows exactly once.
  Coo<double> coo(3, 12);
  coo.add(0, 0, 1.0);
  coo.add(0, 11, 2.0);
  coo.add(1, 5, 3.0);
  coo.add(2, 2, 4.0);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(12, 13);
  aligned_vector<double> ys(3, 0.0);
  spmv(a, x.data(), ys.data());

  aligned_vector<double> y(3, -1.0);
  ThreadedCsrSpmv<double>(a, 16).run(x.data(), y.data());
  expect_vectors_near(y.data(), ys.data(), 3, "csr 16 threads");

  const Bcsr<double> mb = Bcsr<double>::from_csr(a, BlockShape{2, 2});
  y.assign(3, -1.0);
  ThreadedBcsrSpmv<double>(mb, 16).run(x.data(), y.data(), Impl::kScalar);
  expect_vectors_near(y.data(), ys.data(), 3, "bcsr 16 threads");

  const Bcsd<double> md = Bcsd<double>::from_csr(a, 4);
  y.assign(3, -1.0);
  ThreadedBcsdSpmv<double>(md, 16).run(x.data(), y.data());
  expect_vectors_near(y.data(), ys.data(), 3, "bcsd 16 threads");

  const BcsrDec<double> mbd = BcsrDec<double>::from_csr(a, BlockShape{2, 2});
  y.assign(3, -1.0);
  ThreadedBcsrDecSpmv<double>(mbd, 16).run(x.data(), y.data());
  expect_vectors_near(y.data(), ys.data(), 3, "bcsr_dec 16 threads");
}

TEST(ThreadedSpmvEdge, SingleRowMatrix) {
  // One row can never be split: exactly one thread does all the work.
  Coo<double> coo(1, 40);
  for (index_t j = 0; j < 40; j += 3) coo.add(0, j, 1.0 + j);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(40, 17);
  aligned_vector<double> ys(1, 0.0);
  spmv(a, x.data(), ys.data());
  for (int threads : {1, 2, 7}) {
    aligned_vector<double> y(1, -1.0);
    ThreadedCsrSpmv<double>(a, threads).run(x.data(), y.data());
    expect_vectors_near(y.data(), ys.data(), 1,
                        "single row, " + std::to_string(threads) + " threads");
  }
}

TEST(Partition, MorePartsThanUnitsYieldsEmptyTailParts) {
  // parts > units: boundaries stay monotone and cover; surplus parts are
  // empty ranges, which the runners must tolerate as no-ops.
  const std::vector<std::size_t> w = {3, 3, 3};
  const auto b = balanced_partition(w, 8);
  ASSERT_EQ(b.size(), 9u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 3);
  int empty = 0, covered = 0;
  for (std::size_t i = 1; i < b.size(); ++i) {
    ASSERT_GE(b[i], b[i - 1]);
    const index_t len = b[i] - b[i - 1];
    if (len == 0) ++empty;
    covered += len;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_GE(empty, 5);  // pigeonhole: at most 3 of 8 parts are nonempty
}

TEST(Partition, AllZeroWeightsStillCover) {
  // Rows with zero weight (empty rows) must still be assigned somewhere.
  const std::vector<std::size_t> w(6, 0);
  const auto b = balanced_partition(w, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 6);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
}

}  // namespace
}  // namespace bspmv
