// Lightweight iteration checkpoints for the supervised distributed run.
//
// The distributed iteration is an idempotent recompute — every round
// rebuilds y = A·x from the constant input vector — so the only state a
// resume needs is *how many iterations already counted* and proof that
// the input is the same problem. A checkpoint therefore holds the
// completed-iteration counter plus the x vector (with its bit-exact
// fingerprint), written through the crash-safe atomic_write_file CRC
// path every N iterations. Torn, corrupt, or mismatched files are
// rejected (load returns nullopt) and the run simply starts from
// iteration zero — the warn-and-regenerate contract every cache in this
// codebase keeps.
//
// The checkpoint interval is a Young/Daly choice surfaced by the models
// (dist_checkpoint_interval in src/core/models.*); docs/distribution.md
// has the derivation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bspmv::dist {

struct DistCheckpoint {
  std::uint32_t completed = 0;      ///< iterations finished and counted
  std::uint32_t total = 0;          ///< iterations the run asked for
  std::uint64_t x_fingerprint = 0;  ///< bits_fingerprint of the x vector
  std::vector<double> x;

  std::string encode() const;
  /// Throws bspmv::parse_error on a malformed payload.
  static DistCheckpoint decode(std::string_view payload);
};

/// Atomically persist `ck` at `path` with a CRC trailer. Throws
/// bspmv::io_error on filesystem failure.
void save_checkpoint(const std::string& path, const DistCheckpoint& ck);

/// Load a checkpoint; nullopt when the file is absent, torn, corrupt, or
/// structurally invalid (never throws — a bad checkpoint only costs the
/// restart position, not the run).
std::optional<DistCheckpoint> load_checkpoint(const std::string& path) noexcept;

}  // namespace bspmv::dist
