// Resource guard for format conversions.
//
// Blocked conversions can blow up even when the source matrix is small:
// BCSR on a scattered matrix stores r·c padded values per nonzero, BCSD
// stores b, and a hostile Matrix Market file can declare dimensions that
// overflow the 4-byte index_t. Every from_csr conversion consults the
// process-wide ConversionGuard before its large allocations, so a blowup
// surfaces as a typed resource_limit_error the executor can turn into a
// CSR fallback — never an OOM kill or a silently wrapped index.
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/util/errors.hpp"

namespace bspmv {

/// Budgets enforced on each individual conversion.
///
/// Three layers compose, strongest last (documented in docs/robustness.md
/// and docs/serving.md):
///   1. compile-time defaults (`defaults()`),
///   2. environment overrides read once at first use (`from_env()`:
///      BSPMV_CONVERT_MAX_MB caps max_bytes in MiB, BSPMV_CONVERT_MAX_FILL
///      caps max_fill_ratio — malformed values warn on stderr and are
///      ignored),
///   3. runtime API (`set_limits` / `Scope`), which always wins — the
///      serving daemon uses it so its engine-cache byte budget and the
///      per-conversion budget compose instead of fighting.
struct ConversionLimits {
  /// Upper bound on the bytes of matrix arrays a single conversion may
  /// allocate. The default is far above any realistic working set: its
  /// job is to turn would-be OOM/overflow into a typed error, not to
  /// second-guess ordinary conversions.
  std::size_t max_bytes = std::size_t{1} << 40;  // 1 TiB

  /// Upper bound on stored elements (nonzeros + padding) per source
  /// nonzero. The worst legitimate candidate fill is r·c = 64 (an 8×8
  /// block holding a single nonzero), so the default never trips the
  /// paper's candidate set; services cap it far lower via Scope.
  double max_fill_ratio = 1024.0;

  /// The compile-time defaults, untouched by the environment.
  static ConversionLimits defaults() { return {}; }

  /// defaults() with the BSPMV_CONVERT_MAX_MB / BSPMV_CONVERT_MAX_FILL
  /// environment overrides applied (invalid values warn and are ignored).
  static ConversionLimits from_env();
};

class ConversionGuard {
 public:
  /// The limits every conversion currently enforces. On first use they
  /// are initialised from ConversionLimits::from_env(), so deployments
  /// can cap conversions without an API call; any set_limits/Scope call
  /// overrides the environment for its duration.
  static const ConversionLimits& limits();

  /// Replace the process-wide limits; returns the previous ones. Not
  /// thread-safe against concurrent conversions — set limits up front or
  /// use Scope around a single-threaded section.
  static ConversionLimits set_limits(const ConversionLimits& l);

  /// RAII override: applies `l` for the lifetime of the scope.
  class Scope {
   public:
    explicit Scope(const ConversionLimits& l) : prev_(set_limits(l)) {}
    ~Scope() { set_limits(prev_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ConversionLimits prev_;
  };

  /// Admission check for a conversion that will store `stored_elems`
  /// values of `elem_bytes` each (plus `index_bytes` of indexing arrays)
  /// on behalf of `nnz` source nonzeros. Throws resource_limit_error when
  /// the byte budget or the fill-ratio cap would be exceeded. All
  /// arithmetic is overflow-safe.
  static void check(const char* format, std::size_t stored_elems,
                    std::size_t nnz, std::size_t elem_bytes,
                    std::size_t index_bytes = 0);

  /// Throws resource_limit_error when `count` (an array length or matrix
  /// dimension named `what`) cannot be represented by index_t.
  static void check_index_width(const char* format, const char* what,
                                std::size_t count);

  /// a*b, throwing resource_limit_error instead of wrapping on overflow.
  static std::size_t mul(const char* format, std::size_t a, std::size_t b);
};

}  // namespace bspmv
