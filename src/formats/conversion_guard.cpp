#include "src/formats/conversion_guard.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>

namespace bspmv {

namespace {

/// Parse a strictly positive double from env var `name`, or nullopt when
/// unset; malformed values warn once on stderr and are ignored (a typo in
/// a deployment must not silently disable the guard).
std::optional<double> env_positive(const char* name) {
  const char* s = std::getenv(name);
  if (!s || !*s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v > 0)) {
    std::fprintf(stderr,
                 "bspmv: ignoring %s='%s' (want a positive number)\n", name,
                 s);
    return std::nullopt;
  }
  return v;
}

/// Lazily initialised from the environment on first use; set_limits
/// replaces it wholesale (API wins over environment, see the header).
ConversionLimits& global_limits() {
  static ConversionLimits limits = ConversionLimits::from_env();
  return limits;
}

}  // namespace

ConversionLimits ConversionLimits::from_env() {
  ConversionLimits l = defaults();
  if (const auto mb = env_positive("BSPMV_CONVERT_MAX_MB"))
    l.max_bytes = static_cast<std::size_t>(*mb * (std::size_t{1} << 20));
  if (const auto fill = env_positive("BSPMV_CONVERT_MAX_FILL"))
    l.max_fill_ratio = *fill;
  return l;
}

const ConversionLimits& ConversionGuard::limits() { return global_limits(); }

ConversionLimits ConversionGuard::set_limits(const ConversionLimits& l) {
  ConversionLimits prev = global_limits();
  global_limits() = l;
  return prev;
}

void ConversionGuard::check(const char* format, std::size_t stored_elems,
                            std::size_t nnz, std::size_t elem_bytes,
                            std::size_t index_bytes) {
  const ConversionLimits& lim = global_limits();

  // Byte budget, overflow-safe: stored_elems * elem_bytes must neither
  // wrap nor exceed the cap once index arrays are added.
  if (elem_bytes != 0 &&
      stored_elems > std::numeric_limits<std::size_t>::max() / elem_bytes) {
    std::ostringstream os;
    os << format << " conversion: stored size overflows size_t ("
       << stored_elems << " elements of " << elem_bytes << " bytes)";
    throw resource_limit_error(os.str());
  }
  const std::size_t value_bytes = stored_elems * elem_bytes;
  if (value_bytes > lim.max_bytes - std::min(index_bytes, lim.max_bytes) ||
      index_bytes > lim.max_bytes) {
    std::ostringstream os;
    os << format << " conversion: " << value_bytes + index_bytes
       << " bytes exceed the " << lim.max_bytes
       << "-byte conversion budget";
    throw resource_limit_error(os.str());
  }

  // Fill-ratio cap: stored elements (nonzeros + padding) per nonzero.
  if (nnz > 0) {
    const double fill =
        static_cast<double>(stored_elems) / static_cast<double>(nnz);
    if (fill > lim.max_fill_ratio) {
      std::ostringstream os;
      os << format << " conversion: fill ratio " << fill
         << " (stored " << stored_elems << " for " << nnz
         << " nonzeros) exceeds cap " << lim.max_fill_ratio;
      throw resource_limit_error(os.str());
    }
  }
}

std::size_t ConversionGuard::mul(const char* format, std::size_t a,
                                 std::size_t b) {
  if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b) {
    std::ostringstream os;
    os << format << " conversion: " << a << " * " << b
       << " overflows size_t";
    throw resource_limit_error(os.str());
  }
  return a * b;
}

void ConversionGuard::check_index_width(const char* format, const char* what,
                                        std::size_t count) {
  if (count > static_cast<std::size_t>(std::numeric_limits<index_t>::max())) {
    std::ostringstream os;
    os << format << ": " << what << " (" << count
       << ") overflows the 4-byte index type";
    throw resource_limit_error(os.str());
  }
}

}  // namespace bspmv
