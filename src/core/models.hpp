// The paper's performance models (§IV) plus the future-work extensions.
//
//   MEM      (eq. 1): t = ws / BW                       [Gropp et al.]
//   MEMCOMP  (eq. 2): t = Σ_i ( ws_i/BW + nb_i·t_b_i )
//   OVERLAP  (eq. 3): t = Σ_i ( ws_i/BW + nof_i·nb_i·t_b_i )
//
// Extensions (§VI future work, built here):
//   MEMLAT: OVERLAP plus a latency term for irregular input-vector
//           accesses — the failure mode the paper diagnoses on matrices
//           #12/#14/#15/#28.
//   predict_multicore: shared-bandwidth multicore adaptation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/core/working_set.hpp"
#include "src/kernels/layout.hpp"
#include "src/parallel/backend.hpp"
#include "src/profile/machine_profile.hpp"

namespace bspmv {

enum class ModelKind { kMem, kMemComp, kOverlap, kMemLat };

const char* model_name(ModelKind kind);

/// Structural irregularity of the input-vector access stream, the extra
/// input of the MEMLAT model (computed once per matrix).
struct IrregularityStats {
  /// Estimated x-vector cache-line fetches that the stride prefetchers
  /// cannot cover (non-sequential line jumps within a row).
  std::size_t irregular_lines = 0;
  /// Size of the input vector in bytes: an irregular access only pays a
  /// memory-latency penalty when x does not fit in the private cache, so
  /// the MEMLAT correction is gated by the fraction of x beyond it.
  std::size_t x_bytes = 0;
  /// Total nonzeros (normalises irregular_lines into a per-access ratio).
  std::size_t nnz = 0;
};

template <class V>
IrregularityStats irregularity_stats(const Csr<V>& a);

/// Predicted execution time (seconds per SpMV) of `cost` under `model`.
/// MEMLAT requires `irr`; the other models ignore it.
double predict(ModelKind model, const CandidateCost& cost,
               const MachineProfile& profile, Precision prec,
               const IrregularityStats* irr = nullptr);

/// Convenience wrappers for the three paper models.
double predict_mem(const CandidateCost& cost, const MachineProfile& profile);
double predict_memcomp(const CandidateCost& cost,
                       const MachineProfile& profile, Precision prec);
double predict_overlap(const CandidateCost& cost,
                       const MachineProfile& profile, Precision prec);

/// Multicore extension: computations parallelise across `threads` while
/// the memory streams share the machine's bandwidth.
double predict_multicore(ModelKind model, const CandidateCost& cost,
                         const MachineProfile& profile, Precision prec,
                         int threads);

/// Scheduling-overhead inputs of predict_parallel, derived purely from
/// the §V-A partition weights of one pass (stored values incl. padding
/// per granule) — no timing required.
struct ParallelOverhead {
  /// Static-partition load imbalance of the bulk-synchronous backend:
  /// heaviest thread share over the ideal share, minus one (0 = perfectly
  /// balanced; the barrier makes every SpMV pay this fraction).
  double bulk_imbalance = 0.0;
  /// Straggler bound of the work-stealing backend: with the matrix
  /// over-decomposed into threads×tasks_per_thread weight-balanced
  /// tasks, the classic steal-scheduling makespan bound is
  /// total/threads + max_task, so the excess fraction is
  /// max_task/(total/threads). Much smaller than bulk_imbalance on
  /// skewed matrices, slightly above zero on balanced ones.
  double task_imbalance = 0.0;
  /// Per-SpMV scheduling cost of the task backend (batch submission,
  /// claims and expected steals), linear in the task count.
  double steal_overhead_seconds = 0.0;
};

/// Compute the overhead terms for one pass's partition weights.
/// `seconds_per_task` is the amortised per-task scheduling cost
/// (submit + claim + deque traffic); the default matches the observed
/// TaskPool cost on commodity x86.
ParallelOverhead parallel_overhead(std::span<const std::size_t> weights,
                                   int threads, int tasks_per_thread = 8,
                                   double seconds_per_task = 2e-6);

/// Multicore prediction including the execution backend's scheduling
/// costs: predict_multicore plus the backend's imbalance share of the
/// per-thread work and, for the task backend, the steal overhead. With a
/// zero ParallelOverhead this equals predict_multicore.
double predict_parallel(ModelKind model, const CandidateCost& cost,
                        const MachineProfile& profile, Precision prec,
                        int threads, const ParallelOverhead& overhead,
                        ExecBackend backend);

/// Multi-vector (SpMM) extension of eq. (1)–(3): predicted seconds for
/// ONE multiply of all k right-hand sides (divide by k for the effective
/// per-vector time). The memory term splits cost into matrix traffic
/// (streamed once for row-major; once per vector for col-major unless the
/// matrix fits in the effective LLC) and x/y traffic (always ×k), while
/// every compute term scales ×k. k == 1 equals predict() for either
/// layout. Full derivation in docs/spmm.md.
double predict_spmm(ModelKind model, const CandidateCost& cost,
                    const MachineProfile& profile, Precision prec, int k,
                    Layout layout, const IrregularityStats* irr = nullptr);

/// Smallest k in `ks` (scanned in order) where `blocked` is predicted
/// strictly faster than `csr` at that k for the given layout; 0 when the
/// prediction never crosses within `ks`.
int spmm_crossover_k(ModelKind model, const CandidateCost& blocked,
                     const CandidateCost& csr,
                     const MachineProfile& profile, Precision prec,
                     Layout layout, const std::vector<int>& ks,
                     const IrregularityStats* irr = nullptr);

/// Smallest k in `ks` where row-major is predicted strictly faster than
/// col-major for `cost`; 0 when it never crosses within `ks` (i.e. the
/// matrix is predicted cache-resident throughout).
int spmm_layout_crossover_k(ModelKind model, const CandidateCost& cost,
                            const MachineProfile& profile, Precision prec,
                            const std::vector<int>& ks,
                            const IrregularityStats* irr = nullptr);

#define BSPMV_DECL(V) \
  extern template IrregularityStats irregularity_stats(const Csr<V>&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
