#include "src/core/working_set.hpp"

#include <map>

#include "src/formats/csr_delta.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/formats/vbr.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

namespace {

constexpr std::size_t kIdx = sizeof(index_t);

template <class V>
std::size_t vectors_bytes(const Csr<V>& a) {
  return (static_cast<std::size_t>(a.rows()) +
          static_cast<std::size_t>(a.cols())) *
         sizeof(V);
}

template <class V>
std::size_t csr_arrays_bytes(std::size_t nnz, index_t rows) {
  return nnz * (sizeof(V) + kIdx) + (static_cast<std::size_t>(rows) + 1) * kIdx;
}

template <class V>
std::size_t bcsr_arrays_bytes(const BlockStats& st, index_t rows, int r) {
  const std::size_t brows =
      (static_cast<std::size_t>(rows) + static_cast<std::size_t>(r) - 1) /
      static_cast<std::size_t>(r);
  return st.stored_values * sizeof(V) + st.blocks * kIdx + (brows + 1) * kIdx;
}

template <class V>
std::size_t bcsd_arrays_bytes(const BlockStats& st, index_t rows, int b) {
  const std::size_t segs =
      (static_cast<std::size_t>(rows) + static_cast<std::size_t>(b) - 1) /
      static_cast<std::size_t>(b);
  // brow_ptr + the per-segment full-diagonal counters our layout carries.
  return st.stored_values * sizeof(V) + st.blocks * kIdx +
         (segs + 1) * kIdx + segs * kIdx;
}

// Memoised structural scans shared across candidates.
template <class V>
struct StatsCache {
  const Csr<V>& a;
  std::map<std::pair<int, int>, BlockStats> bcsr;
  std::map<std::pair<int, int>, DecompStats> bcsr_dec;
  std::map<int, BlockStats> bcsd;
  std::map<int, DecompStats> bcsd_dec;

  const BlockStats& get_bcsr(BlockShape s) {
    auto [it, fresh] = bcsr.try_emplace({s.r, s.c});
    if (fresh) it->second = bcsr_stats(a, s);
    return it->second;
  }
  const DecompStats& get_bcsr_dec(BlockShape s) {
    auto [it, fresh] = bcsr_dec.try_emplace({s.r, s.c});
    if (fresh) it->second = bcsr_dec_stats(a, s);
    return it->second;
  }
  const BlockStats& get_bcsd(int b) {
    auto [it, fresh] = bcsd.try_emplace(b);
    if (fresh) it->second = bcsd_stats(a, b);
    return it->second;
  }
  const DecompStats& get_bcsd_dec(int b) {
    auto [it, fresh] = bcsd_dec.try_emplace(b);
    if (fresh) it->second = bcsd_dec_stats(a, b);
    return it->second;
  }
};

template <class V>
CandidateCost cost_with_cache(const Csr<V>& a, const Candidate& c,
                              StatsCache<V>& cache) {
  CandidateCost cost;
  cost.candidate = c;
  const std::size_t vecs = vectors_bytes(a);
  // Every branch below accounts one x+y pair in its working set (the VBR
  // estimator folds it into Vbr::working_set_bytes()).
  cost.xy_bytes = vecs;

  switch (c.kind) {
    case FormatKind::kCsr: {
      cost.parts.push_back(CostPart{
          c.kernel_id(), csr_arrays_bytes<V>(a.nnz(), a.rows()) + vecs,
          a.nnz()});
      break;
    }
    case FormatKind::kBcsr: {
      const BlockStats& st = cache.get_bcsr(c.shape);
      cost.parts.push_back(CostPart{
          c.kernel_id(), bcsr_arrays_bytes<V>(st, a.rows(), c.shape.r) + vecs,
          st.blocks});
      break;
    }
    case FormatKind::kBcsrDec: {
      const DecompStats& st = cache.get_bcsr_dec(c.shape);
      cost.parts.push_back(CostPart{
          c.kernel_id(),
          bcsr_arrays_bytes<V>(st.full, a.rows(), c.shape.r) + vecs,
          st.full.blocks});
      cost.parts.push_back(CostPart{
          csr_kernel_id(c.impl),
          csr_arrays_bytes<V>(st.remainder_nnz, a.rows()),
          st.remainder_nnz});
      break;
    }
    case FormatKind::kBcsd: {
      const BlockStats& st = cache.get_bcsd(c.b);
      cost.parts.push_back(CostPart{
          c.kernel_id(), bcsd_arrays_bytes<V>(st, a.rows(), c.b) + vecs,
          st.blocks});
      break;
    }
    case FormatKind::kBcsdDec: {
      const DecompStats& st = cache.get_bcsd_dec(c.b);
      cost.parts.push_back(CostPart{
          c.kernel_id(), bcsd_arrays_bytes<V>(st.full, a.rows(), c.b) + vecs,
          st.full.blocks});
      cost.parts.push_back(CostPart{
          csr_kernel_id(c.impl),
          csr_arrays_bytes<V>(st.remainder_nnz, a.rows()),
          st.remainder_nnz});
      break;
    }
    case FormatKind::kVbl: {
      const std::size_t blocks = vbl_block_count(a);
      const std::size_t ws = a.nnz() * sizeof(V) +
                             (static_cast<std::size_t>(a.rows()) + 1) * kIdx +
                             blocks * (kIdx + sizeof(blk_size_t)) + vecs;
      cost.parts.push_back(CostPart{c.kernel_id(), ws, blocks});
      break;
    }
    case FormatKind::kVbr: {
      // VBR has no cheap structural estimator in this library; derive the
      // exact numbers from a materialised copy (the format is an
      // extension outside the paper's model scope).
      const Vbr<V> v = Vbr<V>::from_csr(a);
      cost.parts.push_back(
          CostPart{c.kernel_id(), v.working_set_bytes(), v.blocks()});
      break;
    }
    case FormatKind::kUbcsr: {
      const BlockStats st = ubcsr_stats(a, c.shape);
      const std::size_t brows =
          (static_cast<std::size_t>(a.rows()) +
           static_cast<std::size_t>(c.shape.r) - 1) /
          static_cast<std::size_t>(c.shape.r);
      cost.parts.push_back(CostPart{
          c.kernel_id(),
          st.stored_values * sizeof(V) + st.blocks * kIdx +
              (brows + 1) * kIdx + vecs,
          st.blocks});
      break;
    }
    case FormatKind::kCsrDelta: {
      // Exact ctl-stream size needs the varint lengths; one cheap scan.
      const auto& row_ptr = a.row_ptr();
      const auto& col_ind = a.col_ind();
      std::size_t ctl_bytes = 0;
      auto varint_len = [](index_t v) {
        std::size_t len = 1;
        while (v >= 0x80) {
          v >>= 7;
          ++len;
        }
        return len;
      };
      for (index_t i = 0; i < a.rows(); ++i) {
        index_t prev = 0;
        for (index_t k = row_ptr[static_cast<std::size_t>(i)];
             k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const index_t j = col_ind[static_cast<std::size_t>(k)];
          const bool first = k == row_ptr[static_cast<std::size_t>(i)];
          ctl_bytes += varint_len(first ? j : j - prev);
          prev = j;
        }
      }
      cost.parts.push_back(CostPart{
          c.kernel_id(),
          a.nnz() * sizeof(V) +
              2 * (static_cast<std::size_t>(a.rows()) + 1) * kIdx +
              ctl_bytes + vecs,
          a.nnz()});
      break;
    }
  }
  return cost;
}

}  // namespace

template <class V>
CandidateCost candidate_cost(const Csr<V>& a, const Candidate& c) {
  StatsCache<V> cache{a, {}, {}, {}, {}};
  return cost_with_cache(a, c, cache);
}

template <class V>
std::vector<CandidateCost> all_candidate_costs(
    const Csr<V>& a, const std::vector<Candidate>& candidates) {
  StatsCache<V> cache{a, {}, {}, {}, {}};
  std::vector<CandidateCost> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates)
    out.push_back(cost_with_cache(a, c, cache));
  return out;
}

#define BSPMV_INST(V)                                                       \
  template CandidateCost candidate_cost(const Csr<V>&, const Candidate&);  \
  template std::vector<CandidateCost> all_candidate_costs(                 \
      const Csr<V>&, const std::vector<Candidate>&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
