#!/usr/bin/env bash
# Markdown link checker for the repository docs (no dependencies beyond
# grep/sed). Every relative link target in README.md, DESIGN.md, ROADMAP.md
# and docs/*.md must exist on disk, resolved against the linking file's
# directory first and the repository root second. External links
# (http/https/mailto) and pure in-page anchors are skipped.
set -u
cd "$(dirname "$0")/.."

files="README.md DESIGN.md ROADMAP.md"
for f in docs/*.md; do
  [ -f "$f" ] && files="$files $f"
done

broken=0
checked=0
for f in $files; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Extract the (target) part of every [text](target) link.
  targets=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
  for t in $targets; do
    case "$t" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${t%%#*}          # strip in-page anchor
    path=${path%% *}       # strip optional "title" part
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken link in $f: $t" >&2
      broken=$((broken + 1))
    fi
  done
done

if [ "$broken" -ne 0 ]; then
  echo "check_links: $broken broken link(s) out of $checked checked" >&2
  exit 1
fi
echo "check_links: all $checked relative links resolve"
