// google-benchmark microbenchmarks of the individual SpMV kernels on a
// fixed FEM-like matrix: per-format, per-shape, scalar vs SIMD. These are
// the per-kernel numbers behind the t_b profile.
//
// The exec/ group benches the two Executor backends (docs/tasking.md)
// head-to-head through SpmvEngine: bulk-synchronous OpenMP vs the
// work-stealing task graph, on the balanced band matrix (where tasks
// must stay within a few percent of bulk) and on a skewed R-MAT (where
// stealing should claw back the straggler time the static partition
// loses).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <thread>

#include "src/core/engine.hpp"
#include "src/core/executor.hpp"
#include "src/gen/generators.hpp"
#include "src/parallel/backend.hpp"
#include "src/util/prng.hpp"

namespace bspmv {
namespace {

// One shared mid-size matrix (L2-resident-ish) so the microbenches finish
// quickly while still exercising real block structure.
const Csr<double>& shared_matrix() {
  static const Csr<double> a = Csr<double>::from_coo(
      gen_blocked_band<double>(8000, 3, 600, 5, 0.8, 0xbeef));
  return a;
}

void run_candidate(benchmark::State& state, const Candidate& c) {
  const Csr<double>& a = shared_matrix();
  const AnyFormat<double> f = AnyFormat<double>::convert(a, c);
  aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
  Xoshiro256 rng(3);
  for (auto& e : x) e = rng.uniform() - 0.5;
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

  for (auto _ : state) {
    f.run(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["ws_MiB"] =
      static_cast<double>(f.working_set_bytes()) / (1024.0 * 1024.0);
}

// Skewed counterpart of shared_matrix(): R-MAT power-law rows — a few
// hubs carry most of the nonzeros, the worst case for a static
// contiguous partition.
const Csr<double>& skewed_matrix() {
  static const Csr<double> a = Csr<double>::from_coo(
      gen_rmat<double>(14, 300000, 0.57, 0.19, 0.19, 0xfeed));
  return a;
}

void run_backend(benchmark::State& state, const Csr<double>& a,
                 ExecBackend backend) {
  // Bench at the machine's real width: oversubscribing (e.g. 2 threads on
  // a 1-core container) measures context-switch pressure, not backends.
  const int threads = static_cast<int>(std::clamp(
      std::thread::hardware_concurrency(), 1u, 8u));
  const Candidate c{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar};
  const auto engine = SpmvEngine<double>::prepare(a, c, threads, backend);
  aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
  Xoshiro256 rng(5);
  for (auto& e : x) e = rng.uniform() - 0.5;
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  engine.warm_up(x.data(), y.data());  // first-touch placement (tasks)

  for (auto _ : state) {
    engine.run(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["threads"] = static_cast<double>(threads);
}

void register_all() {
  for (const Candidate& c : bench_candidates(true, true)) {
    benchmark::RegisterBenchmark(c.id().c_str(),
                                 [c](benchmark::State& s) {
                                   run_candidate(s, c);
                                 })
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.05);
  }
  for (ExecBackend backend : {ExecBackend::kBulk, ExecBackend::kTasks}) {
    for (bool skewed : {false, true}) {
      const std::string name = std::string("exec/") +
                               (skewed ? "rmat_skewed/" : "band_balanced/") +
                               backend_name(backend);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [backend, skewed](benchmark::State& s) {
            run_backend(s, skewed ? skewed_matrix() : shared_matrix(),
                        backend);
          })
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.10)
          // Wall-clock rates: the task backend runs kernels on pool
          // threads, so the bench thread's CPU time would inflate GFLOP/s.
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace bspmv

int main(int argc, char** argv) {
  bspmv::register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
