// Runtime cache hierarchy detection.
//
// The profilers size their working sets off the real cache hierarchy: the
// t_b profile needs a dense matrix *inside* L1 (§IV: "fits in the L1
// cache") and the nof profile one that *exceeds* the last-level cache.
// Sizes come from sysfs when available, with conservative fallbacks.
#pragma once

#include <cstddef>

namespace bspmv {

struct CacheInfo {
  std::size_t l1d_bytes = 32 * 1024;        ///< L1 data cache size
  std::size_t l2_bytes = 1024 * 1024;       ///< (private) L2 cache size
  std::size_t llc_bytes = 8 * 1024 * 1024;  ///< last-level cache size
  bool detected = false;                    ///< false => fallback values
};

/// Probe /sys/devices/system/cpu/cpu0/cache; falls back to 32 KiB / 8 MiB.
CacheInfo detect_cache_info();

}  // namespace bspmv
