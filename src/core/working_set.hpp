// Candidate cost structure: working set and block counts per submatrix.
//
// This is the structural input to eq. (1)–(3): for a candidate decomposed
// into k submatrices, the models need (ws_i, nb_i, kernel_i) per part.
// Everything is derived from one cheap statistics pass over the CSR
// matrix — no candidate format is ever materialised for prediction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/candidates.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/stats.hpp"

namespace bspmv {

/// One submatrix of a candidate's decomposition (k = 1 for non-decomposed
/// formats, k = 2 for BCSR-DEC / BCSD-DEC).
struct CostPart {
  std::string kernel_id;     ///< profile key for t_b / nof lookups
  std::size_t ws_bytes = 0;  ///< working set of this part's arrays
  std::size_t nb = 0;        ///< number of blocks (nnz for CSR parts)
};

struct CandidateCost {
  Candidate candidate;
  std::vector<CostPart> parts;
  /// Bytes of one x + y vector pair. total_ws() includes exactly one such
  /// pair; the k-aware SpMM models (predict_spmm) subtract it to isolate
  /// the matrix traffic and scale the vector traffic by k.
  std::size_t xy_bytes = 0;

  std::size_t total_ws() const {
    std::size_t s = 0;
    for (const auto& p : parts) s += p.ws_bytes;
    return s;
  }

  /// Matrix-array traffic only (total_ws minus the x/y pair).
  std::size_t matrix_ws() const {
    const std::size_t t = total_ws();
    return t > xy_bytes ? t - xy_bytes : 0;
  }
};

/// Compute the cost structure of `c` for matrix `a` with value type V.
/// The x and y vectors are accounted once, in the first part.
template <class V>
CandidateCost candidate_cost(const Csr<V>& a, const Candidate& c);

/// Costs for all candidates, reusing shared statistics scans (the scan for
/// a given shape serves both the padded and decomposed variants and both
/// impls).
template <class V>
std::vector<CandidateCost> all_candidate_costs(
    const Csr<V>& a, const std::vector<Candidate>& candidates);

#define BSPMV_DECL(V)                                                     \
  extern template CandidateCost candidate_cost(const Csr<V>&,            \
                                               const Candidate&);        \
  extern template std::vector<CandidateCost> all_candidate_costs(        \
      const Csr<V>&, const std::vector<Candidate>&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
