// Row-shard plan for distributed (multi-process) SpMV.
//
// The matrix is split row-wise into `ranks` contiguous shards with
// near-equal nonzero counts (the same §V-A nnz balancing the threaded
// drivers use, via balanced_partition over row_weights). Each rank owns
// the matching slice of the input vector x; the columns a shard touches
// outside its own x slice form its *halo* — the only data that must move
// between ranks each iteration (Schubert/Hager/Wellein, arXiv 1101.0091).
//
// The plan records, per rank:
//   - the row range and owned x range,
//   - the sorted global halo column set, segmented by owning rank (so an
//     incoming halo message lands in one contiguous memcpy),
//   - the send list per peer (which owned x entries each peer's halo
//     needs), the exact mirror of the peers' halo segments.
//
// plan_shards is pure structure — no sockets, no processes — so the
// planner edge cases (ranks > rows, zero-nnz shards, single-row
// matrices, empty halos) are unit-testable next to the partitioner's
// (tests/test_partition_edges.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/models.hpp"
#include "src/formats/csr.hpp"

namespace bspmv::dist {

/// One rank's slice of the plan.
struct RankShard {
  index_t row_begin = 0, row_end = 0;  ///< owned rows [row_begin, row_end)
  index_t x_begin = 0, x_end = 0;      ///< owned x entries
  /// Global column ids this shard reads outside [x_begin, x_end),
  /// sorted ascending (== the compact halo index space, in order).
  std::vector<index_t> halo_cols;
  /// ranks+1 offsets into halo_cols: entries [halo_seg[p], halo_seg[p+1])
  /// are owned by rank p, so one kHalo frame from p fills one contiguous
  /// range of the halo buffer.
  std::vector<index_t> halo_seg;
  /// Per peer p: owned-x offsets (global col - x_begin) to ship to p,
  /// exactly mirroring p's halo segment for this rank.
  std::vector<std::vector<index_t>> send_cols;
  std::size_t nnz = 0;        ///< stored values in the shard
  std::size_t local_nnz = 0;  ///< values whose column is owned
  std::size_t halo_nnz = 0;   ///< values whose column is halo

  index_t rows() const { return row_end - row_begin; }
  index_t x_width() const { return x_end - x_begin; }
  std::size_t halo_count() const { return halo_cols.size(); }
  /// Halo doubles received (sum of segments) / sent (sum of send lists).
  std::size_t recv_count() const { return halo_cols.size(); }
  std::size_t send_count() const;
  /// Peers this rank exchanges any bytes with (send or recv).
  int peer_count() const;
};

struct ShardPlan {
  int ranks = 0;
  index_t rows = 0, cols = 0;
  std::vector<index_t> row_bounds;  ///< ranks+1 (balanced_partition cuts)
  std::vector<index_t> x_bounds;    ///< ranks+1 owned-x cuts
  std::vector<RankShard> shards;    ///< size ranks

  /// Per-rank model inputs (working sets + wire traffic) for
  /// predict_distributed; value_bytes = sizeof(V) of the run.
  std::vector<DistRankCost> rank_costs(std::size_t value_bytes) const;
};

/// Build the plan. Throws invalid_argument_error for ranks < 1 or
/// ranks > kMaxRanks. Degenerate inputs (empty matrices, more ranks than
/// rows, rows of zero nnz) produce valid plans with empty shards.
template <class V>
ShardPlan plan_shards(const Csr<V>& a, int ranks);

/// Socketpair-mesh fan-out limit (fd budget: ranks² data channels).
inline constexpr int kMaxRanks = 16;

extern template ShardPlan plan_shards(const Csr<float>&, int);
extern template ShardPlan plan_shards(const Csr<double>&, int);

}  // namespace bspmv::dist
