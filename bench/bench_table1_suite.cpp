// Reproduces Table I: the matrix suite — id, substituted matrix name,
// domain, rows, nonzeros and the CSR working set in MiB (double
// precision), for the chosen suite scale.
#include <cstdio>

#include "bench/harness.hpp"

using namespace bspmv;
using namespace bspmv::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;

  std::printf("Table I: matrix suite (scale=%s; synthetic substitutes for "
              "the UF matrices, see DESIGN.md)\n",
              suite_scale_name(cfg.scale));
  print_rule(86);
  std::printf("%-3s %-16s %-12s %12s %14s %12s %8s\n", "id", "matrix",
              "domain", "# rows", "# nonzeros", "ws (MiB)", "nnz/row");
  print_rule(86);

  double total_ws = 0.0;
  const auto ids = cfg.matrix_ids.empty()
                       ? [] {
                           std::vector<int> v;
                           for (int i = 1; i <= 30; ++i) v.push_back(i);
                           return v;
                         }()
                       : cfg.matrix_ids;
  for (int id : ids) {
    const SuiteMatrixInfo& info = suite_catalog()[static_cast<size_t>(id - 1)];
    const Csr<double> a = build_suite_csr<double>(id, cfg.scale);
    const double ws_mib =
        static_cast<double>(a.working_set_bytes()) / (1024.0 * 1024.0);
    total_ws += ws_mib;
    std::printf("%-3d %-16s %-12s %12d %14zu %12.2f %8.1f\n", info.id,
                info.name.c_str(), info.domain.c_str(), a.rows(), a.nnz(),
                ws_mib,
                static_cast<double>(a.nnz()) / static_cast<double>(a.rows()));
  }
  print_rule(86);
  std::printf("total CSR working set: %.1f MiB\n", total_ws);
  return 0;
}
