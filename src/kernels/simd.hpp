// Portable SIMD primitives for the vectorised kernel variants.
//
// Built on GCC/Clang vector extensions with the SSE2 register width
// (16 bytes) that every x86-64 CPU guarantees: 2 doubles / 4 floats per
// vector. Loads and stores go through memcpy so unaligned access is
// well-defined; the compiler lowers them to movups/movupd.
#pragma once

#include <cstring>

#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
struct SimdVec;

template <>
struct SimdVec<double> {
  using type = double __attribute__((vector_size(16)));
  static constexpr int width = 2;
};

template <>
struct SimdVec<float> {
  using type = float __attribute__((vector_size(16)));
  static constexpr int width = 4;
};

template <class V>
using simd_t = typename SimdVec<V>::type;

template <class V>
inline constexpr int simd_width = SimdVec<V>::width;

/// Unaligned vector load.
template <class V>
BSPMV_ALWAYS_INLINE simd_t<V> simd_loadu(const V* p) {
  simd_t<V> v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Unaligned vector store.
template <class V>
BSPMV_ALWAYS_INLINE void simd_storeu(V* p, simd_t<V> v) {
  std::memcpy(p, &v, sizeof(v));
}

/// Broadcast a scalar to all lanes.
template <class V>
BSPMV_ALWAYS_INLINE simd_t<V> simd_broadcast(V x) {
  simd_t<V> v;
  for (int i = 0; i < simd_width<V>; ++i) v[i] = x;
  return v;
}

/// Zero vector.
template <class V>
BSPMV_ALWAYS_INLINE simd_t<V> simd_zero() {
  return simd_t<V>{} - simd_t<V>{};
}

/// Horizontal sum of all lanes.
template <class V>
BSPMV_ALWAYS_INLINE V simd_hsum(simd_t<V> v) {
  V s = v[0];
  for (int i = 1; i < simd_width<V>; ++i) s += v[i];
  return s;
}

}  // namespace bspmv
