// Reproduces Table IV: per model and precision, the number of matrices
// where the model selected the overall-best (method, block) combination,
// and the average performance distance of its selection from the best.
#include <cstdio>

#include "bench/harness.hpp"
#include "src/core/selector.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

constexpr ModelKind kModels[] = {ModelKind::kMem, ModelKind::kMemComp,
                                 ModelKind::kOverlap, ModelKind::kMemLat};

struct Score {
  int correct = 0;
  double off_sum = 0.0;
};

template <class V>
std::map<ModelKind, Score> run_precision(const BenchConfig& cfg,
                                         const MachineProfile& profile,
                                         SweepCache& cache,
                                         const std::vector<int>& ids) {
  constexpr Precision prec = precision_of<V>;
  const auto cands = model_candidates(true);
  std::map<ModelKind, Score> scores;

  for (int id : ids) {
    if (cfg.verbose) std::fprintf(stderr, "matrix %d (%s)...\n", id,
                                  precision_name(prec));
    const Csr<V> a = build_suite_csr<V>(id, cfg.scale);
    const auto secs = sweep_matrix(a, id, cands, cfg, cache);

    double best = 1e300;
    std::string best_id;
    for (const auto& [cid, t] : secs)
      if (t < best) {
        best = t;
        best_id = cid;
      }

    for (ModelKind m : kModels) {
      const RankedCandidate sel = select_best(m, a, profile);
      const double real = secs.at(sel.candidate.id());
      Score& s = scores[m];
      // A selection counts as correct when it achieves the best measured
      // performance (within timing noise), mirroring "optimal
      // predictions" in the paper's Table IV.
      if (sel.candidate.id() == best_id || real <= best * 1.005) ++s.correct;
      s.off_sum += real / best - 1.0;
    }
  }
  return scores;
}

void print_block(const char* title, const std::map<ModelKind, Score>& sp,
                 const std::map<ModelKind, Score>& dp, std::size_t n) {
  std::printf("%s\n", title);
  print_rule(78);
  std::printf("%-10s | %14s %16s | %14s %16s\n", "Model", "#correct (sp)",
              "off best (sp)", "#correct (dp)", "off best (dp)");
  print_rule(78);
  for (ModelKind m : kModels) {
    std::printf("%-10s | %9d/%-4zu %15.1f%% | %9d/%-4zu %15.1f%%\n",
                model_name(m), sp.at(m).correct, n,
                100.0 * sp.at(m).off_sum / static_cast<double>(n),
                dp.at(m).correct, n,
                100.0 * dp.at(m).off_sum / static_cast<double>(n));
  }
  print_rule(78);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  const MachineProfile profile = get_machine_profile(cfg);
  SweepCache cache(cfg.cache_path, cfg.no_cache);

  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty())
    for (int i = 3; i <= 30; ++i) ids.push_back(i);

  const auto sp = run_precision<float>(cfg, profile, cache, ids);
  const auto dp = run_precision<double>(cfg, profile, cache, ids);
  print_block("Table IV: optimal selections per model and distance from the "
              "best achievable performance",
              sp, dp, ids.size());

  Json::Object payload;
  payload["matrices"] = static_cast<double>(ids.size());
  for (const auto* pair : {&sp, &dp}) {
    Json::Object per_model;
    for (const auto& [m, s] : *pair) {
      Json::Object o;
      o["correct"] = s.correct;
      o["avg_off_best"] = s.off_sum / static_cast<double>(ids.size());
      per_model[model_name(m)] = Json(std::move(o));
    }
    payload[pair == &sp ? "selection_sp" : "selection_dp"] =
        Json(std::move(per_model));
  }
  append_bench_report(cfg, "table4_selection_accuracy",
                      Json(std::move(payload)));
  return 0;
}
