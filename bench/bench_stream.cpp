// Ablation / calibration: effective memory bandwidth (STREAM triad and
// read-only) across working-set sizes, plus the dependent-load latency —
// the machine-side inputs of eq. (1) and the MEMLAT extension. Useful for
// sanity-checking a machine profile against the cache hierarchy.
#include <cstdio>

#include "src/profile/cache_info.hpp"
#include "src/profile/stream_bench.hpp"
#include "src/util/cli.hpp"

using namespace bspmv;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("sizes", "8,32,64,128", "array MiB sizes to test");
  cli.add_option("trials", "3", "best-of-k trials per size");
  if (!cli.parse(argc, argv)) return 0;

  const CacheInfo cache = detect_cache_info();
  std::printf("cache hierarchy: L1d=%zu KiB, LLC=%zu KiB (%s)\n",
              cache.l1d_bytes / 1024, cache.llc_bytes / 1024,
              cache.detected ? "detected" : "fallback");

  std::printf("%-12s %14s %14s\n", "array size", "triad (GiB/s)",
              "read (GiB/s)");
  std::string s = cli.get("sizes");
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t mib =
        static_cast<std::size_t>(std::stoul(s.substr(pos, comma - pos)));
    pos = comma == std::string::npos ? s.size() : comma + 1;

    StreamOptions opt;
    opt.array_bytes = mib << 20;
    opt.trials = static_cast<int>(cli.get_int("trials"));
    std::printf("%9zu MB %14.2f %14.2f\n", mib,
                stream_triad_bandwidth(opt) / (1u << 30),
                stream_read_bandwidth(opt) / (1u << 30));
  }

  std::printf("dependent-load latency (64 MiB chase): %.1f ns\n",
              memory_latency_seconds(64u << 20) * 1e9);
  return 0;
}
