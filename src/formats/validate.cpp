#include "src/formats/validate.hpp"

#include <cstddef>
#include <limits>
#include <sstream>

namespace bspmv {

namespace {

[[noreturn]] void fail(const char* format, const std::string& what) {
  std::ostringstream os;
  os << format << " validation failed: " << what;
  throw validation_error(os.str());
}

void check_dims(const char* format, index_t rows, index_t cols) {
  if (rows < 0 || cols < 0)
    fail(format, "negative dimensions " + std::to_string(rows) + "x" +
                     std::to_string(cols));
}

// Shared checks for a CSR-style pointer array: size n+1, starts at 0,
// non-decreasing, ends at `total`.
void check_ptr(const char* format, const char* name,
               const aligned_vector<index_t>& ptr, std::size_t n,
               std::size_t total) {
  if (ptr.size() != n + 1)
    fail(format, std::string(name) + " has " + std::to_string(ptr.size()) +
                     " entries, expected " + std::to_string(n + 1));
  if (ptr.front() != 0)
    fail(format, std::string(name) + " does not start at 0");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i] < ptr[i - 1])
      fail(format, std::string(name) + " decreases at position " +
                       std::to_string(i));
  if (static_cast<std::size_t>(ptr.back()) != total)
    fail(format, std::string(name) + " ends at " +
                     std::to_string(ptr.back()) + ", expected " +
                     std::to_string(total));
}

}  // namespace

template <class V>
void validate(const Coo<V>& a) {
  check_dims("coo", a.rows(), a.cols());
  for (const auto& e : a.entries())
    if (e.row < 0 || e.row >= a.rows() || e.col < 0 || e.col >= a.cols())
      fail("coo", "entry (" + std::to_string(e.row) + ", " +
                      std::to_string(e.col) + ") outside " +
                      std::to_string(a.rows()) + "x" +
                      std::to_string(a.cols()));
}

template <class V>
void validate(const Csr<V>& a) {
  check_dims("csr", a.rows(), a.cols());
  if (a.col_ind().size() != a.val().size())
    fail("csr", "col_ind and val lengths differ");
  check_ptr("csr", "row_ptr", a.row_ptr(),
            static_cast<std::size_t>(a.rows()), a.nnz());
  for (std::size_t k = 0; k < a.col_ind().size(); ++k) {
    const index_t c = a.col_ind()[k];
    if (c < 0 || c >= a.cols())
      fail("csr", "column index " + std::to_string(c) + " at position " +
                      std::to_string(k) + " outside [0, " +
                      std::to_string(a.cols()) + ")");
  }
}

template <class V>
void validate(const Bcsr<V>& a) {
  check_dims("bcsr", a.rows(), a.cols());
  const index_t r = a.shape().r;
  const index_t c = a.shape().c;
  if (r < 1 || c < 1) fail("bcsr", "block shape below 1x1");
  if (a.block_rows() != (a.rows() + r - 1) / r)
    fail("bcsr", "block_rows inconsistent with rows and r");
  check_ptr("bcsr", "brow_ptr", a.brow_ptr(),
            static_cast<std::size_t>(a.block_rows()), a.blocks());
  const index_t block_cols = (a.cols() + c - 1) / c;
  for (std::size_t k = 0; k < a.bcol_ind().size(); ++k) {
    const index_t bc = a.bcol_ind()[k];
    if (bc < 0 || bc >= block_cols)
      fail("bcsr", "block column " + std::to_string(bc) + " at block " +
                       std::to_string(k) + " outside [0, " +
                       std::to_string(block_cols) + ")");
  }
  const std::size_t elems = a.blocks() * static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(c);
  if (a.bval().size() != elems)
    fail("bcsr", "bval has " + std::to_string(a.bval().size()) +
                     " values, expected blocks*r*c = " +
                     std::to_string(elems));
  if (a.nnz() > a.bval().size())
    fail("bcsr", "nnz exceeds stored values");
}

template <class V>
void validate(const Bcsd<V>& a) {
  check_dims("bcsd", a.rows(), a.cols());
  const int b = a.b();
  if (b < 1) fail("bcsd", "diagonal length below 1");
  if (a.segments() != (a.rows() + b - 1) / b)
    fail("bcsd", "segments inconsistent with rows and b");
  check_ptr("bcsd", "brow_ptr", a.brow_ptr(),
            static_cast<std::size_t>(a.segments()), a.blocks());
  if (a.full_diags().size() != static_cast<std::size_t>(a.segments()))
    fail("bcsd", "full_diags has wrong length");
  if (a.bval().size() != a.blocks() * static_cast<std::size_t>(b))
    fail("bcsd", "bval has " + std::to_string(a.bval().size()) +
                     " values, expected blocks*b");
  if (a.nnz() > a.bval().size()) fail("bcsd", "nnz exceeds stored values");
  for (index_t s = 0; s < a.segments(); ++s) {
    const index_t lo = a.brow_ptr()[static_cast<std::size_t>(s)];
    const index_t hi = a.brow_ptr()[static_cast<std::size_t>(s) + 1];
    const index_t nfull = a.full_diags()[static_cast<std::size_t>(s)];
    if (nfull < 0 || nfull > hi - lo)
      fail("bcsd", "full_diags[" + std::to_string(s) +
                       "] outside the segment's diagonal count");
    const index_t base = s * b;
    for (index_t d = lo; d < hi; ++d) {
      // A diagonal must overlap the matrix: its start column may be
      // negative (partial) but some element (k, j0+k) must be in range.
      const index_t j0 = a.bcol_ind()[static_cast<std::size_t>(d)];
      if (j0 <= -b || j0 >= a.cols())
        fail("bcsd", "diagonal start column " + std::to_string(j0) +
                         " has no element inside the matrix");
      if (d < lo + nfull &&
          (j0 < 0 || j0 + b > a.cols() || base + b > a.rows()))
        fail("bcsd", "diagonal " + std::to_string(d) +
                         " marked full but extends outside the matrix");
    }
  }
}

template <class V>
void validate(const Vbl<V>& a) {
  check_dims("vbl", a.rows(), a.cols());
  check_ptr("vbl", "row_ptr", a.row_ptr(),
            static_cast<std::size_t>(a.rows()), a.nnz());
  if (a.bcol_ind().size() != a.blk_size().size())
    fail("vbl", "bcol_ind and blk_size lengths differ");
  // Blocks partition val sequentially; every row boundary must coincide
  // with a block boundary and every block must stay inside the matrix.
  std::size_t blk = 0;
  std::size_t k = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const std::size_t hi =
        static_cast<std::size_t>(a.row_ptr()[static_cast<std::size_t>(i) + 1]);
    while (k < hi) {
      if (blk >= a.blocks())
        fail("vbl", "row " + std::to_string(i) +
                        " extends past the last block");
      const int size = a.blk_size()[blk];
      const index_t col0 = a.bcol_ind()[blk];
      if (size < 1) fail("vbl", "zero-length block " + std::to_string(blk));
      if (col0 < 0 || col0 + size > a.cols())
        fail("vbl", "block " + std::to_string(blk) + " spans columns [" +
                        std::to_string(col0) + ", " +
                        std::to_string(col0 + size) + ") outside [0, " +
                        std::to_string(a.cols()) + ")");
      if (k + static_cast<std::size_t>(size) > hi)
        fail("vbl", "block " + std::to_string(blk) +
                        " crosses a row boundary");
      k += static_cast<std::size_t>(size);
      ++blk;
    }
  }
  if (blk != a.blocks())
    fail("vbl", "trailing blocks not referenced by any row");
}

template <class V>
void validate(const Vbr<V>& a) {
  check_dims("vbr", a.rows(), a.cols());
  const auto& rpntr = a.rpntr();
  const auto& cpntr = a.cpntr();
  auto check_partition = [&](const char* name,
                             const aligned_vector<index_t>& p, index_t end) {
    if (p.empty()) fail("vbr", std::string(name) + " is empty");
    if (p.front() != 0) fail("vbr", std::string(name) + " does not start at 0");
    for (std::size_t i = 1; i < p.size(); ++i)
      if (p[i] <= p[i - 1])
        fail("vbr", std::string(name) + " not strictly increasing at " +
                        std::to_string(i));
    if (p.back() != end)
      fail("vbr", std::string(name) + " ends at " + std::to_string(p.back()) +
                      ", expected " + std::to_string(end));
  };
  // Degenerate empty matrices keep single-element partitions.
  if (a.rows() > 0) check_partition("rpntr", rpntr, a.rows());
  if (a.cols() > 0 && cpntr.size() > 1)
    check_partition("cpntr", cpntr, a.cols());
  check_ptr("vbr", "brow_ptr", a.brow_ptr(),
            static_cast<std::size_t>(a.block_rows() < 0 ? 0 : a.block_rows()),
            a.blocks());
  if (a.bval_ptr().size() != a.blocks() + 1)
    fail("vbr", "bval_ptr has wrong length");
  check_ptr("vbr", "bval_ptr", a.bval_ptr(), a.blocks(), a.val().size());
  for (index_t br = 0; br < a.block_rows(); ++br) {
    const index_t height = rpntr[static_cast<std::size_t>(br) + 1] -
                           rpntr[static_cast<std::size_t>(br)];
    for (index_t blk = a.brow_ptr()[static_cast<std::size_t>(br)];
         blk < a.brow_ptr()[static_cast<std::size_t>(br) + 1]; ++blk) {
      const index_t bc = a.bindx()[static_cast<std::size_t>(blk)];
      if (bc < 0 || bc >= a.block_cols())
        fail("vbr", "block column index " + std::to_string(bc) +
                        " outside [0, " + std::to_string(a.block_cols()) +
                        ")");
      const index_t width = cpntr[static_cast<std::size_t>(bc) + 1] -
                            cpntr[static_cast<std::size_t>(bc)];
      const index_t stored =
          a.bval_ptr()[static_cast<std::size_t>(blk) + 1] -
          a.bval_ptr()[static_cast<std::size_t>(blk)];
      if (stored != height * width)
        fail("vbr", "block " + std::to_string(blk) + " stores " +
                        std::to_string(stored) + " values, expected " +
                        std::to_string(height * width));
    }
  }
}

template <class V>
void validate(const Ubcsr<V>& a) {
  check_dims("ubcsr", a.rows(), a.cols());
  const index_t r = a.shape().r;
  const index_t c = a.shape().c;
  if (r < 1 || c < 1) fail("ubcsr", "block shape below 1x1");
  if (a.block_rows() != (a.rows() + r - 1) / r)
    fail("ubcsr", "block_rows inconsistent with rows and r");
  check_ptr("ubcsr", "brow_ptr", a.brow_ptr(),
            static_cast<std::size_t>(a.block_rows()), a.blocks());
  for (std::size_t k = 0; k < a.bcol_ind().size(); ++k) {
    const index_t j0 = a.bcol_ind()[k];
    // Anchors start at a nonzero, so the first column must be in range
    // (the block may extend past the last column; kernels clamp).
    if (j0 < 0 || j0 >= a.cols())
      fail("ubcsr", "block start column " + std::to_string(j0) +
                        " outside [0, " + std::to_string(a.cols()) + ")");
  }
  const std::size_t elems = a.blocks() * static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(c);
  if (a.bval().size() != elems)
    fail("ubcsr", "bval has " + std::to_string(a.bval().size()) +
                      " values, expected blocks*r*c");
  if (a.nnz() > a.bval().size()) fail("ubcsr", "nnz exceeds stored values");
}

template <class V>
void validate(const CsrDelta<V>& a) {
  check_dims("csr_delta", a.rows(), a.cols());
  check_ptr("csr_delta", "row_ptr", a.row_ptr(),
            static_cast<std::size_t>(a.rows()), a.nnz());
  check_ptr("csr_delta", "ctl_ptr", a.ctl_ptr(),
            static_cast<std::size_t>(a.rows()), a.ctl().size());
  // Decode the whole varint stream: every byte must be consumed exactly,
  // every decoded column must stay inside [0, cols) and strictly increase
  // within its row.
  const std::uint8_t* ctl = a.ctl().data();
  for (index_t i = 0; i < a.rows(); ++i) {
    const std::size_t row_nnz =
        static_cast<std::size_t>(a.row_ptr()[static_cast<std::size_t>(i) + 1] -
                                 a.row_ptr()[static_cast<std::size_t>(i)]);
    std::size_t p = static_cast<std::size_t>(
        a.ctl_ptr()[static_cast<std::size_t>(i)]);
    const std::size_t p_end = static_cast<std::size_t>(
        a.ctl_ptr()[static_cast<std::size_t>(i) + 1]);
    long long col = -1;
    for (std::size_t e = 0; e < row_nnz; ++e) {
      std::uint32_t v = 0;
      int shift = 0;
      bool more = true;
      while (more) {
        if (p >= p_end || shift > 28)
          fail("csr_delta", "truncated or oversized varint in row " +
                                std::to_string(i));
        const std::uint8_t byte = ctl[p++];
        v |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
        shift += 7;
        more = (byte & 0x80) != 0;
      }
      col = (e == 0) ? static_cast<long long>(v)
                     : col + static_cast<long long>(v);
      if (e > 0 && v == 0)
        fail("csr_delta", "zero delta (duplicate column) in row " +
                              std::to_string(i));
      if (col < 0 || col >= a.cols())
        fail("csr_delta", "decoded column " + std::to_string(col) +
                              " in row " + std::to_string(i) +
                              " outside [0, " + std::to_string(a.cols()) +
                              ")");
    }
    if (p != p_end)
      fail("csr_delta", "unconsumed control bytes in row " +
                            std::to_string(i));
  }
}

template <class V>
void validate(const BcsrDec<V>& a) {
  validate(a.blocked());
  validate(a.remainder());
  if (a.blocked().rows() != a.remainder().rows() ||
      a.blocked().cols() != a.remainder().cols())
    fail("bcsr_dec", "blocked and remainder dimensions differ");
}

template <class V>
void validate(const BcsdDec<V>& a) {
  validate(a.blocked());
  validate(a.remainder());
  if (a.blocked().rows() != a.remainder().rows() ||
      a.blocked().cols() != a.remainder().cols())
    fail("bcsd_dec", "blocked and remainder dimensions differ");
}

#define BSPMV_INST(V)                          \
  template void validate(const Coo<V>&);       \
  template void validate(const Csr<V>&);       \
  template void validate(const Bcsr<V>&);      \
  template void validate(const Bcsd<V>&);      \
  template void validate(const Vbl<V>&);       \
  template void validate(const Vbr<V>&);       \
  template void validate(const Ubcsr<V>&);     \
  template void validate(const CsrDelta<V>&);  \
  template void validate(const BcsrDec<V>&);   \
  template void validate(const BcsdDec<V>&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
