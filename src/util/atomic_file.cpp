#include "src/util/atomic_file.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/errors.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define BSPMV_HAVE_POSIX_IO 1
#else
#define BSPMV_HAVE_POSIX_IO 0
#endif

namespace bspmv {

namespace {

constexpr const char* kChecksumPrefix = "#bspmv-crc32:";

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Byte-exact trailer protocol: the CRC covers the payload alone, and the
// "\n#bspmv-crc32:xxxxxxxx\n" trailer (leading newline included) belongs
// entirely to the protocol — the reader strips it and returns the
// payload bit-for-bit, so binary payloads (e.g. the serving daemon's
// spooled matrices) round-trip exactly.
std::string with_trailer(const std::string& payload) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc32(payload));
  return payload + "\n" + kChecksumPrefix + buf + "\n";
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw io_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (unsigned char byte : data)
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

#if BSPMV_HAVE_POSIX_IO

void atomic_write_file(const std::string& path, const std::string& payload,
                       bool with_checksum) {
  const std::string body = with_checksum ? with_trailer(payload) : payload;

  // Advisory writer lock so concurrent writers of the same cache
  // serialise. The lock lives on a sidecar file, NOT the destination:
  // opening the destination with O_CREAT would materialise an empty
  // file a concurrent reader could observe before the first rename.
  // Best effort: the rename below is atomic anyway.
  const int lock_fd =
      ::open((path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);

  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (lock_fd >= 0) ::close(lock_fd);
    fail("cannot create temp file", tmp);
  }

  const char* p = body.data();
  std::size_t left = body.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      if (lock_fd >= 0) ::close(lock_fd);
      fail("write failed for", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename publishes it — otherwise a
  // crash could expose a renamed-but-empty file, the exact corruption
  // the checksum exists to catch.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    if (lock_fd >= 0) ::close(lock_fd);
    fail("fsync failed for", tmp);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    if (lock_fd >= 0) ::close(lock_fd);
    fail("rename failed onto", path);
  }

  // Persist the rename itself (best effort — some filesystems refuse
  // directory fsync; the file content is already safe either way).
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  if (lock_fd >= 0) {
    ::flock(lock_fd, LOCK_UN);
    ::close(lock_fd);
  }
}

#else  // fallback for platforms without POSIX fd I/O: plain rename dance

void atomic_write_file(const std::string& path, const std::string& payload,
                       bool with_checksum) {
  const std::string body = with_checksum ? with_trailer(payload) : payload;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw io_error("cannot create temp file '" + tmp + "'");
    f << body;
    f.flush();
    if (!f) throw io_error("write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw io_error("rename failed onto '" + path + "'");
  }
}

#endif  // BSPMV_HAVE_POSIX_IO

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) throw io_error("read failed for '" + path + "'");
  std::string content = ss.str();

  // Locate the checksum trailer, if any: the *last* occurrence of the
  // newline-prefixed marker (the payload itself could contain the bytes
  // by coincidence; the CRC check below arbitrates).
  const std::string marker = std::string("\n") + kChecksumPrefix;
  const std::size_t pos = content.rfind(marker);
  if (pos == std::string::npos)
    return content;  // no trailer: legacy or externally produced file

  // Expect marker + 8 hex digits + '\n' and nothing after.
  const std::size_t hex_begin = pos + marker.size();
  if (content.size() != hex_begin + 9 || content.back() != '\n')
    throw io_error("corrupt checksum trailer in '" + path +
                   "' — file is truncated or corrupted");
  std::uint32_t stored = 0;
  {
    std::istringstream hex(content.substr(hex_begin, 8));
    hex >> std::hex >> stored;
    if (hex.fail())
      throw io_error("corrupt checksum trailer in '" + path + "'");
  }
  const std::string_view payload(content.data(), pos);
  if (crc32(payload) != stored)
    throw io_error("checksum mismatch in '" + path +
                   "' — file is truncated or corrupted");
  return std::string(payload);
}

std::string read_file_checked(const std::string& path) {
  auto content = read_file_if_exists(path);
  if (!content) throw io_error("cannot open '" + path + "'");
  return *std::move(content);
}

}  // namespace bspmv
