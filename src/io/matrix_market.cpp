#include "src/io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Header parse_header(const std::string& line) {
  std::istringstream is(line);
  std::string banner, object, fmt, field, symmetry;
  is >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw parse_error("MatrixMarket: missing %%MatrixMarket banner");
  if (lower(object) != "matrix")
    throw parse_error("MatrixMarket: only 'matrix' objects supported");
  if (lower(fmt) != "coordinate")
    throw parse_error("MatrixMarket: only 'coordinate' format supported");

  Header h;
  const std::string f = lower(field);
  if (f == "pattern") h.pattern = true;
  else if (f != "real" && f != "integer" && f != "double")
    throw parse_error("MatrixMarket: unsupported field '" + field + '\'');

  const std::string s = lower(symmetry);
  if (s == "symmetric") h.symmetric = true;
  else if (s == "skew-symmetric") { h.symmetric = true; h.skew = true; }
  else if (s != "general")
    throw parse_error("MatrixMarket: unsupported symmetry '" + symmetry + '\'');
  return h;
}

}  // namespace

namespace {

[[noreturn]] void fail_at(long long line_no, const std::string& what) {
  throw parse_error("MatrixMarket: line " + std::to_string(line_no) + ": " +
                    what);
}

bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t\r\n") == std::string::npos;
}

}  // namespace

template <class V>
Coo<V> parse_matrix_market(std::istream& in) {
  std::string line;
  long long line_no = 0;
  auto next_line = [&](std::string& out) {
    if (!std::getline(in, out)) return false;
    ++line_no;
    return true;
  };

  if (!next_line(line)) throw parse_error("MatrixMarket: empty input");
  const Header h = parse_header(line);

  // Skip comment lines.
  do {
    if (!next_line(line)) fail_at(line_no, "missing size line");
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream is(line);
    std::string extra;
    if (!(is >> rows >> cols >> entries) || (is >> extra))
      fail_at(line_no, "malformed size line '" + line + '\'');
  }
  if (rows < 0 || cols < 0 || entries < 0)
    fail_at(line_no, "negative dimensions");
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  if (rows > kMaxDim || cols > kMaxDim)
    fail_at(line_no, "dimensions overflow the 4-byte index type");
  // Both dims fit in 31 bits, so rows*cols cannot overflow long long.
  if (entries > rows * cols)
    fail_at(line_no, "declared entry count " + std::to_string(entries) +
                         " exceeds rows*cols");

  Coo<V> coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<std::size_t>(h.symmetric ? 2 * entries : entries));

  for (long long e = 0; e < entries; ++e) {
    do {
      if (!next_line(line))
        fail_at(line_no, "truncated entry list: got " + std::to_string(e) +
                             " of " + std::to_string(entries) + " entries");
    } while (is_blank(line));

    std::istringstream is(line);
    long long i = 0, j = 0;
    double v = 1.0;
    std::string extra;
    if (!(is >> i >> j)) fail_at(line_no, "malformed entry '" + line + '\'');
    if (!h.pattern && !(is >> v))
      fail_at(line_no, "entry missing numeric value: '" + line + '\'');
    if (is >> extra)
      fail_at(line_no, "trailing tokens after entry: '" + line + '\'');
    if (i < 1 || i > rows || j < 1 || j > cols)
      fail_at(line_no, "entry (" + std::to_string(i) + ", " +
                           std::to_string(j) + ") outside declared " +
                           std::to_string(rows) + "x" + std::to_string(cols));
    if (h.skew && i == j)
      fail_at(line_no, "diagonal entry in a skew-symmetric matrix");
    const index_t r = static_cast<index_t>(i - 1);
    const index_t c = static_cast<index_t>(j - 1);
    coo.add(r, c, static_cast<V>(v));
    if (h.symmetric && r != c)
      coo.add(c, r, static_cast<V>(h.skew ? -v : v));
  }

  // Anything but blank lines or comments after the declared entries means
  // the size line lied about the entry count.
  while (next_line(line)) {
    if (is_blank(line) || line[0] == '%') continue;
    fail_at(line_no, "more entries than the declared " +
                         std::to_string(entries));
  }
  return coo;
}

template <class V>
Coo<V> read_matrix_market(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw parse_error("cannot open '" + path + '\'');
  return parse_matrix_market<V>(f);
}

template <class V>
void write_matrix_market(const Coo<V>& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by blockspmv\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (const auto& e : a.entries())
    out << (e.row + 1) << ' ' << (e.col + 1) << ' '
        << static_cast<double>(e.value) << '\n';
}

template <class V>
void write_matrix_market(const Coo<V>& a, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw parse_error("cannot open '" + path + "' for writing");
  write_matrix_market(a, f);
  f.flush();
  if (!f) throw parse_error("write to '" + path + "' failed");
}

#define BSPMV_INST(V)                                             \
  template Coo<V> parse_matrix_market(std::istream&);             \
  template Coo<V> read_matrix_market(const std::string&);         \
  template void write_matrix_market(const Coo<V>&, std::ostream&); \
  template void write_matrix_market(const Coo<V>&, const std::string&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
