#include "src/parallel/task_graph.hpp"

#include <chrono>
#include <map>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bspmv {

namespace {

// Best-effort worker pinning: restrict the worker to every CPU of its
// NUMA node (not a single CPU — the OS may still balance within the
// node), so the first-touch warm-up pass and the steady-state runs see
// the same memory node. Pinning only happens on genuinely multi-node
// machines; failures (cgroup cpusets, masked CPUs) are silently ignored.
void pin_to_node(const Topology& topo, int node_index) {
#if defined(__linux__)
  if (!topo.numa_detected || topo.nodes.size() < 2) return;
  const auto& cpus = topo.nodes[static_cast<std::size_t>(node_index)].cpus;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (any) (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)topo;
  (void)node_index;
#endif
}

}  // namespace

TaskPool::TaskPool(int workers, Topology topo) : topo_(std::move(topo)) {
  BSPMV_CHECK_MSG(workers >= 1, "TaskPool needs at least one worker");
  ws_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto pw = std::make_unique<Worker>();
    // Deterministic per-worker streams: victim order varies across
    // workers and across sweeps but not across process runs.
    pw->rng = Xoshiro256(0x5eedf00dULL + 0x9e3779b97f4a7c15ULL *
                                             static_cast<std::uint64_t>(w));
    ws_.push_back(std::move(pw));
  }
  for (int w = 0; w < workers; ++w) {
    const int my_node = topo_.node_of_worker(w, workers);
    for (int v = 0; v < workers; ++v) {
      if (v == w) continue;
      if (topo_.node_of_worker(v, workers) == my_node)
        ws_[static_cast<std::size_t>(w)]->node_victims.push_back(v);
      else
        ws_[static_cast<std::size_t>(w)]->far_victims.push_back(v);
    }
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<TaskPool> TaskPool::shared(int workers) {
  BSPMV_CHECK_MSG(workers >= 1, "TaskPool needs at least one worker");
  static std::mutex reg_mu;
  // shared_ptr (not weak_ptr) on purpose: pools persist for the process.
  // If the registry dropped the last reference while an engine released
  // its own on a pool worker thread, the pool would join itself.
  static std::map<int, std::shared_ptr<TaskPool>> pools;
  std::lock_guard<std::mutex> lock(reg_mu);
  auto& slot = pools[workers];
  if (!slot) slot = std::make_shared<TaskPool>(workers);
  return slot;
}

std::shared_ptr<TaskPool::Batch> TaskPool::submit(std::vector<int> home,
                                                  TaskFn fn, DoneFn done) {
  auto b = std::make_shared<Batch>();
  b->fn = std::move(fn);
  b->home = std::move(home);
  b->done = std::move(done);
  const std::size_t n = b->home.size();
  for (int h : b->home)
    BSPMV_CHECK_MSG(h >= 0 && h < workers(),
                    "task homed on a worker outside the pool");
  b->refs.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    b->refs[i] = Batch::Ref{b.get(), static_cast<std::uint32_t>(i)};
  b->claimed = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(workers()));
  b->remaining.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  submitted_.fetch_add(n, std::memory_order_relaxed);
  if (n == 0) {
    // Nothing to schedule: complete inline on the submitter.
    if (b->done) b->done(nullptr);
    b->completed = true;
    return b;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    BSPMV_CHECK_MSG(!shutdown_, "submit on a shut-down TaskPool");
    active_.push_back(b);
    ++epoch_;
    queued_.fetch_add(static_cast<std::int64_t>(n),
                      std::memory_order_relaxed);
  }
  cv_.notify_all();
  return b;
}

void TaskPool::run(std::span<const int> home, const TaskFn& fn) {
  auto b = submit(std::vector<int>(home.begin(), home.end()), fn, nullptr);
  {
    std::unique_lock<std::mutex> lock(b->wait_mu);
    b->wait_cv.wait(lock, [&] { return b->completed; });
  }
  // `completed` orders after the last task and the error store.
  if (b->first_error) std::rethrow_exception(b->first_error);
}

void TaskPool::run_async(std::span<const int> home, TaskFn fn, DoneFn done) {
  BSPMV_CHECK_MSG(static_cast<bool>(done),
                  "run_async needs a completion callback");
  (void)submit(std::vector<int>(home.begin(), home.end()), std::move(fn),
               std::move(done));
}

void TaskPool::worker_loop(int w) {
  Worker& me = *ws_[static_cast<std::size_t>(w)];
  pin_to_node(topo_, topo_.node_of_worker(w, workers()));
  std::uint64_t seen = 0;
  std::vector<std::shared_ptr<Batch>> claim_list;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (shutdown_) return;
      if (epoch_ == seen) {
        if (queued_.load(std::memory_order_relaxed) > 0) {
          // Work may still be stealable but our last sweep lost every
          // race: nap briefly instead of spinning through the sweep.
          cv_.wait_for(lock, std::chrono::microseconds(100));
        } else {
          cv_.wait(lock, [&] {
            return shutdown_ || epoch_ != seen ||
                   queued_.load(std::memory_order_relaxed) > 0;
          });
        }
        if (shutdown_) return;
      }
      seen = epoch_;
      claim_list = active_;  // snapshot of shared_ptrs; claim outside lock
    }
    for (const auto& b : claim_list) claim(*b, w);
    claim_list.clear();
    while (try_one(me, w)) {
    }
  }
}

void TaskPool::claim(Batch& b, int w) {
  if (b.claimed[static_cast<std::size_t>(w)].exchange(
          true, std::memory_order_relaxed))
    return;  // already moved into our deque on an earlier epoch
  Worker& me = *ws_[static_cast<std::size_t>(w)];
  for (std::size_t i = 0; i < b.home.size(); ++i)
    if (b.home[i] == w) me.deque.push(&b.refs[i]);
}

bool TaskPool::try_one(Worker& me, int w) {
  if (void* r = me.deque.pop()) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    execute(r, w);
    return true;
  }
  Timer timer;  // steal latency: sweep start -> successful steal
  for (int round = 0; round < 2; ++round) {
    const auto& victims = round == 0 ? me.node_victims : me.far_victims;
    const std::size_t n = victims.size();
    if (n == 0) continue;
    const std::size_t start = me.rng.below(n);
    for (std::size_t k = 0; k < n; ++k) {
      const int victim = victims[(start + k) % n];
      me.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (void* r = ws_[static_cast<std::size_t>(victim)]->deque.steal()) {
        me.stolen.fetch_add(1, std::memory_order_relaxed);
        me.steal_ns.fetch_add(
            static_cast<std::uint64_t>(timer.elapsed() * 1e9),
            std::memory_order_relaxed);
        queued_.fetch_sub(1, std::memory_order_relaxed);
        execute(r, w);
        return true;
      }
    }
  }
  return false;
}

void TaskPool::execute(void* opaque, int w) {
  auto* ref = static_cast<Batch::Ref*>(opaque);
  Batch* b = ref->batch;
  try {
    b->fn(ref->index, w);
  } catch (...) {
    std::lock_guard<std::mutex> lock(b->err_mu);
    if (!b->first_error) b->first_error = std::current_exception();
  }
  ws_[static_cast<std::size_t>(w)]->executed.fetch_add(
      1, std::memory_order_relaxed);
  if (b->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) finish(b);
}

void TaskPool::finish(Batch* b) {
  // Keep the batch alive past the callbacks: once it leaves `active_`
  // the blocking waiter may destroy its own reference immediately.
  std::shared_ptr<Batch> self;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->get() == b) {
        self = std::move(*it);
        active_.erase(it);
        break;
      }
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(b->err_mu);
    err = b->first_error;
  }
  if (b->done) b->done(err);  // may submit the next pass; mu_ not held
  {
    std::lock_guard<std::mutex> lock(b->wait_mu);
    b->completed = true;
  }
  b->wait_cv.notify_all();
}

TaskPoolStats TaskPool::stats() const {
  TaskPoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  for (const auto& w : ws_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.stolen += w->stolen.load(std::memory_order_relaxed);
    s.steal_attempts += w->steal_attempts.load(std::memory_order_relaxed);
    s.steal_ns += w->steal_ns.load(std::memory_order_relaxed);
    s.max_queue_depth =
        std::max<std::uint64_t>(s.max_queue_depth, w->deque.max_depth());
  }
  return s;
}

void TaskPool::flush_observe() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  const TaskPoolStats now = stats();
  auto& reg = observe::CounterRegistry::instance();
  const auto delta = [&](const char* name, std::uint64_t cur,
                         std::uint64_t prev) {
    if (cur > prev) reg.add_count(name, cur - prev);
  };
  delta("task.submitted", now.submitted, flushed_.submitted);
  delta("task.executed", now.executed, flushed_.executed);
  delta("task.stolen", now.stolen, flushed_.stolen);
  delta("task.steal_attempts", now.steal_attempts, flushed_.steal_attempts);
  delta("task.steal_ns", now.steal_ns, flushed_.steal_ns);
  // Additive deltas of a monotone high-water mark: the counter's value
  // always equals the current pool-wide maximum deque depth.
  delta("task.queue_depth_max", now.max_queue_depth,
        flushed_.max_queue_depth);
  flushed_ = now;
}

#define BSPMV_INST(V)                            \
  template class TaskGraphSpmv<Csr<V>>;          \
  template class TaskGraphSpmv<Bcsr<V>>;         \
  template class TaskGraphSpmv<Bcsd<V>>;         \
  template class TaskGraphSpmv<BcsrDec<V>>;      \
  template class TaskGraphSpmv<BcsdDec<V>>;
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
