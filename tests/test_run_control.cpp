// Unit tests for the resilient-execution substrate: RunControl
// (deadline / cancellation / heartbeat), the Watchdog, the crash-safe
// atomic_write_file + checksum reader, the MAD-based robust sampler and
// the numeric health guards.
//
// Deliberately OpenMP-free (std::thread only) so the ThreadSanitizer CI
// job can run this binary without libgomp's TSan false positives; the
// engine/OpenMP integration is covered by test_engine and
// test_fault_injection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "src/profile/sampling.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/errors.hpp"
#include "src/util/numerics.hpp"
#include "src/util/run_control.hpp"

namespace bspmv {
namespace {

void sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Spin until `pred` holds or ~2 s elapse; returns whether it held.
template <class Pred>
bool eventually(Pred pred, double budget_seconds = 2.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > budget_seconds)
      return false;
    sleep_s(1e-3);
  }
  return true;
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  void write_raw(const std::string& text) const {
    std::ofstream f(path_, std::ios::binary);
    f << text;
  }
  std::string read_raw() const {
    std::ifstream f(path_, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
    return s;
  }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------
// RunControl basics
// ---------------------------------------------------------------------

TEST(RunControl, FreshControlIsLive) {
  RunControl rc;
  EXPECT_FALSE(rc.stop_requested());
  EXPECT_FALSE(rc.has_deadline());
  EXPECT_EQ(rc.reason(), AbortReason::kNone);
  EXPECT_TRUE(rc.message().empty());
  EXPECT_TRUE(std::isinf(rc.remaining_seconds()));
  EXPECT_NO_THROW(rc.check());
  EXPECT_NO_THROW(rc.throw_if_aborted());
}

TEST(RunControl, CancelThrowsCancelledError) {
  RunControl rc;
  rc.request_cancel("user hit ^C");
  EXPECT_TRUE(rc.stop_requested());
  EXPECT_EQ(rc.reason(), AbortReason::kCancelled);
  EXPECT_THROW(rc.check(), cancelled_error);
  try {
    rc.throw_if_aborted();
    FAIL() << "expected cancelled_error";
  } catch (const cancelled_error& e) {
    EXPECT_NE(std::string(e.what()).find("user hit ^C"), std::string::npos);
  }
  // cancelled_error must stay inside the execution_error family.
  EXPECT_THROW(rc.check(), execution_error);
}

TEST(RunControl, FirstAbortWins) {
  RunControl rc;
  rc.abort(AbortReason::kDeadline, "first");
  rc.abort(AbortReason::kCancelled, "second");
  EXPECT_EQ(rc.reason(), AbortReason::kDeadline);
  EXPECT_EQ(rc.message(), "first");
  EXPECT_THROW(rc.check(), timeout_error);
}

TEST(RunControl, ExpiredDeadlineThrowsTimeoutOnCheck) {
  RunControl rc;
  rc.set_deadline(5e-3);
  EXPECT_TRUE(rc.has_deadline());
  sleep_s(0.02);
  EXPECT_LT(rc.remaining_seconds(), 0.0);
  EXPECT_THROW(rc.check(), timeout_error);
  EXPECT_EQ(rc.reason(), AbortReason::kDeadline);
}

TEST(RunControl, HeartbeatsAccumulateAndFoldSlots) {
  RunControl rc;
  rc.heartbeat(0);
  rc.heartbeat(0);
  rc.heartbeat(3);
  rc.heartbeat(3 + RunControl::kThreadSlots);  // folds onto slot 3
  EXPECT_EQ(rc.beats(0), 2u);
  EXPECT_EQ(rc.beats(3), 2u);
  EXPECT_EQ(rc.total_beats(), 4u);
}

TEST(RunControl, ScopedCurrentNestsAndRestores) {
  EXPECT_EQ(RunControl::current(), nullptr);
  RunControl outer, inner;
  {
    RunControl::ScopedCurrent a(&outer);
    EXPECT_EQ(RunControl::current(), &outer);
    {
      RunControl::ScopedCurrent b(&inner);
      EXPECT_EQ(RunControl::current(), &inner);
    }
    EXPECT_EQ(RunControl::current(), &outer);
  }
  EXPECT_EQ(RunControl::current(), nullptr);
}

TEST(RunControl, AbortReasonNames) {
  EXPECT_STREQ(abort_reason_name(AbortReason::kNone), "none");
  EXPECT_STREQ(abort_reason_name(AbortReason::kCancelled), "cancelled");
  EXPECT_STREQ(abort_reason_name(AbortReason::kDeadline), "deadline");
  EXPECT_STREQ(abort_reason_name(AbortReason::kStalled), "stalled");
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, NoBudgetsIsInert) {
  RunControl rc;
  {
    Watchdog dog(rc);
    sleep_s(0.01);
  }
  EXPECT_FALSE(rc.stop_requested());
}

TEST(Watchdog, FiresDeadlineWhileWorkerNeverReadsClock) {
  // The worker only polls stop_requested() (the production granule-chunk
  // poll); only the watchdog reads the clock. Detection must land well
  // within 2x the deadline.
  RunControl rc;
  const double deadline = 0.05;
  rc.set_deadline(deadline);
  Watchdog dog(rc, /*poll_seconds=*/0.005);

  const auto t0 = std::chrono::steady_clock::now();
  std::thread worker([&] {
    while (!rc.stop_requested()) sleep_s(1e-3);
  });
  worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(rc.reason(), AbortReason::kDeadline);
  EXPECT_THROW(rc.throw_if_aborted(), timeout_error);
  EXPECT_LT(elapsed, 2 * deadline);
}

TEST(Watchdog, DetectsStalledWorker) {
  RunControl rc;
  rc.set_stall_timeout(0.05);
  Watchdog dog(rc, /*poll_seconds=*/0.005);

  // Healthy phase: keep heartbeating past the stall window — the
  // watchdog must treat progress as progress.
  for (int i = 0; i < 30; ++i) {
    rc.heartbeat(0);
    sleep_s(5e-3);
  }
  EXPECT_FALSE(rc.stop_requested());

  // Stall phase: stop heartbeating entirely.
  ASSERT_TRUE(eventually([&] { return rc.stop_requested(); }));
  EXPECT_EQ(rc.reason(), AbortReason::kStalled);
  EXPECT_THROW(rc.throw_if_aborted(), timeout_error);
  EXPECT_NE(rc.message().find("stalled"), std::string::npos);
}

TEST(Watchdog, CancellationBeatsTheWatchdog) {
  RunControl rc;
  rc.set_deadline(10.0);  // far away
  Watchdog dog(rc);
  std::thread canceller([&] {
    sleep_s(0.01);
    rc.request_cancel("shutting down");
  });
  ASSERT_TRUE(eventually([&] { return rc.stop_requested(); }));
  canceller.join();
  EXPECT_EQ(rc.reason(), AbortReason::kCancelled);
  EXPECT_THROW(rc.throw_if_aborted(), cancelled_error);
}

// ---------------------------------------------------------------------
// atomic_write_file / checksum reader
// ---------------------------------------------------------------------

TEST(AtomicFile, RoundTripsPlainPayload) {
  TempFile f("atomic_plain.json");
  atomic_write_file(f.path(), "{\"a\": 1}\n");
  const auto text = read_file_if_exists(f.path());
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "{\"a\": 1}\n");
}

TEST(AtomicFile, ReplacesExistingFileAtomically) {
  TempFile f("atomic_replace.json");
  atomic_write_file(f.path(), "old\n");
  atomic_write_file(f.path(), "new\n");
  EXPECT_EQ(read_file_checked(f.path()), "new\n");
}

TEST(AtomicFile, ChecksummedRoundTripStripsTrailer) {
  TempFile f("atomic_checksum.json");
  atomic_write_file(f.path(), "{\"bw\": 2.5e10}\n", /*with_checksum=*/true);
  const std::string raw = f.read_raw();
  EXPECT_NE(raw.find("#bspmv-crc32:"), std::string::npos);
  EXPECT_EQ(read_file_checked(f.path()), "{\"bw\": 2.5e10}\n");
}

TEST(AtomicFile, ChecksummedRoundTripIsByteExact) {
  // The trailer protocol must not disturb the payload — not even by one
  // newline — or binary payloads (spooled matrices) would corrupt.
  TempFile f("atomic_no_newline.txt");
  atomic_write_file(f.path(), "no trailing newline", /*with_checksum=*/true);
  EXPECT_EQ(read_file_checked(f.path()), "no trailing newline");

  // Hostile payload containing the trailer marker itself mid-stream.
  const std::string binary{"\x00\x01\xff\n#bspmv-crc32:\x7f", 18};
  atomic_write_file(f.path(), binary, /*with_checksum=*/true);
  EXPECT_EQ(read_file_checked(f.path()), binary);
}

TEST(AtomicFile, DetectsFlippedPayloadByte) {
  TempFile f("atomic_flip.json");
  atomic_write_file(f.path(), "{\"tb\": 1.5e-9}\n", /*with_checksum=*/true);
  std::string raw = f.read_raw();
  raw[2] ^= 0x20;  // flip a bit inside the payload
  f.write_raw(raw);
  EXPECT_THROW((void)read_file_checked(f.path()), io_error);
}

TEST(AtomicFile, DetectsTruncatedTrailer) {
  // A kill mid-write without the atomic protocol would truncate the file;
  // simulate the resulting torn trailer.
  TempFile f("atomic_truncated.json");
  atomic_write_file(f.path(), "{\"x\": 1}\n", /*with_checksum=*/true);
  std::string raw = f.read_raw();
  f.write_raw(raw.substr(0, raw.size() - 5));
  EXPECT_THROW((void)read_file_checked(f.path()), io_error);
}

TEST(AtomicFile, AcceptsLegacyFileWithoutTrailer) {
  TempFile f("atomic_legacy.json");
  f.write_raw("{\"legacy\": true}\n");
  EXPECT_EQ(read_file_checked(f.path()), "{\"legacy\": true}\n");
}

TEST(AtomicFile, MissingFileIsNulloptOrIoError) {
  TempFile f("atomic_missing.json");
  EXPECT_FALSE(read_file_if_exists(f.path()).has_value());
  EXPECT_THROW((void)read_file_checked(f.path()), io_error);
}

TEST(AtomicFile, NoTempFileSurvives) {
  TempFile f("atomic_clean.json");
  atomic_write_file(f.path(), "x\n");
  std::ifstream tmp(f.path() + ".tmp");
  EXPECT_FALSE(static_cast<bool>(tmp));
}

TEST(AtomicFile, Crc32MatchesKnownVector) {
  // The standard CRC-32 (IEEE) check value.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

// ---------------------------------------------------------------------
// robust_samples
// ---------------------------------------------------------------------

TEST(RobustSamples, CleanDrawsNeedNoRetries) {
  SamplePolicy policy;
  policy.min_samples = 4;
  policy.backoff_seconds = 0;
  int calls = 0;
  const SampleStats s =
      robust_samples([&] { ++calls; return 1.0; }, policy);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(s.retries, 0);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.accepted, 4);
  EXPECT_DOUBLE_EQ(s.best, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
}

TEST(RobustSamples, OneOutlierIsRejectedAndReplaced) {
  SamplePolicy policy;
  policy.min_samples = 3;
  policy.max_retries = 3;
  policy.backoff_seconds = 0;
  // Draw sequence: two clean, one wild (a page-fault spike), then clean.
  const std::vector<double> draws = {1.0, 1.01, 50.0, 0.99, 1.02};
  std::size_t i = 0;
  const SampleStats s = robust_samples(
      [&] { return draws[std::min(i++, draws.size() - 1)]; }, policy);
  EXPECT_GE(s.retries, 1);
  EXPECT_GE(s.rejected, 1);
  EXPECT_GE(s.accepted, 3);
  EXPECT_LT(s.best, 1.5);   // the spike never becomes the estimate
  EXPECT_LT(s.median, 1.5);
}

TEST(RobustSamples, SurvivorsWinWhenRetriesExhaust) {
  SamplePolicy policy;
  policy.min_samples = 3;
  policy.max_retries = 2;
  policy.backoff_seconds = 0;
  // Bimodal garbage: every round keeps producing outliers.
  int i = 0;
  const SampleStats s =
      robust_samples([&] { return (i++ % 2 == 0) ? 1.0 : 100.0; }, policy);
  EXPECT_EQ(s.retries, 2);
  EXPECT_GE(s.accepted, 1);  // degraded estimate, but an estimate
  EXPECT_DOUBLE_EQ(s.best, 1.0);
}

TEST(RobustSamples, HonoursCancellation) {
  SamplePolicy policy;
  policy.min_samples = 5;
  RunControl rc;
  int calls = 0;
  EXPECT_THROW(robust_samples(
                   [&] {
                     if (++calls == 2) rc.request_cancel();
                     return 1.0;
                   },
                   policy, &rc),
               cancelled_error);
  EXPECT_LT(calls, 5);
}

// ---------------------------------------------------------------------
// numeric guards
// ---------------------------------------------------------------------

TEST(Numerics, CountsAndReportsNonFinite) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(count_nonfinite(v.data(), v.size()), 0u);
  EXPECT_NO_THROW(check_finite("x", v.data(), v.size()));

  v[1] = std::numeric_limits<double>::quiet_NaN();
  v[3] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(count_nonfinite(v.data(), v.size()), 2u);
  try {
    check_finite("input vector x", v.data(), v.size());
    FAIL() << "expected numerical_error";
  } catch (const numerical_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("input vector x"), std::string::npos);
    EXPECT_NE(what.find("index 1"), std::string::npos);
    EXPECT_NE(what.find("2 of 4"), std::string::npos);
  }
}

TEST(Numerics, FingerprintIsBitExact) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = a;
  EXPECT_EQ(bits_fingerprint(a.data(), a.size()),
            bits_fingerprint(b.data(), b.size()));
  b[2] = std::nextafter(b[2], 4.0);  // one ULP
  EXPECT_NE(bits_fingerprint(a.data(), a.size()),
            bits_fingerprint(b.data(), b.size()));
  // +0.0 and -0.0 compare equal but are different bit patterns — the
  // fingerprint must distinguish them (it hashes bits, not values).
  std::vector<double> pz = {0.0}, nz = {-0.0};
  EXPECT_NE(bits_fingerprint(pz.data(), 1), bits_fingerprint(nz.data(), 1));
}

}  // namespace
}  // namespace bspmv
