#include "src/profile/block_profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/candidates.hpp"
#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/csr_delta.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/formats/vbl.hpp"
#include "src/kernels/spmv.hpp"
#include "src/profile/comm_bench.hpp"
#include "src/profile/stream_bench.hpp"
#include "src/util/macros.hpp"
#include "src/util/prng.hpp"
#include "src/util/timing.hpp"

namespace bspmv {

namespace {

template <class V>
Csr<V> make_dense(index_t n) {
  Coo<V> coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  Xoshiro256 rng(42);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      coo.add(i, j, static_cast<V>(0.5 + rng.uniform()));
  return Csr<V>::from_coo(std::move(coo));
}

// Round down to a multiple of 8 (every block dimension divides the matrix
// evenly, so profiled blocks are full-speed interior blocks), min 16.
index_t round_dim(double x) {
  auto n = static_cast<index_t>(x);
  n -= n % 8;
  return std::max<index_t>(n, 16);
}

struct Sizes {
  index_t small_n;  ///< dense matrix resident in L1
  index_t large_n;  ///< dense matrix exceeding the LLC
};

// Working set of the nof-profiling matrix relative to the effective LLC.
// The STREAM arrays are sized to the same total so the measured BW and
// the measured t_real live in the same memory regime — otherwise eq. (4)
// clamps at 0 or 1.
inline double llc_factor(bool quick) { return quick ? 1.5 : 3.0; }

template <class V>
Sizes pick_sizes(const CacheInfo& cache, bool quick) {
  const double entry = sizeof(V) + sizeof(index_t);
  // Matrix arrays at ~half of L1 leaves room for x, y and the stack.
  const auto small_n =
      round_dim(std::sqrt(static_cast<double>(cache.l1d_bytes) / 2 / entry));
  const auto large_n = round_dim(std::sqrt(
      llc_factor(quick) * static_cast<double>(cache.llc_bytes) / entry));
  return {small_n, large_n};
}

// Per-iteration wall time of fn, estimated resiliently: each sample is
// one adaptive timing window, the sample set is MAD-gated against
// outliers (a page fault, a migrated thread, a noisy neighbour) and
// contaminated rounds are retried with backoff per opt.sampling. The
// minimum of the accepted samples is the paper's "best observed" time.
double time_kernel(const std::function<void()>& fn, const ProfileOptions& opt) {
  const double window = opt.quick ? 5e-3 : 20e-3;
  SamplePolicy policy = opt.sampling;
  if (opt.quick) policy.min_samples = std::min(policy.min_samples, 2);
  const SampleStats stats = robust_samples(
      [&] { return time_adaptive(fn, window, 1).seconds_per_iter; }, policy,
      opt.control);
  return stats.best;
}

template <class V>
void profile_precision(MachineProfile& profile, const ProfileOptions& opt,
                       const CacheInfo& cache) {
  const Sizes sz = pick_sizes<V>(cache, opt.quick);
  constexpr Precision prec = precision_of<V>;

  const Csr<V> small_csr = make_dense<V>(sz.small_n);
  const Csr<V> large_csr = make_dense<V>(sz.large_n);
  aligned_vector<V> xs(static_cast<std::size_t>(sz.small_n), V{1});
  aligned_vector<V> ys(static_cast<std::size_t>(sz.small_n), V{0});
  aligned_vector<V> xl(static_cast<std::size_t>(sz.large_n), V{1});
  aligned_vector<V> yl(static_cast<std::size_t>(sz.large_n), V{0});

  const std::vector<Impl> impls =
      opt.include_simd ? std::vector<Impl>{Impl::kScalar, Impl::kSimd}
                       : std::vector<Impl>{Impl::kScalar};

  // Measure one kernel: t_b on the L1-resident matrix (eq. 2), then nof
  // on the LLC-exceeding matrix (eq. 4).
  auto profile_one = [&](const std::string& id, std::size_t nb_small,
                         std::size_t nb_large, std::size_t ws_large,
                         const std::function<void()>& run_small,
                         const std::function<void()>& run_large) {
    if (opt.control) opt.control->check();
    const double t_small = time_kernel(run_small, opt);
    const double tb = t_small / static_cast<double>(nb_small);

    const double t_real = time_kernel(run_large, opt);
    const double t_mem =
        static_cast<double>(ws_large) / profile.bandwidth_bps;
    double nof =
        (t_real - t_mem) / (static_cast<double>(nb_large) * tb);
    nof = std::clamp(nof, 0.0, 1.0);

    profile.set_kernel(prec, id, KernelProfile{tb, nof});
    if (opt.verbose)
      std::fprintf(stderr, "  [%s/%s] tb=%.3g ns  nof=%.3f\n",
                   precision_name(prec), id.c_str(), tb * 1e9, nof);
  };

  // CSR: the degenerate 1x1 blocking, nb = nnz.
  for (Impl impl : impls) {
    profile_one(
        csr_kernel_id(impl), small_csr.nnz(), large_csr.nnz(),
        large_csr.working_set_bytes(),
        [&] { spmv(small_csr, xs.data(), ys.data(), impl); },
        [&] { spmv(large_csr, xl.data(), yl.data(), impl); });
  }

  // BCSR, every shape (conversions are dropped after each measurement to
  // bound peak memory).
  for (BlockShape shape : bcsr_shapes()) {
    const Bcsr<V> ms = Bcsr<V>::from_csr(small_csr, shape);
    const Bcsr<V> ml = Bcsr<V>::from_csr(large_csr, shape);
    for (Impl impl : impls) {
      const Candidate c{FormatKind::kBcsr, shape, 0, impl};
      profile_one(
          c.kernel_id(), ms.blocks(), ml.blocks(), ml.working_set_bytes(),
          [&] { spmv(ms, xs.data(), ys.data(), impl); },
          [&] { spmv(ml, xl.data(), yl.data(), impl); });
    }
  }

  // BCSD, every diagonal length.
  for (int b : bcsd_sizes()) {
    const Bcsd<V> ms = Bcsd<V>::from_csr(small_csr, b);
    const Bcsd<V> ml = Bcsd<V>::from_csr(large_csr, b);
    for (Impl impl : impls) {
      const Candidate c{FormatKind::kBcsd, BlockShape{1, 1}, b, impl};
      profile_one(
          c.kernel_id(), ms.blocks(), ml.blocks(), ml.working_set_bytes(),
          [&] { spmv(ms, xs.data(), ys.data(), impl); },
          [&] { spmv(ml, xl.data(), yl.data(), impl); });
    }
  }

  // 1D-VBL (the models don't rank it, but the MEM model and the benches
  // can still use the numbers).
  {
    const Vbl<V> ms = Vbl<V>::from_csr(small_csr);
    const Vbl<V> ml = Vbl<V>::from_csr(large_csr);
    for (Impl impl : impls) {
      const Candidate c{FormatKind::kVbl, BlockShape{1, 1}, 0, impl};
      profile_one(
          c.id(), ms.blocks(), ml.blocks(), ml.working_set_bytes(),
          [&] { spmv(ms, xs.data(), ys.data(), impl); },
          [&] { spmv(ml, xl.data(), yl.data(), impl); });
    }
  }

  // Extension kernels: UBCSR (every shape) and delta-compressed CSR, so
  // the models can rank the extended candidate space too.
  for (BlockShape shape : bcsr_shapes()) {
    const Ubcsr<V> ms = Ubcsr<V>::from_csr(small_csr, shape);
    const Ubcsr<V> ml = Ubcsr<V>::from_csr(large_csr, shape);
    for (Impl impl : impls) {
      const Candidate c{FormatKind::kUbcsr, shape, 0, impl};
      profile_one(
          c.kernel_id(), ms.blocks(), ml.blocks(), ml.working_set_bytes(),
          [&] { spmv(ms, xs.data(), ys.data(), impl); },
          [&] { spmv(ml, xl.data(), yl.data(), impl); });
    }
  }
  {
    const CsrDelta<V> ms = CsrDelta<V>::from_csr(small_csr);
    const CsrDelta<V> ml = CsrDelta<V>::from_csr(large_csr);
    const Candidate c{FormatKind::kCsrDelta, BlockShape{1, 1}, 0,
                      Impl::kScalar};
    profile_one(
        c.id(), ms.nnz(), ml.nnz(), ml.working_set_bytes(),
        [&] { spmv(ms, xs.data(), ys.data()); },
        [&] { spmv(ml, xl.data(), yl.data()); });
  }
}

}  // namespace

MachineProfile profile_machine(const ProfileOptions& opt) {
  CacheInfo cache = opt.detect_cache ? detect_cache_info() : opt.cache;
  cache.llc_bytes = std::min(cache.llc_bytes, opt.max_effective_llc);

  MachineProfile profile;
  profile.description = "blockspmv profile (L1=" +
                        std::to_string(cache.l1d_bytes / 1024) + "KiB, LLC=" +
                        std::to_string(cache.llc_bytes / 1024 / 1024) + "MiB)";

  StreamOptions sopt;
  sopt.control = opt.control;
  // Three STREAM arrays totalling the nof matrix's working set: BW and
  // t_real are then measured in the same memory regime (see llc_factor).
  sopt.array_bytes = std::max<std::size_t>(
      static_cast<std::size_t>(llc_factor(opt.quick) *
                               static_cast<double>(cache.llc_bytes) / 3.0),
      4u << 20);
  if (opt.quick) sopt.trials = 2;
  if (opt.verbose) std::fprintf(stderr, "profiling memory bandwidth...\n");
  profile.bandwidth_bps =
      opt.bandwidth_bps > 0 ? opt.bandwidth_bps : stream_triad_bandwidth(sopt);
  profile.read_bandwidth_bps = stream_read_bandwidth(sopt);
  profile.latency_seconds =
      memory_latency_seconds(opt.quick ? (16u << 20) : (64u << 20));
  profile.effective_llc_bytes = static_cast<double>(cache.llc_bytes);
  profile.private_cache_bytes = static_cast<double>(cache.l2_bytes);
  if (opt.verbose) std::fprintf(stderr, "profiling wire comm (alpha/beta)...\n");
  const CommProfile comm = profile_comm(opt.quick);
  profile.comm_alpha_seconds = comm.alpha_seconds;
  profile.comm_beta_bps = comm.beta_bps;
  if (opt.verbose)
    std::fprintf(stderr, "BW=%.2f GiB/s read=%.2f GiB/s lat=%.0f ns\n",
                 profile.bandwidth_bps / (1u << 30),
                 profile.read_bandwidth_bps / (1u << 30),
                 profile.latency_seconds * 1e9);

  if (opt.verbose) std::fprintf(stderr, "profiling kernels (double)...\n");
  profile_precision<double>(profile, opt, cache);
  if (opt.verbose) std::fprintf(stderr, "profiling kernels (float)...\n");
  profile_precision<float>(profile, opt, cache);
  return profile;
}

MachineProfile load_or_profile(const std::string& path,
                               const ProfileOptions& opt) {
  if (auto p = MachineProfile::try_load(path)) return *p;
  MachineProfile p = profile_machine(opt);
  p.save(path);
  return p;
}

}  // namespace bspmv
