#include "src/dist/messages.hpp"

#include "src/serve/protocol.hpp"
#include "src/util/errors.hpp"

namespace bspmv::dist {

using serve::WireReader;
using serve::WireWriter;

namespace {

/// Pre-bound an element count against the payload size before the typed
/// array read allocates (the SubmitRequest::decode idiom): a hostile
/// count costs a parse_error, not an allocation.
void bound_count(std::uint64_t n, std::size_t elem_bytes,
                 std::string_view payload, const char* what) {
  if (n > payload.size() / elem_bytes)
    throw parse_error(std::string("dist payload declares more ") + what +
                      " than the frame holds");
}

}  // namespace

// -------------------------------------------------------------- ShardMsg ----

std::string ShardMsg::encode() const {
  WireWriter w;
  w.u32(rank);
  w.u32(ranks);
  w.u32(threads);
  w.u32(static_cast<std::uint32_t>(row_begin));
  w.u32(static_cast<std::uint32_t>(row_end));
  w.u32(static_cast<std::uint32_t>(x_begin));
  w.u32(static_cast<std::uint32_t>(x_end));
  w.u32(static_cast<std::uint32_t>(cols));
  w.index_array(halo_seg.data(), halo_seg.size());
  for (const auto& s : send_cols) {
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.index_array(s.data(), s.size());
  }
  w.u64(val.size());
  w.index_array(row_ptr.data(), row_ptr.size());
  w.index_array(col_ind.data(), col_ind.size());
  w.f64_array(val.data(), val.size());
  return w.take();
}

ShardMsg ShardMsg::decode(std::string_view payload) {
  WireReader r(payload);
  ShardMsg m;
  m.rank = r.u32();
  m.ranks = r.u32();
  m.threads = r.u32();
  m.row_begin = static_cast<index_t>(r.u32());
  m.row_end = static_cast<index_t>(r.u32());
  m.x_begin = static_cast<index_t>(r.u32());
  m.x_end = static_cast<index_t>(r.u32());
  m.cols = static_cast<index_t>(r.u32());
  if (m.ranks == 0 || m.rank >= m.ranks)
    throw parse_error("dist shard header has rank >= ranks");
  if (m.row_end < m.row_begin || m.x_end < m.x_begin)
    throw parse_error("dist shard header has inverted bounds");
  m.halo_seg = r.index_array(static_cast<std::size_t>(m.ranks) + 1);
  m.send_cols.resize(m.ranks);
  for (auto& s : m.send_cols) {
    const std::uint32_t n = r.u32();
    bound_count(n, 4, payload, "send columns");
    s = r.index_array(n);
  }
  const std::uint64_t nnz = r.u64();
  bound_count(nnz, 8, payload, "values");
  m.row_ptr = r.index_array(static_cast<std::size_t>(m.rows()) + 1);
  m.col_ind = r.index_array(static_cast<std::size_t>(nnz));
  m.val = r.f64_array(static_cast<std::size_t>(nnz));
  r.expect_end();
  if (!m.row_ptr.empty() &&
      m.row_ptr.back() != static_cast<index_t>(nnz))
    throw parse_error("dist shard row_ptr does not end at nnz");
  return m;
}

// ---------------------------------------------------------------- RunMsg ----

std::string RunMsg::encode() const {
  WireWriter w;
  w.u8(mode == DistMode::kOverlap ? 1 : 0);
  w.u8(impl);
  w.u32(iterations);
  w.u32(epoch);
  w.u32(first_iteration);
  w.u32(progress_every);
  w.u64(x.size());
  w.f64_array(x.data(), x.size());
  return w.take();
}

RunMsg RunMsg::decode(std::string_view payload) {
  WireReader r(payload);
  RunMsg m;
  m.mode = r.u8() ? DistMode::kOverlap : DistMode::kNaive;
  m.impl = r.u8();
  if (m.impl > 1) throw parse_error("dist run impl out of range");
  m.iterations = r.u32();
  if (m.iterations == 0) throw parse_error("dist run asks for 0 iterations");
  m.epoch = r.u32();
  m.first_iteration = r.u32();
  m.progress_every = r.u32();
  const std::uint64_t n = r.u64();
  bound_count(n, 8, payload, "x values");
  m.x = r.f64_array(static_cast<std::size_t>(n));
  r.expect_end();
  return m;
}

// --------------------------------------------------------------- DoneMsg ----

std::string DoneMsg::encode() const {
  WireWriter w;
  w.u64(y.size());
  w.f64_array(y.data(), y.size());
  w.u32(stats.iterations);
  w.f64(stats.send_seconds);
  w.f64(stats.recv_seconds);
  w.f64(stats.wait_seconds);
  w.f64(stats.local_seconds);
  w.f64(stats.halo_seconds);
  w.f64(stats.total_seconds);
  w.u64(stats.bytes_sent);
  w.u64(stats.bytes_recv);
  w.u64(stats.msgs_sent);
  w.u64(stats.msgs_recv);
  return w.take();
}

DoneMsg DoneMsg::decode(std::string_view payload) {
  WireReader r(payload);
  DoneMsg m;
  const std::uint64_t n = r.u64();
  bound_count(n, 8, payload, "y values");
  m.y = r.f64_array(static_cast<std::size_t>(n));
  m.stats.iterations = r.u32();
  m.stats.send_seconds = r.f64();
  m.stats.recv_seconds = r.f64();
  m.stats.wait_seconds = r.f64();
  m.stats.local_seconds = r.f64();
  m.stats.halo_seconds = r.f64();
  m.stats.total_seconds = r.f64();
  m.stats.bytes_sent = r.u64();
  m.stats.bytes_recv = r.u64();
  m.stats.msgs_sent = r.u64();
  m.stats.msgs_recv = r.u64();
  r.expect_end();
  return m;
}

// --------------------------------------------------------------- HaloMsg ----

std::string HaloMsg::encode() const {
  WireWriter w;
  w.u32(from);
  w.u32(epoch);
  w.u32(iter);
  w.u64(x.size());
  w.f64_array(x.data(), x.size());
  return w.take();
}

HaloMsg HaloMsg::decode(std::string_view payload) {
  WireReader r(payload);
  HaloMsg m;
  m.from = r.u32();
  m.epoch = r.u32();
  m.iter = r.u32();
  const std::uint64_t n = r.u64();
  bound_count(n, 8, payload, "halo values");
  m.x = r.f64_array(static_cast<std::size_t>(n));
  r.expect_end();
  return m;
}

// -------------------------------------------------------------- FaultMsg ----

std::string FaultMsg::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(at_iteration);
  w.f64(seconds);
  return w.take();
}

FaultMsg FaultMsg::decode(std::string_view payload) {
  WireReader r(payload);
  FaultMsg m;
  const std::uint8_t k = r.u8();
  if (k > static_cast<std::uint8_t>(FaultKind::kCorruptHaloSend))
    throw parse_error("dist fault kind out of range");
  m.kind = static_cast<FaultKind>(k);
  m.at_iteration = r.u32();
  m.seconds = r.f64();
  r.expect_end();
  return m;
}

// ----------------------------------------------------------- ProgressMsg ----

std::string ProgressMsg::encode() const {
  WireWriter w;
  w.u32(epoch);
  w.u32(done);
  return w.take();
}

ProgressMsg ProgressMsg::decode(std::string_view payload) {
  WireReader r(payload);
  ProgressMsg m;
  m.epoch = r.u32();
  m.done = r.u32();
  r.expect_end();
  return m;
}

// --------------------------------------------------------- PeerUpdateMsg ----

std::string PeerUpdateMsg::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(peers.size()));
  for (std::uint32_t p : peers) w.u32(p);
  return w.take();
}

PeerUpdateMsg PeerUpdateMsg::decode(std::string_view payload) {
  WireReader r(payload);
  PeerUpdateMsg m;
  const std::uint32_t n = r.u32();
  bound_count(n, 4, payload, "peer ids");
  m.peers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.peers.push_back(r.u32());
  r.expect_end();
  return m;
}

// ------------------------------------------------------------ DrainReply ----

std::string DrainReply::encode() const {
  WireWriter w;
  w.u64(bytes);
  return w.take();
}

DrainReply DrainReply::decode(std::string_view payload) {
  WireReader r(payload);
  DrainReply m;
  m.bytes = r.u64();
  r.expect_end();
  return m;
}

}  // namespace bspmv::dist
