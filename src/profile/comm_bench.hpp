// Wire communication micro-benchmark: the α/β parameters of the
// distributed model's t_comm(bytes, msgs) = α·msgs + bytes/β term.
//
// The measurement path is deliberately identical to the halo-exchange
// data path — length-prefixed serve-protocol frames over an AF_UNIX
// socketpair to a forked echo child — so α absorbs the real per-frame
// cost (syscalls, header parse, scheduler wakeup) and β the streaming
// copy bandwidth through the socket buffers, not idealized numbers.
#pragma once

namespace bspmv {

struct CommProfile {
  double alpha_seconds = 0.0;  ///< per-frame latency (half a small-frame RTT)
  double beta_bps = 0.0;       ///< streaming wire bandwidth, bytes/second
};

/// Measure α via empty-frame ping-pong and β via large-frame echoes
/// against a forked child. `quick` shrinks trial counts and frame sizes
/// for tests; results stay the right order of magnitude.
CommProfile profile_comm(bool quick = false);

}  // namespace bspmv
