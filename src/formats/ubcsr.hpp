// Unaligned BCSR (Vuduc & Moon [17]) — §II-A: "relaxes the above
// [alignment] restriction, in order to avoid padding". Built as an
// extension beyond the five formats the paper evaluates.
//
// Block rows remain aligned at r-row boundaries (so the output vector is
// still partitioned exactly as in BCSR), but a block's starting *column*
// is arbitrary: within each block row a greedy left-to-right scan anchors
// an r×c block at the leftmost uncovered nonzero column. On matrices
// whose dense sub-blocks are not aligned to c-column boundaries this
// roughly halves BCSR's padding at identical kernel cost.
//
// Arrays: `bval` (r·c values per block, row-major), `bcol_ind` (the
// block's starting COLUMN — not a block-column index), `brow_ptr`.
#pragma once

#include <cstddef>

#include "src/formats/block_shapes.hpp"
#include "src/formats/common.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/stats.hpp"

namespace bspmv {

template <class V>
class Ubcsr {
 public:
  Ubcsr() = default;

  static Ubcsr from_csr(const Csr<V>& a, BlockShape shape);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  BlockShape shape() const { return shape_; }
  index_t block_rows() const { return block_rows_; }
  std::size_t blocks() const { return bcol_ind_.size(); }
  std::size_t nnz() const { return nnz_; }
  std::size_t padding() const { return bval_.size() - nnz_; }

  const aligned_vector<index_t>& brow_ptr() const { return brow_ptr_; }
  /// Starting column of each block (unaligned).
  const aligned_vector<index_t>& bcol_ind() const { return bcol_ind_; }
  const aligned_vector<V>& bval() const { return bval_; }

  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_rows_ = 0;
  BlockShape shape_;
  std::size_t nnz_ = 0;
  aligned_vector<index_t> brow_ptr_;
  aligned_vector<index_t> bcol_ind_;
  aligned_vector<V> bval_;
};

/// Structural statistics of the greedy unaligned blocking (for the
/// models' working-set accounting, without materialising the format).
template <class V>
BlockStats ubcsr_stats(const Csr<V>& a, BlockShape shape);

extern template class Ubcsr<float>;
extern template class Ubcsr<double>;
extern template BlockStats ubcsr_stats(const Csr<float>&, BlockShape);
extern template BlockStats ubcsr_stats(const Csr<double>&, BlockShape);

}  // namespace bspmv
