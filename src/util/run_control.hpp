// RunControl — the cooperative execution-control primitive threaded
// through SpmvEngine::measure, the ThreadedSpmv drivers, the kernel
// profiler and the STREAM benchmarks.
//
// One RunControl carries three cooperating facilities for a run:
//
//   deadline      an absolute steady-clock point after which the run must
//                 unwind with bspmv::timeout_error. Workers never read
//                 the clock on the hot path; poll() is a single relaxed
//                 atomic load, and the clock is read only by check()
//                 (once per measurement iteration) and by the Watchdog.
//   cancellation  request_cancel() from any thread flips the stop flag;
//                 the run unwinds with bspmv::cancelled_error at the next
//                 poll point (granule-chunk boundary or iteration edge).
//   progress      heartbeat(slot) bumps a per-thread relaxed counter at
//                 granule boundaries. The Watchdog samples these; if no
//                 thread makes progress for the stall timeout it aborts
//                 the run with timeout_error ("stalled worker") instead
//                 of letting the pipeline hang.
//
// Abort is sticky and first-wins: whichever of {cancel, deadline, stall}
// fires first determines the typed error every subsequent check() throws.
// A RunControl is reusable across runs until it aborts; after an abort it
// stays aborted (callers construct a fresh one per logical attempt).
//
// RunControl::current() exposes the active control as a thread-local
// ambient pointer inside ThreadedSpmv regions, so deep code (kernels,
// fault-injection test formats) can poll cancellation without plumbing a
// parameter through every FormatOps signature.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/util/errors.hpp"

namespace bspmv {

/// Why a RunControl tripped its stop flag.
enum class AbortReason : int {
  kNone = 0,       ///< still running
  kCancelled = 1,  ///< request_cancel() — cancelled_error
  kDeadline = 2,   ///< deadline expired — timeout_error
  kStalled = 3,    ///< watchdog saw no progress — timeout_error
};

const char* abort_reason_name(AbortReason r);

class RunControl {
 public:
  /// Per-thread heartbeat slots; thread ids are folded into this range
  /// (power of two), which only ever merges progress — never loses it.
  static constexpr int kThreadSlots = 64;

  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  // --- configuration (set before handing the control to a run) ---------

  /// Arm a deadline `seconds` from now. The run aborts with
  /// timeout_error once the steady clock passes it.
  void set_deadline(double seconds);
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Seconds until the deadline (negative when expired); +inf without one.
  double remaining_seconds() const;

  /// Maximum time the Watchdog tolerates with zero heartbeat progress
  /// before declaring the run stalled; 0 disables stall detection.
  void set_stall_timeout(double seconds) { stall_timeout_ = seconds; }
  double stall_timeout() const { return stall_timeout_; }

  /// Base interval at which a Watchdog monitoring this control wakes to
  /// check the deadline and heartbeats (it still polls faster near a
  /// deadline or tight stall budget). Servers shorten it for snappy abort
  /// latency; batch sweeps lengthen it to shed wakeups.
  void set_watchdog_poll(double seconds);
  double watchdog_poll() const { return watchdog_poll_; }

  // --- cancellation ----------------------------------------------------

  /// Cooperative cancel from any thread; the run unwinds with
  /// cancelled_error at its next poll point.
  void request_cancel(const std::string& why = "cancelled by caller") {
    abort(AbortReason::kCancelled, why);
  }

  /// Trip the stop flag with a reason; first abort wins, later ones are
  /// ignored. Used by the Watchdog and by check() on deadline expiry.
  void abort(AbortReason r, const std::string& why);

  /// The cheap worker poll: one relaxed load, no clock read. True once
  /// the run must unwind.
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // --- checkpoints -----------------------------------------------------

  /// Iteration-edge checkpoint: reads the clock to enforce the deadline
  /// even without a Watchdog, then throws the typed error if aborted.
  void check();

  /// Throw cancelled_error/timeout_error matching the abort reason; no-op
  /// while the run is live. Never reads the clock.
  void throw_if_aborted() const;

  // --- progress --------------------------------------------------------

  /// Record forward progress for `slot` (OpenMP thread id or 0 for the
  /// measurement loop itself). Relaxed increment — safe at granule rate.
  void heartbeat(int slot) {
    beats_[static_cast<std::size_t>(slot) & (kThreadSlots - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }
  std::uint64_t beats(int slot) const {
    return beats_[static_cast<std::size_t>(slot) & (kThreadSlots - 1)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_beats() const;

  // --- outcome ---------------------------------------------------------

  AbortReason reason() const {
    return static_cast<AbortReason>(reason_.load(std::memory_order_acquire));
  }
  /// Human-readable abort message (empty while live).
  std::string message() const;

  // --- ambient control -------------------------------------------------

  /// The RunControl governing the current thread's work, or nullptr.
  /// Set by ThreadedSpmv inside its parallel region via ScopedCurrent.
  static RunControl* current();

  /// RAII setter for current(); restores the previous value on exit.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(RunControl* rc);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    RunControl* prev_;
  };

 private:
  std::atomic<bool> stop_{false};
  std::atomic<int> reason_{static_cast<int>(AbortReason::kNone)};
  /// Deadline as steady_clock nanoseconds-since-epoch; 0 = none.
  std::atomic<std::int64_t> deadline_ns_{0};
  double stall_timeout_ = 0.0;
  double watchdog_poll_ = 0.01;
  std::array<std::atomic<std::uint64_t>, kThreadSlots> beats_{};
  mutable std::mutex msg_mu_;
  std::string msg_;
};

/// Background monitor for one run: a thread that wakes every poll
/// interval, enforces the RunControl's deadline, and — when a stall
/// timeout is set — aborts the run if the heartbeat counters stop
/// advancing (a wedged worker, a livelocked barrier). RAII: the thread
/// is joined on destruction. Constructing a Watchdog on a control with
/// neither a deadline nor a stall timeout is a no-op (no thread spawned).
///
/// `poll_seconds <= 0` (the default) adopts the control's
/// watchdog_poll() interval, so callers tune one knob on RunControl
/// instead of plumbing an extra parameter everywhere a Watchdog spawns.
class Watchdog {
 public:
  explicit Watchdog(RunControl& control, double poll_seconds = 0.0);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  void loop();

  RunControl* control_;
  double poll_seconds_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool quit_ = false;
  std::thread thread_;
};

}  // namespace bspmv
