// Client library for the SpMV serving daemon.
//
// ServeClient wraps one Unix-socket connection to a bspmv_serve daemon
// and re-raises server-side failures as the same typed bspmv::error
// taxonomy an in-process caller would see (kError frames are decoded and
// thrown via throw_wire_error). The connection is not thread-safe; use
// one client per thread.
//
// submit_with_retry / spmv_with_retry layer the client side of the
// fault-tolerance story on top: overloaded_error and unknown-matrix
// replies are retried with exponential backoff (resubmitting the matrix
// when the server lost it to eviction or a restart), everything else
// propagates immediately — a deadline or numerical error will not heal
// by retrying.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/formats/csr.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/json.hpp"

namespace bspmv::serve {

struct RetryPolicy {
  int max_attempts = 5;
  double backoff_base_seconds = 0.01;  ///< doubles per attempt
};

class ServeClient {
 public:
  /// Connect to the daemon at `socket_path`; throws io_error when the
  /// socket is absent or refuses.
  explicit ServeClient(std::string socket_path, WireLimits limits = {});
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;

  /// Liveness probe; throws on a broken connection.
  void ping();

  /// Upload `a`; the server prepares (or finds) an engine and returns
  /// its fingerprint for later spmv() calls.
  SubmitReply submit(const Csr<double>& a);

  /// y = A·x against the engine cached under `fingerprint`.
  SpmvReply spmv(std::uint64_t fingerprint, const std::vector<double>& x,
                 double deadline_seconds = 0.0, std::uint32_t priority = 0,
                 bool check_numerics = false);

  /// Server counter snapshot (parsed JSON).
  Json stats();

  /// Ask the daemon to stop gracefully.
  void shutdown_server();

  /// submit(), retrying overloaded replies with exponential backoff.
  SubmitReply submit_with_retry(const Csr<double>& a,
                                const RetryPolicy& policy = {});

  /// spmv(), retrying overloaded replies with backoff and healing
  /// unknown-matrix replies by resubmitting `a` (eviction or server
  /// restart without a spool). Other errors propagate unchanged.
  SpmvReply spmv_with_retry(const Csr<double>& a, std::uint64_t fingerprint,
                            const std::vector<double>& x,
                            double deadline_seconds = 0.0,
                            std::uint32_t priority = 0,
                            bool check_numerics = false,
                            const RetryPolicy& policy = {});

  int fd() const { return fd_; }

 private:
  /// Send `type`+`payload`, read one reply frame, throw typed on kError,
  /// require `expect` otherwise; returns the reply payload.
  std::string roundtrip(MsgType type, const std::string& payload,
                        MsgType expect);

  int fd_ = -1;
  WireLimits limits_;
};

}  // namespace bspmv::serve
