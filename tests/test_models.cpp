// Performance-model tests: eq. (1)-(3) arithmetic against hand-computed
// values, model orderings, the MEMLAT extension and the multicore
// adaptation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/models.hpp"
#include "src/core/selector.hpp"
#include "src/core/working_set.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::synthetic_profile;

CandidateCost hand_cost() {
  CandidateCost cost;
  cost.candidate = Candidate{FormatKind::kBcsrDec, BlockShape{2, 2}, 0,
                             Impl::kScalar};
  cost.parts.push_back(CostPart{"bcsr_2x2_scalar", 1000000, 5000});
  cost.parts.push_back(CostPart{"csr_scalar", 200000, 3000});
  return cost;
}

TEST(Models, MemMatchesEquationOne) {
  const MachineProfile p = synthetic_profile(/*bw=*/1e9);
  // t = ws / BW = 1.2e6 / 1e9
  EXPECT_DOUBLE_EQ(predict_mem(hand_cost(), p), 1.2e-3);
}

TEST(Models, MemCompMatchesEquationTwo) {
  const MachineProfile p = synthetic_profile(1e9, /*tb=*/2e-9, /*nof=*/0.25);
  // t = sum(ws_i/BW + nb_i*tb) = 1.2e-3 + (5000+3000)*2e-9
  EXPECT_DOUBLE_EQ(predict_memcomp(hand_cost(), p, Precision::kDouble),
                   1.2e-3 + 8000 * 2e-9);
}

TEST(Models, OverlapMatchesEquationThree) {
  const MachineProfile p = synthetic_profile(1e9, 2e-9, 0.25);
  EXPECT_DOUBLE_EQ(predict_overlap(hand_cost(), p, Precision::kDouble),
                   1.2e-3 + 0.25 * 8000 * 2e-9);
}

TEST(Models, OrderingMemLeqOverlapLeqMemcomp) {
  // With nof in [0,1]: MEM <= OVERLAP <= MEMCOMP for any cost — MEM is the
  // paper's performance upper bound, MEMCOMP its lower bound (Fig. 3).
  const MachineProfile p = synthetic_profile(5e9, 3e-9, 0.4);
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(80, 80, 3, 0.3, 0.8, 1));
  for (const auto& cost : all_candidate_costs(a, model_candidates(true))) {
    const double mem = predict_mem(cost, p);
    const double ovl = predict_overlap(cost, p, Precision::kDouble);
    const double mc = predict_memcomp(cost, p, Precision::kDouble);
    EXPECT_LE(mem, ovl + 1e-18) << cost.candidate.id();
    EXPECT_LE(ovl, mc + 1e-18) << cost.candidate.id();
  }
}

TEST(Models, PredictDispatchesAllKinds) {
  const MachineProfile p = synthetic_profile();
  const CandidateCost cost = hand_cost();
  const IrregularityStats irr{1000, 1ull << 30, 2000};  // x >> cache
  EXPECT_DOUBLE_EQ(predict(ModelKind::kMem, cost, p, Precision::kDouble),
                   predict_mem(cost, p));
  EXPECT_DOUBLE_EQ(predict(ModelKind::kMemComp, cost, p, Precision::kDouble),
                   predict_memcomp(cost, p, Precision::kDouble));
  EXPECT_DOUBLE_EQ(predict(ModelKind::kOverlap, cost, p, Precision::kDouble),
                   predict_overlap(cost, p, Precision::kDouble));
  EXPECT_GT(predict(ModelKind::kMemLat, cost, p, Precision::kDouble, &irr),
            predict_overlap(cost, p, Precision::kDouble));
  EXPECT_THROW(predict(ModelKind::kMemLat, cost, p, Precision::kDouble),
               invalid_argument_error);
}

TEST(Models, MissingKernelProfileThrows) {
  MachineProfile p;
  p.bandwidth_bps = 1e9;
  const CandidateCost cost = hand_cost();
  EXPECT_NO_THROW(predict_mem(cost, p));  // MEM needs no kernel profile
  EXPECT_THROW(predict_memcomp(cost, p, Precision::kDouble),
               invalid_argument_error);
}

TEST(Models, MissingBandwidthThrows) {
  const MachineProfile p;  // bandwidth 0
  EXPECT_THROW(predict_mem(hand_cost(), p), invalid_argument_error);
}

TEST(Models, IrregularityDetectsScatteredColumns) {
  // Sequential row: one irregular line at the start of each row only.
  Coo<double> seq(4, 512);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 64; ++j) seq.add(i, j, 1.0);
  const auto irr_seq = irregularity_stats(Csr<double>::from_coo(seq));
  // 8 doubles per line -> 64 cols = 8 lines walked sequentially; only the
  // first access of each row is a non-sequential jump.
  EXPECT_EQ(irr_seq.irregular_lines, 4u);

  // Scattered row: every access far apart -> every access irregular.
  Coo<double> scat(1, 512);
  for (index_t j = 0; j < 512; j += 32) scat.add(0, j, 1.0);
  const auto irr_scat = irregularity_stats(Csr<double>::from_coo(scat));
  EXPECT_EQ(irr_scat.irregular_lines, 16u);
}

TEST(Models, MemLatPenalisesIrregularMatrices) {
  const MachineProfile p = synthetic_profile();
  const CandidateCost cost = hand_cost();
  const IrregularityStats low{10, 1ull << 30, 100000};
  const IrregularityStats high{100000, 1ull << 30, 100000};
  EXPECT_LT(predict(ModelKind::kMemLat, cost, p, Precision::kDouble, &low),
            predict(ModelKind::kMemLat, cost, p, Precision::kDouble, &high));
}

TEST(Models, MulticoreShrinksComputeOnly) {
  const MachineProfile p = synthetic_profile(1e9, 5e-9, 0.5);
  const CandidateCost cost = hand_cost();
  const double t1 =
      predict_multicore(ModelKind::kOverlap, cost, p, Precision::kDouble, 1);
  const double t4 =
      predict_multicore(ModelKind::kOverlap, cost, p, Precision::kDouble, 4);
  EXPECT_DOUBLE_EQ(t1, predict_overlap(cost, p, Precision::kDouble));
  EXPECT_LT(t4, t1);
  // The memory term is the floor:
  EXPECT_GE(t4, predict_mem(cost, p));
  // MEM is thread-count invariant.
  EXPECT_DOUBLE_EQ(
      predict_multicore(ModelKind::kMem, cost, p, Precision::kDouble, 4),
      predict_mem(cost, p));
}

// ------------------------------------------------------- selection ----

TEST(Selector, RanksDeterministicallyAndSorted) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(70, 70, 2, 0.4, 0.9, 2));
  const auto ranked = rank_candidates(ModelKind::kOverlap, a, p);
  ASSERT_EQ(ranked.size(), model_candidates(true).size());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].predicted_seconds, ranked[i].predicted_seconds);
  const auto again = rank_candidates(ModelKind::kOverlap, a, p);
  for (std::size_t i = 0; i < ranked.size(); ++i)
    EXPECT_EQ(ranked[i].candidate.id(), again[i].candidate.id());
}

TEST(Selector, MemModelRanksScalarOnly) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(50, 50, 2, 0.3, 0.9, 3));
  for (const auto& r : rank_candidates(ModelKind::kMem, a, p))
    EXPECT_EQ(r.candidate.impl, Impl::kScalar) << r.candidate.id();
}

TEST(Selector, PicksBlockedFormatOnPerfectlyBlockyMatrix) {
  // Under a uniform synthetic kernel profile, the ws-dominant term decides
  // — on a fully-blocky matrix a blocked format must beat CSR.
  const MachineProfile p = synthetic_profile(1e9, 1e-12, 0.0);
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(96, 96, 4, 0.5, 1.01, 4));
  const auto best = select_best(ModelKind::kOverlap, a, p);
  EXPECT_NE(best.candidate.kind, FormatKind::kCsr) << best.candidate.id();
  EXPECT_GT(best.predicted_seconds, 0.0);
}

// ------------------------------------------- executor-aware extension ----

TEST(Models, ParallelOverheadUniformWeights) {
  // 64 uniform granules, 4 threads: the bulk partition is perfect
  // (imbalance 0); the task backend over-decomposes into 4×8 = 32 tasks
  // of 2 granules each, so the straggler bound max_task/(total/P) is
  // exactly 1/tasks_per_thread, and the scheduling fee is one
  // seconds_per_task per non-empty task.
  const std::vector<std::size_t> w(64, 10);
  const auto o = parallel_overhead(w, 4, 8, 2e-6);
  EXPECT_NEAR(o.bulk_imbalance, 0.0, 1e-9);
  EXPECT_NEAR(o.task_imbalance, 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(o.steal_overhead_seconds, 32 * 2e-6, 1e-12);
}

TEST(Models, ParallelOverheadSkewedWeights) {
  // One granule carries most of the weight: both terms are dominated by
  // it. The bulk term is (heaviest part)/ideal - 1; the task term is the
  // raw straggler bound max_task/ideal, which can never drop below the
  // heavy granule's share (a granule cannot be split).
  std::vector<std::size_t> w(63, 1);
  w.push_back(400);
  const double ideal = 463.0 / 4.0;
  const auto o = parallel_overhead(w, 4);
  EXPECT_GT(o.bulk_imbalance, 0.0);
  EXPECT_GE(o.task_imbalance, 400.0 / ideal - 1e-12);
  EXPECT_GT(o.steal_overhead_seconds, 0.0);
}

TEST(Models, ParallelOverheadSingleGranule) {
  // One granule IS the whole matrix: the bulk backend wastes P-1 shares
  // (heaviest/ideal - 1 = 3) and the task straggler bound is the whole
  // runtime (max_task/ideal = P = 4).
  const std::vector<std::size_t> w = {1000};
  const auto o = parallel_overhead(w, 4);
  EXPECT_NEAR(o.bulk_imbalance, 3.0, 1e-9);
  EXPECT_NEAR(o.task_imbalance, 4.0, 1e-9);
}

TEST(Models, ParallelOverheadEmptyWeightsIsZero) {
  const std::vector<std::size_t> w;
  const auto o = parallel_overhead(w, 4);
  EXPECT_EQ(o.bulk_imbalance, 0.0);
  EXPECT_EQ(o.task_imbalance, 0.0);
  EXPECT_EQ(o.steal_overhead_seconds, 0.0);
}

TEST(Models, PredictParallelAddsBackendTerms) {
  const MachineProfile p = synthetic_profile(1e9, 2e-9, 0.25);
  const CandidateCost cost = hand_cost();
  ParallelOverhead o;
  o.bulk_imbalance = 0.5;
  o.task_imbalance = 0.1;
  o.steal_overhead_seconds = 3e-6;
  const double base =
      predict_multicore(ModelKind::kOverlap, cost, p, Precision::kDouble, 4);
  const double share =
      predict(ModelKind::kOverlap, cost, p, Precision::kDouble) / 4;
  EXPECT_DOUBLE_EQ(predict_parallel(ModelKind::kOverlap, cost, p,
                                    Precision::kDouble, 4, o,
                                    ExecBackend::kBulk),
                   base + 0.5 * share);
  EXPECT_DOUBLE_EQ(predict_parallel(ModelKind::kOverlap, cost, p,
                                    Precision::kDouble, 4, o,
                                    ExecBackend::kTasks),
                   base + 0.1 * share + 3e-6);
  // With the skew modelled above, the task backend predicts faster.
  EXPECT_LT(predict_parallel(ModelKind::kOverlap, cost, p, Precision::kDouble,
                             4, o, ExecBackend::kTasks),
            predict_parallel(ModelKind::kOverlap, cost, p, Precision::kDouble,
                             4, o, ExecBackend::kBulk));
}

// ------------------------------------------------ k-aware selection ----

TEST(Selector, WorkloadDefaultMatchesPlainRanking) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(60, 60, 2, 0.4, 0.9, 7));
  const auto plain = rank_candidates(ModelKind::kOverlap, a, p);
  const auto wl = rank_candidates(ModelKind::kOverlap, a, p, Workload{});
  ASSERT_EQ(plain.size(), wl.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].candidate.id(), wl[i].candidate.id());
    EXPECT_DOUBLE_EQ(plain[i].predicted_seconds, wl[i].predicted_seconds);
  }
}

TEST(Selector, KAwareRankingUsesSpmmPredictions) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(60, 60, 2, 0.4, 0.9, 7));
  const Workload wl{8, Layout::kRowMajor};
  const auto ranked = rank_candidates(ModelKind::kOverlap, a, p, wl);
  ASSERT_FALSE(ranked.empty());
  // Every prediction must equal predict_spmm for that candidate — the
  // k-aware path amortises the x/matrix streams over 8 vectors, so the
  // per-multiply times sit below the k=1 predictions.
  const auto costs =
      all_candidate_costs(a, model_candidates(true));
  for (const auto& r : ranked) {
    const auto it = std::find_if(costs.begin(), costs.end(),
                                 [&](const CandidateCost& c) {
                                   return c.candidate.id() == r.candidate.id();
                                 });
    ASSERT_NE(it, costs.end());
    EXPECT_DOUBLE_EQ(r.predicted_seconds,
                     predict_spmm(ModelKind::kOverlap, *it, p,
                                  Precision::kDouble, 8, Layout::kRowMajor,
                                  nullptr));
    EXPECT_LE(r.predicted_seconds / 8,
              predict(ModelKind::kOverlap, *it, p, Precision::kDouble) +
                  1e-15);
  }
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].predicted_seconds, ranked[i].predicted_seconds);
}

TEST(Selector, KAwareSelectionCanDisagreeWithSingleVector) {
  // select_best with a Workload is the same candidate as the front of
  // the k-aware ranking (and a valid candidate either way).
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(80, 80, 4, 0.5, 1.01, 11));
  const Workload wl{16, Layout::kColMajor};
  const auto best = select_best(ModelKind::kOverlap, a, p, wl);
  const auto ranked = rank_candidates(ModelKind::kOverlap, a, p, wl);
  EXPECT_EQ(best.candidate.id(), ranked.front().candidate.id());
}

TEST(Selector, RejectsNonPositiveWorkload) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(20, 20, 2, 0.4, 0.9, 13));
  EXPECT_ANY_THROW(
      rank_candidates(ModelKind::kOverlap, a, p, Workload{0}));
}

TEST(Selector, MemCompPenalisesManyBlocks) {
  // Give blocks a huge per-block time: MEMCOMP must fall back to the
  // candidate with the fewest blocks even if ws is larger.
  MachineProfile p = synthetic_profile(1e12, 1e-6, 1.0);
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(64, 64, 8, 0.4, 1.01, 5));
  const auto best = select_best(ModelKind::kMemComp, a, p);
  // The fewest-blocks candidate is a large blocked shape, never CSR
  // (nb = nnz) — and never a 1xN shape with tiny blocks.
  EXPECT_NE(best.candidate.kind, FormatKind::kCsr);
}

}  // namespace
}  // namespace bspmv
