// Structural block statistics computed without materialising a blocked
// matrix.
//
// The performance models (§IV) need, for every candidate (format, block)
// pair: the number of blocks nb, the padding, and from those the working
// set. Computing these with one cheap structural pass over CSR makes model
// evaluation orders of magnitude cheaper than converting the matrix to
// every candidate format.
#pragma once

#include <cstddef>

#include "src/formats/block_shapes.hpp"
#include "src/formats/csr.hpp"

namespace bspmv {

/// Statistics of a blocking-with-padding layout.
struct BlockStats {
  std::size_t blocks = 0;         ///< nb — number of stored blocks
  std::size_t stored_values = 0;  ///< nb · block_elems (values incl. padding)
  std::size_t covered_nnz = 0;    ///< nonzeros covered by the counted blocks

  std::size_t padding() const { return stored_values - covered_nnz; }
  /// Fill ratio: covered nonzeros / stored values (1.0 = no padding).
  double fill() const {
    return stored_values == 0
               ? 1.0
               : static_cast<double>(covered_nnz) /
                     static_cast<double>(stored_values);
  }
};

/// Statistics of a decomposed layout: full blocks + CSR remainder.
struct DecompStats {
  BlockStats full;                ///< the padding-free blocked submatrix
  std::size_t remainder_nnz = 0;  ///< nonzeros left to the CSR part
};

/// BCSR with padding: every aligned r×c block containing >= 1 nonzero.
template <class V>
BlockStats bcsr_stats(const Csr<V>& a, BlockShape shape);

/// BCSR-DEC: only completely full aligned blocks are extracted.
template <class V>
DecompStats bcsr_dec_stats(const Csr<V>& a, BlockShape shape);

/// BCSD with padding: every aligned diagonal block of length b containing
/// >= 1 nonzero.
template <class V>
BlockStats bcsd_stats(const Csr<V>& a, int b);

/// BCSD-DEC: only completely full diagonal blocks are extracted.
template <class V>
DecompStats bcsd_dec_stats(const Csr<V>& a, int b);

/// 1D-VBL: number of stored blocks (maximal runs of consecutive columns,
/// split into 255-element chunks per the one-byte blk_size entries).
template <class V>
std::size_t vbl_block_count(const Csr<V>& a);

}  // namespace bspmv
