// Unit tests for the util substrate: JSON, timing, CLI, PRNG, alignment.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "src/util/aligned.hpp"
#include "src/util/cli.hpp"
#include "src/util/json.hpp"
#include "src/util/macros.hpp"
#include "src/util/prng.hpp"
#include "src/util/timing.hpp"

namespace bspmv {
namespace {

// ------------------------------------------------------------- JSON ----

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("6.02e23").as_number(), 6.02e23);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(j.is_object());
  const auto& arr = j.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(j.at("c").as_string(), "x");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
}

TEST(Json, RoundTripsThroughDump) {
  Json j;
  j["bw"] = 3.36e9;
  j["name"] = "core2";
  j["flags"] = Json(Json::Array{Json(true), Json(1), Json("x")});
  j["nested"]["deep"] = 42;
  for (int indent : {-1, 0, 2, 4}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back, j) << "indent=" << indent;
  }
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json j(std::string("a\x01b"));
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_string(), "a\x01b");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), parse_error);
  EXPECT_THROW(Json::parse("{"), parse_error);
  EXPECT_THROW(Json::parse("[1,]"), parse_error);
  EXPECT_THROW(Json::parse("tru"), parse_error);
  EXPECT_THROW(Json::parse("1 2"), parse_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), parse_error);
  EXPECT_THROW(Json::parse("\"unterminated"), parse_error);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), parse_error);
  EXPECT_THROW(j.as_string(), parse_error);
  EXPECT_THROW(j.at("missing"), parse_error);
}

TEST(Json, AtThrowsOnMissingKey) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.at("b"), parse_error);
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("b"));
}

// ------------------------------------------------------------ Timing ----

TEST(Timing, TimerMeasuresNonNegative) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000; ++i) x += i;
  EXPECT_GE(t.elapsed(), 0.0);
}

TEST(Timing, TimeRepeatedCountsIterations) {
  int calls = 0;
  const auto r = time_repeated([&] { ++calls; }, 10, 3, 2);
  EXPECT_EQ(calls, 10 * 3 + 2);
  EXPECT_EQ(r.iterations, 30u);
  EXPECT_GE(r.seconds_per_iter, 0.0);
  EXPECT_GE(r.median_seconds, r.seconds_per_iter);
}

TEST(Timing, TimeAdaptiveGrowsBatch) {
  int calls = 0;
  const auto r = time_adaptive([&] { ++calls; }, 1e-3, 2);
  EXPECT_GT(calls, 2);  // must have grown beyond one call per batch
  EXPECT_GT(r.iterations, 2u);
}

TEST(Timing, RejectsBadArguments) {
  EXPECT_THROW(time_repeated([] {}, 0), invalid_argument_error);
  EXPECT_THROW(time_adaptive([] {}, -1.0), invalid_argument_error);
}

// --------------------------------------------------------------- CLI ----

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli;
  cli.add_option("scale", "small", "suite scale");
  cli.add_option("iters", "20", "iterations");
  cli.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--scale", "paper", "--iters=7", "--verbose",
                        "positional"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get("scale"), "paper");
  EXPECT_EQ(cli.get_int("iters"), 7);
  EXPECT_TRUE(cli.get_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApply) {
  CliParser cli;
  cli.add_option("x", "3.5", "a number");
  cli.add_flag("f", "a flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 3.5);
  EXPECT_FALSE(cli.get_flag("f"));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  CliParser cli;
  cli.add_option("known", "1", "known");
  const char* bad1[] = {"prog", "--unknown", "2"};
  EXPECT_THROW(cli.parse(3, bad1), invalid_argument_error);
  CliParser cli2;
  cli2.add_option("known", "1", "known");
  const char* bad2[] = {"prog", "--known"};
  EXPECT_THROW(cli2.parse(2, bad2), invalid_argument_error);
  CliParser cli3;
  cli3.add_option("n", "0", "int");
  const char* bad3[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli3.parse(3, bad3));
  EXPECT_THROW(cli3.get_int("n"), invalid_argument_error);
}

TEST(Cli, HelpStopsParsing) {
  CliParser cli;
  cli.add_option("x", "1", "x");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// -------------------------------------------------------------- PRNG ----

TEST(Prng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ----------------------------------------------------------- Aligned ----

TEST(Aligned, VectorDataIs64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    aligned_vector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
    aligned_vector<std::uint8_t> b(n, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  }
}

TEST(Macros, CheckThrowsWithContext) {
  try {
    BSPMV_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const invalid_argument_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("custom context"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace bspmv
