#include "src/formats/bcsr.hpp"

#include <algorithm>
#include <vector>

#include "src/formats/conversion_guard.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
Bcsr<V> Bcsr<V>::from_csr(const Csr<V>& a, BlockShape shape) {
  BSPMV_CHECK_MSG(shape.r >= 1 && shape.c >= 1, "block shape must be >= 1x1");
  const index_t n = a.rows();
  const index_t r = shape.r;
  const index_t c = shape.c;
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();

  Bcsr out;
  out.rows_ = n;
  out.cols_ = a.cols();
  out.shape_ = shape;
  out.block_rows_ = (n + r - 1) / r;
  out.nnz_ = a.nnz();
  out.brow_ptr_.assign(static_cast<std::size_t>(out.block_rows_) + 1, 0);

  // Pass 1: count distinct block columns per block row.
  std::vector<index_t> bcs;
  for (index_t br = 0; br < out.block_rows_; ++br) {
    const index_t row_end = std::min<index_t>(n, (br + 1) * r);
    bcs.clear();
    for (index_t i = br * r; i < row_end; ++i)
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        bcs.push_back(col_ind[static_cast<std::size_t>(k)] / c);
    std::sort(bcs.begin(), bcs.end());
    const auto uniq = std::unique(bcs.begin(), bcs.end()) - bcs.begin();
    out.brow_ptr_[static_cast<std::size_t>(br) + 1] =
        out.brow_ptr_[static_cast<std::size_t>(br)] +
        static_cast<index_t>(uniq);
  }

  const std::size_t nblocks =
      static_cast<std::size_t>(out.brow_ptr_.back());
  const std::size_t stored = ConversionGuard::mul(
      "bcsr", nblocks,
      static_cast<std::size_t>(r) * static_cast<std::size_t>(c));
  ConversionGuard::check("bcsr", stored, a.nnz(), sizeof(V),
                         (out.brow_ptr_.size() + nblocks) * sizeof(index_t));
  out.bcol_ind_.resize(nblocks);
  out.bval_.assign(stored, V{0});

  // Pass 2: fill bcol_ind and scatter values into padded blocks.
  for (index_t br = 0; br < out.block_rows_; ++br) {
    const index_t row_end = std::min<index_t>(n, (br + 1) * r);
    bcs.clear();
    for (index_t i = br * r; i < row_end; ++i)
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        bcs.push_back(col_ind[static_cast<std::size_t>(k)] / c);
    std::sort(bcs.begin(), bcs.end());
    bcs.erase(std::unique(bcs.begin(), bcs.end()), bcs.end());

    const std::size_t first = static_cast<std::size_t>(
        out.brow_ptr_[static_cast<std::size_t>(br)]);
    std::copy(bcs.begin(), bcs.end(), out.bcol_ind_.begin() + first);

    for (index_t i = br * r; i < row_end; ++i) {
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t j = col_ind[static_cast<std::size_t>(k)];
        const index_t bc = j / c;
        // Binary search within this block row's sorted block columns.
        const auto it = std::lower_bound(bcs.begin(), bcs.end(), bc);
        const std::size_t blk = first + static_cast<std::size_t>(it - bcs.begin());
        const std::size_t off =
            static_cast<std::size_t>(i - br * r) * static_cast<std::size_t>(c) +
            static_cast<std::size_t>(j - bc * c);
        out.bval_[blk * static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(c) +
                  off] = val[static_cast<std::size_t>(k)];
      }
    }
  }
  return out;
}

template <class V>
std::size_t Bcsr<V>::working_set_bytes() const {
  return bval_.size() * sizeof(V) + bcol_ind_.size() * sizeof(index_t) +
         brow_ptr_.size() * sizeof(index_t) +
         static_cast<std::size_t>(cols_) * sizeof(V) +
         static_cast<std::size_t>(rows_) * sizeof(V);
}

template <class V>
Coo<V> Bcsr<V>::to_coo() const {
  Coo<V> coo(rows_, cols_);
  const index_t r = shape_.r;
  const index_t c = shape_.c;
  for (index_t br = 0; br < block_rows_; ++br) {
    for (index_t blk = brow_ptr_[static_cast<std::size_t>(br)];
         blk < brow_ptr_[static_cast<std::size_t>(br) + 1]; ++blk) {
      const index_t bc = bcol_ind_[static_cast<std::size_t>(blk)];
      const V* bv = bval_.data() + static_cast<std::size_t>(blk) *
                                       static_cast<std::size_t>(r) *
                                       static_cast<std::size_t>(c);
      for (index_t rr = 0; rr < r; ++rr) {
        for (index_t cc = 0; cc < c; ++cc) {
          const V v = bv[rr * c + cc];
          const index_t i = br * r + rr;
          const index_t j = bc * c + cc;
          if (v != V{0} && i < rows_ && j < cols_) coo.add(i, j, v);
        }
      }
    }
  }
  return coo;
}

template class Bcsr<float>;
template class Bcsr<double>;

}  // namespace bspmv
