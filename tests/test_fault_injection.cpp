// Fault-injection tests: systematically corrupt every external artifact
// the pipeline consumes (Matrix Market streams, profile/cache JSON,
// in-memory CSR structures) and starve conversions of resources,
// asserting the library's fault contract — a typed bspmv::error or a
// numerically correct CSR fallback, never a crash, foreign exception,
// or silently wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "src/core/engine.hpp"
#include "src/core/selector.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/conversion_guard.hpp"
#include "src/formats/validate.hpp"
#include "src/io/matrix_market.hpp"
#include "src/profile/machine_profile.hpp"
#include "src/util/errors.hpp"
#include "tests/fault_injection.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::CsrFault;
using bspmv::testing::csr_fault_name;
using bspmv::testing::expect_typed_errors_only;
using bspmv::testing::inject_csr_fault;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;
using bspmv::testing::synthetic_profile;
using bspmv::testing::text_corruptions;

std::string serialize_mm(const Coo<double>& coo) {
  std::ostringstream os;
  write_matrix_market(coo, os);
  return os.str();
}

// ---------------------------------------------------------------------
// Matrix Market stream corruption
// ---------------------------------------------------------------------

TEST(FaultInjection, CorruptedMatrixMarketGeneral) {
  const Coo<double> coo = random_coo<double>(17, 13, 0.2, 42);
  const auto corpus = text_corruptions(serialize_mm(coo));
  ASSERT_GT(corpus.size(), 30u);
  expect_typed_errors_only(
      corpus,
      [](const std::string& text) {
        std::istringstream is(text);
        const Coo<double> parsed = parse_matrix_market<double>(is);
        // A benign corruption must still yield a structurally sound
        // matrix all the way through CSR conversion.
        const auto a = Csr<double>::from_coo(parsed);
        validate(a);
      },
      "general mm");
}

TEST(FaultInjection, CorruptedMatrixMarketSkewSymmetric) {
  // Hand-written skew-symmetric document (writer emits general only).
  const std::string base =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "4 4 3\n"
      "2 1 1.5\n"
      "3 1 -2.25\n"
      "4 2 0.75\n";
  expect_typed_errors_only(
      text_corruptions(base),
      [](const std::string& text) {
        std::istringstream is(text);
        const Coo<double> parsed = parse_matrix_market<double>(is);
        validate(parsed);
      },
      "skew-symmetric mm");
}

TEST(FaultInjection, SkewSymmetricDiagonalIsTyped) {
  const std::string doc =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 1.0\n"
      "2 2 5.0\n";
  std::istringstream is(doc);
  EXPECT_THROW(parse_matrix_market<double>(is), parse_error);
}

// ---------------------------------------------------------------------
// In-memory CSR corruption: validate() and try_prepare() must both
// reject garbage with validation_error — there is no correct executor
// for a broken matrix, so falling back would hide the corruption.
// ---------------------------------------------------------------------

TEST(FaultInjection, CorruptedCsrIsRejectedByValidate) {
  for (CsrFault fault : {CsrFault::kColumnPastEnd, CsrFault::kColumnNegative,
                         CsrFault::kColumnHuge}) {
    for (std::size_t pos : {std::size_t{0}, std::size_t{7}, std::size_t{1u << 20}}) {
      auto a = Csr<double>::from_coo(random_coo<double>(24, 24, 0.15, 5));
      ASSERT_TRUE(inject_csr_fault(a, fault, pos)) << csr_fault_name(fault);
      EXPECT_THROW(validate(a), validation_error)
          << csr_fault_name(fault) << " at " << pos;
    }
  }
}

TEST(FaultInjection, CorruptedCsrIsRejectedByTryPrepare) {
  auto a = Csr<double>::from_coo(random_coo<double>(16, 16, 0.2, 9));
  ASSERT_TRUE(inject_csr_fault(a, CsrFault::kColumnPastEnd, 3));
  EXPECT_THROW(try_prepare(a, model_candidates(true)), validation_error);
}

// ---------------------------------------------------------------------
// Resource starvation: tight ConversionGuard limits
// ---------------------------------------------------------------------

TEST(FaultInjection, PaddingBlowupRaisesResourceLimitError) {
  // A diagonal matrix blocked 8x8 stores 64 values per nonzero — cap the
  // fill ratio below that and the conversion must refuse, not allocate.
  Coo<double> coo(256, 256);
  for (index_t i = 0; i < 256; ++i) coo.add(i, i, 1.0 + i);
  const auto a = Csr<double>::from_coo(coo);

  ConversionLimits tight;
  tight.max_fill_ratio = 4.0;
  ConversionGuard::Scope scope(tight);
  EXPECT_THROW(Bcsr<double>::from_csr(a, BlockShape{8, 8}),
               resource_limit_error);
}

TEST(FaultInjection, ByteBudgetRaisesResourceLimitError) {
  const auto a =
      Csr<double>::from_coo(random_blocky_coo<double>(64, 64, 4, 0.4, 0.9, 3));
  ConversionLimits tiny;
  tiny.max_bytes = 128;  // no real matrix fits
  ConversionGuard::Scope scope(tiny);
  EXPECT_THROW(Bcsr<double>::from_csr(a, BlockShape{4, 4}),
               resource_limit_error);
}

TEST(FaultInjection, TryPrepareDegradesToCorrectCsr) {
  const Coo<double> coo = random_blocky_coo<double>(96, 96, 4, 0.3, 0.8, 11);
  const auto a = Csr<double>::from_coo(coo);

  // Starve every blocked conversion; only the 1x1 CSR fallback can fit.
  ConversionLimits tight;
  tight.max_fill_ratio = 1.0 - 1e-9;
  ConversionGuard::Scope scope(tight);

  // Blocked candidates only, so every requested candidate fails.
  std::vector<Candidate> blocked;
  for (const Candidate& c : model_candidates(true))
    if (c.kind != FormatKind::kCsr) blocked.push_back(c);
  ASSERT_FALSE(blocked.empty());

  const PreparedExecutor<double> prep = try_prepare(a, blocked);
  EXPECT_TRUE(prep.fallback);
  EXPECT_EQ(prep.failures.size(), blocked.size());
  for (const PrepareFailure& f : prep.failures)
    EXPECT_FALSE(f.reason.empty()) << f.candidate.id();
  EXPECT_EQ(prep.format.candidate().kind, FormatKind::kCsr);

  check_against_reference<double>(
      coo, [&](const double* x, double* y) { prep.format.run(x, y); },
      "csr fallback");
}

TEST(FaultInjection, TryPreparePicksFirstViableCandidate) {
  const Coo<double> coo = random_blocky_coo<double>(64, 64, 2, 0.5, 0.95, 21);
  const auto a = Csr<double>::from_coo(coo);
  const PreparedExecutor<double> prep = try_prepare(a, model_candidates(true));
  EXPECT_FALSE(prep.fallback);
  EXPECT_TRUE(prep.failures.empty());
  check_against_reference<double>(
      coo, [&](const double* x, double* y) { prep.format.run(x, y); },
      "first viable");
}

TEST(FaultInjection, SelectAndPrepareSurvivesStarvation) {
  const Coo<double> coo = random_blocky_coo<double>(80, 80, 3, 0.4, 0.85, 31);
  const auto a = Csr<double>::from_coo(coo);
  const MachineProfile profile = synthetic_profile();

  ConversionLimits tight;
  tight.max_fill_ratio = 1.0 - 1e-9;
  ConversionGuard::Scope scope(tight);

  for (ModelKind model : {ModelKind::kMem, ModelKind::kMemComp,
                          ModelKind::kOverlap, ModelKind::kMemLat}) {
    const PreparedExecutor<double> prep = select_and_prepare(model, a, profile);
    // Whatever survived must be runnable and correct.
    EXPECT_NO_THROW(prep.format.validate()) << model_name(model);
    check_against_reference<double>(
        coo, [&](const double* x, double* y) { prep.format.run(x, y); },
        std::string("select_and_prepare/") + model_name(model));
  }
}

// ---------------------------------------------------------------------
// Profile-cache JSON corruption
// ---------------------------------------------------------------------

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  void write(const std::string& text) const {
    std::ofstream f(path_);
    f << text;
  }

 private:
  std::string path_;
};

TEST(FaultInjection, CorruptedProfileJsonNeverEscapesTaxonomy) {
  const MachineProfile profile = synthetic_profile();
  const std::string base = profile.to_json().dump(2);
  const TempFile file("fault_injection_profile.json");

  for (const std::string& variant : text_corruptions(base)) {
    file.write(variant);
    // load(): strict — success or a typed error.
    try {
      (void)MachineProfile::load(file.path());
    } catch (const error&) {
      // typed: contract holds
    } catch (const std::exception& e) {
      FAIL() << "MachineProfile::load escaped taxonomy: " << e.what()
             << "\n--- variant ---\n"
             << variant;
    }
    // try_load(): total — a profile or nullopt, never a throw.
    EXPECT_NO_THROW((void)MachineProfile::try_load(file.path()));
  }
}

TEST(FaultInjection, StaleProfileSchemaTriggersReprofile) {
  const MachineProfile profile = synthetic_profile();
  Json j = profile.to_json();
  j.as_object()["schema_version"] = MachineProfile::kSchemaVersion + 1;
  const TempFile file("fault_injection_stale_profile.json");
  file.write(j.dump(2));
  EXPECT_THROW((void)MachineProfile::from_json(j), validation_error);
  EXPECT_FALSE(MachineProfile::try_load(file.path()).has_value());
}

// ---------------------------------------------------------------------
// Post-conversion invariants: every candidate that converts at all must
// produce a structure validate() accepts and a numerically correct run.
// ---------------------------------------------------------------------

TEST(FaultInjection, EveryConvertedCandidateValidatesAndRuns) {
  const Coo<double> coo = random_blocky_coo<double>(60, 52, 4, 0.35, 0.8, 77);
  const auto a = Csr<double>::from_coo(coo);

  std::vector<Candidate> all = bench_candidates(true, true);
  for (const Candidate& c : extension_candidates(true)) all.push_back(c);

  int converted = 0;
  for (const Candidate& c : all) {
    std::string reason;
    auto f = try_convert(a, c, &reason);
    if (!f) continue;  // unsupported combination — typed skip, not a bug
    ++converted;
    EXPECT_NO_THROW(f->validate()) << c.id();
    check_against_reference<double>(
        coo, [&](const double* x, double* y) { f->run(x, y); }, c.id());
  }
  EXPECT_GT(converted, 50);
}

// ---------------------------------------------------------------------
// Execution faults: stalled workers, mid-run cancellation, poisoned
// vectors. StallCsr is a CSR wrapper whose first granule range wedges
// (cooperatively — it polls the ambient RunControl, like a kernel stuck
// on a slow NUMA page would eventually be released by process death)
// so the watchdog's aggregate-progress detection can be exercised
// through the real ThreadedSpmv + measure_guarded pipeline.
// ---------------------------------------------------------------------

}  // namespace

template <class V>
class StallCsr {
 public:
  explicit StallCsr(Csr<V> a) : a_(std::move(a)) {}
  const Csr<V>& inner() const { return a_; }
  index_t rows() const { return a_.rows(); }
  index_t cols() const { return a_.cols(); }

 private:
  Csr<V> a_;
};

template <class V>
struct FormatOps<StallCsr<V>> {
  using value_type = V;
  static constexpr FormatKind kKind = FormatKind::kCsr;  // never registered
  static constexpr const char* kName = "stall_csr";
  static constexpr bool kParallel = true;
  static constexpr int kPasses = 1;

  static std::vector<std::size_t> pass_weights(const StallCsr<V>& a, int) {
    return std::vector<std::size_t>(static_cast<std::size_t>(a.rows()), 1);
  }
  static index_t pass_first_row(const StallCsr<V>&, int, index_t g) {
    return g;
  }
  static void pass_run(const StallCsr<V>& a, int, index_t g0, index_t g1,
                       const V* x, V* y, Impl) {
    if (g0 == 0) {
      // The injected stall: wedge until the run is aborted. Polling the
      // ambient control keeps the test process killable; the watchdog
      // must fire from the OUTSIDE (zero aggregate heartbeats), since a
      // stalled worker by definition never reports in.
      RunControl* rc = RunControl::current();
      while (rc != nullptr && !rc->stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (rc != nullptr) return;  // aborted: y is indeterminate, fine
    }
    for (index_t i = g0; i < g1; ++i) {
      V acc{};
      for (index_t k = a.inner().row_ptr()[static_cast<std::size_t>(i)];
           k < a.inner().row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
        acc += a.inner().val()[static_cast<std::size_t>(k)] *
               x[a.inner().col_ind()[static_cast<std::size_t>(k)]];
      y[i] += acc;
    }
  }
};

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(FaultInjection, StalledWorkerIsAbortedByStallWatchdog) {
  const auto a =
      Csr<double>::from_coo(random_coo<double>(1024, 1024, 0.01, 71));
  const StallCsr<double> m(a);
  const ThreadedSpmv<StallCsr<double>> driver(m, 2);

  RunControl rc;
  rc.set_stall_timeout(0.05);
  MeasureOptions opt;
  opt.iterations = 1;
  opt.reps = 1;
  opt.warmup = 0;
  opt.control = &rc;

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)detail::measure_guarded<double>(
                   a.rows(), a.cols(), opt,
                   [&](const double* x, double* y) {
                     driver.run(x, y, Impl::kScalar, &rc);
                   }),
               timeout_error);
  EXPECT_EQ(rc.reason(), AbortReason::kStalled);
  EXPECT_LT(seconds_since(t0), 2.0);  // detection, not a hang
}

TEST(FaultInjection, StalledWorkerIsAbortedByDeadlineWithinTwiceTheBudget) {
  const auto a =
      Csr<double>::from_coo(random_coo<double>(1024, 1024, 0.01, 72));
  const StallCsr<double> m(a);
  const ThreadedSpmv<StallCsr<double>> driver(m, 2);

  const double deadline = 0.1;
  RunControl rc;
  rc.set_deadline(deadline);
  MeasureOptions opt;
  opt.iterations = 1;
  opt.reps = 1;
  opt.warmup = 0;
  opt.control = &rc;

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)detail::measure_guarded<double>(
                   a.rows(), a.cols(), opt,
                   [&](const double* x, double* y) {
                     driver.run(x, y, Impl::kScalar, &rc);
                   }),
               timeout_error);
  EXPECT_EQ(rc.reason(), AbortReason::kDeadline);
  EXPECT_LT(seconds_since(t0), 2 * deadline);
}

TEST(FaultInjection, MidRunCancellationUnwindsThreadedMeasure) {
  const auto a =
      Csr<double>::from_coo(random_coo<double>(256, 256, 0.05, 73));
  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar}, 2);

  RunControl rc;
  MeasureOptions opt;
  opt.iterations = 500;
  opt.reps = 100000;  // would run for minutes — cancellation must cut in
  opt.control = &rc;

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    rc.request_cancel("injected mid-run cancel");
  });
  EXPECT_THROW((void)engine.measure(opt), cancelled_error);
  canceller.join();
  EXPECT_EQ(rc.reason(), AbortReason::kCancelled);
}

TEST(FaultInjection, InjectedNaNInputIsCaughtAtTheEngineBoundary) {
  const auto a =
      Csr<double>::from_coo(random_coo<double>(64, 64, 0.1, 74));
  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar}, 2);
  auto x = bspmv::testing::random_x<double>(64, 75);
  aligned_vector<double> y(64, 0.0);
  EXPECT_NO_THROW(engine.run(x.data(), y.data(), nullptr, true));
  x[40] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(engine.run(x.data(), y.data(), nullptr, true),
               numerical_error);
}

// ---------------------------------------------------------------------
// Crash-safe persistence: the machine profile is written atomically with
// a trailing checksum, so a kill mid-write (simulated by truncation)
// is detected and answered with warn-and-regenerate, never a crash or a
// silently half-loaded profile.
// ---------------------------------------------------------------------

TEST(FaultInjection, TornProfileWriteIsDetectedAndRegenerated) {
  const MachineProfile profile = synthetic_profile();
  const TempFile file("fault_injection_torn_profile.json");
  profile.save(file.path());

  std::string raw;
  {
    std::ifstream f(file.path(), std::ios::binary);
    raw.assign((std::istreambuf_iterator<char>(f)),
               std::istreambuf_iterator<char>());
  }
  ASSERT_NE(raw.find("#bspmv-crc32:"), std::string::npos);

  // Every truncation point must yield either a typed refusal (load) and
  // a nullopt (try_load) — never an escape or a half-parsed profile.
  for (const std::size_t keep :
       {raw.size() - 3, raw.size() / 2, std::size_t{7}}) {
    file.write(raw.substr(0, keep));
    EXPECT_THROW((void)MachineProfile::load(file.path()), error)
        << "keep=" << keep;
    EXPECT_FALSE(MachineProfile::try_load(file.path()).has_value())
        << "keep=" << keep;
  }

  // A flipped payload bit is caught by the checksum even though the JSON
  // may still parse.
  std::string flipped = raw;
  flipped[raw.find("bandwidth") + 1] ^= 0x1;
  file.write(flipped);
  EXPECT_THROW((void)MachineProfile::load(file.path()), io_error);
  EXPECT_FALSE(MachineProfile::try_load(file.path()).has_value());

  // And the regenerate path: save over the corpse, load round-trips.
  profile.save(file.path());
  const auto reloaded = MachineProfile::try_load(file.path());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_DOUBLE_EQ(reloaded->bandwidth_bps, profile.bandwidth_bps);
}

}  // namespace
}  // namespace bspmv
