#include "src/kernels/spmm_kernels.hpp"

#include <algorithm>
#include <array>
#include <type_traits>

#include "src/formats/block_shapes.hpp"
#include "src/kernels/simd.hpp"
#include "src/util/macros.hpp"

namespace bspmv {
namespace {

/// Largest right-hand-side chunk processed per pass over the matrix.
/// Bounds the stack accumulator buffers while letting any k through:
/// the dispatcher splits k into power-of-two chunks (16, 8, 4, 2, 1),
/// so the chunk width is a compile-time constant — the per-nonzero
/// multiply-add loops fully unroll and the row accumulators stay in
/// registers. k > kRhsChunk simply re-streams the matrix per chunk,
/// still k/kRhsChunk× better than single-vector.
constexpr int kRhsChunk = 16;

/// Split [0, k) into power-of-two chunks and call
/// `fn(integral_constant<int, JN>, j0)` for each: one matrix pass per
/// chunk, widest chunks first (k = 7 → 4, 2, 1).
template <class Fn>
void for_each_rhs_chunk(int k, Fn&& fn) {
  int j0 = 0;
  while (j0 < k) {
    const int rem = k - j0;
    if (rem >= 16) {
      fn(std::integral_constant<int, 16>{}, j0);
      j0 += 16;
    } else if (rem >= 8) {
      fn(std::integral_constant<int, 8>{}, j0);
      j0 += 8;
    } else if (rem >= 4) {
      fn(std::integral_constant<int, 4>{}, j0);
      j0 += 4;
    } else if (rem >= 2) {
      fn(std::integral_constant<int, 2>{}, j0);
      j0 += 2;
    } else {
      fn(std::integral_constant<int, 1>{}, j0);
      j0 += 1;
    }
  }
}

/// Write a finished accumulator row to Y: += in accumulate mode, plain
/// store in overwrite mode (the full-multiply fast path).
template <class V, bool Acc, int JN>
BSPMV_ALWAYS_INLINE void flush_row(V* BSPMV_RESTRICT yp,
                                   const V* BSPMV_RESTRICT sp) {
  for (int j = 0; j < JN; ++j) {
    if constexpr (Acc)
      yp[j] += sp[j];
    else
      yp[j] = sp[j];
  }
}

/// sum[0..JN) += v · xp[0..JN). The one inner primitive every SpMM
/// kernel shares: per-j order is a single multiply-add, so the SIMD
/// flavour (lanes = vectors) is bitwise identical to the scalar one.
template <class V, bool Simd, int JN>
BSPMV_ALWAYS_INLINE void axpy_rhs(V v, const V* BSPMV_RESTRICT xp,
                                  V* BSPMV_RESTRICT sum) {
  if constexpr (Simd && JN >= simd_width<V>) {
    constexpr int w = simd_width<V>;
    const simd_t<V> vv = simd_broadcast(v);
    int j = 0;
    for (; j + w <= JN; j += w) {
      simd_t<V> s = simd_loadu(sum + j);
      s += vv * simd_loadu(xp + j);
      simd_storeu(sum + j, s);
    }
    for (; j < JN; ++j) sum[j] += v * xp[j];
  } else {
    for (int j = 0; j < JN; ++j) sum[j] += v * xp[j];
  }
}

template <class V, bool Simd, bool Acc, int JN>
void csr_spmm_rm_chunk(const Csr<V>& a, index_t row0, index_t row1,
                       const V* BSPMV_RESTRICT X, V* BSPMV_RESTRICT Y,
                       int k, int j0) {
  const index_t* BSPMV_RESTRICT row_ptr = a.row_ptr().data();
  const index_t* BSPMV_RESTRICT col_ind = a.col_ind().data();
  const V* BSPMV_RESTRICT val = a.val().data();

  for (index_t i = row0; i < row1; ++i) {
    V sum[JN] = {};
    const index_t hi = row_ptr[i + 1];
    for (index_t t = row_ptr[i]; t < hi; ++t)
      axpy_rhs<V, Simd, JN>(
          val[t], X + static_cast<std::size_t>(col_ind[t]) * k + j0, sum);
    flush_row<V, Acc, JN>(Y + static_cast<std::size_t>(i) * k + j0, sum);
  }
}

template <class V, int R, int C, bool Simd, bool Acc, int JN>
void bcsr_spmm_rm_range(const Bcsr<V>& a, index_t br0, index_t br1,
                        const V* BSPMV_RESTRICT X, V* BSPMV_RESTRICT Y,
                        int k, int j0) {
  BSPMV_DBG_ASSERT(a.shape().r == R && a.shape().c == C);
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const V* BSPMV_RESTRICT bval = a.bval().data();
  const index_t n = a.rows();
  const index_t m = a.cols();

  for (index_t br = br0; br < br1; ++br) {
    // One accumulator row per block row, same shape as the scalar
    // kernel's sum[R] — with R, C and JN compile-time the loops unroll
    // and the accumulators stay in registers (the whole point of the
    // bcsr_kernel-style shape dispatch). Padded rows accumulate only
    // padding zeros and are dropped at writeback.
    V sum[R * JN] = {};
    const index_t b1 = brow_ptr[br + 1];
    for (index_t blk = brow_ptr[br]; blk < b1; ++blk) {
      const V* bv = bval + static_cast<std::size_t>(blk) * (R * C);
      const index_t jc0 = bcol_ind[blk] * C;
      if (jc0 + C <= m) {
        for (int rr = 0; rr < R; ++rr)
          for (int cc = 0; cc < C; ++cc)
            axpy_rhs<V, Simd, JN>(
                bv[rr * C + cc],
                X + static_cast<std::size_t>(jc0 + cc) * k + j0,
                sum + rr * JN);
      } else {
        // Right-edge block: clamp the column range (the out-of-range
        // slots hold only padding), exactly like bcsr_spmv_range.
        for (int rr = 0; rr < R; ++rr)
          for (index_t cc = 0; jc0 + cc < m; ++cc)
            axpy_rhs<V, Simd, JN>(
                bv[rr * C + cc],
                X + static_cast<std::size_t>(jc0 + cc) * k + j0,
                sum + rr * JN);
      }
    }
    const index_t row0 = br * R;
    const int rmax = static_cast<int>(
        std::min<index_t>(static_cast<index_t>(R), n - row0));
    for (int rr = 0; rr < rmax; ++rr)
      flush_row<V, Acc, JN>(Y + static_cast<std::size_t>(row0 + rr) * k + j0,
                            sum + rr * JN);
  }
}

/// Compile-time shape dispatch table per (Simd, JN), mirroring
/// bcsr_kernels_impl.hpp's BcsrTable; entries with r·c > 8 stay null.
template <class V>
using BcsrSpmmFn = void (*)(const Bcsr<V>&, index_t, index_t, const V*, V*,
                            int, int);

template <class V, bool Simd, bool Acc, int JN>
struct BcsrSpmmTable {
  std::array<std::array<BcsrSpmmFn<V>, kMaxBlockElems>, kMaxBlockElems> fn{};

  constexpr BcsrSpmmTable() { fill_r<1>(); }

 private:
  template <int R>
  constexpr void fill_r() {
    fill_c<R, 1>();
    if constexpr (R < kMaxBlockElems) fill_r<R + 1>();
  }
  template <int R, int C>
  constexpr void fill_c() {
    if constexpr (R * C <= kMaxBlockElems)
      fn[R - 1][C - 1] = &bcsr_spmm_rm_range<V, R, C, Simd, Acc, JN>;
    if constexpr (C < kMaxBlockElems) fill_c<R, C + 1>();
  }
};

template <class V, bool Simd, bool Acc, int JN>
void bcsr_spmm_rm_chunk(const Bcsr<V>& a, index_t br0, index_t br1,
                        const V* X, V* Y, int k, int j0) {
  static constexpr BcsrSpmmTable<V, Simd, Acc, JN> kTable{};
  const BlockShape shape = a.shape();
  BSPMV_CHECK_MSG(shape.r >= 1 && shape.r <= kMaxBlockElems &&
                      shape.c >= 1 && shape.c <= kMaxBlockElems &&
                      shape.elems() <= kMaxBlockElems,
                  "unsupported BCSR block shape " + shape.to_string());
  const BcsrSpmmFn<V> fn =
      kTable.fn[static_cast<std::size_t>(shape.r - 1)]
               [static_cast<std::size_t>(shape.c - 1)];
  BSPMV_DBG_ASSERT(fn != nullptr);
  fn(a, br0, br1, X, Y, k, j0);
}

template <class V, bool Simd, bool Acc, int JN>
void bcsd_spmm_rm_chunk(const Bcsd<V>& a, index_t seg0, index_t seg1,
                        const V* BSPMV_RESTRICT X, V* BSPMV_RESTRICT Y,
                        int k, int j0) {
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const index_t* BSPMV_RESTRICT nfull = a.full_diags().data();
  const V* BSPMV_RESTRICT bval = a.bval().data();
  const int b = a.b();
  const index_t n = a.rows();
  const index_t m = a.cols();

  for (index_t s = seg0; s < seg1; ++s) {
    const index_t base = s * b;
    const index_t d0 = brow_ptr[s];
    const index_t d1 = brow_ptr[s + 1];
    const index_t dfull = d0 + nfull[s];

    if (dfull > d0) {
      // Fast path mirrors bcsd_spmv_range: fully in-range diagonals
      // accumulate into a per-segment buffer, flushed once (overwrite
      // mode stores instead of adding).
      V sum[kMaxBlockElems * JN] = {};
      for (index_t d = d0; d < dfull; ++d) {
        const V* bv = bval + static_cast<std::size_t>(d) * b;
        const std::size_t xbase = static_cast<std::size_t>(bcol_ind[d]);
        for (int e = 0; e < b; ++e)
          axpy_rhs<V, Simd, JN>(
              bv[e], X + (xbase + static_cast<std::size_t>(e)) * k + j0,
              sum + e * JN);
      }
      // Any full diagonal implies base + b <= n, so the flush needs no
      // row clamp — and in overwrite mode it initialises every row the
      // boundary loop below may touch.
      for (int e = 0; e < b; ++e)
        flush_row<V, Acc, JN>(Y + static_cast<std::size_t>(base + e) * k + j0,
                              sum + e * JN);
    } else if constexpr (!Acc) {
      // No full diagonal flushed this segment: in overwrite mode the
      // boundary accumulation below needs zeroed rows to land on.
      const index_t rmax = std::min<index_t>(base + b, n);
      for (index_t r = base; r < rmax; ++r) {
        V* yp = Y + static_cast<std::size_t>(r) * k + j0;
        for (int j = 0; j < JN; ++j) yp[j] = V(0);
      }
    }

    // Boundary diagonals accumulate straight into Y, clamped, same as
    // the single-vector kernel.
    for (index_t d = dfull; d < d1; ++d) {
      const V* bv = bval + static_cast<std::size_t>(d) * b;
      const long long jc0 = bcol_ind[d];
      const int emin = static_cast<int>(std::max<long long>(0, -jc0));
      const int emax = static_cast<int>(std::min<long long>(
          {b, static_cast<long long>(n) - base,
           static_cast<long long>(m) - jc0}));
      for (int e = emin; e < emax; ++e)
        axpy_rhs<V, Simd, JN>(
            bv[e], X + static_cast<std::size_t>(jc0 + e) * k + j0,
            Y + static_cast<std::size_t>(base + e) * k + j0);
    }
  }
}

template <class V, bool Simd, bool Acc, int JN>
void vbl_spmm_rm_chunk(const Vbl<V>& a, const V* BSPMV_RESTRICT X,
                       V* BSPMV_RESTRICT Y, int k, int j0) {
  const index_t* BSPMV_RESTRICT row_ptr = a.row_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const blk_size_t* BSPMV_RESTRICT blk_size = a.blk_size().data();
  const V* BSPMV_RESTRICT val = a.val().data();
  const index_t n = a.rows();

  std::size_t blk = 0;
  for (index_t i = 0; i < n; ++i) {
    V sum[JN] = {};
    index_t t = row_ptr[i];
    const index_t hi = row_ptr[i + 1];
    while (t < hi) {
      const std::size_t xbase = static_cast<std::size_t>(bcol_ind[blk]);
      const int size = blk_size[blk];
      for (int e = 0; e < size; ++e)
        axpy_rhs<V, Simd, JN>(
            val[t + e], X + (xbase + static_cast<std::size_t>(e)) * k + j0,
            sum);
      t += size;
      ++blk;
    }
    flush_row<V, Acc, JN>(Y + static_cast<std::size_t>(i) * k + j0, sum);
  }
  BSPMV_DBG_ASSERT(blk == a.blocks());
}

static_assert(kRhsChunk == 16, "dispatcher chunks assume kRhsChunk == 16");

/// Expand the runtime (simd, accumulate) pair into the four
/// compile-time kernel flavours inside a chunk-dispatch lambda.
#define BSPMV_SPMM_DISPATCH(chunk_fn, ...)                                  \
  for_each_rhs_chunk(k, [&](auto jn, int j0) {                              \
    if (simd) {                                                             \
      if (accumulate)                                                       \
        chunk_fn<V, true, true, jn()>(__VA_ARGS__, k, j0);                  \
      else                                                                  \
        chunk_fn<V, true, false, jn()>(__VA_ARGS__, k, j0);                 \
    } else {                                                                \
      if (accumulate)                                                       \
        chunk_fn<V, false, true, jn()>(__VA_ARGS__, k, j0);                 \
      else                                                                  \
        chunk_fn<V, false, false, jn()>(__VA_ARGS__, k, j0);                \
    }                                                                       \
  })

}  // namespace

template <class V>
void csr_spmm_rm(const Csr<V>& a, index_t row0, index_t row1, const V* X,
                 V* Y, int k, bool simd, bool accumulate) {
  BSPMV_DBG_ASSERT(row0 >= 0 && row1 <= a.rows() && row0 <= row1 && k >= 1);
  // Chunks cover disjoint j-columns, so the accumulate flag applies
  // uniformly: each Y element belongs to exactly one chunk.
  BSPMV_SPMM_DISPATCH(csr_spmm_rm_chunk, a, row0, row1, X, Y);
}

template <class V>
void bcsr_spmm_rm(const Bcsr<V>& a, index_t br0, index_t br1, const V* X,
                  V* Y, int k, bool simd, bool accumulate) {
  BSPMV_DBG_ASSERT(br0 >= 0 && br1 <= a.block_rows() && br0 <= br1 && k >= 1);
  BSPMV_SPMM_DISPATCH(bcsr_spmm_rm_chunk, a, br0, br1, X, Y);
}

template <class V>
void bcsd_spmm_rm(const Bcsd<V>& a, index_t seg0, index_t seg1, const V* X,
                  V* Y, int k, bool simd, bool accumulate) {
  BSPMV_DBG_ASSERT(seg0 >= 0 && seg1 <= a.segments() && seg0 <= seg1 &&
                   k >= 1);
  BSPMV_SPMM_DISPATCH(bcsd_spmm_rm_chunk, a, seg0, seg1, X, Y);
}

template <class V>
void vbl_spmm_rm(const Vbl<V>& a, const V* X, V* Y, int k, bool simd,
                 bool accumulate) {
  BSPMV_DBG_ASSERT(k >= 1);
  BSPMV_SPMM_DISPATCH(vbl_spmm_rm_chunk, a, X, Y);
}

#undef BSPMV_SPMM_DISPATCH

#define BSPMV_INST(V)                                                       \
  template void csr_spmm_rm(const Csr<V>&, index_t, index_t, const V*, V*,  \
                            int, bool, bool);                               \
  template void bcsr_spmm_rm(const Bcsr<V>&, index_t, index_t, const V*,    \
                             V*, int, bool, bool);                          \
  template void bcsd_spmm_rm(const Bcsd<V>&, index_t, index_t, const V*,    \
                             V*, int, bool, bool);                          \
  template void vbl_spmm_rm(const Vbl<V>&, const V*, V*, int, bool, bool);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
