// Ablation: the two working-set-reduction families beyond the paper's
// five formats — unaligned blocking (UBCSR [17]) and index compression
// (delta-coded CSR, the [10]/[18] class) — against CSR and aligned BCSR
// on a few representative suite matrices. Reports working sets and
// measured times (dp).
#include <cstdio>

#include "bench/harness.hpp"
#include "src/core/working_set.hpp"
#include "src/formats/stats.hpp"

using namespace bspmv;
using namespace bspmv::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;

  // Default: a blocked FEM matrix (#21), an unaligned-friendly one (#22),
  // a clustered-rows one (#15) and an irregular one (#12).
  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty()) ids = {21, 22, 15, 12};

  std::printf("Extension-format ablation: unaligned blocking and index "
              "compression (double precision, scale=%s)\n",
              suite_scale_name(cfg.scale));
  print_rule(112);
  std::printf("%-18s | %-21s | %10s %10s | %10s %10s %10s %10s\n", "matrix",
              "best shape (pad a/u)", "ws csr", "ws delta", "csr(ms)",
              "bcsr(ms)", "ubcsr(ms)", "delta(ms)");
  print_rule(112);

  for (int id : ids) {
    const Csr<double> a = build_suite_csr<double>(id, cfg.scale);

    // Shape with the best aligned fill (what a tuner would use).
    BlockShape best_shape{2, 2};
    double best_fill = 0.0;
    for (BlockShape s : bcsr_shapes()) {
      if (s.elems() < 2) continue;
      const double f = bcsr_stats(a, s).fill();
      if (f > best_fill) {
        best_fill = f;
        best_shape = s;
      }
    }
    const BlockStats aligned = bcsr_stats(a, best_shape);
    const BlockStats unaligned = ubcsr_stats(a, best_shape);

    auto measure = [&](const Candidate& c) {
      const AnyFormat<double> f = AnyFormat<double>::convert(a, c);
      return measure_spmv_seconds(f, cfg.measure) * 1e3;
    };
    const double t_csr = measure(Candidate{});
    const double t_bcsr =
        measure(Candidate{FormatKind::kBcsr, best_shape, 0, Impl::kSimd});
    const double t_ubcsr =
        measure(Candidate{FormatKind::kUbcsr, best_shape, 0, Impl::kSimd});
    const Candidate delta{FormatKind::kCsrDelta, BlockShape{1, 1}, 0,
                          Impl::kScalar};
    const double t_delta = measure(delta);
    const double ws_csr =
        static_cast<double>(a.working_set_bytes()) / (1 << 20);
    const double ws_delta =
        static_cast<double>(candidate_cost(a, delta).total_ws()) / (1 << 20);

    char shape_info[64];
    std::snprintf(shape_info, sizeof shape_info, "%s (%4.1f%%/%4.1f%%)",
                  best_shape.to_string().c_str(),
                  100.0 * static_cast<double>(aligned.padding()) /
                      static_cast<double>(aligned.stored_values),
                  100.0 * static_cast<double>(unaligned.padding()) /
                      static_cast<double>(unaligned.stored_values));
    std::printf("%02d.%-15s | %-21s | %9.1fM %9.1fM | %10.3f %10.3f %10.3f "
                "%10.3f\n",
                id, suite_catalog()[static_cast<size_t>(id - 1)].name.c_str(),
                shape_info, ws_csr, ws_delta, t_csr, t_bcsr, t_ubcsr,
                t_delta);
  }
  print_rule(112);
  std::printf("expected shape: UBCSR pads no more than BCSR (and wins when "
              "blocks are unaligned); delta compression shrinks ws but pays "
              "decode cost\n");
  return 0;
}
