// Matrix Market (.mtx) coordinate-format I/O.
//
// The paper's suite comes from Tim Davis' collection, which is distributed
// in this format; the reader lets users run every harness on the original
// matrices when they have them. Supports real / integer / pattern fields
// and general / symmetric / skew-symmetric symmetry (pattern entries get
// value 1, symmetric entries are mirrored, diagonals not duplicated).
#pragma once

#include <iosfwd>
#include <string>

#include "src/formats/coo.hpp"

namespace bspmv {

template <class V>
Coo<V> parse_matrix_market(std::istream& in);

template <class V>
Coo<V> read_matrix_market(const std::string& path);

template <class V>
void write_matrix_market(const Coo<V>& a, std::ostream& out);

template <class V>
void write_matrix_market(const Coo<V>& a, const std::string& path);

#define BSPMV_DECL(V)                                      \
  extern template Coo<V> parse_matrix_market(std::istream&); \
  extern template Coo<V> read_matrix_market(const std::string&); \
  extern template void write_matrix_market(const Coo<V>&, std::ostream&); \
  extern template void write_matrix_market(const Coo<V>&, const std::string&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
