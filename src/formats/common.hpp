// Shared typedefs for every sparse storage format.
#pragma once

#include <cstdint>

#include "src/util/aligned.hpp"

namespace bspmv {

/// Index type for all indexing structures. The paper uses four-byte
/// integers; we match it (and the working-set accounting assumes it).
using index_t = std::int32_t;

/// 1D-VBL block-size entry type: the paper uses one-byte entries, limiting
/// blocks to 255 elements (larger blocks are split).
using blk_size_t = std::uint8_t;
inline constexpr int kVblMaxBlock = 255;

/// Floating-point precision of a kernel configuration — the paper
/// evaluates 'sp' (float) and 'dp' (double) throughout.
enum class Precision { kSingle, kDouble };

inline const char* precision_name(Precision p) {
  return p == Precision::kSingle ? "sp" : "dp";
}

template <class V>
inline constexpr Precision precision_of =
    sizeof(V) == sizeof(float) ? Precision::kSingle : Precision::kDouble;

}  // namespace bspmv
