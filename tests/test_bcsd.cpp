// BCSD format and kernel tests: segment alignment, boundary diagonals,
// the full-diagonal fast-path prefix, and kernel-vs-reference sweeps.
#include <gtest/gtest.h>

#include "src/formats/bcsd.hpp"
#include "src/kernels/bcsd_kernels.hpp"
#include "src/kernels/spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_coo;

TEST(Bcsd, HandExampleDiagonals) {
  // 4x4, b = 2. Segment 0 (rows 0-1): entries (0,0),(1,1) share diagonal
  // j0=0; (0,2) has j0=2. Segment 1 (rows 2-3): (2,3),(3,0).
  Coo<double> coo(4, 4);
  coo.add(0, 0, 1);
  coo.add(1, 1, 2);
  coo.add(0, 2, 3);
  coo.add(2, 3, 4);
  coo.add(3, 0, 5);
  const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), 2);
  EXPECT_EQ(m.segments(), 2);
  EXPECT_EQ(m.blocks(), 4u);   // diagonals: {0, 2} in seg0, {3, -1} in seg1
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_EQ(m.padding(), 3u);  // 4 diagonals * 2 - 5
  // Segment 0: both diagonals start in range; j0=0 full, j0=2 full (cols 2,3).
  EXPECT_EQ(m.full_diags()[0], 2);
  // Segment 1: j0=3 partial (cols 3,4 -> 4 out of range), j0=-1 partial.
  EXPECT_EQ(m.full_diags()[1], 0);
}

TEST(Bcsd, SegmentAlignmentIsEnforced) {
  // An entry at row 5 with b=4 belongs to the segment starting at row 4,
  // so its diagonal start column is col - (5-4).
  Coo<double> coo(8, 8);
  coo.add(5, 3, 9.0);
  const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), 4);
  ASSERT_EQ(m.blocks(), 1u);
  EXPECT_EQ(m.bcol_ind()[0], 2);  // j0 = 3 - 1 = 2
  EXPECT_DOUBLE_EQ(m.bval()[1], 9.0);  // element k=1 (row 5 = base 4 + 1)
}

TEST(Bcsd, NegativeStartColumnDiagonal) {
  // Entry (3,0) with b=4: j0 = 0 - 3 = -3, a boundary diagonal.
  Coo<double> coo(4, 4);
  coo.add(3, 0, 2.5);
  const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), 4);
  ASSERT_EQ(m.blocks(), 1u);
  EXPECT_EQ(m.bcol_ind()[0], -3);
  EXPECT_EQ(m.full_diags()[0], 0);
  // Kernel must still produce the right product without out-of-range reads.
  const double x[] = {10, 0, 0, 0};
  double y[4];
  spmv(m, x, y);
  EXPECT_DOUBLE_EQ(y[3], 25.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(Bcsd, FullDiagPrefixInvariant) {
  const Coo<double> coo = random_coo<double>(70, 60, 0.08, 17);
  for (int b : bcsd_sizes()) {
    const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), b);
    for (index_t s = 0; s < m.segments(); ++s) {
      const index_t d0 = m.brow_ptr()[static_cast<std::size_t>(s)];
      const index_t d1 = m.brow_ptr()[static_cast<std::size_t>(s) + 1];
      const index_t nfull = m.full_diags()[static_cast<std::size_t>(s)];
      ASSERT_LE(nfull, d1 - d0);
      for (index_t d = d0; d < d1; ++d) {
        const index_t j0 = m.bcol_ind()[static_cast<std::size_t>(d)];
        const bool full = j0 >= 0 && j0 + b <= m.cols() && s * b + b <= m.rows();
        EXPECT_EQ(full, d - d0 < nfull)
            << "b=" << b << " seg=" << s << " d=" << d;
      }
    }
  }
}

TEST(Bcsd, RoundTripPreservesEntries) {
  Coo<double> coo = random_coo<double>(33, 29, 0.12, 5);
  coo.sort_and_combine();
  for (int b : {2, 3, 5, 8}) {
    Coo<double> back =
        Bcsd<double>::from_csr(Csr<double>::from_coo(coo), b).to_coo();
    back.sort_and_combine();
    ASSERT_EQ(back.nnz(), coo.nnz()) << "b=" << b;
    for (std::size_t k = 0; k < coo.nnz(); ++k)
      EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
  }
}

struct BcsdCase {
  int b;
  bool simd;
};

class BcsdKernels : public ::testing::TestWithParam<BcsdCase> {};

TEST_P(BcsdKernels, DoubleMatchesReference) {
  const auto [b, simd] = GetParam();
  // 53 rows: not a multiple of any b in 2..8 -> exercises the last short
  // segment; dense near-diagonal structure creates full diagonals.
  Coo<double> coo(53, 49);
  Xoshiro256 rng(41);
  for (index_t i = 0; i < 53; ++i) {
    for (index_t off = -2; off <= 2; ++off) {
      const index_t j = i + off;
      if (j >= 0 && j < 49 && rng.uniform() < 0.8)
        coo.add(i, j, 0.1 + rng.uniform());
    }
    if (rng.uniform() < 0.4)
      coo.add(i, static_cast<index_t>(rng.below(49)), 0.1 + rng.uniform());
  }
  coo.sort_and_combine();
  const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), b);
  check_against_reference<double>(
      coo,
      [&](const double* x, double* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "bcsd b=" + std::to_string(b) + (simd ? " simd" : " scalar"));
}

TEST_P(BcsdKernels, FloatMatchesReference) {
  const auto [b, simd] = GetParam();
  const Coo<float> coo = random_coo<float>(47, 61, 0.1, 43);
  const Bcsd<float> m = Bcsd<float>::from_csr(Csr<float>::from_coo(coo), b);
  check_against_reference<float>(
      coo,
      [&](const float* x, float* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "bcsd float b=" + std::to_string(b));
}

std::vector<BcsdCase> all_bcsd_cases() {
  std::vector<BcsdCase> cases;
  for (int b : bcsd_sizes()) {
    cases.push_back({b, false});
    cases.push_back({b, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSizesAndImpls, BcsdKernels,
                         ::testing::ValuesIn(all_bcsd_cases()),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.b) +
                                  (info.param.simd ? "_simd" : "_scalar");
                         });

TEST(BcsdKernels, PureDiagonalMatrixUsesOnlyFastPath) {
  // Full main diagonal on a 64x64 matrix with b=4: every diagonal block
  // is full and in range.
  Coo<double> coo(64, 64);
  for (index_t i = 0; i < 64; ++i) coo.add(i, i, 2.0);
  const Bcsd<double> m = Bcsd<double>::from_csr(Csr<double>::from_coo(coo), 4);
  EXPECT_EQ(m.blocks(), 16u);
  EXPECT_EQ(m.padding(), 0u);
  for (index_t s = 0; s < m.segments(); ++s)
    EXPECT_EQ(m.full_diags()[static_cast<std::size_t>(s)], 1);
  check_against_reference<double>(
      coo, [&](const double* x, double* y) { spmv(m, x, y); }, "bcsd diag");
}

}  // namespace
}  // namespace bspmv
