// UBCSR block kernels: the same fully-unrolled block bodies as BCSR, but
// the block's x-slice starts at an arbitrary column (bcol_ind stores the
// column itself). Blocks near the right edge may poke past the matrix —
// construction pads them with zeros and x is addressed only within
// [j0, j0+c), which construction guarantees to stay in range (anchors are
// nonzero columns and c-1 more; padding columns beyond cols() carry only
// zero values, and their x loads are avoided by a checked tail path).
#pragma once

#include "src/formats/ubcsr.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
using UbcsrKernelFn = void (*)(const Ubcsr<V>&, index_t br0, index_t br1,
                               const V* x, V* y);

template <class V>
UbcsrKernelFn<V> ubcsr_kernel(BlockShape shape, bool simd);

extern template UbcsrKernelFn<float> ubcsr_kernel<float>(BlockShape, bool);
extern template UbcsrKernelFn<double> ubcsr_kernel<double>(BlockShape, bool);

}  // namespace bspmv
