// Explicit instantiations of the generic threaded driver for the formats
// the paper parallelises (§V-A). The template itself lives in the header
// so out-of-library formats can instantiate it as well.
#include "src/parallel/parallel_spmv.hpp"

namespace bspmv {

#define BSPMV_INST(V)     \
  template class          \
      ThreadedSpmv<Csr<V>>; \
  template class          \
      ThreadedSpmv<Bcsr<V>>; \
  template class          \
      ThreadedSpmv<Bcsd<V>>; \
  template class          \
      ThreadedSpmv<BcsrDec<V>>; \
  template class          \
      ThreadedSpmv<BcsdDec<V>>;
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
