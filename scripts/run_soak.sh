#!/usr/bin/env bash
# Chaos soak for the serving daemon: run bspmv_serve (optionally under
# ASan), storm it with concurrent well-formed load AND hostile traffic
# (malformed frames, truncated writes, absurd declared lengths, random
# disconnects), kill -9 it mid-flight, restart it and verify the spool
# recovers the cached matrix — all while watching RSS stay bounded.
#
# Pass criteria:
#   - the daemon never crashes under chaos (only typed error replies)
#   - at least one request succeeded during the storm
#   - peak daemon RSS stays under $RSS_LIMIT_MB
#   - after kill -9 + restart, a spmv against the pre-kill fingerprint
#     succeeds straight from the spool (no resubmit)
#
# Usage: scripts/run_soak.sh [duration-seconds] (default 60)
# Env:   BUILD_DIR     build tree to use       (default repo/build)
#        RSS_LIMIT_MB  peak RSS bound          (default 2048)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
duration="${1:-60}"
rss_limit_mb="${RSS_LIMIT_MB:-2048}"

serve="$build_dir/tools/bspmv_serve"
client="$build_dir/tools/bspmv_client"
[ -x "$serve" ] && [ -x "$client" ] || {
  echo "soak: build tools first (cmake --build $build_dir)" >&2
  exit 1
}

work="$(mktemp -d /tmp/bspmv_soak.XXXXXX)"
sock="$work/serve.sock"
spool="$work/spool"
trap 'kill -9 "${serve_pid:-0}" 2>/dev/null || true; rm -rf "$work"' EXIT

start_daemon() {
  "$serve" --socket "$sock" --spool-dir "$spool" --workers 4 \
           --queue 32 --cache-mb 128 2>>"$work/serve.log" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && "$client" --socket "$sock" --mode ping \
        >/dev/null 2>&1 && return 0
    kill -0 "$serve_pid" 2>/dev/null || {
      echo "soak: daemon died on startup"; cat "$work/serve.log"; exit 1; }
    sleep 0.1
  done
  echo "soak: daemon never came up" >&2
  exit 1
}

peak_rss_kb=0
watch_rss() {
  while kill -0 "$serve_pid" 2>/dev/null; do
    rss=$(awk '/VmRSS/{print $2}' "/proc/$serve_pid/status" 2>/dev/null || echo 0)
    [ "${rss:-0}" -gt "$peak_rss_kb" ] && peak_rss_kb=$rss
    echo "$peak_rss_kb" > "$work/peak_rss_kb"
    sleep 0.5
  done
}

echo "== soak: starting daemon (${duration}s chaos) =="
start_daemon
watch_rss &
rss_watcher=$!

half=$(( duration / 2 ))
[ "$half" -lt 5 ] && half=5

echo "== soak: phase 1 — chaos storm (${half}s) =="
"$client" --socket "$sock" --mode chaos --seconds "$half" --threads 4 \
    --n 2048 > "$work/chaos1.json"
kill -0 "$serve_pid" 2>/dev/null || {
  echo "soak: FAIL — daemon died under chaos"; cat "$work/serve.log"; exit 1; }

fingerprint_ok=$(python3 - "$work/chaos1.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
print(r["ok"])
EOF
)
[ "$fingerprint_ok" -gt 0 ] || { echo "soak: FAIL — no request succeeded"; exit 1; }

echo "== soak: phase 2 — kill -9 mid-flight, restart, spool recovery =="
"$client" --socket "$sock" --mode load --seconds 3 --threads 2 --n 2048 \
    > /dev/null &
storm_pid=$!
sleep 1
kill -9 "$serve_pid"
wait "$storm_pid" 2>/dev/null || true   # clients may see io errors: fine
wait "$rss_watcher" 2>/dev/null || true

start_daemon
watch_rss &
rss_watcher=$!
# Probe first: a bare spmv against the pre-kill fingerprint WITHOUT a
# resubmit. Only a daemon that recovered the engine from the spool can
# answer it; a spool-less restart replies unknown_matrix (exit 9).
"$client" --socket "$sock" --mode probe --n 2048 > "$work/probe.json" || {
  echo "soak: FAIL — restarted daemon did not recover from the spool"
  cat "$work/serve.log"; exit 1; }
"$client" --socket "$sock" --mode load --seconds "$half" --threads 4 \
    --n 2048 > "$work/chaos2.json"
kill -0 "$serve_pid" 2>/dev/null || {
  echo "soak: FAIL — restarted daemon died"; cat "$work/serve.log"; exit 1; }
spool_loads=$("$client" --socket "$sock" --mode stats \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["spool"]["loads"])')

"$client" --socket "$sock" --mode shutdown || true
wait "$serve_pid" 2>/dev/null || true
wait "$rss_watcher" 2>/dev/null || true

peak_mb=$(( $(cat "$work/peak_rss_kb" 2>/dev/null || echo 0) / 1024 ))
echo "== soak: peak daemon RSS ${peak_mb} MiB (limit ${rss_limit_mb}) =="
[ "$peak_mb" -le "$rss_limit_mb" ] || {
  echo "soak: FAIL — RSS exceeded the bound"; exit 1; }

echo "== soak: spool recoveries after restart: $spool_loads =="
[ "$spool_loads" -gt 0 ] || {
  echo "soak: FAIL — restart did not recover from the spool"; exit 1; }

echo "== soak: PASS =="
