// Measurement substrate for the benchmark harnesses and profilers.
//
// The paper times 100 consecutive SpMV operations; we expose the same
// pattern (`time_repeated`) plus an adaptive variant that keeps measuring
// until the total elapsed time is long enough for a stable per-iteration
// estimate.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace bspmv {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Result of a repeated-run measurement.
struct MeasureResult {
  double seconds_per_iter = 0.0;  ///< best (minimum) per-iteration time
  double median_seconds = 0.0;    ///< median per-iteration time
  double total_seconds = 0.0;     ///< wall time spent measuring
  std::uint64_t iterations = 0;   ///< iterations actually executed
};

/// Run `fn` exactly `iters` times (after `warmup` unmeasured runs) in
/// `reps` back-to-back batches and report per-iteration statistics.
/// Mirrors the paper's "100 consecutive SpMV operations" methodology.
MeasureResult time_repeated(const std::function<void()>& fn, int iters,
                            int reps = 3, int warmup = 2);

/// Adaptive measurement: grows the batch size until one batch takes at
/// least `min_batch_seconds`, then reports per-iteration statistics over
/// `reps` batches. Used by the profilers where per-call cost spans orders
/// of magnitude.
MeasureResult time_adaptive(const std::function<void()>& fn,
                            double min_batch_seconds = 20e-3, int reps = 3);

/// Prevents the optimiser from discarding a computed value.
template <class T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Full write barrier for streaming benchmarks.
inline void clobber_memory() { asm volatile("" : : : "memory"); }

}  // namespace bspmv
