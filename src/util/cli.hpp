// Tiny command-line option parser shared by the bench/example binaries.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms plus
// positional arguments; unknown options raise an error listing valid ones.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bspmv {

class CliParser {
 public:
  /// Declare an option with a default value (also defines its help text).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws bspmv::invalid_argument_error on unknown/ill-formed
  /// options. Returns false if --help was requested (help printed to stdout).
  bool parse(int argc, const char* const* argv);

  const std::string& get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help(const std::string& program) const;

 private:
  struct Opt {
    std::string value;
    std::string help;
    bool is_flag = false;
    bool flag_set = false;
  };
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;  // declaration order for help output
  std::vector<std::string> positional_;
};

}  // namespace bspmv
