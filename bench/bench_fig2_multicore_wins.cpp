// Reproduces Figure 2: distribution of wins (overall best measured
// performance) across the blocking methods for 1, 2 and 4 cores, single
// and double precision. 1D-VBL is excluded from the multithreaded
// evaluation, exactly as in §V-A. The matrix is split row-wise with the
// padding-aware nnz-balanced static partitioning the paper describes.
//
// Note: on machines with fewer hardware cores than the requested thread
// count this exercises the same code path under oversubscription; the
// output notes the hardware core count.
#include <omp.h>

#include <cstdio>

#include "bench/harness.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

const FormatKind kMethods[] = {
    FormatKind::kCsr, FormatKind::kBcsr, FormatKind::kBcsrDec,
    FormatKind::kBcsd, FormatKind::kBcsdDec,
};

std::vector<Candidate> threaded_candidates() {
  std::vector<Candidate> out;
  for (const Candidate& c : model_candidates(false))  // scalar kernels
    out.push_back(c);
  return out;
}

template <class V>
void run_precision(const BenchConfig& cfg, SweepCache& cache,
                   const std::vector<int>& ids, const std::vector<int>& cores,
                   std::map<std::string, std::map<FormatKind, int>>& wins) {
  constexpr Precision prec = precision_of<V>;
  const auto cands = threaded_candidates();
  for (int id : ids) {
    if (cfg.verbose) std::fprintf(stderr, "matrix %d (%s)...\n", id,
                                  precision_name(prec));
    const Csr<V> a = build_suite_csr<V>(id, cfg.scale);
    const auto by_threads = sweep_matrix_threaded(a, id, cands, cores, cfg, cache);
    for (int threads : cores) {
      const auto best = best_per_format(cands, by_threads.at(threads));
      FormatKind winner = FormatKind::kCsr;
      double best_t = 1e300;
      for (const auto& [kind, t] : best)
        if (t < best_t) {
          best_t = t;
          winner = kind;
        }
      const std::string col =
          std::to_string(threads) + "c-" + precision_name(prec);
      ++wins[col][winner];
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_option("cores", "1,2,4", "comma-separated thread counts");
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  SweepCache cache(cfg.cache_path, cfg.no_cache);

  std::vector<int> cores;
  {
    std::string s = cli.get("cores");
    for (std::size_t pos = 0; pos < s.size();) {
      const std::size_t comma = s.find(',', pos);
      cores.push_back(std::stoi(s.substr(pos, comma - pos)));
      pos = comma == std::string::npos ? s.size() : comma + 1;
    }
  }

  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty())
    for (int i = 3; i <= 30; ++i) ids.push_back(i);

  std::map<std::string, std::map<FormatKind, int>> wins;
  run_precision<float>(cfg, cache, ids, cores, wins);
  run_precision<double>(cfg, cache, ids, cores, wins);

  std::printf("Figure 2: wins per method, 1/2/4 cores, sp and dp "
              "(scale=%s, %zu matrices, %d hardware core(s))\n",
              suite_scale_name(cfg.scale), ids.size(), omp_get_num_procs());
  print_rule(80);
  std::printf("%-10s", "method");
  std::vector<std::string> cols;
  for (const char* p : {"sp", "dp"})
    for (int c : cores) cols.push_back(std::to_string(c) + "c-" + p);
  for (const auto& col : cols) std::printf(" %8s", col.c_str());
  std::printf("\n");
  print_rule(80);
  for (FormatKind kind : kMethods) {
    std::printf("%-10s", format_label(kind));
    for (const auto& col : cols) std::printf(" %8d", wins[col][kind]);
    std::printf("\n");
  }
  print_rule(80);
  return 0;
}
