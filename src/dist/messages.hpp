// Typed payloads of the distributed rank protocol (MsgType kShard …
// kHalo), encoded with the same bounds-checked WireWriter/WireReader
// codec the serving daemon uses. Every decode() validates counts against
// the payload size before allocating, so a torn or hostile frame
// surfaces as bspmv::parse_error, never as an out-of-bounds read
// (fuzzed in tests/test_dist.cpp with frame_corruptions).
//
// Message flow (docs/distribution.md):
//
//   driver -> rank : kShard    ShardMsg     once, after fork
//   rank -> driver : kShardOk  (empty)      shard decoded, rank ready
//   driver -> rank : kDistRun  RunMsg       per run() call
//   rank <-> rank  : kHalo     HaloMsg      per iteration per peer
//   rank -> driver : kDistDone DoneMsg      y slice + phase timings
//   driver -> rank : kShutdown/kShutdownOk  graceful stop (reused)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/models.hpp"
#include "src/formats/csr.hpp"

namespace bspmv::dist {

/// kShard: one rank's slice of the plan. The matrix rows travel as a
/// plain CSR slice with *global* column ids; the rank rebuilds the
/// local/halo column split itself (HaloDec::split), which keeps the
/// message format independent of the split representation.
struct ShardMsg {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  std::uint32_t threads = 1;  ///< TaskPool workers for the local pass
  index_t row_begin = 0, row_end = 0;
  index_t x_begin = 0, x_end = 0;
  index_t cols = 0;                       ///< global matrix width
  std::vector<index_t> halo_seg;          ///< ranks+1 halo segment offsets
  std::vector<std::vector<index_t>> send_cols;  ///< per peer, owned-x offsets
  std::vector<index_t> row_ptr;           ///< rows()+1, rebased to 0
  std::vector<index_t> col_ind;           ///< global column ids
  std::vector<double> val;

  index_t rows() const { return row_end - row_begin; }

  std::string encode() const;
  static ShardMsg decode(std::string_view payload);
};

/// kDistRun: one multi-iteration y = A·x request. `epoch` is the
/// supervisor's recovery generation: it is bumped on every round and on
/// every recovery, stamped onto every halo frame of the round, and any
/// frame carrying a different epoch is rejected as a parse_error — a
/// delayed frame from before a recovery can never corrupt an iteration.
struct RunMsg {
  DistMode mode = DistMode::kOverlap;
  std::uint8_t impl = 0;  ///< 0 scalar, 1 simd
  std::uint32_t iterations = 1;
  std::uint32_t epoch = 0;
  /// Global index of this request's first iteration: the supervisor runs
  /// in rounds, and armed faults (FaultMsg::at_iteration) address global
  /// progress, not the round-local count.
  std::uint32_t first_iteration = 0;
  /// Emit a kProgress heartbeat to the driver every this-many iterations
  /// (0 = none) so short wire timeouts coexist with long rounds.
  std::uint32_t progress_every = 0;
  std::vector<double> x;  ///< the rank's owned x slice

  std::string encode() const;
  static RunMsg decode(std::string_view payload);
};

/// Per-rank phase timings of one kDistRun, totalled over its iterations.
/// send/recv seconds are summed across the per-peer exchange threads;
/// wait_seconds is how long the main thread blocked on the exchange
/// after its compute finished — the overlap claim is precisely that
/// overlap mode shrinks wait (comm hidden under local compute) while
/// naive mode pays it all up front.
struct RankStats {
  std::uint32_t iterations = 0;
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double wait_seconds = 0.0;
  double local_seconds = 0.0;
  double halo_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
};

/// kDistDone: the rank's y slice plus its RankStats.
struct DoneMsg {
  std::vector<double> y;
  RankStats stats;

  std::string encode() const;
  static DoneMsg decode(std::string_view payload);
};

/// kHalo: one iteration's halo x values from one peer. The (from, epoch,
/// iter) header catches crossed wires: a frame from the wrong peer, a
/// stale iteration, or a pre-recovery epoch is a typed parse_error, not
/// silent corruption.
struct HaloMsg {
  std::uint32_t from = 0;
  std::uint32_t epoch = 0;
  std::uint32_t iter = 0;
  std::vector<double> x;

  std::string encode() const;
  static HaloMsg decode(std::string_view payload);
};

/// kFault: arm one test fault inside a rank (the driver-side injection
/// hook DistSpmv::inject_fault ships; tests and the chaos soak only).
/// `at_iteration` is the 0-based iteration index *within the next
/// kDistRun round* at which the fault fires.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kExitAtIteration = 1,   ///< _exit before the exchange (kill mid-iteration)
  kExitInExchange = 2,    ///< _exit after posting the halo exchange
  kStallAtIteration = 3,  ///< sleep `seconds` before the exchange
  kCorruptHaloSend = 4,   ///< corrupt the next outgoing halo frame
};

struct FaultMsg {
  FaultKind kind = FaultKind::kNone;
  std::uint32_t at_iteration = 0;
  double seconds = 0.0;  ///< stall duration for kStallAtIteration

  std::string encode() const;
  static FaultMsg decode(std::string_view payload);
};

/// kProgress: mid-run heartbeat, rank -> driver.
struct ProgressMsg {
  std::uint32_t epoch = 0;
  std::uint32_t done = 0;  ///< iterations completed this round

  std::string encode() const;
  static ProgressMsg decode(std::string_view payload);
};

/// kPeerUpdate: the listed peers' data channels are being replaced; one
/// replacement fd per listed peer follows on the control socket via
/// SCM_RIGHTS (src/dist/fdpass.*), in list order.
struct PeerUpdateMsg {
  std::vector<std::uint32_t> peers;

  std::string encode() const;
  static PeerUpdateMsg decode(std::string_view payload);
};

/// kDrainOk: how much stale pre-recovery data a rank discarded.
struct DrainReply {
  std::uint64_t bytes = 0;

  std::string encode() const;
  static DrainReply decode(std::string_view payload);
};

}  // namespace bspmv::dist
