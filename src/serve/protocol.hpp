// Wire protocol for the SpMV serving daemon (bspmv_serve).
//
// Transport: a Unix stream socket carrying length-prefixed binary frames.
// Every frame is
//
//   u32 magic   = 0x42535056 ("VPSB" in little-endian byte order)
//   u32 version = 1
//   u32 type    (MsgType)
//   u64 payload_len
//   payload_len bytes of payload
//
// All integers are little-endian (encoded byte-by-byte, so the codec is
// endian-portable even though every deployment today is x86/ARM LE).
// A frame whose declared payload exceeds WireLimits::max_frame_bytes is
// rejected *before* any allocation — a hostile 16-exabyte length field
// costs the server one header read, not its address space.
//
// Request/response pairs (client sends the left, server answers the
// right, or kError with a typed ErrorCode from the bspmv::error
// taxonomy):
//
//   kPing      -> kPong        liveness probe, empty payloads
//   kSubmit    -> kSubmitOk    upload a CSR matrix; server prepares an
//                              engine, caches it by fingerprint
//   kSpmv      -> kSpmvOk      y = A·x against a cached engine, keyed by
//                              the fingerprint kSubmitOk returned
//   kStats     -> kStatsOk     JSON snapshot of server/cache counters
//   kShutdown  -> kShutdownOk  graceful stop
//
// The error/exit-code table and the request lifecycle state machine are
// documented in docs/serving.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/formats/csr.hpp"
#include "src/util/errors.hpp"

namespace bspmv::serve {

inline constexpr std::uint32_t kMagic = 0x42535056u;
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame header size on the wire: magic + version + type + payload_len.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4 + 8;

enum class MsgType : std::uint32_t {
  kPing = 1,
  kPong = 2,
  kSubmit = 3,
  kSubmitOk = 4,
  kSpmv = 5,
  kSpmvOk = 6,
  kStats = 7,
  kStatsOk = 8,
  kShutdown = 9,
  kShutdownOk = 10,
  kError = 11,
  // Distributed SpMV rank protocol (src/dist/, docs/distribution.md).
  // Same frame grammar over socketpairs between the driver and its
  // forked ranks (control) and between rank peers (halo data).
  kShard = 12,     ///< driver -> rank: shard plan slice + submatrices
  kShardOk = 13,   ///< rank -> driver: shard accepted, rank ready
  kDistRun = 14,   ///< driver -> rank: mode/impl/iterations + x slice
  kDistDone = 15,  ///< rank -> driver: y slice + per-phase timings
  kHalo = 16,      ///< rank -> rank: one iteration's halo x values
  // Supervision / recovery extension (PR 10): frames the rank supervisor
  // uses to heal the mesh after a rank death without restarting the run.
  kDrain = 17,       ///< driver -> rank: discard buffered peer frames
  kDrainOk = 18,     ///< rank -> driver: stale bytes discarded
  kPeerUpdate = 19,  ///< driver -> rank: replacement peer channels follow
                     ///< (fds ride SCM_RIGHTS on the control socket)
  kPeerOk = 20,      ///< rank -> driver: channels installed
  kFault = 21,       ///< driver -> rank: arm a test fault (kill/stall/...)
  kFaultOk = 22,     ///< rank -> driver: fault armed
  kProgress = 23,    ///< rank -> driver: heartbeat mid-run (epoch, iter)
};

const char* msg_type_name(MsgType t);

/// Error classes a server can return, mirroring mtx_tool's exit codes
/// (docs/robustness.md) so scripts can branch on either the same way.
enum class ErrorCode : std::uint32_t {
  kError = 1,          ///< other bspmv::error
  kParse = 2,          ///< malformed frame or payload
  kConversion = 3,     ///< engine preparation failed outright
  kTimeout = 4,        ///< deadline expired / run stalled or cancelled
  kNumerical = 5,      ///< NaN/Inf tripped the numeric guards
  kIo = 6,             ///< persistence/socket failure server-side
  kOverloaded = 7,     ///< admission control shed the request
  kInvalidArgument = 8,///< well-formed frame, nonsensical request
  kUnknownMatrix = 9,  ///< fingerprint not cached (evicted or never
                       ///< submitted) — resubmit the matrix and retry
};

const char* error_code_name(ErrorCode c);

/// Map a typed library error to its wire code (derived classes first).
ErrorCode error_code_for(const error& e);

/// Throw the typed bspmv::error matching `code` — the client-side inverse
/// of error_code_for, so a caller of the client library sees the same
/// taxonomy it would see calling the library in-process. kUnknownMatrix
/// maps to invalid_argument_error (message says to resubmit).
[[noreturn]] void throw_wire_error(ErrorCode code, const std::string& msg);

// ----------------------------------------------------------------------
// Bounds-checked payload codec
// ----------------------------------------------------------------------

/// Append-only little-endian encoder for payload bodies.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view s);
  /// Raw doubles, count NOT written (callers prefix their own counts).
  void f64_array(const double* v, std::size_t n);
  /// Raw u32s from signed indices (values must be non-negative).
  void index_array(const index_t* v, std::size_t n);

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder; every read past the end throws
/// bspmv::parse_error, so a truncated or hostile payload can never read
/// out of bounds.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_array(std::size_t n);
  std::vector<index_t> index_array(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws parse_error unless the payload was consumed exactly.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------------------
// Typed payloads
// ----------------------------------------------------------------------

/// kSubmit: a CSR matrix in wire form. decode() re-validates structure
/// (array lengths, monotone row pointers via Csr's constructor when the
/// caller materialises it) and bounds every count against the payload
/// size before allocating.
struct SubmitRequest {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<index_t> row_ptr;
  std::vector<index_t> col_ind;
  std::vector<double> val;

  static SubmitRequest from_csr(const Csr<double>& a);
  Csr<double> to_csr() const;

  std::string encode() const;
  static SubmitRequest decode(std::string_view payload);
};

/// kSubmitOk.
struct SubmitReply {
  std::uint64_t fingerprint = 0;
  std::string format_id;        ///< candidate id the engine landed on
  bool fallback = false;        ///< every candidate failed; scalar CSR
  bool cached = false;          ///< engine was already resident (hit)
  double prepare_seconds = 0.0; ///< server-side preparation time

  std::string encode() const;
  static SubmitReply decode(std::string_view payload);
};

/// kSpmv: run y = A·x against the engine cached under `fingerprint`.
struct SpmvRequest {
  std::uint64_t fingerprint = 0;
  std::uint32_t priority = 0;      ///< higher survives admission longer
  double deadline_seconds = 0.0;   ///< per-request budget; 0 = server default
  bool check_numerics = false;     ///< NaN/Inf guards on x and y
  std::vector<double> x;

  std::string encode() const;
  static SpmvRequest decode(std::string_view payload);
};

/// kSpmvOk.
struct SpmvReply {
  std::vector<double> y;
  double server_seconds = 0.0;  ///< queue + run time inside the server
  bool degraded = false;        ///< served under a degraded service level

  std::string encode() const;
  static SpmvReply decode(std::string_view payload);
};

/// kError.
struct ErrorReply {
  ErrorCode code = ErrorCode::kError;
  std::string message;

  std::string encode() const;
  static ErrorReply decode(std::string_view payload);
};

// ----------------------------------------------------------------------
// Frame I/O
// ----------------------------------------------------------------------

struct WireLimits {
  /// Hard cap on a single frame's payload; both sides enforce it on send
  /// and receive. Large enough for a ~2.6M-nnz double CSR submit.
  std::size_t max_frame_bytes = std::size_t{64} << 20;  // 64 MiB
  /// Give up reading a frame when the peer sends nothing for this long
  /// (a half-open or wedged connection must not pin a server thread).
  double read_timeout_seconds = 30.0;
};

/// Serialise and send one frame. Throws bspmv::io_error on socket errors
/// (EPIPE included — SIGPIPE is suppressed via MSG_NOSIGNAL) and
/// invalid_argument_error when the payload exceeds limits.max_frame_bytes.
void write_frame(int fd, MsgType type, std::string_view payload,
                 const WireLimits& limits);

/// Read one complete frame. Returns false on clean EOF at a frame
/// boundary (the peer closed). Throws parse_error on a malformed header
/// (bad magic/version, oversized declared length), io_error on socket
/// errors, timeout_error when no bytes arrive within the read timeout,
/// and parse_error when EOF cuts a frame mid-body (torn frame).
bool read_frame(int fd, MsgType& type, std::string& payload,
                const WireLimits& limits);

}  // namespace bspmv::serve
