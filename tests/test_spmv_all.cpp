// Integration property sweep: EVERY candidate in the bench space
// (format × shape × impl), materialised via AnyFormat, must match the COO
// reference on matrices with different structural characters.
#include <gtest/gtest.h>

#include <set>

#include "src/core/executor.hpp"
#include "src/gen/generators.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;

struct MatrixCase {
  std::string name;
  Coo<double> coo;
};

// A small zoo covering the structural classes of the suite.
std::vector<MatrixCase> matrix_zoo() {
  std::vector<MatrixCase> zoo;
  zoo.push_back({"random", bspmv::testing::random_coo<double>(61, 57, 0.07, 1)});
  zoo.push_back({"blocky", bspmv::testing::random_blocky_coo<double>(
                               60, 66, 3, 0.25, 0.85, 2)});
  zoo.push_back({"stencil", gen_stencil_2d<double>(9, 8, 9, 3)});
  zoo.push_back({"diagonal", gen_multi_diagonal<double>(
                                 73, {-3, -1, 0, 1, 4}, 4)});
  zoo.push_back({"segments", gen_row_segments<double>(31, 120, 2, 4, 3, 9, 5)});
  zoo.push_back({"shortrows", gen_short_rows<double>(97, 0, 3, 6)});
  return zoo;
}

class AllCandidates : public ::testing::TestWithParam<Candidate> {};

TEST_P(AllCandidates, DoubleMatchesReferenceOnZoo) {
  const Candidate c = GetParam();
  for (const auto& mc : matrix_zoo()) {
    const Csr<double> a = Csr<double>::from_coo(mc.coo);
    const AnyFormat<double> f = AnyFormat<double>::convert(a, c);
    EXPECT_EQ(f.rows(), a.rows());
    EXPECT_EQ(f.cols(), a.cols());
    EXPECT_GT(f.working_set_bytes(), 0u);
    check_against_reference<double>(
        mc.coo, [&](const double* x, double* y) { f.run(x, y); },
        c.id() + " on " + mc.name);
  }
}

TEST_P(AllCandidates, FloatMatchesReferenceOnRandom) {
  const Candidate c = GetParam();
  const Coo<float> coo = bspmv::testing::random_coo<float>(58, 49, 0.08, 21);
  const Csr<float> a = Csr<float>::from_coo(coo);
  const AnyFormat<float> f = AnyFormat<float>::convert(a, c);
  check_against_reference<float>(
      coo, [&](const float* x, float* y) { f.run(x, y); }, c.id());
}

std::vector<Candidate> full_candidate_space() {
  std::vector<Candidate> all = bench_candidates(true, true);
  const auto ext = extension_candidates(true);
  all.insert(all.end(), ext.begin(), ext.end());
  return all;
}

INSTANTIATE_TEST_SUITE_P(BenchSpace, AllCandidates,
                         ::testing::ValuesIn(full_candidate_space()),
                         [](const auto& info) { return info.param.id(); });

TEST(CandidateIds, AreUniqueAndStable) {
  const auto cands = full_candidate_space();
  std::set<std::string> ids;
  for (const auto& c : cands) ids.insert(c.id());
  EXPECT_EQ(ids.size(), cands.size());
  // Spot-check the naming scheme documented in the header.
  EXPECT_EQ(Candidate{}.id(), "csr_scalar");
  EXPECT_EQ((Candidate{FormatKind::kBcsrDec, BlockShape{3, 2}, 0,
                       Impl::kSimd})
                .id(),
            "bcsr_dec_3x2_simd");
  EXPECT_EQ((Candidate{FormatKind::kBcsdDec, BlockShape{1, 1}, 4,
                       Impl::kScalar})
                .kernel_id(),
            "bcsd_4_scalar");
}

TEST(CandidateSpace, MatchesPaperCounts) {
  // BCSR shapes with r*c <= 8 excluding 1x1 (that is CSR): r=1 gives 7,
  // r=2 gives 4, r=3/4 give 2 each, r=5..8 give 1 each -> 19 shapes.
  EXPECT_EQ(bcsr_shapes().size(), 19u);
  EXPECT_EQ(bcsd_sizes().size(), 7u);
  // CSR + 19*2 (BCSR, BCSR-DEC) + 7*2 (BCSD, BCSD-DEC) = 53 per impl.
  EXPECT_EQ(model_candidates(false).size(), 53u);
  EXPECT_EQ(model_candidates(true).size(), 106u);
  // Bench space adds scalar 1D-VBL (and VBR when requested).
  EXPECT_EQ(bench_candidates(true, false).size(), 107u);
  EXPECT_EQ(bench_candidates(true, true).size(), 108u);
  // Extensions: UBCSR at 19 shapes x 2 impls + scalar CsrDelta.
  EXPECT_EQ(extension_candidates(true).size(), 39u);
  EXPECT_EQ(extension_candidates(false).size(), 20u);
}

}  // namespace
}  // namespace bspmv
