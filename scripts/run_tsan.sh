#!/usr/bin/env bash
# Build under ThreadSanitizer and run the watchdog/cancellation tests —
# the std::thread-based concurrency introduced by RunControl/Watchdog
# (deadline enforcement, first-abort-wins, heartbeat stall detection).
#
# Scope: only test_run_control is run. That binary is deliberately
# OpenMP-free; TSan has well-known false positives with libgomp's
# barrier/team implementation (it cannot see GOMP's internal
# synchronisation), so the OpenMP drivers are excluded here and covered
# by ASan/UBSan and the functional suite instead.
#
# Usage: scripts/run_tsan.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBSPMV_TSAN=ON \
  -DBSPMV_BUILD_BENCH=OFF \
  -DBSPMV_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" --target test_run_control

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "$build_dir" --output-on-failure --timeout 300 \
  -j "$(nproc)" -R '^(RunControl|Watchdog|AtomicFile|RobustSamples|Numerics)\.' "$@"
