// Permutation-utility and similarity-reordering tests.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/reorder.hpp"
#include "src/formats/permute.hpp"
#include "src/formats/stats.hpp"
#include "src/kernels/spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;
using bspmv::testing::random_x;

std::vector<index_t> shuffled_identity(index_t n, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  return perm;
}

TEST(Permute, ValidationRejectsNonPermutations) {
  EXPECT_TRUE(is_permutation({2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation({0, 0, 1}, 3));   // duplicate
  EXPECT_FALSE(is_permutation({0, 1, 3}, 3));   // out of range
  EXPECT_FALSE(is_permutation({0, 1}, 3));      // wrong length
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(4, 4, 0.5, 1));
  EXPECT_THROW(permute_rows(a, {0, 0, 1, 2}), invalid_argument_error);
}

TEST(Permute, InvertRoundTrips) {
  const auto perm = shuffled_identity(37, 5);
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<index_t>(i));
  }
}

TEST(Permute, RowPermutationMovesRows) {
  // B.row(i) = A.row(perm[i]) entry-for-entry.
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(25, 30, 0.2, 2));
  const auto perm = shuffled_identity(25, 3);
  const Csr<double> b = permute_rows(a, perm);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < 25; ++i) {
    const auto old_row = static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]);
    ASSERT_EQ(b.row_nnz(i), a.row_nnz(static_cast<index_t>(old_row)));
    for (index_t k = 0; k < b.row_nnz(i); ++k) {
      const auto bk = static_cast<std::size_t>(
          b.row_ptr()[static_cast<std::size_t>(i)] + k);
      const auto ak = static_cast<std::size_t>(a.row_ptr()[old_row] + k);
      EXPECT_EQ(b.col_ind()[bk], a.col_ind()[ak]);
      EXPECT_DOUBLE_EQ(b.val()[bk], a.val()[ak]);
    }
  }
}

TEST(Permute, RowPermutedSpmvIsPermutedProduct) {
  // (P A) x == P (A x).
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(40, 40, 0.15, 4));
  const auto perm = shuffled_identity(40, 6);
  const Csr<double> pa = permute_rows(a, perm);
  const auto x = random_x<double>(40, 7);
  aligned_vector<double> y(40, 0.0), py(40, 0.0);
  spmv(a, x.data(), y.data());
  spmv(pa, x.data(), py.data());
  for (index_t i = 0; i < 40; ++i)
    EXPECT_DOUBLE_EQ(py[static_cast<std::size_t>(i)],
                     y[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]);
}

TEST(Permute, SymmetricPermutationPreservesProductUpToRelabelling) {
  // B = P A Pᵀ: B (P x) == P (A x).
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(33, 33, 0.2, 8));
  const auto perm = shuffled_identity(33, 9);
  const Csr<double> b = permute_symmetric(a, perm);
  const auto x = random_x<double>(33, 10);
  aligned_vector<double> px(33);
  for (index_t i = 0; i < 33; ++i)
    px[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];

  aligned_vector<double> ax(33, 0.0), bpx(33, 0.0);
  spmv(a, x.data(), ax.data());
  spmv(b, px.data(), bpx.data());
  for (index_t i = 0; i < 33; ++i)
    EXPECT_NEAR(bpx[static_cast<std::size_t>(i)],
                ax[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])],
                1e-12);
}

TEST(Permute, SymmetricRequiresSquare) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(4, 5, 0.5, 1));
  EXPECT_THROW(permute_symmetric(a, {0, 1, 2, 3}), invalid_argument_error);
}

// ------------------------------------------------------- reordering ----

TEST(Reorder, ProducesAValidPermutation) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(80, 80, 0.08, 11));
  const auto perm = similarity_reorder(a);
  EXPECT_TRUE(is_permutation(perm, 80));
}

TEST(Reorder, RecoversBlockabilityAfterRowShuffle) {
  // Build a perfectly 4x4-blocky matrix, destroy its row locality with a
  // random shuffle, then reorder: the similarity permutation must recover
  // most of the lost BCSR fill.
  const Csr<double> blocky = Csr<double>::from_coo(
      random_blocky_coo<double>(160, 160, 4, 0.25, 1.01, 12));
  const BlockShape shape{4, 4};
  const double fill_orig = bcsr_stats(blocky, shape).fill();

  const Csr<double> shuffled =
      permute_rows(blocky, shuffled_identity(160, 13));
  const double fill_shuffled = bcsr_stats(shuffled, shape).fill();

  const Csr<double> reordered =
      permute_rows(shuffled, similarity_reorder(shuffled));
  const double fill_reordered = bcsr_stats(reordered, shape).fill();

  EXPECT_LT(fill_shuffled, 0.7 * fill_orig);      // shuffle really hurts
  EXPECT_GT(fill_reordered, 1.5 * fill_shuffled); // reorder really helps
}

TEST(Reorder, ReorderedSpmvStillCorrect) {
  const Coo<double> coo = random_blocky_coo<double>(90, 90, 3, 0.3, 0.9, 14);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto perm = similarity_reorder(a);
  const Csr<double> pa = permute_rows(a, perm);
  const auto x = random_x<double>(90, 15);
  aligned_vector<double> y(90, 0.0), py(90, 0.0);
  spmv(a, x.data(), y.data());
  spmv(pa, x.data(), py.data());
  for (index_t i = 0; i < 90; ++i)
    EXPECT_DOUBLE_EQ(py[static_cast<std::size_t>(i)],
                     y[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]);
}

TEST(Reorder, DeterministicAndRejectsBadOptions) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(50, 50, 0.1, 16));
  EXPECT_EQ(similarity_reorder(a), similarity_reorder(a));
  ReorderOptions bad;
  bad.signature_words = 9;
  EXPECT_THROW(similarity_reorder(a, bad), invalid_argument_error);
}

}  // namespace
}  // namespace bspmv
