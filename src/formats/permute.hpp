// Row/column permutation utilities for reordering experiments.
//
// A permutation is a vector perm of length n where perm[i] is the OLD
// index that lands at NEW position i (gather convention):
//   B = P·A      => B.row(i) = A.row(perm[i])
//   B = A·Pᵀ     => B.col(j) gathers A.col(colperm[j])
#pragma once

#include <vector>

#include "src/formats/csr.hpp"

namespace bspmv {

/// Validate that perm is a permutation of [0, n).
bool is_permutation(const std::vector<index_t>& perm, index_t n);

/// inverse[perm[i]] = i.
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

/// B.row(i) = A.row(perm[i]).
template <class V>
Csr<V> permute_rows(const Csr<V>& a, const std::vector<index_t>& perm);

/// B(i, new_j) = A(i, old_j) with new_j = inv_colperm[old_j]; colperm uses
/// the same gather convention as permute_rows.
template <class V>
Csr<V> permute_cols(const Csr<V>& a, const std::vector<index_t>& colperm);

/// Symmetric relabelling B = P·A·Pᵀ (same permutation on rows and
/// columns) — what an iterative solver applies so x/y stay consistent.
template <class V>
Csr<V> permute_symmetric(const Csr<V>& a, const std::vector<index_t>& perm);

#define BSPMV_DECL(V)                                                       \
  extern template Csr<V> permute_rows(const Csr<V>&,                       \
                                      const std::vector<index_t>&);        \
  extern template Csr<V> permute_cols(const Csr<V>&,                       \
                                      const std::vector<index_t>&);        \
  extern template Csr<V> permute_symmetric(const Csr<V>&,                  \
                                           const std::vector<index_t>&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
