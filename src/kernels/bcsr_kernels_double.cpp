#include "src/kernels/bcsr_kernels_impl.hpp"

namespace bspmv {
template BcsrKernelFn<double> bcsr_kernel<double>(BlockShape, bool);
}  // namespace bspmv
