#include "src/serve/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/util/macros.hpp"

namespace bspmv::serve {

namespace {

void put_le(std::string& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kSubmit: return "submit";
    case MsgType::kSubmitOk: return "submit_ok";
    case MsgType::kSpmv: return "spmv";
    case MsgType::kSpmvOk: return "spmv_ok";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsOk: return "stats_ok";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownOk: return "shutdown_ok";
    case MsgType::kError: return "error";
    case MsgType::kShard: return "shard";
    case MsgType::kShardOk: return "shard_ok";
    case MsgType::kDistRun: return "dist_run";
    case MsgType::kDistDone: return "dist_done";
    case MsgType::kHalo: return "halo";
    case MsgType::kDrain: return "drain";
    case MsgType::kDrainOk: return "drain_ok";
    case MsgType::kPeerUpdate: return "peer_update";
    case MsgType::kPeerOk: return "peer_ok";
    case MsgType::kFault: return "fault";
    case MsgType::kFaultOk: return "fault_ok";
    case MsgType::kProgress: return "progress";
  }
  return "?";
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kError: return "error";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kConversion: return "conversion";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNumerical: return "numerical";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kUnknownMatrix: return "unknown_matrix";
  }
  return "?";
}

ErrorCode error_code_for(const error& e) {
  // Derived classes before their bases, same discipline as mtx_tool's
  // exit-code mapping.
  if (dynamic_cast<const overloaded_error*>(&e)) return ErrorCode::kOverloaded;
  if (dynamic_cast<const execution_error*>(&e)) return ErrorCode::kTimeout;
  if (dynamic_cast<const numerical_error*>(&e)) return ErrorCode::kNumerical;
  if (dynamic_cast<const parse_error*>(&e)) return ErrorCode::kParse;
  if (dynamic_cast<const io_error*>(&e)) return ErrorCode::kIo;
  if (dynamic_cast<const conversion_error*>(&e)) return ErrorCode::kConversion;
  if (dynamic_cast<const validation_error*>(&e)) return ErrorCode::kParse;
  if (dynamic_cast<const invalid_argument_error*>(&e))
    return ErrorCode::kInvalidArgument;
  return ErrorCode::kError;
}

void throw_wire_error(ErrorCode code, const std::string& msg) {
  const std::string m =
      "server [" + std::string(error_code_name(code)) + "]: " + msg;
  switch (code) {
    case ErrorCode::kParse: throw parse_error(m);
    case ErrorCode::kConversion: throw conversion_error(m);
    case ErrorCode::kTimeout: throw timeout_error(m);
    case ErrorCode::kNumerical: throw numerical_error(m);
    case ErrorCode::kIo: throw io_error(m);
    case ErrorCode::kOverloaded: throw overloaded_error(m);
    case ErrorCode::kInvalidArgument: throw invalid_argument_error(m);
    case ErrorCode::kUnknownMatrix:
      throw invalid_argument_error(m + " (resubmit the matrix)");
    case ErrorCode::kError: break;
  }
  throw error(m);
}

// ------------------------------------------------------------ writer ----

void WireWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void WireWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  BSPMV_CHECK_MSG(s.size() <= 0xffffffffu, "wire string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::f64_array(const double* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) f64(v[i]);
}

void WireWriter::index_array(const index_t* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    BSPMV_CHECK_MSG(v[i] >= 0, "wire index array holds a negative value");
    u32(static_cast<std::uint32_t>(v[i]));
  }
}

// ------------------------------------------------------------ reader ----

void WireReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    std::ostringstream os;
    os << "wire payload truncated: need " << n << " bytes at offset " << pos_
       << ", have " << (data_.size() - pos_);
    throw parse_error(os.str());
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<double> WireReader::f64_array(std::size_t n) {
  need(n * 8);  // n is pre-bounded by callers against the payload size
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<index_t> WireReader::index_array(std::size_t n) {
  need(n * 4);
  std::vector<index_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t raw = u32();
    if (raw > static_cast<std::uint32_t>(
                  std::numeric_limits<index_t>::max())) {
      std::ostringstream os;
      os << "wire index value " << raw << " overflows index_t";
      throw parse_error(os.str());
    }
    v[i] = static_cast<index_t>(raw);
  }
  return v;
}

void WireReader::expect_end() const {
  if (pos_ != data_.size()) {
    std::ostringstream os;
    os << "wire payload has " << (data_.size() - pos_)
       << " trailing bytes past the message";
    throw parse_error(os.str());
  }
}

// ----------------------------------------------------------- payloads ----

SubmitRequest SubmitRequest::from_csr(const Csr<double>& a) {
  SubmitRequest r;
  r.rows = a.rows();
  r.cols = a.cols();
  r.row_ptr.assign(a.row_ptr().begin(), a.row_ptr().end());
  r.col_ind.assign(a.col_ind().begin(), a.col_ind().end());
  r.val.assign(a.val().begin(), a.val().end());
  return r;
}

Csr<double> SubmitRequest::to_csr() const {
  // Csr's array constructor validates monotone row pointers and index
  // ranges, so a structurally hostile submit dies here with a typed error.
  return Csr<double>(static_cast<index_t>(rows), static_cast<index_t>(cols),
                     aligned_vector<index_t>(row_ptr.begin(), row_ptr.end()),
                     aligned_vector<index_t>(col_ind.begin(), col_ind.end()),
                     aligned_vector<double>(val.begin(), val.end()));
}

std::string SubmitRequest::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(rows));
  w.u32(static_cast<std::uint32_t>(cols));
  w.u64(val.size());
  w.index_array(row_ptr.data(), row_ptr.size());
  w.index_array(col_ind.data(), col_ind.size());
  w.f64_array(val.data(), val.size());
  return w.take();
}

SubmitRequest SubmitRequest::decode(std::string_view payload) {
  WireReader r(payload);
  SubmitRequest req;
  req.rows = r.u32();
  req.cols = r.u32();
  const std::uint64_t nnz = r.u64();
  // Bound every count by what the payload could possibly hold before any
  // allocation; a forged header cannot make the server allocate more
  // than the frame it already accepted.
  const std::uint64_t max_elems = payload.size();  // > any valid count
  if (req.rows < 0 || req.cols < 0 ||
      static_cast<std::uint64_t>(req.rows) + 1 > max_elems ||
      nnz > max_elems) {
    throw parse_error("submit: declared dimensions exceed the payload");
  }
  req.row_ptr = r.index_array(static_cast<std::size_t>(req.rows) + 1);
  req.col_ind = r.index_array(static_cast<std::size_t>(nnz));
  req.val = r.f64_array(static_cast<std::size_t>(nnz));
  r.expect_end();
  return req;
}

std::string SubmitReply::encode() const {
  WireWriter w;
  w.u64(fingerprint);
  w.str(format_id);
  w.u8(fallback ? 1 : 0);
  w.u8(cached ? 1 : 0);
  w.f64(prepare_seconds);
  return w.take();
}

SubmitReply SubmitReply::decode(std::string_view payload) {
  WireReader r(payload);
  SubmitReply rep;
  rep.fingerprint = r.u64();
  rep.format_id = r.str();
  rep.fallback = r.u8() != 0;
  rep.cached = r.u8() != 0;
  rep.prepare_seconds = r.f64();
  r.expect_end();
  return rep;
}

std::string SpmvRequest::encode() const {
  WireWriter w;
  w.u64(fingerprint);
  w.u32(priority);
  w.f64(deadline_seconds);
  w.u8(check_numerics ? 1 : 0);
  w.u64(x.size());
  w.f64_array(x.data(), x.size());
  return w.take();
}

SpmvRequest SpmvRequest::decode(std::string_view payload) {
  WireReader r(payload);
  SpmvRequest req;
  req.fingerprint = r.u64();
  req.priority = r.u32();
  req.deadline_seconds = r.f64();
  req.check_numerics = r.u8() != 0;
  const std::uint64_t n = r.u64();
  if (n > payload.size()) throw parse_error("spmv: x length exceeds payload");
  req.x = r.f64_array(static_cast<std::size_t>(n));
  r.expect_end();
  return req;
}

std::string SpmvReply::encode() const {
  WireWriter w;
  w.u64(y.size());
  w.f64(server_seconds);
  w.u8(degraded ? 1 : 0);
  w.f64_array(y.data(), y.size());
  return w.take();
}

SpmvReply SpmvReply::decode(std::string_view payload) {
  WireReader r(payload);
  SpmvReply rep;
  const std::uint64_t n = r.u64();
  if (n > payload.size()) throw parse_error("spmv: y length exceeds payload");
  rep.server_seconds = r.f64();
  rep.degraded = r.u8() != 0;
  rep.y = r.f64_array(static_cast<std::size_t>(n));
  r.expect_end();
  return rep;
}

std::string ErrorReply::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(code));
  w.str(message);
  return w.take();
}

ErrorReply ErrorReply::decode(std::string_view payload) {
  WireReader r(payload);
  ErrorReply rep;
  rep.code = static_cast<ErrorCode>(r.u32());
  rep.message = r.str();
  r.expect_end();
  return rep;
}

// ----------------------------------------------------------- frame I/O ----

void write_frame(int fd, MsgType type, std::string_view payload,
                 const WireLimits& limits) {
  BSPMV_CHECK_MSG(payload.size() <= limits.max_frame_bytes,
                  "frame payload exceeds max_frame_bytes");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_le(frame, kMagic, 4);
  put_le(frame, kProtocolVersion, 4);
  put_le(frame, static_cast<std::uint32_t>(type), 4);
  put_le(frame, payload.size(), 8);
  frame.append(payload.data(), payload.size());

  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("frame send failed: ") +
                     std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

namespace {

/// Read exactly n bytes into buf. Returns the bytes read before EOF (== n
/// unless the peer closed). Throws io_error on socket errors and
/// timeout_error when the deadline passes with the read incomplete.
std::size_t read_exact(int fd, char* buf, std::size_t n, double deadline) {
  std::size_t got = 0;
  while (got < n) {
    const double remaining = deadline - now_seconds();
    if (remaining <= 0)
      throw timeout_error("frame read timed out mid-frame");
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr =
        ::poll(&pfd, 1, static_cast<int>(std::min(remaining, 3600.0) * 1e3) + 1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("poll failed: ") + std::strerror(errno));
    }
    if (pr == 0) continue;  // deadline re-checked at loop top
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("frame recv failed: ") +
                     std::strerror(errno));
    }
    if (r == 0) return got;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

std::uint64_t get_le(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

bool read_frame(int fd, MsgType& type, std::string& payload,
                const WireLimits& limits) {
  const double deadline = now_seconds() + limits.read_timeout_seconds;
  char header[kFrameHeaderBytes];
  const std::size_t got = read_exact(fd, header, sizeof header, deadline);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < sizeof header)
    throw parse_error("connection closed mid-frame header");

  const auto magic = static_cast<std::uint32_t>(get_le(header, 4));
  const auto version = static_cast<std::uint32_t>(get_le(header + 4, 4));
  const auto raw_type = static_cast<std::uint32_t>(get_le(header + 8, 4));
  const std::uint64_t len = get_le(header + 12, 8);

  if (magic != kMagic) {
    std::ostringstream os;
    os << "bad frame magic 0x" << std::hex << magic;
    throw parse_error(os.str());
  }
  if (version != kProtocolVersion) {
    std::ostringstream os;
    os << "unsupported protocol version " << version;
    throw parse_error(os.str());
  }
  if (raw_type < static_cast<std::uint32_t>(MsgType::kPing) ||
      raw_type > static_cast<std::uint32_t>(MsgType::kProgress)) {
    std::ostringstream os;
    os << "unknown frame type " << raw_type;
    throw parse_error(os.str());
  }
  if (len > limits.max_frame_bytes) {
    std::ostringstream os;
    os << "declared payload of " << len << " bytes exceeds the "
       << limits.max_frame_bytes << "-byte frame cap";
    throw parse_error(os.str());
  }

  payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    const std::size_t body =
        read_exact(fd, payload.data(), payload.size(), deadline);
    if (body < payload.size())
      throw parse_error("connection closed mid-frame body");
  }
  type = static_cast<MsgType>(raw_type);
  return true;
}

}  // namespace bspmv::serve
