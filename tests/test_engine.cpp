// SpmvEngine tests: prepare-once/run-many semantics, thread-count plans,
// borrow lifetime, fault-tolerant prepare audit trail, and the §V-A
// non-parallel rejection.
#include <gtest/gtest.h>

#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <vector>

#include "src/core/engine.hpp"
#include "src/formats/conversion_guard.hpp"
#include "src/kernels/spmv.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::expect_vectors_near;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;
using bspmv::testing::random_x;

Candidate bcsr_candidate(int r, int c, Impl impl = Impl::kScalar) {
  return Candidate{FormatKind::kBcsr, BlockShape{r, c}, 0, impl};
}

TEST(SpmvEngine, PlainPlanMatchesSerialKernel) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(66, 60, 2, 0.3, 0.8, 31));
  const auto x = random_x<double>(60, 32);
  aligned_vector<double> yref(66, 0.0), y(66, -1.0);
  spmv(a, x.data(), yref.data());

  for (const Candidate& c :
       {Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kSimd},
        bcsr_candidate(2, 2, Impl::kSimd),
        Candidate{FormatKind::kVbl, BlockShape{1, 1}, 0, Impl::kScalar}}) {
    const auto engine = SpmvEngine<double>::prepare(a, c);
    EXPECT_EQ(engine.threads(), 0);
    y.assign(66, -1.0);
    engine.run(x.data(), y.data());
    expect_vectors_near(y.data(), yref.data(), 66, "engine " + c.id());
  }
}

TEST(SpmvEngine, ThreadedPlanMatchesSerialBitwise) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(80, 75, 3, 0.3, 0.8, 33));
  const auto x = random_x<double>(75, 34);
  const Candidate c = bcsr_candidate(3, 1, Impl::kSimd);

  aligned_vector<double> yref(80, 0.0);
  SpmvEngine<double>::prepare(a, c).run(x.data(), yref.data());

  auto engine = SpmvEngine<double>::prepare(a, c, 3);
  aligned_vector<double> y(80, -1.0);
  engine.run(x.data(), y.data());
  for (std::size_t i = 0; i < 80; ++i) EXPECT_EQ(y[i], yref[i]) << "row " << i;
}

TEST(SpmvEngine, SetThreadsReplansOverTheSameFormat) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(50, 50, 0.1, 35));
  const auto x = random_x<double>(50, 36);
  aligned_vector<double> yref(50, 0.0);
  spmv(a, x.data(), yref.data());

  auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar});
  for (int t : {0, 1, 4, 2, 0}) {
    engine.set_threads(t);
    EXPECT_EQ(engine.threads(), t);
    aligned_vector<double> y(50, -1.0);
    engine.run(x.data(), y.data());
    expect_vectors_near(y.data(), yref.data(), 50,
                        "threads=" + std::to_string(t));
  }
}

TEST(SpmvEngine, NonParallelFormatRejectsThreadedPlan) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(20, 20, 0.3, 37));
  const Candidate vbl{FormatKind::kVbl, BlockShape{1, 1}, 0, Impl::kScalar};
  EXPECT_THROW(SpmvEngine<double>::prepare(a, vbl, 2), invalid_argument_error);
  // ...and flipping an existing plain engine to threaded fails the same way.
  auto engine = SpmvEngine<double>::prepare(a, vbl);
  EXPECT_THROW(engine.set_threads(2), invalid_argument_error);
}

TEST(SpmvEngine, BorrowSharesTheCallersFormat) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(40, 44, 0.1, 39));
  const AnyFormat<double> f =
      AnyFormat<double>::convert(a, bcsr_candidate(2, 2));
  const auto engine = SpmvEngine<double>::borrow(f);
  EXPECT_EQ(&engine.format(), &f);
  EXPECT_EQ(engine.prepared(), nullptr);

  const auto x = random_x<double>(44, 40);
  aligned_vector<double> yref(40, 0.0), y(40, -1.0);
  f.run(x.data(), yref.data());
  engine.run(x.data(), y.data());
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(y[i], yref[i]);
}

TEST(SpmvEngine, RankedPrepareKeepsTheAuditTrail) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(30, 30, 0.2, 41));
  // Starve blocked conversions (fill cap just below 1) so the BCSR
  // candidate is skipped and the engine lands on the CSR one.
  ConversionLimits tight;
  tight.max_fill_ratio = 1.0 - 1e-9;
  ConversionGuard::Scope scope(tight);
  const Candidate csr{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar};
  const std::vector<Candidate> ranked = {bcsr_candidate(4, 4), csr};
  const auto engine = SpmvEngine<double>::prepare(a, ranked, 2);
  ASSERT_NE(engine.prepared(), nullptr);
  EXPECT_FALSE(engine.prepared()->fallback);
  ASSERT_EQ(engine.prepared()->failures.size(), 1u);
  EXPECT_EQ(engine.prepared()->failures[0].candidate.id(),
            bcsr_candidate(4, 4).id());
  EXPECT_EQ(engine.format().candidate().id(), csr.id());

  const auto x = random_x<double>(30, 42);
  aligned_vector<double> yref(30, 0.0), y(30, -1.0);
  spmv(a, x.data(), yref.data());
  engine.run(x.data(), y.data());
  expect_vectors_near(y.data(), yref.data(), 30, "ranked prepare");
}

TEST(SpmvEngine, SetThreadsRollsBackWhenReplanFails) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(36, 36, 0.2, 51));
  const Candidate vbl{FormatKind::kVbl, BlockShape{1, 1}, 0, Impl::kScalar};
  auto engine = SpmvEngine<double>::prepare(a, vbl);
  const auto x = random_x<double>(36, 52);
  aligned_vector<double> yref(36, 0.0);
  spmv(a, x.data(), yref.data());

  // The failed replan must not poison the engine: threads() stays 0 and
  // the plain plan keeps running correctly (strong guarantee).
  EXPECT_THROW(engine.set_threads(2), invalid_argument_error);
  EXPECT_EQ(engine.threads(), 0);
  aligned_vector<double> y(36, -1.0);
  engine.run(x.data(), y.data());
  expect_vectors_near(y.data(), yref.data(), 36, "after failed replan");

  // Repeated failures and an explicit no-op 0 must behave the same.
  EXPECT_THROW(engine.set_threads(7), invalid_argument_error);
  engine.set_threads(0);
  EXPECT_EQ(engine.threads(), 0);
}

TEST(SpmvEngine, CsrFallbackEngineReplansAcrossThreadCounts) {
  const Coo<double> coo = random_coo<double>(48, 48, 0.15, 53);
  const auto a = Csr<double>::from_coo(coo);
  // Starve every blocked candidate so prepare degrades to scalar CSR.
  ConversionLimits tight;
  tight.max_fill_ratio = 1.0 - 1e-9;
  ConversionGuard::Scope scope(tight);
  auto engine = SpmvEngine<double>::prepare(
      a, std::vector<Candidate>{bcsr_candidate(4, 4), bcsr_candidate(2, 2)});
  ASSERT_NE(engine.prepared(), nullptr);
  ASSERT_TRUE(engine.prepared()->fallback);

  const auto x = random_x<double>(48, 54);
  aligned_vector<double> yref(48, 0.0);
  spmv(a, x.data(), yref.data());
  // The fallback format is CSR, which is parallelisable — replanning the
  // degraded engine across thread counts (0 included) must keep working.
  for (int t : {2, 0, 3, 1, 0}) {
    engine.set_threads(t);
    EXPECT_EQ(engine.threads(), t);
    aligned_vector<double> y(48, -1.0);
    engine.run(x.data(), y.data());
    expect_vectors_near(y.data(), yref.data(), 48,
                        "fallback threads=" + std::to_string(t));
  }
}

TEST(SpmvEngine, MeasureReturnsPositiveSeconds) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(32, 32, 0.2, 43));
  MeasureOptions opt;
  opt.iterations = 2;
  opt.reps = 1;
  opt.warmup = 0;
  const auto plain = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar});
  EXPECT_GT(plain.measure(opt), 0.0);
  const auto threaded = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar}, 2);
  EXPECT_GT(threaded.measure(opt), 0.0);
}

// ---------------------------------------------------------------------
// Resilience rails: deadline, cancellation, numeric guards
// ---------------------------------------------------------------------

TEST(SpmvEngine, MeasureThrowsTimeoutOnExpiredDeadline) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(64, 64, 0.1, 61));
  for (int threads : {0, 2}) {
    const auto engine = SpmvEngine<double>::prepare(
        a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar},
        threads);
    RunControl rc;
    rc.set_deadline(1e-6);  // expires before the first iteration edge
    MeasureOptions opt;
    opt.iterations = 1000;
    opt.reps = 1000;
    opt.control = &rc;
    EXPECT_THROW((void)engine.measure(opt), timeout_error)
        << "threads=" << threads;
    EXPECT_EQ(rc.reason(), AbortReason::kDeadline);
  }
}

TEST(SpmvEngine, MeasureThrowsCancelledOnPreCancelledControl) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(32, 32, 0.2, 62));
  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar}, 2);
  RunControl rc;
  rc.request_cancel("test cancel");
  MeasureOptions opt;
  opt.iterations = 2;
  opt.reps = 1;
  opt.control = &rc;
  EXPECT_THROW((void)engine.measure(opt), cancelled_error);
}

TEST(SpmvEngine, MeasureWithNumericGuardPassesOnCleanMatrix) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(40, 40, 2, 0.3, 0.8, 63));
  for (int threads : {0, 2}) {
    const auto engine =
        SpmvEngine<double>::prepare(a, bcsr_candidate(2, 2), threads);
    MeasureOptions opt;
    opt.iterations = 2;
    opt.reps = 2;
    opt.warmup = 0;  // the guard must force its own reference run
    opt.check_numerics = true;
    EXPECT_GT(engine.measure(opt), 0.0) << "threads=" << threads;
  }
}

TEST(SpmvEngine, MeasureWithNumericGuardCatchesNaNMatrix) {
  // A NaN stored value propagates into y; the post-warmup scan must turn
  // that into numerical_error instead of a silently poisoned timing.
  Coo<double> coo(16, 16);
  for (index_t i = 0; i < 16; ++i) coo.add(i, i, 1.0);
  coo.add(3, 7, std::numeric_limits<double>::quiet_NaN());
  const auto a = Csr<double>::from_coo(coo);
  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar});
  MeasureOptions opt;
  opt.iterations = 1;
  opt.reps = 1;
  opt.check_numerics = true;
  EXPECT_THROW((void)engine.measure(opt), numerical_error);
}

TEST(SpmvEngine, GuardedRunChecksInputAndOutput) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(24, 24, 0.25, 64));
  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar});
  auto x = random_x<double>(24, 65);
  aligned_vector<double> y(24, 0.0);
  EXPECT_NO_THROW(engine.run(x.data(), y.data(), nullptr, true));

  x[11] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(engine.run(x.data(), y.data(), nullptr, true),
               numerical_error);

  // And a cancelled control turns the guarded run into cancelled_error.
  x[11] = 0.5;
  RunControl rc;
  rc.request_cancel();
  EXPECT_THROW(engine.run(x.data(), y.data(), &rc, false), cancelled_error);
}

// ------------------------------------------------- executor backend ----

TEST(SpmvEngine, TaskBackendMatchesBulkBitwise) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(90, 84, 3, 0.3, 0.8,
                                                      71));
  const auto x = random_x<double>(84, 72);
  aligned_vector<double> yb(90, -1.0), yt(90, -2.0);

  const auto bulk =
      SpmvEngine<double>::prepare(a, bcsr_candidate(3, 1), 4,
                                  ExecBackend::kBulk);
  EXPECT_EQ(bulk.backend(), ExecBackend::kBulk);
  EXPECT_FALSE(bulk.async_capable());
  bulk.run(x.data(), yb.data());

  const auto tasks =
      SpmvEngine<double>::prepare(a, bcsr_candidate(3, 1), 4,
                                  ExecBackend::kTasks);
  EXPECT_EQ(tasks.backend(), ExecBackend::kTasks);
  EXPECT_TRUE(tasks.async_capable());
  tasks.run(x.data(), yt.data());
  for (std::size_t i = 0; i < 90; ++i) EXPECT_EQ(yt[i], yb[i]) << "row " << i;
}

TEST(SpmvEngine, SetBackendReplansOverTheSameFormat) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(70, 66, 2, 0.3, 0.8,
                                                      73));
  const auto x = random_x<double>(66, 74);
  aligned_vector<double> ref(70, 0.0), y(70, -1.0);

  auto engine = SpmvEngine<double>::prepare(a, bcsr_candidate(2, 2), 3);
  engine.run(x.data(), ref.data());
  engine.set_backend(ExecBackend::kTasks);
  EXPECT_EQ(engine.backend(), ExecBackend::kTasks);
  engine.run(x.data(), y.data());
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(y[i], ref[i]) << i;

  engine.set_backend(ExecBackend::kBulk);
  EXPECT_FALSE(engine.async_capable());
  y.assign(70, -1.0);
  engine.run(x.data(), y.data());
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(y[i], ref[i]) << i;
}

TEST(SpmvEngine, RunAsyncFallsBackToInlineForSyncPlans) {
  // A plain (non-task) plan has no async path: run_async must execute
  // synchronously and still deliver exactly one completion.
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(30, 30, 0.3, 75));
  const auto x = random_x<double>(30, 76);
  aligned_vector<double> ref(30, 0.0), y(30, -1.0);
  spmv(a, x.data(), ref.data());

  const auto engine = SpmvEngine<double>::prepare(
      a, Candidate{FormatKind::kCsr, BlockShape{1, 1}, 0, Impl::kScalar});
  int completions = 0;
  engine.run_async(x.data(), y.data(), nullptr,
                   [&](std::exception_ptr err) {
                     EXPECT_EQ(err, nullptr);
                     ++completions;  // inline: same thread
                   });
  EXPECT_EQ(completions, 1);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(y[i], ref[i]) << i;
}

TEST(SpmvEngine, RunAsyncOnTaskPlanDeliversOffThread) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(80, 75, 3, 0.3, 0.8,
                                                      77));
  const auto x = random_x<double>(75, 78);
  aligned_vector<double> ref(80, -1.0), y(80, -2.0);

  auto engine = SpmvEngine<double>::prepare(a, bcsr_candidate(3, 1), 3,
                                            ExecBackend::kTasks);
  engine.run(x.data(), ref.data());

  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  std::exception_ptr got;
  engine.run_async(x.data(), y.data(), nullptr,
                   [&](std::exception_ptr err) {
                     std::lock_guard<std::mutex> lk(mu);
                     got = err;
                     completed = true;
                     cv.notify_all();
                   });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return completed; });
  EXPECT_EQ(got, nullptr);
  for (std::size_t i = 0; i < 80; ++i) EXPECT_EQ(y[i], ref[i]) << i;
}

TEST(SpmvEngine, RunAsyncReportsCancelledControl) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(50, 48, 2, 0.3, 0.8,
                                                      79));
  const auto x = random_x<double>(48, 80);
  aligned_vector<double> y(50, 0.0);
  auto engine = SpmvEngine<double>::prepare(a, bcsr_candidate(2, 2), 2,
                                            ExecBackend::kTasks);
  RunControl rc;
  rc.request_cancel();

  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  std::exception_ptr got;
  engine.run_async(x.data(), y.data(), &rc, [&](std::exception_ptr err) {
    std::lock_guard<std::mutex> lk(mu);
    got = err;
    completed = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return completed; });
  ASSERT_NE(got, nullptr);
  EXPECT_THROW(std::rethrow_exception(got), cancelled_error);
}

TEST(SpmvEngine, WarmUpIsHarmlessOnEveryPlanKind) {
  const Csr<double> a =
      Csr<double>::from_coo(random_blocky_coo<double>(60, 55, 2, 0.3, 0.8,
                                                      81));
  auto x = random_x<double>(55, 82);
  const aligned_vector<double> x_before = x;
  aligned_vector<double> ref(60, 0.0), y(60, -1.0);
  spmv(a, x.data(), ref.data());

  for (ExecBackend backend : {ExecBackend::kBulk, ExecBackend::kTasks}) {
    auto engine = SpmvEngine<double>::prepare(a, bcsr_candidate(2, 2), 2,
                                              backend);
    engine.warm_up(x.data(), y.data());
    for (std::size_t j = 0; j < 55; ++j)
      ASSERT_EQ(x[j], x_before[j]) << backend_name(backend) << " x " << j;
    y.assign(60, -1.0);
    engine.run(x.data(), y.data());
    for (std::size_t i = 0; i < 60; ++i)
      ASSERT_EQ(y[i], ref[i]) << backend_name(backend) << " row " << i;
  }
}

}  // namespace
}  // namespace bspmv
