// Reproduces Figure 4: the measured execution time of the (method, block,
// implementation) each model selects, normalised over the best measured
// time for that matrix — single and double precision. A value of 1.0
// means the model picked the optimum.
#include <cstdio>

#include "bench/harness.hpp"
#include "src/core/selector.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

constexpr ModelKind kModels[] = {ModelKind::kMem, ModelKind::kMemComp,
                                 ModelKind::kOverlap, ModelKind::kMemLat};

template <class V>
void run_precision(const BenchConfig& cfg, const MachineProfile& profile,
                   SweepCache& cache, const std::vector<int>& ids) {
  constexpr Precision prec = precision_of<V>;
  const auto cands = model_candidates(true);

  std::printf("\nFigure 4 (%s): real time of each model's selection / best "
              "overall time\n",
              prec == Precision::kSingle ? "single precision"
                                         : "double precision");
  print_rule(94);
  std::printf("%-18s", "matrix");
  for (ModelKind m : kModels) std::printf(" %9s", model_name(m));
  std::printf("  %-24s\n", "overlap picked");
  print_rule(94);

  std::map<ModelKind, double> sum;
  for (int id : ids) {
    if (cfg.verbose) std::fprintf(stderr, "matrix %d (%s)...\n", id,
                                  precision_name(prec));
    const Csr<V> a = build_suite_csr<V>(id, cfg.scale);
    const auto secs = sweep_matrix(a, id, cands, cfg, cache);

    double best = 1e300;
    for (const auto& [cid, t] : secs) best = std::min(best, t);

    std::printf("%02d.%-15s", id,
                suite_catalog()[static_cast<size_t>(id - 1)].name.c_str());
    std::string overlap_pick;
    for (ModelKind m : kModels) {
      const RankedCandidate sel = select_best(m, a, profile);
      const double real = secs.at(sel.candidate.id());
      std::printf(" %9.3f", real / best);
      sum[m] += real / best;
      if (m == ModelKind::kOverlap) overlap_pick = sel.candidate.id();
    }
    std::printf("  %-24s\n", overlap_pick.c_str());
  }
  print_rule(94);
  std::printf("%-18s", "average");
  for (ModelKind m : kModels)
    std::printf(" %9.3f", sum[m] / static_cast<double>(ids.size()));
  std::printf("\n");
  print_rule(94);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  const MachineProfile profile = get_machine_profile(cfg);
  SweepCache cache(cfg.cache_path, cfg.no_cache);

  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty())
    for (int i = 3; i <= 30; ++i) ids.push_back(i);

  run_precision<float>(cfg, profile, cache, ids);
  run_precision<double>(cfg, profile, cache, ids);
  return 0;
}
