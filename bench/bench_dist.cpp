// Distributed SpMV bench: row-sharded multi-process execution with
// overlapped vs naive halo exchange (docs/distribution.md) over a
// comm-heavy-to-comm-light slice of the suite. For each matrix, both
// exchange modes run over the same nnz-balanced shard plan; the bench
// records measured and t_comm-model-predicted time per mode, the
// per-rank send/recv/wait/local/halo timelines (the overlap claim is
// wait_overlap << wait_naive: comm hidden under the local-columns
// pass), and whether choose_dist_mode picked the measured winner.
//
// Results go to BENCH_dist.json (--out, checked in as the reference
// trajectory) and the BENCH_report.json trajectory. --smoke runs a
// seconds-long tiny configuration for CI.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/models.hpp"
#include "src/dist/driver.hpp"
#include "src/kernels/spmv.hpp"
#include "src/profile/comm_bench.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/timing.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

struct ModeResult {
  double measured_seconds = 0.0;   ///< wall per iteration, median batch
  double predicted_seconds = 0.0;  ///< predict_distributed
  double worst_wait_seconds = 0.0; ///< per iteration, worst rank
  std::vector<double> batch_seconds;  ///< per-iteration wall of each batch
  std::vector<dist::RankStats> rank_stats;  ///< from the median batch
};

Json::Object rank_stats_json(const dist::ShardPlan& plan,
                             const std::vector<dist::RankStats>& stats,
                             int iterations) {
  Json::Object o;
  Json::Array arr;
  for (std::size_t r = 0; r < stats.size(); ++r) {
    const dist::RankShard& sh = plan.shards[r];
    const dist::RankStats& s = stats[r];
    Json::Object js;
    js["rank"] = static_cast<int>(r);
    js["rows"] = static_cast<std::int64_t>(sh.rows());
    js["nnz"] = static_cast<std::uint64_t>(sh.nnz);
    js["halo_cols"] = static_cast<std::uint64_t>(sh.halo_count());
    js["send_seconds"] = s.send_seconds;
    js["recv_seconds"] = s.recv_seconds;
    js["wait_seconds"] = s.wait_seconds;
    js["local_seconds"] = s.local_seconds;
    js["halo_seconds"] = s.halo_seconds;
    js["total_seconds"] = s.total_seconds;
    js["bytes_sent"] = static_cast<std::uint64_t>(s.bytes_sent);
    js["bytes_recv"] = static_cast<std::uint64_t>(s.bytes_recv);
    arr.push_back(Json(std::move(js)));
  }
  o["iterations"] = iterations;
  o["ranks"] = Json(std::move(arr));
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_option("out", "BENCH_dist.json", "result JSON path (\"\" = off)");
  cli.add_option("ranks", "4", "rank processes (2..16)");
  cli.add_option("dist-threads", "1", "TaskPool workers per rank");
  cli.add_option("dist-iters", "40", "iterations per timed batch");
  cli.add_option("dist-reps", "5",
                 "interleaved naive/overlap batches; min batch reported");
  cli.add_flag("smoke", "tiny seconds-long CI run (skips the JSON output)");
  if (!cli.parse(argc, argv)) return 0;
  auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  BenchConfig cfg = *cfg_opt;

  const bool smoke = cli.get_flag("smoke");
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  int iters = static_cast<int>(cli.get_int("dist-iters"));
  std::vector<int> ids = cfg.matrix_ids;
  if (smoke) {
    cfg.scale = SuiteScale::kTiny;
    iters = 3;
    if (ids.empty()) ids = {20};
  } else if (ids.empty()) {
    // Latency-dominated exchanges (parabolic_fem, Hamrle3: thin halos)
    // through bandwidth-dominated ones (G3_circuit, kkt_power, thermal2:
    // wide halos) — the overlap-vs-naive split of arXiv 1106.5908 needs
    // both regimes to be interesting.
    ids = {4, 7, 8, 17, 28};
  }

  // The t_comm parameters ride in the shared machine profile; profile
  // them here (full, not quick) if this machine has none yet, and
  // persist so every later bench/report reuses the same α/β.
  MachineProfile profile = get_machine_profile(cfg);
  if (profile.comm_beta_bps <= 0.0) {
    std::printf("profiling wire comm alpha/beta...\n");
    const CommProfile c = profile_comm(/*quick=*/smoke);
    profile.comm_alpha_seconds = c.alpha_seconds;
    profile.comm_beta_bps = c.beta_bps;
    profile.save(cfg.profile_path);
  }

  std::printf("distributed SpMV: %d ranks, overlap vs naive halo exchange "
              "(scale=%s, %d iters, alpha %.2f us, beta %.2f GiB/s)\n",
              ranks, suite_scale_name(cfg.scale), iters,
              profile.comm_alpha_seconds * 1e6,
              profile.comm_beta_bps / (1u << 30));
  print_rule(102);
  std::printf("%-18s %12s %12s %9s %12s %12s %9s %8s\n", "matrix",
              "naive ms", "overlap ms", "speedup", "pred naive", "pred ovl",
              "model", "match");
  print_rule(102);

  Json::Object out;
  out["bench"] = "dist";
  out["scale"] = suite_scale_name(cfg.scale);
  out["ranks"] = ranks;
  out["iterations"] = iters;
  out["comm_alpha_seconds"] = profile.comm_alpha_seconds;
  out["comm_beta_bps"] = profile.comm_beta_bps;
  Json::Array matrices;

  int matches = 0, rows_done = 0;
  double best_overlap_speedup = 0.0;
  std::string best_overlap_name;

  for (int id : ids) {
    const Csr<double> a = build_suite_csr<double>(id, cfg.scale);
    const std::string name =
        suite_catalog()[static_cast<std::size_t>(id - 1)].name;

    dist::DistOptions dopt;
    dopt.ranks = ranks;
    dopt.threads_per_rank = static_cast<int>(cli.get_int("dist-threads"));
    dist::DistSpmv d(a, dopt);
    const std::vector<DistRankCost> costs = d.rank_costs();

    aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 0.5 + 0.001 * static_cast<double>(i % 997);
    aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

    // Interleave the modes batch by batch and report each mode's
    // *median* batch: interleaving cancels slow machine-wide drift, and
    // the median keeps the typical scheduling conditions both modes
    // actually run under. (Min-of-batches — the aggregator the
    // candidate harness uses — is wrong here: each mode's luckiest
    // batch is the interference-free schedule, which costs the same
    // total CPU in both modes and erases the very contention the two
    // exchange strategies differ on.)
    std::map<DistMode, ModeResult> res;
    for (DistMode m : {DistMode::kNaive, DistMode::kOverlap}) {
      res[m].predicted_seconds = predict_distributed(profile, costs, m);
      d.set_mode(m);
      d.run(x.data(), y.data(), 1);  // warm-up (fault page-ins, caches)
    }
    const int reps = std::max(1, static_cast<int>(cli.get_int("dist-reps")));
    for (int rep = 0; rep < reps; ++rep) {
      for (DistMode m : {DistMode::kNaive, DistMode::kOverlap}) {
        d.set_mode(m);
        Timer t;
        d.run(x.data(), y.data(), iters);
        ModeResult& mr = res[m];
        const double per_iter = t.elapsed() / iters;
        // Keep the stats of the batch that is the running median so the
        // reported per-rank timeline belongs to the reported time.
        std::vector<double> sorted = mr.batch_seconds;
        sorted.push_back(per_iter);
        std::sort(sorted.begin(), sorted.end());
        mr.batch_seconds.push_back(per_iter);
        if (per_iter == sorted[sorted.size() / 2] ||
            mr.rank_stats.empty()) {
          mr.rank_stats = d.last_stats();
          mr.worst_wait_seconds = 0.0;
          for (const dist::RankStats& s : mr.rank_stats)
            mr.worst_wait_seconds =
                std::max(mr.worst_wait_seconds, s.wait_seconds / iters);
        }
      }
    }
    for (DistMode m : {DistMode::kNaive, DistMode::kOverlap}) {
      std::vector<double> sorted = res[m].batch_seconds;
      std::sort(sorted.begin(), sorted.end());
      res[m].measured_seconds = sorted[sorted.size() / 2];
    }

    // Sanity: the result must agree with serial CSR (tolerance — the
    // column split reorders within-row sums).
    aligned_vector<double> yref(static_cast<std::size_t>(a.rows()), 0.0);
    spmv(a, x.data(), yref.data());
    for (std::size_t i = 0; i < yref.size(); ++i) {
      const double scale = std::max({std::abs(yref[i]), 1.0});
      if (std::abs(y[i] - yref[i]) > 1e-9 * scale)
        throw numerical_error("dist bench: result diverges from serial CSR");
    }

    const ModeResult& rn = res[DistMode::kNaive];
    const ModeResult& ro = res[DistMode::kOverlap];
    const DistMode predicted = choose_dist_mode(profile, costs);
    // A mode is the measured winner only when it beats the other by
    // more than the 3% noise floor (same margin as the SpMM crossover
    // checks); inside it the run is a dead heat and either prediction
    // is correct — run-to-run scheduling jitter exceeds the gap.
    constexpr double kNoiseMargin = 0.97;
    const char* measured_mode = "tie";
    if (ro.measured_seconds < kNoiseMargin * rn.measured_seconds)
      measured_mode = "overlap";
    else if (rn.measured_seconds < kNoiseMargin * ro.measured_seconds)
      measured_mode = "naive";
    const bool match =
        std::string(measured_mode) == "tie" ||
        measured_mode == std::string(dist_mode_name(predicted));
    matches += match ? 1 : 0;
    ++rows_done;
    const double speedup = rn.measured_seconds / ro.measured_seconds;
    if (speedup > best_overlap_speedup) {
      best_overlap_speedup = speedup;
      best_overlap_name = name;
    }

    std::printf("%02d.%-15s %12.3f %12.3f %8.2fx %12.3f %12.3f %9s %8s\n",
                id, name.c_str(), rn.measured_seconds * 1e3,
                ro.measured_seconds * 1e3, speedup,
                rn.predicted_seconds * 1e3, ro.predicted_seconds * 1e3,
                dist_mode_name(predicted),
                match ? (std::string(measured_mode) == "tie" ? "tie" : "yes")
                      : "NO");
    std::printf("   worst-rank wait/iter: naive %.3f ms -> overlap %.3f ms "
                "(comm hidden under local compute)\n",
                rn.worst_wait_seconds * 1e3, ro.worst_wait_seconds * 1e3);

    Json::Object row;
    row["id"] = id;
    row["name"] = name;
    row["rows"] = static_cast<std::int64_t>(a.rows());
    row["nnz"] = static_cast<std::uint64_t>(a.nnz());
    row["measured_naive_s"] = rn.measured_seconds;
    row["measured_overlap_s"] = ro.measured_seconds;
    row["predicted_naive_s"] = rn.predicted_seconds;
    row["predicted_overlap_s"] = ro.predicted_seconds;
    row["overlap_speedup"] = speedup;
    row["worst_wait_naive_s"] = rn.worst_wait_seconds;
    row["worst_wait_overlap_s"] = ro.worst_wait_seconds;
    Json::Array nb, ob;
    for (double s : rn.batch_seconds) nb.push_back(Json(s));
    for (double s : ro.batch_seconds) ob.push_back(Json(s));
    row["naive_batches_s"] = Json(std::move(nb));
    row["overlap_batches_s"] = Json(std::move(ob));
    row["predicted_mode"] = dist_mode_name(predicted);
    row["measured_mode"] = measured_mode;
    row["model_match"] = match;
    row["naive"] = Json(rank_stats_json(d.plan(), rn.rank_stats, iters));
    row["overlap"] = Json(rank_stats_json(d.plan(), ro.rank_stats, iters));
    matrices.push_back(Json(std::move(row)));
  }
  print_rule(102);
  std::printf("summary: model picked the measured winner on %d/%d matrices; "
              "best overlap speedup %.2fx (%s)\n",
              matches, rows_done, best_overlap_speedup,
              best_overlap_name.c_str());

  out["matrices"] = Json(std::move(matrices));
  out["model_matches"] = matches;
  out["matrices_run"] = rows_done;
  out["best_overlap_speedup"] = best_overlap_speedup;
  out["best_overlap_matrix"] = best_overlap_name;
  const Json doc{std::move(out)};

  const std::string path = cli.get("out");
  if (!smoke && !path.empty()) {
    atomic_write_file(path, doc.dump(2) + '\n');
    std::printf("wrote %s\n", path.c_str());
  }
  append_bench_report(cfg, "dist", doc);
  return 0;
}
