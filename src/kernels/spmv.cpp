#include "src/kernels/spmv.hpp"

#include "src/kernels/bcsd_kernels.hpp"
#include "src/kernels/bcsr_kernels.hpp"
#include "src/kernels/csr_kernels.hpp"
#include "src/kernels/ubcsr_kernels.hpp"
#include "src/kernels/vbl_kernels.hpp"
#include "src/kernels/vbr_kernels.hpp"

namespace bspmv {

template <class V>
void spmv_add(const Csr<V>& a, const V* x, V* y, Impl impl) {
  if (impl == Impl::kSimd)
    csr_spmv_simd(a, 0, a.rows(), x, y);
  else
    csr_spmv_scalar(a, 0, a.rows(), x, y);
}

template <class V>
void spmv_add(const Bcsr<V>& a, const V* x, V* y, Impl impl) {
  bcsr_kernel<V>(a.shape(), impl == Impl::kSimd)(a, 0, a.block_rows(), x, y);
}

template <class V>
void spmv_add(const Bcsd<V>& a, const V* x, V* y, Impl impl) {
  bcsd_kernel<V>(a.b(), impl == Impl::kSimd)(a, 0, a.segments(), x, y);
}

template <class V>
void spmv_add(const Vbl<V>& a, const V* x, V* y, Impl impl) {
  if (impl == Impl::kSimd)
    vbl_spmv_simd(a, x, y);
  else
    vbl_spmv_scalar(a, x, y);
}

template <class V>
void spmv_add(const Vbr<V>& a, const V* x, V* y, Impl impl) {
  if (impl == Impl::kSimd)
    vbr_spmv_simd(a, x, y);
  else
    vbr_spmv_scalar(a, x, y);
}

template <class V>
void spmv_add(const Ubcsr<V>& a, const V* x, V* y, Impl impl) {
  ubcsr_kernel<V>(a.shape(), impl == Impl::kSimd)(a, 0, a.block_rows(), x, y);
}

template <class V>
void spmv_add(const CsrDelta<V>& a, const V* x, V* y, Impl) {
  csr_delta_spmv(a, x, y);
}

template <class V>
void spmv_add(const BcsrDec<V>& a, const V* x, V* y, Impl impl) {
  spmv_add(a.blocked(), x, y, impl);
  spmv_add(a.remainder(), x, y, impl);
}

template <class V>
void spmv_add(const BcsdDec<V>& a, const V* x, V* y, Impl impl) {
  spmv_add(a.blocked(), x, y, impl);
  spmv_add(a.remainder(), x, y, impl);
}

#define BSPMV_INSTANTIATE(V)                                    \
  template void spmv_add(const Csr<V>&, const V*, V*, Impl);    \
  template void spmv_add(const Bcsr<V>&, const V*, V*, Impl);   \
  template void spmv_add(const Bcsd<V>&, const V*, V*, Impl);   \
  template void spmv_add(const Vbl<V>&, const V*, V*, Impl);    \
  template void spmv_add(const Vbr<V>&, const V*, V*, Impl);    \
  template void spmv_add(const BcsrDec<V>&, const V*, V*, Impl); \
  template void spmv_add(const BcsdDec<V>&, const V*, V*, Impl); \
  template void spmv_add(const Ubcsr<V>&, const V*, V*, Impl);   \
  template void spmv_add(const CsrDelta<V>&, const V*, V*, Impl);

BSPMV_INSTANTIATE(float)
BSPMV_INSTANTIATE(double)
#undef BSPMV_INSTANTIATE

}  // namespace bspmv
