#include "src/formats/csr_delta.hpp"

#include "src/formats/conversion_guard.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

namespace {

// LEB128 unsigned varint append.
void put_varint(aligned_vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

BSPMV_ALWAYS_INLINE std::uint32_t get_varint(
    const std::uint8_t* BSPMV_RESTRICT& p) {
  std::uint32_t v = *p & 0x7f;
  int shift = 7;
  while (*p++ & 0x80) {
    v |= static_cast<std::uint32_t>(*p & 0x7f) << shift;
    shift += 7;
  }
  return v;
}

}  // namespace

template <class V>
CsrDelta<V> CsrDelta<V>::from_csr(const Csr<V>& a) {
  // Worst case is five control bytes per nonzero (a 32-bit varint).
  ConversionGuard::check("csr_delta", a.nnz(), a.nnz(), sizeof(V),
                         5 * a.nnz() + 2 * (static_cast<std::size_t>(a.rows()) + 1) *
                             sizeof(index_t));
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();

  CsrDelta out;
  out.rows_ = n;
  out.cols_ = a.cols();
  out.row_ptr_ = row_ptr;
  out.val_ = a.val();
  out.ctl_ptr_.reserve(static_cast<std::size_t>(n) + 1);
  out.ctl_ptr_.push_back(0);
  out.ctl_.reserve(a.nnz());  // lower bound: >= 1 byte per entry

  for (index_t i = 0; i < n; ++i) {
    index_t prev = 0;
    bool first = true;
    for (index_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_ind[static_cast<std::size_t>(k)];
      if (first) {
        put_varint(out.ctl_, static_cast<std::uint32_t>(j));
        first = false;
      } else {
        BSPMV_DBG_ASSERT(j > prev);  // CSR columns are sorted and unique
        put_varint(out.ctl_, static_cast<std::uint32_t>(j - prev));
      }
      prev = j;
    }
    out.ctl_ptr_.push_back(static_cast<index_t>(out.ctl_.size()));
  }
  return out;
}

template <class V>
std::size_t CsrDelta<V>::working_set_bytes() const {
  return val_.size() * sizeof(V) + row_ptr_.size() * sizeof(index_t) +
         ctl_ptr_.size() * sizeof(index_t) + ctl_.size() +
         static_cast<std::size_t>(cols_) * sizeof(V) +
         static_cast<std::size_t>(rows_) * sizeof(V);
}

template <class V>
Coo<V> CsrDelta<V>::to_coo() const {
  Coo<V> coo(rows_, cols_);
  coo.reserve(nnz());
  for (index_t i = 0; i < rows_; ++i) {
    const std::uint8_t* p = ctl_.data() + ctl_ptr_[static_cast<std::size_t>(i)];
    index_t col = 0;
    for (index_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto d = static_cast<index_t>(get_varint(p));
      col = (k == row_ptr_[static_cast<std::size_t>(i)]) ? d : col + d;
      coo.add(i, col, val_[static_cast<std::size_t>(k)]);
    }
  }
  return coo;
}

template <class V>
void csr_delta_spmv(const CsrDelta<V>& a, const V* BSPMV_RESTRICT x,
                    V* BSPMV_RESTRICT y) {
  const index_t* BSPMV_RESTRICT row_ptr = a.row_ptr().data();
  const index_t* BSPMV_RESTRICT ctl_ptr = a.ctl_ptr().data();
  const std::uint8_t* BSPMV_RESTRICT ctl = a.ctl().data();
  const V* BSPMV_RESTRICT val = a.val().data();
  const index_t n = a.rows();

  for (index_t i = 0; i < n; ++i) {
    const std::uint8_t* p = ctl + ctl_ptr[i];
    const index_t lo = row_ptr[i];
    const index_t hi = row_ptr[i + 1];
    V sum{0};
    index_t col = 0;
    for (index_t k = lo; k < hi; ++k) {
      const auto d = static_cast<index_t>(get_varint(p));
      col = (k == lo) ? d : col + d;
      sum += val[k] * x[col];
    }
    y[i] += sum;
  }
}

template class CsrDelta<float>;
template class CsrDelta<double>;
template void csr_delta_spmv(const CsrDelta<float>&, const float*, float*);
template void csr_delta_spmv(const CsrDelta<double>&, const double*, double*);

}  // namespace bspmv
