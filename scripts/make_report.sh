#!/usr/bin/env bash
# Build the tree and produce validated RunReports for a handful of suite
# matrices — the one-command demo of the observability subsystem
# (docs/observability.md). Each report is re-validated through the schema
# validator and appended to the BENCH_report.json trajectory; finishes
# with the docs link check so the whole pipeline gates on one exit code.
#
#   scripts/make_report.sh [--no-build]
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" != "--no-build" ]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
fi

tool=build/examples/mtx_tool
[ -x "$tool" ] || { echo "make_report: $tool not built" >&2; exit 1; }

# Small dense-ish, large sparse, and the paper's hardest irregular case.
for id in 2 8 21; do
  out="report_suite${id}.json"
  "$tool" report --suite "$id" --scale tiny --iterations 3 --reps 1 \
    --out "$out" --append BENCH_report.json
  "$tool" report --validate "$out"
done

bash scripts/check_links.sh
echo "make_report: OK (reports + trajectory validated)"
