// UBCSR (unaligned BCSR extension) tests: padding is never worse than
// aligned BCSR, blocks stay disjoint/in-order, and kernels match the
// reference across every shape × impl.
#include <gtest/gtest.h>

#include "src/formats/bcsr.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/kernels/spmv.hpp"
#include "src/kernels/ubcsr_kernels.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;

TEST(Ubcsr, UnalignedBlockAvoidsBcsrPadding) {
  // A dense 2x3 patch anchored at column 1 (not a multiple of 3): aligned
  // BCSR needs two blocks (12 stored values), UBCSR needs one (6).
  Coo<double> coo(2, 8);
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 1; j <= 3; ++j) coo.add(i, j, 1.0 + i + j);
  const Csr<double> a = Csr<double>::from_coo(coo);

  const Bcsr<double> aligned = Bcsr<double>::from_csr(a, BlockShape{2, 3});
  const Ubcsr<double> unaligned = Ubcsr<double>::from_csr(a, BlockShape{2, 3});
  EXPECT_EQ(aligned.blocks(), 2u);
  EXPECT_EQ(aligned.padding(), 6u);
  EXPECT_EQ(unaligned.blocks(), 1u);
  EXPECT_EQ(unaligned.padding(), 0u);
  EXPECT_EQ(unaligned.bcol_ind()[0], 1);  // anchored at the first nonzero
}

TEST(Ubcsr, NeverPadsMoreThanAlignedBcsr) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_blocky_coo<double>(60, 66, 3, 0.3, 0.8, seed));
    for (BlockShape shape : bcsr_shapes()) {
      const std::size_t pad_aligned =
          Bcsr<double>::from_csr(a, shape).padding();
      const std::size_t pad_unaligned =
          Ubcsr<double>::from_csr(a, shape).padding();
      EXPECT_LE(pad_unaligned, pad_aligned) << shape.to_string();
    }
  }
}

TEST(Ubcsr, BlocksAreDisjointAndOrdered) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(40, 50, 0.15, 5));
  for (BlockShape shape : {BlockShape{2, 3}, BlockShape{4, 2}}) {
    const Ubcsr<double> m = Ubcsr<double>::from_csr(a, shape);
    for (index_t br = 0; br < m.block_rows(); ++br) {
      for (index_t blk = m.brow_ptr()[static_cast<std::size_t>(br)] + 1;
           blk < m.brow_ptr()[static_cast<std::size_t>(br) + 1]; ++blk) {
        // Next anchor starts at or after the previous block's end.
        EXPECT_GE(m.bcol_ind()[static_cast<std::size_t>(blk)],
                  m.bcol_ind()[static_cast<std::size_t>(blk) - 1] + shape.c);
      }
    }
  }
}

TEST(Ubcsr, StatsMatchMaterialisedFormat) {
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(55, 49, 4, 0.3, 0.7, 7));
  for (BlockShape shape : bcsr_shapes()) {
    const BlockStats st = ubcsr_stats(a, shape);
    const Ubcsr<double> m = Ubcsr<double>::from_csr(a, shape);
    EXPECT_EQ(st.blocks, m.blocks()) << shape.to_string();
    EXPECT_EQ(st.stored_values, m.bval().size()) << shape.to_string();
    EXPECT_EQ(st.padding(), m.padding()) << shape.to_string();
  }
}

TEST(Ubcsr, RoundTripPreservesEntries) {
  Coo<double> coo = random_coo<double>(37, 43, 0.12, 9);
  coo.sort_and_combine();
  const Csr<double> a = Csr<double>::from_coo(coo);
  for (BlockShape shape : {BlockShape{2, 2}, BlockShape{1, 8},
                           BlockShape{3, 2}, BlockShape{8, 1}}) {
    Coo<double> back = Ubcsr<double>::from_csr(a, shape).to_coo();
    back.sort_and_combine();
    ASSERT_EQ(back.nnz(), coo.nnz()) << shape.to_string();
    for (std::size_t k = 0; k < coo.nnz(); ++k)
      EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
  }
}

struct UbcsrCase {
  BlockShape shape;
  bool simd;
};

class UbcsrKernels : public ::testing::TestWithParam<UbcsrCase> {};

TEST_P(UbcsrKernels, DoubleMatchesReference) {
  const auto [shape, simd] = GetParam();
  // 47 columns (prime): right-edge blocks poke past the matrix and take
  // the clamped path.
  const Coo<double> coo = random_coo<double>(53, 47, 0.1, 11);
  const Ubcsr<double> m =
      Ubcsr<double>::from_csr(Csr<double>::from_coo(coo), shape);
  check_against_reference<double>(
      coo,
      [&](const double* x, double* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "ubcsr " + shape.to_string());
}

TEST_P(UbcsrKernels, FloatMatchesReference) {
  const auto [shape, simd] = GetParam();
  const Coo<float> coo = random_blocky_coo<float>(48, 54, 3, 0.3, 0.8, 13);
  const Ubcsr<float> m =
      Ubcsr<float>::from_csr(Csr<float>::from_coo(coo), shape);
  check_against_reference<float>(
      coo,
      [&](const float* x, float* y) {
        spmv(m, x, y, simd ? Impl::kSimd : Impl::kScalar);
      },
      "ubcsr float " + shape.to_string());
}

std::vector<UbcsrCase> all_ubcsr_cases() {
  std::vector<UbcsrCase> cases;
  for (BlockShape s : bcsr_shapes()) {
    cases.push_back({s, false});
    cases.push_back({s, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllShapesAndImpls, UbcsrKernels,
                         ::testing::ValuesIn(all_ubcsr_cases()),
                         [](const auto& info) {
                           return info.param.shape.to_string() +
                                  (info.param.simd ? "_simd" : "_scalar");
                         });

TEST(Ubcsr, EdgeBlockPokingPastColumnsIsSafe) {
  // Single nonzero in the last column: the 1x8 block extends 7 columns
  // past the matrix; only padding lives there.
  Coo<double> coo(1, 10);
  coo.add(0, 9, 3.0);
  const Ubcsr<double> m =
      Ubcsr<double>::from_csr(Csr<double>::from_coo(coo), BlockShape{1, 8});
  ASSERT_EQ(m.blocks(), 1u);
  EXPECT_EQ(m.bcol_ind()[0], 9);
  const aligned_vector<double> x = {0, 0, 0, 0, 0, 0, 0, 0, 0, 2.0};
  aligned_vector<double> y(1, 0.0);
  spmv(m, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  spmv(m, x.data(), y.data(), Impl::kSimd);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

}  // namespace
}  // namespace bspmv
