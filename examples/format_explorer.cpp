// Format explorer — a textual reproduction of the paper's Figure 1: shows
// how BCSR, BCSD, 1D-VBL and VBR split the same small matrix into blocks,
// and prints each format's arrays.
//
//   $ ./format_explorer
#include <cstdio>

#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/decomposed.hpp"
#include "src/formats/vbl.hpp"
#include "src/formats/vbr.hpp"

using namespace bspmv;

namespace {

void print_dense(const Coo<double>& coo) {
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(coo.rows()),
      std::vector<double>(static_cast<std::size_t>(coo.cols()), 0.0));
  for (const auto& e : coo.entries())
    m[static_cast<std::size_t>(e.row)][static_cast<std::size_t>(e.col)] =
        e.value;
  for (const auto& row : m) {
    for (double v : row)
      v == 0.0 ? std::printf("  .") : std::printf(" %2.0f", v);
    std::printf("\n");
  }
}

template <class Vec>
void print_array(const char* name, const Vec& v) {
  std::printf("  %-10s = [", name);
  for (const auto& e : v) std::printf(" %g", static_cast<double>(e));
  std::printf(" ]\n");
}

}  // namespace

int main() {
  // The 8x8 example matrix in the spirit of the paper's Figure 1.
  Coo<double> coo(8, 8);
  const int entries[][3] = {
      {0, 0, 2}, {0, 1, 9}, {0, 4, 8}, {0, 5, 1}, {1, 0, 1}, {1, 1, 5},
      {1, 6, 5}, {1, 7, 1}, {2, 2, 6}, {2, 3, 9}, {3, 2, 2}, {3, 3, 4},
      {4, 4, 6}, {5, 5, 3}, {6, 6, 3}, {6, 7, 7}, {7, 6, 1}, {7, 7, 9},
  };
  for (const auto& e : entries)
    coo.add(e[0], e[1], static_cast<double>(e[2]));
  const Csr<double> a = Csr<double>::from_coo(coo);

  std::printf("Input matrix A (8x8, %zu nonzeros):\n", a.nnz());
  print_dense(coo);

  std::printf("\n(a) BCSR, 2x2 aligned blocks with padding\n");
  const Bcsr<double> bcsr = Bcsr<double>::from_csr(a, BlockShape{2, 2});
  std::printf("  %zu blocks, %zu padded zeros\n", bcsr.blocks(),
              bcsr.padding());
  print_array("brow_ptr", bcsr.brow_ptr());
  print_array("bcol_ind", bcsr.bcol_ind());
  print_array("bval", bcsr.bval());

  std::printf("\n(b) BCSD, diagonal blocks of length 2 with padding\n");
  const Bcsd<double> bcsd = Bcsd<double>::from_csr(a, 2);
  std::printf("  %zu diagonal blocks, %zu padded zeros\n", bcsd.blocks(),
              bcsd.padding());
  print_array("brow_ptr", bcsd.brow_ptr());
  print_array("bcol_ind", bcsd.bcol_ind());
  print_array("bval", bcsd.bval());

  std::printf("\n(c) 1D-VBL, variable-length horizontal blocks, no padding\n");
  const Vbl<double> vbl = Vbl<double>::from_csr(a);
  std::printf("  %zu blocks\n", vbl.blocks());
  print_array("row_ptr", vbl.row_ptr());
  print_array("bcol_ind", vbl.bcol_ind());
  print_array("blk_size", vbl.blk_size());
  print_array("val", vbl.val());

  std::printf("\n(d) VBR, 2-D variable blocks (row/column partitions)\n");
  const Vbr<double> vbr = Vbr<double>::from_csr(a);
  std::printf("  %d block rows x %d block cols, %zu stored blocks\n",
              vbr.block_rows(), vbr.block_cols(), vbr.blocks());
  print_array("rpntr", vbr.rpntr());
  print_array("cpntr", vbr.cpntr());
  print_array("bindx", vbr.bindx());
  print_array("val", vbr.val());

  std::printf("\n(e) BCSR-DEC, full 2x2 blocks + CSR remainder\n");
  const BcsrDec<double> dec = BcsrDec<double>::from_csr(a, BlockShape{2, 2});
  std::printf("  blocked part: %zu blocks (%zu nnz, zero padding); "
              "remainder: %zu nnz in CSR\n",
              dec.blocked().blocks(), dec.blocked().nnz(),
              dec.remainder().nnz());
  return 0;
}
