#!/usr/bin/env bash
# Full reproduction run: the complete test suite followed by every bench
# binary (one per paper table/figure plus ablations). Outputs are recorded
# to test_output.txt and bench_output.txt at the repository root.
set -u
cd "$(dirname "$0")/.."

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    # skip CMake droppings and the static helper library
    [ -x "$b" ] && [ -f "$b" ] || continue
    case "$b" in *.cmake|*.a) continue ;; esac
    echo "===== $b ====="
    case "$b" in
      *bench_fig2_multicore_wins)
        # The threaded sweep converts every candidate per matrix and
        # cannot share the single-threaded cache; tiny scale keeps the
        # full 28-matrix x {1,2,4}-thread x {sp,dp} sweep tractable on
        # one core (the wins distribution is structural).
        "$b" --scale tiny ;;
      *)
        "$b" ;;
    esac
    echo
  done
} 2>&1 | tee bench_output.txt

echo "run_all: complete"
