#include "src/core/engine.hpp"

#include "src/parallel/task_graph.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
void SpmvEngine<V>::Plan::run_async(
    const V* x, V* y, Impl impl, RunControl* control,
    std::function<void(std::exception_ptr)> done) const {
  std::exception_ptr err;
  try {
    run(x, y, impl, control);
  } catch (...) {
    err = std::current_exception();
  }
  done(err);
}

template <class V>
void SpmvEngine<V>::Plan::warm_up(V*, V*) const {}

template <class V>
template <class F>
struct SpmvEngine<V>::TypedPlan final : SpmvEngine<V>::Plan {
  TypedPlan(const F& m, int threads) : driver(m, threads) {}
  void run(const V* x, V* y, Impl impl,
           RunControl* control) const override {
    driver.run(x, y, impl, control);
  }
  void run_multi(const V* X, V* Y, int k, Layout layout, Impl impl,
                 RunControl* control) const override {
    driver.run_multi(X, Y, k, layout, impl, control);
  }
  ThreadedSpmv<F> driver;
};

template <class V>
template <class F>
struct SpmvEngine<V>::TaskPlan final : SpmvEngine<V>::Plan {
  TaskPlan(const F& m, int threads) : driver(m, threads) {}
  void run(const V* x, V* y, Impl impl,
           RunControl* control) const override {
    driver.run(x, y, impl, control);
  }
  void run_multi(const V* X, V* Y, int k, Layout layout, Impl impl,
                 RunControl* control) const override {
    driver.run_multi(X, Y, k, layout, impl, control);
  }
  void run_async(const V* x, V* y, Impl impl, RunControl* control,
                 std::function<void(std::exception_ptr)> done) const override {
    driver.run_async(x, y, impl, control, std::move(done));
  }
  void warm_up(V* x, V* y) const override { driver.warm_up(x, y); }
  bool async_capable() const override { return true; }
  TaskGraphSpmv<F> driver;
};

template <class V>
SpmvEngine<V> SpmvEngine<V>::prepare(const Csr<V>& a,
                                     const std::vector<Candidate>& ranked,
                                     int threads, ExecBackend backend) {
  SpmvEngine e;
  e.owned_ =
      std::make_unique<PreparedExecutor<V>>(try_prepare(a, ranked));
  e.fmt_ = &e.owned_->format;
  e.threads_ = threads;
  e.backend_ = backend;
  e.build_plan();
  return e;
}

template <class V>
SpmvEngine<V> SpmvEngine<V>::prepare(const Csr<V>& a, const Candidate& c,
                                     int threads, ExecBackend backend) {
  SpmvEngine e;
  e.owned_ = std::make_unique<PreparedExecutor<V>>();
  e.owned_->format = AnyFormat<V>::convert(a, c);
  e.fmt_ = &e.owned_->format;
  e.threads_ = threads;
  e.backend_ = backend;
  e.build_plan();
  return e;
}

template <class V>
SpmvEngine<V> SpmvEngine<V>::borrow(const AnyFormat<V>& f, int threads,
                                    ExecBackend backend) {
  SpmvEngine e;
  e.fmt_ = &f;
  e.threads_ = threads;
  e.backend_ = backend;
  e.build_plan();
  return e;
}

template <class V>
void SpmvEngine<V>::set_threads(int threads) {
  if (threads == threads_ && (plan_ || threads == 0)) return;
  // Strong guarantee: if the new plan cannot be built (e.g. a
  // CSR-fallback engine replanned onto a non-parallel format), the
  // engine must stay on its previous, working plan.
  const int prev = threads_;
  threads_ = threads;
  try {
    build_plan();
  } catch (...) {
    threads_ = prev;
    try {
      build_plan();
    } catch (...) {
      // The previous configuration built once, so rebuilding it cannot
      // throw; guard anyway so set_threads never terminates.
    }
    throw;
  }
}

template <class V>
void SpmvEngine<V>::set_backend(ExecBackend backend) {
  if (backend == backend_ && (plan_ || threads_ == 0)) return;
  const ExecBackend prev = backend_;
  backend_ = backend;
  try {
    build_plan();
  } catch (...) {
    backend_ = prev;
    try {
      build_plan();
    } catch (...) {
      // The previous configuration built once, so rebuilding it cannot
      // throw; guard anyway so set_backend never terminates.
    }
    throw;
  }
}

template <class V>
void SpmvEngine<V>::build_plan() {
  plan_.reset();
  if (threads_ == 0) return;
  plan_ = fmt_->visit([&](const auto& m) -> std::unique_ptr<Plan> {
    using F = std::decay_t<decltype(m)>;
    if constexpr (FormatOps<F>::kParallel) {
      if (backend_ == ExecBackend::kTasks)
        return std::make_unique<TaskPlan<F>>(m, threads_);
      return std::make_unique<TypedPlan<F>>(m, threads_);
    } else {
      throw invalid_argument_error(
          "SpmvEngine: format not parallelised (per §V-A)");
    }
  });
}

template <class V>
void SpmvEngine<V>::run(const V* x, V* y) const {
  if (plan_)
    plan_->run(x, y, fmt_->candidate().impl, nullptr);
  else
    fmt_->run(x, y);
}

template <class V>
void SpmvEngine<V>::run(const V* x, V* y, RunControl* control,
                        bool check_numerics) const {
  if (check_numerics)
    check_finite("run: input vector x", x,
                 static_cast<std::size_t>(fmt_->cols()));
  if (control) control->check();
  if (plan_)
    plan_->run(x, y, fmt_->candidate().impl, control);
  else
    fmt_->run(x, y);
  if (control) control->throw_if_aborted();
  if (check_numerics)
    check_finite("run: output vector y", y,
                 static_cast<std::size_t>(fmt_->rows()));
}

template <class V>
void SpmvEngine<V>::run_multi(const V* X, V* Y, int k, Layout layout) const {
  if (plan_)
    plan_->run_multi(X, Y, k, layout, fmt_->candidate().impl, nullptr);
  else
    fmt_->run_multi(X, Y, k, layout);
}

template <class V>
void SpmvEngine<V>::run_multi(const V* X, V* Y, int k, Layout layout,
                              RunControl* control,
                              bool check_numerics) const {
  if (check_numerics)
    check_finite("run_multi: input block X", X,
                 static_cast<std::size_t>(fmt_->cols()) *
                     static_cast<std::size_t>(k));
  if (control) control->check();
  if (plan_)
    plan_->run_multi(X, Y, k, layout, fmt_->candidate().impl, control);
  else
    fmt_->run_multi(X, Y, k, layout);
  if (control) control->throw_if_aborted();
  if (check_numerics)
    check_finite("run_multi: output block Y", Y,
                 static_cast<std::size_t>(fmt_->rows()) *
                     static_cast<std::size_t>(k));
}

template <class V>
void SpmvEngine<V>::run_async(
    const V* x, V* y, RunControl* control,
    std::function<void(std::exception_ptr)> done) const {
  BSPMV_CHECK_MSG(static_cast<bool>(done),
                  "run_async needs a completion callback");
  if (plan_ == nullptr) {
    // Plain plan: synchronous, complete inline.
    std::exception_ptr err;
    try {
      run(x, y, control, false);
    } catch (...) {
      err = std::current_exception();
    }
    done(err);
    return;
  }
  // Surface the control's typed abort error through the callback, the
  // way the synchronous guarded run() surfaces it by throwing.
  auto wrapped = [control,
                  done = std::move(done)](std::exception_ptr err) {
    if (err == nullptr && control != nullptr) {
      try {
        control->throw_if_aborted();
      } catch (...) {
        err = std::current_exception();
      }
    }
    done(err);
  };
  if (control != nullptr) {
    try {
      control->check();
    } catch (...) {
      wrapped(std::current_exception());
      return;
    }
  }
  plan_->run_async(x, y, fmt_->candidate().impl, control,
                   std::move(wrapped));
}

template <class V>
bool SpmvEngine<V>::async_capable() const {
  return plan_ != nullptr && plan_->async_capable();
}

template <class V>
void SpmvEngine<V>::warm_up(V* x, V* y) const {
  if (plan_) plan_->warm_up(x, y);
}

template <class V>
double SpmvEngine<V>::measure(const MeasureOptions& opt) const {
  BSPMV_OBS_SPAN("measure");
  BSPMV_OBS_SPAN(plan_ ? "threaded" : "spmv");
  return detail::measure_guarded<V>(
      fmt_->rows(), fmt_->cols(), opt,
      [&](const V* x, V* y) {
        if (plan_)
          plan_->run(x, y, fmt_->candidate().impl, opt.control);
        else
          fmt_->run(x, y);
      },
      [&](V* x, V* y) { warm_up(x, y); });
}

template <class V>
double SpmvEngine<V>::measure_multi(int k, Layout layout,
                                    const MeasureOptions& opt) const {
  BSPMV_CHECK_MSG(k >= 1, "rhs count must be >= 1");
  BSPMV_OBS_SPAN("measure");
  BSPMV_OBS_SPAN(plan_ ? "threaded_multi" : "spmm");
  // The X/Y blocks are rows·k and cols·k flat arrays regardless of
  // layout, so the guarded loop's random input and finite/fingerprint
  // scans carry over unchanged.
  return detail::measure_guarded<V>(
      fmt_->rows() * static_cast<index_t>(k),
      fmt_->cols() * static_cast<index_t>(k), opt, [&](const V* x, V* y) {
        if (plan_)
          plan_->run_multi(x, y, k, layout, fmt_->candidate().impl,
                           opt.control);
        else
          fmt_->run_multi(x, y, k, layout);
      });
}

template class SpmvEngine<float>;
template class SpmvEngine<double>;

}  // namespace bspmv
