// Candidate space: every (storage format, block shape/size, kernel
// implementation) combination the paper evaluates and the models rank.
#pragma once

#include <string>
#include <vector>

#include "src/formats/block_shapes.hpp"
#include "src/kernels/impl.hpp"

namespace bspmv {

enum class FormatKind {
  kCsr,
  kBcsr,
  kBcsrDec,
  kBcsd,
  kBcsdDec,
  kVbl,
  kVbr,
  kUbcsr,     ///< extension: unaligned BCSR (Vuduc & Moon [17])
  kCsrDelta,  ///< extension: delta-compressed CSR (Kourtis et al. [10])
};

const char* format_name(FormatKind kind);

/// One point in the tuning space.
struct Candidate {
  FormatKind kind = FormatKind::kCsr;
  BlockShape shape{1, 1};  ///< BCSR / BCSR-DEC block shape
  int b = 0;               ///< BCSD / BCSD-DEC diagonal length
  Impl impl = Impl::kScalar;

  /// Unique id, e.g. "bcsr_dec_3x2_simd", "csr_scalar", "bcsd_4_scalar".
  std::string id() const;

  /// Identity of the block kernel this candidate's *blocked* part runs —
  /// decomposed formats share it with their padded counterpart (same
  /// inner routine), so profiled t_b / nof values are shared too.
  /// e.g. both bcsr_3x2 and bcsr_dec_3x2 -> "bcsr_3x2_simd".
  std::string kernel_id() const;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// The candidates the performance models rank (§IV): CSR as degenerate
/// 1×1 blocking plus every fixed-size blocking method and block; variable
/// size blocking (VBL/VBR) is excluded, as in the paper.
std::vector<Candidate> model_candidates(bool include_simd = true);

/// The formats benchmarked in §V-A — adds 1D-VBL (scalar only when
/// include_simd is false; the paper ran no simd 1D-VBL either way, see
/// Table II) and optionally the VBR extension.
std::vector<Candidate> bench_candidates(bool include_simd = true,
                                        bool include_vbr = false);

/// Kernel profile key for the CSR kernel used by decomposed remainders.
std::string csr_kernel_id(Impl impl);

/// Extension formats beyond the paper's evaluation: UBCSR at every shape
/// and delta-compressed CSR. They participate in profiling and can be
/// ranked by the models once profiled, but are excluded from the paper's
/// candidate sets so the reproduction benches match Tables II-IV.
std::vector<Candidate> extension_candidates(bool include_simd = true);

}  // namespace bspmv
