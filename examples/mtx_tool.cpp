// mtx_tool — command-line analysis of a Matrix Market file (or a suite
// matrix): structural statistics per blocking format, model predictions,
// and a recommendation from each performance model. Lets users run the
// paper's methodology on their own matrices.
//
//   $ ./mtx_tool matrix.mtx
//   $ ./mtx_tool --suite 21 --scale small --measure
//   $ ./mtx_tool report matrix.mtx --out report.json
//   $ ./mtx_tool report --validate report.json
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/core/engine.hpp"
#include "src/core/executor.hpp"
#include "src/dist/driver.hpp"
#include "src/profile/comm_bench.hpp"
#include "src/util/timing.hpp"
#include "src/core/heuristic.hpp"
#include "src/core/models.hpp"
#include "src/core/working_set.hpp"
#include "src/core/reorder.hpp"
#include "src/core/selector.hpp"
#include "src/formats/permute.hpp"
#include "src/formats/stats.hpp"
#include "src/gen/suite.hpp"
#include "src/io/matrix_market.hpp"
#include "src/kernels/spmv.hpp"
#include "src/observe/report.hpp"
#include "src/profile/block_profiler.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/cli.hpp"
#include "src/util/errors.hpp"
#include "src/util/run_control.hpp"

using namespace bspmv;

namespace {

// Distinct exit codes per error family so scripts and CI can branch on
// the failure class without scraping stderr (see docs/robustness.md).
enum ExitCode {
  kExitError = 1,       // any other bspmv::error
  kExitParse = 2,       // unreadable/garbled input matrix
  kExitConversion = 3,  // format conversion failed / resource limit
  kExitTimeout = 4,     // deadline expired / run cancelled or stalled
  kExitNumerical = 5,   // NaN/Inf or fingerprint mismatch
  kExitIo = 6,          // corrupt or unwritable cache/output file
};

/// Arm a RunControl from --deadline-ms; returns nullptr (no control)
/// when the option is absent or zero.
RunControl* setup_control(const CliParser& cli,
                          std::optional<RunControl>& storage) {
  const auto deadline_ms = cli.get_int("deadline-ms");
  if (deadline_ms <= 0) return nullptr;
  storage.emplace();
  storage->set_deadline(static_cast<double>(deadline_ms) / 1e3);
  return &*storage;
}

/// Load the target matrix for either subcommand: --suite id wins,
/// otherwise the positional path at `pos_index` is a Matrix Market file.
bool load_matrix(const CliParser& cli, std::size_t pos_index, Csr<double>& a,
                 std::string& name) {
  const int suite_id = static_cast<int>(cli.get_int("suite"));
  if (suite_id > 0) {
    a = build_suite_csr<double>(suite_id, parse_suite_scale(cli.get("scale")));
    name = suite_catalog()[static_cast<size_t>(suite_id - 1)].name;
    return true;
  }
  if (cli.positional().size() > pos_index) {
    name = cli.positional()[pos_index];
    std::printf("reading %s...\n", name.c_str());
    a = Csr<double>::from_coo(read_matrix_market<double>(name));
    return true;
  }
  return false;
}

/// `mtx_tool --ranks N` — row-sharded multi-process SpMV with halo
/// exchange (docs/distribution.md): print the shard plan, run the
/// requested exchange mode, verify against serial CSR, show the
/// per-rank send/recv/wait/local/halo timeline, and score the t_comm
/// model's overlap-vs-naive choice against the measured winner.
int run_dist(const CliParser& cli, const Csr<double>& a,
             const MachineProfile& base_profile, int ranks,
             RunControl* control) {
  const DistMode mode = parse_dist_mode(cli.get("dist-mode"));
  const int iterations =
      std::max(1, static_cast<int>(cli.get_int("iterations")));
  const double dist_timeout = cli.get_double("dist-timeout");
  if (dist_timeout <= 0.0)
    throw invalid_argument_error("--dist-timeout must be positive seconds");

  MachineProfile profile = base_profile;
  if (profile.comm_beta_bps <= 0.0) {
    std::printf("\nprofiling wire comm (machine profile has no alpha/beta)...\n");
    const CommProfile c = profile_comm(/*quick=*/true);
    profile.comm_alpha_seconds = c.alpha_seconds;
    profile.comm_beta_bps = c.beta_bps;
  }
  std::printf("\ndistributed run: %d ranks, %s exchange, %d iterations "
              "(alpha %.2f us, beta %.2f GiB/s)\n",
              ranks, dist_mode_name(mode), iterations,
              profile.comm_alpha_seconds * 1e6,
              profile.comm_beta_bps / (1u << 30));

  dist::DistOptions dopt;
  dopt.ranks = ranks;
  dopt.mode = mode;
  dopt.threads_per_rank = static_cast<int>(cli.get_int("dist-threads"));
  dopt.timeout_seconds = dist_timeout;
  // Supervision is ON by default here (the library default stays off):
  // the tool survives a lost rank, degrades if it must, and always says
  // so. --dist-no-recover restores the fail-fast typed-exit contract.
  dopt.supervise.enabled = !cli.get_flag("dist-no-recover");
  dopt.supervise.max_respawns =
      static_cast<int>(cli.get_int("dist-max-respawns"));
  dopt.supervise.checkpoint_path = cli.get("dist-checkpoint");
  const double mtbf = cli.get_double("dist-mtbf");
  if (mtbf > 0.0) {
    // Young/Daly cadence from the model stack: predicted per-iteration
    // time x per-checkpoint cost x assumed MTBF.
    const double t_iter =
        predict_distributed(profile, dist::plan_shards(a, ranks)
                                         .rank_costs(sizeof(double)),
                            mode);
    const double ckpt = dist_checkpoint_seconds(
        profile, static_cast<std::size_t>(a.cols()) * sizeof(double));
    dopt.supervise.checkpoint_interval =
        dist_checkpoint_interval(t_iter, ckpt, mtbf);
    std::printf("checkpoint interval (Young, mtbf %.1fs, ckpt %.2fms): "
                "every %d iteration(s)\n",
                mtbf, ckpt * 1e3, dopt.supervise.checkpoint_interval);
  }
  dist::DistSpmv d(a, dopt);
  d.set_control(control);

  // Chaos drill: arm faults (alternating kills and stalls on the
  // non-zero ranks) that fire during the timed run; the recovery
  // timeline below is the receipt. Drives the dist soak harness.
  const int chaos = static_cast<int>(cli.get_int("dist-chaos"));
  if (chaos > 0 && dopt.supervise.enabled && ranks > 1) {
    for (int k = 0; k < chaos; ++k) {
      dist::FaultMsg f;
      f.kind = k % 2 == 0 ? dist::FaultKind::kExitAtIteration
                          : dist::FaultKind::kStallAtIteration;
      f.at_iteration =
          static_cast<std::uint32_t>(std::min(k + 1, iterations - 1));
      f.seconds = 3.0 * dist_timeout;  // past the stall-kill grace
      d.inject_fault(1 + k % (ranks - 1), f);
    }
    std::printf("chaos: armed %d fault(s) across ranks 1..%d\n", chaos,
                ranks - 1);
  }

  std::printf("shard plan (nnz-balanced rows):\n");
  for (int r = 0; r < ranks; ++r) {
    const dist::RankShard& sh = d.plan().shards[static_cast<std::size_t>(r)];
    std::printf("  rank %d: rows [%d, %d)  nnz %zu (local %zu, halo %zu)  "
                "halo in %zu / out %zu doubles, %d peer(s)\n",
                r, sh.row_begin, sh.row_end, sh.nnz, sh.local_nnz,
                sh.halo_nnz, sh.recv_count(), sh.send_count(),
                sh.peer_count());
  }

  aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 + 0.001 * static_cast<double>(i % 1000);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

  if (chaos == 0) d.run(x.data(), y.data(), 1);  // warm-up
  Timer t;
  d.run(x.data(), y.data(), iterations);
  const double measured = t.elapsed() / iterations;

  // The supervision outcome is part of the result: a degraded run is
  // still correct, but never silently so.
  if (dopt.supervise.enabled && d.outcome() != dist::DistOutcome::kClean) {
    std::printf("recovery: outcome %s, %zu event(s), %d rank(s) left\n",
                dist::dist_outcome_name(d.outcome()),
                d.recovery_log().size(), d.ranks());
    for (const dist::RecoveryEvent& e : d.recovery_log()) {
      std::string who;
      for (int r : e.failed_ranks) who += " " + std::to_string(r);
      if (who.empty()) who = " -";
      std::printf("  epoch %u @ iter %d: %s on rank(s)%s -> %s "
                  "(%.1f ms, backoff %.0f ms)%s%s\n",
                  e.epoch, e.completed_iterations, e.cause.c_str(),
                  who.c_str(), e.action.c_str(), e.seconds * 1e3,
                  e.backoff_ms, e.detail.empty() ? "" : " | ",
                  e.detail.c_str());
    }
  }

  // Parity check against the serial CSR kernel (the column split only
  // reorders within-row sums).
  aligned_vector<double> yref(static_cast<std::size_t>(a.rows()), 0.0);
  spmv(a, x.data(), yref.data());
  double max_rel = 0.0;
  for (std::size_t i = 0; i < yref.size(); ++i) {
    const double scale = std::max({std::abs(y[i]), std::abs(yref[i]), 1.0});
    max_rel = std::max(max_rel, std::abs(y[i] - yref[i]) / scale);
  }
  if (max_rel > 1e-10)
    throw numerical_error("distributed result diverges from serial CSR "
                          "(max rel err " + std::to_string(max_rel) + ")");
  std::printf("verified against serial CSR: max rel err %.2e\n", max_rel);

  std::printf("per-rank timeline (ms over %d iterations):\n", iterations);
  std::printf("  %-5s %9s %9s %9s %9s %9s %9s\n", "rank", "send", "recv",
              "wait", "local", "halo", "total");
  for (int r = 0; r < static_cast<int>(d.last_stats().size()); ++r) {
    const dist::RankStats& s = d.last_stats()[static_cast<std::size_t>(r)];
    std::printf("  %-5d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n", r,
                s.send_seconds * 1e3, s.recv_seconds * 1e3,
                s.wait_seconds * 1e3, s.local_seconds * 1e3,
                s.halo_seconds * 1e3, s.total_seconds * 1e3);
  }

  // Model vs measured, both modes: time the other mode over the same
  // shard plan, then score choose_dist_mode against the measured winner.
  const DistMode other =
      mode == DistMode::kOverlap ? DistMode::kNaive : DistMode::kOverlap;
  d.set_mode(other);
  d.run(x.data(), y.data(), 1);
  Timer t2;
  d.run(x.data(), y.data(), iterations);
  const double measured_other = t2.elapsed() / iterations;

  const auto costs = d.rank_costs();
  const DistMode predicted = choose_dist_mode(profile, costs);
  // Tie-aware winner: inside the 3% noise floor either prediction is
  // right — the mode gap is below run-to-run scheduling jitter.
  constexpr double kNoiseMargin = 0.97;
  const char* winner = "tie";
  if (measured < kNoiseMargin * measured_other)
    winner = dist_mode_name(mode);
  else if (measured_other < kNoiseMargin * measured)
    winner = dist_mode_name(other);
  const bool match = std::string(winner) == "tie" ||
                     std::string(winner) == dist_mode_name(predicted);
  std::printf("model: naive %.3f ms, overlap %.3f ms -> %s | measured: "
              "%s %.3f ms, %s %.3f ms -> %s (%s)\n",
              predict_distributed(profile, costs, DistMode::kNaive) * 1e3,
              predict_distributed(profile, costs, DistMode::kOverlap) * 1e3,
              dist_mode_name(predicted), dist_mode_name(mode), measured * 1e3,
              dist_mode_name(other), measured_other * 1e3, winner,
              match ? "model match" : "model miss");
  return 0;
}

/// `mtx_tool report` — build a schema-versioned RunReport (predicted vs
/// measured time per model, Table IV selection scoring, per-thread
/// timing) and write it as JSON/CSV; or validate an existing report file.
int run_report(const CliParser& cli) {
  const std::string validate_path = cli.get("validate");
  if (!validate_path.empty()) {
    std::ifstream f(validate_path);
    if (!f) {
      std::fprintf(stderr, "error: cannot read %s\n", validate_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    observe::validate_report_json(Json::parse(ss.str()));
    std::printf("%s: valid %s (schema v%d)\n", validate_path.c_str(),
                observe::RunReport::kKind, observe::RunReport::kSchemaVersion);
    return 0;
  }

  Csr<double> a;
  std::string name;
  if (!load_matrix(cli, 1, a, name)) {
    std::fprintf(stderr,
                 "usage: mtx_tool report <file.mtx> | --suite <id> "
                 "[--out r.json] [--csv r.csv] [--append traj.json]\n"
                 "       mtx_tool report --validate <report.json>\n");
    return 1;
  }

  std::optional<RunControl> control_storage;
  RunControl* control = setup_control(cli, control_storage);

  ProfileOptions popt;
  popt.quick = true;
  popt.control = control;
  const MachineProfile profile = load_or_profile(cli.get("profile"), popt);

  observe::ReportOptions ropt;
  ropt.measure.iterations = static_cast<int>(cli.get_int("iterations"));
  ropt.measure.reps = static_cast<int>(cli.get_int("reps"));
  ropt.measure.control = control;
  ropt.measure.check_numerics = cli.get_flag("check-numerics");
  ropt.threads = static_cast<int>(cli.get_int("threads"));
  ropt.verbose = cli.get_flag("verbose");
  // Invalid names throw invalid_argument_error -> exit code 1.
  ropt.backend = parse_backend(cli.get("executor"));
  // --ranks N adds the distributed section (both exchange modes measured
  // over one shard plan, per-rank timelines, model-vs-winner scoring).
  ropt.dist_ranks = static_cast<int>(cli.get_int("ranks"));
  ropt.dist_threads_per_rank = static_cast<int>(cli.get_int("dist-threads"));
  ropt.dist_supervise = !cli.get_flag("dist-no-recover");
  ropt.dist_chaos = static_cast<int>(cli.get_int("dist-chaos"));
  ropt.dist_timeout_seconds = cli.get_double("dist-timeout");
  if (ropt.dist_timeout_seconds <= 0.0)
    throw invalid_argument_error("--dist-timeout must be positive seconds");
  (void)parse_dist_mode(cli.get("dist-mode"));

  const observe::RunReport report =
      observe::build_run_report(a, name, profile, ropt);
  const Json j = report.to_json();

  // Crash-safe outputs: a killed run leaves either the previous file or
  // the new one, never a truncated hybrid.
  const std::string out = cli.get("out");
  atomic_write_file(out, j.dump(2) + '\n');
  std::printf("wrote %s: %zu candidates, %zu selections, %d threads%s\n",
              out.c_str(), report.candidates.size(), report.selections.size(),
              report.threads, report.fallback ? " (CSR fallback)" : "");

  const std::string csv = cli.get("csv");
  if (!csv.empty()) {
    atomic_write_file(csv, report.to_csv());
    std::printf("wrote %s\n", csv.c_str());
  }

  const std::string traj = cli.get("append");
  if (!traj.empty()) {
    observe::append_to_trajectory(traj, j);
    std::printf("appended to trajectory %s\n", traj.c_str());
  }
  return 0;
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.add_option("suite", "0", "use suite matrix id 1..30 instead of a file");
  cli.add_option("scale", "small", "suite scale (with --suite)");
  cli.add_option("profile", "machine_profile.json", "machine profile path");
  cli.add_option("top", "8", "how many ranked candidates to print");
  cli.add_option("out", "report.json", "report: output JSON path");
  cli.add_option("csv", "", "report: also write the candidate table as CSV");
  cli.add_option("append", "", "report: also append to this trajectory file");
  cli.add_option("validate", "", "report: validate this file and exit");
  cli.add_option("threads", "0", "report: thread count (0 = all cores)");
  cli.add_option("iterations", "10",
                 "SpMV iterations per timed batch (paper setting: 100)");
  cli.add_option("reps", "2", "timed batches (minimum time reported)");
  cli.add_option("deadline-ms", "0",
                 "abort profiling/measurement after this many ms (exit 4)");
  cli.add_option("rhs", "1",
                 "right-hand sides per multiply; k > 1 measures SpMM "
                 "through run_multi (docs/spmm.md)");
  cli.add_option("layout", "row",
                 "multi-vector layout with --rhs: row (interleaved) or "
                 "col (vector-contiguous)");
  cli.add_option("executor", "bulk",
                 "parallel execution backend: bulk (OpenMP, default) or "
                 "tasks (NUMA-aware work-stealing task graph)");
  cli.add_option("ranks", "0",
                 "fork this many rank processes and run the row-sharded "
                 "distributed SpMV (docs/distribution.md); report: adds "
                 "the dist section");
  cli.add_option("dist-mode", "overlap",
                 "halo exchange mode with --ranks: overlap (hide comm "
                 "under the local pass) or naive (exchange then compute)");
  cli.add_option("dist-threads", "1",
                 "TaskPool workers per rank's local pass (0 = serial)");
  cli.add_option("dist-timeout", "30",
                 "wire read timeout in seconds on every dist channel; a "
                 "--deadline-ms budget additionally bounds each wait");
  cli.add_option("dist-checkpoint", "",
                 "supervised runs: write an iteration checkpoint here "
                 "(CRC-trailed atomic file) and resume from it");
  cli.add_option("dist-mtbf", "0",
                 "assumed seconds between rank failures; > 0 picks the "
                 "checkpoint interval by Young's formula");
  cli.add_option("dist-max-respawns", "2",
                 "consecutive failed recoveries before degrading "
                 "(reshard, then single-node)");
  cli.add_option("dist-chaos", "0",
                 "supervised runs: inject this many rank kills/stalls "
                 "during the timed run (soak/drill; recovery is printed)");
  cli.add_flag("dist-no-recover",
               "disable rank supervision: a lost rank exits with the "
               "typed error code instead of recovering");
  cli.add_flag("check-numerics",
               "scan vectors for NaN/Inf and verify output fingerprints");
  cli.add_flag("measure", "also measure the top candidates' real time");
  cli.add_flag("reorder", "apply the similarity row reordering first");
  cli.add_flag("verbose", "report: progress output on stderr");
  if (!cli.parse(argc, argv)) return 0;

  if (!cli.positional().empty() && cli.positional().front() == "report")
    return run_report(cli);

  Csr<double> a;
  std::string name;
  if (!load_matrix(cli, 0, a, name)) {
    std::fprintf(stderr,
                 "usage: mtx_tool <file.mtx> | --suite <id> [--measure]\n"
                 "       mtx_tool report <file.mtx> | --suite <id>\n");
    return 1;
  }

  std::printf("matrix %s: %d x %d, %zu nonzeros, %.1f nnz/row, CSR ws %.2f "
              "MiB\n",
              name.c_str(), a.rows(), a.cols(), a.nnz(),
              static_cast<double>(a.nnz()) / static_cast<double>(a.rows()),
              static_cast<double>(a.working_set_bytes()) / (1 << 20));

  if (cli.get_flag("reorder")) {
    const double fill_before = bcsr_stats(a, BlockShape{3, 3}).fill();
    a = permute_rows(a, similarity_reorder(a));
    std::printf("applied similarity row reordering: 3x3 fill %.3f -> %.3f\n",
                fill_before, bcsr_stats(a, BlockShape{3, 3}).fill());
  }

  // Structural scan: fill ratio per BCSR shape, BCSD size, and 1D-VBL.
  std::printf("\nblock fill ratios (stored nonzeros / stored values):\n");
  std::printf("  %-8s", "BCSR:");
  for (BlockShape s : bcsr_shapes())
    std::printf(" %s=%.2f", s.to_string().c_str(), bcsr_stats(a, s).fill());
  std::printf("\n  %-8s", "BCSD:");
  for (int b : bcsd_sizes())
    std::printf(" b%d=%.2f", b, bcsd_stats(a, b).fill());
  std::printf("\n  1D-VBL: %.1f elements/block average\n",
              static_cast<double>(a.nnz()) /
                  static_cast<double>(vbl_block_count(a)));

  const int rhs = static_cast<int>(cli.get_int("rhs"));
  const std::string layout_str = cli.get("layout");
  if (rhs < 1 || (layout_str != "row" && layout_str != "col")) {
    std::fprintf(stderr,
                 "error: --rhs needs k >= 1 and --layout must be row|col\n");
    return 1;
  }
  const Layout layout =
      layout_str == "col" ? Layout::kColMajor : Layout::kRowMajor;
  // Validate eagerly even where only `report` consumes it, so a typo
  // fails fast with exit code 1 instead of silently running bulk.
  (void)parse_backend(cli.get("executor"));
  (void)parse_dist_mode(cli.get("dist-mode"));
  // k-aware selection: with --rhs k > 1 every ranking below optimises
  // one k-wide SpMM multiply instead of a single SpMV (docs/spmm.md).
  const Workload workload{rhs, layout};

  std::optional<RunControl> control_storage;
  RunControl* control = setup_control(cli, control_storage);

  ProfileOptions popt;
  popt.quick = true;
  popt.control = control;
  const MachineProfile profile = load_or_profile(cli.get("profile"), popt);

  if (const int ranks = static_cast<int>(cli.get_int("ranks")); ranks != 0)
    return run_dist(cli, a, profile, ranks, control);

  if (rhs > 1)
    std::printf("\nmodel selections (k-aware, %d rhs, %s):\n", rhs,
                layout_name(layout));
  else
    std::printf("\nmodel selections:\n");
  for (ModelKind m : {ModelKind::kMem, ModelKind::kMemComp,
                      ModelKind::kOverlap, ModelKind::kMemLat}) {
    const RankedCandidate best = select_best(m, a, profile, workload);
    std::printf("  %-8s -> %-22s (predicted %.3f ms%s)\n", model_name(m),
                best.candidate.id().c_str(), best.predicted_seconds * 1e3,
                rhs > 1 ? "/multiply" : "");
  }
  const HeuristicSelection h = select_bcsr_heuristic(a, profile);
  std::printf("  %-8s -> %-22s (predicted %.3f ms, est. fill %.2f)\n",
              "oski", h.candidate.id().c_str(), h.predicted_seconds * 1e3,
              h.est_fill);

  const auto ranked =
      rank_candidates(ModelKind::kOverlap, a, profile, workload);
  const auto top = static_cast<std::size_t>(cli.get_int("top"));
  if (rhs > 1)
    std::printf("\ntop %zu candidates by the OVERLAP model (ranked by "
                "k=%d multiply time):\n",
                top, rhs);
  else
    std::printf("\ntop %zu candidates by the OVERLAP model:\n", top);
  MeasureOptions mopt;
  mopt.iterations = static_cast<int>(cli.get_int("iterations"));
  mopt.reps = static_cast<int>(cli.get_int("reps"));
  mopt.control = control;
  mopt.check_numerics = cli.get_flag("check-numerics");
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    std::printf("  %2zu. %-22s predicted %.3f ms", i + 1,
                ranked[i].candidate.id().c_str(),
                ranked[i].predicted_seconds * 1e3);
    if (rhs > 1) {
      // Workload-aware ranking already predicted the whole k-wide
      // multiply (matrix traffic amortised across the batch); show the
      // effective per-vector time next to it.
      std::printf(" (k=%d %s, %.3f ms/vec)", rhs, layout_name(layout),
                  ranked[i].predicted_seconds * 1e3 / rhs);
    }
    if (cli.get_flag("measure")) {
      const auto engine = SpmvEngine<double>::prepare(a, ranked[i].candidate);
      if (rhs > 1) {
        // One multi-vector multiply per iteration through run_multi;
        // the k=1 path below is byte-for-byte the single-vector tool.
        const double t = engine.measure_multi(rhs, layout, mopt);
        std::printf("  measured %.3f ms (%.3f ms/vec)", t * 1e3,
                    t * 1e3 / rhs);
      } else {
        std::printf("  measured %.3f ms", engine.measure(mopt) * 1e3);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Every deliberate library failure derives from bspmv::error; map each
  // family to its own exit code (derived classes before their bases —
  // resource_limit_error is a conversion_error, cancelled/timeout are
  // execution_errors).
  try {
    return run(argc, argv);
  } catch (const bspmv::parse_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitParse;
  } catch (const bspmv::execution_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitTimeout;
  } catch (const bspmv::numerical_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitNumerical;
  } catch (const bspmv::io_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIo;
  } catch (const bspmv::conversion_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitConversion;
  } catch (const bspmv::error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitError;
  }
}
