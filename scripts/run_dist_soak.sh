#!/usr/bin/env bash
# Chaos soak for the supervised distributed driver: loop mtx_tool
# --ranks N runs (ideally an ASan build) with escalating injected
# faults — kills mid-iteration, stalls, kills with an exchange posted —
# and require every run to recover, pass the built-in serial-CSR parity
# check, and keep the driver's RSS bounded. The forked ranks fork from
# a single-threaded driver, so (unlike TSan) ASan survives the children.
#
# Pass criteria, every iteration:
#   - mtx_tool exits 0 (recovery worked, parity check passed)
#   - the report shows a non-clean outcome when faults were armed
#     (recovery is never silent)
#   - peak driver RSS stays under $RSS_LIMIT_MB
#
# Usage: scripts/run_dist_soak.sh [duration-seconds] (default 60)
# Env:   BUILD_DIR     build tree to use  (default repo/build)
#        RSS_LIMIT_MB  peak RSS bound     (default 4096)
#        RANKS         mesh width         (default 4)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
duration="${1:-60}"
rss_limit_mb="${RSS_LIMIT_MB:-4096}"
ranks="${RANKS:-4}"

tool="$build_dir/examples/mtx_tool"
[ -x "$tool" ] || {
  echo "dist-soak: build mtx_tool first (cmake --build $build_dir --target mtx_tool)" >&2
  exit 1
}

work="$(mktemp -d /tmp/bspmv_dist_soak.XXXXXX)"
trap 'rm -rf "$work"' EXIT

deadline=$(( $(date +%s) + duration ))
runs=0
recoveries=0
peak_rss_kb=0

echo "== dist-soak: ${duration}s of chaos, ${ranks} ranks =="
while [ "$(date +%s)" -lt "$deadline" ]; do
  # Escalate: 1..4 armed faults (alternating kill/stall across ranks),
  # both exchange modes, varying iteration counts.
  chaos=$(( runs % 4 + 1 ))
  mode=$([ $(( runs % 2 )) -eq 0 ] && echo overlap || echo naive)
  iters=$(( 4 + runs % 5 ))
  log="$work/run.log"

  "$tool" --suite 2 --scale tiny --ranks "$ranks" \
      --dist-mode "$mode" --dist-timeout 2 --dist-chaos "$chaos" \
      --iterations "$iters" >"$log" 2>&1 &
  pid=$!
  while kill -0 "$pid" 2>/dev/null; do
    rss=$(awk '/VmRSS/{print $2}' "/proc/$pid/status" 2>/dev/null || echo 0)
    [ "${rss:-0}" -gt "$peak_rss_kb" ] && peak_rss_kb=$rss
    sleep 0.1
  done
  if ! wait "$pid"; then
    echo "dist-soak: FAIL — run $runs (chaos=$chaos mode=$mode) exited non-zero"
    tail -n 40 "$log"
    exit 1
  fi
  grep -q "verified against serial CSR" "$log" || {
    echo "dist-soak: FAIL — run $runs skipped the parity check"
    tail -n 40 "$log"; exit 1; }
  # Faults were armed, so a silent "clean" outcome means the drill
  # never fired or the supervisor hid the intervention.
  grep -Eq "outcome (recovered|resharded|single_node)" "$log" || {
    echo "dist-soak: FAIL — run $runs armed $chaos fault(s) but reported no recovery"
    tail -n 40 "$log"; exit 1; }

  recoveries=$(( recoveries + $(grep -c "epoch .*: rank_" "$log" || true) ))
  runs=$(( runs + 1 ))
done

peak_mb=$(( peak_rss_kb / 1024 ))
echo "== dist-soak: $runs runs, $recoveries recovery events, peak RSS ${peak_mb} MiB (limit ${rss_limit_mb}) =="
[ "$runs" -gt 0 ] || { echo "dist-soak: FAIL — no run completed"; exit 1; }
[ "$recoveries" -gt 0 ] || {
  echo "dist-soak: FAIL — chaos never produced a recovery event"; exit 1; }
[ "$peak_mb" -le "$rss_limit_mb" ] || {
  echo "dist-soak: FAIL — RSS exceeded the bound"; exit 1; }

echo "== dist-soak: PASS =="
