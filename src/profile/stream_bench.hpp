// Effective memory bandwidth and latency micro-benchmarks.
//
// The MEM model's BW parameter is "the effective memory bandwidth of the
// system" measured STREAM-style (§V cites McCalpin's STREAM [11]); we
// implement the triad kernel (a[i] = b[i] + s·c[i]) plus a read-only sum
// used for sanity checks, and a dependent-load pointer chase that measures
// memory latency for the MEMLAT model extension.
#pragma once

#include <cstddef>

#include "src/util/run_control.hpp"

namespace bspmv {

struct StreamOptions {
  std::size_t array_bytes = 64 * 1024 * 1024;  ///< per array; >> LLC
  int trials = 5;                              ///< best-of-k
  /// Optional deadline/cancellation, polled between trials (one trial is
  /// a few tens of ms, so aborts land promptly). Non-owning.
  RunControl* control = nullptr;
};

/// STREAM triad bandwidth in bytes/second (3 arrays of traffic per pass).
double stream_triad_bandwidth(const StreamOptions& opt = {});

/// Read-only (sum reduction) bandwidth in bytes/second.
double stream_read_bandwidth(const StreamOptions& opt = {});

/// Average dependent-load latency (seconds) over a buffer exceeding the
/// LLC — a random-permutation pointer chase defeats the prefetchers.
double memory_latency_seconds(std::size_t buffer_bytes = 64 * 1024 * 1024);

}  // namespace bspmv
