// Resource guard for format conversions.
//
// Blocked conversions can blow up even when the source matrix is small:
// BCSR on a scattered matrix stores r·c padded values per nonzero, BCSD
// stores b, and a hostile Matrix Market file can declare dimensions that
// overflow the 4-byte index_t. Every from_csr conversion consults the
// process-wide ConversionGuard before its large allocations, so a blowup
// surfaces as a typed resource_limit_error the executor can turn into a
// CSR fallback — never an OOM kill or a silently wrapped index.
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/util/errors.hpp"

namespace bspmv {

/// Budgets enforced on each individual conversion.
struct ConversionLimits {
  /// Upper bound on the bytes of matrix arrays a single conversion may
  /// allocate. The default is far above any realistic working set: its
  /// job is to turn would-be OOM/overflow into a typed error, not to
  /// second-guess ordinary conversions.
  std::size_t max_bytes = std::size_t{1} << 40;  // 1 TiB

  /// Upper bound on stored elements (nonzeros + padding) per source
  /// nonzero. The worst legitimate candidate fill is r·c = 64 (an 8×8
  /// block holding a single nonzero), so the default never trips the
  /// paper's candidate set; services cap it far lower via Scope.
  double max_fill_ratio = 1024.0;
};

class ConversionGuard {
 public:
  /// The limits every conversion currently enforces.
  static const ConversionLimits& limits();

  /// Replace the process-wide limits; returns the previous ones. Not
  /// thread-safe against concurrent conversions — set limits up front or
  /// use Scope around a single-threaded section.
  static ConversionLimits set_limits(const ConversionLimits& l);

  /// RAII override: applies `l` for the lifetime of the scope.
  class Scope {
   public:
    explicit Scope(const ConversionLimits& l) : prev_(set_limits(l)) {}
    ~Scope() { set_limits(prev_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ConversionLimits prev_;
  };

  /// Admission check for a conversion that will store `stored_elems`
  /// values of `elem_bytes` each (plus `index_bytes` of indexing arrays)
  /// on behalf of `nnz` source nonzeros. Throws resource_limit_error when
  /// the byte budget or the fill-ratio cap would be exceeded. All
  /// arithmetic is overflow-safe.
  static void check(const char* format, std::size_t stored_elems,
                    std::size_t nnz, std::size_t elem_bytes,
                    std::size_t index_bytes = 0);

  /// Throws resource_limit_error when `count` (an array length or matrix
  /// dimension named `what`) cannot be represented by index_t.
  static void check_index_width(const char* format, const char* what,
                                std::size_t count);

  /// a*b, throwing resource_limit_error instead of wrapping on overflow.
  static std::size_t mul(const char* format, std::size_t a, std::size_t b);
};

}  // namespace bspmv
