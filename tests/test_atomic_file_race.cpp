// Concurrent-writer torture for atomic_write_file: many forked processes
// hammer the same destination while a reader polls it. The temp-file +
// rename + flock protocol must guarantee every observed read is one
// writer's complete payload (CRC-verified) — never a torn hybrid — and
// that all writers finish successfully.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/util/atomic_file.hpp"
#include "src/util/errors.hpp"

namespace bspmv {
namespace {

std::string temp_dir() {
  std::string tmpl = ::testing::TempDir() + "bspmv_race_XXXXXX";
  char* p = ::mkdtemp(tmpl.data());
  EXPECT_NE(p, nullptr);
  return tmpl;
}

/// A writer's payload: distinctive per writer and large enough that a
/// torn write would be detectable even without the checksum.
std::string payload_for(int writer, int round) {
  std::string body = "writer=" + std::to_string(writer) +
                     " round=" + std::to_string(round) + "\n";
  body += std::string(8192, static_cast<char>('a' + (writer % 26)));
  return body;
}

TEST(AtomicFileRace, ConcurrentWritersNeverTearTheDestination) {
  const std::string dir = temp_dir();
  const std::string path = dir + "/contested.txt";
  constexpr int kWriters = 8;
  constexpr int kRounds = 40;

  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: write its distinctive payload kRounds times. Exit code
      // reports failure; gtest machinery is unusable post-fork.
      for (int r = 0; r < kRounds; ++r) {
        try {
          atomic_write_file(path, payload_for(w, r), /*with_checksum=*/true);
        } catch (...) {
          _exit(1);
        }
      }
      _exit(0);
    }
    pids.push_back(pid);
  }

  // Parent: read while the storm rages. Every successful read must be a
  // complete, CRC-valid payload from exactly one writer.
  int observed = 0;
  int distinct_mask = 0;
  while (observed < 200) {
    std::optional<std::string> content;
    try {
      content = read_file_if_exists(path);  // throws on CRC mismatch
    } catch (const io_error& e) {
      FAIL() << "torn/corrupt read surfaced through the checksum: "
             << e.what();
    }
    if (content) {
      ++observed;
      ASSERT_EQ(content->compare(0, 7, "writer="), 0)
          << "unexpected payload prefix";
      const int w = std::atoi(content->c_str() + 7);
      ASSERT_GE(w, 0);
      ASSERT_LT(w, kWriters);
      ASSERT_EQ(*content, payload_for(w, std::atoi(content->c_str() +
                                                   content->find("round=") +
                                                   6)))
          << "payload is not any writer's complete write";
      distinct_mask |= 1 << w;
    }
  }

  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "a writer failed";
  }

  // After the dust settles the file is one final complete payload.
  const std::string last = read_file_checked(path);
  EXPECT_EQ(last.compare(0, 7, "writer="), 0);
  EXPECT_GT(distinct_mask, 0);

  std::remove((path + ".lock").c_str());
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(AtomicFileRace, CrashMidWriteLeavesOldContent) {
  const std::string dir = temp_dir();
  const std::string path = dir + "/victim.txt";
  atomic_write_file(path, "original", /*with_checksum=*/true);

  // Child dies via _exit mid-"write" — simulated by writing a temp file
  // next to the destination and dying before any rename. The destination
  // must be untouched. (We can't interrupt atomic_write_file itself
  // mid-syscall portably, but its contract is exactly that the rename is
  // the only mutation of `path` — so a death at any earlier point leaves
  // this temp-file debris at worst.)
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FILE* f = std::fopen((path + ".tmp.dying").c_str(), "w");
    if (f) std::fputs("partial garbage", f);
    _exit(0);  // dies without completing any protocol
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(read_file_checked(path), "original");

  std::remove((path + ".tmp.dying").c_str());
  std::remove((path + ".lock").c_str());
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace bspmv
