// The serving subsystem end to end: wire codec round-trips, hostile
// frame handling, the admission queue, and a live server exercised
// through the client library — correctness, cache behaviour, typed
// failure modes (unknown matrix, deadline, NaN input, overload) and
// spool-based crash recovery.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/client.hpp"
#include "src/serve/server.hpp"
#include "src/util/atomic_file.hpp"
#include "tests/fault_injection.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv::serve {
namespace {

using bspmv::testing::frame_corruptions;
using bspmv::testing::random_blocky_coo;

Csr<double> make_matrix(index_t n, std::uint64_t seed) {
  return Csr<double>::from_coo(
      random_blocky_coo<double>(n, n, 2, 0.4, 0.9, seed));
}

std::vector<double> ones(index_t n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

// ---------------------------------------------------------------- wire ----

TEST(WireCodec, SubmitRoundTrip) {
  const Csr<double> a = make_matrix(36, 5);
  const SubmitRequest req = SubmitRequest::from_csr(a);
  const SubmitRequest back = SubmitRequest::decode(req.encode());
  EXPECT_EQ(back.rows, a.rows());
  EXPECT_EQ(back.cols, a.cols());
  EXPECT_EQ(back.row_ptr, std::vector<index_t>(a.row_ptr().begin(),
                                               a.row_ptr().end()));
  EXPECT_EQ(back.val, std::vector<double>(a.val().begin(), a.val().end()));

  const Csr<double> rebuilt = back.to_csr();
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(rebuilt));
}

TEST(WireCodec, SpmvAndReplyRoundTrip) {
  SpmvRequest req;
  req.fingerprint = 0xdeadbeefcafe1234ull;
  req.priority = 3;
  req.deadline_seconds = 1.5;
  req.check_numerics = true;
  req.x = {1.0, -2.5, 3.25};
  const SpmvRequest back = SpmvRequest::decode(req.encode());
  EXPECT_EQ(back.fingerprint, req.fingerprint);
  EXPECT_EQ(back.priority, 3u);
  EXPECT_DOUBLE_EQ(back.deadline_seconds, 1.5);
  EXPECT_TRUE(back.check_numerics);
  EXPECT_EQ(back.x, req.x);

  SpmvReply rep;
  rep.y = {0.5, 0.25};
  rep.server_seconds = 0.125;
  rep.degraded = true;
  const SpmvReply rep_back = SpmvReply::decode(rep.encode());
  EXPECT_EQ(rep_back.y, rep.y);
  EXPECT_TRUE(rep_back.degraded);

  ErrorReply err;
  err.code = ErrorCode::kOverloaded;
  err.message = "queue full";
  const ErrorReply err_back = ErrorReply::decode(err.encode());
  EXPECT_EQ(err_back.code, ErrorCode::kOverloaded);
  EXPECT_EQ(err_back.message, "queue full");
}

TEST(WireCodec, TruncatedAndHostilePayloadsThrowTyped) {
  const std::string good = SubmitRequest::from_csr(make_matrix(20, 6)).encode();
  // Declared counts larger than the payload must throw parse_error
  // before any allocation, as must any truncation.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                          good.size() / 2, good.size() - 1}) {
    EXPECT_THROW(SubmitRequest::decode(std::string_view(good).substr(0, cut)),
                 parse_error)
        << "cut=" << cut;
  }
  // Trailing garbage is also rejected (expect_end).
  EXPECT_THROW(SubmitRequest::decode(good + "xx"), parse_error);
}

TEST(WireCodec, ErrorTaxonomyMapsBothWays) {
  EXPECT_EQ(error_code_for(overloaded_error("x")), ErrorCode::kOverloaded);
  EXPECT_EQ(error_code_for(timeout_error("x")), ErrorCode::kTimeout);
  EXPECT_EQ(error_code_for(cancelled_error("x")), ErrorCode::kTimeout);
  EXPECT_EQ(error_code_for(numerical_error("x")), ErrorCode::kNumerical);
  EXPECT_EQ(error_code_for(parse_error("x")), ErrorCode::kParse);

  EXPECT_THROW(throw_wire_error(ErrorCode::kOverloaded, "m"),
               overloaded_error);
  EXPECT_THROW(throw_wire_error(ErrorCode::kTimeout, "m"), timeout_error);
  EXPECT_THROW(throw_wire_error(ErrorCode::kNumerical, "m"), numerical_error);
  EXPECT_THROW(throw_wire_error(ErrorCode::kUnknownMatrix, "m"),
               invalid_argument_error);
}

// ----------------------------------------------------------- admission ----

TEST(AdmissionQueue, ShedsLowestPriorityWhenFull) {
  AdmissionQueue q(2);
  std::vector<int> ran;
  std::vector<std::string> shed;
  auto job = [&](int prio) {
    Job j;
    j.priority = prio;
    j.run = [&ran, prio] { ran.push_back(prio); };
    j.shed = [&shed, prio](const std::string&) {
      shed.push_back("p" + std::to_string(prio));
    };
    return j;
  };

  EXPECT_TRUE(q.push(job(0)));
  EXPECT_TRUE(q.push(job(1)));
  // Full. Equal priority: the incoming job is shed, not the queued one.
  EXPECT_FALSE(q.push(job(0)));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], "p0");
  // Higher priority displaces the lowest queued job.
  EXPECT_TRUE(q.push(job(5)));
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[1], "p0");
  EXPECT_EQ(q.shed_count(), 2u);

  // Pop order: highest priority first.
  (*q.pop()).run();
  (*q.pop()).run();
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], 5);
  EXPECT_EQ(ran[1], 1);
}

TEST(AdmissionQueue, FifoWithinPriorityAndNotBefore) {
  AdmissionQueue q(8);
  std::vector<int> ran;
  auto job = [&](int tag, double not_before) {
    Job j;
    j.priority = 0;
    j.not_before = not_before;
    j.run = [&ran, tag] { ran.push_back(tag); };
    return j;
  };
  const double now = steady_seconds();
  q.push(job(1, 0.0));
  q.push(job(2, now + 0.05));  // deferred: backoff requeue semantics
  q.push(job(3, 0.0));

  (*q.pop()).run();
  (*q.pop()).run();
  (*q.pop()).run();  // blocks ~50ms until the deferred job is runnable
  ASSERT_EQ(ran.size(), 3u);
  EXPECT_EQ(ran[0], 1);
  EXPECT_EQ(ran[1], 3);
  EXPECT_EQ(ran[2], 2);
}

TEST(AdmissionQueue, ShutdownShedsEverythingAndUnblocksPop) {
  AdmissionQueue q(4);
  std::atomic<int> shed{0};
  Job j;
  // Deferred far into the future so the popper can't consume it before
  // shutdown sheds it.
  j.not_before = steady_seconds() + 100.0;
  j.shed = [&shed](const std::string&) { shed.fetch_add(1); };
  q.push(std::move(j));

  std::thread popper([&q] {
    while (q.pop()) {
    }
  });
  q.shutdown();
  popper.join();
  EXPECT_EQ(shed.load(), 1);
  // Post-shutdown pushes shed immediately.
  Job late;
  late.shed = [&shed](const std::string&) { shed.fetch_add(1); };
  EXPECT_FALSE(q.push(std::move(late)));
  EXPECT_EQ(shed.load(), 2);
}

// ------------------------------------------------------------- server ----

/// Start a server on a unique socket in the test temp dir; stops on
/// destruction.
struct TestServer {
  explicit TestServer(ServerOptions opt = {}) {
    static std::atomic<int> counter{0};
    dir = ::testing::TempDir() + "bspmv_serve_" + std::to_string(::getpid()) +
          "_" + std::to_string(counter.fetch_add(1));
    ::mkdir(dir.c_str(), 0777);
    opt.socket_path = dir + "/s.sock";
    opt.queue_capacity = 16;  // defaults tuned down for tests
    server = std::make_unique<Server>(opt);
    server->start();
  }
  ~TestServer() {
    server->stop();
    ::unlink((dir + "/s.sock").c_str());
  }
  ServeClient client() { return ServeClient(server->options().socket_path); }

  std::string dir;
  std::unique_ptr<Server> server;
};

TEST(Server, SubmitThenSpmvMatchesReference) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(48, 11);

  const SubmitReply sub = c.submit(a);
  EXPECT_EQ(sub.fingerprint, matrix_fingerprint(a));
  EXPECT_FALSE(sub.cached);

  const std::vector<double> x = ones(a.cols());
  const SpmvReply rep = c.spmv(sub.fingerprint, x);
  ASSERT_EQ(rep.y.size(), static_cast<std::size_t>(a.rows()));

  std::vector<double> ref(static_cast<std::size_t>(a.rows()), 0.0);
  a.to_coo().spmv_reference(x.data(), ref.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(rep.y[i], ref[i], 1e-12) << "row " << i;

  // Second submit of the same matrix hits the cache.
  const SubmitReply again = c.submit(a);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.fingerprint, sub.fingerprint);

  const Json stats = c.stats();
  EXPECT_GE(stats.at("cache").at("hits").as_number(), 1.0);
}

TEST(Server, UnknownFingerprintIsTypedAndRetryHeals) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(32, 12);

  EXPECT_THROW(c.spmv(0x1234, ones(a.cols())), invalid_argument_error);

  // spmv_with_retry resubmits the matrix and succeeds.
  const SpmvReply rep =
      c.spmv_with_retry(a, matrix_fingerprint(a), ones(a.cols()));
  EXPECT_EQ(rep.y.size(), static_cast<std::size_t>(a.rows()));
}

TEST(Server, WrongSizedInputIsInvalidArgument) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(24, 13);
  const SubmitReply sub = c.submit(a);
  EXPECT_THROW(c.spmv(sub.fingerprint, ones(a.cols() + 5)),
               invalid_argument_error);
  // The connection survives a request-level error.
  c.ping();
}

TEST(Server, NanInputTripsNumericGuardWhenRequested) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(24, 14);
  const SubmitReply sub = c.submit(a);
  std::vector<double> x = ones(a.cols());
  x[1] = std::nan("");
  // Guard off: NaN flows through (y contains NaN but the call succeeds).
  EXPECT_NO_THROW(c.spmv(sub.fingerprint, x));
  // Guard on: typed numerical error.
  EXPECT_THROW(c.spmv(sub.fingerprint, x, 0.0, 0, /*check_numerics=*/true),
               numerical_error);
  c.ping();
}

TEST(Server, ConcurrentSameMatrixSpmvsBatchCorrectly) {
  ServerOptions opt;
  opt.workers = 4;  // several workers so requests pile into the batch box
  TestServer ts(opt);
  const Csr<double> a = make_matrix(64, 15);
  SubmitReply sub;
  {
    ServeClient c = ts.client();
    sub = c.submit(a);
  }

  // Distinct x per request so any scatter/gather mix-up in the batched
  // run_multi path shows up as a wrong answer, not a coincidence.
  constexpr int kClients = 12;
  std::vector<std::vector<double>> xs(kClients), ys(kClients);
  for (int j = 0; j < kClients; ++j) {
    xs[static_cast<std::size_t>(j)].resize(
        static_cast<std::size_t>(a.cols()));
    for (index_t i = 0; i < a.cols(); ++i)
      xs[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          0.25 * (j + 1) + 0.01 * static_cast<double>(i);
  }
  std::vector<std::thread> clients;
  for (int j = 0; j < kClients; ++j)
    clients.emplace_back([&, j] {
      ServeClient c = ts.client();
      ys[static_cast<std::size_t>(j)] =
          c.spmv(sub.fingerprint, xs[static_cast<std::size_t>(j)]).y;
    });
  for (auto& th : clients) th.join();

  for (int j = 0; j < kClients; ++j) {
    const auto& x = xs[static_cast<std::size_t>(j)];
    const auto& y = ys[static_cast<std::size_t>(j)];
    ASSERT_EQ(y.size(), static_cast<std::size_t>(a.rows())) << "client " << j;
    std::vector<double> ref(static_cast<std::size_t>(a.rows()), 0.0);
    a.to_coo().spmv_reference(x.data(), ref.data());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(y[i], ref[i], 1e-12) << "client " << j << " row " << i;
  }

  // The batch counters are wired into stats (whether any round actually
  // coalesced ≥2 requests depends on scheduling, so only presence and
  // consistency are asserted).
  ServeClient c = ts.client();
  const Json stats = c.stats();
  EXPECT_GE(stats.at("requests").at("batched_spmvs").as_number(), 0.0);
  EXPECT_GE(stats.at("requests").at("batched_spmvs").as_number(),
            stats.at("requests").at("batch_rounds").as_number());
}

TEST(Server, BatchingDisabledServesSingleVectorPath) {
  ServerOptions opt;
  opt.max_batch = 1;
  TestServer ts(opt);
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(32, 16);
  const SubmitReply sub = c.submit(a);
  const std::vector<double> x = ones(a.cols());
  const SpmvReply rep = c.spmv(sub.fingerprint, x);
  std::vector<double> ref(static_cast<std::size_t>(a.rows()), 0.0);
  a.to_coo().spmv_reference(x.data(), ref.data());
  ASSERT_EQ(rep.y.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(rep.y[i], ref[i], 1e-12) << "row " << i;
  const Json stats = c.stats();
  EXPECT_EQ(stats.at("requests").at("batch_rounds").as_number(), 0.0);
}

TEST(Server, MalformedFramesGetTypedErrorsNeverCrash) {
  TestServer ts;
  const std::string socket = ts.server->options().socket_path;

  // A valid ping frame, then every corruption of it, each on a fresh
  // connection (a desynced connection is dropped by design).
  WireWriter w;
  w.u32(kMagic);
  w.u32(kProtocolVersion);
  w.u32(static_cast<std::uint32_t>(MsgType::kPing));
  w.u64(0);
  const std::string ping_frame = w.take();

  for (const std::string& junk : frame_corruptions(ping_frame)) {
    ServeClient probe(socket);
    (void)::send(probe.fd(), junk.data(), junk.size(), MSG_NOSIGNAL);
    ::shutdown(probe.fd(), SHUT_WR);
    // Drain whatever the server answers (error frame or close); the
    // only failure mode here is the *server* dying.
    MsgType t{};
    std::string payload;
    try {
      while (read_frame(probe.fd(), t, payload, WireLimits{}))
        ;
    } catch (const error&) {
      // typed — fine
    }
  }

  // Server is still alive and serving.
  ServeClient c = ts.client();
  c.ping();
  const Csr<double> a = make_matrix(20, 15);
  const SubmitReply sub = c.submit(a);
  EXPECT_EQ(sub.fingerprint, matrix_fingerprint(a));
}

TEST(Server, SpoolRecoveryAfterRestart) {
  std::uint64_t fp = 0;
  const Csr<double> a = make_matrix(40, 16);

  const std::string socket_dir =
      ::testing::TempDir() + "bspmv_spoolr_" + std::to_string(::getpid());
  ::mkdir(socket_dir.c_str(), 0777);
  const std::string spool = socket_dir + "/spool";
  ::mkdir(spool.c_str(), 0777);

  {
    ServerOptions o;
    o.socket_path = socket_dir + "/a.sock";
    o.spool_dir = spool;
    o.workers = 2;
    Server s(o);
    s.start();
    ServeClient c(o.socket_path);
    fp = c.submit(a).fingerprint;
    s.stop();  // hard stop; cache dies with the process in real life
  }

  // Fresh server, same spool: the fingerprint is unknown in RAM but
  // recoverable from disk — the spmv succeeds without a resubmit.
  {
    ServerOptions o;
    o.socket_path = socket_dir + "/b.sock";
    o.spool_dir = spool;
    o.workers = 2;
    Server s(o);
    s.start();
    ServeClient c(o.socket_path);
    const SpmvReply rep = c.spmv(fp, ones(a.cols()));
    EXPECT_EQ(rep.y.size(), static_cast<std::size_t>(a.rows()));

    std::vector<double> ref(static_cast<std::size_t>(a.rows()), 0.0);
    a.to_coo().spmv_reference(ones(a.cols()).data(), ref.data());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(rep.y[i], ref[i], 1e-12);
    s.stop();
  }
}

TEST(Server, CorruptSpoolFileIsDroppedNotServed) {
  std::string dir =
      ::testing::TempDir() + "bspmv_spoolc_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0777);
  const std::string spool = dir + "/spool";
  ::mkdir(spool.c_str(), 0777);

  const Csr<double> a = make_matrix(30, 17);
  const std::uint64_t fp = matrix_fingerprint(a);
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.mat",
                static_cast<unsigned long long>(fp));
  {
    // A torn spool file: valid name, garbage content.
    FILE* f = std::fopen((spool + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a matrix", f);
    std::fclose(f);
  }

  ServerOptions o;
  o.socket_path = dir + "/s.sock";
  o.spool_dir = spool;
  Server s(o);
  s.start();
  ServeClient c(o.socket_path);
  // Unknown matrix (typed), not a crash or a garbage answer.
  EXPECT_THROW(c.spmv(fp, ones(a.cols())), invalid_argument_error);
  // The bad file was dropped so it cannot poison future restarts.
  EXPECT_FALSE(read_file_if_exists(spool + "/" + name).has_value());
  s.stop();
}

TEST(Server, DeadlineExpiredReturnsTimeout) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(64, 18);
  const SubmitReply sub = c.submit(a);
  // An absurdly small budget: the deadline is checked before/after the
  // run, so this returns timeout_error rather than hanging.
  try {
    c.spmv(sub.fingerprint, ones(a.cols()), /*deadline_seconds=*/1e-9);
    // A machine fast enough to finish inside 1ns would pass; accept both
    // outcomes but require the connection stays healthy.
  } catch (const timeout_error&) {
  }
  c.ping();
}

TEST(Server, ShutdownFrameStopsTheServer) {
  TestServer ts;
  ServeClient c = ts.client();
  c.shutdown_server();
  for (int i = 0; i < 100 && !ts.server->stopping(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ts.server->stopping());
}

TEST(Server, StatsReportServeCounters) {
  TestServer ts;
  ServeClient c = ts.client();
  const Csr<double> a = make_matrix(20, 19);
  const SubmitReply sub = c.submit(a);
  c.spmv(sub.fingerprint, ones(a.cols()));
  const Json stats = c.stats();
  EXPECT_EQ(stats.at("kind").as_string(), "bspmv_serve_stats");
  EXPECT_GE(stats.at("requests").at("ok").as_number(), 2.0);
  EXPECT_GE(stats.at("cache").at("misses").as_number(), 1.0);
  EXPECT_EQ(stats.at("queue_capacity").as_number(), 16.0);
}

}  // namespace
}  // namespace bspmv::serve
