// Deterministic pseudo-fuzz of the two text parsers (JSON, Matrix
// Market): random well-formed documents must round-trip, and random
// garbage/truncations must raise parse_error — never crash or hang.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "src/io/matrix_market.hpp"
#include "src/util/json.hpp"
#include "src/util/macros.hpp"
#include "src/util/prng.hpp"

namespace bspmv {
namespace {

// ---------------------------------------------------------- JSON gen ----

Json random_json(Xoshiro256& rng, int depth) {
  const std::uint64_t kind = rng.below(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.uniform() < 0.5);
    case 2: {
      // Mix of integers, negatives and exponent-bearing doubles.
      const double mag = std::ldexp(rng.uniform(), static_cast<int>(rng.below(60)));
      return Json(rng.uniform() < 0.5 ? -mag : mag);
    }
    case 3: {
      std::string s;
      const auto len = rng.below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus escapes-needing characters.
        const char alphabet[] = "ab\"\\\n\tz 01{}[],:";
        s += alphabet[rng.below(sizeof(alphabet) - 1)];
      }
      return Json(std::move(s));
    }
    case 4: {
      Json::Array arr;
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i)
        arr.push_back(random_json(rng, depth - 1));
      return Json(std::move(arr));
    }
    default: {
      Json::Object obj;
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i)
        obj["k" + std::to_string(rng.below(100))] = random_json(rng, depth - 1);
      return Json(std::move(obj));
    }
  }
}

TEST(FuzzJson, RandomDocumentsRoundTrip) {
  Xoshiro256 rng(0xf022);
  for (int iter = 0; iter < 300; ++iter) {
    const Json doc = random_json(rng, 4);
    for (int indent : {-1, 2}) {
      const Json back = Json::parse(doc.dump(indent));
      ASSERT_EQ(back, doc) << "iter " << iter;
    }
  }
}

TEST(FuzzJson, GarbageNeverCrashes) {
  Xoshiro256 rng(0xdead);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsn \n\t\\x";
  int parsed = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s;
    const auto len = rng.below(40);
    for (std::uint64_t i = 0; i < len; ++i)
      s += alphabet[rng.below(sizeof(alphabet) - 1)];
    try {
      (void)Json::parse(s);
      ++parsed;  // occasionally the garbage is valid JSON — fine
    } catch (const parse_error&) {
    }
  }
  // Sanity: the fuzz isn't accidentally always-valid.
  EXPECT_LT(parsed, 1500);
}

TEST(FuzzJson, TruncationsOfValidDocsAreHandled) {
  const std::string doc =
      R"({"a": [1, 2.5, "x\"y"], "b": {"c": true, "d": null}})";
  for (std::size_t len = 0; len < doc.size(); ++len) {
    try {
      (void)Json::parse(doc.substr(0, len));
    } catch (const parse_error&) {
    }
  }
  SUCCEED();  // reaching here without crash/hang is the property
}

// -------------------------------------------------- Matrix Market gen ----

TEST(FuzzMatrixMarket, RandomValidFilesRoundTrip) {
  Xoshiro256 rng(0x3141);
  for (int iter = 0; iter < 50; ++iter) {
    const auto n = static_cast<index_t>(1 + rng.below(30));
    const auto m = static_cast<index_t>(1 + rng.below(30));
    Coo<double> coo(n, m);
    const auto nnz = rng.below(60);
    for (std::uint64_t k = 0; k < nnz; ++k)
      coo.add(static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n))),
              static_cast<index_t>(rng.below(static_cast<std::uint64_t>(m))),
              rng.uniform() * 2 - 1);
    coo.sort_and_combine();

    std::ostringstream out;
    write_matrix_market(coo, out);
    std::istringstream in(out.str());
    Coo<double> back = parse_matrix_market<double>(in);
    back.sort_and_combine();
    ASSERT_EQ(back.nnz(), coo.nnz()) << "iter " << iter;
  }
}

TEST(FuzzMatrixMarket, MutatedFilesNeverCrash) {
  Coo<double> coo(5, 5);
  coo.add(0, 0, 1.0);
  coo.add(3, 4, -2.0);
  std::ostringstream out;
  write_matrix_market(coo, out);
  const std::string base = out.str();

  Xoshiro256 rng(0x777);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s = base;
    // 1-3 random single-character mutations.
    const auto muts = 1 + rng.below(3);
    for (std::uint64_t j = 0; j < muts; ++j) {
      const auto pos = rng.below(s.size());
      s[pos] = static_cast<char>(32 + rng.below(95));
    }
    std::istringstream in(s);
    try {
      (void)parse_matrix_market<double>(in);
    } catch (const parse_error&) {
    } catch (const invalid_argument_error&) {
      // e.g. a mutated dimension shrank the matrix below an entry index
    }
  }
  SUCCEED();
}

TEST(FuzzMatrixMarket, MalformedCorpusRaisesTypedParseErrors) {
  // Curated malformed documents: each must raise parse_error, not some
  // foreign exception and not a silent success.
  const char* corpus[] = {
      // Truncated / short size line.
      "%%MatrixMarket matrix coordinate real general\n4\n",
      "%%MatrixMarket matrix coordinate real general\n4 4\n",
      // Trailing junk on the size line.
      "%%MatrixMarket matrix coordinate real general\n4 4 1 9\n1 1 1.0\n",
      // Non-numeric size tokens.
      "%%MatrixMarket matrix coordinate real general\nfour 4 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 one\n1 1 1.0\n",
      // Negative / overflow dimensions (4-byte index type).
      "%%MatrixMarket matrix coordinate real general\n-4 4 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n99999999999 1 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n1 99999999999 1\n1 1 1.0\n",
      // Declared entry count exceeding rows*cols.
      "%%MatrixMarket matrix coordinate real general\n2 2 5\n"
      "1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n",
      // Non-numeric entry tokens.
      "%%MatrixMarket matrix coordinate real general\n4 4 1\nx 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 y 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1 z\n",
      // Missing value / trailing tokens on an entry line.
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1 1.0 extra\n",
      // 1-based indices out of the declared bounds.
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n0 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n5 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 5 1.0\n",
      // Fewer / more entries than declared.
      "%%MatrixMarket matrix coordinate real general\n4 4 2\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1 1.0\n2 2 2.0\n",
      // Diagonal entry in a skew-symmetric matrix.
      "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 1\n2 2 1.0\n",
  };
  for (const char* doc : corpus) {
    std::istringstream in(doc);
    EXPECT_THROW((void)parse_matrix_market<double>(in), parse_error)
        << "--- document ---\n"
        << doc;
  }
}

TEST(FuzzMatrixMarket, ParseErrorsCarryLineNumbers) {
  const std::string doc =
      "%%MatrixMarket matrix coordinate real general\n4 4 2\n1 1 1.0\nbad\n";
  std::istringstream in(doc);
  try {
    (void)parse_matrix_market<double>(in);
    FAIL() << "expected parse_error";
  } catch (const parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(FuzzMatrixMarket, TruncationsAreHandled) {
  Coo<double> coo(4, 4);
  for (index_t i = 0; i < 4; ++i) coo.add(i, i, 1.0 + i);
  std::ostringstream out;
  write_matrix_market(coo, out);
  const std::string base = out.str();
  for (std::size_t len = 0; len < base.size(); ++len) {
    std::istringstream in(base.substr(0, len));
    try {
      (void)parse_matrix_market<double>(in);
    } catch (const parse_error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace bspmv
