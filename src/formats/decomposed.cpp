#include "src/formats/decomposed.hpp"

#include <algorithm>
#include <vector>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

// Split `a` into (blocked-part COO, remainder COO) according to a block-key
// function over aligned row bands: entries whose key occurs exactly
// `block_elems` times within a band form a full block. Mirrors the logic in
// stats.cpp, but materialises the split.
template <class V, class KeyFn>
void split_full_blocks(const Csr<V>& a, int band, KeyFn key_of,
                       std::size_t block_elems, Coo<V>& full_part,
                       Coo<V>& rem_part) {
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();

  std::vector<long long> keys;
  for (index_t base = 0; base < n; base += band) {
    const index_t row_end = std::min<index_t>(n, base + band);
    keys.clear();
    for (index_t i = base; i < row_end; ++i)
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        keys.push_back(key_of(i, col_ind[static_cast<std::size_t>(k)], base));
    std::sort(keys.begin(), keys.end());

    // Distinct keys occurring exactly block_elems times → full blocks.
    std::vector<long long> full_keys;
    for (std::size_t s = 0; s < keys.size();) {
      std::size_t e = s;
      while (e < keys.size() && keys[e] == keys[s]) ++e;
      if (e - s == block_elems) full_keys.push_back(keys[s]);
      s = e;
    }

    for (index_t i = base; i < row_end; ++i) {
      for (index_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t j = col_ind[static_cast<std::size_t>(k)];
        const long long key = key_of(i, j, base);
        const bool in_full =
            std::binary_search(full_keys.begin(), full_keys.end(), key);
        (in_full ? full_part : rem_part)
            .add(i, j, val[static_cast<std::size_t>(k)]);
      }
    }
  }
}

}  // namespace

template <class V>
BcsrDec<V> BcsrDec<V>::from_csr(const Csr<V>& a, BlockShape shape) {
  BSPMV_CHECK(shape.r >= 1 && shape.c >= 1);
  Coo<V> full_part(a.rows(), a.cols());
  Coo<V> rem_part(a.rows(), a.cols());
  split_full_blocks(
      a, shape.r,
      [c = shape.c](index_t, index_t j, index_t) -> long long { return j / c; },
      static_cast<std::size_t>(shape.elems()), full_part, rem_part);

  BcsrDec out;
  out.blocked_ = Bcsr<V>::from_csr(Csr<V>::from_coo(std::move(full_part)), shape);
  out.remainder_ = Csr<V>::from_coo(std::move(rem_part));
  BSPMV_DBG_ASSERT(out.blocked_.padding() == 0);
  return out;
}

template <class V>
std::size_t BcsrDec<V>::working_set_bytes() const {
  // x and y are shared between the two passes; subtract one copy of each.
  return blocked_.working_set_bytes() + remainder_.working_set_bytes() -
         static_cast<std::size_t>(cols()) * sizeof(V) -
         static_cast<std::size_t>(rows()) * sizeof(V);
}

template <class V>
Coo<V> BcsrDec<V>::to_coo() const {
  Coo<V> coo = blocked_.to_coo();
  const Coo<V> rem = remainder_.to_coo();
  for (const auto& e : rem.entries()) coo.add(e.row, e.col, e.value);
  return coo;
}

template <class V>
BcsdDec<V> BcsdDec<V>::from_csr(const Csr<V>& a, int b) {
  BSPMV_CHECK(b >= 1);
  Coo<V> full_part(a.rows(), a.cols());
  Coo<V> rem_part(a.rows(), a.cols());
  split_full_blocks(
      a, b,
      [](index_t i, index_t j, index_t base) -> long long {
        return static_cast<long long>(j) - (i - base);
      },
      static_cast<std::size_t>(b), full_part, rem_part);

  BcsdDec out;
  out.blocked_ = Bcsd<V>::from_csr(Csr<V>::from_coo(std::move(full_part)), b);
  out.remainder_ = Csr<V>::from_coo(std::move(rem_part));
  BSPMV_DBG_ASSERT(out.blocked_.padding() == 0);
  return out;
}

template <class V>
std::size_t BcsdDec<V>::working_set_bytes() const {
  return blocked_.working_set_bytes() + remainder_.working_set_bytes() -
         static_cast<std::size_t>(cols()) * sizeof(V) -
         static_cast<std::size_t>(rows()) * sizeof(V);
}

template <class V>
Coo<V> BcsdDec<V>::to_coo() const {
  Coo<V> coo = blocked_.to_coo();
  const Coo<V> rem = remainder_.to_coo();
  for (const auto& e : rem.entries()) coo.add(e.row, e.col, e.value);
  return coo;
}

template class BcsrDec<float>;
template class BcsrDec<double>;
template class BcsdDec<float>;
template class BcsdDec<double>;

}  // namespace bspmv
