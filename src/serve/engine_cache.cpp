#include "src/serve/engine_cache.hpp"

#include <algorithm>

#include "src/observe/observe.hpp"
#include "src/util/numerics.hpp"

namespace bspmv::serve {

std::uint64_t matrix_fingerprint(const Csr<double>& a) {
  // Chain FNV-1a across the dimension header and the three arrays; the
  // previous hash seeds the next segment so array boundaries matter
  // (swapping bytes between col_ind and val changes the result).
  const std::uint64_t dims[3] = {static_cast<std::uint64_t>(a.rows()),
                                 static_cast<std::uint64_t>(a.cols()),
                                 static_cast<std::uint64_t>(a.nnz())};
  std::uint64_t h = bits_fingerprint(dims, 3);
  h ^= bits_fingerprint(a.row_ptr().data(), a.row_ptr().size());
  h *= 0x100000001b3ull;
  h ^= bits_fingerprint(a.col_ind().data(), a.col_ind().size());
  h *= 0x100000001b3ull;
  h ^= bits_fingerprint(a.val().data(), a.val().size());
  return h;
}

MatrixKey matrix_key(const Csr<double>& a) {
  return MatrixKey{matrix_fingerprint(a), a.rows(), a.cols(), a.nnz()};
}

EngineCache::EngineCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

std::shared_ptr<const CachedEngine> EngineCache::find(const MatrixKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key.hash);
  if (it == map_.end()) {
    ++misses_;
    BSPMV_OBS_COUNT("serve.cache.misses", 1);
    return nullptr;
  }
  if ((*it->second)->key != key) {
    // Same 64-bit hash, different matrix: never serve the resident
    // engine for this request.
    ++collisions_;
    ++misses_;
    BSPMV_OBS_COUNT("serve.cache.collisions", 1);
    BSPMV_OBS_COUNT("serve.cache.misses", 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++hits_;
  BSPMV_OBS_COUNT("serve.cache.hits", 1);
  return *it->second;
}

std::shared_ptr<const CachedEngine> EngineCache::find(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(hash);
  if (it == map_.end()) {
    ++misses_;
    BSPMV_OBS_COUNT("serve.cache.misses", 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++hits_;
  BSPMV_OBS_COUNT("serve.cache.hits", 1);
  return *it->second;
}

void EngineCache::evict_for(std::size_t need) {
  while (!lru_.empty() && budget_ - std::min(bytes_, budget_) < need) {
    const Entry& victim = lru_.back();
    bytes_ -= std::min(bytes_, victim->bytes);
    map_.erase(victim->key.hash);
    lru_.pop_back();
    ++evictions_;
    BSPMV_OBS_COUNT("serve.cache.evictions", 1);
  }
}

void EngineCache::insert(std::shared_ptr<const CachedEngine> e) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(e->key.hash);
  if (it != map_.end()) {
    if ((*it->second)->key != e->key) {
      ++collisions_;
      BSPMV_OBS_COUNT("serve.cache.collisions", 1);
    }
    bytes_ -= std::min(bytes_, (*it->second)->bytes);
    lru_.erase(it->second);
    map_.erase(it);
  }
  // An entry larger than the whole budget still evicts everything else,
  // then goes in alone — total stays at max(budget, one entry).
  evict_for(std::min(e->bytes, budget_ == 0 ? e->bytes : budget_));
  bytes_ += e->bytes;
  const std::uint64_t hash = e->key.hash;
  lru_.push_front(std::move(e));
  map_[hash] = lru_.begin();
  BSPMV_OBS_COUNT("serve.cache.inserts", 1);
}

bool EngineCache::erase(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(hash);
  if (it == map_.end()) return false;
  bytes_ -= std::min(bytes_, (*it->second)->bytes);
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void EngineCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

EngineCache::Stats EngineCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.collisions = collisions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_;
  return s;
}

std::vector<std::uint64_t> EngineCache::resident_hashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e->key.hash);
  return out;
}

}  // namespace bspmv::serve
