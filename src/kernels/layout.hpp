// Memory layout of the multi-vector (SpMM) X and Y blocks.
//
// For k right-hand sides, X is a cols×k dense block and Y a rows×k
// block. Two layouts are supported everywhere spmm/run_multi appear:
//
//   kRowMajor  element (i, j) at X[i·k + j] — the k values sharing a row
//              index are adjacent ("interleaved"). This is the fast
//              path: the kernels stream the matrix once and SIMD across
//              the k vectors with contiguous loads (no gathers).
//   kColMajor  element (i, j) at X[j·cols + i] — each vector is
//              contiguous, the natural layout when k independent
//              requests are stacked. Executed as k single-vector passes
//              (the matrix is streamed k times), which is only
//              competitive while the matrix stays cache-resident.
//
// Lives next to impl.hpp so low-level headers can name a Layout without
// pulling in the SpMM front-end. docs/spmm.md derives the per-k and
// per-layout working-set accounting.
#pragma once

namespace bspmv {

enum class Layout { kRowMajor, kColMajor };

inline const char* layout_name(Layout layout) {
  return layout == Layout::kRowMajor ? "row" : "col";
}

}  // namespace bspmv
