// Kernel profiling — produces the t_b and nof_b inputs of the MEMCOMP and
// OVERLAP models.
//
// §IV, eq. (2): "block times can be obtained by profiling the execution of
// a very small dense matrix, which is stored using every blocking method
// and block under consideration and fits in the L1 cache".
// §IV, eq. (4): nof_b is "obtained ... by profiling a large dense matrix
// that exceeds the highest level of cache".
#pragma once

#include "src/profile/cache_info.hpp"
#include "src/profile/machine_profile.hpp"
#include "src/profile/sampling.hpp"
#include "src/util/run_control.hpp"

namespace bspmv {

struct ProfileOptions {
  CacheInfo cache;             ///< default-constructed => detect at runtime
  bool detect_cache = true;    ///< overwrite `cache` via sysfs probing
  double bandwidth_bps = 0.0;  ///< 0 => measure with the STREAM triad
  bool include_simd = true;    ///< profile the vectorised kernels too
  bool quick = false;          ///< smaller buffers / fewer reps (tests)
  bool verbose = false;        ///< progress lines on stderr
  /// Cloud VMs report huge *shared* L3s (hundreds of MiB) that a single
  /// core cannot realistically own; sizing the nof matrix off that would
  /// make profiling take hours. The effective LLC used for sizing is
  /// clamped to this value.
  std::size_t max_effective_llc = 32ull * 1024 * 1024;
  /// Measurement resilience: every kernel timing is drawn through
  /// robust_samples (MAD outlier rejection + retry-with-backoff), so one
  /// scheduler hiccup cannot poison a t_b or nof estimate for the
  /// lifetime of the cached profile.
  SamplePolicy sampling;
  /// Optional deadline/cancellation for the whole profiling run, polled
  /// between kernel timings; aborts with the control's typed error.
  /// Non-owning; nullptr disables.
  RunControl* control = nullptr;
};

/// Run the full profiling pipeline (bandwidth, latency, t_b and nof for
/// every fixed-size blocking kernel plus CSR and 1D-VBL, both precisions).
MachineProfile profile_machine(const ProfileOptions& opt = {});

/// Load `path` if it exists, else profile and save there. The cheap way
/// for benches and examples to share one profile per machine.
MachineProfile load_or_profile(const std::string& path,
                               const ProfileOptions& opt = {});

}  // namespace bspmv
