#include "src/kernels/vbr_kernels.hpp"

#include "src/kernels/simd.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
void vbr_spmv_scalar(const Vbr<V>& a, const V* BSPMV_RESTRICT x,
                     V* BSPMV_RESTRICT y) {
  const index_t* BSPMV_RESTRICT rpntr = a.rpntr().data();
  const index_t* BSPMV_RESTRICT cpntr = a.cpntr().data();
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bindx = a.bindx().data();
  const index_t* BSPMV_RESTRICT bval_ptr = a.bval_ptr().data();
  const V* BSPMV_RESTRICT val = a.val().data();

  const index_t nbr = a.block_rows();
  for (index_t br = 0; br < nbr; ++br) {
    const index_t r0 = rpntr[br];
    const index_t r1 = rpntr[br + 1];
    for (index_t blk = brow_ptr[br]; blk < brow_ptr[br + 1]; ++blk) {
      const index_t bc = bindx[blk];
      const index_t c0 = cpntr[bc];
      const index_t width = cpntr[bc + 1] - c0;
      const V* BSPMV_RESTRICT bv = val + bval_ptr[blk];
      const V* BSPMV_RESTRICT xp = x + c0;
      for (index_t i = r0; i < r1; ++i) {
        V sum{0};
        for (index_t j = 0; j < width; ++j) sum += bv[j] * xp[j];
        y[i] += sum;
        bv += width;
      }
    }
  }
}

template <class V>
void vbr_spmv_simd(const Vbr<V>& a, const V* BSPMV_RESTRICT x,
                   V* BSPMV_RESTRICT y) {
  const index_t* BSPMV_RESTRICT rpntr = a.rpntr().data();
  const index_t* BSPMV_RESTRICT cpntr = a.cpntr().data();
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bindx = a.bindx().data();
  const index_t* BSPMV_RESTRICT bval_ptr = a.bval_ptr().data();
  const V* BSPMV_RESTRICT val = a.val().data();
  constexpr int w = simd_width<V>;

  const index_t nbr = a.block_rows();
  for (index_t br = 0; br < nbr; ++br) {
    const index_t r0 = rpntr[br];
    const index_t r1 = rpntr[br + 1];
    for (index_t blk = brow_ptr[br]; blk < brow_ptr[br + 1]; ++blk) {
      const index_t bc = bindx[blk];
      const index_t c0 = cpntr[bc];
      const index_t width = cpntr[bc + 1] - c0;
      const V* BSPMV_RESTRICT bv = val + bval_ptr[blk];
      const V* BSPMV_RESTRICT xp = x + c0;
      for (index_t i = r0; i < r1; ++i) {
        V sum{0};
        index_t j = 0;
        if (width >= w) {
          simd_t<V> acc = simd_zero<V>();
          for (; j + w <= width; j += w)
            acc += simd_loadu(bv + j) * simd_loadu(xp + j);
          sum += simd_hsum<V>(acc);
        }
        for (; j < width; ++j) sum += bv[j] * xp[j];
        y[i] += sum;
        bv += width;
      }
    }
  }
}

template void vbr_spmv_scalar(const Vbr<float>&, const float*, float*);
template void vbr_spmv_scalar(const Vbr<double>&, const double*, double*);
template void vbr_spmv_simd(const Vbr<float>&, const float*, float*);
template void vbr_spmv_simd(const Vbr<double>&, const double*, double*);

}  // namespace bspmv
