// bspmv_serve — the SpMV serving daemon.
//
// Binds a Unix socket, prepares an engine per submitted matrix (cached by
// fingerprint under a byte budget) and answers y = A·x requests under
// per-request deadlines. See docs/serving.md for the protocol, the
// error/exit-code table and the degradation ladder.
//
// Exit codes follow mtx_tool (docs/robustness.md): 0 ok, 1 generic
// error, 6 io (cannot bind the socket).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "src/serve/server.hpp"
#include "src/util/cli.hpp"

namespace {

std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace bspmv;
  using namespace bspmv::serve;

  CliParser cli;
  cli.add_option("socket", "/tmp/bspmv.sock", "unix socket path to listen on");
  cli.add_option("cache-mb", "256", "engine cache budget in MiB");
  cli.add_option("queue", "64", "admission queue capacity");
  cli.add_option("workers", "2", "request worker threads");
  cli.add_option("engine-threads", "0",
                 "threads per engine plan (0 = single-threaded kernels)");
  cli.add_option("executor", "bulk",
                 "threaded-engine backend: bulk (OpenMP, default) or tasks "
                 "(work-stealing task graph; non-batched requests complete "
                 "asynchronously)");
  cli.add_option("spool-dir", "",
                 "persist submitted matrices here for crash recovery"
                 " (empty = off)");
  cli.add_option("default-deadline", "10",
                 "seconds granted to a request that carries no deadline");
  cli.add_option("max-deadline", "120", "cap on requested deadlines");
  cli.add_option("stall-timeout", "5",
                 "watchdog stall detection budget in seconds");
  cli.add_option("prepare-deadline", "60",
                 "budget for one engine preparation in seconds");
  cli.add_option("max-frame-mb", "64", "largest accepted frame in MiB");
  cli.add_option("max-batch", "8",
                 "gather up to this many concurrent same-matrix spmv "
                 "requests into one batched SpMM run (<= 1 disables)");
  cli.add_flag("no-measure",
               "skip measured candidate selection on prepare (take the "
               "first candidate that converts)");
  cli.add_flag("no-simd", "exclude simd candidates from selection");

  try {
    if (!cli.parse(argc, argv)) return 0;

    ServerOptions opt;
    opt.socket_path = cli.get("socket");
    opt.cache_bytes =
        static_cast<std::size_t>(cli.get_int("cache-mb")) << 20;
    opt.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
    opt.workers = static_cast<int>(cli.get_int("workers"));
    opt.engine_threads = static_cast<int>(cli.get_int("engine-threads"));
    // Typo -> invalid_argument_error -> exit 1, before any socket work.
    opt.executor = parse_backend(cli.get("executor"));
    opt.spool_dir = cli.get("spool-dir");
    opt.default_deadline_seconds = cli.get_double("default-deadline");
    opt.max_deadline_seconds = cli.get_double("max-deadline");
    opt.stall_timeout_seconds = cli.get_double("stall-timeout");
    opt.prepare_deadline_seconds = cli.get_double("prepare-deadline");
    opt.wire.max_frame_bytes =
        static_cast<std::size_t>(cli.get_int("max-frame-mb")) << 20;
    opt.max_batch = static_cast<int>(cli.get_int("max-batch"));
    opt.prepare_measure = !cli.get_flag("no-measure");
    opt.simd = !cli.get_flag("no-simd");

    Server server(opt);
    server.start();
    std::fprintf(stderr, "bspmv_serve: listening on %s (%d workers)\n",
                 opt.socket_path.c_str(), opt.workers);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // wait() returns on a kShutdown frame; poll the signal flag alongside
    // so Ctrl-C / TERM also stop the daemon cleanly.
    while (!server.stopping() && g_signal == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();
    std::fprintf(stderr, "bspmv_serve: stopped\n");
    return 0;
  } catch (const io_error& e) {
    std::fprintf(stderr, "bspmv_serve: io error: %s\n", e.what());
    return 6;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bspmv_serve: %s\n", e.what());
    return 1;
  }
}
