#include "src/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw parse_error(std::string("Json: value is not ") + want);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "Json parse error at offset " << pos_ << ": " << why;
    throw parse_error(os.str());
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char get() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + '\'');
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0x7f) fail("non-ASCII \\u escapes unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, value);
    if (ec != std::errc{} || ptr != s_.data() + pos_) fail("bad number");
    return Json(value);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::floor(d) == d && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(v_);
}
double Json::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(v_);
}
const std::string& Json::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(v_);
}
const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}
const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}
Json::Array& Json::as_array() {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}
Json::Object& Json::as_object() {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  if (!is_object()) type_error("object");
  return std::get<Object>(v_)[key];
}

const Json& Json::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw parse_error("Json: missing key '" + key + '\'');
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) != 0;
}

namespace {
void dump_impl(const Json& j, int indent, int depth, std::string& out);

void newline_indent(int indent, int depth, std::string& out) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}
}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, indent, 0, out);
  return out;
}

namespace {
void dump_impl(const Json& j, int indent, int depth, std::string& out) {
  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_number()) {
    dump_number(j.as_number(), out);
  } else if (j.is_string()) {
    dump_string(j.as_string(), out);
  } else if (j.is_array()) {
    const auto& a = j.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& e : a) {
      if (!first) out += ',';
      first = false;
      newline_indent(indent, depth + 1, out);
      dump_impl(e, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out += ']';
  } else {
    const auto& o = j.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out += ',';
      first = false;
      newline_indent(indent, depth + 1, out);
      dump_string(k, out);
      out += indent < 0 ? ":" : ": ";
      dump_impl(v, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out += '}';
  }
}
}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace bspmv
