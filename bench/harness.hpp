// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary accepts the same core flags (--scale, --iters,
// --matrices, --profile, --cache, ...), shares one machine profile on
// disk, and — critically — shares a *sweep cache*: measuring all ~107
// candidates on all 30 matrices is by far the dominant cost, and Tables
// II/III and Figures 3/4 (plus Table IV) all consume the same sweep, so
// the first bench to run persists the timings and the rest reuse them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/executor.hpp"
#include "src/gen/suite.hpp"
#include "src/profile/block_profiler.hpp"
#include "src/util/cli.hpp"
#include "src/util/json.hpp"

namespace bspmv::bench {

struct BenchConfig {
  SuiteScale scale = SuiteScale::kSmall;
  MeasureOptions measure;                 ///< per-candidate timing knobs
  std::string profile_path = "machine_profile.json";
  std::string cache_path = "sweep_cache.json";
  std::string report_path = "BENCH_report.json";  ///< trajectory ("" = off)
  std::vector<int> matrix_ids;            ///< suite ids to run
  bool no_cache = false;
  bool verbose = false;
};

/// Install the shared bench flags on a CliParser.
void add_common_flags(CliParser& cli);

/// Parse argv into a BenchConfig (flags must have been installed with
/// add_common_flags; binaries may add their own flags first). Returns
/// nullopt if --help was requested.
std::optional<BenchConfig> parse_common(const CliParser& cli);

/// Load the shared machine profile, profiling (and saving) on first use.
MachineProfile get_machine_profile(const BenchConfig& cfg);

/// Human-readable format labels matching the paper's tables.
const char* format_label(FormatKind kind);

/// Append one bench result entry to the BENCH_report.json trajectory so
/// successive runs accumulate a machine-readable perf history. The entry
/// is wrapped with the bench name and the run configuration; writing is
/// skipped when cfg.report_path is empty. Corrupt trajectories follow
/// the warn-and-regenerate policy (DESIGN.md §7).
void append_bench_report(const BenchConfig& cfg, const std::string& bench_name,
                         Json payload);

// ----------------------------------------------------------------------
// Sweep cache
// ----------------------------------------------------------------------

/// Persistent map from measurement key to seconds. Keys embed everything
/// that affects the number: suite scale, matrix id, precision, candidate
/// id, thread count, and the iteration count.
class SweepCache {
 public:
  /// Cache file schema version; a mismatch (or any corruption) logs a
  /// one-line warning and falls back to re-measuring, same policy as
  /// MachineProfile::try_load.
  static constexpr int kSchemaVersion = 2;
  /// Reserved key the version is stored under (never a sweep_key: those
  /// always contain '/').
  static constexpr const char* kSchemaKey = "__schema_version";

  SweepCache(std::string path, bool disabled);
  ~SweepCache();  // saves on destruction (best effort)

  std::optional<double> get(const std::string& key) const;
  void put(const std::string& key, double seconds);
  void save();

 private:
  std::string path_;
  bool disabled_;
  bool dirty_ = false;
  std::map<std::string, double> entries_;
};

/// Canonical cache key for a single-threaded candidate measurement.
std::string sweep_key(const BenchConfig& cfg, int matrix_id, Precision prec,
                      const std::string& candidate_id, int threads = 1);

/// Measure (or load from cache) every candidate on one suite matrix.
/// Returns candidate id -> seconds per SpMV.
template <class V>
std::map<std::string, double> sweep_matrix(
    const Csr<V>& a, int matrix_id, const std::vector<Candidate>& candidates,
    const BenchConfig& cfg, SweepCache& cache);

/// Threaded variant (CSR/BCSR/BCSD/DEC candidates only): measures every
/// requested thread count per candidate with a single format conversion.
/// Returns threads -> (candidate id -> seconds).
template <class V>
std::map<int, std::map<std::string, double>> sweep_matrix_threaded(
    const Csr<V>& a, int matrix_id, const std::vector<Candidate>& candidates,
    const std::vector<int>& threads, const BenchConfig& cfg,
    SweepCache& cache);

// ----------------------------------------------------------------------
// Small output helpers
// ----------------------------------------------------------------------

/// Group per-candidate seconds by format kind, keeping the minimum (the
/// format's best block): the quantity Tables II/III and Fig. 2 rank.
std::map<FormatKind, double> best_per_format(
    const std::vector<Candidate>& candidates,
    const std::map<std::string, double>& seconds);

/// Print a horizontal rule of width n.
void print_rule(int n);

#define BSPMV_BENCH_DECL(V)                                                  \
  extern template std::map<std::string, double> sweep_matrix(               \
      const Csr<V>&, int, const std::vector<Candidate>&, const BenchConfig&, \
      SweepCache&);                                                          \
  extern template std::map<int, std::map<std::string, double>>            \
  sweep_matrix_threaded(const Csr<V>&, int, const std::vector<Candidate>&,  \
                        const std::vector<int>&, const BenchConfig&,        \
                        SweepCache&);
BSPMV_BENCH_DECL(float)
BSPMV_BENCH_DECL(double)
#undef BSPMV_BENCH_DECL

}  // namespace bspmv::bench
