// SpmvEngine: the prepare-once / run-many facade over candidate
// materialisation and execution.
//
// Conversion (and, for threaded execution, partition planning) happens
// once at construction; run() and measure() then execute y = A·x as many
// times as needed with zero per-call setup. The thread count selects the
// execution plan:
//
//   threads == 0   single-threaded AnyFormat kernel (any format)
//   threads >= 1   ThreadedSpmv partition plan with that many OpenMP
//                  threads — only for the formats the paper parallelises
//                  (§V-A: CSR/BCSR/BCSD and the decomposed variants);
//                  other formats throw invalid_argument_error.
//
// Note `threads == 1` still runs the threaded driver (one-thread plan),
// so single-thread baselines exercise the same code path and per-thread
// telemetry as the scaling points, exactly like the paper's Fig. 2.
//
// The measurement loops are instrumented: spans "measure/spmv" (plain
// plan) and "measure/threaded" (threaded plan), plus the per-thread
// "parallel/<fmt>" metrics recorded by ThreadedSpmv itself.
//
// Robustness rails (all opt-in, zero cost when unused): measure() honours
// MeasureOptions::control — a RunControl carrying a deadline and/or
// cooperative cancellation, enforced by a Watchdog plus iteration-edge
// and granule-boundary polls — and MeasureOptions::check_numerics, the
// NaN/Inf + output-fingerprint health guard. The guarded run() overload
// applies the same guards to a single y = A·x for service loops.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/executor.hpp"
#include "src/observe/observe.hpp"
#include "src/parallel/backend.hpp"
#include "src/util/numerics.hpp"
#include "src/util/prng.hpp"
#include "src/util/run_control.hpp"

namespace bspmv {

namespace detail {

template <class V>
aligned_vector<V> random_measure_vector(std::size_t n, std::uint64_t seed) {
  aligned_vector<V> v(n);
  Xoshiro256 rng(seed);
  for (auto& e : v) e = static_cast<V>(rng.uniform() - 0.5);
  return v;
}

/// The resilient repeated-batch measurement loop behind
/// SpmvEngine::measure, shared (as a template) with the fault-injection
/// tests so injected stalls and cancellations exercise the exact
/// production path. `run_once(x, y)` must compute y = A·x; the loop
/// replicates the paper's methodology (warmup, `reps` batches of
/// `iterations`, minimum per-iteration time reported) with the
/// RunControl/Watchdog and numeric-guard rails of MeasureOptions.
template <class V, class RunFn, class WarmFn>
double measure_guarded(index_t rows, index_t cols, const MeasureOptions& opt,
                       RunFn&& run_once, WarmFn&& warm_touch) {
  BSPMV_CHECK(opt.iterations > 0 && opt.reps > 0 && opt.warmup >= 0);
  auto x =
      random_measure_vector<V>(static_cast<std::size_t>(cols), opt.seed);
  aligned_vector<V> y(static_cast<std::size_t>(rows), V{0});
  // Placement hook: the task backend rewrites x and zero-fills y from
  // each task's home worker here, so first touch lands the measurement
  // buffers on the NUMA nodes that will stream them (no-op otherwise).
  warm_touch(x.data(), y.data());

  RunControl* rc = opt.control;
  // The watchdog enforces the deadline/stall budget even while workers
  // are inside a kernel; it spawns no thread when neither is configured.
  std::optional<Watchdog> watchdog;
  if (rc) watchdog.emplace(*rc);

  if (opt.check_numerics)
    check_finite("measure: input vector x", x.data(), x.size());

  auto once = [&] {
    if (rc) rc->check();  // iteration edge: deadline + typed throw
    run_once(x.data(), y.data());
    if (rc) {
      rc->heartbeat(0);
      rc->throw_if_aborted();  // an abort mid-run leaves y indeterminate
    }
  };

  // The fingerprint needs a completed reference output; guarantee one
  // warmup run when the guard is on.
  const int warmup =
      opt.check_numerics && opt.warmup == 0 ? 1 : opt.warmup;
  for (int i = 0; i < warmup; ++i) once();

  std::uint64_t ref_fp = 0;
  if (opt.check_numerics) {
    check_finite("measure: output vector y", y.data(), y.size());
    ref_fp = bits_fingerprint(y.data(), y.size());
    BSPMV_OBS_COUNT("guard.numeric_scans", 1);
  }

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < opt.reps; ++r) {
    Timer t;
    for (int i = 0; i < opt.iterations; ++i) once();
    best = std::min(best, t.elapsed() / opt.iterations);
    if (opt.check_numerics &&
        bits_fingerprint(y.data(), y.size()) != ref_fp) {
      BSPMV_OBS_COUNT("guard.fingerprint_failures", 1);
      throw numerical_error(
          "measure: output fingerprint changed between batches — "
          "nondeterministic kernel or memory corruption");
    }
  }
  do_not_optimize(y.data());
  return best;
}

/// measure_guarded without a placement hook — the signature the
/// fault-injection tests share with production.
template <class V, class RunFn>
double measure_guarded(index_t rows, index_t cols, const MeasureOptions& opt,
                       RunFn&& run_once) {
  return measure_guarded<V>(rows, cols, opt, std::forward<RunFn>(run_once),
                            [](V*, V*) {});
}

}  // namespace detail

template <class V>
class SpmvEngine {
 public:
  /// Fault-tolerant prepare: walk `ranked` through try_prepare (falling
  /// back to scalar CSR if every candidate fails), then build the plan.
  static SpmvEngine prepare(const Csr<V>& a,
                            const std::vector<Candidate>& ranked,
                            int threads = 0,
                            ExecBackend backend = ExecBackend::kBulk);

  /// Single-candidate prepare; conversion failures throw.
  static SpmvEngine prepare(const Csr<V>& a, const Candidate& c,
                            int threads = 0,
                            ExecBackend backend = ExecBackend::kBulk);

  /// Non-owning engine over an already-materialised format; `f` must
  /// outlive the engine.
  static SpmvEngine borrow(const AnyFormat<V>& f, int threads = 0,
                           ExecBackend backend = ExecBackend::kBulk);

  const AnyFormat<V>& format() const { return *fmt_; }
  /// The prepare audit trail (fallback flag + skipped candidates), or
  /// nullptr for borrow() / single-candidate engines.
  const PreparedExecutor<V>* prepared() const { return owned_.get(); }
  int threads() const { return threads_; }
  ExecBackend backend() const { return backend_; }

  /// Swap to a new thread count, reusing the already-converted format
  /// (conversion dominates a thread-scaling sweep; Fig. 2). Replans the
  /// current backend — a task-graph engine re-decomposes for the new
  /// worker count.
  void set_threads(int threads);

  /// Swap execution backend (bulk-synchronous OpenMP vs task graph) on
  /// the already-converted format. Same strong guarantee as
  /// set_threads: on failure the engine keeps its previous plan.
  void set_backend(ExecBackend backend);

  /// y = A·x through the current plan.
  void run(const V* x, V* y) const;

  /// Guarded y = A·x for service loops: optionally scans x before and y
  /// after for NaN/Inf (numerical_error), and honours a RunControl —
  /// threaded plans poll its stop flag at granule boundaries, and the
  /// control's typed error is thrown after the run if it aborted. Either
  /// rail may be off (control == nullptr / check_numerics == false).
  void run(const V* x, V* y, RunControl* control,
           bool check_numerics = false) const;

  /// Y = A·X for k right-hand sides through the current plan (X cols×k,
  /// Y rows×k, laid out per `layout` — src/kernels/layout.hpp). The
  /// matrix is streamed once across all k vectors in row-major layout;
  /// k == 1 is exactly run(). See docs/spmm.md.
  void run_multi(const V* X, V* Y, int k, Layout layout) const;

  /// Guarded run_multi with the same RunControl / NaN-Inf rails as the
  /// guarded run() overload.
  void run_multi(const V* X, V* Y, int k, Layout layout,
                 RunControl* control, bool check_numerics = false) const;

  /// Asynchronous y = A·x. On a task-graph plan this returns
  /// immediately and `done` fires on a pool worker when the last pass
  /// completes (StarPU-style completion callback); on a bulk or plain
  /// plan the run executes inline and `done` fires before the call
  /// returns. `done` receives the first failure (including the
  /// control's typed abort error) or nullptr; x, y and the control must
  /// outlive the completion.
  void run_async(const V* x, V* y, RunControl* control,
                 std::function<void(std::exception_ptr)> done) const;

  /// True when run_async actually overlaps with the caller (task-graph
  /// plan); callers that need real overlap can pre-check.
  bool async_capable() const;

  /// First-touch placement of caller-owned x/y buffers through the
  /// current plan (no-op for plain and bulk plans, where OpenMP's own
  /// first touch in run() already decides placement). Either pointer
  /// may be null.
  void warm_up(V* x, V* y) const;

  /// Seconds per SpMV the way the paper measures it: repeated consecutive
  /// operations on a random input vector, minimum over reps. Honours
  /// opt.control and opt.check_numerics (see MeasureOptions).
  double measure(const MeasureOptions& opt = {}) const;

  /// Seconds per SpMM (one multiply of all k vectors), same methodology
  /// as measure(). Divide by k for the effective per-vector time the
  /// crossover analysis compares against measure().
  double measure_multi(int k, Layout layout,
                       const MeasureOptions& opt = {}) const;

 private:
  SpmvEngine() = default;
  void build_plan();

  /// Type-erased threaded execution plan (one ThreadedSpmv<F> or
  /// TaskGraphSpmv<F> behind virtuals); absent when threads_ == 0.
  struct Plan {
    virtual ~Plan() = default;
    virtual void run(const V* x, V* y, Impl impl,
                     RunControl* control) const = 0;
    virtual void run_multi(const V* X, V* Y, int k, Layout layout,
                           Impl impl, RunControl* control) const = 0;
    /// Default: run synchronously, then fire `done` inline.
    virtual void run_async(const V* x, V* y, Impl impl, RunControl* control,
                           std::function<void(std::exception_ptr)> done) const;
    /// Default: no-op (bulk OpenMP places pages in run() itself).
    virtual void warm_up(V* x, V* y) const;
    virtual bool async_capable() const { return false; }
  };
  template <class F>
  struct TypedPlan;
  template <class F>
  struct TaskPlan;

  std::unique_ptr<PreparedExecutor<V>> owned_;  ///< null when borrowing
  const AnyFormat<V>* fmt_ = nullptr;
  std::unique_ptr<Plan> plan_;
  int threads_ = 0;
  ExecBackend backend_ = ExecBackend::kBulk;
};

extern template class SpmvEngine<float>;
extern template class SpmvEngine<double>;

}  // namespace bspmv
