#include "src/parallel/parallel_spmv.hpp"

#include <omp.h>

#include <algorithm>

#include "src/kernels/bcsd_kernels.hpp"
#include "src/kernels/bcsr_kernels.hpp"
#include "src/kernels/csr_kernels.hpp"
#include "src/observe/observe.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

namespace {
int checked_threads(int threads) {
  BSPMV_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  return threads;
}
}  // namespace

// ---------------------------------------------------------------- CSR ----

template <class V>
ThreadedCsrSpmv<V>::ThreadedCsrSpmv(const Csr<V>& a, int threads)
    : a_(&a), threads_(checked_threads(threads)) {
  const auto w = row_weights(a);
  bounds_ = balanced_partition(w, threads_);
  part_weights_ = part_weight_sums(w, bounds_);
}

template <class V>
void ThreadedCsrSpmv<V>::run(const V* x, V* y, Impl impl) const {
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    const index_t r0 = bounds_[static_cast<std::size_t>(tid)];
    const index_t r1 = bounds_[static_cast<std::size_t>(tid) + 1];
    std::fill(y + r0, y + r1, V{0});
    if (impl == Impl::kSimd)
      csr_spmv_simd(*a_, r0, r1, x, y);
    else
      csr_spmv_scalar(*a_, r0, r1, x, y);
    BSPMV_OBS_THREAD_RECORD("parallel/csr", tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
  }
}

// --------------------------------------------------------------- BCSR ----

template <class V>
ThreadedBcsrSpmv<V>::ThreadedBcsrSpmv(const Bcsr<V>& a, int threads)
    : a_(&a), threads_(checked_threads(threads)) {
  const auto w = block_row_weights(a);
  bounds_ = balanced_partition(w, threads_);
  part_weights_ = part_weight_sums(w, bounds_);
}

template <class V>
void ThreadedBcsrSpmv<V>::run(const V* x, V* y, Impl impl) const {
  const auto fn = bcsr_kernel<V>(a_->shape(), impl == Impl::kSimd);
  const index_t r = a_->shape().r;
  const index_t n = a_->rows();
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    const index_t br0 = bounds_[static_cast<std::size_t>(tid)];
    const index_t br1 = bounds_[static_cast<std::size_t>(tid) + 1];
    std::fill(y + std::min(n, br0 * r), y + std::min(n, br1 * r), V{0});
    fn(*a_, br0, br1, x, y);
    BSPMV_OBS_THREAD_RECORD("parallel/bcsr", tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
  }
}

// --------------------------------------------------------------- BCSD ----

template <class V>
ThreadedBcsdSpmv<V>::ThreadedBcsdSpmv(const Bcsd<V>& a, int threads)
    : a_(&a), threads_(checked_threads(threads)) {
  const auto w = segment_weights(a);
  bounds_ = balanced_partition(w, threads_);
  part_weights_ = part_weight_sums(w, bounds_);
}

template <class V>
void ThreadedBcsdSpmv<V>::run(const V* x, V* y, Impl impl) const {
  const auto fn = bcsd_kernel<V>(a_->b(), impl == Impl::kSimd);
  const index_t b = a_->b();
  const index_t n = a_->rows();
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    const index_t s0 = bounds_[static_cast<std::size_t>(tid)];
    const index_t s1 = bounds_[static_cast<std::size_t>(tid) + 1];
    std::fill(y + std::min(n, s0 * b), y + std::min(n, s1 * b), V{0});
    fn(*a_, s0, s1, x, y);
    BSPMV_OBS_THREAD_RECORD("parallel/bcsd", tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
  }
}

// ----------------------------------------------------------- BCSR-DEC ----

template <class V>
ThreadedBcsrDecSpmv<V>::ThreadedBcsrDecSpmv(const BcsrDec<V>& a, int threads)
    : a_(&a), threads_(checked_threads(threads)) {
  const auto bw = block_row_weights(a.blocked());
  const auto rw = row_weights(a.remainder());
  blocked_bounds_ = balanced_partition(bw, threads_);
  rem_bounds_ = balanced_partition(rw, threads_);
  part_weights_ = part_weight_sums(bw, blocked_bounds_);
  const auto rem_sums = part_weight_sums(rw, rem_bounds_);
  for (std::size_t p = 0; p < part_weights_.size(); ++p)
    part_weights_[p] += rem_sums[p];
}

template <class V>
void ThreadedBcsrDecSpmv<V>::run(const V* x, V* y, Impl impl) const {
  const auto fn = bcsr_kernel<V>(a_->blocked().shape(), impl == Impl::kSimd);
  const index_t r = a_->blocked().shape().r;
  const index_t n = a_->rows();
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    // Pass 1: blocked submatrix (also zeroes this thread's y rows).
    const index_t br0 = blocked_bounds_[static_cast<std::size_t>(tid)];
    const index_t br1 = blocked_bounds_[static_cast<std::size_t>(tid) + 1];
    std::fill(y + std::min(n, br0 * r), y + std::min(n, br1 * r), V{0});
    fn(a_->blocked(), br0, br1, x, y);
    // The remainder pass uses a different row partition, so wait until all
    // blocked contributions have landed before accumulating into y.
#pragma omp barrier
    const index_t r0 = rem_bounds_[static_cast<std::size_t>(tid)];
    const index_t r1 = rem_bounds_[static_cast<std::size_t>(tid) + 1];
    if (impl == Impl::kSimd)
      csr_spmv_simd(a_->remainder(), r0, r1, x, y);
    else
      csr_spmv_scalar(a_->remainder(), r0, r1, x, y);
    BSPMV_OBS_THREAD_RECORD("parallel/bcsr_dec", tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
  }
}

// ----------------------------------------------------------- BCSD-DEC ----

template <class V>
ThreadedBcsdDecSpmv<V>::ThreadedBcsdDecSpmv(const BcsdDec<V>& a, int threads)
    : a_(&a), threads_(checked_threads(threads)) {
  const auto bw = segment_weights(a.blocked());
  const auto rw = row_weights(a.remainder());
  blocked_bounds_ = balanced_partition(bw, threads_);
  rem_bounds_ = balanced_partition(rw, threads_);
  part_weights_ = part_weight_sums(bw, blocked_bounds_);
  const auto rem_sums = part_weight_sums(rw, rem_bounds_);
  for (std::size_t p = 0; p < part_weights_.size(); ++p)
    part_weights_[p] += rem_sums[p];
}

template <class V>
void ThreadedBcsdDecSpmv<V>::run(const V* x, V* y, Impl impl) const {
  const auto fn = bcsd_kernel<V>(a_->blocked().b(), impl == Impl::kSimd);
  const index_t b = a_->blocked().b();
  const index_t n = a_->rows();
#pragma omp parallel num_threads(threads_)
  {
    const int tid = omp_get_thread_num();
    BSPMV_OBS_THREAD_TIMER(obs_timer);
    const index_t s0 = blocked_bounds_[static_cast<std::size_t>(tid)];
    const index_t s1 = blocked_bounds_[static_cast<std::size_t>(tid) + 1];
    std::fill(y + std::min(n, s0 * b), y + std::min(n, s1 * b), V{0});
    fn(a_->blocked(), s0, s1, x, y);
#pragma omp barrier
    const index_t r0 = rem_bounds_[static_cast<std::size_t>(tid)];
    const index_t r1 = rem_bounds_[static_cast<std::size_t>(tid) + 1];
    if (impl == Impl::kSimd)
      csr_spmv_simd(a_->remainder(), r0, r1, x, y);
    else
      csr_spmv_scalar(a_->remainder(), r0, r1, x, y);
    BSPMV_OBS_THREAD_RECORD("parallel/bcsd_dec", tid, obs_timer,
                            part_weights_[static_cast<std::size_t>(tid)]);
  }
}

#define BSPMV_INST(V)                    \
  template class ThreadedCsrSpmv<V>;     \
  template class ThreadedBcsrSpmv<V>;    \
  template class ThreadedBcsdSpmv<V>;    \
  template class ThreadedBcsrDecSpmv<V>; \
  template class ThreadedBcsdDecSpmv<V>;
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
