#include "src/kernels/bcsd_kernels.hpp"

#include <algorithm>
#include <array>

#include "src/formats/block_shapes.hpp"
#include "src/kernels/simd.hpp"

namespace bspmv {
namespace detail {

template <class V, int B, bool Simd>
void bcsd_spmv_range(const Bcsd<V>& a, index_t seg0, index_t seg1,
                     const V* BSPMV_RESTRICT x, V* BSPMV_RESTRICT y) {
  BSPMV_DBG_ASSERT(a.b() == B);
  BSPMV_DBG_ASSERT(seg0 >= 0 && seg1 <= a.segments() && seg0 <= seg1);
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const index_t* BSPMV_RESTRICT nfull = a.full_diags().data();
  const V* BSPMV_RESTRICT bval = a.bval().data();
  const index_t n = a.rows();
  const index_t m = a.cols();
  constexpr int w = simd_width<V>;

  for (index_t s = seg0; s < seg1; ++s) {
    const index_t base = s * B;
    const index_t d0 = brow_ptr[s];
    const index_t d1 = brow_ptr[s + 1];
    const index_t dfull = d0 + nfull[s];

    if (dfull > d0) {
      // Fast path: every diagonal here spans rows [base, base+B) and
      // columns [j0, j0+B) entirely inside the matrix.
      V sum[B] = {};
      for (index_t d = d0; d < dfull; ++d) {
        const V* bv = bval + static_cast<std::size_t>(d) * B;
        const V* xp = x + bcol_ind[d];
        if constexpr (Simd && B % w == 0) {
          for (int k = 0; k < B; k += w) {
            simd_t<V> acc = simd_loadu(sum + k);
            acc += simd_loadu(bv + k) * simd_loadu(xp + k);
            simd_storeu(sum + k, acc);
          }
        } else {
          for (int k = 0; k < B; ++k) sum[k] += bv[k] * xp[k];
        }
      }
      for (int k = 0; k < B; ++k) y[base + k] += sum[k];
    }

    // Boundary diagonals: clamp the element range to the matrix.
    for (index_t d = dfull; d < d1; ++d) {
      const V* bv = bval + static_cast<std::size_t>(d) * B;
      const long long j0 = bcol_ind[d];
      const int kmin = static_cast<int>(std::max<long long>(0, -j0));
      const int kmax = static_cast<int>(std::min<long long>(
          {B, static_cast<long long>(n) - base,
           static_cast<long long>(m) - j0}));
      for (int k = kmin; k < kmax; ++k)
        y[base + k] += bv[k] * x[j0 + k];
    }
  }
}

template <class V, bool Simd>
struct BcsdTable {
  std::array<BcsdKernelFn<V>, kMaxBlockElems> fn{};

  constexpr BcsdTable() { fill<1>(); }

 private:
  template <int B>
  constexpr void fill() {
    fn[B - 1] = &bcsd_spmv_range<V, B, Simd>;
    if constexpr (B < kMaxBlockElems) fill<B + 1>();
  }
};

}  // namespace detail

template <class V>
BcsdKernelFn<V> bcsd_kernel(int b, bool simd) {
  static constexpr detail::BcsdTable<V, false> kScalar{};
  static constexpr detail::BcsdTable<V, true> kSimd{};
  BSPMV_CHECK_MSG(b >= 1 && b <= kMaxBlockElems,
                  "unsupported BCSD block length " + std::to_string(b));
  return (simd ? kSimd.fn : kScalar.fn)[static_cast<std::size_t>(b - 1)];
}

template BcsdKernelFn<float> bcsd_kernel<float>(int, bool);
template BcsdKernelFn<double> bcsd_kernel<double>(int, bool);

}  // namespace bspmv
