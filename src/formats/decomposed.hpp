// Decomposed blocking storage — §II-B "Decomposed matrices".
//
// The input matrix is split into k = 2 submatrices: the first holds only
// *completely full* fixed-size blocks (so no padding is ever stored) and
// the second holds the remainder elements in standard CSR. BCSR-DEC uses
// aligned r×c rectangular blocks, BCSD-DEC aligned length-b diagonal
// blocks — the same alignment rules as their padded counterparts.
#pragma once

#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/csr.hpp"

namespace bspmv {

/// BCSR-DEC: full aligned r×c blocks + CSR remainder.
template <class V>
class BcsrDec {
 public:
  BcsrDec() = default;

  static BcsrDec from_csr(const Csr<V>& a, BlockShape shape);

  index_t rows() const { return blocked_.rows(); }
  index_t cols() const { return blocked_.cols(); }
  BlockShape shape() const { return blocked_.shape(); }
  const Bcsr<V>& blocked() const { return blocked_; }
  const Csr<V>& remainder() const { return remainder_; }
  std::size_t nnz() const { return blocked_.nnz() + remainder_.nnz(); }

  /// Working set of both submatrices; the x vector is counted once (the
  /// two passes stream the matrix arrays but share the input vector).
  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  Bcsr<V> blocked_;
  Csr<V> remainder_;
};

/// BCSD-DEC: full aligned diagonal blocks + CSR remainder.
template <class V>
class BcsdDec {
 public:
  BcsdDec() = default;

  static BcsdDec from_csr(const Csr<V>& a, int b);

  index_t rows() const { return blocked_.rows(); }
  index_t cols() const { return blocked_.cols(); }
  int b() const { return blocked_.b(); }
  const Bcsd<V>& blocked() const { return blocked_; }
  const Csr<V>& remainder() const { return remainder_; }
  std::size_t nnz() const { return blocked_.nnz() + remainder_.nnz(); }

  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  Bcsd<V> blocked_;
  Csr<V> remainder_;
};

extern template class BcsrDec<float>;
extern template class BcsrDec<double>;
extern template class BcsdDec<float>;
extern template class BcsdDec<double>;

}  // namespace bspmv
