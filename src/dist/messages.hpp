// Typed payloads of the distributed rank protocol (MsgType kShard …
// kHalo), encoded with the same bounds-checked WireWriter/WireReader
// codec the serving daemon uses. Every decode() validates counts against
// the payload size before allocating, so a torn or hostile frame
// surfaces as bspmv::parse_error, never as an out-of-bounds read
// (fuzzed in tests/test_dist.cpp with frame_corruptions).
//
// Message flow (docs/distribution.md):
//
//   driver -> rank : kShard    ShardMsg     once, after fork
//   rank -> driver : kShardOk  (empty)      shard decoded, rank ready
//   driver -> rank : kDistRun  RunMsg       per run() call
//   rank <-> rank  : kHalo     HaloMsg      per iteration per peer
//   rank -> driver : kDistDone DoneMsg      y slice + phase timings
//   driver -> rank : kShutdown/kShutdownOk  graceful stop (reused)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/models.hpp"
#include "src/formats/csr.hpp"

namespace bspmv::dist {

/// kShard: one rank's slice of the plan. The matrix rows travel as a
/// plain CSR slice with *global* column ids; the rank rebuilds the
/// local/halo column split itself (HaloDec::split), which keeps the
/// message format independent of the split representation.
struct ShardMsg {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  std::uint32_t threads = 1;  ///< TaskPool workers for the local pass
  index_t row_begin = 0, row_end = 0;
  index_t x_begin = 0, x_end = 0;
  index_t cols = 0;                       ///< global matrix width
  std::vector<index_t> halo_seg;          ///< ranks+1 halo segment offsets
  std::vector<std::vector<index_t>> send_cols;  ///< per peer, owned-x offsets
  std::vector<index_t> row_ptr;           ///< rows()+1, rebased to 0
  std::vector<index_t> col_ind;           ///< global column ids
  std::vector<double> val;

  index_t rows() const { return row_end - row_begin; }

  std::string encode() const;
  static ShardMsg decode(std::string_view payload);
};

/// kDistRun: one multi-iteration y = A·x request.
struct RunMsg {
  DistMode mode = DistMode::kOverlap;
  std::uint8_t impl = 0;  ///< 0 scalar, 1 simd
  std::uint32_t iterations = 1;
  std::vector<double> x;  ///< the rank's owned x slice

  std::string encode() const;
  static RunMsg decode(std::string_view payload);
};

/// Per-rank phase timings of one kDistRun, totalled over its iterations.
/// send/recv seconds are summed across the per-peer exchange threads;
/// wait_seconds is how long the main thread blocked on the exchange
/// after its compute finished — the overlap claim is precisely that
/// overlap mode shrinks wait (comm hidden under local compute) while
/// naive mode pays it all up front.
struct RankStats {
  std::uint32_t iterations = 0;
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double wait_seconds = 0.0;
  double local_seconds = 0.0;
  double halo_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
};

/// kDistDone: the rank's y slice plus its RankStats.
struct DoneMsg {
  std::vector<double> y;
  RankStats stats;

  std::string encode() const;
  static DoneMsg decode(std::string_view payload);
};

/// kHalo: one iteration's halo x values from one peer. The (from, iter)
/// header catches crossed wires (a frame from the wrong peer or a stale
/// iteration is a typed parse_error, not silent corruption).
struct HaloMsg {
  std::uint32_t from = 0;
  std::uint32_t iter = 0;
  std::vector<double> x;

  std::string encode() const;
  static HaloMsg decode(std::string_view payload);
};

}  // namespace bspmv::dist
