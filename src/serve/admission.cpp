#include "src/serve/admission.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/observe/observe.hpp"

namespace bspmv::serve {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

// Shed callbacks are always invoked *after* mu_ is released — they write
// to sockets, and holding the queue lock across a socket write would
// stall every other producer.
bool AdmissionQueue::push(Job j) {
  std::function<void(const std::string&)> shed_cb;
  std::string shed_why;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      shed_cb = std::move(j.shed);
      shed_why = "server shutting down";
      ++shed_;
      BSPMV_OBS_COUNT("serve.shed", 1);
    } else if (items_.size() < capacity_) {
      items_.insert(Item{std::move(j), next_seq_++});
      admitted = true;
    } else {
      // Full. The set is ordered best-first, so the worst queued job is
      // the last element; shed whichever of {it, the incoming job} ranks
      // lower. An incoming job only displaces strictly lower priority —
      // ties favour the work already queued (no churn under a uniform
      // flood).
      auto worst = std::prev(items_.end());
      if (j.priority > worst->job.priority) {
        Item displaced = std::move(const_cast<Item&>(*worst));
        items_.erase(worst);
        shed_cb = std::move(displaced.job.shed);
        shed_why = "queue full: displaced by higher-priority work";
        ++shed_;
        BSPMV_OBS_COUNT("serve.shed", 1);
        items_.insert(Item{std::move(j), next_seq_++});
        admitted = true;
      } else {
        shed_cb = std::move(j.shed);
        shed_why = "queue full";
        ++shed_;
        BSPMV_OBS_COUNT("serve.shed", 1);
      }
    }
  }
  if (admitted) cv_.notify_one();
  if (shed_cb) shed_cb(shed_why);
  return admitted;
}

std::optional<Job> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return std::nullopt;
    const double now = steady_seconds();
    double nearest = 0.0;
    bool have_deferred = false;
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->job.not_before <= now) {
        Job j = std::move(const_cast<Item&>(*it).job);
        items_.erase(it);
        return j;
      }
      if (!have_deferred || it->job.not_before < nearest)
        nearest = it->job.not_before;
      have_deferred = true;
    }
    if (have_deferred) {
      cv_.wait_for(lock, std::chrono::duration<double>(
                             std::max(nearest - now, 1e-4)));
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionQueue::shutdown() {
  std::vector<std::function<void(const std::string&)>> to_shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      auto& item = const_cast<Item&>(*it);
      if (item.job.shed) to_shed.push_back(std::move(item.job.shed));
      ++shed_;
      BSPMV_OBS_COUNT("serve.shed", 1);
    }
    items_.clear();
  }
  cv_.notify_all();
  for (auto& cb : to_shed) cb("server shutting down");
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::uint64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace bspmv::serve
