// Task-graph backend tests (docs/tasking.md): the Chase-Lev deque, NUMA
// topology mapping, the TaskPool scheduler, and TaskGraphSpmv's bitwise
// parity with the serial kernels under adversarial skew.
//
// Deliberately OpenMP-region-free: the CI steal-stress job runs this
// binary under ThreadSanitizer (scripts/run_tsan.sh), which cannot model
// libgomp's barriers — every thread here is a std::thread, so TSan
// verifies the stealing paths for real.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "src/formats/registry.hpp"
#include "src/kernels/spmv.hpp"
#include "src/parallel/backend.hpp"
#include "src/parallel/task_graph.hpp"
#include "src/parallel/topology.hpp"
#include "src/parallel/work_queue.hpp"
#include "src/util/run_control.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_x;

// ------------------------------------------------------ ExecBackend ----

TEST(Backend, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_backend("bulk"), ExecBackend::kBulk);
  EXPECT_EQ(parse_backend("tasks"), ExecBackend::kTasks);
  EXPECT_STREQ(backend_name(ExecBackend::kBulk), "bulk");
  EXPECT_STREQ(backend_name(ExecBackend::kTasks), "tasks");
  EXPECT_THROW(parse_backend("bogus"), invalid_argument_error);
  EXPECT_THROW(parse_backend(""), invalid_argument_error);
}

// -------------------------------------------------------- WorkQueue ----

TEST(WorkQueue, OwnerPopsLifoThiefStealsFifo) {
  WorkStealingDeque q;
  int items[6];
  for (int i = 0; i < 6; ++i) q.push(&items[i]);
  EXPECT_EQ(q.size_estimate(), 6u);
  // Thief end is FIFO: the oldest item first.
  EXPECT_EQ(q.steal(), &items[0]);
  EXPECT_EQ(q.steal(), &items[1]);
  // Owner end is LIFO: the newest remaining item first.
  EXPECT_EQ(q.pop(), &items[5]);
  EXPECT_EQ(q.pop(), &items[4]);
  EXPECT_EQ(q.steal(), &items[2]);
  EXPECT_EQ(q.pop(), &items[3]);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.steal(), nullptr);
}

TEST(WorkQueue, GrowsPastInitialCapacity) {
  WorkStealingDeque q(4);  // forces several grow() cycles
  const std::size_t n = 1000;
  std::vector<int> items(n);
  for (auto& it : items) q.push(&it);
  EXPECT_GE(q.max_depth(), n);
  std::size_t seen = 0;
  while (q.pop() != nullptr) ++seen;
  EXPECT_EQ(seen, n);
}

TEST(WorkQueue, StressEveryItemTakenExactlyOnce) {
  // One owner interleaves pushes and pops while thieves hammer steal();
  // every item must be taken exactly once across all threads. Run under
  // TSan this exercises the Dekker-style pop/steal race directly.
  constexpr std::size_t kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque q(8);
  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};

  auto take = [&](void* p) {
    auto* cell = static_cast<std::atomic<int>*>(p);
    cell->fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (void* p = q.steal()) take(p);
      }
      while (void* p = q.steal()) take(p);
    });

  for (std::size_t i = 0; i < kItems; ++i) {
    q.push(&taken[i]);
    if (i % 3 == 0) {
      if (void* p = q.pop()) take(p);
    }
  }
  while (void* p = q.pop()) take(p);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (std::size_t i = 0; i < kItems; ++i)
    ASSERT_EQ(taken[i].load(std::memory_order_relaxed), 1)
        << "item " << i << " taken wrong number of times";
}

// --------------------------------------------------------- Topology ----

TEST(Topology, ParseCpulist) {
  const std::vector<int> expect = {0, 1, 2, 3, 8, 10, 11};
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"), expect);
  EXPECT_TRUE(parse_cpulist("").empty());
  // Malformed chunks are skipped, valid ones kept, duplicates folded.
  const auto partial = parse_cpulist("junk,5,5,2-4");
  const std::vector<int> expect2 = {2, 3, 4, 5};
  EXPECT_EQ(partial, expect2);
}

TEST(Topology, ClusteredShape) {
  const Topology t = Topology::clustered(10, 4);
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_EQ(t.nodes[0].cpus.size(), 4u);
  EXPECT_EQ(t.nodes[1].cpus.size(), 4u);
  EXPECT_EQ(t.nodes[2].cpus.size(), 2u);
  EXPECT_EQ(t.total_cpus, 10);
  EXPECT_FALSE(t.numa_detected);
}

TEST(Topology, NodeOfWorkerIsMonotoneAndInRange) {
  const Topology t = Topology::clustered(16, 4);
  for (int workers : {1, 2, 5, 16, 40}) {
    int prev = 0;
    for (int w = 0; w < workers; ++w) {
      const int n = t.node_of_worker(w, workers);
      ASSERT_GE(n, 0);
      ASSERT_LT(n, static_cast<int>(t.nodes.size()));
      ASSERT_GE(n, prev) << "workers " << workers << " worker " << w;
      prev = n;
    }
  }
}

TEST(Topology, DetectIsNeverEmpty) {
  const Topology t = Topology::detect();
  ASSERT_FALSE(t.nodes.empty());
  for (const auto& n : t.nodes) EXPECT_FALSE(n.cpus.empty());
  EXPECT_GE(t.total_cpus, 1);
}

// --------------------------------------------------------- TaskPool ----

TEST(TaskPool, RunExecutesEveryTaskExactlyOnce) {
  TaskPool pool(4, Topology::clustered(4, 2));
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  std::vector<int> home(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    home[i] = static_cast<int>(i % 4);
  pool.run(home, [&](std::size_t i, int wkr) {
    ASSERT_GE(wkr, 0);
    ASSERT_LT(wkr, 4);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "task " << i;
  const TaskPoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, kTasks);
  EXPECT_EQ(s.executed, kTasks);
  EXPECT_EQ(s.stolen + 0, s.stolen);  // stolen is workload-dependent
}

TEST(TaskPool, EmptyBatchCompletesInline) {
  TaskPool pool(2, Topology::clustered(2, 2));
  pool.run({}, [](std::size_t, int) { FAIL() << "no tasks to run"; });
  bool done_ran = false;
  pool.run_async(
      {}, [](std::size_t, int) {},
      [&](std::exception_ptr err) {
        EXPECT_EQ(err, nullptr);
        done_ran = true;  // inline: same thread, no sync needed
      });
  EXPECT_TRUE(done_ran);
}

TEST(TaskPool, RethrowsFirstTaskError) {
  TaskPool pool(3, Topology::clustered(3, 2));
  const std::vector<int> home = {0, 1, 2, 0, 1, 2};
  EXPECT_THROW(pool.run(home,
                        [&](std::size_t i, int) {
                          if (i == 4) throw numerical_error("poisoned task");
                        }),
               numerical_error);
  // The pool survives an erroring batch and runs the next one.
  std::atomic<int> ok{0};
  pool.run(home, [&](std::size_t, int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 6);
}

TEST(TaskPool, RunAsyncDeliversCompletionOffThread) {
  TaskPool pool(2, Topology::clustered(2, 2));
  std::vector<int> home(64);
  for (std::size_t i = 0; i < home.size(); ++i)
    home[i] = static_cast<int>(i % 2);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  std::exception_ptr got = std::make_exception_ptr(error("sentinel"));
  pool.run_async(
      home, [&](std::size_t, int) { ran.fetch_add(1); },
      [&](std::exception_ptr err) {
        std::lock_guard<std::mutex> lk(mu);
        got = err;
        completed = true;
        cv.notify_all();
      });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return completed; });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(got, nullptr);
}

TEST(TaskPool, SharedRegistryReturnsOnePoolPerWidth) {
  const auto a = TaskPool::shared(3);
  const auto b = TaskPool::shared(3);
  const auto c = TaskPool::shared(2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->workers(), 3);
  EXPECT_EQ(c->workers(), 2);
}

TEST(TaskPool, RejectsOutOfRangeHome) {
  TaskPool pool(2, Topology::clustered(2, 2));
  const std::vector<int> home = {0, 7};  // 7 >= workers
  EXPECT_ANY_THROW(pool.run(home, [](std::size_t, int) {}));
}

// ----------------------------------------------------- TaskGraphSpmv ----

/// Adversarially skewed matrix: one ultra-heavy dense row, a block of
/// empty rows, and a moderately sparse tail — the static partition can
/// not balance this, so the steal path must.
Coo<double> skewed_coo(index_t rows, index_t cols, std::uint64_t seed) {
  Coo<double> coo(rows, cols);
  Xoshiro256 rng(seed);
  for (index_t j = 0; j < cols; ++j)  // dense row 0
    coo.add(0, j, 0.5 + rng.uniform());
  // rows [1, rows/3): empty. Tail: ~6 nnz/row.
  for (index_t i = rows / 3; i < rows; ++i)
    for (int k = 0; k < 6; ++k)
      coo.add(i, static_cast<index_t>(rng.below(static_cast<std::uint64_t>(
                     cols))),
              0.1 + rng.uniform());
  return coo;
}

/// One representative candidate per parallel format kind (block shape /
/// diagonal length chosen to exercise padding).
Candidate parity_candidate(FormatKind kind) {
  switch (kind) {
    case FormatKind::kBcsr:
    case FormatKind::kBcsrDec:
      return Candidate{kind, BlockShape{3, 2}, 0, Impl::kScalar};
    case FormatKind::kBcsd:
    case FormatKind::kBcsdDec:
      return Candidate{kind, BlockShape{1, 1}, 4, Impl::kScalar};
    default:
      return Candidate{kind, BlockShape{1, 1}, 0, Impl::kScalar};
  }
}

class TaskGraphParity : public ::testing::TestWithParam<int> {};

// Every parallel format in the registry, scalar + simd, bitwise against
// the serial kernels on a skewed matrix. Mirrors ThreadedParity in
// test_parallel.cpp but through the task backend (and OpenMP-free).
TEST_P(TaskGraphParity, RegistryFormatsMatchSerialBitwise) {
  const int threads = GetParam();
  const Coo<double> coo = skewed_coo(120, 96, 11);
  const Csr<double> a = Csr<double>::from_coo(coo);
  const auto x = random_x<double>(96, 5);
  const std::size_t n = 120;

  int parallel_formats = 0;
  for_each_format<double>([&](auto tag) {
    using F = typename decltype(tag)::type;
    using Ops = FormatOps<F>;
    if constexpr (Ops::kParallel) {
      ++parallel_formats;
      const Candidate c = parity_candidate(Ops::kKind);
      const F m = Ops::convert(a, c);
      const TaskGraphSpmv<F> driver(m, threads);
      for (Impl impl : {Impl::kScalar, Impl::kSimd}) {
        aligned_vector<double> ys(n, 0.0), yp(n, -1.0);
        spmv(m, x.data(), ys.data(), impl);
        driver.run(x.data(), yp.data(), impl);
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(yp[i], ys[i])
              << c.id() << " impl=" << impl_name(impl)
              << " threads=" << threads << " row " << i;
      }
    }
  });
  EXPECT_EQ(parallel_formats, 5);
}

INSTANTIATE_TEST_SUITE_P(Threads, TaskGraphParity,
                         ::testing::Values(1, 2, 4, 7));

TEST(TaskStress, SkewedSevenThreadRepeatedRuns) {
  // The CI steal-stress case: 7 workers × 30 back-to-back runs over a
  // skewed matrix keeps the deques contended; output must stay bitwise
  // stable across runs regardless of who stole what.
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(400, 300, 17));
  const auto x = random_x<double>(300, 23);
  aligned_vector<double> ys(400, 0.0);
  spmv(a, x.data(), ys.data());

  const TaskGraphSpmv<Csr<double>> driver(a, 7);
  aligned_vector<double> y(400);
  for (int rep = 0; rep < 30; ++rep) {
    std::fill(y.begin(), y.end(), -1.0);
    driver.run(x.data(), y.data());
    for (std::size_t i = 0; i < 400; ++i)
      ASSERT_EQ(y[i], ys[i]) << "rep " << rep << " row " << i;
  }
  const TaskPoolStats s = driver.pool().stats();
  EXPECT_GE(s.executed, 30u);  // shared pool: at least our tasks ran
}

TEST(TaskStress, ConcurrentDriversShareOnePool) {
  // Two driver objects over different matrices submit to the same shared
  // pool from two submitter threads at once — the serving daemon's
  // steady state. Both must stay bitwise correct.
  const Csr<double> a1 = Csr<double>::from_coo(skewed_coo(200, 150, 31));
  const Csr<double> a2 = Csr<double>::from_coo(
      random_blocky_coo<double>(180, 150, 3, 0.4, 0.8, 33));
  const auto x = random_x<double>(150, 3);
  aligned_vector<double> r1(200, 0.0), r2(180, 0.0);
  spmv(a1, x.data(), r1.data());
  spmv(a2, x.data(), r2.data());

  const TaskGraphSpmv<Csr<double>> d1(a1, 4), d2(a2, 4);
  EXPECT_EQ(&d1.pool(), &d2.pool());
  std::atomic<int> failures{0};
  auto hammer = [&](const TaskGraphSpmv<Csr<double>>& d,
                    const aligned_vector<double>& ref, std::size_t rows) {
    aligned_vector<double> y(rows);
    for (int rep = 0; rep < 20; ++rep) {
      std::fill(y.begin(), y.end(), -1.0);
      d.run(x.data(), y.data());
      for (std::size_t i = 0; i < rows; ++i)
        if (y[i] != ref[i]) failures.fetch_add(1);
    }
  };
  std::thread t1([&] { hammer(d1, r1, 200); });
  std::thread t2([&] { hammer(d2, r2, 180); });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TaskGraph, OverDecomposesAndSkipsEmptySlices) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(400, 100, 41));
  const TaskGraphSpmv<Csr<double>> d(a, 4);
  // ~kTasksPerThread tasks per worker, never more than one per granule.
  EXPECT_GT(d.task_count(0), 4u);
  EXPECT_LE(d.task_count(0), 4u * TaskGraphSpmv<Csr<double>>::kTasksPerThread);
}

TEST(TaskGraph, AsyncRunMatchesSyncBitwise) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(150, 120, 47));
  const auto x = random_x<double>(120, 9);
  const TaskGraphSpmv<Csr<double>> d(a, 3);
  aligned_vector<double> ysync(150, -1.0), yasync(150, -1.0);
  d.run(x.data(), ysync.data());

  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  std::exception_ptr got;
  d.run_async(x.data(), yasync.data(), Impl::kScalar, nullptr,
              [&](std::exception_ptr err) {
                std::lock_guard<std::mutex> lk(mu);
                got = err;
                completed = true;
                cv.notify_all();
              });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return completed; });
  EXPECT_EQ(got, nullptr);
  for (std::size_t i = 0; i < 150; ++i)
    ASSERT_EQ(yasync[i], ysync[i]) << "row " << i;
}

TEST(TaskGraph, MultiPassFormatAsyncChainsPasses) {
  // BcsrDec has two passes; the async path must chain them through the
  // completion callback with a real barrier in between.
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(96, 90, 3, 0.4, 0.9, 51));
  const BcsrDec<double> m = BcsrDec<double>::from_csr(a, BlockShape{3, 1});
  const auto x = random_x<double>(90, 13);
  aligned_vector<double> ys(96, 0.0), ya(96, -1.0);
  spmv(m, x.data(), ys.data());

  const TaskGraphSpmv<BcsrDec<double>> d(m, 4);
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  d.run_async(x.data(), ya.data(), Impl::kScalar, nullptr,
              [&](std::exception_ptr err) {
                EXPECT_EQ(err, nullptr);
                std::lock_guard<std::mutex> lk(mu);
                completed = true;
                cv.notify_all();
              });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return completed; });
  for (std::size_t i = 0; i < 96; ++i) ASSERT_EQ(ya[i], ys[i]) << i;
}

TEST(TaskGraph, RunMultiMatchesBulkBackendBitwise) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(130, 110, 57));
  const auto X = random_x<double>(110 * 3, 29);
  const TaskGraphSpmv<Csr<double>> d(a, 4);
  for (Layout layout : {Layout::kRowMajor, Layout::kColMajor}) {
    // Reference: serial run per extracted vector (identical per-row
    // accumulation order).
    aligned_vector<double> yref(130 * 3, 0.0), y(130 * 3, -1.0);
    for (int j = 0; j < 3; ++j) {
      aligned_vector<double> xj(110), yj(130, 0.0);
      for (index_t i = 0; i < 110; ++i)
        xj[static_cast<std::size_t>(i)] =
            layout == Layout::kRowMajor
                ? X[static_cast<std::size_t>(i) * 3 +
                    static_cast<std::size_t>(j)]
                : X[static_cast<std::size_t>(j) * 110 +
                    static_cast<std::size_t>(i)];
      spmv(a, xj.data(), yj.data());
      for (index_t i = 0; i < 130; ++i)
        yref[layout == Layout::kRowMajor
                 ? static_cast<std::size_t>(i) * 3 +
                       static_cast<std::size_t>(j)
                 : static_cast<std::size_t>(j) * 130 +
                       static_cast<std::size_t>(i)] =
            yj[static_cast<std::size_t>(i)];
    }
    d.run_multi(X.data(), y.data(), 3, layout);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(y[i], yref[i]) << "layout "
                               << (layout == Layout::kRowMajor ? "row" : "col")
                               << " elem " << i;
  }
}

TEST(TaskGraph, WarmUpZeroFillsYAndPreservesX) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(90, 80, 61));
  const TaskGraphSpmv<Csr<double>> d(a, 3);
  auto x = random_x<double>(80, 37);
  const aligned_vector<double> x_before = x;
  aligned_vector<double> y(90, -1.0);
  d.warm_up(x.data(), y.data());
  for (std::size_t j = 0; j < 80; ++j)
    ASSERT_EQ(x[j], x_before[j]) << "x changed at " << j;
  for (std::size_t i = 0; i < 90; ++i) ASSERT_EQ(y[i], 0.0) << "row " << i;
  // Null pointers skip the respective vector.
  d.warm_up(nullptr, nullptr);
}

TEST(TaskGraph, PreStoppedControlLeavesOutputUntouched) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(60, 50, 67));
  const auto x = random_x<double>(50, 41);
  const TaskGraphSpmv<Csr<double>> d(a, 2);
  RunControl control;
  control.request_cancel("test: cancelled before submit");
  aligned_vector<double> y(60, -7.0);
  d.run(x.data(), y.data(), Impl::kScalar, &control);
  for (std::size_t i = 0; i < 60; ++i)
    ASSERT_EQ(y[i], -7.0) << "cancelled run wrote row " << i;
  EXPECT_THROW(control.throw_if_aborted(), cancelled_error);
}

TEST(TaskGraph, RejectsMismatchedPoolWidth) {
  const Csr<double> a = Csr<double>::from_coo(skewed_coo(20, 20, 71));
  auto pool = TaskPool::shared(2);
  EXPECT_ANY_THROW((TaskGraphSpmv<Csr<double>>(a, 3, pool)));
}

}  // namespace
}  // namespace bspmv
