// Template bodies for the UBCSR block kernels; included by the per-type
// instantiation units. Structure mirrors the BCSR kernels, with the block
// column taken directly from bcol_ind (no ×c scaling) and the same
// clamped right-edge path.
#pragma once

#include <array>

#include "src/formats/block_shapes.hpp"
#include "src/kernels/block_madd.hpp"
#include "src/kernels/ubcsr_kernels.hpp"

namespace bspmv {
namespace detail {

template <class V, int R, int C, bool Simd>
void ubcsr_spmv_range(const Ubcsr<V>& a, index_t br0, index_t br1,
                      const V* BSPMV_RESTRICT x, V* BSPMV_RESTRICT y) {
  BSPMV_DBG_ASSERT(a.shape().r == R && a.shape().c == C);
  BSPMV_DBG_ASSERT(br0 >= 0 && br1 <= a.block_rows() && br0 <= br1);
  const index_t* BSPMV_RESTRICT brow_ptr = a.brow_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const V* BSPMV_RESTRICT bval = a.bval().data();
  const index_t n = a.rows();
  const index_t m = a.cols();

  for (index_t br = br0; br < br1; ++br) {
    V sum[R] = {};
    const index_t b1 = brow_ptr[br + 1];
    for (index_t blk = brow_ptr[br]; blk < b1; ++blk) {
      const V* bv = bval + static_cast<std::size_t>(blk) * (R * C);
      const index_t j0 = bcol_ind[blk];  // unaligned starting column
      if (j0 + C <= m) {
        if constexpr (Simd)
          block_madd_simd<V, R, C>(bv, x + j0, sum);
        else
          block_madd_scalar<V, R, C>(bv, x + j0, sum);
      } else {
        for (int r = 0; r < R; ++r)
          for (index_t cc = 0; j0 + cc < m; ++cc)
            sum[r] += bv[r * C + cc] * x[j0 + cc];
      }
    }
    const index_t row0 = br * R;
    if (row0 + R <= n) {
      for (int r = 0; r < R; ++r) y[row0 + r] += sum[r];
    } else {
      for (index_t r = 0; row0 + r < n; ++r) y[row0 + r] += sum[r];
    }
  }
}

template <class V, bool Simd>
struct UbcsrTable {
  std::array<std::array<UbcsrKernelFn<V>, kMaxBlockElems>, kMaxBlockElems>
      fn{};

  constexpr UbcsrTable() { fill_r<1>(); }

 private:
  template <int R>
  constexpr void fill_r() {
    fill_c<R, 1>();
    if constexpr (R < kMaxBlockElems) fill_r<R + 1>();
  }
  template <int R, int C>
  constexpr void fill_c() {
    if constexpr (R * C <= kMaxBlockElems)
      fn[R - 1][C - 1] = &ubcsr_spmv_range<V, R, C, Simd>;
    if constexpr (C < kMaxBlockElems) fill_c<R, C + 1>();
  }
};

}  // namespace detail

template <class V>
UbcsrKernelFn<V> ubcsr_kernel(BlockShape shape, bool simd) {
  static constexpr detail::UbcsrTable<V, false> kScalar{};
  static constexpr detail::UbcsrTable<V, true> kSimd{};
  BSPMV_CHECK_MSG(shape.r >= 1 && shape.r <= kMaxBlockElems &&
                      shape.c >= 1 && shape.c <= kMaxBlockElems &&
                      shape.elems() <= kMaxBlockElems,
                  "unsupported UBCSR block shape " + shape.to_string());
  auto fn = (simd ? kSimd.fn : kScalar.fn)[static_cast<std::size_t>(
      shape.r - 1)][static_cast<std::size_t>(shape.c - 1)];
  BSPMV_DBG_ASSERT(fn != nullptr);
  return fn;
}

}  // namespace bspmv
