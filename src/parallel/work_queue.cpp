#include "src/parallel/work_queue.hpp"

#include <algorithm>

#include "src/util/macros.hpp"

namespace bspmv {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

WorkStealingDeque::WorkStealingDeque(std::size_t capacity) {
  buffers_.push_back(std::make_unique<Buffer>(round_up_pow2(capacity)));
  buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
}

WorkStealingDeque::Buffer* WorkStealingDeque::grow(Buffer* old,
                                                   std::int64_t top,
                                                   std::int64_t bottom) {
  auto bigger = std::make_unique<Buffer>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i)
    bigger->cells[static_cast<std::size_t>(i) & bigger->mask].store(
        old->cells[static_cast<std::size_t>(i) & old->mask].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  Buffer* raw = bigger.get();
  buffers_.push_back(std::move(bigger));  // old buffer stays alive: a
                                          // thief may still be reading it
  buffer_.store(raw, std::memory_order_release);
  return raw;
}

void WorkStealingDeque::push(void* item) {
  BSPMV_CHECK_MSG(item != nullptr, "WorkStealingDeque: null item");
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<std::int64_t>(buf->capacity)) buf = grow(buf, t, b);
  buf->cells[static_cast<std::size_t>(b) & buf->mask].store(
      item, std::memory_order_relaxed);
  // The release store publishes the cell to any thief that acquires
  // `bottom_` at a value > b.
  bottom_.store(b + 1, std::memory_order_release);

  const auto depth = static_cast<std::size_t>(b + 1 - t);
  if (depth > max_depth_.load(std::memory_order_relaxed))
    max_depth_.store(depth, std::memory_order_relaxed);
}

void* WorkStealingDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  // Claim the bottom slot, then read top: the seq_cst pair with steal()'s
  // top/bottom loads guarantees at most one side wins the last element.
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  void* item = nullptr;
  if (t <= b) {
    item = buf->cells[static_cast<std::size_t>(b) & buf->mask].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        item = nullptr;  // a thief got there first
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty; undo
  }
  return item;
}

void* WorkStealingDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  void* item = buf->cells[static_cast<std::size_t>(t) & buf->mask].load(
      std::memory_order_relaxed);
  // The CAS validates the read: if the owner popped this element (or a
  // concurrent thief took it), top moved and the stale read is discarded.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;
  return item;
}

std::size_t WorkStealingDeque::size_estimate() const {
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

}  // namespace bspmv
