#include "src/formats/permute.hpp"

#include <algorithm>

#include "src/util/macros.hpp"

namespace bspmv {

bool is_permutation(const std::vector<index_t>& perm, index_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

template <class V>
Csr<V> permute_rows(const Csr<V>& a, const std::vector<index_t>& perm) {
  BSPMV_CHECK_MSG(is_permutation(perm, a.rows()),
                  "permute_rows: not a permutation of the row set");
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();

  aligned_vector<index_t> new_rp(row_ptr.size());
  aligned_vector<index_t> new_ci(col_ind.size());
  aligned_vector<V> new_val(val.size());
  new_rp[0] = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto old_row = static_cast<std::size_t>(perm[i]);
    for (index_t k = row_ptr[old_row]; k < row_ptr[old_row + 1]; ++k) {
      new_ci[out] = col_ind[static_cast<std::size_t>(k)];
      new_val[out] = val[static_cast<std::size_t>(k)];
      ++out;
    }
    new_rp[i + 1] = static_cast<index_t>(out);
  }
  return Csr<V>(a.rows(), a.cols(), std::move(new_rp), std::move(new_ci),
                std::move(new_val));
}

template <class V>
Csr<V> permute_cols(const Csr<V>& a, const std::vector<index_t>& colperm) {
  BSPMV_CHECK_MSG(is_permutation(colperm, a.cols()),
                  "permute_cols: not a permutation of the column set");
  const std::vector<index_t> inv = invert_permutation(colperm);

  Coo<V> coo(a.rows(), a.cols());
  coo.reserve(a.nnz());
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      coo.add(i, inv[static_cast<std::size_t>(col_ind[static_cast<std::size_t>(k)])],
              val[static_cast<std::size_t>(k)]);
  return Csr<V>::from_coo(std::move(coo));
}

template <class V>
Csr<V> permute_symmetric(const Csr<V>& a, const std::vector<index_t>& perm) {
  BSPMV_CHECK_MSG(a.rows() == a.cols(),
                  "permute_symmetric needs a square matrix");
  return permute_cols(permute_rows(a, perm), perm);
}

#define BSPMV_INST(V)                                                     \
  template Csr<V> permute_rows(const Csr<V>&, const std::vector<index_t>&); \
  template Csr<V> permute_cols(const Csr<V>&, const std::vector<index_t>&); \
  template Csr<V> permute_symmetric(const Csr<V>&,                        \
                                    const std::vector<index_t>&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
