// Model-driven selection of storage format, block and implementation —
// the "autotuner" built on §IV's models.
//
// Selection is instrumented (src/observe/observe.hpp): spans "select" /
// "select/rank" and the select.candidates_ranked counter record how
// much work each autotuning pass does (docs/observability.md).
#pragma once

#include <vector>

#include "src/core/executor.hpp"
#include "src/core/models.hpp"

namespace bspmv {

struct RankedCandidate {
  Candidate candidate;
  /// Predicted seconds per operation: one SpMV for k == 1 workloads, one
  /// whole SpMM multiply (all k vectors) otherwise.
  double predicted_seconds = 0.0;
};

/// The runtime workload a selection should optimise for. The default is
/// the classic single-vector SpMV; declaring k > 1 makes every entry
/// point below rank by predict_spmm for that batch width and layout
/// instead of predict — the best single-vector candidate is often not
/// the best k-vector one (docs/spmm.md crossover analysis).
struct Workload {
  int k = 1;
  Layout layout = Layout::kRowMajor;
};

/// Rank every model candidate for matrix `a` under `model`, fastest
/// predicted first (ties broken deterministically by candidate id).
///
/// Per §V-B, the MEM model cannot distinguish kernel implementations (it
/// ignores the computational part), so it ranks the non-simd candidates
/// only; MEMCOMP/OVERLAP/MEMLAT also pick between scalar and simd.
template <class V>
std::vector<RankedCandidate> rank_candidates(ModelKind model, const Csr<V>& a,
                                             const MachineProfile& profile);

/// Workload-aware ranking: like the overload above for workload.k == 1,
/// otherwise ranked by predicted seconds of one k-wide SpMM multiply.
template <class V>
std::vector<RankedCandidate> rank_candidates(ModelKind model, const Csr<V>& a,
                                             const MachineProfile& profile,
                                             const Workload& workload);

/// The model's selection: the top-ranked candidate.
template <class V>
RankedCandidate select_best(ModelKind model, const Csr<V>& a,
                            const MachineProfile& profile);

/// Workload-aware selection.
template <class V>
RankedCandidate select_best(ModelKind model, const Csr<V>& a,
                            const MachineProfile& profile,
                            const Workload& workload);

/// Fault-tolerant selection: rank with the model, then materialise the
/// best candidate that actually converts and validates, falling back to
/// scalar CSR when every candidate fails (resource-guard trips, padding
/// blowups, unsupported combinations). Always returns a correct,
/// runnable executor for a valid input matrix; the skipped candidates
/// and their failure reasons ride along for observability.
template <class V>
PreparedExecutor<V> select_and_prepare(ModelKind model, const Csr<V>& a,
                                       const MachineProfile& profile);

/// Workload-aware fault-tolerant selection.
template <class V>
PreparedExecutor<V> select_and_prepare(ModelKind model, const Csr<V>& a,
                                       const MachineProfile& profile,
                                       const Workload& workload);

#define BSPMV_DECL(V)                                                  \
  extern template std::vector<RankedCandidate> rank_candidates(        \
      ModelKind, const Csr<V>&, const MachineProfile&);                \
  extern template std::vector<RankedCandidate> rank_candidates(        \
      ModelKind, const Csr<V>&, const MachineProfile&, const Workload&); \
  extern template RankedCandidate select_best(ModelKind, const Csr<V>&, \
                                              const MachineProfile&);  \
  extern template RankedCandidate select_best(                         \
      ModelKind, const Csr<V>&, const MachineProfile&, const Workload&); \
  extern template PreparedExecutor<V> select_and_prepare(              \
      ModelKind, const Csr<V>&, const MachineProfile&);                \
  extern template PreparedExecutor<V> select_and_prepare(              \
      ModelKind, const Csr<V>&, const MachineProfile&, const Workload&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
