#include "src/kernels/vbl_kernels.hpp"

#include "src/kernels/simd.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

template <class V>
void vbl_spmv_scalar(const Vbl<V>& a, const V* BSPMV_RESTRICT x,
                     V* BSPMV_RESTRICT y) {
  const index_t* BSPMV_RESTRICT row_ptr = a.row_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const blk_size_t* BSPMV_RESTRICT blk_size = a.blk_size().data();
  const V* BSPMV_RESTRICT val = a.val().data();
  const index_t n = a.rows();

  std::size_t blk = 0;
  for (index_t i = 0; i < n; ++i) {
    V sum{0};
    index_t k = row_ptr[i];
    const index_t hi = row_ptr[i + 1];
    while (k < hi) {
      const V* BSPMV_RESTRICT xp = x + bcol_ind[blk];
      const int size = blk_size[blk];
      for (int t = 0; t < size; ++t) sum += val[k + t] * xp[t];
      k += size;
      ++blk;
    }
    y[i] += sum;
  }
  BSPMV_DBG_ASSERT(blk == a.blocks());
}

template <class V>
void vbl_spmv_simd(const Vbl<V>& a, const V* BSPMV_RESTRICT x,
                   V* BSPMV_RESTRICT y) {
  const index_t* BSPMV_RESTRICT row_ptr = a.row_ptr().data();
  const index_t* BSPMV_RESTRICT bcol_ind = a.bcol_ind().data();
  const blk_size_t* BSPMV_RESTRICT blk_size = a.blk_size().data();
  const V* BSPMV_RESTRICT val = a.val().data();
  const index_t n = a.rows();
  constexpr int w = simd_width<V>;

  std::size_t blk = 0;
  for (index_t i = 0; i < n; ++i) {
    V sum{0};
    index_t k = row_ptr[i];
    const index_t hi = row_ptr[i + 1];
    while (k < hi) {
      const V* BSPMV_RESTRICT xp = x + bcol_ind[blk];
      const int size = blk_size[blk];
      int t = 0;
      if (size >= w) {
        simd_t<V> acc = simd_zero<V>();
        for (; t + w <= size; t += w)
          acc += simd_loadu(val + k + t) * simd_loadu(xp + t);
        sum += simd_hsum<V>(acc);
      }
      for (; t < size; ++t) sum += val[k + t] * xp[t];
      k += size;
      ++blk;
    }
    y[i] += sum;
  }
  BSPMV_DBG_ASSERT(blk == a.blocks());
}

template void vbl_spmv_scalar(const Vbl<float>&, const float*, float*);
template void vbl_spmv_scalar(const Vbl<double>&, const double*, double*);
template void vbl_spmv_simd(const Vbl<float>&, const float*, float*);
template void vbl_spmv_simd(const Vbl<double>&, const double*, double*);

}  // namespace bspmv
