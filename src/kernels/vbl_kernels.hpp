// 1D-VBL SpMV kernels.
//
// Blocks are consumed sequentially while walking rows: a row's blocks end
// when the value cursor reaches row_ptr[i+1]. The paper found 1D-VBL
// uncompetitive and did not parallelise it; we follow suit and expose only
// whole-matrix kernels (still accumulating, for API uniformity).
#pragma once

#include "src/formats/vbl.hpp"

namespace bspmv {

/// y += A·x, scalar inner loop over each variable-length block.
template <class V>
void vbl_spmv_scalar(const Vbl<V>& a, const V* x, V* y);

/// y += A·x, SIMD over each block's contiguous val/x runs (this is where
/// 1D-VBL shines on long blocks, e.g. the dense matrix).
template <class V>
void vbl_spmv_simd(const Vbl<V>& a, const V* x, V* y);

extern template void vbl_spmv_scalar(const Vbl<float>&, const float*, float*);
extern template void vbl_spmv_scalar(const Vbl<double>&, const double*,
                                     double*);
extern template void vbl_spmv_simd(const Vbl<float>&, const float*, float*);
extern template void vbl_spmv_simd(const Vbl<double>&, const double*, double*);

}  // namespace bspmv
