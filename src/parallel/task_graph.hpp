// Task-graph execution backend (docs/tasking.md) — the second
// implementation of the Executor seam (src/parallel/backend.hpp).
//
// TaskPool is a persistent pool of std::thread workers, each owning a
// Chase-Lev deque (src/parallel/work_queue.hpp), grouped into NUMA nodes
// (src/parallel/topology.hpp). A batch of tasks is submitted with a home
// worker per task; each worker pushes its own home tasks into its own
// deque (Chase-Lev ownership), drains it LIFO, and when empty steals
// FIFO from randomized victims — node-local neighbours first, then the
// rest of the pool. Batches complete via an atomic countdown; the last
// finisher runs the completion callback (StarPU codelet/callback style),
// which is how multi-pass SpMV chains pass barriers asynchronously.
//
// TaskGraphSpmv<Format> mirrors ThreadedSpmv's interface over the same
// FormatOps pass protocol: the matrix is over-decomposed into
// ~kTasksPerThread block-partition tasks per worker per pass
// (nnz-balanced via balanced_partition, padding-aware), each task
// covering a contiguous granule range and therefore a contiguous row
// range. Rows are written by exactly one task with the serial per-row
// accumulation order, and consecutive passes are separated by a batch
// barrier — so output is bitwise identical to the serial kernels and the
// bulk-synchronous backend, no matter how tasks are stolen.
//
// The pool is OpenMP-free on purpose: ThreadSanitizer can check the
// stealing paths (the CI steal-stress job), which it cannot do for
// libgomp regions.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/formats/format_ops.hpp"
#include "src/observe/observe.hpp"
#include "src/parallel/partition.hpp"
#include "src/parallel/topology.hpp"
#include "src/parallel/work_queue.hpp"
#include "src/util/aligned.hpp"
#include "src/util/macros.hpp"
#include "src/util/prng.hpp"
#include "src/util/run_control.hpp"
#include "src/util/timing.hpp"

namespace bspmv {

/// Cumulative pool-wide scheduler telemetry (relaxed sums over workers).
struct TaskPoolStats {
  std::uint64_t submitted = 0;       ///< tasks ever submitted
  std::uint64_t executed = 0;        ///< tasks ever executed
  std::uint64_t stolen = 0;          ///< tasks executed via steal
  std::uint64_t steal_attempts = 0;  ///< deque.steal() calls (incl. misses)
  std::uint64_t steal_ns = 0;        ///< time from steal-sweep start to a
                                     ///< successful steal, summed
  std::uint64_t max_queue_depth = 0; ///< high-water depth over all deques
};

class TaskPool {
 public:
  /// fn(task_index, worker_id); must not retain the references past the
  /// call.
  using TaskFn = std::function<void(std::size_t, int)>;
  using DoneFn = std::function<void(std::exception_ptr)>;

  explicit TaskPool(int workers, Topology topo = Topology::detect());
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int workers() const { return static_cast<int>(ws_.size()); }
  const Topology& topology() const { return topo_; }

  /// Execute fn(i, worker) for i in [0, home.size()), task i homed on
  /// worker home[i]. Blocks until every task ran; rethrows the first
  /// exception any task threw. Must not be called from a pool worker
  /// (home tasks of the blocked worker would never be claimed) — async
  /// continuations use run_async instead.
  void run(std::span<const int> home, const TaskFn& fn);

  /// Non-blocking submit: returns immediately; `done` runs exactly once
  /// on the worker that finishes the last task (inline when the batch is
  /// empty), receiving the first task exception or nullptr. Safe to call
  /// from within a done callback (the async pass chain).
  void run_async(std::span<const int> home, TaskFn fn, DoneFn done);

  TaskPoolStats stats() const;

  /// Record the telemetry accumulated since the previous flush into the
  /// observe registry (task.executed / task.stolen / task.steal_attempts
  /// / task.steal_ns / task.queue_depth_max). Serialised internally so
  /// concurrent engines sharing the pool never double-count.
  void flush_observe();

  /// Process-wide pool registry keyed by worker count: every engine
  /// asking for the same thread count shares one persistent pool (the
  /// serving daemon's "one pool, many engines" mode). Pools live until
  /// process exit.
  static std::shared_ptr<TaskPool> shared(int workers);

 private:
  struct Batch {
    TaskFn fn;
    std::vector<int> home;
    DoneFn done;  ///< may be null (blocking run)
    struct Ref {
      Batch* batch;
      std::uint32_t index;
    };
    std::vector<Ref> refs;
    /// One flag per worker: set when that worker moved its home tasks
    /// into its deque.
    std::unique_ptr<std::atomic<bool>[]> claimed;
    std::atomic<std::int64_t> remaining{0};

    std::mutex err_mu;
    std::exception_ptr first_error;

    std::mutex wait_mu;
    std::condition_variable wait_cv;
    bool completed = false;
  };

  struct Worker {
    WorkStealingDeque deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_ns{0};
    Xoshiro256 rng{0};             ///< worker-thread-only
    std::vector<int> node_victims; ///< same NUMA node, excluding self
    std::vector<int> far_victims;  ///< everyone else, excluding self
  };

  std::shared_ptr<Batch> submit(std::vector<int> home, TaskFn fn, DoneFn done);
  void worker_loop(int w);
  void claim(Batch& b, int w);
  bool try_one(Worker& me, int w);
  void execute(void* opaque, int w);
  void finish(Batch* b);

  Topology topo_;
  std::vector<std::unique_ptr<Worker>> ws_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;  ///< bumped per submit; workers re-claim on change
  std::vector<std::shared_ptr<Batch>> active_;
  bool shutdown_ = false;
  /// Tasks sitting in deques or not yet claimed (decremented at dequeue):
  /// nonzero means stealing may still find work, so idle workers nap
  /// briefly instead of sleeping indefinitely.
  std::atomic<std::int64_t> queued_{0};
  std::atomic<std::uint64_t> submitted_{0};

  std::mutex flush_mu_;
  TaskPoolStats flushed_;
};

/// Task-graph SpMV driver — same contract as ThreadedSpmv (bitwise
/// identical output, same RunControl semantics), executed by a TaskPool.
template <class Format>
class TaskGraphSpmv {
  using Ops = FormatOps<Format>;
  using V = typename Ops::value_type;
  static_assert(Ops::kParallel,
                "TaskGraphSpmv requires FormatOps<Format>::kParallel — the "
                "task backend parallelises the same formats as the "
                "bulk-synchronous driver (§V-A)");

 public:
  /// Granules per cancellation-poll / heartbeat, matching ThreadedSpmv.
  static constexpr index_t kControlChunk = 256;
  /// Over-decomposition factor: ~this many tasks per worker per pass, so
  /// stealing has slack to cover irregular rows the static partition
  /// cannot balance. Capped at one task per granule.
  static constexpr int kTasksPerThread = 8;

  /// Decompose `a` for `threads` workers. With no pool given, joins the
  /// process-wide shared pool of that width; an injected pool must have
  /// exactly `threads` workers.
  TaskGraphSpmv(const Format& a, int threads,
                std::shared_ptr<TaskPool> pool = nullptr);

  /// y = A·x; see ThreadedSpmv::run for the RunControl contract. Must
  /// not be called from a pool worker thread.
  void run(const V* x, V* y, Impl impl = Impl::kScalar,
           RunControl* control = nullptr) const;

  /// Y = A·X for k right-hand sides; see ThreadedSpmv::run_multi.
  void run_multi(const V* X, V* Y, int k, Layout layout,
                 Impl impl = Impl::kScalar,
                 RunControl* control = nullptr) const;

  /// Asynchronous y = A·x: returns immediately; `done` runs on a pool
  /// worker after the last pass completes (first task exception or
  /// nullptr). The matrix, this driver, x, y and the control must stay
  /// alive until `done` fires — the serving daemon keeps them in the
  /// completion closure.
  void run_async(const V* x, V* y, Impl impl, RunControl* control,
                 std::function<void(std::exception_ptr)> done) const;

  /// First-touch placement pass: each pass-0 task's home worker writes
  /// the y rows that task will produce (zero-fill) and rewrites a
  /// proportional slice of x in place, so the OS backs those pages on
  /// the worker's node before the timed runs. Either pointer may be
  /// null to skip that vector.
  void warm_up(V* x, V* y) const;

  int threads() const { return threads_; }
  TaskPool& pool() const { return *pool_; }
  /// Decomposition introspection for tests.
  std::size_t task_count(int pass) const {
    return tasks_[static_cast<std::size_t>(pass)].size();
  }

 private:
  struct Task {
    index_t g0, g1;      ///< granule range (pass-local)
    index_t row0, row1;  ///< row range (pass 0: also the zero-fill range)
    std::size_t weight;  ///< stored values incl. padding (§V-A weights)
  };
  struct alignas(64) WorkerSlot {
    double seconds = 0.0;
    std::size_t items = 0;
  };
  struct AsyncCtx {
    const V* x;
    V* y;
    Impl impl;
    RunControl* control;
    std::function<void(std::exception_ptr)> done;
  };

  void exec_task(int pass, std::size_t ti, int wkr, const V* x, V* y,
                 Impl impl, RunControl* control, WorkerSlot* slots) const;
  void submit_pass_async(int pass, std::shared_ptr<AsyncCtx> ctx) const;
  void record_threads(const char* prefix, const std::vector<WorkerSlot>& slots,
                      std::size_t scale) const;

  const Format* a_;
  int threads_;
  std::shared_ptr<TaskPool> pool_;
  std::vector<Task> tasks_[static_cast<std::size_t>(Ops::kPasses)];
  std::vector<int> homes_[static_cast<std::size_t>(Ops::kPasses)];
};

template <class Format>
TaskGraphSpmv<Format>::TaskGraphSpmv(const Format& a, int threads,
                                     std::shared_ptr<TaskPool> pool)
    : a_(&a),
      threads_(threads),
      pool_(pool ? std::move(pool) : TaskPool::shared(threads)) {
  BSPMV_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  BSPMV_CHECK_MSG(pool_->workers() == threads_,
                  "task pool width must equal the plan's thread count");
  for (int pass = 0; pass < Ops::kPasses; ++pass) {
    const auto w = Ops::pass_weights(a, pass);
    std::size_t target =
        static_cast<std::size_t>(threads_) *
        static_cast<std::size_t>(kTasksPerThread);
    if (target > w.size()) target = w.size();
    if (target == 0) target = 1;  // keeps balanced_partition happy
    const auto task_bounds =
        balanced_partition(w, static_cast<int>(target));
    // Homes follow the bulk backend's nnz-balanced thread partition: the
    // worker that would own a task's first granule under ThreadedSpmv is
    // its home, so an unstolen schedule reproduces the bulk placement.
    const auto thread_bounds = balanced_partition(w, threads_);
    auto& tasks = tasks_[static_cast<std::size_t>(pass)];
    auto& homes = homes_[static_cast<std::size_t>(pass)];
    for (std::size_t t = 0; t < target; ++t) {
      const index_t g0 = task_bounds[t];
      const index_t g1 = task_bounds[t + 1];
      if (g0 == g1) continue;  // empty slice: no rows, nothing to do
      Task tk;
      tk.g0 = g0;
      tk.g1 = g1;
      tk.row0 = Ops::pass_first_row(a, pass, g0);
      tk.row1 = Ops::pass_first_row(a, pass, g1);
      tk.weight = 0;
      for (index_t g = g0; g < g1; ++g)
        tk.weight += w[static_cast<std::size_t>(g)];
      const auto it = std::upper_bound(thread_bounds.begin(),
                                       thread_bounds.end(), g0);
      int home =
          static_cast<int>(it - thread_bounds.begin()) - 1;
      if (home < 0) home = 0;
      if (home >= threads_) home = threads_ - 1;
      tasks.push_back(tk);
      homes.push_back(home);
    }
  }
}

template <class Format>
void TaskGraphSpmv<Format>::exec_task(int pass, std::size_t ti, int wkr,
                                      const V* x, V* y, Impl impl,
                                      RunControl* control,
                                      WorkerSlot* slots) const {
  const Task& tk = tasks_[static_cast<std::size_t>(pass)][ti];
  Timer timer;
  RunControl::ScopedCurrent ambient(control);
  if (control == nullptr) {
    if (pass == 0) std::fill(y + tk.row0, y + tk.row1, V{0});
    Ops::pass_run(*a_, pass, tk.g0, tk.g1, x, y, impl);
  } else if (!control->stop_requested()) {
    if (pass == 0) std::fill(y + tk.row0, y + tk.row1, V{0});
    for (index_t g = tk.g0; g < tk.g1; g += kControlChunk) {
      if (control->stop_requested()) break;  // one relaxed load
      Ops::pass_run(*a_, pass, g, std::min<index_t>(tk.g1, g + kControlChunk),
                    x, y, impl);
      control->heartbeat(wkr);
    }
  }
  if (slots != nullptr) {
    slots[wkr].seconds += timer.elapsed();
    slots[wkr].items += tk.weight;
  }
}

template <class Format>
void TaskGraphSpmv<Format>::record_threads(
    const char* prefix, const std::vector<WorkerSlot>& slots,
    std::size_t scale) const {
#if defined(BSPMV_OBSERVE_HOOKS) && BSPMV_OBSERVE_HOOKS
  const std::string metric = std::string(prefix) + Ops::kName;
  auto& reg = observe::CounterRegistry::instance();
  for (std::size_t w = 0; w < slots.size(); ++w)
    if (slots[w].items != 0 || slots[w].seconds != 0.0)
      reg.add_thread_time(metric, static_cast<int>(w), slots[w].seconds,
                          slots[w].items * scale);
  pool_->flush_observe();
#else
  (void)prefix;
  (void)slots;
  (void)scale;
#endif
}

template <class Format>
void TaskGraphSpmv<Format>::run(const V* x, V* y, Impl impl,
                                RunControl* control) const {
  std::vector<WorkerSlot> slots(
      static_cast<std::size_t>(pool_->workers()));
  for (int pass = 0; pass < Ops::kPasses; ++pass) {
    // Sequential batches are the inter-pass barrier: later passes
    // partition rows differently, so every earlier-pass contribution
    // must have landed first (same discipline as the bulk driver).
    pool_->run(homes_[static_cast<std::size_t>(pass)],
               [&](std::size_t ti, int wkr) {
                 exec_task(pass, ti, wkr, x, y, impl, control, slots.data());
               });
  }
  record_threads("tasks/", slots, 1);
}

template <class Format>
void TaskGraphSpmv<Format>::run_async(
    const V* x, V* y, Impl impl, RunControl* control,
    std::function<void(std::exception_ptr)> done) const {
  auto ctx = std::make_shared<AsyncCtx>(
      AsyncCtx{x, y, impl, control, std::move(done)});
  submit_pass_async(0, std::move(ctx));
}

template <class Format>
void TaskGraphSpmv<Format>::submit_pass_async(
    int pass, std::shared_ptr<AsyncCtx> ctx) const {
  pool_->run_async(
      homes_[static_cast<std::size_t>(pass)],
      [this, pass, ctx](std::size_t ti, int wkr) {
        exec_task(pass, ti, wkr, ctx->x, ctx->y, ctx->impl, ctx->control,
                  nullptr);
      },
      [this, pass, ctx](std::exception_ptr err) {
        if (err == nullptr && pass + 1 < Ops::kPasses) {
          submit_pass_async(pass + 1, ctx);  // chained pass barrier
          return;
        }
        pool_->flush_observe();
        ctx->done(err);
      });
}

template <class Format>
void TaskGraphSpmv<Format>::run_multi(const V* X, V* Y, int k, Layout layout,
                                      Impl impl, RunControl* control) const {
  BSPMV_CHECK_MSG(k >= 1, "rhs count must be >= 1");
  if (k == 1) {
    run(X, Y, impl, control);
    return;
  }
  const std::size_t rows = static_cast<std::size_t>(a_->rows());
  const std::size_t cols = static_cast<std::size_t>(a_->cols());
  const std::size_t kk = static_cast<std::size_t>(k);
  if constexpr (!requires(const Format& f, const V* x, V* y) {
                  Ops::pass_run_multi(f, 0, index_t{0}, index_t{0}, x, y, 1,
                                      Layout::kRowMajor, Impl::kScalar);
                }) {
    // Same fallback as ThreadedSpmv: one task-parallel run() per vector.
    if (layout == Layout::kColMajor) {
      for (int j = 0; j < k; ++j) {
        if (control != nullptr && control->stop_requested()) return;
        run(X + static_cast<std::size_t>(j) * cols,
            Y + static_cast<std::size_t>(j) * rows, impl, control);
      }
    } else {
      aligned_vector<V> x(cols), y(rows);
      for (int j = 0; j < k; ++j) {
        if (control != nullptr && control->stop_requested()) return;
        for (std::size_t i = 0; i < cols; ++i)
          x[i] = X[i * kk + static_cast<std::size_t>(j)];
        run(x.data(), y.data(), impl, control);
        for (std::size_t i = 0; i < rows; ++i)
          Y[i * kk + static_cast<std::size_t>(j)] = y[i];
      }
    }
    return;
  } else {
    std::vector<WorkerSlot> slots(
        static_cast<std::size_t>(pool_->workers()));
    const auto zero_rows = [&](index_t r0, index_t r1) {
      if (layout == Layout::kRowMajor) {
        std::fill(Y + static_cast<std::size_t>(r0) * kk,
                  Y + static_cast<std::size_t>(r1) * kk, V{0});
      } else {
        for (std::size_t j = 0; j < kk; ++j)
          std::fill(Y + j * rows + static_cast<std::size_t>(r0),
                    Y + j * rows + static_cast<std::size_t>(r1), V{0});
      }
    };
    for (int pass = 0; pass < Ops::kPasses; ++pass) {
      const auto& tasks = tasks_[static_cast<std::size_t>(pass)];
      pool_->run(
          homes_[static_cast<std::size_t>(pass)],
          [&](std::size_t ti, int wkr) {
            const Task& tk = tasks[ti];
            Timer timer;
            RunControl::ScopedCurrent ambient(control);
            if (control == nullptr) {
              if (pass == 0) zero_rows(tk.row0, tk.row1);
              Ops::pass_run_multi(*a_, pass, tk.g0, tk.g1, X, Y, k, layout,
                                  impl);
            } else if (!control->stop_requested()) {
              if (pass == 0) zero_rows(tk.row0, tk.row1);
              for (index_t g = tk.g0; g < tk.g1; g += kControlChunk) {
                if (control->stop_requested()) break;
                Ops::pass_run_multi(
                    *a_, pass, g, std::min<index_t>(tk.g1, g + kControlChunk),
                    X, Y, k, layout, impl);
                control->heartbeat(wkr);
              }
            }
            slots[wkr].seconds += timer.elapsed();
            slots[wkr].items += tk.weight;
          });
    }
    record_threads("tasks_multi/", slots, kk);
  }
}

template <class Format>
void TaskGraphSpmv<Format>::warm_up(V* x, V* y) const {
  const auto& tasks = tasks_[0];
  const std::size_t n = tasks.size();
  if (n == 0) return;
  const std::size_t cols = static_cast<std::size_t>(a_->cols());
  pool_->run(homes_[0], [&](std::size_t ti, int) {
    const Task& tk = tasks[ti];
    if (y != nullptr)
      std::fill(y + tk.row0, y + tk.row1, V{0});
    if (x != nullptr) {
      // Volatile self-store: dirties each page (first touch allocates it
      // on this worker's node) without changing any value.
      volatile V* vx = x;
      const std::size_t j0 = cols * ti / n;
      const std::size_t j1 = cols * (ti + 1) / n;
      for (std::size_t j = j0; j < j1; ++j) vx[j] = vx[j];
    }
  });
}

#define BSPMV_DECL(V)             \
  extern template class           \
      TaskGraphSpmv<Csr<V>>;      \
  extern template class           \
      TaskGraphSpmv<Bcsr<V>>;     \
  extern template class           \
      TaskGraphSpmv<Bcsd<V>>;     \
  extern template class           \
      TaskGraphSpmv<BcsrDec<V>>;  \
  extern template class           \
      TaskGraphSpmv<BcsdDec<V>>;
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
