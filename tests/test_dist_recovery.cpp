// Supervised distributed SpMV: rank supervision, checkpointed recovery
// and the degradation ladder (docs/distribution.md "Failure modes and
// recovery"). The load-bearing contract: a run that survives injected
// kills, stalls or corrupt frames must reproduce the fault-free
// distributed result *bitwise* (retried rounds are idempotent recomputes
// of y from the constant x), and every intervention must be visible in
// outcome()/recovery_log() — never silent. The ladder rungs (re-shard,
// single-node) only promise tolerance-level correctness: they change the
// decomposition, which reorders sums.
#include <gtest/gtest.h>

#include <unistd.h>

#include <sys/socket.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/models.hpp"
#include "src/dist/checkpoint.hpp"
#include "src/dist/comm.hpp"
#include "src/dist/driver.hpp"
#include "src/dist/messages.hpp"
#include "src/kernels/spmv.hpp"
#include "src/util/numerics.hpp"
#include "src/util/run_control.hpp"
#include "src/util/timing.hpp"
#include "tests/fault_injection.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using dist::DistCheckpoint;
using dist::DistOptions;
using dist::DistOutcome;
using dist::DistSpmv;
using dist::FaultKind;
using dist::FaultMsg;
using dist::RankShard;
using testing::binary_corruptions;
using testing::expect_typed_errors_only;
using testing::expect_vectors_near;
using testing::random_coo;
using testing::random_x;

Csr<double> test_matrix(index_t n, std::uint64_t seed) {
  return Csr<double>::from_coo(random_coo<double>(n, n, 0.12, seed));
}

DistOptions supervised_options(int ranks, double timeout = 5.0) {
  DistOptions opt;
  opt.ranks = ranks;
  opt.timeout_seconds = timeout;
  opt.supervise.enabled = true;
  return opt;
}

/// The fault-free supervised result for (a, opt, iterations) — the
/// bitwise reference every recovered run is held to.
aligned_vector<double> clean_reference(const Csr<double>& a,
                                       const DistOptions& opt,
                                       const aligned_vector<double>& x,
                                       int iterations) {
  DistSpmv d(a, opt);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), iterations);
  EXPECT_EQ(d.outcome(), DistOutcome::kClean);
  EXPECT_TRUE(d.recovery_log().empty());
  return y;
}

void expect_bitwise(const aligned_vector<double>& got,
                    const aligned_vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << " diverges at row " << i;
}

/// Inject `f` into rank `r`, run, and require: the run completes, the
/// outcome is kRecovered with a non-empty log, the mesh is back to full
/// width, and y is bitwise the clean reference. Exercised in both
/// exchange modes — recovery must not depend on overlap timing.
void check_recovers_bitwise(const Csr<double>& a, const DistOptions& base,
                            int faulty_rank, const FaultMsg& f,
                            int iterations, const char* what) {
  const auto x = random_x<double>(a.cols(), 37);
  for (const DistMode mode : {DistMode::kOverlap, DistMode::kNaive}) {
    DistOptions opt = base;
    opt.mode = mode;
    const auto yref = clean_reference(a, opt, x, iterations);

    DistSpmv d(a, opt);
    d.inject_fault(faulty_rank, f);
    aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
    d.run(x.data(), y.data(), iterations);

    EXPECT_EQ(d.outcome(), DistOutcome::kRecovered) << what;
    ASSERT_FALSE(d.recovery_log().empty()) << what;
    EXPECT_EQ(d.ranks(), base.ranks) << what;
    expect_bitwise(y, yref, what);
  }
}

// ---------------------------------------------------------------------
// Recovery keeps the bitwise contract.

TEST(DistRecovery, CleanSupervisedRunIsCleanOutcome) {
  const Csr<double> a = test_matrix(56, 11);
  const auto x = random_x<double>(a.cols(), 5);
  DistSpmv d(a, supervised_options(3));
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), 4);
  EXPECT_EQ(d.outcome(), DistOutcome::kClean);
  EXPECT_TRUE(d.recovery_log().empty());
  EXPECT_EQ(d.resumed_iterations(), 0);

  aligned_vector<double> yref(static_cast<std::size_t>(a.rows()), 0.0);
  spmv(a, x.data(), yref.data());
  expect_vectors_near(y.data(), yref.data(), a.rows(), "supervised clean");
}

TEST(DistRecovery, KillMidIterationRecoversBitwise) {
  const Csr<double> a = test_matrix(64, 21);
  FaultMsg f;
  f.kind = FaultKind::kExitAtIteration;
  f.at_iteration = 1;
  check_recovers_bitwise(a, supervised_options(3), /*faulty_rank=*/1, f,
                         /*iterations=*/4, "kill mid-iteration");
}

TEST(DistRecovery, KillMidExchangeRecoversBitwise) {
  // The rank dies *after posting* its halo sends, so peers are left
  // mid-protocol: some see EOF, some a half-written frame. Recovery must
  // drain that stale traffic before the retry.
  const Csr<double> a = test_matrix(64, 23);
  FaultMsg f;
  f.kind = FaultKind::kExitInExchange;
  f.at_iteration = 2;
  check_recovers_bitwise(a, supervised_options(3), /*faulty_rank=*/2, f,
                         /*iterations=*/4, "kill mid-exchange");
}

TEST(DistRecovery, StalledRankIsKilledAndRecovered) {
  // A wedged (not dead) rank: the driver's reply deadline passes, waitpid
  // says alive, so the supervisor SIGKILLs it into the dead set and
  // respawns. The stall (30 s) is far longer than the run — the test
  // passing quickly *is* the detection working.
  const Csr<double> a = test_matrix(56, 31);
  FaultMsg f;
  f.kind = FaultKind::kStallAtIteration;
  f.at_iteration = 1;
  f.seconds = 30.0;
  const auto x = random_x<double>(a.cols(), 7);
  DistOptions opt = supervised_options(3, /*timeout=*/0.5);
  const auto yref = clean_reference(a, opt, x, 4);

  DistSpmv d(a, opt);
  d.inject_fault(1, f);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), 4);

  EXPECT_EQ(d.outcome(), DistOutcome::kRecovered);
  ASSERT_FALSE(d.recovery_log().empty());
  EXPECT_EQ(d.recovery_log().front().cause, "rank_stalled");
  expect_bitwise(y, yref, "stalled rank");
}

TEST(DistRecovery, CorruptHaloFrameRecoversBitwise) {
  // One mangled halo frame: the receiving peer rejects it as a typed
  // parse error (never silent corruption), the round fails, and the
  // retry reproduces the clean result.
  const Csr<double> a = test_matrix(64, 41);
  FaultMsg f;
  f.kind = FaultKind::kCorruptHaloSend;
  f.at_iteration = 1;
  check_recovers_bitwise(a, supervised_options(3), /*faulty_rank=*/0, f,
                         /*iterations=*/3, "corrupt halo frame");
}

// ---------------------------------------------------------------------
// Degradation ladder.

TEST(DistRecovery, PersistentKillDegradesToSingleNode) {
  // Rank 1 dies in every incarnation; with 2 ranks there are no
  // survivors to re-shard over, so after max_respawns consecutive
  // failures the driver falls back to the single-node engine — and
  // *says so*. Later runs stay on that rung (the mesh is gone).
  const Csr<double> a = test_matrix(48, 51);
  DistOptions opt = supervised_options(2);
  opt.supervise.max_respawns = 1;
  DistSpmv d(a, opt);
  FaultMsg f;
  f.kind = FaultKind::kExitAtIteration;
  f.at_iteration = 0;
  d.inject_fault(1, f, /*persistent=*/true);

  const auto x = random_x<double>(a.cols(), 9);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), 3);

  EXPECT_EQ(d.outcome(), DistOutcome::kSingleNode);
  ASSERT_FALSE(d.recovery_log().empty());
  EXPECT_EQ(d.recovery_log().back().action, "single_node");
  aligned_vector<double> yref(static_cast<std::size_t>(a.rows()), 0.0);
  spmv(a, x.data(), yref.data());
  expect_vectors_near(y.data(), yref.data(), a.rows(), "single-node rung");

  // The ladder is one-way within a driver: the next run reports the
  // same rung and still computes correctly.
  aligned_vector<double> y2(static_cast<std::size_t>(a.rows()), 1.0);
  d.run(x.data(), y2.data(), 2);
  EXPECT_EQ(d.outcome(), DistOutcome::kSingleNode);
  expect_vectors_near(y2.data(), yref.data(), a.rows(), "single-node again");
}

TEST(DistRecovery, ReshardsOverSurvivorsBeforeSingleNode) {
  // 3 ranks, rank 2 persistently dying: once respawns are exhausted the
  // first rung re-shards over the 2 survivors (armed faults die with the
  // old mesh, so the re-sharded run completes).
  const Csr<double> a = test_matrix(60, 61);
  DistOptions opt = supervised_options(3);
  opt.supervise.max_respawns = 1;
  DistSpmv d(a, opt);
  FaultMsg f;
  f.kind = FaultKind::kExitAtIteration;
  f.at_iteration = 0;
  d.inject_fault(2, f, /*persistent=*/true);

  const auto x = random_x<double>(a.cols(), 13);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), 3);

  EXPECT_EQ(d.outcome(), DistOutcome::kResharded);
  EXPECT_EQ(d.ranks(), 2);
  ASSERT_FALSE(d.recovery_log().empty());
  EXPECT_EQ(d.recovery_log().back().action, "reshard");
  EXPECT_EQ(d.recovery_log().back().ranks_after, 2);
  aligned_vector<double> yref(static_cast<std::size_t>(a.rows()), 0.0);
  spmv(a, x.data(), yref.data());
  expect_vectors_near(y.data(), yref.data(), a.rows(), "reshard rung");
}

TEST(DistRecovery, RungExhaustionRethrowsTyped) {
  // Both rungs disabled: supervision still retries, but exhaustion must
  // surface the underlying failure through the typed taxonomy — exactly
  // what the unsupervised contract would have thrown.
  const Csr<double> a = test_matrix(40, 71);
  DistOptions opt = supervised_options(2);
  opt.supervise.max_respawns = 1;
  opt.supervise.allow_reshard = false;
  opt.supervise.allow_single_node = false;
  DistSpmv d(a, opt);
  FaultMsg f;
  f.kind = FaultKind::kExitAtIteration;
  f.at_iteration = 0;
  d.inject_fault(1, f, /*persistent=*/true);

  const auto x = random_x<double>(a.cols(), 3);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  EXPECT_THROW(d.run(x.data(), y.data(), 2), error);
  ASSERT_FALSE(d.recovery_log().empty());
  EXPECT_EQ(d.recovery_log().back().action, "abort");
}

// ---------------------------------------------------------------------
// Run-deadline unification: a RunControl deadline bounds wire waits.

TEST(DistRecovery, DeadlineBoundsStallDetection) {
  // A 30 s stall against a 10 s wire timeout, but a 0.5 s run deadline:
  // the deadline must clamp the per-frame waits so the run unwinds with
  // timeout_error in ~deadline time, not ~wire-timeout time.
  const Csr<double> a = test_matrix(48, 81);
  DistOptions opt = supervised_options(2, /*timeout=*/10.0);
  opt.supervise.max_respawns = 0;
  opt.supervise.allow_reshard = false;
  opt.supervise.allow_single_node = false;
  DistSpmv d(a, opt);
  FaultMsg f;
  f.kind = FaultKind::kStallAtIteration;
  f.at_iteration = 0;
  f.seconds = 30.0;
  d.inject_fault(1, f);

  RunControl control;
  control.set_deadline(0.5);
  d.set_control(&control);
  const auto x = random_x<double>(a.cols(), 17);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  Timer t;
  EXPECT_THROW(d.run(x.data(), y.data(), 2), timeout_error);
  EXPECT_LT(t.elapsed(), 6.0);  // far below the 10 s wire timeout
}

// ---------------------------------------------------------------------
// Checkpoints.

TEST(DistCheckpointFile, RoundTripAndCorruptPayloadsFailTyped) {
  DistCheckpoint ck;
  ck.completed = 5;
  ck.total = 12;
  ck.x = {1.5, -2.25, 3.0, 0.0625};
  ck.x_fingerprint = bits_fingerprint(ck.x.data(), ck.x.size());

  const DistCheckpoint back = DistCheckpoint::decode(ck.encode());
  EXPECT_EQ(back.completed, 5u);
  EXPECT_EQ(back.total, 12u);
  EXPECT_EQ(back.x, ck.x);
  EXPECT_EQ(back.x_fingerprint, ck.x_fingerprint);

  expect_typed_errors_only(
      binary_corruptions(ck.encode()),
      [](const std::string& s) { dist::DistCheckpoint::decode(s); },
      "DistCheckpoint");
}

TEST(DistCheckpointFile, SaveLoadAndCorruptFilesAreRejected) {
  const std::string path = ::testing::TempDir() + "/bspmv_dist_ck_test";
  DistCheckpoint ck;
  ck.completed = 3;
  ck.total = 8;
  ck.x = {0.5, 1.5, 2.5};
  ck.x_fingerprint = bits_fingerprint(ck.x.data(), ck.x.size());
  dist::save_checkpoint(path, ck);

  const auto loaded = dist::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->completed, 3u);
  EXPECT_EQ(loaded->x, ck.x);

  // Absent, truncated and bit-flipped files all load as nullopt — a bad
  // checkpoint costs the resume position, never the run.
  EXPECT_FALSE(dist::load_checkpoint(path + ".absent").has_value());
  std::ifstream in(path, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size() / 2));
  }
  EXPECT_FALSE(dist::load_checkpoint(path).has_value());
  raw[raw.size() / 3] = static_cast<char>(raw[raw.size() / 3] ^ 0x20);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }
  EXPECT_FALSE(dist::load_checkpoint(path).has_value());
  std::remove(path.c_str());
}

TEST(DistCheckpointFile, ResumeSkipsVouchedIterationsBitwise) {
  const Csr<double> a = test_matrix(56, 91);
  const auto x = random_x<double>(a.cols(), 19);
  DistOptions opt = supervised_options(2);
  opt.supervise.checkpoint_interval = 2;
  const int iterations = 6;
  const auto yref = clean_reference(a, opt, x, iterations);

  // A checkpoint vouching for 4 of the 6 iterations, fingerprinted
  // against this exact x.
  const std::string path = ::testing::TempDir() + "/bspmv_dist_ck_resume";
  DistCheckpoint ck;
  ck.completed = 4;
  ck.total = static_cast<std::uint32_t>(iterations);
  ck.x.assign(x.begin(), x.end());
  ck.x_fingerprint = bits_fingerprint(x.data(), x.size());
  dist::save_checkpoint(path, ck);

  opt.supervise.checkpoint_path = path;
  DistSpmv d(a, opt);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), iterations);
  EXPECT_EQ(d.resumed_iterations(), 4);
  expect_bitwise(y, yref, "checkpoint resume");
  // A completed run retires its checkpoint.
  EXPECT_FALSE(dist::load_checkpoint(path).has_value());
}

TEST(DistCheckpointFile, FingerprintMismatchStartsFromZero) {
  const Csr<double> a = test_matrix(48, 101);
  const auto x = random_x<double>(a.cols(), 23);
  const std::string path = ::testing::TempDir() + "/bspmv_dist_ck_mismatch";
  DistCheckpoint ck;
  ck.completed = 2;
  ck.total = 4;
  ck.x.assign(x.begin(), x.end());
  ck.x[0] += 1.0;  // a different problem
  ck.x_fingerprint = bits_fingerprint(ck.x.data(), ck.x.size());
  dist::save_checkpoint(path, ck);

  DistOptions opt = supervised_options(2);
  opt.supervise.checkpoint_path = path;
  DistSpmv d(a, opt);
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);
  d.run(x.data(), y.data(), 4);
  EXPECT_EQ(d.resumed_iterations(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Epoch consistency on the halo wire.

TEST(DistCommEpoch, StaleEpochFrameIsTypedParseError) {
  // Two in-process exchange endpoints whose epochs disagree — the shape
  // of a delayed pre-recovery frame arriving after the mesh healed. The
  // receiver must reject it as parse_error, not absorb stale data.
  RankShard s0;
  s0.x_begin = 0;
  s0.x_end = 2;
  s0.halo_cols = {2};
  s0.halo_seg = {0, 0, 1};
  s0.send_cols = {{}, {0}};

  RankShard s1;
  s1.x_begin = 2;
  s1.x_end = 4;
  s1.halo_cols = {0};
  s1.halo_seg = {0, 1, 1};
  s1.send_cols = {{0}, {}};

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::WireLimits limits;
  limits.read_timeout_seconds = 1.0;

  const double x0[2] = {1, 2};
  const double x1[2] = {3, 4};
  double halo0[1] = {0};
  double halo1[1] = {0};

  // Pairwise ordering: the lower rank sends first. Rank 0 ships a frame
  // stamped with the pre-recovery epoch 1; rank 1 — already healed to
  // epoch 2 — must reject it on receipt.
  std::thread peer([&] {
    dist::HaloExchange ex(s0, 0, {-1, fds[0]}, limits);
    ex.start(x0, halo0, /*iter=*/0, /*epoch=*/1);  // stale epoch
    try {
      ex.finish();
    } catch (const error&) {
      // Rank 1 aborted before its own send; this recv times out.
    }
  });
  {
    dist::HaloExchange ex(s1, 1, {fds[1], -1}, limits);
    ex.start(x1, halo1, /*iter=*/0, /*epoch=*/2);  // post-recovery epoch
    EXPECT_THROW(ex.finish(), parse_error);
  }
  peer.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------
// Recovery cost models.

MachineProfile recovery_profile() {
  MachineProfile p;
  p.bandwidth_bps = 2e10;
  p.read_bandwidth_bps = 2e10;
  p.comm_alpha_seconds = 1e-5;
  p.comm_beta_bps = 1e9;
  return p;
}

TEST(RecoveryModel, CheckpointIntervalFollowsYoung) {
  const double t_iter = 1e-3, ckpt = 5e-3;
  const int at_1h = dist_checkpoint_interval(t_iter, ckpt, 3600.0);
  const int at_1m = dist_checkpoint_interval(t_iter, ckpt, 60.0);
  EXPECT_GE(at_1m, 1);
  EXPECT_GT(at_1h, at_1m);  // rarer failures -> longer intervals
  // sqrt scaling: 100x the MTBF stretches the interval ~10x.
  const int at_100h = dist_checkpoint_interval(t_iter, ckpt, 360000.0);
  EXPECT_NEAR(static_cast<double>(at_100h) / at_1h, 10.0, 0.5);
  // Non-positive inputs mean "no model choice".
  EXPECT_EQ(dist_checkpoint_interval(0.0, ckpt, 60.0), 0);
  EXPECT_EQ(dist_checkpoint_interval(t_iter, 0.0, 60.0), 0);
  EXPECT_EQ(dist_checkpoint_interval(t_iter, ckpt, 0.0), 0);
}

TEST(RecoveryModel, OverheadIsMinimisedNearTheYoungInterval) {
  const double t_iter = 1e-3, ckpt = 5e-3, restart = 0.05, mtbf = 120.0;
  const int opt_interval = dist_checkpoint_interval(t_iter, ckpt, mtbf);
  ASSERT_GE(opt_interval, 1);
  const double at_opt =
      dist_recovery_overhead(t_iter, ckpt, restart, mtbf, opt_interval);
  EXPECT_GT(at_opt, 0.0);
  // Checkpointing every iteration and almost never must both cost more.
  EXPECT_GT(dist_recovery_overhead(t_iter, ckpt, restart, mtbf, 1), at_opt);
  EXPECT_GT(dist_recovery_overhead(t_iter, ckpt, restart, mtbf,
                                   opt_interval * 100),
            at_opt);
}

TEST(RecoveryModel, CheckpointAndRestartCostsAreGuardedAndMonotone) {
  const MachineProfile p = recovery_profile();
  const double small = dist_checkpoint_seconds(p, 1u << 20);
  const double big = dist_checkpoint_seconds(p, 64u << 20);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
  MachineProfile unprofiled;
  EXPECT_THROW(dist_checkpoint_seconds(unprofiled, 1024),
               invalid_argument_error);

  const double r1 = dist_restart_seconds(p, 1u << 20, 1);
  const double r7 = dist_restart_seconds(p, 1u << 20, 7);
  EXPECT_GT(r1, 0.0);
  EXPECT_GT(r7, r1);  // more survivors to rewire
  EXPECT_GT(dist_restart_seconds(p, 64u << 20, 1), r1);  // bigger shard
}

TEST(RecoveryModel, DegradationDecision) {
  const double restart = 0.1;
  // mtbf <= 0: failures keep happening — always degrade.
  EXPECT_TRUE(dist_degradation_beats_retry(1e-3, 4e-3, restart, 0.0, 100));
  // Reliable mesh, slow single node: keep the distributed run.
  EXPECT_FALSE(
      dist_degradation_beats_retry(1e-3, 4e-3, restart, 3600.0, 100));
  // Failure-prone mesh whose single-node fallback is nearly as fast:
  // the expected restart tax flips the decision.
  EXPECT_TRUE(
      dist_degradation_beats_retry(1e-3, 1.1e-3, restart, 0.05, 100));
}

TEST(RecoveryModel, OutcomeNamesAreStable) {
  EXPECT_STREQ(dist::dist_outcome_name(DistOutcome::kClean), "clean");
  EXPECT_STREQ(dist::dist_outcome_name(DistOutcome::kRecovered), "recovered");
  EXPECT_STREQ(dist::dist_outcome_name(DistOutcome::kResharded), "resharded");
  EXPECT_STREQ(dist::dist_outcome_name(DistOutcome::kSingleNode),
               "single_node");
}

}  // namespace
}  // namespace bspmv
