// Shared fixed-size block multiply-accumulate bodies, used by the BCSR
// and UBCSR kernels (the two formats run the identical inner block
// routine; only the addressing of the block's columns differs).
#pragma once

#include "src/kernels/simd.hpp"
#include "src/util/macros.hpp"

namespace bspmv::detail {

/// One r×c block multiply-accumulate: sum[0..R) += bv(R×C, row-major) · x'.
/// Scalar flavour — plain fully-unrolled FMA chain.
template <class V, int R, int C>
BSPMV_ALWAYS_INLINE void block_madd_scalar(const V* BSPMV_RESTRICT bv,
                                           const V* BSPMV_RESTRICT xp,
                                           V* BSPMV_RESTRICT sum) {
  for (int r = 0; r < R; ++r)
    for (int c = 0; c < C; ++c) sum[r] += bv[r * C + c] * xp[c];
}

/// SIMD flavour. Strategy by shape:
///  - C a multiple of the vector width: vector dot-product along the block
///    row (x and bval both load contiguously).
///  - C == 1 and R a multiple of the width: vectorise down the block
///    column — bval is contiguous in r, x is one broadcast scalar.
///  - otherwise: unrolled scalar body (odd shapes vectorise poorly, which
///    is exactly the block-choice sensitivity the paper discusses).
template <class V, int R, int C>
BSPMV_ALWAYS_INLINE void block_madd_simd(const V* BSPMV_RESTRICT bv,
                                         const V* BSPMV_RESTRICT xp,
                                         V* BSPMV_RESTRICT sum) {
  constexpr int w = simd_width<V>;
  if constexpr (C % w == 0) {
    for (int r = 0; r < R; ++r) {
      simd_t<V> acc = simd_zero<V>();
      for (int c = 0; c < C; c += w)
        acc += simd_loadu(bv + r * C + c) * simd_loadu(xp + c);
      sum[r] += simd_hsum<V>(acc);
    }
  } else if constexpr (C == 1 && R % w == 0) {
    const simd_t<V> xv = simd_broadcast(xp[0]);
    for (int r = 0; r < R; r += w) {
      simd_t<V> s = simd_loadu(sum + r);
      s += simd_loadu(bv + r) * xv;
      simd_storeu(sum + r, s);
    }
  } else {
    block_madd_scalar<V, R, C>(bv, xp, sum);
  }
}

}  // namespace bspmv::detail
