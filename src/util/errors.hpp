// Typed error taxonomy for the whole library.
//
// Every failure the library can surface derives from bspmv::error, so a
// caller that must never crash (the executor's try_prepare path, the
// bench harness, a long-running service loop) can catch one type and
// decide between "reject this input" and "degrade to the CSR fallback":
//
//   error
//   ├── invalid_argument_error   caller broke a documented precondition
//   ├── parse_error              malformed external text (MM files, JSON)
//   ├── validation_error         a format's structural invariants are broken
//   ├── conversion_error         a format conversion cannot be completed
//   │   └── resource_limit_error a ConversionGuard budget was exceeded
//   │                            (padding fill blowup, memory cap, index
//   │                            width overflow) — the matrix itself is
//   │                            fine, only this candidate is infeasible
//   ├── execution_error          a run that started could not finish
//   │   ├── cancelled_error      cooperative cancellation was honoured
//   │   └── timeout_error        deadline expired or the watchdog saw a
//   │                            stalled worker (RunControl)
//   ├── numerical_error          NaN/Inf/garbage detected by the opt-in
//   │                            numeric health guards at engine
//   │                            boundaries, or a nondeterministic output
//   │                            fingerprint across measurement batches
//   ├── overloaded_error         admission control shed the request: the
//   │                            server's bounded queue was full and this
//   │                            work was the lowest priority. The input
//   │                            is fine — retry later with backoff
//   └── io_error                 a persistence operation failed (cannot
//                                write, rename, or a trailing-checksum
//                                corruption check rejected the file)
#pragma once

#include <stdexcept>
#include <string>

namespace bspmv {

/// Root of the typed error taxonomy; everything the library throws on
/// purpose derives from this.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a matrix or format argument violates a documented
/// precondition (BSPMV_CHECK).
class invalid_argument_error : public error {
 public:
  using error::error;
};

/// Thrown when an input file (e.g. Matrix Market or JSON) is malformed.
class parse_error : public error {
 public:
  using error::error;
};

/// Thrown by validate() when a materialised format violates a structural
/// invariant (non-monotone row pointers, out-of-range indices, array size
/// mismatches) — i.e. the object is corrupt, not merely unusual.
class validation_error : public error {
 public:
  using error::error;
};

/// Thrown when a format conversion cannot be completed for this input.
class conversion_error : public error {
 public:
  using error::error;
};

/// Thrown by ConversionGuard when a conversion would exceed its memory
/// budget, padding fill-ratio cap, or the index type's range. Callers
/// treat this as "skip the candidate", not "reject the matrix".
class resource_limit_error : public conversion_error {
 public:
  using conversion_error::conversion_error;
};

/// Root of the execution-side failures: a run that started could not run
/// to completion. The partial output (if any) must be discarded.
class execution_error : public error {
 public:
  using error::error;
};

/// Thrown when a run observed a cooperative cancellation request
/// (RunControl::request_cancel) and unwound. Not an error of the input —
/// retrying the same run is legal.
class cancelled_error : public execution_error {
 public:
  using execution_error::execution_error;
};

/// Thrown when a RunControl deadline expired or the watchdog detected a
/// stalled worker (no per-thread progress within the stall timeout).
class timeout_error : public execution_error {
 public:
  using execution_error::execution_error;
};

/// Thrown by the numeric health guards: a NaN/Inf in an input or output
/// vector at an engine boundary, or a measurement whose output
/// fingerprint changed between batches (nondeterminism/corruption).
class numerical_error : public error {
 public:
  using error::error;
};

/// Thrown (or returned over the wire) when admission control sheds a
/// request under overload: the bounded queue was full and this request
/// was the lowest-priority work in sight. Nothing is wrong with the
/// input — the caller should back off and retry.
class overloaded_error : public error {
 public:
  using error::error;
};

/// Thrown when persistence fails: a file cannot be written/renamed, or a
/// trailing-checksum corruption check rejected its content. Cache
/// loaders treat this as "warn and regenerate", never as fatal.
class io_error : public error {
 public:
  using error::error;
};

}  // namespace bspmv
