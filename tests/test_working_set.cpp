// Working-set accounting tests: the model-side cost structure must agree
// EXACTLY with the materialised formats' own working_set_bytes() — the
// strongest possible check that eq. (1)-(3) see the right ws and nb.
#include <gtest/gtest.h>

#include "src/core/executor.hpp"
#include "src/core/working_set.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;

class CostVsMaterialised : public ::testing::TestWithParam<Candidate> {};

TEST_P(CostVsMaterialised, WsAndNbMatchExactly) {
  const Candidate c = GetParam();
  for (std::uint64_t seed : {1u, 9u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_blocky_coo<double>(66, 58, 3, 0.3, 0.8, seed));
    const CandidateCost cost = candidate_cost(a, c);
    const AnyFormat<double> f = AnyFormat<double>::convert(a, c);
    EXPECT_EQ(cost.total_ws(), f.working_set_bytes()) << c.id();

    // nb check per format kind.
    std::size_t nb_total = 0;
    for (const auto& p : cost.parts) nb_total += p.nb;
    switch (c.kind) {
      case FormatKind::kCsr:
        EXPECT_EQ(nb_total, a.nnz());
        break;
      case FormatKind::kBcsr:
        EXPECT_EQ(nb_total, Bcsr<double>::from_csr(a, c.shape).blocks());
        break;
      case FormatKind::kBcsd:
        EXPECT_EQ(nb_total, Bcsd<double>::from_csr(a, c.b).blocks());
        break;
      case FormatKind::kBcsrDec: {
        const BcsrDec<double> m = BcsrDec<double>::from_csr(a, c.shape);
        ASSERT_EQ(cost.parts.size(), 2u);
        EXPECT_EQ(cost.parts[0].nb, m.blocked().blocks());
        EXPECT_EQ(cost.parts[1].nb, m.remainder().nnz());
        break;
      }
      case FormatKind::kBcsdDec: {
        const BcsdDec<double> m = BcsdDec<double>::from_csr(a, c.b);
        ASSERT_EQ(cost.parts.size(), 2u);
        EXPECT_EQ(cost.parts[0].nb, m.blocked().blocks());
        EXPECT_EQ(cost.parts[1].nb, m.remainder().nnz());
        break;
      }
      case FormatKind::kVbl:
        EXPECT_EQ(nb_total, Vbl<double>::from_csr(a).blocks());
        break;
      case FormatKind::kVbr:
        EXPECT_EQ(nb_total, Vbr<double>::from_csr(a).blocks());
        break;
      case FormatKind::kUbcsr:
        EXPECT_EQ(nb_total, Ubcsr<double>::from_csr(a, c.shape).blocks());
        break;
      case FormatKind::kCsrDelta:
        EXPECT_EQ(nb_total, a.nnz());
        break;
    }
  }
}

std::vector<Candidate> cost_candidate_space() {
  std::vector<Candidate> all = bench_candidates(true, true);
  const auto ext = extension_candidates(true);
  all.insert(all.end(), ext.begin(), ext.end());
  return all;
}

INSTANTIATE_TEST_SUITE_P(BenchSpace, CostVsMaterialised,
                         ::testing::ValuesIn(cost_candidate_space()),
                         [](const auto& info) { return info.param.id(); });

TEST(CandidateCost, DecKernelIdsSplitCorrectly) {
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(40, 40, 2, 0.4, 0.9, 3));
  const Candidate c{FormatKind::kBcsrDec, BlockShape{2, 2}, 0, Impl::kSimd};
  const CandidateCost cost = candidate_cost(a, c);
  ASSERT_EQ(cost.parts.size(), 2u);
  EXPECT_EQ(cost.parts[0].kernel_id, "bcsr_2x2_simd");
  EXPECT_EQ(cost.parts[1].kernel_id, "csr_simd");
}

TEST(CandidateCost, FloatUsesSmallerValueBytes) {
  const Csr<double> ad =
      Csr<double>::from_coo(random_coo<double>(50, 50, 0.1, 4));
  const Csr<float> af = Csr<float>::from_coo(random_coo<float>(50, 50, 0.1, 4));
  ASSERT_EQ(ad.nnz(), af.nnz());
  const Candidate c{};  // csr_scalar
  EXPECT_GT(candidate_cost(ad, c).total_ws(),
            candidate_cost(af, c).total_ws());
}

TEST(CandidateCost, AllCostsSharedScanMatchesIndividual) {
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(45, 45, 3, 0.3, 0.7, 5));
  const auto cands = model_candidates(true);
  const auto all = all_candidate_costs(a, cands);
  ASSERT_EQ(all.size(), cands.size());
  for (std::size_t i = 0; i < cands.size(); i += 13) {
    const CandidateCost one = candidate_cost(a, cands[i]);
    EXPECT_EQ(one.total_ws(), all[i].total_ws()) << cands[i].id();
    ASSERT_EQ(one.parts.size(), all[i].parts.size());
    for (std::size_t p = 0; p < one.parts.size(); ++p)
      EXPECT_EQ(one.parts[p].nb, all[i].parts[p].nb);
  }
}

TEST(CandidateCost, BlockingShrinksIndexStructures) {
  // On a perfectly blocky matrix, BCSR 2x2 must have a smaller ws than
  // CSR (4 values share one block index) — §III's core claim.
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(64, 64, 2, 0.5, 1.01, 6));
  const auto csr_ws = candidate_cost(a, Candidate{}).total_ws();
  const auto bcsr_ws =
      candidate_cost(a, Candidate{FormatKind::kBcsr, BlockShape{2, 2}, 0,
                                  Impl::kScalar})
          .total_ws();
  EXPECT_LT(bcsr_ws, csr_ws);
}

}  // namespace
}  // namespace bspmv
