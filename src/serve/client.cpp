#include "src/serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace bspmv::serve {

ServeClient::ServeClient(std::string socket_path, WireLimits limits)
    : limits_(limits) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw io_error(std::string("socket() failed: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd_);
    fd_ = -1;
    throw io_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw io_error("cannot connect to " + socket_path + ": " + why);
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), limits_(other.limits_) {}

std::string ServeClient::roundtrip(MsgType type, const std::string& payload,
                                   MsgType expect) {
  write_frame(fd_, type, payload, limits_);
  MsgType got{};
  std::string reply;
  if (!read_frame(fd_, got, reply, limits_))
    throw io_error("server closed the connection before replying");
  if (got == MsgType::kError) {
    const ErrorReply err = ErrorReply::decode(reply);
    throw_wire_error(err.code, err.message);
  }
  if (got != expect) {
    throw parse_error(std::string("expected ") + msg_type_name(expect) +
                      " reply, got " + msg_type_name(got));
  }
  return reply;
}

void ServeClient::ping() { roundtrip(MsgType::kPing, "", MsgType::kPong); }

SubmitReply ServeClient::submit(const Csr<double>& a) {
  const std::string payload = SubmitRequest::from_csr(a).encode();
  return SubmitReply::decode(
      roundtrip(MsgType::kSubmit, payload, MsgType::kSubmitOk));
}

SpmvReply ServeClient::spmv(std::uint64_t fingerprint,
                            const std::vector<double>& x,
                            double deadline_seconds, std::uint32_t priority,
                            bool check_numerics) {
  SpmvRequest req;
  req.fingerprint = fingerprint;
  req.priority = priority;
  req.deadline_seconds = deadline_seconds;
  req.check_numerics = check_numerics;
  req.x = x;
  return SpmvReply::decode(
      roundtrip(MsgType::kSpmv, req.encode(), MsgType::kSpmvOk));
}

Json ServeClient::stats() {
  return Json::parse(roundtrip(MsgType::kStats, "", MsgType::kStatsOk));
}

void ServeClient::shutdown_server() {
  roundtrip(MsgType::kShutdown, "", MsgType::kShutdownOk);
}

namespace {

void backoff_sleep(const RetryPolicy& policy, int attempt) {
  const double s =
      policy.backoff_base_seconds * static_cast<double>(1 << attempt);
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

SubmitReply ServeClient::submit_with_retry(const Csr<double>& a,
                                           const RetryPolicy& policy) {
  for (int attempt = 0;; ++attempt) {
    try {
      return submit(a);
    } catch (const overloaded_error&) {
      if (attempt + 1 >= policy.max_attempts) throw;
      backoff_sleep(policy, attempt);
    }
  }
}

SpmvReply ServeClient::spmv_with_retry(const Csr<double>& a,
                                       std::uint64_t fingerprint,
                                       const std::vector<double>& x,
                                       double deadline_seconds,
                                       std::uint32_t priority,
                                       bool check_numerics,
                                       const RetryPolicy& policy) {
  bool resubmitted = false;
  for (int attempt = 0;; ++attempt) {
    try {
      return spmv(fingerprint, x, deadline_seconds, priority, check_numerics);
    } catch (const overloaded_error&) {
      if (attempt + 1 >= policy.max_attempts) throw;
      backoff_sleep(policy, attempt);
    } catch (const invalid_argument_error&) {
      // kUnknownMatrix lands here (throw_wire_error maps it): the engine
      // was evicted or the server restarted spool-less. Resubmit once and
      // keep going; a second unknown means the fingerprint itself is
      // wrong for this matrix, so let it surface.
      if (resubmitted || attempt + 1 >= policy.max_attempts) throw;
      resubmitted = true;
      const SubmitReply rep = submit_with_retry(a, policy);
      fingerprint = rep.fingerprint;
    }
  }
}

}  // namespace bspmv::serve
