// Candidate materialisation and empirical measurement.
//
// AnyFormat converts a CSR matrix into any candidate's storage format and
// runs its kernel; the measure_* helpers time candidates the way the
// paper does (repeated consecutive SpMV operations on random input
// vectors) to produce the "real execution time" that Figs. 3/4 and
// Tables II–IV compare against.
//
// Conversion, the prepare path and the measurement loops are
// instrumented (src/observe/observe.hpp): spans "convert/<fmt>",
// "prepare", "measure/{spmv,threaded}" and the prepare.* counters feed
// the RunReport telemetry described in docs/observability.md.
#pragma once

#include <optional>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "src/core/candidates.hpp"
#include "src/formats/registry.hpp"
#include "src/parallel/backend.hpp"
#include "src/parallel/parallel_spmv.hpp"
#include "src/util/timing.hpp"

namespace bspmv {

template <class V>
class AnyFormat {
 public:
  /// Convert `a` into the candidate's format (throws for unsupported
  /// combinations, e.g. simd VBR is fine but simd VBL never enumerated).
  static AnyFormat convert(const Csr<V>& a, const Candidate& c);

  const Candidate& candidate() const { return c_; }
  index_t rows() const;
  index_t cols() const;
  std::size_t working_set_bytes() const;

  /// Deep structural check of the materialised format; throws
  /// validation_error if any invariant is broken.
  void validate() const;

  /// y = A·x with the candidate's kernel implementation.
  void run(const V* x, V* y) const;

  /// Y = A·X for k right-hand sides (X cols×k, Y rows×k, laid out per
  /// `layout` — src/kernels/layout.hpp) with the candidate's kernel
  /// implementation. k == 1 is the single-vector path.
  void run_multi(const V* X, V* Y, int k, Layout layout) const;

  /// Visit the materialised format: fn is invoked with the concrete
  /// format object (never monostate — an empty AnyFormat throws
  /// invalid_argument_error) and its result is returned.
  template <class Fn>
  decltype(auto) visit(Fn&& fn) const {
    using R = decltype(fn(std::get<Csr<V>>(m_)));
    return std::visit(
        [&](const auto& m) -> R {
          if constexpr (std::is_same_v<std::decay_t<decltype(m)>,
                                       std::monostate>) {
            throw invalid_argument_error("AnyFormat: empty");
          } else {
            return fn(m);
          }
        },
        m_);
  }

 private:
  Candidate c_;
  typename BuiltinFormats<V>::variant m_;
};

// ----------------------------------------------------------------------
// Fault-tolerant preparation
// ----------------------------------------------------------------------

/// Why one candidate could not be materialised.
struct PrepareFailure {
  Candidate candidate;
  std::string reason;
};

/// A guaranteed-runnable executor plus the audit trail of every candidate
/// that had to be skipped on the way to it.
template <class V>
struct PreparedExecutor {
  AnyFormat<V> format;
  /// True when every requested candidate failed and the executor degraded
  /// to the paper's 1×1 case: plain scalar CSR.
  bool fallback = false;
  std::vector<PrepareFailure> failures;
};

/// Convert + validate one candidate, capturing any bspmv::error (or
/// allocation failure) instead of throwing. On failure returns nullopt
/// and, when `reason` is non-null, stores the failure message.
template <class V>
std::optional<AnyFormat<V>> try_convert(const Csr<V>& a, const Candidate& c,
                                        std::string* reason = nullptr);

/// Walk `ranked` in order and return the first candidate that converts and
/// validates; every failure is recorded and skipped. If all candidates
/// fail, degrades to scalar CSR — which cannot fail for a valid input, so
/// a correct executor is always returned. The input matrix itself is
/// validated up front; a corrupt input throws validation_error (there is
/// no correct executor for garbage).
template <class V>
PreparedExecutor<V> try_prepare(const Csr<V>& a,
                                const std::vector<Candidate>& ranked);

struct MeasureOptions {
  /// SpMVs per timed batch. The paper ran 100 consecutive operations; the
  /// default stays lower so test/bench sweeps finish quickly, and
  /// mtx_tool exposes --iterations/--reps so the paper's setting is
  /// reachable without recompiling.
  int iterations = 20;
  int reps = 2;               ///< batches; the minimum is reported
  int warmup = 1;             ///< unmeasured batches
  std::uint64_t seed = 1234;  ///< input-vector RNG seed

  /// Optional cooperative deadline/cancellation/stall control, polled at
  /// iteration edges (and granule boundaries in threaded plans). The
  /// engine spawns a Watchdog for it when it carries a deadline or stall
  /// timeout. Non-owning; must outlive the measurement. nullptr (the
  /// default) keeps every hot loop exactly as fast as before.
  RunControl* control = nullptr;

  /// Opt-in numeric health guard: scan x before and y after the run for
  /// NaN/Inf and verify the per-batch output fingerprint stays bitwise
  /// identical (deterministic kernels on a fixed input must reproduce);
  /// violations throw bspmv::numerical_error. Scans run outside the
  /// timed batches.
  bool check_numerics = false;
};

/// Seconds per SpMV for one materialised candidate.
template <class V>
double measure_spmv_seconds(const AnyFormat<V>& f, const MeasureOptions& opt);

struct MeasuredCandidate {
  Candidate candidate;
  double seconds = 0.0;
};

/// Convert + measure every candidate (formats are dropped after timing so
/// peak memory stays ~2× the matrix).
template <class V>
std::vector<MeasuredCandidate> measure_candidates(
    const Csr<V>& a, const std::vector<Candidate>& candidates,
    const MeasureOptions& opt = {});

/// Multithreaded real time (only CSR/BCSR/BCSD and the decomposed
/// variants, matching §V-A), on either execution backend.
template <class V>
double measure_threaded_seconds(const Csr<V>& a, const Candidate& c,
                                int threads, const MeasureOptions& opt = {},
                                ExecBackend backend = ExecBackend::kBulk);

/// Measure one candidate at several thread counts, converting the matrix
/// once (conversion dominates a sweep; Fig. 2 measures 1/2/4 cores).
/// Returns seconds per SpMV in the same order as `threads`.
template <class V>
std::vector<double> measure_threaded_multi(const Csr<V>& a,
                                           const Candidate& c,
                                           const std::vector<int>& threads,
                                           const MeasureOptions& opt = {});

#define BSPMV_DECL(V)                                                      \
  extern template class AnyFormat<V>;                                      \
  extern template std::optional<AnyFormat<V>> try_convert(                 \
      const Csr<V>&, const Candidate&, std::string*);                      \
  extern template PreparedExecutor<V> try_prepare(                         \
      const Csr<V>&, const std::vector<Candidate>&);                       \
  extern template double measure_spmv_seconds(const AnyFormat<V>&,         \
                                              const MeasureOptions&);      \
  extern template std::vector<MeasuredCandidate> measure_candidates(       \
      const Csr<V>&, const std::vector<Candidate>&, const MeasureOptions&); \
  extern template double measure_threaded_seconds(                         \
      const Csr<V>&, const Candidate&, int, const MeasureOptions&,         \
      ExecBackend);                                                        \
  extern template std::vector<double> measure_threaded_multi(              \
      const Csr<V>&, const Candidate&, const std::vector<int>&,            \
      const MeasureOptions&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
