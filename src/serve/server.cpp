#include "src/serve/server.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "src/observe/observe.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/macros.hpp"
#include "src/util/timing.hpp"

namespace bspmv::serve {

namespace {

/// Formats the §V-A drivers parallelise; a threaded engine plan is only
/// legal for these.
bool parallel_kind(FormatKind k) {
  switch (k) {
    case FormatKind::kCsr:
    case FormatKind::kBcsr:
    case FormatKind::kBcsrDec:
    case FormatKind::kBcsd:
    case FormatKind::kBcsdDec:
      return true;
    default:
      return false;
  }
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

// ------------------------------------------------------------ plumbing ----

/// One client connection. The write mutex serialises replies from the
/// reader thread (inline answers) and workers (queued answers); `open`
/// flips once and every later send becomes a silent no-op, so a worker
/// finishing after the client vanished never touches a dead fd.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void hang_up() {
    if (open.exchange(false)) ::shutdown(fd, SHUT_RDWR);
  }
};

/// Everything one non-batched spmv needs alive until its reply is sent.
/// On the task executor the completion callback owns this state, so the
/// connection, cached engine, control + watchdog and both vectors
/// survive the request worker returning to the pool.
struct Server::AsyncSpmv {
  std::shared_ptr<const CachedEngine> entry;
  SpmvRequest req;
  SpmvReply rep;
  RunControl control;
  std::optional<Watchdog> watchdog;
  Timer t;
};

/// Per-fingerprint batch box for the same-matrix SpMM batcher. Workers
/// push their request and the first one in becomes the leader, draining
/// the box in max_batch-sized rounds through run_multi; the others return
/// to the pool immediately (their replies are sent by the leader).
struct Server::SpmmBatch {
  struct Pending {
    std::shared_ptr<Connection> conn;
    SpmvRequest req;
    Timer timer;  ///< started at request decode; reply carries its elapsed
  };
  std::mutex mu;
  std::vector<Pending> waiting;
  bool leader_active = false;
};

struct Server::ServerStats {
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> requests_ok{0};
  std::atomic<std::uint64_t> requests_error{0};
  std::atomic<std::uint64_t> submits{0};
  std::atomic<std::uint64_t> spmvs{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> read_timeouts{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> numerical{0};
  std::atomic<std::uint64_t> degraded_served{0};
  std::atomic<std::uint64_t> batch_rounds{0};   ///< run_multi calls, m >= 2
  std::atomic<std::uint64_t> batched_spmvs{0};  ///< requests served in them
  std::atomic<std::uint64_t> spool_loads{0};
  std::atomic<std::uint64_t> spool_errors{0};
  std::atomic<std::uint64_t> connections{0};
};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      cache_(std::make_unique<EngineCache>(opt_.cache_bytes)),
      queue_(std::make_unique<AdmissionQueue>(opt_.queue_capacity)),
      stats_(std::make_unique<ServerStats>()) {
  BSPMV_CHECK_MSG(!opt_.socket_path.empty(), "server needs a socket path");
  BSPMV_CHECK_MSG(opt_.workers >= 1, "server needs at least one worker");
}

Server::~Server() { stop(); }

void Server::start() {
  BSPMV_CHECK_MSG(!running_.load(), "server already started");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw io_error(std::string("socket() failed: ") + std::strerror(errno));

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof addr.sun_path) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io_error("socket path too long: " + opt_.socket_path);
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(opt_.socket_path.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw io_error("cannot listen on " + opt_.socket_path + ": " + why);
  }

  if (!opt_.spool_dir.empty()) {
    // Best-effort create; a failure surfaces on the first spool write.
    ::mkdir(opt_.spool_dir.c_str(), 0777);
  }

  running_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stopping_.load(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  request_stop();

  // Unblock the acceptor, then every connection reader.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) c->hang_up();
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Shed queued work, join workers (in-flight requests finish; their
  // replies hit closed connections and no-op).
  queue_->shutdown();
  for (auto& w : workers_)
    if (w.joinable()) w.join();

  // Drain asynchronous spmv completions still running on the shared
  // task pool: their callbacks touch stats_ and connection state, so
  // they must retire before teardown continues.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait(lock, [this] {
      return async_inflight_.load(std::memory_order_acquire) == 0;
    });
  }

  // Reader threads are detached; wait for the last one to sign off so
  // the Server members they touch outlive them.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait(lock, [this] { return conns_.empty(); });
  }

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opt_.socket_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal) — stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    stats_->connections.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.connections", 1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(conn);
    }
    // Detached: connection lifetime is tracked via conns_, and stop()
    // blocks until the set drains.
    std::thread([this, conn] { connection_loop(conn); }).detach();
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    MsgType type{};
    std::string payload;
    try {
      if (!read_frame(conn->fd, type, payload, opt_.wire)) break;  // EOF
    } catch (const parse_error& e) {
      // Malformed/torn/oversized frame: answer typed (best effort) and
      // drop the connection — framing is gone, resync is impossible.
      stats_->malformed.fetch_add(1, std::memory_order_relaxed);
      BSPMV_OBS_COUNT("serve.malformed", 1);
      send_error(conn, ErrorCode::kParse, e.what());
      break;
    } catch (const timeout_error&) {
      stats_->read_timeouts.fetch_add(1, std::memory_order_relaxed);
      BSPMV_OBS_COUNT("serve.read_timeouts", 1);
      break;
    } catch (const error&) {
      break;  // socket error — peer is gone
    }
    if (stopping_.load()) {
      send_error(conn, ErrorCode::kOverloaded, "server shutting down");
      break;
    }
    try {
      dispatch(conn, type, std::move(payload));
    } catch (const error& e) {
      // A typed failure escaping dispatch is a request-level problem;
      // the connection itself is still in sync.
      send_error(conn, error_code_for(e), e.what());
    }
  }
  conn->hang_up();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn);
  }
  conns_cv_.notify_all();
}

void Server::dispatch(const std::shared_ptr<Connection>& conn, MsgType type,
                      std::string&& payload) {
  stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
  BSPMV_OBS_COUNT("serve.requests", 1);
  switch (type) {
    case MsgType::kPing:
      send_reply(conn, MsgType::kPong, "");
      return;
    case MsgType::kStats:
      send_reply(conn, MsgType::kStatsOk, stats_json().dump(-1));
      return;
    case MsgType::kShutdown:
      send_reply(conn, MsgType::kShutdownOk, "");
      request_stop();
      return;
    case MsgType::kSubmit:
      stats_->submits.fetch_add(1, std::memory_order_relaxed);
      // Submissions outrank default-priority spmv traffic: a shed
      // submit wastes a (large) matrix upload, and preparing is what
      // the whole cache amortises.
      enqueue(conn, type, std::move(payload), /*priority=*/1,
              /*attempts=*/0, /*not_before=*/0.0);
      return;
    case MsgType::kSpmv: {
      stats_->spmvs.fetch_add(1, std::memory_order_relaxed);
      // Peek the priority without decoding the x vector (fixed-offset
      // header field); a torn payload surfaces later on the worker.
      int priority = 0;
      if (payload.size() >= 12) {
        WireReader r(payload);
        r.u64();
        priority = static_cast<int>(r.u32());
      }
      enqueue(conn, type, std::move(payload), priority, 0, 0.0);
      return;
    }
    default:
      throw invalid_argument_error(
          std::string("unexpected frame type: ") + msg_type_name(type));
  }
}

void Server::enqueue(const std::shared_ptr<Connection>& conn, MsgType type,
                     std::string&& payload, int priority, int attempts,
                     double not_before) {
  Job j;
  j.priority = priority;
  j.attempts = attempts;
  j.not_before = not_before;
  auto self = this;
  auto body = std::make_shared<std::string>(std::move(payload));
  j.run = [self, conn, type, body, attempts] {
    try {
      if (type == MsgType::kSubmit)
        self->handle_submit(conn, *body, attempts);
      else
        self->handle_spmv(conn, *body, attempts);
    } catch (const error& e) {
      self->stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
      self->send_error(conn, error_code_for(e), e.what());
    } catch (const std::exception& e) {
      // Nothing may escape a worker untyped; map to the generic class.
      self->stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
      self->send_error(conn, ErrorCode::kError,
                       std::string("internal: ") + e.what());
    }
  };
  j.shed = [self, conn](const std::string& why) {
    self->stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    self->send_error(conn, ErrorCode::kOverloaded, why);
  };
  queue_->push(std::move(j));
}

void Server::worker_loop() {
  while (auto job = queue_->pop()) job->run();
}

// ------------------------------------------------------------ requests ----

bool Server::requeue_backoff(const std::shared_ptr<Connection>& conn,
                             MsgType type, const std::string& payload,
                             int priority, int attempts) {
  if (attempts >= opt_.max_retries) {
    send_error(conn, ErrorCode::kOverloaded,
               "engine busy after " + std::to_string(attempts) +
                   " retries — back off and retry");
    stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const double delay =
      opt_.backoff_base_seconds * static_cast<double>(1 << attempts);
  stats_->retries.fetch_add(1, std::memory_order_relaxed);
  BSPMV_OBS_COUNT("serve.retries", 1);
  std::string copy = payload;
  enqueue(conn, type, std::move(copy), priority, attempts + 1,
          steady_seconds() + delay);
  return true;
}

void Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           const std::string& payload, int attempts) {
  Timer t;
  const SubmitRequest req = SubmitRequest::decode(payload);
  const Csr<double> a = req.to_csr();
  const MatrixKey key = matrix_key(a);

  if (auto hit = cache_->find(key)) {
    SubmitReply rep;
    rep.fingerprint = key.hash;
    rep.format_id = hit->format_id;
    rep.fallback = hit->fallback;
    rep.cached = true;
    rep.prepare_seconds = t.elapsed();
    send_reply(conn, MsgType::kSubmitOk, rep.encode());
    stats_->requests_ok.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Engine-busy path: someone else is already preparing this matrix —
  // requeue with backoff; the retry will hit the cache.
  {
    std::lock_guard<std::mutex> lock(preparing_mu_);
    if (!preparing_.insert(key.hash).second) {
      requeue_backoff(conn, MsgType::kSubmit, payload, 1, attempts);
      return;
    }
  }
  std::shared_ptr<const CachedEngine> entry;
  try {
    entry = prepare_and_cache(a, key, payload);
  } catch (...) {
    std::lock_guard<std::mutex> lock(preparing_mu_);
    preparing_.erase(key.hash);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(preparing_mu_);
    preparing_.erase(key.hash);
  }

  SubmitReply rep;
  rep.fingerprint = key.hash;
  rep.format_id = entry->format_id;
  rep.fallback = entry->fallback;
  rep.cached = false;
  rep.prepare_seconds = t.elapsed();
  send_reply(conn, MsgType::kSubmitOk, rep.encode());
  stats_->requests_ok.fetch_add(1, std::memory_order_relaxed);
  record_success();
}

std::shared_ptr<const CachedEngine> Server::prepare_and_cache(
    const Csr<double>& a, const MatrixKey& key,
    const std::string& submit_payload) {
  BSPMV_OBS_SPAN("serve/prepare");
  Timer t;
  const int level = degrade_level();
  if (level > 0) BSPMV_OBS_COUNT("serve.degraded_prepares", 1);
  const int threads = level >= 2 ? 0 : opt_.engine_threads;

  std::vector<Candidate> cands;
  if (level >= 2) {
    cands.push_back(Candidate{});  // scalar CSR only
  } else {
    for (const Candidate& c : model_candidates(opt_.simd && level == 0))
      if (threads == 0 || parallel_kind(c.kind)) cands.push_back(c);
  }

  // Measured selection (the paper's empirical ground truth, eq. vs §V):
  // convert + briefly time each candidate, keep the fastest. Bounded by
  // the prepare deadline; conversion failures (ConversionGuard budget,
  // unsupported combos) skip the candidate. On any exhaustion the
  // ranked list below still guarantees a runnable engine.
  std::vector<Candidate> ranked = cands;
  if (opt_.prepare_measure && level == 0 && cands.size() > 1) {
    RunControl control;
    control.set_deadline(opt_.prepare_deadline_seconds);
    control.set_watchdog_poll(opt_.watchdog_poll_seconds);
    double best = std::numeric_limits<double>::infinity();
    Candidate chosen = cands.front();
    for (const Candidate& c : cands) {
      try {
        control.check();
      } catch (const execution_error&) {
        BSPMV_OBS_COUNT("serve.prepare_deadline_cutoffs", 1);
        break;  // keep the best seen so far
      }
      std::string reason;
      auto f = try_convert(a, c, &reason);
      if (!f) continue;
      try {
        MeasureOptions mopt;
        mopt.iterations = opt_.prepare_iterations;
        mopt.reps = 1;
        mopt.warmup = 1;
        mopt.control = &control;
        const double s = SpmvEngine<double>::borrow(*f, 0).measure(mopt);
        if (s < best) {
          best = s;
          chosen = c;
        }
      } catch (const execution_error&) {
        BSPMV_OBS_COUNT("serve.prepare_deadline_cutoffs", 1);
        break;
      } catch (const error&) {
        continue;  // candidate misbehaved; selection moves on
      }
    }
    ranked.assign(1, chosen);
  }

  // try_prepare walks `ranked` and falls back to scalar CSR if every
  // candidate fails — rung 2 of the degradation ladder (a conversion
  // that trips the ConversionGuard budget lands here).
  SpmvEngine<double> engine =
      SpmvEngine<double>::prepare(a, ranked, threads, opt_.executor);
  CachedEngine built{key,
                     std::move(engine),
                     /*format_id=*/"",
                     /*fallback=*/false,
                     /*degraded=*/level > 0,
                     /*bytes=*/0,
                     /*prepare_seconds=*/0.0};
  built.format_id = built.engine.format().candidate().id();
  built.fallback = built.engine.prepared() && built.engine.prepared()->fallback;
  built.bytes = built.engine.format().working_set_bytes();
  built.prepare_seconds = t.elapsed();
  auto entry = std::make_shared<const CachedEngine>(std::move(built));
  cache_->insert(entry);

  if (!opt_.spool_dir.empty()) {
    try {
      atomic_write_file(spool_path(key.hash), submit_payload,
                        /*with_checksum=*/true);
    } catch (const error& e) {
      // Persistence must never take down serving; the matrix simply
      // won't survive a restart.
      stats_->spool_errors.fetch_add(1, std::memory_order_relaxed);
      BSPMV_OBS_COUNT("serve.spool_errors", 1);
      std::fprintf(stderr, "bspmv_serve: spool write failed: %s\n",
                   e.what());
    }
  }
  return entry;
}

std::string Server::spool_path(std::uint64_t hash) const {
  return opt_.spool_dir + "/" + hash_hex(hash) + ".mat";
}

std::shared_ptr<const CachedEngine> Server::load_from_spool(
    std::uint64_t hash) {
  if (opt_.spool_dir.empty()) return nullptr;
  const std::string path = spool_path(hash);
  std::optional<std::string> payload;
  try {
    payload = read_file_if_exists(path);  // verifies the CRC trailer
  } catch (const error& e) {
    // Torn or corrupt spool file: warn-and-regenerate policy — drop it
    // and treat as a miss (the client resubmits).
    stats_->spool_errors.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.spool_errors", 1);
    std::fprintf(stderr, "bspmv_serve: dropping corrupt spool file %s: %s\n",
                 path.c_str(), e.what());
    ::unlink(path.c_str());
    return nullptr;
  }
  if (!payload) return nullptr;
  try {
    const SubmitRequest req = SubmitRequest::decode(*payload);
    const Csr<double> a = req.to_csr();
    const MatrixKey key = matrix_key(a);
    if (key.hash != hash) {
      throw validation_error("spool content does not match its filename");
    }
    stats_->spool_loads.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.spool_loads", 1);
    return prepare_and_cache(a, key, *payload);
  } catch (const error& e) {
    stats_->spool_errors.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.spool_errors", 1);
    std::fprintf(stderr, "bspmv_serve: dropping bad spool file %s: %s\n",
                 path.c_str(), e.what());
    ::unlink(path.c_str());
    return nullptr;
  }
}

void Server::handle_spmv(const std::shared_ptr<Connection>& conn,
                         const std::string& payload, int attempts) {
  BSPMV_OBS_SPAN("serve/spmv");
  Timer t;
  SpmvRequest req = SpmvRequest::decode(payload);

  std::shared_ptr<const CachedEngine> entry = cache_->find(req.fingerprint);
  if (!entry) {
    // Crash recovery: the engine may be rebuildable from the spool.
    // Respect the preparing set — if another worker is already on it,
    // requeue instead of preparing twice.
    {
      std::lock_guard<std::mutex> lock(preparing_mu_);
      if (preparing_.count(req.fingerprint)) {
        requeue_backoff(conn, MsgType::kSpmv, payload,
                        static_cast<int>(req.priority), attempts);
        return;
      }
      preparing_.insert(req.fingerprint);
    }
    try {
      entry = load_from_spool(req.fingerprint);
    } catch (...) {
      std::lock_guard<std::mutex> lock(preparing_mu_);
      preparing_.erase(req.fingerprint);
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(preparing_mu_);
      preparing_.erase(req.fingerprint);
    }
    if (!entry) {
      send_error(conn, ErrorCode::kUnknownMatrix,
                 "no engine cached under fingerprint " +
                     hash_hex(req.fingerprint));
      stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  if (static_cast<std::int64_t>(req.x.size()) != entry->key.cols) {
    throw invalid_argument_error(
        "spmv: x has " + std::to_string(req.x.size()) +
        " entries, matrix wants " + std::to_string(entry->key.cols));
  }

  if (opt_.max_batch > 1) {
    spmv_batched(conn, std::move(req), std::move(entry), t);
    return;
  }

  // Per-request deadline budget carved from RunControl: the requested
  // budget (or the server default), capped by the server maximum. All
  // run state lives in one shared block so the asynchronous completion
  // path can outlive this worker.
  auto st = std::make_shared<AsyncSpmv>();
  st->entry = std::move(entry);
  st->req = std::move(req);
  st->t = t;
  double budget = st->req.deadline_seconds > 0
                      ? st->req.deadline_seconds
                      : opt_.default_deadline_seconds;
  if (budget > 0) {
    budget = std::min(budget, opt_.max_deadline_seconds);
    st->control.set_deadline(budget);
  }
  st->control.set_stall_timeout(opt_.stall_timeout_seconds);
  st->control.set_watchdog_poll(opt_.watchdog_poll_seconds);
  st->watchdog.emplace(st->control);
  st->rep.y.resize(static_cast<std::size_t>(st->entry->key.rows));

  // Input scan happens before submission either way (the output scan is
  // finish_spmv's job, after the run completed).
  if (st->req.check_numerics)
    check_finite("run: input vector x", st->req.x.data(), st->req.x.size());

  if (st->entry->engine.async_capable()) {
    // Task-graph plan: submit the graph and return this worker to the
    // pool immediately; the reply is sent from the completion callback
    // on a task-pool worker (StarPU-style asynchronous execution).
    async_inflight_.fetch_add(1, std::memory_order_acq_rel);
    BSPMV_OBS_COUNT("serve.async_submitted", 1);
    auto self = this;
    auto conn_ref = conn;
    st->entry->engine.run_async(
        st->req.x.data(), st->rep.y.data(), &st->control,
        [self, conn_ref, st](std::exception_ptr err) {
          self->finish_spmv(conn_ref, st, err);
          {
            std::lock_guard<std::mutex> lock(self->conns_mu_);
            self->async_inflight_.fetch_sub(1, std::memory_order_acq_rel);
          }
          self->conns_cv_.notify_all();
        });
    return;
  }

  // Bulk/plain plan: synchronous run on this worker, completed through
  // the same finish path as the asynchronous case.
  std::exception_ptr err;
  try {
    st->entry->engine.run(st->req.x.data(), st->rep.y.data(), &st->control,
                          false);
  } catch (...) {
    err = std::current_exception();
  }
  finish_spmv(conn, st, err);
}

void Server::finish_spmv(const std::shared_ptr<Connection>& conn,
                         const std::shared_ptr<AsyncSpmv>& st,
                         std::exception_ptr err) {
  try {
    if (err) std::rethrow_exception(err);
    st->watchdog.reset();  // retire the deadline thread before replying
    if (st->req.check_numerics)
      check_finite("run: output vector y", st->rep.y.data(),
                   st->rep.y.size());
    st->rep.server_seconds = st->t.elapsed();
    st->rep.degraded = st->entry->degraded || degrade_level() > 0;
    if (st->rep.degraded)
      stats_->degraded_served.fetch_add(1, std::memory_order_relaxed);
    send_reply(conn, MsgType::kSpmvOk, st->rep.encode());
    stats_->requests_ok.fetch_add(1, std::memory_order_relaxed);
    record_success();
    return;
  } catch (const timeout_error& e) {
    if (st->control.reason() == AbortReason::kStalled) {
      stats_->stalls.fetch_add(1, std::memory_order_relaxed);
      record_stall();
    }
    stats_->timeouts.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.timeouts", 1);
    stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, error_code_for(e), e.what());
  } catch (const numerical_error& e) {
    stats_->numerical.fetch_add(1, std::memory_order_relaxed);
    BSPMV_OBS_COUNT("serve.numerical", 1);
    stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, error_code_for(e), e.what());
  } catch (const error& e) {
    stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, error_code_for(e), e.what());
  } catch (const std::exception& e) {
    stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, ErrorCode::kError, std::string("internal: ") + e.what());
  }
}

void Server::spmv_batched(const std::shared_ptr<Connection>& conn,
                          SpmvRequest&& req,
                          std::shared_ptr<const CachedEngine> entry,
                          Timer t) {
  const std::uint64_t fp = req.fingerprint;
  std::shared_ptr<SpmmBatch> batch;
  {
    std::lock_guard<std::mutex> lock(batches_mu_);
    auto& slot = batches_[fp];
    if (!slot) slot = std::make_shared<SpmmBatch>();
    batch = slot;
  }
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    batch->waiting.push_back(SpmmBatch::Pending{conn, std::move(req), t});
    if (batch->leader_active) {
      // A leader is already draining this fingerprint; it will pick this
      // request up before retiring, so this worker is free again.
      return;
    }
    batch->leader_active = true;
  }

  // Leader: drain in rounds until the box stays empty. The emptiness
  // re-check under the lock before clearing leader_active closes the
  // window where a straggler enqueued after the previous round.
  for (;;) {
    std::vector<SpmmBatch::Pending> take;
    {
      std::lock_guard<std::mutex> lock(batch->mu);
      if (batch->waiting.empty()) {
        batch->leader_active = false;
        break;
      }
      const std::size_t n =
          std::min(batch->waiting.size(),
                   static_cast<std::size_t>(opt_.max_batch));
      take.assign(std::make_move_iterator(batch->waiting.begin()),
                  std::make_move_iterator(batch->waiting.begin() +
                                          static_cast<std::ptrdiff_t>(n)));
      batch->waiting.erase(batch->waiting.begin(),
                           batch->waiting.begin() +
                               static_cast<std::ptrdiff_t>(n));
    }

    const int m = static_cast<int>(take.size());
    const auto rows = static_cast<std::size_t>(entry->key.rows);
    const auto cols = static_cast<std::size_t>(entry->key.cols);

    // One RunControl for the round: the tightest member budget bounds the
    // whole batch (a batch must never outlive any member's deadline).
    RunControl control;
    double budget = 0.0;
    bool check_numerics = false;
    for (const auto& p : take) {
      const double b = p.req.deadline_seconds > 0
                           ? p.req.deadline_seconds
                           : opt_.default_deadline_seconds;
      if (b > 0) budget = budget > 0 ? std::min(budget, b) : b;
      check_numerics = check_numerics || p.req.check_numerics;
    }
    if (budget > 0) {
      budget = std::min(budget, opt_.max_deadline_seconds);
      control.set_deadline(budget);
    }
    control.set_stall_timeout(opt_.stall_timeout_seconds);
    control.set_watchdog_poll(opt_.watchdog_poll_seconds);
    Watchdog watchdog(control);

    const auto fail_all = [&](ErrorCode code, const std::string& message) {
      for (const auto& p : take) {
        send_error(p.conn, code, message);
        stats_->requests_error.fetch_add(1, std::memory_order_relaxed);
      }
    };

    try {
      std::vector<SpmvReply> reps(take.size());
      if (m == 1) {
        // Lone request in the round: the plain single-vector path.
        reps[0].y.resize(rows);
        entry->engine.run(take[0].req.x.data(), reps[0].y.data(), &control,
                          check_numerics);
      } else {
        stats_->batch_rounds.fetch_add(1, std::memory_order_relaxed);
        stats_->batched_spmvs.fetch_add(static_cast<std::uint64_t>(m),
                                        std::memory_order_relaxed);
        BSPMV_OBS_COUNT("serve.batch_rounds", 1);
        BSPMV_OBS_COUNT("serve.batched_spmvs", m);
        // Gather the members' vectors into one row-major (interleaved)
        // block, stream the matrix once for all of them, and scatter the
        // outputs back per request.
        aligned_vector<double> X(cols * take.size());
        aligned_vector<double> Y(rows * take.size());
        for (std::size_t j = 0; j < take.size(); ++j) {
          const auto& x = take[j].req.x;
          for (std::size_t i = 0; i < cols; ++i)
            X[i * take.size() + j] = x[i];
        }
        entry->engine.run_multi(X.data(), Y.data(), m, Layout::kRowMajor,
                                &control, check_numerics);
        for (std::size_t j = 0; j < take.size(); ++j) {
          reps[j].y.resize(rows);
          for (std::size_t i = 0; i < rows; ++i)
            reps[j].y[i] = Y[i * take.size() + j];
        }
      }
      const bool degraded = entry->degraded || degrade_level() > 0;
      for (std::size_t j = 0; j < take.size(); ++j) {
        reps[j].server_seconds = take[j].timer.elapsed();
        reps[j].degraded = degraded;
        if (degraded)
          stats_->degraded_served.fetch_add(1, std::memory_order_relaxed);
        send_reply(take[j].conn, MsgType::kSpmvOk, reps[j].encode());
        stats_->requests_ok.fetch_add(1, std::memory_order_relaxed);
        record_success();
      }
    } catch (const timeout_error& e) {
      if (control.reason() == AbortReason::kStalled) {
        stats_->stalls.fetch_add(1, std::memory_order_relaxed);
        record_stall();
      }
      stats_->timeouts.fetch_add(1, std::memory_order_relaxed);
      BSPMV_OBS_COUNT("serve.timeouts", 1);
      fail_all(error_code_for(e), e.what());
    } catch (const numerical_error& e) {
      stats_->numerical.fetch_add(1, std::memory_order_relaxed);
      BSPMV_OBS_COUNT("serve.numerical", 1);
      fail_all(error_code_for(e), e.what());
    } catch (const error& e) {
      fail_all(error_code_for(e), e.what());
    } catch (const std::exception& e) {
      fail_all(ErrorCode::kError, std::string("internal: ") + e.what());
    }
  }

  // Retire the box when idle so the map only tracks live fingerprints. A
  // racing enqueue that became leader in the meantime keeps it alive.
  {
    std::lock_guard<std::mutex> lock(batches_mu_);
    auto it = batches_.find(fp);
    if (it != batches_.end() && it->second == batch) {
      std::lock_guard<std::mutex> inner(batch->mu);
      if (batch->waiting.empty() && !batch->leader_active)
        batches_.erase(it);
    }
  }
}

// ------------------------------------------------------- degradation ----

int Server::degrade_level() const {
  const int strikes = stall_strikes_.load(std::memory_order_relaxed);
  if (opt_.stall_strikes_to_degrade <= 0) return 0;
  return std::min(2, strikes / opt_.stall_strikes_to_degrade);
}

void Server::record_stall() {
  stall_strikes_.fetch_add(1, std::memory_order_relaxed);
  BSPMV_OBS_COUNT("serve.stall_strikes", 1);
}

void Server::record_success() {
  // Climb back down one strike per healthy request; the ladder heals as
  // fast as it degraded.
  int s = stall_strikes_.load(std::memory_order_relaxed);
  while (s > 0 && !stall_strikes_.compare_exchange_weak(
                      s, s - 1, std::memory_order_relaxed)) {
  }
}

// ------------------------------------------------------------- replies ----

void Server::send_reply(const std::shared_ptr<Connection>& conn,
                        MsgType type, const std::string& payload) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    write_frame(conn->fd, type, payload, opt_.wire);
  } catch (const error&) {
    conn->open.store(false, std::memory_order_release);
  }
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        ErrorCode code, const std::string& message) {
  ErrorReply rep;
  rep.code = code;
  rep.message = message;
  BSPMV_OBS_COUNT("serve.errors", 1);
  send_reply(conn, MsgType::kError, rep.encode());
}

// --------------------------------------------------------------- stats ----

Json Server::stats_json() const {
  const EngineCache::Stats cs = cache_->stats();
  Json::Object cache;
  cache["hits"] = cs.hits;
  cache["misses"] = cs.misses;
  cache["evictions"] = cs.evictions;
  cache["collisions"] = cs.collisions;
  cache["entries"] = static_cast<std::uint64_t>(cs.entries);
  cache["bytes"] = static_cast<std::uint64_t>(cs.bytes);
  cache["budget_bytes"] = static_cast<std::uint64_t>(cs.budget_bytes);

  Json::Object req;
  req["total"] = stats_->requests_total.load();
  req["ok"] = stats_->requests_ok.load();
  req["error"] = stats_->requests_error.load();
  req["submits"] = stats_->submits.load();
  req["spmvs"] = stats_->spmvs.load();
  req["malformed"] = stats_->malformed.load();
  req["read_timeouts"] = stats_->read_timeouts.load();
  req["retries"] = stats_->retries.load();
  req["timeouts"] = stats_->timeouts.load();
  req["stalls"] = stats_->stalls.load();
  req["numerical"] = stats_->numerical.load();
  req["degraded_served"] = stats_->degraded_served.load();
  req["batch_rounds"] = stats_->batch_rounds.load();
  req["batched_spmvs"] = stats_->batched_spmvs.load();

  Json::Object spool;
  spool["loads"] = stats_->spool_loads.load();
  spool["errors"] = stats_->spool_errors.load();
  spool["dir"] = opt_.spool_dir;

  Json::Object o;
  o["kind"] = "bspmv_serve_stats";
  o["schema_version"] = 1;
  o["cache"] = std::move(cache);
  o["requests"] = std::move(req);
  o["spool"] = std::move(spool);
  o["queue_depth"] = static_cast<std::uint64_t>(queue_->size());
  o["queue_capacity"] = static_cast<std::uint64_t>(queue_->capacity());
  o["shed"] = queue_->shed_count();
  o["executor"] = backend_name(opt_.executor);
  o["async_inflight"] = static_cast<std::uint64_t>(
      std::max(0, async_inflight_.load(std::memory_order_relaxed)));
  o["degrade_level"] = degrade_level();
  o["connections"] = stats_->connections.load();
  o["workers"] = opt_.workers;
  o["engine_threads"] = opt_.engine_threads;
  o["max_batch"] = opt_.max_batch;
  return Json(std::move(o));
}

}  // namespace bspmv::serve
