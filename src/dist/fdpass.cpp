#include "src/dist/fdpass.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "src/util/errors.hpp"

namespace bspmv::dist {

void send_fd(int sock, int fd) {
  char byte = 'F';
  struct iovec iov;
  iov.iov_base = &byte;
  iov.iov_len = 1;

  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  std::memset(cbuf, 0, sizeof(cbuf));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);

  struct cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));

  for (;;) {
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n == 1) return;
    if (n < 0 && errno == EINTR) continue;
    throw io_error(std::string("send_fd failed: ") +
                   (n < 0 ? std::strerror(errno) : "short write"));
  }
}

int recv_fd(int sock, double timeout_seconds) {
  struct pollfd pfd;
  pfd.fd = sock;
  pfd.events = POLLIN;
  const int timeout_ms =
      timeout_seconds > 0 ? static_cast<int>(timeout_seconds * 1000.0) : -1;
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0)
      throw timeout_error("recv_fd timed out waiting for a peer channel");
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("recv_fd poll failed: ") +
                     std::strerror(errno));
    }
    break;
  }

  char byte = 0;
  struct iovec iov;
  iov.iov_base = &byte;
  iov.iov_len = 1;

  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  std::memset(cbuf, 0, sizeof(cbuf));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);

  for (;;) {
    const ssize_t n = ::recvmsg(sock, &msg, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw io_error(std::string("recv_fd failed: ") +
                     (n < 0 ? std::strerror(errno) : "peer closed"));
    break;
  }

  for (struct cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS &&
        cm->cmsg_len == CMSG_LEN(sizeof(int))) {
      int fd = -1;
      std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
      if (fd >= 0) return fd;
    }
  }
  throw io_error("recv_fd: carrier message arrived without a descriptor");
}

std::uint64_t drain_socket(int fd) noexcept {
  std::uint64_t total = 0;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      total += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return total;  // EAGAIN (empty), EOF, or error: nothing more to read
  }
}

}  // namespace bspmv::dist
