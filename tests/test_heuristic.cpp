// Tests for the OSKI/SPARSITY-style BCSR fill heuristic (§IV comparator).
#include <gtest/gtest.h>

#include "src/core/heuristic.hpp"
#include "src/formats/stats.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;
using bspmv::testing::synthetic_profile;

TEST(FillEstimate, ExactScanMatchesStats) {
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(70, 62, 3, 0.3, 0.8, 1));
  for (BlockShape shape : bcsr_shapes()) {
    const BlockStats st = bcsr_stats(a, shape);
    const double exact_fill =
        static_cast<double>(st.stored_values) / static_cast<double>(a.nnz());
    EXPECT_NEAR(estimate_bcsr_fill(a, shape, 1.0), exact_fill, 1e-12)
        << shape.to_string();
  }
}

TEST(FillEstimate, SamplingApproximatesExact) {
  // Large homogeneous matrix: a 10% sample must land close to the truth.
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(1200, 1200, 3, 0.1, 0.85, 2));
  for (BlockShape shape : {BlockShape{3, 3}, BlockShape{2, 2}}) {
    const double exact = estimate_bcsr_fill(a, shape, 1.0);
    const double sampled = estimate_bcsr_fill(a, shape, 0.1, 7);
    EXPECT_NEAR(sampled, exact, 0.15 * exact) << shape.to_string();
  }
}

TEST(FillEstimate, FillIsAtLeastOne) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(60, 60, 0.05, 3));
  for (BlockShape shape : bcsr_shapes())
    EXPECT_GE(estimate_bcsr_fill(a, shape, 1.0), 1.0) << shape.to_string();
}

TEST(FillEstimate, RejectsBadArguments) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(8, 8, 0.5, 1));
  EXPECT_THROW(estimate_bcsr_fill(a, BlockShape{2, 2}, 0.0),
               invalid_argument_error);
  EXPECT_THROW(estimate_bcsr_fill(a, BlockShape{2, 2}, 1.5),
               invalid_argument_error);
  EXPECT_THROW(estimate_bcsr_fill(a, BlockShape{0, 2}, 1.0),
               invalid_argument_error);
}

TEST(FillEstimate, EmptyMatrixIsNeutral) {
  const Csr<double> a = Csr<double>::from_coo(Coo<double>(10, 10));
  EXPECT_DOUBLE_EQ(estimate_bcsr_fill(a, BlockShape{2, 2}, 1.0), 1.0);
}

TEST(Heuristic, PicksBlockedShapeOnBlockyMatrix) {
  // Uniform block times + a 4x4-blocky matrix: the heuristic should pick
  // a blocked shape (fill ~1 beats CSR on the tb/(r*c) economics).
  const MachineProfile p = synthetic_profile(10e9, 2e-9, 0.3);
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(128, 128, 4, 0.4, 1.01, 5));
  const HeuristicSelection sel = select_bcsr_heuristic(a, p, 1.0);
  EXPECT_EQ(sel.candidate.kind, FormatKind::kBcsr);
  EXPECT_GT(sel.candidate.shape.elems(), 1);
  EXPECT_LT(sel.est_fill, 1.2);
  EXPECT_GT(sel.predicted_seconds, 0.0);
}

TEST(Heuristic, FallsBackToCsrOnHopelessMatrix) {
  // Scattered singletons: every blocked shape has fill ~= r*c, so the
  // heuristic's time estimate keeps CSR in front.
  Coo<double> coo(256, 256);
  for (index_t i = 0; i < 256; i += 2)
    coo.add(i, (i * 37) % 256, 1.0);
  const MachineProfile p = synthetic_profile(10e9, 2e-9, 0.3);
  const HeuristicSelection sel =
      select_bcsr_heuristic(Csr<double>::from_coo(coo), p, 1.0);
  EXPECT_EQ(sel.candidate.kind, FormatKind::kCsr);
}

TEST(Heuristic, ScalarOnlyModeRestrictsImpl) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(64, 64, 2, 0.4, 0.9, 6));
  const HeuristicSelection sel =
      select_bcsr_heuristic(a, p, 1.0, /*include_simd=*/false);
  EXPECT_EQ(sel.candidate.impl, Impl::kScalar);
}

TEST(Heuristic, DeterministicPerSeed) {
  const MachineProfile p = synthetic_profile();
  const Csr<double> a = Csr<double>::from_coo(
      random_blocky_coo<double>(300, 300, 3, 0.2, 0.8, 7));
  const auto s1 = select_bcsr_heuristic(a, p, 0.2, true, 42);
  const auto s2 = select_bcsr_heuristic(a, p, 0.2, true, 42);
  EXPECT_EQ(s1.candidate, s2.candidate);
  EXPECT_DOUBLE_EQ(s1.predicted_seconds, s2.predicted_seconds);
}

}  // namespace
}  // namespace bspmv
