// Typed error taxonomy for the whole library.
//
// Every failure the library can surface derives from bspmv::error, so a
// caller that must never crash (the executor's try_prepare path, the
// bench harness, a long-running service loop) can catch one type and
// decide between "reject this input" and "degrade to the CSR fallback":
//
//   error
//   ├── invalid_argument_error   caller broke a documented precondition
//   ├── parse_error              malformed external text (MM files, JSON)
//   ├── validation_error         a format's structural invariants are broken
//   └── conversion_error         a format conversion cannot be completed
//       └── resource_limit_error a ConversionGuard budget was exceeded
//                                (padding fill blowup, memory cap, index
//                                width overflow) — the matrix itself is
//                                fine, only this candidate is infeasible
#pragma once

#include <stdexcept>
#include <string>

namespace bspmv {

/// Root of the typed error taxonomy; everything the library throws on
/// purpose derives from this.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a matrix or format argument violates a documented
/// precondition (BSPMV_CHECK).
class invalid_argument_error : public error {
 public:
  using error::error;
};

/// Thrown when an input file (e.g. Matrix Market or JSON) is malformed.
class parse_error : public error {
 public:
  using error::error;
};

/// Thrown by validate() when a materialised format violates a structural
/// invariant (non-monotone row pointers, out-of-range indices, array size
/// mismatches) — i.e. the object is corrupt, not merely unusual.
class validation_error : public error {
 public:
  using error::error;
};

/// Thrown when a format conversion cannot be completed for this input.
class conversion_error : public error {
 public:
  using error::error;
};

/// Thrown by ConversionGuard when a conversion would exceed its memory
/// budget, padding fill-ratio cap, or the index type's range. Callers
/// treat this as "skip the candidate", not "reject the matrix".
class resource_limit_error : public conversion_error {
 public:
  using conversion_error::conversion_error;
};

}  // namespace bspmv
