// VBR SpMV kernels (extension format).
#pragma once

#include "src/formats/vbr.hpp"

namespace bspmv {

/// y += A·x over the variable 2-D blocks; block dimensions come from the
/// row/column partition vectors, so the inner loops are generic.
template <class V>
void vbr_spmv_scalar(const Vbr<V>& a, const V* x, V* y);

/// y += A·x with SIMD along each block row segment (contiguous val and x).
template <class V>
void vbr_spmv_simd(const Vbr<V>& a, const V* x, V* y);

extern template void vbr_spmv_scalar(const Vbr<float>&, const float*, float*);
extern template void vbr_spmv_scalar(const Vbr<double>&, const double*,
                                     double*);
extern template void vbr_spmv_simd(const Vbr<float>&, const float*, float*);
extern template void vbr_spmv_simd(const Vbr<double>&, const double*, double*);

}  // namespace bspmv
