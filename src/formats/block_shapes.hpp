// Enumeration of the block shapes studied in the paper.
//
// §V: "For the fixed size blocking methods, we used blocks with up to eight
// elements". For BCSR that is every r×c with r·c ≤ 8 (20 shapes); for BCSD
// every diagonal length b ∈ {2,…,8}.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace bspmv {

/// A two-dimensional BCSR block shape.
struct BlockShape {
  int r = 1;
  int c = 1;

  int elems() const { return r * c; }
  std::string to_string() const {
    return std::to_string(r) + "x" + std::to_string(c);
  }
  friend bool operator==(const BlockShape&, const BlockShape&) = default;
};

inline constexpr int kMaxBlockElems = 8;

/// All BCSR shapes with r·c ≤ kMaxBlockElems, excluding 1×1 (that is CSR).
inline const std::vector<BlockShape>& bcsr_shapes() {
  static const std::vector<BlockShape> shapes = [] {
    std::vector<BlockShape> s;
    for (int r = 1; r <= kMaxBlockElems; ++r)
      for (int c = 1; c <= kMaxBlockElems; ++c)
        if (r * c <= kMaxBlockElems && !(r == 1 && c == 1))
          s.push_back(BlockShape{r, c});
    return s;
  }();
  return shapes;
}

/// All BCSD diagonal block sizes b ∈ {2,…,8}.
inline const std::vector<int>& bcsd_sizes() {
  static const std::vector<int> sizes = {2, 3, 4, 5, 6, 7, 8};
  return sizes;
}

}  // namespace bspmv
