// google-benchmark microbenchmarks of the individual SpMV kernels on a
// fixed FEM-like matrix: per-format, per-shape, scalar vs SIMD. These are
// the per-kernel numbers behind the t_b profile.
#include <benchmark/benchmark.h>

#include "src/core/executor.hpp"
#include "src/gen/generators.hpp"
#include "src/util/prng.hpp"

namespace bspmv {
namespace {

// One shared mid-size matrix (L2-resident-ish) so the microbenches finish
// quickly while still exercising real block structure.
const Csr<double>& shared_matrix() {
  static const Csr<double> a = Csr<double>::from_coo(
      gen_blocked_band<double>(8000, 3, 600, 5, 0.8, 0xbeef));
  return a;
}

void run_candidate(benchmark::State& state, const Candidate& c) {
  const Csr<double>& a = shared_matrix();
  const AnyFormat<double> f = AnyFormat<double>::convert(a, c);
  aligned_vector<double> x(static_cast<std::size_t>(a.cols()));
  Xoshiro256 rng(3);
  for (auto& e : x) e = rng.uniform() - 0.5;
  aligned_vector<double> y(static_cast<std::size_t>(a.rows()), 0.0);

  for (auto _ : state) {
    f.run(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  state.counters["ws_MiB"] =
      static_cast<double>(f.working_set_bytes()) / (1024.0 * 1024.0);
}

void register_all() {
  for (const Candidate& c : bench_candidates(true, true)) {
    benchmark::RegisterBenchmark(c.id().c_str(),
                                 [c](benchmark::State& s) {
                                   run_candidate(s, c);
                                 })
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.05);
  }
}

}  // namespace
}  // namespace bspmv

int main(int argc, char** argv) {
  bspmv::register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
