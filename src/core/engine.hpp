// SpmvEngine: the prepare-once / run-many facade over candidate
// materialisation and execution.
//
// Conversion (and, for threaded execution, partition planning) happens
// once at construction; run() and measure() then execute y = A·x as many
// times as needed with zero per-call setup. The thread count selects the
// execution plan:
//
//   threads == 0   single-threaded AnyFormat kernel (any format)
//   threads >= 1   ThreadedSpmv partition plan with that many OpenMP
//                  threads — only for the formats the paper parallelises
//                  (§V-A: CSR/BCSR/BCSD and the decomposed variants);
//                  other formats throw invalid_argument_error.
//
// Note `threads == 1` still runs the threaded driver (one-thread plan),
// so single-thread baselines exercise the same code path and per-thread
// telemetry as the scaling points, exactly like the paper's Fig. 2.
//
// The measurement loops are instrumented: spans "measure/spmv" (plain
// plan) and "measure/threaded" (threaded plan), plus the per-thread
// "parallel/<fmt>" metrics recorded by ThreadedSpmv itself.
#pragma once

#include <memory>
#include <vector>

#include "src/core/executor.hpp"

namespace bspmv {

template <class V>
class SpmvEngine {
 public:
  /// Fault-tolerant prepare: walk `ranked` through try_prepare (falling
  /// back to scalar CSR if every candidate fails), then build the plan.
  static SpmvEngine prepare(const Csr<V>& a,
                            const std::vector<Candidate>& ranked,
                            int threads = 0);

  /// Single-candidate prepare; conversion failures throw.
  static SpmvEngine prepare(const Csr<V>& a, const Candidate& c,
                            int threads = 0);

  /// Non-owning engine over an already-materialised format; `f` must
  /// outlive the engine.
  static SpmvEngine borrow(const AnyFormat<V>& f, int threads = 0);

  const AnyFormat<V>& format() const { return *fmt_; }
  /// The prepare audit trail (fallback flag + skipped candidates), or
  /// nullptr for borrow() / single-candidate engines.
  const PreparedExecutor<V>* prepared() const { return owned_.get(); }
  int threads() const { return threads_; }

  /// Swap to a new thread count, reusing the already-converted format
  /// (conversion dominates a thread-scaling sweep; Fig. 2).
  void set_threads(int threads);

  /// y = A·x through the current plan.
  void run(const V* x, V* y) const;

  /// Seconds per SpMV the way the paper measures it: repeated consecutive
  /// operations on a random input vector, minimum over reps.
  double measure(const MeasureOptions& opt = {}) const;

 private:
  SpmvEngine() = default;
  void build_plan();

  /// Type-erased threaded execution plan (one ThreadedSpmv<F> behind a
  /// virtual run); absent when threads_ == 0.
  struct Plan {
    virtual ~Plan() = default;
    virtual void run(const V* x, V* y, Impl impl) const = 0;
  };
  template <class F>
  struct TypedPlan;

  std::unique_ptr<PreparedExecutor<V>> owned_;  ///< null when borrowing
  const AnyFormat<V>* fmt_ = nullptr;
  std::unique_ptr<Plan> plan_;
  int threads_ = 0;
};

extern template class SpmvEngine<float>;
extern template class SpmvEngine<double>;

}  // namespace bspmv
