// Matrix Market I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/io/matrix_market.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::random_coo;

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 1 1.5\n"
      "3 4 -2.25\n");
  const Coo<double> coo = parse_matrix_market<double>(in);
  EXPECT_EQ(coo.rows(), 3);
  EXPECT_EQ(coo.cols(), 4);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[0].col, 0);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 1.5);
  EXPECT_EQ(coo.entries()[1].row, 2);
  EXPECT_EQ(coo.entries()[1].col, 3);
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, -2.25);
}

TEST(MatrixMarket, ParsesSymmetricMirrorsOffDiagonals) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 7\n");
  Coo<double> coo = parse_matrix_market<double>(in);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 3u);  // (1,0), (0,1) mirrored, (2,2) not duplicated
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 5.0);  // (0,1)
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, 5.0);  // (1,0)
  EXPECT_DOUBLE_EQ(coo.entries()[2].value, 7.0);  // (2,2)
}

TEST(MatrixMarket, ParsesSkewSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  Coo<double> coo = parse_matrix_market<double>(in);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, -3.0);  // mirrored negated (0,1)
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, 3.0);
}

TEST(MatrixMarket, ParsesPatternAsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const Coo<double> coo = parse_matrix_market<double>(in);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 1.0);
}

TEST(MatrixMarket, ParsesIntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 42\n");
  const Coo<double> coo = parse_matrix_market<double>(in);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 42.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  const char* cases[] = {
      "",                                                    // empty
      "%%WrongBanner matrix coordinate real general\n1 1 0\n",
      "%%MatrixMarket vector coordinate real general\n1 1 0\n",
      "%%MatrixMarket matrix array real general\n1 1\n",
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
      "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
      "%%MatrixMarket matrix coordinate real general\nbroken\n",
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    EXPECT_THROW(parse_matrix_market<double>(in), parse_error) << text;
  }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Coo<double> coo = random_coo<double>(23, 31, 0.15, 77);
  coo.sort_and_combine();
  std::ostringstream out;
  write_matrix_market(coo, out);
  std::istringstream in(out.str());
  Coo<double> back = parse_matrix_market<double>(in);
  back.sort_and_combine();
  ASSERT_EQ(back.nnz(), coo.nnz());
  EXPECT_EQ(back.rows(), coo.rows());
  EXPECT_EQ(back.cols(), coo.cols());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(back.entries()[k].row, coo.entries()[k].row);
    EXPECT_EQ(back.entries()[k].col, coo.entries()[k].col);
    EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
  }
}

TEST(MatrixMarket, FileRoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/bspmv_io_test.mtx";
  Coo<float> coo = random_coo<float>(9, 7, 0.3, 5);
  coo.sort_and_combine();
  write_matrix_market(coo, path);
  Coo<float> back = read_matrix_market<float>(path);
  back.sort_and_combine();
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k)
    EXPECT_FLOAT_EQ(back.entries()[k].value, coo.entries()[k].value);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market<double>("/nonexistent/nope.mtx"),
               parse_error);
}

}  // namespace
}  // namespace bspmv
