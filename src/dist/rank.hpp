// The rank runtime: what one forked child process runs.
//
// A rank receives its shard once (kShard), builds the local/halo column
// split (HaloDec) plus a TaskGraphSpmv over the local submatrix, and
// then serves kDistRun requests: per iteration it posts the halo
// send/recv (HaloExchange), runs the local-columns pass — on a freshly
// constructed TaskPool, never the inherited process-wide one: the
// parent's pool threads do not survive fork — while bytes are in
// flight (overlap) or after the exchange completes (naive), then
// accumulates the halo-columns pass once the halo buffer is full.
//
// rank_main never throws and never returns into the caller's stack
// frames beyond its own: the forked child must _exit() with its return
// value (no atexit handlers, no gtest teardown, no stdio double-flush).
#pragma once

#include <vector>

#include "src/serve/protocol.hpp"

namespace bspmv::dist {

struct RankContext {
  int rank = -1;
  int ctrl_fd = -1;            ///< channel to the driver
  std::vector<int> peer_fds;   ///< by rank; -1 for self / absent
  serve::WireLimits limits;
};

/// Serve the rank protocol until shutdown or error. Takes the context by
/// value: a kPeerUpdate frame (mesh recovery after a peer died) swaps
/// entries of peer_fds in place. Returns the child's exit code: 0 on
/// clean shutdown (kShutdown or driver EOF), 1 after a fatal protocol
/// error (which is first reported to the driver as a kError frame, best
/// effort). A *run* failure — a dead or stalled peer mid-exchange, a
/// corrupt halo frame — is reported the same way but keeps the rank
/// alive and serving: its shard state is intact, and the supervisor will
/// retry the round after healing the mesh.
int rank_main(RankContext ctx) noexcept;

}  // namespace bspmv::dist
