// Cache-line/SIMD aligned storage.
//
// All value and index arrays in the storage formats use aligned_vector so
// vectorised kernels can rely on 64-byte alignment of the array base.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace bspmv {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal standard allocator that over-aligns every allocation to
/// `Alignment` bytes (C++17 aligned operator new).
template <class T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }

  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector with 64-byte aligned storage.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace bspmv
