// Delta-compressed CSR — an extension implementing the *compression*
// optimisation class the paper's introduction cites (Kourtis et al. [10],
// Willcock & Lumsdaine [18]).
//
// The 4-byte col_ind array (≈ half of CSR's working set, §III) is
// replaced by a variable-length byte stream: per row, the first column is
// stored as an absolute LEB128 varint and every subsequent column as the
// varint of its delta to the previous one. Nearly-consecutive columns
// then cost one byte instead of four, trading decode instructions for
// memory traffic — the same bandwidth-vs-compute trade-off the blocked
// formats make, approached from the other side.
//
// Arrays: `val` and `row_ptr` exactly as CSR; `ctl` (the byte stream);
// `ctl_ptr` (n+1 byte offsets into ctl).
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/formats/csr.hpp"

namespace bspmv {

template <class V>
class CsrDelta {
 public:
  CsrDelta() = default;

  static CsrDelta from_csr(const Csr<V>& a);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }
  /// Compressed index bytes (vs 4·nnz for plain CSR).
  std::size_t ctl_bytes() const { return ctl_.size(); }

  const aligned_vector<index_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<index_t>& ctl_ptr() const { return ctl_ptr_; }
  const aligned_vector<std::uint8_t>& ctl() const { return ctl_; }
  const aligned_vector<V>& val() const { return val_; }

  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<index_t> row_ptr_;
  aligned_vector<index_t> ctl_ptr_;
  aligned_vector<std::uint8_t> ctl_;
  aligned_vector<V> val_;
};

/// y += A·x decoding the delta stream on the fly (scalar only: the
/// decode is inherently serial within a row).
template <class V>
void csr_delta_spmv(const CsrDelta<V>& a, const V* x, V* y);

extern template class CsrDelta<float>;
extern template class CsrDelta<double>;
extern template void csr_delta_spmv(const CsrDelta<float>&, const float*,
                                    float*);
extern template void csr_delta_spmv(const CsrDelta<double>&, const double*,
                                    double*);

}  // namespace bspmv
