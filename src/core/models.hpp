// The paper's performance models (§IV) plus the future-work extensions.
//
//   MEM      (eq. 1): t = ws / BW                       [Gropp et al.]
//   MEMCOMP  (eq. 2): t = Σ_i ( ws_i/BW + nb_i·t_b_i )
//   OVERLAP  (eq. 3): t = Σ_i ( ws_i/BW + nof_i·nb_i·t_b_i )
//
// Extensions (§VI future work, built here):
//   MEMLAT: OVERLAP plus a latency term for irregular input-vector
//           accesses — the failure mode the paper diagnoses on matrices
//           #12/#14/#15/#28.
//   predict_multicore: shared-bandwidth multicore adaptation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/core/working_set.hpp"
#include "src/kernels/layout.hpp"
#include "src/parallel/backend.hpp"
#include "src/profile/machine_profile.hpp"

namespace bspmv {

enum class ModelKind { kMem, kMemComp, kOverlap, kMemLat };

const char* model_name(ModelKind kind);

/// Structural irregularity of the input-vector access stream, the extra
/// input of the MEMLAT model (computed once per matrix).
struct IrregularityStats {
  /// Estimated x-vector cache-line fetches that the stride prefetchers
  /// cannot cover (non-sequential line jumps within a row).
  std::size_t irregular_lines = 0;
  /// Size of the input vector in bytes: an irregular access only pays a
  /// memory-latency penalty when x does not fit in the private cache, so
  /// the MEMLAT correction is gated by the fraction of x beyond it.
  std::size_t x_bytes = 0;
  /// Total nonzeros (normalises irregular_lines into a per-access ratio).
  std::size_t nnz = 0;
};

template <class V>
IrregularityStats irregularity_stats(const Csr<V>& a);

/// Predicted execution time (seconds per SpMV) of `cost` under `model`.
/// MEMLAT requires `irr`; the other models ignore it.
double predict(ModelKind model, const CandidateCost& cost,
               const MachineProfile& profile, Precision prec,
               const IrregularityStats* irr = nullptr);

/// Convenience wrappers for the three paper models.
double predict_mem(const CandidateCost& cost, const MachineProfile& profile);
double predict_memcomp(const CandidateCost& cost,
                       const MachineProfile& profile, Precision prec);
double predict_overlap(const CandidateCost& cost,
                       const MachineProfile& profile, Precision prec);

/// Multicore extension: computations parallelise across `threads` while
/// the memory streams share the machine's bandwidth.
double predict_multicore(ModelKind model, const CandidateCost& cost,
                         const MachineProfile& profile, Precision prec,
                         int threads);

/// Scheduling-overhead inputs of predict_parallel, derived purely from
/// the §V-A partition weights of one pass (stored values incl. padding
/// per granule) — no timing required.
struct ParallelOverhead {
  /// Static-partition load imbalance of the bulk-synchronous backend:
  /// heaviest thread share over the ideal share, minus one (0 = perfectly
  /// balanced; the barrier makes every SpMV pay this fraction).
  double bulk_imbalance = 0.0;
  /// Straggler bound of the work-stealing backend: with the matrix
  /// over-decomposed into threads×tasks_per_thread weight-balanced
  /// tasks, the classic steal-scheduling makespan bound is
  /// total/threads + max_task, so the excess fraction is
  /// max_task/(total/threads). Much smaller than bulk_imbalance on
  /// skewed matrices, slightly above zero on balanced ones.
  double task_imbalance = 0.0;
  /// Per-SpMV scheduling cost of the task backend (batch submission,
  /// claims and expected steals), linear in the task count.
  double steal_overhead_seconds = 0.0;
};

/// Compute the overhead terms for one pass's partition weights.
/// `seconds_per_task` is the amortised per-task scheduling cost
/// (submit + claim + deque traffic); the default matches the observed
/// TaskPool cost on commodity x86.
ParallelOverhead parallel_overhead(std::span<const std::size_t> weights,
                                   int threads, int tasks_per_thread = 8,
                                   double seconds_per_task = 2e-6);

/// Multicore prediction including the execution backend's scheduling
/// costs: predict_multicore plus the backend's imbalance share of the
/// per-thread work and, for the task backend, the steal overhead. With a
/// zero ParallelOverhead this equals predict_multicore.
double predict_parallel(ModelKind model, const CandidateCost& cost,
                        const MachineProfile& profile, Precision prec,
                        int threads, const ParallelOverhead& overhead,
                        ExecBackend backend);

/// Multi-vector (SpMM) extension of eq. (1)–(3): predicted seconds for
/// ONE multiply of all k right-hand sides (divide by k for the effective
/// per-vector time). The memory term splits cost into matrix traffic
/// (streamed once for row-major; once per vector for col-major unless the
/// matrix fits in the effective LLC) and x/y traffic (always ×k), while
/// every compute term scales ×k. k == 1 equals predict() for either
/// layout. Full derivation in docs/spmm.md.
double predict_spmm(ModelKind model, const CandidateCost& cost,
                    const MachineProfile& profile, Precision prec, int k,
                    Layout layout, const IrregularityStats* irr = nullptr);

/// Smallest k in `ks` (scanned in order) where `blocked` is predicted
/// strictly faster than `csr` at that k for the given layout; 0 when the
/// prediction never crosses within `ks`.
int spmm_crossover_k(ModelKind model, const CandidateCost& blocked,
                     const CandidateCost& csr,
                     const MachineProfile& profile, Precision prec,
                     Layout layout, const std::vector<int>& ks,
                     const IrregularityStats* irr = nullptr);

/// Smallest k in `ks` where row-major is predicted strictly faster than
/// col-major for `cost`; 0 when it never crosses within `ks` (i.e. the
/// matrix is predicted cache-resident throughout).
int spmm_layout_crossover_k(ModelKind model, const CandidateCost& cost,
                            const MachineProfile& profile, Precision prec,
                            const std::vector<int>& ks,
                            const IrregularityStats* irr = nullptr);

// ----------------------------------------------------------------------
// Distributed extension: t_comm = α·msgs + bytes/β
// ----------------------------------------------------------------------
//
// Row-sharded multi-process SpMV (src/dist/, docs/distribution.md)
// exchanges the x-vector halo every iteration. The exchange is either
// serialised before the compute (naive, the "vector mode" of arXiv
// 1106.5908) or run concurrently with the local-columns pass (overlap).
// The models gain a latency/bandwidth communication term and a chooser
// that predicts, per shard plan, which mode wins.

/// Halo-exchange strategy of the distributed runtime.
enum class DistMode { kNaive, kOverlap };

const char* dist_mode_name(DistMode m);
/// Parse "naive" / "overlap"; throws invalid_argument_error otherwise.
DistMode parse_dist_mode(const std::string& s);

/// One rank's model inputs, derived purely from the shard plan
/// (ShardPlan::rank_costs) — no timing required.
struct DistRankCost {
  std::size_t local_ws_bytes = 0;  ///< local-columns submatrix + x/y slices
  std::size_t halo_ws_bytes = 0;   ///< halo-columns submatrix + halo x
  std::size_t bytes_sent = 0;      ///< halo payload bytes out, per iteration
  std::size_t bytes_recv = 0;      ///< halo payload bytes in, per iteration
  int msgs_sent = 0;               ///< halo frames out, per iteration
  int msgs_recv = 0;               ///< halo frames in, per iteration
};

/// Latency/bandwidth cost of moving `bytes` in `msgs` frames between two
/// ranks on this machine: α·msgs + bytes/β, with α/β profiled over the
/// actual socketpair wire path (MachineProfile::comm_*). Throws
/// invalid_argument_error when the profile carries no comm parameters.
double t_comm(const MachineProfile& profile, std::size_t bytes, int msgs);

/// Predicted seconds per distributed SpMV iteration under `mode`: every
/// rank streams its shard at the shared-bandwidth rate (BW divided over
/// the ranks with work, as in predict_multicore), pays its halo traffic,
/// then runs the halo-columns pass; the iteration ends when the slowest
/// rank does.
///
/// The comm term t_comm = α·msgs + bytes/β splits into two physically
/// different costs, and overlap treats them differently:
///   - α·msgs is *blocking* time (waiting for peers / the kernel): the
///     CPU is free, so overlap always hides it under the local pass;
///   - bytes/β is *streaming* time (the socketpair memcpy): it needs CPU
///     cycles, so it only hides when spare cores exist beyond the ranks
///     (`cores > active`). On an oversubscribed node the copy instead
///     interleaves with the compute, stealing its cycles and evicting
///     its working set — overlap then pays the copy at a thrash penalty
///     while naive pays it once, serially, with no interference.
/// `cores` is the node's hardware concurrency; 0 means "ask the OS".
double predict_distributed(const MachineProfile& profile,
                           std::span<const DistRankCost> ranks,
                           DistMode mode, int cores = 0);

/// The selector's overlap-vs-naive choice for a shard plan: strictly
/// faster predicted overlap wins, otherwise naive (its serialised
/// exchange is the simpler machinery). The split comm model makes the
/// sign meaningful even for close calls — latency-dominated exchanges
/// favour overlap by ~α·msgs, bandwidth-dominated ones favour naive by
/// the unhidden copy penalty.
DistMode choose_dist_mode(const MachineProfile& profile,
                          std::span<const DistRankCost> ranks,
                          int cores = 0);

// ----------------------------------------------------------------------
// Recovery extension: expected cost of surviving rank failure
// ----------------------------------------------------------------------
//
// The supervised distributed driver (docs/distribution.md "Failure modes
// and recovery") checkpoints the x-vector every `interval` iterations
// and, on a rank failure, respawns the rank, re-ships its shard and
// retries from the last round boundary. These models price that
// machinery so the checkpoint cadence is a Young/Daly choice rather
// than a guess, and so "keep retrying" vs "degrade to single-node" is a
// decidable comparison instead of a hard-coded K.

/// Seconds to write one checkpoint: an fsync'd atomic-rename file of
/// `x_bytes` (the x snapshot plus its CRC trailer), costed as a fixed
/// fsync latency plus ~3 memory/disk passes over the payload at the
/// profiled stream bandwidth. Throws invalid_argument_error when the
/// profile carries no bandwidth.
double dist_checkpoint_seconds(const MachineProfile& profile,
                               std::size_t x_bytes);

/// Seconds to bring a dead rank back: fork/exec-free respawn (a fixed
/// spawn latency), the shard re-ship (one t_comm transfer of
/// `shard_bytes`), and the survivor rewiring handshake (two zero-byte
/// control round-trips per surviving peer).
double dist_restart_seconds(const MachineProfile& profile,
                            std::size_t shard_bytes, int peers);

/// Young's optimal checkpoint interval, in iterations: round(
/// sqrt(2 · C · MTBF) / t_iter ), clamped to >= 1. `t_iter` is the
/// predicted per-iteration time (predict_distributed), `ckpt_seconds`
/// the per-checkpoint cost, `mtbf_seconds` the assumed mean time
/// between rank failures. Returns 0 when any input is non-positive —
/// "no model choice"; the caller keeps its default cadence.
int dist_checkpoint_interval(double t_iter_seconds, double ckpt_seconds,
                             double mtbf_seconds);

/// Expected fractional overhead (>= 0) the recovery machinery adds to a
/// run at the given cadence: checkpoint cost amortised per iteration
/// plus the failure-rate-weighted cost of the rework (half a round on
/// average) and the restart itself, normalised by t_iter. Lets callers
/// compare cadences or report the modelled recovery tax.
double dist_recovery_overhead(double t_iter_seconds, double ckpt_seconds,
                              double restart_seconds, double mtbf_seconds,
                              int interval);

/// The degradation decision: true when finishing the remaining
/// iterations on a single node is expected to beat continuing the
/// failure-prone distributed run. The distributed side pays an expected
/// (remaining·t_dist/MTBF) restarts of `restart_seconds` each on top of
/// the compute; mtbf <= 0 means "failures keep happening" and always
/// degrades.
bool dist_degradation_beats_retry(double t_dist_iter_seconds,
                                  double t_single_iter_seconds,
                                  double restart_seconds,
                                  double mtbf_seconds, int remaining);

#define BSPMV_DECL(V) \
  extern template IrregularityStats irregularity_stats(const Csr<V>&);
BSPMV_DECL(float)
BSPMV_DECL(double)
#undef BSPMV_DECL

}  // namespace bspmv
