// DistSpmv — the multi-process distributed SpMV driver.
//
// Construction builds the nnz-balanced shard plan, wires a socketpair
// mesh (one control channel per rank, one data channel per rank pair),
// forks one rank process per shard and ships each its kShard message.
// run() then scatters x, triggers `iterations` halo-exchange + SpMV
// rounds inside the ranks (overlap or naive, switchable per run without
// re-sharding), and gathers the y slices plus per-rank phase timings.
//
// Failure surfaces through the typed taxonomy: a rank that dies
// mid-run is an io_error, a stalled one a timeout_error (wire read
// timeout), and a rank-reported failure rethrows via throw_wire_error —
// the same contract the serving client keeps. The destructor shuts the
// ranks down gracefully, escalating to SIGKILL, and always reaps.
#pragma once

#include <sys/types.h>

#include <vector>

#include "src/core/models.hpp"
#include "src/dist/messages.hpp"
#include "src/dist/shard_plan.hpp"
#include "src/formats/csr.hpp"
#include "src/kernels/impl.hpp"
#include "src/serve/protocol.hpp"

namespace bspmv::dist {

struct DistOptions {
  int ranks = 2;
  DistMode mode = DistMode::kOverlap;
  /// TaskPool workers for each rank's local-columns pass (the existing
  /// task-graph executor, constructed fresh inside the child). 0 runs
  /// the local pass serially.
  int threads_per_rank = 1;
  Impl impl = Impl::kScalar;
  /// Wire read timeout on every channel (driver and ranks).
  double timeout_seconds = 30.0;
};

class DistSpmv {
 public:
  DistSpmv(const Csr<double>& a, const DistOptions& opt);
  ~DistSpmv();
  DistSpmv(const DistSpmv&) = delete;
  DistSpmv& operator=(const DistSpmv&) = delete;

  const ShardPlan& plan() const { return plan_; }
  DistMode mode() const { return opt_.mode; }
  /// Exchange strategy of subsequent run() calls; the shards are mode-
  /// agnostic, so switching never re-forks or re-ships anything.
  void set_mode(DistMode m) { opt_.mode = m; }

  /// y = A·x, executed `iterations` times back to back inside the ranks
  /// with a fresh halo exchange each round (the iterative-solver traffic
  /// pattern the models assume); y holds the final iteration's result.
  void run(const double* x, double* y, int iterations = 1);

  /// Per-rank phase timings of the last run() (send/recv/wait/local/halo
  /// seconds, bytes and frames) — the RunReport timeline source.
  const std::vector<RankStats>& last_stats() const { return stats_; }

  /// Model inputs for predict_distributed / choose_dist_mode.
  std::vector<DistRankCost> rank_costs() const {
    return plan_.rank_costs(sizeof(double));
  }

  /// Fault-injection hook (tests): SIGKILL rank `r`. The next run()
  /// surfaces the death as a typed error.
  void kill_rank(int r);

 private:
  void spawn(const Csr<double>& a);
  void shutdown() noexcept;

  DistOptions opt_;
  ShardPlan plan_;
  serve::WireLimits limits_;
  std::vector<pid_t> pids_;
  std::vector<int> ctrl_fds_;  ///< driver-side control channel ends
  std::vector<RankStats> stats_;
};

}  // namespace bspmv::dist
