#include "src/gen/suite.hpp"

#include <cmath>

#include "src/gen/generators.hpp"
#include "src/util/macros.hpp"

namespace bspmv {

const std::vector<SuiteMatrixInfo>& suite_catalog() {
  static const std::vector<SuiteMatrixInfo> catalog = {
      {1, "dense", "special", true, false},
      {2, "random", "special", true, false},
      {3, "cfd2", "CFD", false, false},
      {4, "parabolic_fem", "CFD", false, false},
      {5, "Ga41As41H72", "Chemistry", false, false},
      {6, "ASIC_680k", "Circuit", false, false},
      {7, "G3_circuit", "Circuit", false, false},
      {8, "Hamrle3", "Circuit", false, false},
      {9, "rajat31", "Circuit", false, false},
      {10, "cage15", "Graph", false, false},
      {11, "wb-edu", "Graph", false, false},
      {12, "wikipedia", "Graph", false, false},
      {13, "degme", "Lin. Prog.", false, false},
      {14, "rail4284", "Lin. Prog.", false, false},
      {15, "spal_004", "Lin. Prog.", false, false},
      {16, "bone010", "Other", false, false},
      {17, "kkt_power", "Power", false, true},
      {18, "largebasis", "Opt.", false, true},
      {19, "TSOPF_RS", "Opt.", false, true},
      {20, "af_shell10", "Struct.", false, true},
      {21, "audikw_1", "Struct.", false, true},
      {22, "F1", "Struct.", false, true},
      {23, "fdiff", "Struct.", false, true},
      {24, "gearbox", "Struct.", false, true},
      {25, "inline_1", "Struct.", false, true},
      {26, "ldoor", "Struct.", false, true},
      {27, "pwtk", "Struct.", false, true},
      {28, "thermal2", "Other", false, true},
      {29, "nd24k", "Other", false, true},
      {30, "stomach", "Other", false, true},
  };
  return catalog;
}

SuiteScale parse_suite_scale(const std::string& s) {
  if (s == "tiny") return SuiteScale::kTiny;
  if (s == "small") return SuiteScale::kSmall;
  if (s == "paper") return SuiteScale::kPaper;
  throw invalid_argument_error("unknown suite scale '" + s +
                               "' (expected tiny|small|paper)");
}

const char* suite_scale_name(SuiteScale s) {
  switch (s) {
    case SuiteScale::kTiny: return "tiny";
    case SuiteScale::kSmall: return "small";
    case SuiteScale::kPaper: return "paper";
  }
  return "?";
}

namespace {

// Linear scale multiplier: grid dimensions grow by `lin`, nnz-type counts
// by lin² (≈ the growth of a refined mesh).
double linear_scale(SuiteScale s) {
  switch (s) {
    case SuiteScale::kTiny: return 0.40;
    case SuiteScale::kSmall: return 1.0;
    case SuiteScale::kPaper: return 1.65;
  }
  return 1.0;
}

index_t dim(double x) { return std::max<index_t>(4, static_cast<index_t>(x)); }
std::size_t cnt(double x) {
  return std::max<std::size_t>(16, static_cast<std::size_t>(x));
}
int rmat_scale_for(SuiteScale s, int small_scale) {
  switch (s) {
    case SuiteScale::kTiny: return small_scale - 3;
    case SuiteScale::kSmall: return small_scale;
    case SuiteScale::kPaper: return small_scale + 1;
  }
  return small_scale;
}

}  // namespace

template <class V>
Coo<V> build_suite_matrix(int id, SuiteScale scale) {
  BSPMV_CHECK_MSG(id >= 1 && id <= 30, "suite matrix id must be 1..30");
  const double s = linear_scale(scale);
  const double q = s * s;  // quadratic (count) scale
  const std::uint64_t seed = 0x5eed0000ULL + static_cast<std::uint64_t>(id);

  switch (id) {
    // ---- special -------------------------------------------------------
    case 1:  // dense
      return gen_dense<V>(dim(1000 * s), dim(1000 * s), seed);
    case 2:  // random
      return gen_uniform_random<V>(dim(60000 * q), dim(60000 * q),
                                   cnt(1.3e6 * q), seed);

    // ---- no underlying 2D/3D geometry ----------------------------------
    case 3:  // cfd2: 2-D 9-pt pressure grid
      return gen_stencil_2d<V>(dim(350 * s), dim(350 * s), 9, seed);
    case 4:  // parabolic_fem: 2-D 5-pt diffusion
      return gen_stencil_2d<V>(dim(480 * s), dim(480 * s), 5, seed);
    case 5:  // Ga41As41H72: clustered chemistry rows
      return gen_row_segments<V>(dim(45000 * q), dim(45000 * q), 4, 8, 3, 8,
                                 seed);
    case 6:  // ASIC_680k: short scattered circuit rows
      return gen_short_rows<V>(dim(350000 * q), 0, 5, seed);
    case 7:  // G3_circuit
      return gen_short_rows<V>(dim(500000 * q), 0, 3, seed);
    case 8:  // Hamrle3: broken diagonal fragments
      return perturb_drop(
          gen_multi_diagonal<V>(dim(420000 * q), {-2, -1, 0, 1, 2}, seed),
          0.40, seed ^ 0xff);
    case 9:  // rajat31: diagonal + scattered short rows
      return combine(
          gen_multi_diagonal<V>(dim(600000 * q), {-1, 0, 1}, seed),
          perturb_drop(gen_short_rows<V>(dim(600000 * q), 0, 2, seed ^ 1),
                       0.3, seed ^ 2));
    case 10:  // cage15: mildly skewed graph
      return gen_rmat<V>(rmat_scale_for(scale, 18), cnt(2.0e6 * q), 0.45,
                         0.20, 0.20, seed);
    case 11:  // wb-edu: web graph
      return gen_rmat<V>(rmat_scale_for(scale, 19), cnt(2.2e6 * q), 0.57,
                         0.19, 0.19, seed);
    case 12:  // wikipedia: highly irregular link graph
      return gen_rmat<V>(rmat_scale_for(scale, 18), cnt(1.8e6 * q), 0.60,
                         0.15, 0.15, seed);
    case 13:  // degme: LP with short horizontal runs
      return gen_row_segments<V>(dim(90000 * q), dim(99000 * q), 2, 5, 2, 6,
                                 seed);
    case 14:  // rail4284: few long rows over a huge column space
      return gen_row_segments<V>(dim(5000 * q), dim(200000 * q), 40, 60, 2, 5,
                                 seed);
    case 15:  // spal_004: long dense row segments (1-D blocking class)
      return gen_row_segments<V>(dim(30000 * q), dim(60000 * q), 20, 30, 4, 7,
                                 seed);
    case 16:  // bone010: 3-D micro-FEM, 3 dof/node
      return gen_blocked_band<V>(dim(20000 * q), 3, dim(2500 * q), 8, 0.90,
                                 seed);

    // ---- with underlying 2D/3D geometry --------------------------------
    case 17:  // kkt_power: optimisation KKT system — blocks + scatter
      return combine(
          gen_blocked_band<V>(dim(150000 * q), 2, dim(5000 * q), 2, 0.50,
                              seed),
          gen_short_rows<V>(dim(300000 * q), 0, 2, seed ^ 1));
    case 18:  // largebasis: narrow band of 4×4 blocks
      return gen_blocked_band<V>(dim(60000 * q), 4, dim(50 * q), 1, 0.80,
                                 seed);
    case 19:  // TSOPF_RS: fully dense 8×8 blocks (every method wins here)
      return gen_blocked_band<V>(dim(5000 * q), 8, dim(30 * q), 4, 1.0, seed);
    case 20:  // af_shell10: shell FEM, 3 dof
      return gen_blocked_band<V>(dim(45000 * q), 3, dim(300 * q), 4, 0.95,
                                 seed);
    case 21:  // audikw_1: wide-band 3-dof FEM
      return gen_blocked_band<V>(dim(35000 * q), 3, dim(2000 * q), 8, 0.70,
                                 seed);
    case 22:  // F1: 3-dof FEM, moderate fill
      return gen_blocked_band<V>(dim(40000 * q), 3, dim(1500 * q), 6, 0.60,
                                 seed);
    case 23:  // fdiff: 3-D 7-pt finite differences
      return gen_stencil_3d<V>(dim(64 * std::cbrt(q)), dim(64 * std::cbrt(q)),
                               dim(64 * std::cbrt(q)), 7, seed);
    case 24:  // gearbox
      return gen_blocked_band<V>(dim(30000 * q), 3, dim(800 * q), 5, 0.80,
                                 seed);
    case 25:  // inline_1
      return gen_blocked_band<V>(dim(45000 * q), 3, dim(1200 * q), 5, 0.65,
                                 seed);
    case 26:  // ldoor
      return gen_blocked_band<V>(dim(45000 * q), 3, dim(400 * q), 5, 0.75,
                                 seed);
    case 27:  // pwtk: wind tunnel, 6 dof/node
      return gen_blocked_band<V>(dim(25000 * q), 6, dim(150 * q), 1, 0.90,
                                 seed);
    case 28: {  // thermal2: unstructured diffusion — latency-bound class
      const index_t g = dim(60 * std::cbrt(q));
      Coo<V> st = perturb_drop(gen_stencil_3d<V>(g, g, g, 7, seed), 0.30,
                               seed ^ 0xab);
      Coo<V> noise = gen_uniform_random<V>(st.rows(), st.cols(),
                                           cnt(2.0e5 * q), seed ^ 0xcd);
      return combine(std::move(st), noise);
    }
    case 29:  // nd24k: nearly-dense rows
      return gen_row_segments<V>(dim(16000 * q), dim(16000 * q), 15, 25, 4, 9,
                                 seed);
    case 30:  // stomach: 3-D 27-pt organ model
      return gen_stencil_3d<V>(dim(40 * std::cbrt(q)), dim(40 * std::cbrt(q)),
                               dim(40 * std::cbrt(q)), 27, seed);
  }
  BSPMV_CHECK_MSG(false, "unreachable");
  return Coo<V>(1, 1);
}

template <class V>
Csr<V> build_suite_csr(int id, SuiteScale scale) {
  return Csr<V>::from_coo(build_suite_matrix<V>(id, scale));
}

#define BSPMV_INST(V)                                  \
  template Coo<V> build_suite_matrix(int, SuiteScale); \
  template Csr<V> build_suite_csr(int, SuiteScale);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv
