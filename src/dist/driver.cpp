#include "src/dist/driver.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/core/candidates.hpp"
#include "src/core/engine.hpp"
#include "src/dist/checkpoint.hpp"
#include "src/dist/fdpass.hpp"
#include "src/dist/rank.hpp"
#include "src/observe/observe.hpp"
#include "src/observe/registry.hpp"
#include "src/util/errors.hpp"
#include "src/util/macros.hpp"
#include "src/util/numerics.hpp"
#include "src/util/timing.hpp"

namespace bspmv::dist {

using serve::MsgType;

namespace {

/// One full-duplex socketpair; [0] stays with `a`, [1] with `b`.
struct Pair {
  int fds[2] = {-1, -1};
};

void make_pair_or_throw(Pair& p) {
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, p.fds) != 0)
    throw io_error(std::string("socketpair failed: ") +
                   std::strerror(errno));
}

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// Failure-cause precedence for a round's classification.
int cause_rank(const std::string& c) {
  if (c == "rank_dead") return 3;
  if (c == "rank_stalled") return 2;
  if (c == "rank_error") return 1;
  return 0;
}

}  // namespace

const char* dist_outcome_name(DistOutcome o) {
  switch (o) {
    case DistOutcome::kClean: return "clean";
    case DistOutcome::kRecovered: return "recovered";
    case DistOutcome::kResharded: return "resharded";
    case DistOutcome::kSingleNode: return "single_node";
  }
  return "?";
}

DistSpmv::DistSpmv(const Csr<double>& a, const DistOptions& opt)
    : opt_(opt) {
  BSPMV_CHECK_MSG(opt_.threads_per_rank >= 0 && opt_.threads_per_rank <= 64,
                  "threads_per_rank out of range");
  BSPMV_CHECK_MSG(opt_.timeout_seconds > 0.0, "timeout must be positive");
  plan_ = plan_shards(a, opt_.ranks);  // validates the rank count
  limits_.read_timeout_seconds = opt_.timeout_seconds;
  // Supervision needs the matrix after construction: respawn re-ships
  // shards, the ladder re-shards or runs single-node.
  if (opt_.supervise.enabled) matrix_ = a;
  persistent_faults_.assign(static_cast<std::size_t>(opt_.ranks), FaultMsg{});
  spawn(a);
}

void DistSpmv::spawn(const Csr<double>& a) {
  const int n = opt_.ranks;
  std::vector<Pair> ctrl(static_cast<std::size_t>(n));
  // data[i][j] for i < j: fds[0] is rank i's end, fds[1] rank j's.
  std::vector<std::vector<Pair>> data(static_cast<std::size_t>(n));
  for (auto& row : data) row.resize(static_cast<std::size_t>(n));

  try {
    for (int r = 0; r < n; ++r)
      make_pair_or_throw(ctrl[static_cast<std::size_t>(r)]);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        make_pair_or_throw(data[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(j)]);

    for (int r = 0; r < n; ++r) {
      const pid_t pid = fork();
      if (pid < 0)
        throw io_error(std::string("fork failed: ") + std::strerror(errno));
      if (pid == 0) {
        // Child: keep only this rank's fds, serve, and _exit — never
        // return into the parent's stack/atexit/gtest machinery.
        RankContext ctx;
        ctx.rank = r;
        ctx.limits = limits_;
        ctx.peer_fds.assign(static_cast<std::size_t>(n), -1);
        for (int q = 0; q < n; ++q) {
          Pair& c = ctrl[static_cast<std::size_t>(q)];
          if (q == r) {
            ctx.ctrl_fd = c.fds[1];
            close_quiet(c.fds[0]);
          } else {
            close_quiet(c.fds[0]);
            close_quiet(c.fds[1]);
          }
        }
        for (int i = 0; i < n; ++i)
          for (int j = i + 1; j < n; ++j) {
            Pair& d = data[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
            if (i == r) {
              ctx.peer_fds[static_cast<std::size_t>(j)] = d.fds[0];
              close_quiet(d.fds[1]);
            } else if (j == r) {
              ctx.peer_fds[static_cast<std::size_t>(i)] = d.fds[1];
              close_quiet(d.fds[0]);
            } else {
              close_quiet(d.fds[0]);
              close_quiet(d.fds[1]);
            }
          }
        _exit(rank_main(ctx));
      }
      pids_.push_back(pid);
    }
  } catch (...) {
    for (auto& c : ctrl) {
      close_quiet(c.fds[0]);
      close_quiet(c.fds[1]);
    }
    for (auto& row : data)
      for (auto& d : row) {
        close_quiet(d.fds[0]);
        close_quiet(d.fds[1]);
      }
    shutdown();
    throw;
  }

  // Parent: keep the driver ends, drop everything else.
  for (int r = 0; r < n; ++r) {
    ctrl_fds_.push_back(ctrl[static_cast<std::size_t>(r)].fds[0]);
    close_quiet(ctrl[static_cast<std::size_t>(r)].fds[1]);
  }
  for (auto& row : data)
    for (auto& d : row) {
      close_quiet(d.fds[0]);
      close_quiet(d.fds[1]);
    }

  // Ship the shards, then confirm every rank decoded its own. Children
  // are already blocked in read_frame, so the sequential sends drain.
  try {
    BSPMV_OBS_SPAN("dist/shard");
    for (int r = 0; r < n; ++r) ship_shard(a, r);
    for (int r = 0; r < n; ++r) expect_ok(r, MsgType::kShardOk, limits_);
  } catch (...) {
    shutdown();
    throw;
  }
}

void DistSpmv::ship_shard(const Csr<double>& a, int r) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_ind = a.col_ind();
  const auto& val = a.val();
  const RankShard& sh = plan_.shards[static_cast<std::size_t>(r)];
  ShardMsg msg;
  msg.rank = static_cast<std::uint32_t>(r);
  msg.ranks = static_cast<std::uint32_t>(opt_.ranks);
  msg.threads = static_cast<std::uint32_t>(opt_.threads_per_rank);
  msg.row_begin = sh.row_begin;
  msg.row_end = sh.row_end;
  msg.x_begin = sh.x_begin;
  msg.x_end = sh.x_end;
  msg.cols = a.cols();
  msg.halo_seg = sh.halo_seg;
  msg.send_cols = sh.send_cols;
  const index_t nz0 = row_ptr[sh.row_begin];
  const index_t nz1 = row_ptr[sh.row_end];
  msg.row_ptr.reserve(static_cast<std::size_t>(sh.rows()) + 1);
  for (index_t i = sh.row_begin; i <= sh.row_end; ++i)
    msg.row_ptr.push_back(row_ptr[i] - nz0);
  msg.col_ind.assign(col_ind.begin() + nz0, col_ind.begin() + nz1);
  msg.val.assign(val.begin() + nz0, val.begin() + nz1);
  serve::write_frame(ctrl_fds_[static_cast<std::size_t>(r)], MsgType::kShard,
                     msg.encode(), limits_);
}

void DistSpmv::expect_ok(int r, MsgType want, const serve::WireLimits& lim) {
  MsgType type{};
  std::string payload;
  if (!serve::read_frame(ctrl_fds_[static_cast<std::size_t>(r)], type,
                         payload, lim))
    throw io_error("rank " + std::to_string(r) + " exited while the driver "
                   "waited for " + serve::msg_type_name(want));
  if (type == MsgType::kError) {
    const auto rep = serve::ErrorReply::decode(payload);
    serve::throw_wire_error(rep.code,
                            "rank " + std::to_string(r) + ": " + rep.message);
  }
  if (type != want)
    throw parse_error(std::string("expected ") + serve::msg_type_name(want) +
                      " from rank, got " + serve::msg_type_name(type));
}

serve::WireLimits DistSpmv::round_limits() const {
  // Satellite of the supervision work: a run-level deadline (RunControl)
  // bounds wire waits too — the per-frame read timeout never exceeds the
  // remaining run budget.
  serve::WireLimits lim = limits_;
  if (control_ && control_->has_deadline()) {
    const double rem = control_->remaining_seconds();
    lim.read_timeout_seconds =
        std::max(0.05, std::min(lim.read_timeout_seconds, rem));
  }
  return lim;
}

bool DistSpmv::child_exited(int r) {
  pid_t& pid = pids_[static_cast<std::size_t>(r)];
  if (pid <= 0) return true;
  const pid_t got = ::waitpid(pid, nullptr, WNOHANG);
  if (got == pid || (got < 0 && errno == ECHILD)) {
    pid = -1;
    return true;
  }
  return false;
}

void DistSpmv::force_down(int r) noexcept {
  pid_t& pid = pids_[static_cast<std::size_t>(r)];
  if (pid > 0) {
    const pid_t got = ::waitpid(pid, nullptr, WNOHANG);
    if (got != pid) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    pid = -1;
  }
  close_quiet(ctrl_fds_[static_cast<std::size_t>(r)]);
}

int DistSpmv::live_ranks() const {
  int live = 0;
  for (pid_t pid : pids_)
    if (pid > 0) ++live;
  return live;
}

void DistSpmv::run(const double* x, double* y, int iterations) {
  BSPMV_CHECK_MSG(iterations >= 1, "iterations must be >= 1");
  BSPMV_OBS_SPAN("dist/run");
  Timer wall;
  log_.clear();
  outcome_ = DistOutcome::kClean;
  resumed_ = 0;
  if (control_) control_->check();
  if (pids_.empty()) {
    // A previous supervised run degraded to single-node and tore the
    // mesh down; every later run stays on the single-node rung.
    BSPMV_CHECK_MSG(opt_.supervise.enabled && matrix_.rows() > 0,
                    "distributed mesh is gone (was it shut down?)");
    outcome_ = DistOutcome::kSingleNode;
    // Every iteration recomputes the same y from the constant x, so one
    // engine pass covers the whole run.
    run_single_node(x, y);
    observe::CounterRegistry::instance().add_span("dist/run_wall",
                                                  wall.elapsed());
    return;
  }
  if (opt_.supervise.enabled)
    run_supervised(x, y, iterations);
  else
    run_unsupervised(x, y, iterations);
  observe::CounterRegistry::instance().add_span("dist/run_wall",
                                                wall.elapsed());
}

void DistSpmv::run_unsupervised(const double* x, double* y, int iterations) {
  const serve::WireLimits lim = round_limits();
  ++epoch_;
  for (int r = 0; r < opt_.ranks; ++r) {
    const RankShard& sh = plan_.shards[static_cast<std::size_t>(r)];
    RunMsg msg;
    msg.mode = opt_.mode;
    msg.impl = opt_.impl == Impl::kSimd ? 1 : 0;
    msg.iterations = static_cast<std::uint32_t>(iterations);
    msg.epoch = epoch_;
    msg.x.assign(x + sh.x_begin, x + sh.x_end);
    serve::write_frame(ctrl_fds_[static_cast<std::size_t>(r)],
                       MsgType::kDistRun, msg.encode(), lim);
  }

  stats_.assign(static_cast<std::size_t>(opt_.ranks), RankStats{});
  std::uint64_t bytes = 0, msgs = 0;
  for (int r = 0; r < opt_.ranks; ++r) {
    const RankShard& sh = plan_.shards[static_cast<std::size_t>(r)];
    MsgType type{};
    std::string payload;
    if (!serve::read_frame(ctrl_fds_[static_cast<std::size_t>(r)], type,
                           payload, lim))
      throw io_error("rank " + std::to_string(r) +
                     " exited mid-run (no dist_done frame)");
    if (type == MsgType::kError) {
      const auto rep = serve::ErrorReply::decode(payload);
      serve::throw_wire_error(
          rep.code, "rank " + std::to_string(r) + ": " + rep.message);
    }
    if (type != MsgType::kDistDone)
      throw parse_error(std::string("expected dist_done from rank, got ") +
                        serve::msg_type_name(type));
    DoneMsg done = DoneMsg::decode(payload);
    if (done.y.size() != static_cast<std::size_t>(sh.rows()))
      throw parse_error("rank " + std::to_string(r) + " returned " +
                        std::to_string(done.y.size()) + " y values for " +
                        std::to_string(sh.rows()) + " rows");
    std::copy(done.y.begin(), done.y.end(), y + sh.row_begin);
    stats_[static_cast<std::size_t>(r)] = done.stats;
    bytes += done.stats.bytes_sent;
    msgs += done.stats.msgs_sent;

    // Per-rank timeline record: the same thread_times channel the
    // threaded drivers feed, keyed dist/<mode>, tid = rank. items =
    // stored values processed over all iterations (the §V-A load view).
    observe::CounterRegistry::instance().add_thread_time(
        std::string("dist/") + dist_mode_name(opt_.mode), r,
        done.stats.total_seconds,
        sh.nnz * static_cast<std::uint64_t>(iterations));
  }
  BSPMV_OBS_COUNT("dist.runs", 1);
  BSPMV_OBS_COUNT("dist.iterations",
                  static_cast<std::uint64_t>(iterations));
  BSPMV_OBS_COUNT("dist.halo_bytes", bytes);
  BSPMV_OBS_COUNT("dist.halo_msgs", msgs);
}

DistSpmv::RoundResult DistSpmv::run_round(const double* x, double* y,
                                          int step, int first,
                                          const serve::WireLimits& lim) {
  ++epoch_;
  const int n = opt_.ranks;
  RoundResult rr;

  auto note = [&rr](int r, const char* cause, const std::string& msg,
                    std::exception_ptr ep, bool now_dead) {
    rr.ok = false;
    if (now_dead) rr.failed.push_back(r);
    if (cause_rank(cause) > cause_rank(rr.cause)) rr.cause = cause;
    if (rr.message.empty())
      rr.message = "rank " + std::to_string(r) + ": " + msg;
    if (!rr.error && ep) rr.error = ep;
  };

  std::vector<char> sent(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    if (pids_[static_cast<std::size_t>(r)] <= 0) {
      // Already down (a previous recovery failed to bring it back).
      note(r, "rank_dead", "rank is down entering the round", nullptr, true);
      continue;
    }
    const RankShard& sh = plan_.shards[static_cast<std::size_t>(r)];
    RunMsg msg;
    msg.mode = opt_.mode;
    msg.impl = opt_.impl == Impl::kSimd ? 1 : 0;
    msg.iterations = static_cast<std::uint32_t>(step);
    msg.epoch = epoch_;
    msg.first_iteration = static_cast<std::uint32_t>(first);
    msg.progress_every = opt_.supervise.progress_every;
    msg.x.assign(x + sh.x_begin, x + sh.x_end);
    try {
      serve::write_frame(ctrl_fds_[static_cast<std::size_t>(r)],
                         MsgType::kDistRun, msg.encode(), lim);
      sent[static_cast<std::size_t>(r)] = 1;
    } catch (const error& e) {
      // A write on a socketpair only fails when the child is gone.
      force_down(r);
      note(r, "rank_dead", e.what(), std::current_exception(), true);
    }
  }

  // Collect a reply from EVERY rank the round reached — recovery must
  // start from a quiesced mesh, so no throw-on-first-failure here. The
  // collect timeout carries a grace over the rank-side wire timeout so a
  // rank's own typed timeout surfaces as kError before the driver
  // classifies the rank itself as stalled.
  serve::WireLimits collect = lim;
  collect.read_timeout_seconds = lim.read_timeout_seconds * 1.5 + 0.5;
  if (control_ && control_->has_deadline())
    collect.read_timeout_seconds =
        std::max(0.05, std::min(collect.read_timeout_seconds,
                                control_->remaining_seconds()));
  for (int r = 0; r < n; ++r) {
    if (!sent[static_cast<std::size_t>(r)]) continue;
    const RankShard& sh = plan_.shards[static_cast<std::size_t>(r)];
    try {
      for (;;) {
        MsgType type{};
        std::string payload;
        if (!serve::read_frame(ctrl_fds_[static_cast<std::size_t>(r)], type,
                               payload, collect)) {
          force_down(r);
          note(r, "rank_dead", "exited mid-round (no dist_done frame)",
               std::make_exception_ptr(io_error(
                   "rank " + std::to_string(r) +
                   " exited mid-run (no dist_done frame)")),
               true);
          break;
        }
        if (type == MsgType::kProgress) continue;  // heartbeat
        if (type == MsgType::kError) {
          const auto rep = serve::ErrorReply::decode(payload);
          std::exception_ptr ep;
          try {
            serve::throw_wire_error(
                rep.code, "rank " + std::to_string(r) + ": " + rep.message);
          } catch (...) {
            ep = std::current_exception();
          }
          // The rank reported and survived: alive, not in the dead set.
          note(r, "rank_error", rep.message, ep, false);
          break;
        }
        if (type != MsgType::kDistDone)
          throw parse_error(
              std::string("expected dist_done from rank, got ") +
              serve::msg_type_name(type));
        DoneMsg done = DoneMsg::decode(payload);
        if (done.y.size() != static_cast<std::size_t>(sh.rows()))
          throw parse_error("rank returned " + std::to_string(done.y.size()) +
                            " y values for " + std::to_string(sh.rows()) +
                            " rows");
        std::copy(done.y.begin(), done.y.end(), y + sh.row_begin);
        RankStats& acc = stats_[static_cast<std::size_t>(r)];
        acc.iterations += done.stats.iterations;
        acc.send_seconds += done.stats.send_seconds;
        acc.recv_seconds += done.stats.recv_seconds;
        acc.wait_seconds += done.stats.wait_seconds;
        acc.local_seconds += done.stats.local_seconds;
        acc.halo_seconds += done.stats.halo_seconds;
        acc.total_seconds += done.stats.total_seconds;
        acc.bytes_sent += done.stats.bytes_sent;
        acc.bytes_recv += done.stats.bytes_recv;
        acc.msgs_sent += done.stats.msgs_sent;
        acc.msgs_recv += done.stats.msgs_recv;
        rr.bytes += done.stats.bytes_sent;
        rr.msgs += done.stats.msgs_sent;
        observe::CounterRegistry::instance().add_thread_time(
            std::string("dist/") + dist_mode_name(opt_.mode), r,
            done.stats.total_seconds,
            sh.nnz * static_cast<std::uint64_t>(step));
        break;
      }
    } catch (const timeout_error& e) {
      // No reply within the grace window: a stall. The rank cannot be
      // trusted mid-protocol, so it joins the dead set via SIGKILL and
      // recovery respawns it. (If it in fact died, waitpid says so.)
      const bool was_dead = child_exited(r);
      force_down(r);
      if (!was_dead) BSPMV_OBS_COUNT("dist.recovery.stalls_killed", 1);
      note(r, was_dead ? "rank_dead" : "rank_stalled", e.what(),
           std::current_exception(), true);
    } catch (const error& e) {
      // Undecodable traffic on the control channel: the stream is not
      // trustworthy any more; take the rank down and respawn it.
      force_down(r);
      note(r, "rank_dead", e.what(), std::current_exception(), true);
    }
  }
  return rr;
}

void DistSpmv::run_supervised(const double* x, double* y, int iterations) {
  const SuperviseOptions& sup = opt_.supervise;
  int interval = sup.checkpoint_interval;
  if (interval <= 0) interval = std::max(1, (iterations + 3) / 4);
  interval = std::min(interval, iterations);

  const std::size_t n_x = static_cast<std::size_t>(plan_.cols);
  int completed = 0;
  std::uint64_t xfp = 0;
  if (!sup.checkpoint_path.empty()) {
    xfp = bits_fingerprint(x, n_x);
    if (auto ck = load_checkpoint(sup.checkpoint_path)) {
      if (ck->x_fingerprint == xfp &&
          ck->total == static_cast<std::uint32_t>(iterations) &&
          ck->completed > 0) {
        // Resume the count, but always rerun at least one iteration:
        // each iteration recomputes y from the constant x, so the rerun
        // both materialises y in this process and stays bitwise
        // faithful to a fault-free run.
        completed = std::min(static_cast<int>(ck->completed), iterations - 1);
        resumed_ = completed;
        BSPMV_OBS_COUNT("dist.recovery.resumed_iterations",
                        static_cast<std::uint64_t>(completed));
      }
    }
  }

  stats_.assign(static_cast<std::size_t>(opt_.ranks), RankStats{});
  std::uint64_t bytes = 0, msgs = 0;
  int consecutive = 0;
  double backoff_ms = sup.backoff_initial_ms;

  while (completed < iterations) {
    if (control_) control_->check();  // typed deadline/cancel between rounds
    const int step = std::min(interval, iterations - completed);
    RoundResult rr = run_round(x, y, step, completed, round_limits());
    bytes += rr.bytes;
    msgs += rr.msgs;
    if (rr.ok) {
      completed += step;
      consecutive = 0;
      backoff_ms = sup.backoff_initial_ms;
      if (!sup.checkpoint_path.empty() && completed < iterations) {
        DistCheckpoint ck;
        ck.completed = static_cast<std::uint32_t>(completed);
        ck.total = static_cast<std::uint32_t>(iterations);
        ck.x_fingerprint = xfp;
        ck.x.assign(x, x + n_x);
        try {
          save_checkpoint(sup.checkpoint_path, ck);
          BSPMV_OBS_COUNT("dist.recovery.checkpoints", 1);
        } catch (const error&) {
          // A failed checkpoint write costs the resume point, never the
          // run; the next round retries it.
        }
      }
      continue;
    }

    ++consecutive;
    BSPMV_OBS_COUNT("dist.recovery.failed_rounds", 1);
    Timer rt;
    RecoveryEvent ev;
    ev.epoch = epoch_;
    ev.completed_iterations = completed;
    ev.cause = rr.cause;
    ev.failed_ranks = rr.failed;
    ev.detail = rr.message;

    if (consecutive > sup.max_respawns) {
      // The retry rung is exhausted: walk the degradation ladder.
      const int live = live_ranks();
      if (sup.allow_reshard && live >= 2 && live < opt_.ranks) {
        reshard(live);
        ev.action = "reshard";
        ev.ranks_after = opt_.ranks;
        ev.seconds = rt.elapsed();
        log_.push_back(ev);
        outcome_ = DistOutcome::kResharded;
        consecutive = 0;
        backoff_ms = sup.backoff_initial_ms;
        BSPMV_OBS_COUNT("dist.recovery.resharded", 1);
        continue;
      }
      if (sup.allow_single_node) {
        ev.action = "single_node";
        ev.ranks_after = 1;
        ev.seconds = rt.elapsed();
        log_.push_back(ev);
        outcome_ = DistOutcome::kSingleNode;
        BSPMV_OBS_COUNT("dist.recovery.single_node", 1);
        shutdown();
        run_single_node(x, y);
        completed = iterations;
        continue;
      }
      ev.action = "abort";
      ev.ranks_after = live;
      ev.seconds = rt.elapsed();
      log_.push_back(ev);
      if (rr.error) std::rethrow_exception(rr.error);
      throw io_error("distributed run failed and every ladder rung is "
                     "disabled: " + rr.message);
    }

    // Bounded retry: back off, heal the mesh, go around again.
    const double ms = std::min(backoff_ms, sup.backoff_max_ms);
    ev.backoff_ms = ms;
    ::usleep(static_cast<useconds_t>(ms * 1000.0));
    backoff_ms *= 2.0;
    try {
      recover(rr.failed);
      ev.action = rr.failed.empty() ? "retry" : "respawn";
      ev.ranks_after = opt_.ranks;
      if (outcome_ == DistOutcome::kClean) outcome_ = DistOutcome::kRecovered;
      if (!rr.failed.empty())
        BSPMV_OBS_COUNT("dist.recovery.respawns", rr.failed.size());
    } catch (const error& e) {
      // A failed recovery just leaves the next round to fail too; the
      // consecutive counter walks the ladder.
      ev.action = "respawn_failed";
      ev.detail += std::string(" | recovery: ") + e.what();
      BSPMV_OBS_COUNT("dist.recovery.respawn_failures", 1);
    }
    ev.seconds = rt.elapsed();
    log_.push_back(ev);
  }

  // The run completed; the resume point is obsolete.
  if (!sup.checkpoint_path.empty()) ::unlink(sup.checkpoint_path.c_str());
  BSPMV_OBS_COUNT("dist.runs", 1);
  BSPMV_OBS_COUNT("dist.iterations",
                  static_cast<std::uint64_t>(iterations - resumed_));
  BSPMV_OBS_COUNT("dist.halo_bytes", bytes);
  BSPMV_OBS_COUNT("dist.halo_msgs", msgs);
}

void DistSpmv::recover(const std::vector<int>& failed) {
  BSPMV_OBS_SPAN("dist/recover");
  if (!failed.empty()) respawn_ranks(failed);

  // Quiesce + drain: every rank discards whatever stale pre-recovery
  // frames a failed peer left in its kernel buffers, so the next epoch
  // starts on clean streams (the epoch stamp on every halo frame is the
  // belt to this suspenders).
  const serve::WireLimits lim = round_limits();
  for (int r = 0; r < opt_.ranks; ++r) {
    if (pids_[static_cast<std::size_t>(r)] <= 0)
      throw io_error("rank " + std::to_string(r) +
                     " is still down after recovery");
    serve::write_frame(ctrl_fds_[static_cast<std::size_t>(r)],
                       MsgType::kDrain, "", lim);
  }
  std::uint64_t stale = 0;
  for (int r = 0; r < opt_.ranks; ++r) {
    MsgType type{};
    std::string payload;
    if (!serve::read_frame(ctrl_fds_[static_cast<std::size_t>(r)], type,
                           payload, lim))
      throw io_error("rank " + std::to_string(r) + " exited during drain");
    if (type == MsgType::kError) {
      const auto rep = serve::ErrorReply::decode(payload);
      serve::throw_wire_error(
          rep.code, "rank " + std::to_string(r) + ": " + rep.message);
    }
    if (type != MsgType::kDrainOk)
      throw parse_error(std::string("expected drain_ok from rank, got ") +
                        serve::msg_type_name(type));
    stale += DrainReply::decode(payload).bytes;
  }
  if (stale > 0) BSPMV_OBS_COUNT("dist.recovery.stale_bytes", stale);
}

void DistSpmv::respawn_ranks(const std::vector<int>& dead_in) {
  std::vector<int> dead = dead_in;
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  const int n = opt_.ranks;
  std::vector<char> is_dead(static_cast<std::size_t>(n), 0);
  for (int d : dead) {
    BSPMV_CHECK(d >= 0 && d < n);
    BSPMV_CHECK_MSG(pids_[static_cast<std::size_t>(d)] <= 0,
                    "respawn asked for a rank that is still alive");
    is_dead[static_cast<std::size_t>(d)] = 1;
  }

  // Fresh channels: one ctrl pair per dead rank, one data pair for every
  // rank pair with at least one dead endpoint. All pairs must exist
  // before the first fork so each new child inherits its ends to every
  // peer, including other respawned ranks.
  std::vector<Pair> ctrl(static_cast<std::size_t>(n));
  std::vector<std::vector<Pair>> data(static_cast<std::size_t>(n));
  for (auto& row : data) row.resize(static_cast<std::size_t>(n));

  auto close_all_local = [&] {
    for (auto& c : ctrl) {
      close_quiet(c.fds[0]);
      close_quiet(c.fds[1]);
    }
    for (auto& row : data)
      for (auto& d : row) {
        close_quiet(d.fds[0]);
        close_quiet(d.fds[1]);
      }
  };

  try {
    for (int d : dead) make_pair_or_throw(ctrl[static_cast<std::size_t>(d)]);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (is_dead[static_cast<std::size_t>(i)] ||
            is_dead[static_cast<std::size_t>(j)])
          make_pair_or_throw(data[static_cast<std::size_t>(i)]
                                 [static_cast<std::size_t>(j)]);

    for (int d : dead) {
      const pid_t pid = fork();
      if (pid < 0)
        throw io_error(std::string("fork failed: ") + std::strerror(errno));
      if (pid == 0) {
        RankContext ctx;
        ctx.rank = d;
        ctx.limits = limits_;
        ctx.ctrl_fd = ctrl[static_cast<std::size_t>(d)].fds[1];
        ctx.peer_fds.assign(static_cast<std::size_t>(n), -1);
        for (int q = 0; q < n; ++q) {
          if (q == d) continue;
          const int i = std::min(d, q), j = std::max(d, q);
          Pair& p = data[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)];
          ctx.peer_fds[static_cast<std::size_t>(q)] =
              d == i ? p.fds[0] : p.fds[1];
        }
        // Close everything else inherited from the parent: the live
        // ranks' ctrl channels, other new ctrl pairs, the parent side of
        // this rank's own pairs, and every pair end that is not ours.
        for (int q = 0; q < n; ++q) {
          Pair& c = ctrl[static_cast<std::size_t>(q)];
          if (q == d) {
            close_quiet(c.fds[0]);
          } else {
            close_quiet(c.fds[0]);
            close_quiet(c.fds[1]);
          }
        }
        for (int& fd : ctrl_fds_) close_quiet(fd);
        for (int i = 0; i < n; ++i)
          for (int j = i + 1; j < n; ++j) {
            Pair& p = data[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
            if (i == d) {
              close_quiet(p.fds[1]);
            } else if (j == d) {
              close_quiet(p.fds[0]);
            } else {
              close_quiet(p.fds[0]);
              close_quiet(p.fds[1]);
            }
          }
        _exit(rank_main(ctx));
      }
      pids_[static_cast<std::size_t>(d)] = pid;
    }

    // Parent bookkeeping: adopt the new ctrl ends; release the fds the
    // children now own. Ends destined for live survivors stay open until
    // SCM_RIGHTS delivers them.
    for (int d : dead) {
      Pair& c = ctrl[static_cast<std::size_t>(d)];
      close_quiet(ctrl_fds_[static_cast<std::size_t>(d)]);
      ctrl_fds_[static_cast<std::size_t>(d)] = c.fds[0];
      c.fds[0] = -1;
      close_quiet(c.fds[1]);
    }
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) {
        Pair& p = data[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j)];
        if (is_dead[static_cast<std::size_t>(i)]) close_quiet(p.fds[0]);
        if (is_dead[static_cast<std::size_t>(j)]) close_quiet(p.fds[1]);
      }

    // Re-ship the dead ranks' shards — the ShardPlan is deterministic,
    // so this is the same slice they held before — and re-arm any
    // persistent test faults.
    const serve::WireLimits lim = round_limits();
    for (int d : dead) ship_shard(matrix_, d);
    for (int d : dead) expect_ok(d, MsgType::kShardOk, lim);
    for (int d : dead) {
      const FaultMsg& f = persistent_faults_[static_cast<std::size_t>(d)];
      if (f.kind == FaultKind::kNone) continue;
      serve::write_frame(ctrl_fds_[static_cast<std::size_t>(d)],
                         MsgType::kFault, f.encode(), lim);
      expect_ok(d, MsgType::kFaultOk, lim);
    }

    // Rewire every survivor: announce the replaced peers, then pass each
    // replacement fd over the control stream (ordered, so the fds land
    // right behind the frame).
    PeerUpdateMsg upd;
    for (int d : dead) upd.peers.push_back(static_cast<std::uint32_t>(d));
    const std::string upd_payload = upd.encode();
    for (int q = 0; q < n; ++q) {
      if (is_dead[static_cast<std::size_t>(q)] ||
          pids_[static_cast<std::size_t>(q)] <= 0)
        continue;
      const int cfd = ctrl_fds_[static_cast<std::size_t>(q)];
      serve::write_frame(cfd, MsgType::kPeerUpdate, upd_payload, lim);
      for (int d : dead) {
        const int i = std::min(d, q), j = std::max(d, q);
        Pair& p = data[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j)];
        int& fd = q == i ? p.fds[0] : p.fds[1];
        send_fd(cfd, fd);
        close_quiet(fd);
      }
      expect_ok(q, MsgType::kPeerOk, lim);
    }
  } catch (...) {
    close_all_local();
    throw;
  }
  close_all_local();
}

void DistSpmv::reshard(int new_ranks) {
  // Second ladder rung: tear the whole mesh down and rebuild it over the
  // survivors' count with a fresh deterministic plan. Armed test faults
  // die with the old mesh (rank identities changed).
  shutdown();
  opt_.ranks = new_ranks;
  plan_ = plan_shards(matrix_, new_ranks);
  persistent_faults_.assign(static_cast<std::size_t>(new_ranks), FaultMsg{});
  stats_.assign(static_cast<std::size_t>(new_ranks), RankStats{});
  spawn(matrix_);
}

void DistSpmv::run_single_node(const double* x, double* y) {
  // Final ladder rung, mirroring the serve layer's: a plain serial
  // scalar-CSR engine over the retained matrix. Different summation
  // order than the sharded run (tolerance-correct, not bitwise), which
  // is why the outcome is always reported, never silent.
  Candidate c;
  c.impl = opt_.impl;
  auto engine = SpmvEngine<double>::prepare(matrix_, c, /*threads=*/0);
  engine.run(x, y);
}

void DistSpmv::kill_rank(int r) {
  BSPMV_CHECK(r >= 0 && r < static_cast<int>(pids_.size()));
  if (pids_[static_cast<std::size_t>(r)] > 0)
    ::kill(pids_[static_cast<std::size_t>(r)], SIGKILL);
}

void DistSpmv::inject_fault(int r, const FaultMsg& f, bool persistent) {
  BSPMV_CHECK(r >= 0 && r < static_cast<int>(pids_.size()));
  if (persistent) persistent_faults_[static_cast<std::size_t>(r)] = f;
  serve::write_frame(ctrl_fds_[static_cast<std::size_t>(r)], MsgType::kFault,
                     f.encode(), limits_);
  expect_ok(r, MsgType::kFaultOk, limits_);
}

void DistSpmv::shutdown() noexcept {
  serve::WireLimits quick = limits_;
  quick.read_timeout_seconds = std::min(limits_.read_timeout_seconds, 5.0);
  for (int& fd : ctrl_fds_) {
    if (fd < 0) continue;
    try {
      serve::write_frame(fd, MsgType::kShutdown, "", quick);
      MsgType type{};
      std::string payload;
      serve::read_frame(fd, type, payload, quick);
    } catch (...) {
      // A dead or wedged rank is handled by the reaper below.
    }
    close_quiet(fd);
  }
  ctrl_fds_.clear();

  Timer t;
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    for (;;) {
      const pid_t got = ::waitpid(pid, nullptr, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) break;
      if (t.elapsed() > 5.0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        break;
      }
      ::usleep(2000);
    }
    pid = -1;
  }
  pids_.clear();
}

DistSpmv::~DistSpmv() { shutdown(); }

}  // namespace bspmv::dist
