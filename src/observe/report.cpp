#include "src/observe/report.hpp"

#include <omp.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/core/selector.hpp"
#include "src/observe/observe.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/macros.hpp"

namespace bspmv::observe {

namespace {

constexpr ModelKind kModels[] = {ModelKind::kMem, ModelKind::kMemComp,
                                 ModelKind::kOverlap, ModelKind::kMemLat};

// Table IV convention: a selection is "optimal" when it reaches the best
// measured time within timing noise.
constexpr double kOptimalSlack = 1.005;

Json::Object span_stat_json(const SpanStat& s) {
  Json::Object o;
  o["seconds"] = s.seconds;
  o["calls"] = static_cast<std::uint64_t>(s.calls);
  return o;
}

}  // namespace

Json RunReport::to_json() const {
  Json::Object o;
  o["schema_version"] = kSchemaVersion;
  o["kind"] = kKind;

  Json::Object matrix;
  matrix["name"] = matrix_name;
  matrix["rows"] = static_cast<std::int64_t>(rows);
  matrix["cols"] = static_cast<std::int64_t>(cols);
  matrix["nnz"] = static_cast<std::uint64_t>(nnz);
  matrix["csr_ws_bytes"] = static_cast<std::uint64_t>(csr_ws_bytes);
  matrix["precision"] = precision;
  o["matrix"] = std::move(matrix);

  Json::Object machine;
  machine["description"] = machine_description;
  machine["bandwidth_bps"] = bandwidth_bps;
  o["machine"] = std::move(machine);

  Json::Object obs;
  obs["hooks_enabled"] = hooks_enabled;
  obs["runtime_enabled"] = runtime_enabled;
  o["observe"] = std::move(obs);

  Json::Object chosen;
  chosen["id"] = chosen_id;
  chosen["fallback"] = fallback;
  Json::Array failures;
  for (const auto& [id, reason] : prepare_failures) {
    Json::Object f;
    f["id"] = id;
    f["reason"] = reason;
    failures.push_back(std::move(f));
  }
  chosen["failures"] = std::move(failures);
  o["chosen"] = std::move(chosen);

  Json::Array cand_arr;
  for (const CandidateReport& c : candidates) {
    Json::Object jc;
    jc["id"] = c.id;
    jc["format"] = c.format;
    jc["impl"] = c.impl;
    jc["ws_bytes"] = static_cast<std::uint64_t>(c.ws_bytes);
    Json::Object pred;
    for (const auto& [m, s] : c.predicted_seconds) pred[m] = s;
    jc["predicted"] = std::move(pred);
    jc["measured"] = c.measured;
    jc["measured_seconds"] = c.measured_seconds;
    jc["skip_reason"] = c.skip_reason;
    cand_arr.push_back(std::move(jc));
  }
  o["candidates"] = std::move(cand_arr);

  Json::Array sel_arr;
  for (const SelectionReport& s : selections) {
    Json::Object js;
    js["model"] = s.model;
    js["selected"] = s.selected_id;
    js["predicted_seconds"] = s.predicted_seconds;
    js["measured_seconds"] = s.measured_seconds;
    js["best"] = s.best_id;
    js["best_seconds"] = s.best_seconds;
    js["optimal"] = s.optimal;
    js["off_best"] = s.off_best;
    js["model_error"] = s.model_error;
    sel_arr.push_back(std::move(js));
  }
  o["selections"] = std::move(sel_arr);

  Json::Object threads_o;
  threads_o["count"] = threads;
  Json::Array samples;
  for (const ThreadSample& t : thread_samples) {
    Json::Object jt;
    jt["tid"] = t.tid;
    jt["seconds"] = t.seconds;
    jt["calls"] = static_cast<std::uint64_t>(t.calls);
    jt["items"] = static_cast<std::uint64_t>(t.items);
    samples.push_back(std::move(jt));
  }
  threads_o["samples"] = std::move(samples);
  o["threads"] = std::move(threads_o);

  Json::Object phases_o;
  for (const auto& [path, stat] : phases) phases_o[path] = span_stat_json(stat);
  o["phases"] = std::move(phases_o);

  Json::Object counters_o;
  for (const auto& [name, n] : counters)
    counters_o[name] = static_cast<std::uint64_t>(n);
  o["counters"] = std::move(counters_o);

  return Json(std::move(o));
}

RunReport RunReport::from_json(const Json& j) {
  validate_report_json(j);
  RunReport r;

  const Json& matrix = j.at("matrix");
  r.matrix_name = matrix.at("name").as_string();
  r.rows = static_cast<std::int64_t>(matrix.at("rows").as_number());
  r.cols = static_cast<std::int64_t>(matrix.at("cols").as_number());
  r.nnz = static_cast<std::size_t>(matrix.at("nnz").as_number());
  r.csr_ws_bytes =
      static_cast<std::size_t>(matrix.at("csr_ws_bytes").as_number());
  r.precision = matrix.at("precision").as_string();

  const Json& machine = j.at("machine");
  r.machine_description = machine.at("description").as_string();
  r.bandwidth_bps = machine.at("bandwidth_bps").as_number();

  const Json& obs = j.at("observe");
  r.hooks_enabled = obs.at("hooks_enabled").as_bool();
  r.runtime_enabled = obs.at("runtime_enabled").as_bool();

  const Json& chosen = j.at("chosen");
  r.chosen_id = chosen.at("id").as_string();
  r.fallback = chosen.at("fallback").as_bool();
  for (const Json& f : chosen.at("failures").as_array())
    r.prepare_failures.emplace_back(f.at("id").as_string(),
                                    f.at("reason").as_string());

  for (const Json& jc : j.at("candidates").as_array()) {
    CandidateReport c;
    c.id = jc.at("id").as_string();
    c.format = jc.at("format").as_string();
    c.impl = jc.at("impl").as_string();
    c.ws_bytes = static_cast<std::size_t>(jc.at("ws_bytes").as_number());
    for (const auto& [m, s] : jc.at("predicted").as_object())
      c.predicted_seconds[m] = s.as_number();
    c.measured = jc.at("measured").as_bool();
    c.measured_seconds = jc.at("measured_seconds").as_number();
    c.skip_reason = jc.at("skip_reason").as_string();
    r.candidates.push_back(std::move(c));
  }

  for (const Json& js : j.at("selections").as_array()) {
    SelectionReport s;
    s.model = js.at("model").as_string();
    s.selected_id = js.at("selected").as_string();
    s.predicted_seconds = js.at("predicted_seconds").as_number();
    s.measured_seconds = js.at("measured_seconds").as_number();
    s.best_id = js.at("best").as_string();
    s.best_seconds = js.at("best_seconds").as_number();
    s.optimal = js.at("optimal").as_bool();
    s.off_best = js.at("off_best").as_number();
    s.model_error = js.at("model_error").as_number();
    r.selections.push_back(std::move(s));
  }

  const Json& threads_j = j.at("threads");
  r.threads = static_cast<int>(threads_j.at("count").as_number());
  for (const Json& jt : threads_j.at("samples").as_array()) {
    ThreadSample t;
    t.tid = static_cast<int>(jt.at("tid").as_number());
    t.seconds = jt.at("seconds").as_number();
    t.calls = static_cast<std::uint64_t>(jt.at("calls").as_number());
    t.items = static_cast<std::uint64_t>(jt.at("items").as_number());
    r.thread_samples.push_back(t);
  }

  for (const auto& [path, stat] : j.at("phases").as_object()) {
    SpanStat s;
    s.seconds = stat.at("seconds").as_number();
    s.calls = static_cast<std::uint64_t>(stat.at("calls").as_number());
    r.phases[path] = s;
  }

  for (const auto& [name, n] : j.at("counters").as_object())
    r.counters[name] = static_cast<std::uint64_t>(n.as_number());

  return r;
}

std::string RunReport::to_csv() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "id,format,impl,ws_bytes,pred_mem,pred_memcomp,pred_overlap,"
        "pred_memlat,measured_seconds,skip_reason\n";
  for (const CandidateReport& c : candidates) {
    os << c.id << ',' << c.format << ',' << c.impl << ',' << c.ws_bytes;
    for (const char* m : {"mem", "memcomp", "overlap", "memlat"}) {
      auto it = c.predicted_seconds.find(m);
      os << ',';
      if (it != c.predicted_seconds.end()) os << it->second;
    }
    os << ',';
    if (c.measured) os << c.measured_seconds;
    // Reasons may contain commas; CSV-quote the free-text column.
    os << ",\"";
    for (char ch : c.skip_reason) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << "\"\n";
  }
  return os.str();
}

void validate_report_json(const Json& j) {
  const auto fail = [](const std::string& what) {
    throw validation_error("run report: " + what);
  };
  if (!j.is_object()) fail("document is not an object");
  if (!j.contains("kind") || !j.at("kind").is_string() ||
      j.at("kind").as_string() != RunReport::kKind)
    fail("missing or wrong kind (expected bspmv_run_report)");
  if (!j.contains("schema_version") ||
      static_cast<int>(j.at("schema_version").as_number()) !=
          RunReport::kSchemaVersion)
    fail("schema version mismatch; expected " +
         std::to_string(RunReport::kSchemaVersion));

  for (const char* key : {"matrix", "machine", "observe", "chosen",
                          "candidates", "selections", "threads", "phases",
                          "counters"})
    if (!j.contains(key)) fail(std::string("missing section: ") + key);

  const Json& matrix = j.at("matrix");
  for (const char* key : {"name", "rows", "cols", "nnz", "precision"})
    if (!matrix.contains(key))
      fail(std::string("matrix section missing: ") + key);

  const auto& cands = j.at("candidates").as_array();
  if (cands.empty()) fail("candidates array is empty");
  for (const Json& c : cands) {
    if (!c.contains("id") || !c.contains("predicted"))
      fail("candidate entry missing id/predicted");
    const auto& pred = c.at("predicted").as_object();
    for (const char* m : {"mem", "memcomp", "overlap"})
      if (pred.find(m) == pred.end())
        fail("candidate " + c.at("id").as_string() +
             " missing prediction for model " + m);
  }

  const auto& sels = j.at("selections").as_array();
  for (const char* m : {"mem", "memcomp", "overlap", "memlat"}) {
    bool found = false;
    for (const Json& s : sels)
      if (s.at("model").as_string() == m) found = true;
    if (!found) fail(std::string("no selection entry for model ") + m);
  }

  const Json& threads_j = j.at("threads");
  if (static_cast<int>(threads_j.at("count").as_number()) < 1)
    fail("threads.count must be >= 1");
  const Json& obs = j.at("observe");
  if (obs.at("hooks_enabled").as_bool() &&
      obs.at("runtime_enabled").as_bool() &&
      threads_j.at("samples").as_array().empty())
    fail("hooks were live but threads.samples is empty");
}

// ------------------------------------------------------------ builder ----

template <class V>
RunReport build_run_report(const Csr<V>& a, const std::string& name,
                           const MachineProfile& profile,
                           const ReportOptions& opt) {
  CounterRegistry::instance().reset();
  BSPMV_OBS_SPAN("report");

  RunReport r;
  r.matrix_name = name;
  r.rows = a.rows();
  r.cols = a.cols();
  r.nnz = a.nnz();
  r.csr_ws_bytes = a.working_set_bytes();
  constexpr Precision prec = precision_of<V>;
  r.precision = precision_name(prec);
  r.machine_description = profile.description;
  r.bandwidth_bps = profile.bandwidth_bps;
  r.runtime_enabled = enabled();
  r.threads = opt.threads > 0 ? opt.threads : omp_get_max_threads();

  const std::vector<Candidate> cands = model_candidates(true);
  const std::vector<CandidateCost> costs = all_candidate_costs(a, cands);
  const IrregularityStats irr = irregularity_stats(a);

  // Predicted (every model) and measured time per candidate — Fig. 3.
  std::map<std::string, double> measured;
  for (const CandidateCost& cost : costs) {
    CandidateReport cr;
    cr.id = cost.candidate.id();
    cr.format = format_name(cost.candidate.kind);
    cr.impl = impl_name(cost.candidate.impl);
    cr.ws_bytes = cost.total_ws();
    for (ModelKind m : kModels)
      cr.predicted_seconds[model_name(m)] =
          predict(m, cost, profile, prec, &irr);
    if (opt.measure_candidates) {
      std::string reason;
      if (auto f = try_convert(a, cost.candidate, &reason)) {
        cr.measured_seconds = measure_spmv_seconds(*f, opt.measure);
        cr.measured = true;
        measured[cr.id] = cr.measured_seconds;
      } else {
        cr.skip_reason = std::move(reason);
      }
    }
    r.candidates.push_back(std::move(cr));
  }
  if (opt.verbose)
    std::fprintf(stderr, "report: measured %zu/%zu candidates\n",
                 measured.size(), costs.size());

  std::string best_id;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [id, secs] : measured)
    if (secs < best) {
      best = secs;
      best_id = id;
    }

  // Each model's selection scored against the measured best — Table IV.
  for (ModelKind m : kModels) {
    const RankedCandidate sel = select_best(m, a, profile);
    SelectionReport s;
    s.model = model_name(m);
    s.selected_id = sel.candidate.id();
    s.predicted_seconds = sel.predicted_seconds;
    s.best_id = best_id;
    s.best_seconds = std::isfinite(best) ? best : 0.0;
    auto it = measured.find(s.selected_id);
    if (it != measured.end() && std::isfinite(best) && best > 0.0) {
      s.measured_seconds = it->second;
      s.off_best = it->second / best - 1.0;
      s.optimal = s.selected_id == best_id || it->second <= best * kOptimalSlack;
      s.model_error = (s.predicted_seconds - it->second) / it->second;
    }
    r.selections.push_back(std::move(s));
  }

  // Fault-tolerant selection (OVERLAP, the paper's most accurate model)
  // and its audit trail.
  PreparedExecutor<V> prep = select_and_prepare(ModelKind::kOverlap, a, profile);
  r.chosen_id = prep.format.candidate().id();
  r.fallback = prep.fallback;
  for (const PrepareFailure& f : prep.failures)
    r.prepare_failures.emplace_back(f.candidate.id(), f.reason);

  // Multithreaded run of the chosen candidate: the parallel drivers feed
  // per-thread kernel time + assigned weights into the registry.
  try {
    (void)measure_threaded_seconds(a, prep.format.candidate(), r.threads,
                                   opt.measure, opt.backend);
  } catch (const error&) {
    // Chosen format not parallelised (cannot happen for model candidates,
    // which are all §V-A formats; kept as a guard for future sets).
  }

  const Snapshot snap = CounterRegistry::instance().snapshot();
  r.phases = snap.spans;
  r.counters = snap.counters;
  std::map<int, ThreadSample> per_tid;
  for (const auto& [metric, tids] : snap.thread_times) {
    (void)metric;
    for (const auto& [tid, st] : tids) {
      ThreadSample& t = per_tid[tid];
      t.tid = tid;
      t.seconds += st.seconds;
      t.calls += st.calls;
      t.items += st.items;
    }
  }
  for (const auto& [tid, t] : per_tid) r.thread_samples.push_back(t);
  return r;
}

// --------------------------------------------------------- trajectory ----

void append_to_trajectory(const std::string& path, const Json& entry) {
  constexpr int kTrajectorySchema = 1;
  constexpr const char* kTrajectoryKind = "bspmv_trajectory";

  Json doc;
  bool fresh = true;
  {
    std::ifstream f(path);
    if (f) {
      std::ostringstream ss;
      ss << f.rdbuf();
      try {
        doc = Json::parse(ss.str());
        if (!doc.is_object() || !doc.contains("kind") ||
            doc.at("kind").as_string() != kTrajectoryKind ||
            static_cast<int>(doc.at("schema_version").as_number()) !=
                kTrajectorySchema)
          throw validation_error("kind/schema mismatch");
        fresh = false;
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "warning: ignoring trajectory %s (%s); restarting\n",
                     path.c_str(), e.what());
      }
    }
  }
  if (fresh) {
    Json::Object o;
    o["schema_version"] = kTrajectorySchema;
    o["kind"] = kTrajectoryKind;
    o["entries"] = Json::Array{};
    doc = Json(std::move(o));
  }
  doc["entries"].as_array().push_back(entry);

  // Crash-safe append: rewrite via temp-file + rename so a kill mid-write
  // can only lose the newest entry, never the accumulated trajectory.
  atomic_write_file(path, doc.dump(-1) + '\n');
}

#define BSPMV_INST(V)                                          \
  template RunReport build_run_report(                         \
      const Csr<V>&, const std::string&, const MachineProfile&, \
      const ReportOptions&);
BSPMV_INST(float)
BSPMV_INST(double)
#undef BSPMV_INST

}  // namespace bspmv::observe
