// Ablation: the OSKI/SPARSITY fill heuristic ([16], [3]) vs the paper's
// models as *selectors*. §IV argues the heuristic "is constrained to the
// BCSR format only" — this bench quantifies what that costs: for each
// suite matrix we report the measured time of each selector's pick,
// normalised over the best measured candidate (dp). Reuses the shared
// sweep cache.
#include <cstdio>

#include "bench/harness.hpp"
#include "src/core/heuristic.hpp"
#include "src/core/selector.hpp"

using namespace bspmv;
using namespace bspmv::bench;

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_option("sample", "0.05", "fill-estimate sampling fraction");
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  const MachineProfile profile = get_machine_profile(cfg);
  SweepCache cache(cfg.cache_path, cfg.no_cache);
  const double sample = cli.get_double("sample");

  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty())
    for (int i = 3; i <= 30; ++i) ids.push_back(i);

  std::printf("Heuristic-vs-models selection ablation (double precision, "
              "scale=%s, sample=%.2f)\n",
              suite_scale_name(cfg.scale), sample);
  print_rule(96);
  std::printf("%-18s %10s %10s %10s  %-22s %-20s\n", "matrix", "heuristic",
              "overlap", "memcomp", "heuristic picked", "overlap picked");
  print_rule(96);

  const auto cands = model_candidates(true);
  double sum_h = 0.0, sum_o = 0.0, sum_m = 0.0;
  for (int id : ids) {
    const Csr<double> a = build_suite_csr<double>(id, cfg.scale);
    const auto secs = sweep_matrix(a, id, cands, cfg, cache);
    double best = 1e300;
    for (const auto& [cid, t] : secs) best = std::min(best, t);

    const HeuristicSelection h = select_bcsr_heuristic(a, profile, sample);
    const RankedCandidate o = select_best(ModelKind::kOverlap, a, profile);
    const RankedCandidate m = select_best(ModelKind::kMemComp, a, profile);

    const double rh = secs.at(h.candidate.id()) / best;
    const double ro = secs.at(o.candidate.id()) / best;
    const double rm = secs.at(m.candidate.id()) / best;
    sum_h += rh;
    sum_o += ro;
    sum_m += rm;
    std::printf("%02d.%-15s %10.3f %10.3f %10.3f  %-22s %-20s\n", id,
                suite_catalog()[static_cast<size_t>(id - 1)].name.c_str(), rh,
                ro, rm, h.candidate.id().c_str(), o.candidate.id().c_str());
  }
  print_rule(96);
  const auto n = static_cast<double>(ids.size());
  std::printf("%-18s %10.3f %10.3f %10.3f   (real time of selection / best "
              "measured)\n",
              "average", sum_h / n, sum_o / n, sum_m / n);
  print_rule(96);
  std::printf("expected shape: the heuristic is competitive on BCSR-friendly "
              "matrices but cannot pick BCSD/decomposed/CSR-winning cases\n");
  return 0;
}
