// Reproduces Table III: per matrix, the min/avg/max speedup over standard
// CSR across all blocks tested, for each blocking method — double
// precision, non-vectorised kernels (the paper's reported configuration).
#include <cstdio>

#include "bench/harness.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

struct MinAvgMax {
  double min = 1e300, sum = 0.0, max = 0.0;
  int n = 0;
  void add(double x) {
    min = std::min(min, x);
    max = std::max(max, x);
    sum += x;
    ++n;
  }
  double avg() const { return n ? sum / n : 0.0; }
};

constexpr FormatKind kMethods[] = {FormatKind::kBcsr, FormatKind::kBcsrDec,
                                   FormatKind::kBcsd, FormatKind::kBcsdDec};

struct Row {
  int id;
  std::map<FormatKind, MinAvgMax> per;
  double vbl = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  SweepCache cache(cfg.cache_path, cfg.no_cache);

  std::vector<int> ids = cfg.matrix_ids;
  if (ids.empty())
    for (int i = 1; i <= 30; ++i) ids.push_back(i);  // Table III includes all

  // Scalar candidates only (dp, no simd), plus 1D-VBL.
  std::vector<Candidate> cands;
  for (const Candidate& c : bench_candidates(true, false))
    if (c.impl == Impl::kScalar) cands.push_back(c);

  std::vector<Row> rows;
  for (int id : ids) {
    if (cfg.verbose) std::fprintf(stderr, "matrix %d...\n", id);
    const Csr<double> a = build_suite_csr<double>(id, cfg.scale);
    const auto secs = sweep_matrix(a, id, cands, cfg, cache);
    const double csr_t = secs.at("csr_scalar");
    Row row;
    row.id = id;
    for (const Candidate& c : cands) {
      if (c.kind == FormatKind::kCsr || c.kind == FormatKind::kVbl) continue;
      row.per[c.kind].add(csr_t / secs.at(c.id()));
    }
    row.vbl = csr_t / secs.at("vbl_scalar");
    rows.push_back(std::move(row));
  }

  std::printf("Table III: speedup over CSR per matrix, all blocks tested "
              "(double precision, scalar kernels, scale=%s)\n",
              suite_scale_name(cfg.scale));
  print_rule(110);
  std::printf("%-18s | %-17s | %-17s | %-17s | %-17s | %6s\n", "matrix",
              "      BCSR", "    BCSR-DEC", "      BCSD", "    BCSD-DEC",
              "1D-VBL");
  std::printf("%-18s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s "
              "| %6s\n",
              "", "min", "avg", "max", "min", "avg", "max", "min", "avg",
              "max", "min", "avg", "max", "");
  print_rule(110);

  std::map<FormatKind, MinAvgMax> col_min, col_avg, col_max;
  MinAvgMax col_vbl;
  for (const Row& row : rows) {
    std::printf("%02d.%-15s |", row.id,
                suite_catalog()[static_cast<size_t>(row.id - 1)].name.c_str());
    for (FormatKind m : kMethods) {
      const MinAvgMax& s = row.per.at(m);
      std::printf(" %5.2f %5.2f %5.2f |", s.min, s.avg(), s.max);
      col_min[m].add(s.min);
      col_avg[m].add(s.avg());
      col_max[m].add(s.max);
    }
    std::printf(" %6.2f\n", row.vbl);
    col_vbl.add(row.vbl);
  }
  print_rule(110);
  std::printf("%-18s |", "Average");
  for (FormatKind m : kMethods)
    std::printf(" %5.2f %5.2f %5.2f |", col_min[m].avg(), col_avg[m].avg(),
                col_max[m].avg());
  std::printf(" %6.2f\n", col_vbl.avg());
  print_rule(110);
  return 0;
}
