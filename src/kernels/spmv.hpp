// Unified single-threaded SpMV front-end over every storage format.
//
// `spmv(A, x, y, impl)` computes y = A·x (zeroing y first);
// `spmv_add(A, x, y, impl)` accumulates y += A·x, which is what the
// decomposed formats chain internally. `x` must have A.cols() elements
// and `y` A.rows() elements.
#pragma once

#include <algorithm>
#include <string>
#include <type_traits>

#include "src/formats/bcsd.hpp"
#include "src/formats/bcsr.hpp"
#include "src/formats/csr.hpp"
#include "src/formats/csr_delta.hpp"
#include "src/formats/decomposed.hpp"
#include "src/formats/ubcsr.hpp"
#include "src/formats/vbl.hpp"
#include "src/formats/vbr.hpp"

namespace bspmv {

/// Kernel implementation flavour — §V evaluates both for every fixed-size
/// blocking method ("we also implemented vectorized versions").
enum class Impl { kScalar, kSimd };

inline const char* impl_name(Impl impl) {
  return impl == Impl::kScalar ? "scalar" : "simd";
}

template <class V>
void spmv_add(const Csr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const Bcsr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const Bcsd<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const Vbl<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const Vbr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const BcsrDec<V>& a, const V* x, V* y,
              Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const BcsdDec<V>& a, const V* x, V* y,
              Impl impl = Impl::kScalar);
template <class V>
void spmv_add(const Ubcsr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar);
/// CsrDelta decodes serially; the impl flag is accepted for API symmetry
/// and ignored.
template <class V>
void spmv_add(const CsrDelta<V>& a, const V* x, V* y,
              Impl impl = Impl::kScalar);

/// y = A·x for any supported format.
template <class Format, class V = typename std::decay_t<
                            decltype(std::declval<Format>().val())>::value_type>
void spmv(const Format& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}

/// Overload for block formats whose value array is named bval().
template <class V>
void spmv(const Bcsr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}
template <class V>
void spmv(const Bcsd<V>& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}
template <class V>
void spmv(const BcsrDec<V>& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}
template <class V>
void spmv(const BcsdDec<V>& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}
template <class V>
void spmv(const Ubcsr<V>& a, const V* x, V* y, Impl impl = Impl::kScalar) {
  std::fill(y, y + a.rows(), V{0});
  spmv_add(a, x, y, impl);
}

}  // namespace bspmv
