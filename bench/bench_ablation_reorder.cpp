// Ablation: row reordering to recover blockability (Pinar & Heath [12],
// cited in §I). Takes a block-structured FEM-like matrix, destroys row
// locality with a random shuffle, then applies the similarity reordering,
// reporting BCSR fill and measured SpMV time at each stage.
#include <cstdio>
#include <numeric>

#include "bench/harness.hpp"
#include "src/core/reorder.hpp"
#include "src/formats/permute.hpp"
#include "src/formats/stats.hpp"
#include "src/gen/generators.hpp"
#include "src/util/prng.hpp"

using namespace bspmv;
using namespace bspmv::bench;

namespace {

std::vector<index_t> random_shuffle_perm(index_t n, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  return perm;
}

struct Stage {
  const char* name;
  const Csr<double>* a;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  add_common_flags(cli);
  cli.add_option("nodes", "40000", "FEM-like generator node count");
  if (!cli.parse(argc, argv)) return 0;
  const auto cfg_opt = parse_common(cli);
  if (!cfg_opt) return 0;
  const BenchConfig& cfg = *cfg_opt;
  const auto nodes = static_cast<index_t>(cli.get_int("nodes"));

  const Csr<double> original = Csr<double>::from_coo(
      gen_blocked_band<double>(nodes, 3, nodes / 10, 5, 0.9, 0xf00d));
  const Csr<double> shuffled =
      permute_rows(original, random_shuffle_perm(original.rows(), 0x5847));
  const Csr<double> reordered =
      permute_rows(shuffled, similarity_reorder(shuffled));

  const BlockShape shape{3, 2};
  std::printf("Row-reordering ablation (FEM-like, 3 dof/node, %d nodes, "
              "BCSR %s)\n",
              nodes, shape.to_string().c_str());
  print_rule(86);
  std::printf("%-12s %12s %12s %14s %14s %14s\n", "stage", "fill(3x2)",
              "blocks", "csr(ms)", "bcsr(ms)", "best fmt(ms)");
  print_rule(86);

  const Stage stages[] = {
      {"original", &original}, {"shuffled", &shuffled},
      {"reordered", &reordered}};
  for (const Stage& st : stages) {
    const BlockStats bs = bcsr_stats(*st.a, shape);
    auto measure = [&](const Candidate& c) {
      const AnyFormat<double> f = AnyFormat<double>::convert(*st.a, c);
      return measure_spmv_seconds(f, cfg.measure) * 1e3;
    };
    const double t_csr = measure(Candidate{});
    const double t_bcsr =
        measure(Candidate{FormatKind::kBcsr, shape, 0, Impl::kSimd});
    const double t_dec =
        measure(Candidate{FormatKind::kBcsrDec, shape, 0, Impl::kSimd});
    std::printf("%-12s %12.3f %12zu %14.3f %14.3f %14.3f\n", st.name,
                bs.fill(), bs.blocks, t_csr, t_bcsr, std::min(t_bcsr, t_dec));
  }
  print_rule(86);
  std::printf("expected shape: the shuffle collapses fill and inflates BCSR "
              "time; reordering recovers most of both\n");
  return 0;
}
