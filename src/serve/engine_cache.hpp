// Bounded LRU cache of prepared SpmvEngines, keyed by matrix fingerprint.
//
// This is what makes the paper's premise pay in a serving scenario:
// preparation (candidate conversion, optionally measured selection) costs
// orders of magnitude more than one y = A·x, so a long-lived server
// prepares once per distinct matrix and answers every subsequent request
// from the cache.
//
// Key design points:
//   - Fingerprint = FNV-1a over the CSR arrays plus dimensions (reusing
//     bits_fingerprint from src/util/numerics.hpp). The full MatrixKey
//     also carries (rows, cols, nnz); a lookup whose hash matches but
//     whose dimensions differ is a detected *collision* — counted, and
//     treated as a miss so the colliding matrix is never served wrong
//     results (the newer matrix replaces the older under that hash).
//   - Byte budget, not entry count: every entry is charged its engine's
//     working_set_bytes(); inserts evict from the LRU tail until the new
//     entry fits. A single entry larger than the whole budget is
//     admitted alone (serving it degraded beats refusing it) — eviction
//     then empties the rest of the cache, keeping total = that entry.
//   - Pin-while-running: entries are handed out as shared_ptr<const
//     CachedEngine>. Eviction only drops the cache's reference; a worker
//     mid-request keeps its engine alive until it finishes, so an evicted
//     engine can never be torn down under a running kernel.
//
// Thread-safe; one mutex guards the map/list (lookups are O(1) and the
// critical sections never run kernels or conversions).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/engine.hpp"

namespace bspmv::serve {

/// Cache identity of a matrix: content hash + structural dimensions used
/// to detect hash collisions.
struct MatrixKey {
  std::uint64_t hash = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::uint64_t nnz = 0;

  friend bool operator==(const MatrixKey&, const MatrixKey&) = default;
};

/// FNV-1a fingerprint over dimensions and the three CSR arrays.
std::uint64_t matrix_fingerprint(const Csr<double>& a);
MatrixKey matrix_key(const Csr<double>& a);

/// One resident prepared engine. Immutable after insertion (the engine's
/// run() is const and safe to call from many workers concurrently, each
/// with its own x/y buffers).
struct CachedEngine {
  MatrixKey key;
  SpmvEngine<double> engine;
  std::string format_id;         ///< candidate id the prepare landed on
  bool fallback = false;         ///< prepare degraded to scalar CSR
  bool degraded = false;         ///< prepared under a degraded service level
  std::size_t bytes = 0;         ///< working-set charge against the budget
  double prepare_seconds = 0.0;
};

class EngineCache {
 public:
  explicit EngineCache(std::size_t budget_bytes);

  /// Lookup by full key: a hash match with different dimensions is a
  /// collision (counted) and reported as a miss. Hits move the entry to
  /// the front of the LRU order.
  std::shared_ptr<const CachedEngine> find(const MatrixKey& key);

  /// Lookup by bare hash (what the wire protocol carries). The entry's
  /// stored key travels with it, so callers can still cross-check the
  /// request (e.g. x length vs cols).
  std::shared_ptr<const CachedEngine> find(std::uint64_t hash);

  /// Insert an entry, evicting least-recently-used entries until the
  /// budget holds it (see header comment for the oversized-entry rule).
  /// An existing entry under the same hash is replaced; if its stored
  /// dimensions differ the replacement is also counted as a collision.
  void insert(std::shared_ptr<const CachedEngine> e);

  /// Drop one entry; returns true if it was resident. In-flight requests
  /// holding the shared_ptr are unaffected (pin-while-running).
  bool erase(std::uint64_t hash);

  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t collisions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t budget_bytes = 0;
  };
  Stats stats() const;

  /// Resident hashes, most recently used first (for stats/persistence).
  std::vector<std::uint64_t> resident_hashes() const;

 private:
  using Entry = std::shared_ptr<const CachedEngine>;

  /// Evict LRU-tail entries until `need` more bytes fit. Caller holds mu_.
  void evict_for(std::size_t need);

  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace bspmv::serve
