// Blocked Compressed Sparse Diagonal — §II-A.
//
// The BCSD format exploits small diagonal sub-blocks: the matrix is split
// into aligned row segments of height b (a block starts at (i, j) with
// mod(i,b) = 0) and every diagonal run inside a segment is stored as one
// length-b diagonal block, padded with zeros where elements are missing.
// Arrays per the paper: `bval` (b values per diagonal block), `bcol_ind`
// (starting column of each diagonal), `brow_ptr` (first diagonal of each
// segment).
//
// A diagonal anchored near the matrix edge may start at a negative column
// (j0 = j − (i − segment_base) < 0) or extend past the last column/row;
// such "partial" diagonals keep their padded zeros for the out-of-range
// positions and the kernels clamp the element range. Partial diagonals are
// stored after a `full_diags` prefix per segment so the hot kernel loop
// runs unchecked over the (overwhelmingly common) fully-in-range ones.
#pragma once

#include <cstddef>

#include "src/formats/common.hpp"
#include "src/formats/csr.hpp"

namespace bspmv {

template <class V>
class Bcsd {
 public:
  Bcsd() = default;

  /// Convert from CSR with diagonal block length b >= 1.
  static Bcsd from_csr(const Csr<V>& a, int b);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  int b() const { return b_; }
  index_t segments() const { return segments_; }
  std::size_t blocks() const { return bcol_ind_.size(); }
  std::size_t nnz() const { return nnz_; }
  std::size_t padding() const { return bval_.size() - nnz_; }

  const aligned_vector<index_t>& brow_ptr() const { return brow_ptr_; }
  const aligned_vector<index_t>& bcol_ind() const { return bcol_ind_; }
  const aligned_vector<V>& bval() const { return bval_; }
  /// Per segment: how many leading diagonals are fully in range (rows and
  /// columns), eligible for the unchecked fast path.
  const aligned_vector<index_t>& full_diags() const { return full_diags_; }

  std::size_t working_set_bytes() const;

  Coo<V> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  int b_ = 1;
  index_t segments_ = 0;
  std::size_t nnz_ = 0;
  aligned_vector<index_t> brow_ptr_;
  aligned_vector<index_t> bcol_ind_;
  aligned_vector<V> bval_;
  aligned_vector<index_t> full_diags_;
};

extern template class Bcsd<float>;
extern template class Bcsd<double>;

}  // namespace bspmv
