// CPU topology for the task-graph backend: which logical CPUs belong to
// which NUMA node, so the TaskPool can group its workers' deques by node
// and steal node-local first (docs/tasking.md).
//
// Detection reads /sys/devices/system/node/node*/cpulist (Linux). When
// no NUMA information is available (single-node machines, containers
// that mask /sys, non-Linux), the fallback groups CPUs into synthetic
// core clusters of kFallbackClusterCpus so locality-first stealing still
// has a meaningful neighbourhood.
#pragma once

#include <string>
#include <vector>

namespace bspmv {

struct Topology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  ///< logical CPU ids in this node, sorted
  };

  /// Non-empty; every node holds at least one CPU.
  std::vector<Node> nodes;
  int total_cpus = 1;
  bool numa_detected = false;  ///< true when /sys provided real nodes

  /// CPUs per synthetic cluster when NUMA detection fails.
  static constexpr int kFallbackClusterCpus = 8;

  /// Detect from /sys, falling back to synthetic clusters over
  /// hardware_concurrency(). Never throws; worst case is one node with
  /// one CPU.
  static Topology detect();

  /// Build the fallback directly (used by detect() and by tests that
  /// need a deterministic shape).
  static Topology clustered(int cpus, int per_cluster = kFallbackClusterCpus);

  /// Node index (position in `nodes`, not the node id) that worker
  /// `worker` of a `workers`-wide pool belongs to: workers are assigned
  /// to nodes in contiguous blocks, so neighbouring workers — which the
  /// task decomposition gives neighbouring row ranges — share a node.
  int node_of_worker(int worker, int workers) const;

  std::string to_string() const;
};

/// Parse a /sys cpulist string ("0-3,8,10-11") into sorted CPU ids.
/// Malformed chunks are skipped; never throws.
std::vector<int> parse_cpulist(const std::string& s);

}  // namespace bspmv
