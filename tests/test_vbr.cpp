// VBR (extension format) tests: partition invariants — every stored block
// is fully dense — plus kernel correctness.
#include <gtest/gtest.h>

#include "src/formats/vbr.hpp"
#include "src/kernels/spmv.hpp"
#include "src/kernels/vbr_kernels.hpp"
#include "tests/test_helpers.hpp"

namespace bspmv {
namespace {

using bspmv::testing::check_against_reference;
using bspmv::testing::random_blocky_coo;
using bspmv::testing::random_coo;

TEST(Vbr, GroupsIdenticalRows) {
  // Rows 0-1 share support {0,1}; row 2 has {0,1,2}; rows 3-4 are empty.
  Coo<double> coo(5, 4);
  for (index_t i : {0, 1}) {
    coo.add(i, 0, 1.0 + i);
    coo.add(i, 1, 2.0 + i);
  }
  coo.add(2, 0, 5.0);
  coo.add(2, 1, 6.0);
  coo.add(2, 2, 7.0);
  const Vbr<double> m = Vbr<double>::from_csr(Csr<double>::from_coo(coo));
  // Block rows: {0,1}, {2}, {3,4}.
  EXPECT_EQ(m.block_rows(), 3);
  EXPECT_EQ(m.nnz(), 7u);  // no padding, every value stored once
}

TEST(Vbr, ValStoresExactlyNnz) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Csr<double> a = Csr<double>::from_coo(
        random_blocky_coo<double>(48, 48, 3, 0.3, 1.0, seed));
    const Vbr<double> m = Vbr<double>::from_csr(a);
    EXPECT_EQ(m.val().size(), a.nnz());  // dense blocks, no padding
  }
}

TEST(Vbr, PartitionsAreConsistent) {
  const Csr<double> a =
      Csr<double>::from_coo(random_coo<double>(40, 45, 0.1, 4));
  const Vbr<double> m = Vbr<double>::from_csr(a);
  // Row partition covers [0, rows].
  ASSERT_GE(m.rpntr().size(), 2u);
  EXPECT_EQ(m.rpntr().front(), 0);
  EXPECT_EQ(m.rpntr().back(), 40);
  for (std::size_t i = 1; i < m.rpntr().size(); ++i)
    EXPECT_GT(m.rpntr()[i], m.rpntr()[i - 1]);
  // Column partition covers [0, cols].
  EXPECT_EQ(m.cpntr().front(), 0);
  EXPECT_EQ(m.cpntr().back(), 45);
  for (std::size_t i = 1; i < m.cpntr().size(); ++i)
    EXPECT_GT(m.cpntr()[i], m.cpntr()[i - 1]);
  // bval_ptr consistent with block dims.
  for (index_t br = 0; br < m.block_rows(); ++br) {
    const index_t h = m.rpntr()[static_cast<std::size_t>(br) + 1] -
                      m.rpntr()[static_cast<std::size_t>(br)];
    for (index_t blk = m.brow_ptr()[static_cast<std::size_t>(br)];
         blk < m.brow_ptr()[static_cast<std::size_t>(br) + 1]; ++blk) {
      const index_t bc = m.bindx()[static_cast<std::size_t>(blk)];
      const index_t w = m.cpntr()[static_cast<std::size_t>(bc) + 1] -
                        m.cpntr()[static_cast<std::size_t>(bc)];
      EXPECT_EQ(m.bval_ptr()[static_cast<std::size_t>(blk) + 1] -
                    m.bval_ptr()[static_cast<std::size_t>(blk)],
                h * w);
    }
  }
}

TEST(Vbr, RoundTripPreservesEntries) {
  Coo<double> coo = random_blocky_coo<double>(36, 30, 2, 0.4, 1.0, 6);
  coo.sort_and_combine();
  Coo<double> back = Vbr<double>::from_csr(Csr<double>::from_coo(coo)).to_coo();
  back.sort_and_combine();
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k)
    EXPECT_DOUBLE_EQ(back.entries()[k].value, coo.entries()[k].value);
}

TEST(Vbr, DenseMatrixIsOneBlock) {
  Coo<double> coo(8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) coo.add(i, j, 1.0 + i + j);
  const Vbr<double> m = Vbr<double>::from_csr(Csr<double>::from_coo(coo));
  EXPECT_EQ(m.block_rows(), 1);
  EXPECT_EQ(m.blocks(), 1u);
}

using Types = ::testing::Types<float, double>;
template <class V>
class VbrKernels : public ::testing::Test {};
TYPED_TEST_SUITE(VbrKernels, Types);

TYPED_TEST(VbrKernels, ScalarMatchesReference) {
  using V = TypeParam;
  const Coo<V> coo = random_blocky_coo<V>(57, 49, 3, 0.25, 1.0, 8);
  const Vbr<V> m = Vbr<V>::from_csr(Csr<V>::from_coo(coo));
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(m, x, y, Impl::kScalar); },
      "vbr scalar");
}

TYPED_TEST(VbrKernels, SimdMatchesReference) {
  using V = TypeParam;
  const Coo<V> coo = random_blocky_coo<V>(50, 64, 8, 0.3, 1.0, 9);
  const Vbr<V> m = Vbr<V>::from_csr(Csr<V>::from_coo(coo));
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(m, x, y, Impl::kSimd); }, "vbr simd");
}

TYPED_TEST(VbrKernels, IrregularMatrixMatchesReference) {
  using V = TypeParam;
  const Coo<V> coo = bspmv::testing::random_coo<V>(45, 52, 0.09, 10);
  const Vbr<V> m = Vbr<V>::from_csr(Csr<V>::from_coo(coo));
  check_against_reference<V>(
      coo, [&](const V* x, V* y) { spmv(m, x, y); }, "vbr irregular");
}

}  // namespace
}  // namespace bspmv
